// lds_stress — db_stress-style concurrent stress CLI for the LDS store and
// its ABD / CAS baselines.  Plain argv parsing, no gflags.
//
//   lds_stress --threads 8 --ops 5000 --backend lds --crash-rate 0.05 --seed 42
//
// Exit status 0 iff every shard completed all ops and passed both the
// atomicity checker and the independent freshness verifier.  The effective
// master seed is always printed; re-run with --seed <value> to reproduce.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "harness/kill9.h"
#include "harness/reconfig.h"
#include "harness/stress.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --backend lds|abd|cas|store   system under test (default lds)\n"
      "  --engine sim|parallel   store backend execution engine (sim):\n"
      "                          sim = deterministic replicas, one per "
      "thread;\n"
      "                          parallel = one service, shards spread over\n"
      "                          --threads worker event loops\n"
      "  --threads N             OS threads, one independent shard each (4)\n"
      "  --ops N                 total client operations (2000)\n"
      "  --writers N             writer clients per shard (2)\n"
      "  --readers N             reader clients per shard (2)\n"
      "  --objects N             objects per shard (4)\n"
      "  --value-size N          bytes per written value (64)\n"
      "  --read-fraction X       fraction of ops that are reads (0.5)\n"
      "  --zipf-theta X          key popularity skew in [0,1): 0 = uniform,\n"
      "                          0.99 = YCSB default Zipfian (0)\n"
      "  --value-dist SPEC       fixed:N | uniform:LO:HI |\n"
      "                          bimodal:SMALL:LARGE:PCT (fixed:--value-size)\n"
      "  --tenants N             store: round-robin clients over N tenant\n"
      "                          key namespaces (1)\n"
      "  --client-cache          store: version-validated client read cache\n"
      "  --cache-ttl X           cache: skip validation for X time units "
      "(0)\n"
      "  --cache-capacity N      cache: LRU entry bound (4096)\n"
      "  --crash-rate X          per-op crash-injection probability (0)\n"
      "  --repair-rate X         lds: P(replace+regenerate | L2 crash) (0)\n"
      "  --fixed-latency         fixed instead of exponential link delays\n"
      "  --n1/--f1/--n2/--f2 N   LDS geometry (6/1/8/2)\n"
      "  --n/--f N               ABD/CAS geometry (9/2; CAS k = n-2f)\n"
      "  --shards N              store: consistent-hash shards per service "
      "(4)\n"
      "  --batch-window X        store: put-coalescing window, sim units "
      "(0.5)\n"
      "  --max-batch N           store: flush a window early at N puts (32)\n"
      "                          (store always runs heartbeat-driven L2 "
      "repair)\n"
      "  --seed N                master seed; 0 = pick from entropy (0)\n"
      "  --verbose               per-shard progress lines on stderr\n"
      "  --help                  this text\n"
      "kill-9 crash-recovery mode (forks a real lds_served daemon):\n"
      "  --kill9                 enable; requires --server-bin and --data-dir\n"
      "  --server-bin PATH       path to the lds_served binary\n"
      "  --data-dir PATH         durable data_dir (wiped unless --keep-data)\n"
      "  --kills N               SIGKILL rounds; N+1 incarnations total (2)\n"
      "  --ops-per-round N       client ops per incarnation (400)\n"
      "  --keys N                distinct keys (16)\n"
      "  --sync P                always|group|never fdatasync policy "
      "(always)\n"
      "  --keep-data             reuse the data_dir instead of wiping\n"
      "  (--threads/--value-size/--read-fraction/--shards/--seed apply too)\n"
      "reconfiguration churn mode (forks a 3-process member cluster):\n"
      "  --reconfig              enable; requires --server-bin and --work-dir\n"
      "  --work-dir PATH         scratch dir for ports + the view dir "
      "(wiped)\n"
      "  --moves N               blocking head<->peer move rounds (4)\n"
      "  --no-kill               skip the SIGKILL-mid-move scenario\n"
      "  (--threads/--keys/--ops-per-round/--value-size/--read-fraction/\n"
      "   --seed/--verbose apply too)\n",
      argv0);
}

bool parse_u64(const char* s, std::uint64_t* out) {
  if (*s == '-' || *s == '+') return false;  // strtoull would silently wrap
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_size(const char* s, std::size_t* out) {
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
  std::uint64_t v = 0;
  if (!parse_u64(s, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lds::harness::StressOptions opt;
  bool kill9 = false;
  lds::harness::Kill9Options k9;
  bool reconfig = false;
  lds::harness::ReconfigOptions rc;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--backend") {
      const char* v = next();
      auto b = v ? lds::harness::parse_backend(v)
                 : std::optional<lds::harness::Backend>{};
      if (!b) {
        std::fprintf(stderr, "unknown backend '%s'\n", v ? v : "");
        return 2;
      }
      opt.backend = *b;
    } else if (arg == "--engine") {
      const char* v = next();
      auto m = v ? lds::net::parse_engine_mode(v)
                 : std::optional<lds::net::EngineMode>{};
      if (!m) {
        std::fprintf(stderr, "unknown engine '%s'\n", v ? v : "");
        return 2;
      }
      opt.engine = *m;
    } else if (arg == "--threads") {
      const char* v = next();
      ok = v && parse_size(v, &opt.threads);
    } else if (arg == "--ops") {
      const char* v = next();
      ok = v && parse_size(v, &opt.ops);
    } else if (arg == "--writers") {
      const char* v = next();
      ok = v && parse_size(v, &opt.writers);
    } else if (arg == "--readers") {
      const char* v = next();
      ok = v && parse_size(v, &opt.readers);
    } else if (arg == "--objects") {
      const char* v = next();
      ok = v && parse_size(v, &opt.objects);
    } else if (arg == "--value-size") {
      const char* v = next();
      ok = v && parse_size(v, &opt.value_size);
    } else if (arg == "--read-fraction") {
      const char* v = next();
      ok = v && parse_double(v, &opt.read_fraction);
    } else if (arg == "--zipf-theta") {
      const char* v = next();
      ok = v && parse_double(v, &opt.zipf_theta);
    } else if (arg == "--value-dist") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) opt.value_dist = v;
    } else if (arg == "--tenants") {
      const char* v = next();
      ok = v && parse_size(v, &opt.tenants);
    } else if (arg == "--client-cache") {
      opt.client_cache = true;
    } else if (arg == "--cache-ttl") {
      const char* v = next();
      ok = v && parse_double(v, &opt.cache_ttl);
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      ok = v && parse_size(v, &opt.cache_capacity);
    } else if (arg == "--crash-rate") {
      const char* v = next();
      ok = v && parse_double(v, &opt.crash_rate);
    } else if (arg == "--repair-rate") {
      const char* v = next();
      ok = v && parse_double(v, &opt.repair_rate);
    } else if (arg == "--fixed-latency") {
      opt.exponential_latency = false;
    } else if (arg == "--n1") {
      const char* v = next();
      ok = v && parse_size(v, &opt.n1);
    } else if (arg == "--f1") {
      const char* v = next();
      ok = v && parse_size(v, &opt.f1);
    } else if (arg == "--n2") {
      const char* v = next();
      ok = v && parse_size(v, &opt.n2);
    } else if (arg == "--f2") {
      const char* v = next();
      ok = v && parse_size(v, &opt.f2);
    } else if (arg == "--n") {
      const char* v = next();
      ok = v && parse_size(v, &opt.n);
    } else if (arg == "--f") {
      const char* v = next();
      ok = v && parse_size(v, &opt.f);
    } else if (arg == "--shards") {
      const char* v = next();
      ok = v && parse_size(v, &opt.store_shards);
    } else if (arg == "--batch-window") {
      const char* v = next();
      ok = v && parse_double(v, &opt.batch_window);
    } else if (arg == "--max-batch") {
      const char* v = next();
      ok = v && parse_size(v, &opt.max_batch);
    } else if (arg == "--seed") {
      const char* v = next();
      ok = v && parse_u64(v, &opt.seed);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--kill9") {
      kill9 = true;
    } else if (arg == "--server-bin") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) k9.server_bin = v;
    } else if (arg == "--data-dir") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) k9.data_dir = v;
    } else if (arg == "--kills") {
      const char* v = next();
      ok = v && parse_size(v, &k9.kills);
    } else if (arg == "--ops-per-round") {
      const char* v = next();
      ok = v && parse_size(v, &k9.ops_per_round);
    } else if (arg == "--keys") {
      const char* v = next();
      ok = v && parse_size(v, &k9.keys);
    } else if (arg == "--sync") {
      const char* v = next();
      auto p = v != nullptr ? lds::storage::parse_sync_policy(v)
                            : std::nullopt;
      ok = p.has_value();
      if (ok) k9.sync = *p;
    } else if (arg == "--keep-data") {
      k9.keep_data = true;
    } else if (arg == "--reconfig") {
      reconfig = true;
    } else if (arg == "--work-dir") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) rc.work_dir = v;
    } else if (arg == "--moves") {
      const char* v = next();
      ok = v && parse_size(v, &rc.moves);
    } else if (arg == "--no-kill") {
      rc.kill_mid_move = false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad or missing value for '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (reconfig) {
    rc.server_bin = k9.server_bin;
    rc.ops_per_round = k9.ops_per_round != 400 ? k9.ops_per_round : 300;
    rc.threads = opt.threads;
    rc.keys = k9.keys;
    rc.value_size = opt.value_size;
    rc.read_fraction = opt.read_fraction;
    rc.seed = opt.seed != 0 ? opt.seed : lds::entropy_seed();
    rc.verbose = opt.verbose;
    std::printf("reconfig: seed %llu\n",
                static_cast<unsigned long long>(rc.seed));
    const auto rep = lds::harness::run_reconfig(rc);
    std::fputs(lds::harness::format_reconfig_report(rc, rep).c_str(), stdout);
    return rep.ok() ? 0 : 1;
  }

  if (kill9) {
    k9.threads = opt.threads;
    k9.value_size = opt.value_size;
    k9.read_fraction = opt.read_fraction;
    k9.shards = opt.store_shards;
    k9.seed = opt.seed != 0 ? opt.seed : lds::entropy_seed();
    k9.verbose = opt.verbose;
    std::printf("kill9: seed %llu\n",
                static_cast<unsigned long long>(k9.seed));
    const auto rep = lds::harness::run_kill9(k9);
    std::fputs(lds::harness::format_kill9_report(k9, rep).c_str(), stdout);
    return rep.ok() ? 0 : 1;
  }

  if (const auto err = lds::harness::validate_options(opt)) {
    std::fprintf(stderr, "invalid options: %s\n", err->c_str());
    return 2;
  }
  const auto report = lds::harness::run_stress(opt);
  std::fputs(lds::harness::format_report(opt, report).c_str(), stdout);
  return report.ok() ? 0 : 1;
}
