// lds_served — a networked LDS store daemon.
//
// Runs one StoreService under the parallel engine and serves remote
// store::Clients over TCP (store/remote.h wire protocol):
//
//   lds_served                                # 4 shards on 127.0.0.1:7777
//   lds_served --port 0 --port-file port.txt  # ephemeral port, written out
//   lds_served --shards 8 --threads 4 --backend lds --duration 60
//
// Prints "lds_served: listening on 127.0.0.1:<port>" once ready, then serves
// until SIGINT/SIGTERM (or --duration seconds).  On shutdown it stops
// accepting, quiesces the service, and replays every shard history through
// the atomicity + freshness verifiers — the exit code is the verification
// verdict, which is what the CI loopback smoke (and scripts/stress.sh
// TRANSPORT=tcp) gate on.
//
// Multi-process membership (member subsystem):
//
//   lds_served --shards 1 --member-port 0 --member-port-file m.txt
//              --member-dir /tmp/head            # head: store + coordinator
//   lds_served --join 127.0.0.1:9000 --node-ids 30006,30007   # member peer
//
// The head runs the StoreService with a membership fabric: its L1/L2 servers
// can be moved into joined peer processes at runtime (store::RemoteReconfig /
// member::Controller), with the active view persisted under --member-dir so
// a restarted head resumes at epoch persisted+1 (all servers pulled home;
// peers at the dead epoch are fenced and re-join).  A peer process hosts
// ONLY the server ids the view places on it and exits 0 on SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <optional>
#include <vector>

#include "harness/stress.h"
#include "member/fabric.h"
#include "member/peer.h"
#include "member/view.h"
#include "storage/fsutil.h"
#include "storage/manifest.h"
#include "store/remote.h"
#include "store/store_service.h"

namespace {

using namespace lds;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

struct ServedOptions {
  std::uint16_t port = 7777;  ///< 0 = ephemeral
  std::string port_file;
  std::size_t shards = 4;
  std::size_t threads = 0;      ///< engine lanes; 0 = min(shards, hw)
  std::size_t net_threads = 1;  ///< transport progress threads
  store::ShardProtocol backend = store::ShardProtocol::Lds;
  double batch_window = 0.5;
  double duration = 0;  ///< seconds; 0 = until signal
  std::uint64_t seed = 1;
  bool verify = true;
  std::string data_dir;  ///< empty = RAM-only (the default)
  storage::SyncPolicy sync = storage::SyncPolicy::Always;

  // Membership (head mode when member flags set; peer mode when join set).
  bool member = false;              ///< head: run a membership fabric
  std::uint16_t member_port = 0;    ///< member listener; 0 = ephemeral
  std::string member_port_file;
  std::string member_dir;           ///< view persistence dir; empty = RAM
  std::optional<member::Endpoint> join;  ///< peer mode: coordinator to join
  std::vector<NodeId> node_ids;          ///< peer mode: server ids to claim
};

/// "HOST:PORT" -> Endpoint.
std::optional<member::Endpoint> parse_endpoint(const char* s) {
  const char* colon = std::strrchr(s, ':');
  if (colon == nullptr || colon == s) return std::nullopt;
  char* end = nullptr;
  const unsigned long p = std::strtoul(colon + 1, &end, 10);
  if (end == colon + 1 || *end != '\0' || p == 0 || p > 65535) {
    return std::nullopt;
  }
  return member::Endpoint{std::string(s, colon),
                          static_cast<std::uint16_t>(p)};
}

/// Comma-separated NodeId list ("30006,30007").
bool parse_node_ids(const char* s, std::vector<NodeId>* out) {
  while (*s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v <= 0) return false;
    out->push_back(static_cast<NodeId>(v));
    if (*end == ',') {
      s = end + 1;
    } else if (*end == '\0') {
      break;
    } else {
      return false;
    }
  }
  return !out->empty();
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  // Atomic (write-temp-then-rename), same contract as the store port file.
  const std::string body = std::to_string(port) + "\n";
  if (const Status st = storage::atomic_write_file(path, body); !st.ok()) {
    std::fprintf(stderr, "lds_served: cannot write %s: %s\n", path.c_str(),
                 st.to_string().c_str());
    return false;
  }
  return true;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N          TCP port, 0 = ephemeral (7777)\n"
      "  --port-file PATH  write the bound port here once listening\n"
      "  --shards N        consistent-hash shards (4)\n"
      "  --threads N       engine lanes; 0 = min(shards, hw threads) (0)\n"
      "  --net-threads N   transport progress threads; connections shard\n"
      "                    across them round-robin (1)\n"
      "  --backend B       lds|abd|cas shard protocol (lds)\n"
      "  --batch-window X  put-coalescing window in engine units (0.5)\n"
      "  --duration SECS   auto-exit after SECS; 0 = until SIGTERM (0)\n"
      "  --seed N          master seed (1)\n"
      "  --no-verify       skip the shutdown history verification\n"
      "  --data-dir PATH   durable mode: WAL+checkpoint storage under PATH;\n"
      "                    restarting on the same PATH recovers (lds only)\n"
      "  --sync P          fdatasync policy: always|group|never (always)\n"
      "membership (multi-process quorums; see member/fabric.h):\n"
      "  --member-port N        head: member listener, 0 = ephemeral;\n"
      "                         requires --shards 1, lds, no --data-dir\n"
      "  --member-port-file P   write the bound member port here\n"
      "  --member-dir PATH      persist the active view (VIEW) under PATH;\n"
      "                         a restart resumes at epoch persisted+1\n"
      "  --join HOST:PORT       peer mode: join the coordinator at HOST:PORT\n"
      "                         and host only what the view places here\n"
      "  --node-ids A,B,...     peer mode: server NodeIds to claim\n"
      "                         (L2: 30000+i, L1: 20000+j)\n",
      argv0);
}

bool verify_service(store::StoreService& svc) {
  bool ok = true;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    const auto& h = svc.shard_history(s);
    if (!h.all_complete()) {
      std::fprintf(stderr, "shard %zu: %zu incomplete operations\n", s,
                   h.incomplete());
      ok = false;
      continue;
    }
    if (const auto r = h.check_atomicity(Bytes{}); !r.ok) {
      std::fprintf(stderr, "shard %zu: ATOMICITY VIOLATION: %s\n", s,
                   r.violation.c_str());
      ok = false;
    }
    if (const auto r = harness::verify_read_freshness(h); !r.ok) {
      std::fprintf(stderr, "shard %zu: FRESHNESS VIOLATION: %s\n", s,
                   r.violation.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  ServedOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--port") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) {  // strict: digits in [0, 65535], no silent u16 truncation
        char* end = nullptr;
        const unsigned long p = std::strtoul(v, &end, 10);
        ok = end != v && *end == '\0' && p <= 65535;
        if (ok) opt.port = static_cast<std::uint16_t>(p);
      }
    } else if (arg == "--port-file") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.port_file = v;
    } else if (arg == "--shards") {
      const char* v = next();
      ok = v && (opt.shards = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--threads") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--net-threads") {
      const char* v = next();
      ok = v && (opt.net_threads = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--backend") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) {
        if (std::strcmp(v, "lds") == 0) {
          opt.backend = store::ShardProtocol::Lds;
        } else if (std::strcmp(v, "abd") == 0) {
          opt.backend = store::ShardProtocol::Abd;
        } else if (std::strcmp(v, "cas") == 0) {
          opt.backend = store::ShardProtocol::Cas;
        } else {
          ok = false;
        }
      }
    } else if (arg == "--batch-window") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.batch_window = std::strtod(v, nullptr);
    } else if (arg == "--duration") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.duration = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-verify") {
      opt.verify = false;
    } else if (arg == "--data-dir") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) opt.data_dir = v;
    } else if (arg == "--sync") {
      const char* v = next();
      auto p = v != nullptr ? storage::parse_sync_policy(v) : std::nullopt;
      ok = p.has_value();
      if (ok) opt.sync = *p;
    } else if (arg == "--member-port") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) {
        char* end = nullptr;
        const unsigned long p = std::strtoul(v, &end, 10);
        ok = end != v && *end == '\0' && p <= 65535;
        if (ok) {
          opt.member_port = static_cast<std::uint16_t>(p);
          opt.member = true;
        }
      }
    } else if (arg == "--member-port-file") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) {
        opt.member_port_file = v;
        opt.member = true;
      }
    } else if (arg == "--member-dir") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) {
        opt.member_dir = v;
        opt.member = true;
      }
    } else if (arg == "--join") {
      const char* v = next();
      auto ep = v != nullptr ? parse_endpoint(v) : std::nullopt;
      ok = ep.has_value();
      if (ok) opt.join = *ep;
    } else if (arg == "--node-ids") {
      const char* v = next();
      ok = v != nullptr && parse_node_ids(v, &opt.node_ids);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad or missing value for '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (opt.join.has_value()) {
    // ---- peer mode: host only what the membership view places here --------
    if (opt.node_ids.empty()) {
      std::fprintf(stderr, "lds_served: --join requires --node-ids\n");
      return 2;
    }
    member::PeerHost::Options po;
    po.join = *opt.join;
    po.claims = opt.node_ids;
    po.member_port = opt.member_port;
    po.view_dir = opt.member_dir;
    po.seed = opt.seed;
    member::PeerHost peer(std::move(po));
    if (const Status st = peer.start(); !st.ok()) {
      std::fprintf(stderr, "lds_served: %s\n", st.to_string().c_str());
      return 2;
    }
    std::printf("lds_served: member peer on 127.0.0.1:%u joining %s "
                "(claims=%zu seed=%llu)\n",
                peer.member_port(), opt.join->str().c_str(),
                opt.node_ids.size(),
                static_cast<unsigned long long>(opt.seed));
    std::fflush(stdout);
    if (!opt.member_port_file.empty() &&
        !write_port_file(opt.member_port_file, peer.member_port())) {
      return 2;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const auto start = std::chrono::steady_clock::now();
    while (!g_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (opt.duration > 0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start).count() >= opt.duration) {
        break;
      }
    }
    const auto s = peer.fabric().stats();
    std::printf("lds_served: peer shutting down at epoch %llu "
                "(%zu L1, %zu L2 hosted; %llu frames forwarded, "
                "%llu stale drops)\n",
                static_cast<unsigned long long>(peer.epoch()),
                peer.local_l1().size(), peer.local_l2().size(),
                static_cast<unsigned long long>(s.frames_forwarded),
                static_cast<unsigned long long>(s.stale_drops));
    peer.stop();
    return 0;
  }

  store::StoreOptions sopt;
  sopt.shards = opt.shards;
  sopt.backend.protocol = opt.backend;
  sopt.batch_window = opt.batch_window;
  sopt.seed = opt.seed;
  sopt.engine_mode = net::EngineMode::Parallel;
  sopt.engine_threads = opt.threads;
  if (!opt.data_dir.empty()) {
    if (opt.backend != store::ShardProtocol::Lds) {
      std::fprintf(stderr, "lds_served: --data-dir requires --backend lds\n");
      return 2;
    }
    sopt.data_dir = opt.data_dir;
    sopt.durability.sync = opt.sync;
    // Pre-check the manifest so a restart against a data_dir written with a
    // different shard/vnode split exits cleanly (the service constructor
    // would abort on the same mismatch).
    if (const Status st = store::StoreService::storage_manifest(sopt)
                              .verify_or_write(sopt.data_dir);
        !st.ok()) {
      std::fprintf(stderr, "lds_served: %s\n", st.to_string().c_str());
      return 2;
    }
  }

  // Head membership mode: bring the fabric up (and re-anchor from a persisted
  // view) BEFORE the service constructs its servers from the active view.
  std::optional<member::Fabric> fabric;
  if (opt.member) {
    if (opt.shards != 1 || opt.backend != store::ShardProtocol::Lds ||
        !opt.data_dir.empty()) {
      std::fprintf(stderr,
                   "lds_served: membership mode requires --shards 1, "
                   "--backend lds and no --data-dir\n");
      return 2;
    }
    member::Fabric::Options fo;
    fo.view_dir = opt.member_dir;
    fabric.emplace(std::move(fo));
    if (const Status st = fabric->listen(opt.member_port); !st.ok()) {
      std::fprintf(stderr, "lds_served: member listen: %s\n",
                   st.to_string().c_str());
      return 2;
    }
    if (!opt.member_dir.empty()) {
      auto loaded = member::View::load(opt.member_dir);
      if (!loaded.ok()) {
        std::fprintf(stderr, "lds_served: %s/VIEW: %s\n",
                     opt.member_dir.c_str(),
                     loaded.status().to_string().c_str());
        return 2;
      }
      if (loaded.value().has_value()) {
        // Restart: resume one epoch PAST the last durably activated view,
        // with every server pulled home — peers of the dead incarnation are
        // fenced (stale epoch) and re-join to be re-synced from scratch.
        // The persisted geometry overrides the CLI so coded elements stay
        // meaningful across incarnations.
        member::View v = std::move(*loaded.value());
        v.epoch += 1;
        v.processes.clear();
        v.processes[member::kCoordinatorProcess] =
            member::Endpoint{"127.0.0.1", fabric->port()};
        v.placement.clear();
        sopt.backend.n1 = v.n1;
        sopt.backend.f1 = v.f1;
        sopt.backend.n2 = v.n2;
        sopt.backend.f2 = v.f2;
        sopt.backend.code = v.code;
        std::printf("lds_served: resuming membership at epoch %llu "
                    "(persisted %llu)\n",
                    static_cast<unsigned long long>(v.epoch),
                    static_cast<unsigned long long>(v.epoch - 1));
        fabric->set_initial_view(std::move(v));
      }
    }
    sopt.fabric = &*fabric;
  }

  store::StoreService svc(sopt);

  store::StoreService::ListenOptions lo;
  lo.net_threads = opt.net_threads;
  if (const Status st = svc.listen(opt.port, lo); !st.ok()) {
    std::fprintf(stderr, "lds_served: %s\n", st.to_string().c_str());
    return 2;
  }
  std::printf("lds_served: listening on 127.0.0.1:%u (shards=%zu lanes=%zu "
              "backend=%s seed=%llu)\n",
              svc.listen_port(), opt.shards, svc.engine().lanes(),
              store::protocol_name(opt.backend),
              static_cast<unsigned long long>(opt.seed));
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    // Atomic (write-temp-then-rename): a harness polling for this file never
    // reads a half-written port number, and a crashed predecessor's stale
    // file is replaced in one step.
    const std::string body = std::to_string(svc.listen_port()) + "\n";
    if (const Status st = storage::atomic_write_file(opt.port_file, body);
        !st.ok()) {
      std::fprintf(stderr, "lds_served: cannot write %s: %s\n",
                   opt.port_file.c_str(), st.to_string().c_str());
      return 2;
    }
  }
  if (opt.member) {
    std::printf("lds_served: member coordinator on 127.0.0.1:%u epoch=%llu\n",
                fabric->port(),
                static_cast<unsigned long long>(fabric->epoch()));
    std::fflush(stdout);
    if (!opt.member_port_file.empty() &&
        !write_port_file(opt.member_port_file, fabric->port())) {
      return 2;
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (opt.duration > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count() >= opt.duration) {
      break;
    }
  }

  std::printf("lds_served: shutting down\n");
  if (opt.member) {
    const auto s = fabric->stats();
    std::printf("lds_served: membership at epoch %llu "
                "(%llu frames forwarded, %llu remote drops, "
                "%llu stale drops)\n",
                static_cast<unsigned long long>(fabric->epoch()),
                static_cast<unsigned long long>(s.frames_forwarded),
                static_cast<unsigned long long>(s.remote_drops),
                static_cast<unsigned long long>(s.stale_drops));
  }
  svc.stop_listening();
  svc.quiesce();
  std::size_t keys = 0;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    keys += svc.shard_objects(s);
  }
  std::printf("lds_served: %llu puts, %llu gets, %zu keys across %zu shards\n",
              static_cast<unsigned long long>(
                  svc.metrics().counter_total("puts")),
              static_cast<unsigned long long>(
                  svc.metrics().counter_total("gets")),
              keys, svc.num_shards());
  if (opt.verify) {
    if (!verify_service(svc)) {
      std::fprintf(stderr, "lds_served: VERIFICATION FAILED\n");
      return 1;
    }
    std::printf("lds_served: shard histories verified atomic + fresh\n");
  }
  return 0;
}
