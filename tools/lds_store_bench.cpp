// lds_store_bench — throughput driver for the sharded store service.
//
// Sweeps threads x shards x value-size: every OS thread runs one
// StoreService replica (its own simulated world) under a closed-loop client
// mix with no think time, so per-replica throughput is ops per *simulated*
// time unit — deterministic for a fixed seed, and the number that shows how
// aggregate service capacity scales with the shard count (more shards = more
// clusters advancing concurrently in one time base).  Aggregate throughput
// is the sum over replicas.
//
//   lds_store_bench                         # default sweep: 1,2,4,8 shards
//   lds_store_bench --shards 1,4 --value-sizes 64,1024 --json out.json
//   lds_store_bench --engine parallel --threads 8 --shards 8
//
// --engine selects the execution engine (net/engine.h):
//   sim      — every OS thread runs one deterministic StoreService replica;
//              per-replica throughput is ops per *simulated* time unit
//              (bit-reproducible for a fixed seed), aggregate is the sum.
//   parallel — ONE StoreService per configuration with its shards spread
//              over --threads ParallelEngine lanes; the number that matters
//              is real wall-clock ops/s, printed for both engines so the
//              speedup is directly comparable on the same workload.
// Every run replays each shard's recorded history through the atomicity and
// freshness verifiers and reports the verdict (the linearizability gate for
// the non-deterministic parallel engine).
//
// The JSON output carries one record per configuration (params, throughput,
// wall time) plus the full MetricsRegistry snapshot of the first replica of
// the largest configuration — batching/coalescing counters included — so CI
// can track the perf trajectory and assert batching is actually engaged.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/stress.h"
#include "store/client.h"

namespace {

using namespace lds;
using store::Client;
using store::GetResult;
using store::PutResult;
using store::StoreOptions;
using store::StoreService;

struct BenchOptions {
  lds::net::EngineMode engine = lds::net::EngineMode::Deterministic;
  std::vector<std::size_t> shards = {1, 2, 4, 8};
  std::vector<std::size_t> value_sizes = {256};
  std::size_t threads = 1;
  std::size_t ops = 4000;  ///< per replica per configuration
  std::size_t keys = 32;
  std::size_t clients_per_shard = 4;
  double read_fraction = 0.5;
  double batch_window = 0.5;
  bool exponential_latency = false;
  std::uint64_t seed = 1;
  std::string json_path;
};

struct ReplicaResult {
  double duration = 0;  ///< sim time from first op to last completion
  std::size_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  bool verified = true;  ///< every shard history passed both checkers
  std::string metrics_json;
};

/// Replay every shard history through the atomicity + freshness verifiers.
bool verify_service(StoreService& svc) {
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    const auto& h = svc.shard_history(s);
    if (!h.all_complete()) return false;
    if (!h.check_atomicity(Bytes{}).ok) return false;
    if (!lds::harness::verify_read_freshness(h).ok) return false;
  }
  return true;
}

ReplicaResult run_replica(const BenchOptions& opt, std::size_t shards,
                          std::size_t value_size, std::uint64_t seed) {
  StoreOptions sopt;
  sopt.shards = shards;
  sopt.batch_window = opt.batch_window;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.seed = seed;
  StoreService svc(sopt);
  Client client(svc);
  Rng rng(mix_seed(seed, 0xb0));

  std::size_t remaining = opt.ops;
  std::size_t done = 0;
  double done_time = 0;
  std::function<void()> next = [&] {
    if (remaining == 0) return;
    --remaining;
    const std::string key =
        "key-" + std::to_string(rng.uniform_int(
                     0, static_cast<std::int64_t>(opt.keys) - 1));
    auto complete = [&] {
      ++done;
      if (done == opt.ops) done_time = svc.sim().now();
      next();
    };
    if (rng.bernoulli(opt.read_fraction)) {
      client.get(key, [complete](const GetResult&) { complete(); });
    } else {
      client.put(key, rng.bytes(value_size),
                 [complete](const PutResult&) { complete(); });
    }
  };
  const std::size_t clients = opt.clients_per_shard * shards;
  for (std::size_t c = 0; c < clients; ++c) {
    svc.sim().at(0.0, [&next] { next(); });
  }
  svc.quiesce([&] { return remaining == 0; });

  ReplicaResult out;
  out.duration = done_time;
  out.ops = opt.ops;
  out.batches = svc.metrics().counter_total("batches");
  out.coalesced = svc.metrics().counter_total("puts_coalesced");
  out.verified = verify_service(svc);
  out.metrics_json = svc.metrics().to_json();
  return out;
}

/// One parallel-engine configuration: a single service, shards spread over
/// opt.threads lanes, driven by closed-loop client chains (each chain issues
/// its next op from the previous completion callback; chain state hops
/// lanes with the callbacks, synchronized by the engine).
ReplicaResult run_parallel(const BenchOptions& opt, std::size_t shards,
                           std::size_t value_size, std::uint64_t seed) {
  StoreOptions sopt;
  sopt.shards = shards;
  sopt.batch_window = opt.batch_window;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.seed = seed;
  sopt.engine_mode = lds::net::EngineMode::Parallel;
  sopt.engine_threads = opt.threads;
  StoreService svc(sopt);
  Client client(svc);

  struct Chain {
    Rng rng{1};
    std::size_t left = 0;
  };
  const std::size_t clients = opt.clients_per_shard * shards;
  std::vector<std::unique_ptr<Chain>> chains;
  for (std::size_t c = 0; c < clients; ++c) {
    auto chain = std::make_unique<Chain>();
    chain->rng = Rng(mix_seed(seed, 0xb0 + c));
    chain->left = opt.ops / clients + (c < opt.ops % clients ? 1 : 0);
    chains.push_back(std::move(chain));
  }
  std::atomic<std::size_t> to_issue{opt.ops};
  std::function<void(Chain*)> next = [&](Chain* c) {
    if (c->left == 0) return;
    --c->left;
    to_issue.fetch_sub(1, std::memory_order_acq_rel);
    const std::string key =
        "key-" + std::to_string(c->rng.uniform_int(
                     0, static_cast<std::int64_t>(opt.keys) - 1));
    auto complete = [&, c] { next(c); };
    if (c->rng.bernoulli(opt.read_fraction)) {
      client.get(key, [complete](const GetResult&) { complete(); });
    } else {
      client.put(key, c->rng.bytes(value_size),
                 [complete](const PutResult&) { complete(); });
    }
  };
  for (auto& c : chains) next(c.get());
  svc.quiesce(
      [&] { return to_issue.load(std::memory_order_acquire) == 0; });

  ReplicaResult out;
  out.duration = 0;  // lanes have independent clocks; wall time is the metric
  out.ops = opt.ops;
  out.batches = svc.metrics().counter_total("batches");
  out.coalesced = svc.metrics().counter_total("puts_coalesced");
  out.verified = verify_service(svc);
  out.metrics_json = svc.metrics().to_json();
  return out;
}

bool parse_size_list(const char* s, std::vector<std::size_t>* out) {
  out->clear();
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (token.empty()) return false;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || v == 0) return false;
      out->push_back(static_cast<std::size_t>(v));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return !out->empty();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --engine sim|parallel sim: one deterministic replica per thread;\n"
      "                        parallel: one service over --threads lanes\n"
      "  --shards LIST         comma-separated shard counts (1,2,4,8)\n"
      "  --value-sizes LIST    comma-separated value sizes in bytes (256)\n"
      "  --threads N           service replicas on OS threads (1)\n"
      "  --ops N               client ops per replica per config (4000)\n"
      "  --keys N              distinct keys (32)\n"
      "  --clients N           closed-loop clients per shard (4)\n"
      "  --read-fraction X     fraction of ops that are gets (0.5)\n"
      "  --batch-window X      put-coalescing window in sim units (0.5)\n"
      "  --exponential         exponential instead of fixed link delays\n"
      "  --json PATH           write machine-readable results\n"
      "  --seed N              master seed (1)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--engine") {
      const char* v = next();
      auto m = v ? lds::net::parse_engine_mode(v)
                 : std::optional<lds::net::EngineMode>{};
      if (!m) {
        std::fprintf(stderr, "unknown engine '%s'\n", v ? v : "");
        return 2;
      }
      opt.engine = *m;
    } else if (arg == "--shards") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.shards);
    } else if (arg == "--value-sizes") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.value_sizes);
    } else if (arg == "--threads") {
      const char* v = next();
      ok = v && (opt.threads = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--ops") {
      const char* v = next();
      ok = v && (opt.ops = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--keys") {
      const char* v = next();
      ok = v && (opt.keys = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--clients") {
      const char* v = next();
      ok = v && (opt.clients_per_shard = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--read-fraction") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.read_fraction = std::strtod(v, nullptr);
    } else if (arg == "--batch-window") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.batch_window = std::strtod(v, nullptr);
    } else if (arg == "--exponential") {
      opt.exponential_latency = true;
    } else if (arg == "--json") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.json_path = v;
    } else if (arg == "--seed") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad or missing value for '%s'\n", arg.c_str());
      return 2;
    }
  }

  const bool parallel = opt.engine == lds::net::EngineMode::Parallel;
  std::printf("lds_store_bench: engine=%s threads=%zu ops%s=%zu keys=%zu "
              "clients/shard=%zu read-fraction=%.2f batch-window=%.2f "
              "seed=%llu\n\n",
              lds::net::engine_mode_name(opt.engine), opt.threads,
              parallel ? "" : "/replica", opt.ops, opt.keys,
              opt.clients_per_shard, opt.read_fraction, opt.batch_window,
              static_cast<unsigned long long>(opt.seed));
  std::printf("%8s %12s %12s %14s %10s %10s %10s %12s %9s\n", "shards",
              "value_size", "sim_dur", "ops_per_unit", "batches", "coalesced",
              "wall_s", "wall_ops_s", "verified");

  std::string json = "{\"bench\":\"lds_store_bench\",\"configs\":[";
  bool all_verified = true;
  // Snapshot source: the largest shard count seen (not sweep order, which
  // the user may pass descending).
  std::string snapshot_metrics;
  std::size_t snapshot_shards = 0;
  bool first_cfg = true;
  for (std::size_t value_size : opt.value_sizes) {
    for (std::size_t shards : opt.shards) {
      const auto wall_start = std::chrono::steady_clock::now();
      std::vector<ReplicaResult> results;
      if (parallel) {
        results.push_back(run_parallel(opt, shards, value_size, opt.seed));
      } else {
        results.resize(opt.threads);
        std::vector<std::thread> workers;
        for (std::size_t t = 0; t < opt.threads; ++t) {
          workers.emplace_back([&, t] {
            results[t] = run_replica(
                opt, shards, value_size,
                opt.threads == 1 ? opt.seed : mix_seed(opt.seed, t));
          });
        }
        for (auto& w : workers) w.join();
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();

      double agg_tput = 0;
      double max_dur = 0;
      std::size_t total_ops = 0;
      std::uint64_t batches = 0, coalesced = 0;
      bool verified = true;
      for (const auto& r : results) {
        if (r.duration > 0) {
          agg_tput += static_cast<double>(r.ops) / r.duration;
        }
        max_dur = std::max(max_dur, r.duration);
        total_ops += r.ops;
        batches += r.batches;
        coalesced += r.coalesced;
        verified = verified && r.verified;
      }
      const double wall_ops_s = static_cast<double>(total_ops) / wall;
      std::printf(
          "%8zu %12zu %12.1f %14.3f %10llu %10llu %10.2f %12.0f %9s\n",
          shards, value_size, max_dur, agg_tput,
          static_cast<unsigned long long>(batches),
          static_cast<unsigned long long>(coalesced), wall, wall_ops_s,
          verified ? "yes" : "NO");
      all_verified = all_verified && verified;

      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"engine\":\"%s\",\"shards\":%zu,\"threads\":%zu,"
                    "\"value_size\":%zu,"
                    "\"ops\":%zu,\"metric\":\"%s\","
                    "\"value\":%.6f,\"batches\":%llu,\"coalesced\":%llu,"
                    "\"wall_seconds\":%.3f,\"wall_ops_per_sec\":%.3f,"
                    "\"verified\":%s}",
                    first_cfg ? "" : ",",
                    lds::net::engine_mode_name(opt.engine), shards,
                    opt.threads, value_size, total_ops,
                    parallel ? "ops_per_sec_wall" : "ops_per_sim_unit",
                    parallel ? wall_ops_s : agg_tput,
                    static_cast<unsigned long long>(batches),
                    static_cast<unsigned long long>(coalesced), wall,
                    wall_ops_s, verified ? "true" : "false");
      json += buf;
      first_cfg = false;
      if (shards >= snapshot_shards) {
        snapshot_shards = shards;
        snapshot_metrics = results[0].metrics_json;
      }
    }
  }
  json += "],\"metrics_snapshot\":" +
          (snapshot_metrics.empty() ? "{}" : snapshot_metrics) + "}\n";

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\njson written to %s\n", opt.json_path.c_str());
  }
  if (!all_verified) {
    std::fprintf(stderr, "VERIFICATION FAILED: a shard history violated "
                         "atomicity/freshness\n");
    return 1;
  }
  return 0;
}
