// lds_store_bench — throughput driver for the sharded store service.
//
// Sweeps threads x shards x value-size: every OS thread runs one
// StoreService replica (its own simulated world) under a closed-loop client
// mix with no think time, so per-replica throughput is ops per *simulated*
// time unit — deterministic for a fixed seed, and the number that shows how
// aggregate service capacity scales with the shard count (more shards = more
// clusters advancing concurrently in one time base).  Aggregate throughput
// is the sum over replicas.
//
//   lds_store_bench                         # default sweep: 1,2,4,8 shards
//   lds_store_bench --shards 1,4 --value-sizes 64,1024 --json out.json
//   lds_store_bench --engine parallel --threads 8 --shards 8
//   lds_store_bench --remote 127.0.0.1:7777 --threads 4   # vs lds_served
//
// --engine selects the execution engine (net/engine.h):
//   sim      — every OS thread runs one deterministic StoreService replica;
//              per-replica throughput is ops per *simulated* time unit
//              (bit-reproducible for a fixed seed), aggregate is the sum.
//   parallel — ONE StoreService per configuration with its shards spread
//              over --threads ParallelEngine lanes; the number that matters
//              is real wall-clock ops/s, printed for both engines so the
//              speedup is directly comparable on the same workload.
// Every run replays each shard's recorded history through the atomicity and
// freshness verifiers and reports the verdict (the linearizability gate for
// the non-deterministic parallel engine).
//
// --remote host:port drives a running lds_served instance instead of an
// in-process service: --threads OS threads each hold one client (whose
// connection-pool size sweeps over --connections) and run a put/get mix —
// every fourth closed-loop read is a multi_get — while recording a
// CLIENT-OBSERVED history with wall-clock invocation/response times.  That
// history goes through the same atomicity + freshness verifiers, so the
// linearizability gate holds across a real network hop (NotFound reads are
// recorded as the initial value, so a stale NotFound after a completed put
// is a violation, not a skip).  Shard count and backend are whatever the
// server was started with.
//
// Two remote load modes:
//   closed loop (default)  — each thread waits for every reply before the
//                            next request; latency is pure service time.
//   open loop (--rate R)   — requests arrive at R ops/s total, spread over
//                            the threads and submitted through the ASYNC
//                            completion-queue API regardless of how long
//                            replies take.  Latency is measured from the
//                            INTENDED arrival time (immune to coordinated
//                            omission), so the p99-vs-offered-load curve is
//                            honest once the server saturates.  --bursty
//                            draws exponential interarrivals (Poisson
//                            process) instead of a fixed spacing.
// Per-op latency histograms (p50/p99/p999, milliseconds) are printed per
// configuration and embedded in --json.  --require-scaling X fails the run
// unless remote throughput at the largest --connections value is at least
// X times the smallest's (the CI gate for connection-count scaling).
//
// The JSON output carries one record per configuration (params, throughput,
// wall time) plus the full MetricsRegistry snapshot of the first replica of
// the largest configuration — batching/coalescing counters included — so CI
// can track the perf trajectory and assert batching is actually engaged.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "harness/stress.h"
#include "store/client.h"

namespace {

using namespace lds;
using store::Client;
using store::GetResult;
using store::PutResult;
using store::StoreOptions;
using store::StoreService;

struct BenchOptions {
  lds::net::EngineMode engine = lds::net::EngineMode::Deterministic;
  std::vector<std::size_t> shards = {1, 2, 4, 8};
  std::vector<std::size_t> value_sizes = {256};
  std::size_t threads = 1;
  std::size_t ops = 4000;  ///< per replica per configuration
  std::size_t keys = 32;
  std::size_t clients_per_shard = 4;
  double read_fraction = 0.5;
  double batch_window = 0.5;
  bool exponential_latency = false;
  std::uint64_t seed = 1;
  std::string json_path;
  std::string remote_host;  ///< non-empty = drive a served instance
  std::uint16_t remote_port = 0;
  std::vector<std::size_t> connections = {1};  ///< remote: pool-size sweep
  double rate = 0;        ///< remote: open-loop offered load, ops/s (0 = closed)
  bool bursty = false;    ///< remote: Poisson arrivals instead of fixed spacing
  double require_scaling = 0;  ///< remote: min tput ratio largest/smallest pool
};

struct ReplicaResult {
  double duration = 0;  ///< sim time from first op to last completion
  std::size_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  bool verified = true;  ///< every shard history passed both checkers
  std::string metrics_json;
  std::string latency_json;  ///< remote: {"put_ms":{...},"get_ms":{...}}
  double p99_ms = 0;         ///< remote: worse of put/get p99, for the table
};

std::string histogram_json(const lds::store::Histogram& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f,"
                "\"p999\":%.3f,\"max\":%.3f}",
                static_cast<unsigned long long>(h.count()), h.mean(),
                h.percentile(0.5), h.percentile(0.99), h.percentile(0.999),
                h.max());
  return buf;
}

/// Replay every shard history through the atomicity + freshness verifiers.
bool verify_service(StoreService& svc) {
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    const auto& h = svc.shard_history(s);
    if (!h.all_complete()) return false;
    if (!h.check_atomicity(Bytes{}).ok) return false;
    if (!lds::harness::verify_read_freshness(h).ok) return false;
  }
  return true;
}

ReplicaResult run_replica(const BenchOptions& opt, std::size_t shards,
                          std::size_t value_size, std::uint64_t seed) {
  StoreOptions sopt;
  sopt.shards = shards;
  sopt.batch_window = opt.batch_window;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.seed = seed;
  StoreService svc(sopt);
  Client client(svc);
  Rng rng(mix_seed(seed, 0xb0));

  std::size_t remaining = opt.ops;
  std::size_t done = 0;
  double done_time = 0;
  std::function<void()> next = [&] {
    if (remaining == 0) return;
    --remaining;
    const std::string key =
        "key-" + std::to_string(rng.uniform_int(
                     0, static_cast<std::int64_t>(opt.keys) - 1));
    auto complete = [&] {
      ++done;
      if (done == opt.ops) done_time = svc.sim().now();
      next();
    };
    if (rng.bernoulli(opt.read_fraction)) {
      client.get(key, [complete](const GetResult&) { complete(); });
    } else {
      client.put(key, rng.bytes(value_size),
                 [complete](const PutResult&) { complete(); });
    }
  };
  const std::size_t clients = opt.clients_per_shard * shards;
  for (std::size_t c = 0; c < clients; ++c) {
    svc.sim().at(0.0, [&next] { next(); });
  }
  svc.quiesce([&] { return remaining == 0; });

  ReplicaResult out;
  out.duration = done_time;
  out.ops = opt.ops;
  out.batches = svc.metrics().counter_total("batches");
  out.coalesced = svc.metrics().counter_total("puts_coalesced");
  out.verified = verify_service(svc);
  out.metrics_json = svc.metrics().to_json();
  return out;
}

/// One parallel-engine configuration: a single service, shards spread over
/// opt.threads lanes, driven by closed-loop client chains (each chain issues
/// its next op from the previous completion callback; chain state hops
/// lanes with the callbacks, synchronized by the engine).
ReplicaResult run_parallel(const BenchOptions& opt, std::size_t shards,
                           std::size_t value_size, std::uint64_t seed) {
  StoreOptions sopt;
  sopt.shards = shards;
  sopt.batch_window = opt.batch_window;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.seed = seed;
  sopt.engine_mode = lds::net::EngineMode::Parallel;
  sopt.engine_threads = opt.threads;
  StoreService svc(sopt);
  Client client(svc);

  struct Chain {
    Rng rng{1};
    std::size_t left = 0;
  };
  const std::size_t clients = opt.clients_per_shard * shards;
  std::vector<std::unique_ptr<Chain>> chains;
  for (std::size_t c = 0; c < clients; ++c) {
    auto chain = std::make_unique<Chain>();
    chain->rng = Rng(mix_seed(seed, 0xb0 + c));
    chain->left = opt.ops / clients + (c < opt.ops % clients ? 1 : 0);
    chains.push_back(std::move(chain));
  }
  std::atomic<std::size_t> to_issue{opt.ops};
  std::function<void(Chain*)> next = [&](Chain* c) {
    if (c->left == 0) return;
    --c->left;
    to_issue.fetch_sub(1, std::memory_order_acq_rel);
    const std::string key =
        "key-" + std::to_string(c->rng.uniform_int(
                     0, static_cast<std::int64_t>(opt.keys) - 1));
    auto complete = [&, c] { next(c); };
    if (c->rng.bernoulli(opt.read_fraction)) {
      client.get(key, [complete](const GetResult&) { complete(); });
    } else {
      client.put(key, c->rng.bytes(value_size),
                 [complete](const PutResult&) { complete(); });
    }
  };
  for (auto& c : chains) next(c.get());
  svc.quiesce(
      [&] { return to_issue.load(std::memory_order_acquire) == 0; });

  ReplicaResult out;
  out.duration = 0;  // lanes have independent clocks; wall time is the metric
  out.ops = opt.ops;
  out.batches = svc.metrics().counter_total("batches");
  out.coalesced = svc.metrics().counter_total("puts_coalesced");
  out.verified = verify_service(svc);
  out.metrics_json = svc.metrics().to_json();
  return out;
}

/// One --remote configuration: opt.threads clients (each a `connections`-wide
/// pool), closed- or open-loop, verified against the client-observed history.
ReplicaResult run_remote(const BenchOptions& opt, std::size_t value_size,
                         std::size_t connections, std::uint64_t seed) {
  struct SharedHistory {
    std::mutex mu;
    core::History history;
    std::unordered_map<std::string, ObjectId> objects;
    std::size_t errors = 0;

    ObjectId intern(const std::string& key) {
      const auto it = objects.find(key);
      if (it != objects.end()) return it->second;
      const auto obj = static_cast<ObjectId>(objects.size());
      objects.emplace(key, obj);
      return obj;
    }
    void record(OpId id, core::OpKind kind, const std::string& key,
                NodeId client, double invoked, double responded, Tag tag,
                Value value) {
      std::lock_guard<std::mutex> lk(mu);
      const std::size_t idx =
          history.on_invoke(id, kind, intern(key), client, invoked);
      history.on_response(idx, responded, tag, std::move(value));
    }
    void error() {
      std::lock_guard<std::mutex> lk(mu);
      ++errors;
    }
  };

  SharedHistory shared;
  store::Histogram put_lat_ms, get_lat_ms;  // thread-safe (internal lock)
  const auto t0 = std::chrono::steady_clock::now();
  const auto now_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  store::Client::ConnectOptions copts;
  copts.connections = connections;

  // Priming pass: the server may be long-lived, holding versions from
  // sessions this history never saw.  Writing every key once — strictly
  // before the concurrent phase — gives each a session-known baseline, so
  // every later read must return a recorded tag (freshness) and the
  // verifiers are exact despite the unknown prior state.
  {
    Status st;
    const auto primer =
        store::Client::connect(opt.remote_host, opt.remote_port, &st);
    if (primer == nullptr) {
      std::fprintf(stderr, "remote connect failed: %s\n",
                   st.to_string().c_str());
      ReplicaResult out;
      out.ops = opt.ops;
      out.verified = false;
      return out;
    }
    Rng prng(mix_seed(seed, 0x9417));
    std::uint32_t seq = 0;
    for (std::size_t k = 0; k < opt.keys; ++k) {
      const std::string key = "key-" + std::to_string(k);
      const Value value(prng.bytes(value_size));
      const double inv = now_s();
      store::PutResult r;
      primer->put(key, value, [&r](const store::PutResult& pr) { r = pr; });
      const double resp = now_s();
      if (r.status.ok() && !r.coalesced) {
        shared.record(make_op_id(0, ++seq), core::OpKind::Write, key, 0, inv,
                      resp, r.tag, value);
      } else if (!r.status.ok()) {
        shared.error();
      }
    }
  }

  std::atomic<bool> connect_failed{false};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < opt.threads; ++t) {
    workers.emplace_back([&, t] {
      Status st;
      const auto client = store::Client::connect(opt.remote_host,
                                                 opt.remote_port, &st, copts);
      if (client == nullptr) {
        std::fprintf(stderr, "remote connect failed: %s\n",
                     st.to_string().c_str());
        connect_failed.store(true, std::memory_order_release);
        return;
      }
      Rng rng(mix_seed(seed, 0xec0 + t));
      const NodeId me = static_cast<NodeId>(t + 1);
      std::uint32_t seq = 0;
      const std::size_t my_ops =
          opt.ops / opt.threads + (t < opt.ops % opt.threads ? 1 : 0);
      auto key_of = [&] {
        return "key-" + std::to_string(rng.uniform_int(
                            0, static_cast<std::int64_t>(opt.keys) - 1));
      };
      auto record_get = [&](const std::string& key, double inv, double resp,
                            const store::GetResult& r) {
        if (r.status.ok()) {
          shared.record(make_op_id(me, ++seq), core::OpKind::Read, key, me,
                        inv, resp, r.tag, r.value);
        } else if (r.status.is(StatusCode::kNotFound)) {
          // NotFound is the initial value: recording it as (t0, empty) makes
          // a stale NotFound after a completed put a checkable violation.
          shared.record(make_op_id(me, ++seq), core::OpKind::Read, key, me,
                        inv, resp, kTag0, Value{});
        } else {
          shared.error();
        }
      };
      auto record_put = [&](const std::string& key, double inv, double resp,
                            const store::PutResult& r, const Value& value) {
        if (r.status.ok()) {
          // A coalesced put was absorbed by a newer same-key write: its
          // value is never readable and its tag belongs to the survivor,
          // so it has no linearization-visible record (exactly as the
          // server-side history skips absorbed puts by design).
          if (!r.coalesced) {
            shared.record(make_op_id(me, ++seq), core::OpKind::Write, key,
                          me, inv, resp, r.tag, value);
          }
        } else {
          shared.error();
        }
      };

      if (opt.rate > 0) {
        // Open loop over the async completion-queue API: arrivals come due
        // on the offered-load clock, never gated on replies.  Latency is
        // (completion - INTENDED arrival), so queueing delay at saturation
        // is charged to the server, not hidden by a stalled submitter.
        struct Pending {
          std::string key;
          double sched = 0;
          Value value;
          bool is_put = false;
        };
        std::unordered_map<std::uint64_t, Pending> pend;
        auto& cq = client->completions();
        auto on_completion = [&](const store::Completion& c) {
          const double resp = now_s();
          const auto it = pend.find(c.handle);
          if (it == pend.end()) return;
          const Pending& p = it->second;
          const double lat = (resp - p.sched) * 1e3;
          if (p.is_put) {
            put_lat_ms.record(lat);
            record_put(p.key, p.sched, resp, c.put, p.value);
          } else {
            get_lat_ms.record(lat);
            record_get(p.key, p.sched, resp, c.get);
          }
          pend.erase(it);
        };
        const double interarrival =
            static_cast<double>(opt.threads) / opt.rate;
        double due = now_s();
        store::Completion c;
        for (std::size_t i = 0; i < my_ops; ++i) {
          due += opt.bursty ? rng.exponential(interarrival) : interarrival;
          while (now_s() < due) {
            if (cq.poll(&c)) {
              on_completion(c);
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(100));
            }
          }
          const std::string key = key_of();
          if (rng.bernoulli(opt.read_fraction)) {
            pend.emplace(client->async_get(key),
                         Pending{key, due, Value{}, false});
          } else {
            Value value(rng.bytes(value_size));
            const auto h = client->async_put(key, value);
            pend.emplace(h, Pending{key, due, std::move(value), true});
          }
        }
        while (cq.outstanding() > 0 && cq.wait(&c, 60.0)) on_completion(c);
        return;
      }

      for (std::size_t i = 0; i < my_ops; ++i) {
        const double inv = now_s();
        if (rng.bernoulli(opt.read_fraction)) {
          if (rng.bernoulli(0.25)) {  // a quarter of reads are multi_gets
            std::vector<std::string> keys = {key_of(), key_of()};
            const auto rs = client->multi_get_sync(keys);
            const double resp = now_s();
            get_lat_ms.record((resp - inv) * 1e3);
            for (std::size_t k = 0; k < keys.size(); ++k) {
              record_get(keys[k], inv, resp, rs[k]);
            }
          } else {
            const std::string key = key_of();
            store::GetResult r;
            client->get(key,
                        [&r](const store::GetResult& gr) { r = gr; });
            const double resp = now_s();
            get_lat_ms.record((resp - inv) * 1e3);
            record_get(key, inv, resp, r);
          }
        } else {
          const std::string key = key_of();
          const Value value(rng.bytes(value_size));
          store::PutResult r;
          client->put(key, value,
                      [&r](const store::PutResult& pr) { r = pr; });
          const double resp = now_s();
          put_lat_ms.record((resp - inv) * 1e3);
          record_put(key, inv, resp, r, value);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  ReplicaResult out;
  out.duration = 0;  // wall time is the remote metric
  out.ops = opt.ops;
  if (connect_failed.load(std::memory_order_acquire)) {
    out.verified = false;
    return out;
  }
  if (shared.errors > 0) {
    std::fprintf(stderr, "remote run: %zu operations failed\n",
                 shared.errors);
  }
  const auto atomicity = shared.history.check_atomicity(Bytes{});
  if (!atomicity.ok) {
    std::fprintf(stderr, "remote run: ATOMICITY VIOLATION: %s\n",
                 atomicity.violation.c_str());
  }
  const auto freshness = lds::harness::verify_read_freshness(shared.history);
  if (!freshness.ok) {
    std::fprintf(stderr, "remote run: FRESHNESS VIOLATION: %s\n",
                 freshness.violation.c_str());
  }
  out.verified = atomicity.ok && freshness.ok && shared.errors == 0;
  out.latency_json = "{\"put_ms\":" + histogram_json(put_lat_ms) +
                     ",\"get_ms\":" + histogram_json(get_lat_ms) + "}";
  out.p99_ms = std::max(put_lat_ms.percentile(0.99),
                        get_lat_ms.percentile(0.99));
  return out;
}

/// Strict TCP port parse: digits only, in [min_port, 65535] — no silent
/// u16 truncation of out-of-range values.
bool parse_port(const char* s, unsigned long min_port, std::uint16_t* out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v < min_port || v > 65535) return false;
  *out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_size_list(const char* s, std::vector<std::size_t>* out) {
  out->clear();
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (token.empty()) return false;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || v == 0) return false;
      out->push_back(static_cast<std::size_t>(v));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return !out->empty();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --engine sim|parallel sim: one deterministic replica per thread;\n"
      "                        parallel: one service over --threads lanes\n"
      "  --remote HOST:PORT    drive a running lds_served instance instead\n"
      "                        (--threads clients; shards/backend come from\n"
      "                        the server)\n"
      "  --connections LIST    remote: per-client connection-pool sizes to\n"
      "                        sweep (1)\n"
      "  --rate R              remote: open-loop offered load, total ops/s\n"
      "                        over the async API (0 = closed loop)\n"
      "  --bursty              remote open loop: Poisson arrivals instead\n"
      "                        of fixed interarrival spacing\n"
      "  --require-scaling X   remote: fail unless throughput at the\n"
      "                        largest --connections value is >= X times\n"
      "                        the smallest's\n"
      "  --shards LIST         comma-separated shard counts (1,2,4,8)\n"
      "  --value-sizes LIST    comma-separated value sizes in bytes (256)\n"
      "  --threads N           service replicas on OS threads (1)\n"
      "  --ops N               client ops per replica per config (4000)\n"
      "  --keys N              distinct keys (32)\n"
      "  --clients N           closed-loop clients per shard (4)\n"
      "  --read-fraction X     fraction of ops that are gets (0.5)\n"
      "  --batch-window X      put-coalescing window in sim units (0.5)\n"
      "  --exponential         exponential instead of fixed link delays\n"
      "  --json PATH           write machine-readable results\n"
      "  --seed N              master seed (1)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--engine") {
      const char* v = next();
      auto m = v ? lds::net::parse_engine_mode(v)
                 : std::optional<lds::net::EngineMode>{};
      if (!m) {
        std::fprintf(stderr, "unknown engine '%s'\n", v ? v : "");
        return 2;
      }
      opt.engine = *m;
    } else if (arg == "--remote") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) {
        const std::string hp = v;
        const auto colon = hp.rfind(':');
        ok = colon != std::string::npos && colon > 0 && colon + 1 < hp.size();
        if (ok) {
          opt.remote_host = hp.substr(0, colon);
          ok = parse_port(hp.c_str() + colon + 1, 1, &opt.remote_port);
        }
      }
    } else if (arg == "--shards") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.shards);
    } else if (arg == "--connections") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.connections);
    } else if (arg == "--rate") {
      const char* v = next();
      ok = v != nullptr && (opt.rate = std::strtod(v, nullptr)) > 0;
    } else if (arg == "--bursty") {
      opt.bursty = true;
    } else if (arg == "--require-scaling") {
      const char* v = next();
      ok = v != nullptr && (opt.require_scaling = std::strtod(v, nullptr)) > 0;
    } else if (arg == "--value-sizes") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.value_sizes);
    } else if (arg == "--threads") {
      const char* v = next();
      ok = v && (opt.threads = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--ops") {
      const char* v = next();
      ok = v && (opt.ops = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--keys") {
      const char* v = next();
      ok = v && (opt.keys = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--clients") {
      const char* v = next();
      ok = v && (opt.clients_per_shard = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--read-fraction") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.read_fraction = std::strtod(v, nullptr);
    } else if (arg == "--batch-window") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.batch_window = std::strtod(v, nullptr);
    } else if (arg == "--exponential") {
      opt.exponential_latency = true;
    } else if (arg == "--json") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.json_path = v;
    } else if (arg == "--seed") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad or missing value for '%s'\n", arg.c_str());
      return 2;
    }
  }

  const bool remote = !opt.remote_host.empty();
  const bool parallel = opt.engine == lds::net::EngineMode::Parallel;
  const char* engine_name =
      remote ? "remote" : lds::net::engine_mode_name(opt.engine);
  std::printf("lds_store_bench: engine=%s threads=%zu ops%s=%zu keys=%zu "
              "clients/shard=%zu read-fraction=%.2f batch-window=%.2f "
              "seed=%llu\n",
              engine_name, opt.threads, parallel || remote ? "" : "/replica",
              opt.ops, opt.keys, opt.clients_per_shard, opt.read_fraction,
              opt.batch_window, static_cast<unsigned long long>(opt.seed));
  if (remote) {
    std::printf("remote target: %s:%u (server chooses shards/backend; "
                "verification is client-observed)\n",
                opt.remote_host.c_str(), opt.remote_port);
    if (opt.rate > 0) {
      std::printf("open loop: %.0f ops/s offered%s, async completion-queue "
                  "API, latency from intended arrival\n",
                  opt.rate, opt.bursty ? ", Poisson arrivals" : "");
    }
  }
  std::printf("\n");
  std::printf("%8s %6s %12s %12s %14s %10s %10s %10s %12s %8s %9s\n",
              "shards", "conns", "value_size", "sim_dur", "ops_per_unit",
              "batches", "coalesced", "wall_s", "wall_ops_s", "p99_ms",
              "verified");

  std::string json = "{\"bench\":\"lds_store_bench\",\"configs\":[";
  bool all_verified = true;
  // Snapshot source: the largest shard count seen (not sweep order, which
  // the user may pass descending).
  std::string snapshot_metrics;
  std::size_t snapshot_shards = 0;
  bool first_cfg = true;
  // Remote mode sweeps value sizes x connections: the shard count lives
  // server-side.  Local engines ignore the connections dimension.
  const std::vector<std::size_t> shard_sweep =
      remote ? std::vector<std::size_t>{0} : opt.shards;
  const std::vector<std::size_t> conn_sweep =
      remote ? opt.connections : std::vector<std::size_t>{1};
  // value_size -> (connections -> wall ops/s), for --require-scaling.
  std::map<std::size_t, std::map<std::size_t, double>> scaling;
  for (std::size_t value_size : opt.value_sizes) {
    for (std::size_t shards : shard_sweep) {
     for (std::size_t conns : conn_sweep) {
      const auto wall_start = std::chrono::steady_clock::now();
      std::vector<ReplicaResult> results;
      if (remote) {
        results.push_back(run_remote(opt, value_size, conns, opt.seed));
      } else if (parallel) {
        results.push_back(run_parallel(opt, shards, value_size, opt.seed));
      } else {
        results.resize(opt.threads);
        std::vector<std::thread> workers;
        for (std::size_t t = 0; t < opt.threads; ++t) {
          workers.emplace_back([&, t] {
            results[t] = run_replica(
                opt, shards, value_size,
                opt.threads == 1 ? opt.seed : mix_seed(opt.seed, t));
          });
        }
        for (auto& w : workers) w.join();
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();

      double agg_tput = 0;
      double max_dur = 0;
      std::size_t total_ops = 0;
      std::uint64_t batches = 0, coalesced = 0;
      bool verified = true;
      for (const auto& r : results) {
        if (r.duration > 0) {
          agg_tput += static_cast<double>(r.ops) / r.duration;
        }
        max_dur = std::max(max_dur, r.duration);
        total_ops += r.ops;
        batches += r.batches;
        coalesced += r.coalesced;
        verified = verified && r.verified;
      }
      const double wall_ops_s = static_cast<double>(total_ops) / wall;
      const double p99_ms = results.empty() ? 0 : results[0].p99_ms;
      std::printf(
          "%8zu %6zu %12zu %12.1f %14.3f %10llu %10llu %10.2f %12.0f "
          "%8.2f %9s\n",
          shards, conns, value_size, max_dur, agg_tput,
          static_cast<unsigned long long>(batches),
          static_cast<unsigned long long>(coalesced), wall, wall_ops_s,
          p99_ms, verified ? "yes" : "NO");
      all_verified = all_verified && verified;
      if (remote) scaling[value_size][conns] = wall_ops_s;

      char buf[448];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"engine\":\"%s\",\"shards\":%zu,\"threads\":%zu,"
                    "\"connections\":%zu,\"rate\":%.1f,"
                    "\"value_size\":%zu,"
                    "\"ops\":%zu,\"metric\":\"%s\","
                    "\"value\":%.6f,\"batches\":%llu,\"coalesced\":%llu,"
                    "\"wall_seconds\":%.3f,\"wall_ops_per_sec\":%.3f,"
                    "\"verified\":%s",
                    first_cfg ? "" : ",", engine_name, shards,
                    opt.threads, conns, opt.rate, value_size, total_ops,
                    parallel || remote ? "ops_per_sec_wall"
                                       : "ops_per_sim_unit",
                    parallel || remote ? wall_ops_s : agg_tput,
                    static_cast<unsigned long long>(batches),
                    static_cast<unsigned long long>(coalesced), wall,
                    wall_ops_s, verified ? "true" : "false");
      json += buf;
      if (remote && !results.empty() && !results[0].latency_json.empty()) {
        json += ",\"latency\":" + results[0].latency_json;
      }
      json += "}";
      first_cfg = false;
      if (shards >= snapshot_shards) {
        snapshot_shards = shards;
        snapshot_metrics = results[0].metrics_json;
      }
     }
    }
  }
  json += "],\"metrics_snapshot\":" +
          (snapshot_metrics.empty() ? "{}" : snapshot_metrics) + "}\n";

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\njson written to %s\n", opt.json_path.c_str());
  }
  if (!all_verified) {
    std::fprintf(stderr, "VERIFICATION FAILED: a shard history violated "
                         "atomicity/freshness\n");
    return 1;
  }
  if (remote && opt.require_scaling > 0) {
    for (const auto& [vs, by_conns] : scaling) {
      if (by_conns.size() < 2) continue;
      const double lo = by_conns.begin()->second;
      const double hi = by_conns.rbegin()->second;
      const double ratio = lo > 0 ? hi / lo : 0;
      std::printf("scaling value_size=%zu: %zu conns -> %zu conns = %.2fx "
                  "(require >= %.2fx)\n",
                  vs, by_conns.begin()->first, by_conns.rbegin()->first,
                  ratio, opt.require_scaling);
      if (ratio < opt.require_scaling) {
        std::fprintf(stderr, "SCALING FAILED: %.2fx < required %.2fx\n",
                     ratio, opt.require_scaling);
        return 1;
      }
    }
  }
  return 0;
}
