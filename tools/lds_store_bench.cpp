// lds_store_bench — throughput driver for the sharded store service.
//
// Sweeps threads x shards x value-size: every OS thread runs one
// StoreService replica (its own simulated world) under a closed-loop client
// mix with no think time, so per-replica throughput is ops per *simulated*
// time unit — deterministic for a fixed seed, and the number that shows how
// aggregate service capacity scales with the shard count (more shards = more
// clusters advancing concurrently in one time base).  Aggregate throughput
// is the sum over replicas.
//
//   lds_store_bench                         # default sweep: 1,2,4,8 shards
//   lds_store_bench --shards 1,4 --value-sizes 64,1024 --json out.json
//   lds_store_bench --engine parallel --threads 8 --shards 8
//   lds_store_bench --remote 127.0.0.1:7777 --threads 4   # vs lds_served
//
// --engine selects the execution engine (net/engine.h):
//   sim      — every OS thread runs one deterministic StoreService replica;
//              per-replica throughput is ops per *simulated* time unit
//              (bit-reproducible for a fixed seed), aggregate is the sum.
//   parallel — ONE StoreService per configuration with its shards spread
//              over --threads ParallelEngine lanes; the number that matters
//              is real wall-clock ops/s, printed for both engines so the
//              speedup is directly comparable on the same workload.
// Every run replays each shard's recorded history through the atomicity and
// freshness verifiers and reports the verdict (the linearizability gate for
// the non-deterministic parallel engine).
//
// --remote host:port drives a running lds_served instance instead of an
// in-process service: --threads OS threads each hold one client (whose
// connection-pool size sweeps over --connections) and run a put/get mix —
// every fourth closed-loop read is a multi_get — while recording a
// CLIENT-OBSERVED history with wall-clock invocation/response times.  That
// history goes through the same atomicity + freshness verifiers, so the
// linearizability gate holds across a real network hop (NotFound reads are
// recorded as the initial value, so a stale NotFound after a completed put
// is a violation, not a skip).  Shard count and backend are whatever the
// server was started with.
//
// Two remote load modes:
//   closed loop (default)  — each thread waits for every reply before the
//                            next request; latency is pure service time.
//   open loop (--rate R)   — requests arrive at R ops/s total, spread over
//                            the threads and submitted through the ASYNC
//                            completion-queue API regardless of how long
//                            replies take.  Latency is measured from the
//                            INTENDED arrival time (immune to coordinated
//                            omission), so the p99-vs-offered-load curve is
//                            honest once the server saturates.  --bursty
//                            draws exponential interarrivals (Poisson
//                            process) instead of a fixed spacing.
// Per-op latency histograms (p50/p99/p999, milliseconds) are printed per
// configuration and embedded in --json.  --require-scaling X fails the run
// unless remote throughput at the largest --connections value is at least
// X times the smallest's (the CI gate for connection-count scaling).
//
// The JSON output carries one record per configuration (params, throughput,
// wall time) plus the full MetricsRegistry snapshot of the first replica of
// the largest configuration — batching/coalescing counters included — so CI
// can track the perf trajectory and assert batching is actually engaged.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "harness/stress.h"
#include "harness/workload.h"
#include "store/client.h"

namespace {

using namespace lds;
using store::Client;
using store::GetResult;
using store::PutResult;
using store::StoreOptions;
using store::StoreService;

struct BenchOptions {
  lds::net::EngineMode engine = lds::net::EngineMode::Deterministic;
  std::vector<std::size_t> shards = {1, 2, 4, 8};
  std::vector<std::size_t> value_sizes = {256};
  std::size_t threads = 1;
  std::size_t ops = 4000;  ///< per replica per configuration
  std::size_t keys = 32;
  std::size_t clients_per_shard = 4;
  double read_fraction = 0.5;
  double batch_window = 0.5;
  bool exponential_latency = false;
  std::uint64_t seed = 1;
  std::string json_path;
  std::string remote_host;  ///< non-empty = drive a served instance
  std::uint16_t remote_port = 0;
  std::vector<std::size_t> connections = {1};  ///< remote: pool-size sweep
  double rate = 0;        ///< remote: open-loop offered load, ops/s (0 = closed)
  bool bursty = false;    ///< remote: Poisson arrivals instead of fixed spacing
  double require_scaling = 0;  ///< remote: min tput ratio largest/smallest pool
  // Workload engine (shared with lds_stress via harness/workload.h).
  double zipf_theta = 0;    ///< key skew: 0 uniform, 0.99 = YCSB default
  std::string value_dist;   ///< "" = fixed at the swept value size
  std::size_t tenants = 1;  ///< disjoint key namespaces, threads round-robin
  std::size_t tenant_inflight = 0;  ///< open loop: per-client admission (0=∞)
  // Client read cache (version-validated tag-only rounds).
  bool cache = false;
  double cache_ttl = 0;
  std::size_t cache_capacity = 4096;
  std::string compare_cache_path;  ///< remote: cache off-vs-on A/B, JSON out
  bool multi_get_mix = true;  ///< closed loop: every 4th read is a multi_get
};

struct ReplicaResult {
  double duration = 0;  ///< sim time from first op to last completion
  std::size_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  bool verified = true;  ///< every shard history passed both checkers
  std::string metrics_json;
  std::string latency_json;  ///< remote: {"put_ms":{...},"get_ms":{...}}
  double p99_ms = 0;         ///< remote: worse of put/get p99, for the table
  double get_p50_ms = 0, get_p99_ms = 0;  ///< remote: get-only percentiles
  /// Client read-cache counters, summed over the driving clients.
  std::uint64_t cache_hits = 0, cache_misses = 0, cache_validations = 0,
                cache_invalidations = 0, bytes_saved = 0;
  std::string client_metrics_json;  ///< one client's registry, cache runs
};

harness::WorkloadModel make_model(const BenchOptions& opt,
                                  std::size_t value_size) {
  harness::WorkloadOptions w;
  w.keys = opt.keys;
  w.read_fraction = opt.read_fraction;
  w.zipf_theta = opt.zipf_theta;
  if (!opt.value_dist.empty()) {
    if (const auto d = harness::ValueSizeDist::parse(opt.value_dist);
        d.has_value()) {
      w.value_dist = *d;
    }
  } else {
    w.value_dist.kind = harness::ValueSizeDist::Kind::Fixed;
    w.value_dist.a = w.value_dist.b = value_size;
  }
  w.tenants = opt.tenants;
  w.seed = opt.seed;
  return harness::WorkloadModel(w);
}

store::CacheOptions bench_cache(const BenchOptions& opt) {
  store::CacheOptions c;
  c.enabled = opt.cache;
  c.ttl = opt.cache_ttl;
  c.capacity = opt.cache_capacity;
  return c;
}

void add_cache_stats(const Client& client, ReplicaResult* out) {
  const auto& m = client.metrics();
  out->cache_hits += m.counter_total("cache_hits");
  out->cache_misses += m.counter_total("cache_misses");
  out->cache_validations += m.counter_total("cache_validation_rounds");
  out->cache_invalidations += m.counter_total("cache_invalidations");
  out->bytes_saved += m.counter_total("wire_value_bytes_saved");
}

std::string histogram_json(const lds::store::Histogram& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f,"
                "\"p999\":%.3f,\"max\":%.3f}",
                static_cast<unsigned long long>(h.count()), h.mean(),
                h.percentile(0.5), h.percentile(0.99), h.percentile(0.999),
                h.max());
  return buf;
}

/// Replay every shard history through the atomicity + freshness verifiers.
bool verify_service(StoreService& svc) {
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    const auto& h = svc.shard_history(s);
    if (!h.all_complete()) return false;
    if (!h.check_atomicity(Bytes{}).ok) return false;
    if (!lds::harness::verify_read_freshness(h).ok) return false;
  }
  return true;
}

ReplicaResult run_replica(const BenchOptions& opt, std::size_t shards,
                          std::size_t value_size, std::uint64_t seed) {
  StoreOptions sopt;
  sopt.shards = shards;
  sopt.batch_window = opt.batch_window;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.seed = seed;
  StoreService svc(sopt);
  Client client(svc, bench_cache(opt));
  const harness::WorkloadModel model = make_model(opt, value_size);
  Rng rng(mix_seed(seed, 0xb0));

  std::size_t remaining = opt.ops;
  std::size_t done = 0;
  double done_time = 0;
  // `next` carries the issuing client's tenant so its ops stay inside that
  // tenant's key namespace (clients round-robin over tenants).
  std::function<void(std::size_t)> next = [&](std::size_t tenant) {
    if (remaining == 0) return;
    --remaining;
    const std::string key = model.key_name(tenant, model.key_index(rng));
    auto complete = [&, tenant] {
      ++done;
      if (done == opt.ops) done_time = svc.sim().now();
      next(tenant);
    };
    if (rng.bernoulli(opt.read_fraction)) {
      client.get(key, [complete](const GetResult&) { complete(); });
    } else {
      client.put(key, rng.bytes(model.value_size(rng)),
                 [complete](const PutResult&) { complete(); });
    }
  };
  const std::size_t clients = opt.clients_per_shard * shards;
  for (std::size_t c = 0; c < clients; ++c) {
    svc.sim().at(0.0, [&next, t = model.tenant_of_client(c)] { next(t); });
  }
  svc.quiesce([&] { return remaining == 0; });

  ReplicaResult out;
  out.duration = done_time;
  out.ops = opt.ops;
  out.batches = svc.metrics().counter_total("batches");
  out.coalesced = svc.metrics().counter_total("puts_coalesced");
  out.verified = verify_service(svc);
  out.metrics_json = svc.metrics().to_json();
  if (opt.cache) {
    add_cache_stats(client, &out);
    out.client_metrics_json = client.metrics().to_json();
  }
  return out;
}

/// One parallel-engine configuration: a single service, shards spread over
/// opt.threads lanes, driven by closed-loop client chains (each chain issues
/// its next op from the previous completion callback; chain state hops
/// lanes with the callbacks, synchronized by the engine).
ReplicaResult run_parallel(const BenchOptions& opt, std::size_t shards,
                           std::size_t value_size, std::uint64_t seed) {
  StoreOptions sopt;
  sopt.shards = shards;
  sopt.batch_window = opt.batch_window;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.seed = seed;
  sopt.engine_mode = lds::net::EngineMode::Parallel;
  sopt.engine_threads = opt.threads;
  StoreService svc(sopt);
  Client client(svc, bench_cache(opt));
  const harness::WorkloadModel model = make_model(opt, value_size);

  struct Chain {
    Rng rng{1};
    std::size_t left = 0;
    std::size_t tenant = 0;
  };
  const std::size_t clients = opt.clients_per_shard * shards;
  std::vector<std::unique_ptr<Chain>> chains;
  for (std::size_t c = 0; c < clients; ++c) {
    auto chain = std::make_unique<Chain>();
    chain->rng = Rng(mix_seed(seed, 0xb0 + c));
    chain->left = opt.ops / clients + (c < opt.ops % clients ? 1 : 0);
    chain->tenant = model.tenant_of_client(c);
    chains.push_back(std::move(chain));
  }
  std::atomic<std::size_t> to_issue{opt.ops};
  std::function<void(Chain*)> next = [&](Chain* c) {
    if (c->left == 0) return;
    --c->left;
    to_issue.fetch_sub(1, std::memory_order_acq_rel);
    const std::string key =
        model.key_name(c->tenant, model.key_index(c->rng));
    auto complete = [&, c] { next(c); };
    if (c->rng.bernoulli(opt.read_fraction)) {
      client.get(key, [complete](const GetResult&) { complete(); });
    } else {
      client.put(key, c->rng.bytes(model.value_size(c->rng)),
                 [complete](const PutResult&) { complete(); });
    }
  };
  for (auto& c : chains) next(c.get());
  svc.quiesce(
      [&] { return to_issue.load(std::memory_order_acquire) == 0; });

  ReplicaResult out;
  out.duration = 0;  // lanes have independent clocks; wall time is the metric
  out.ops = opt.ops;
  out.batches = svc.metrics().counter_total("batches");
  out.coalesced = svc.metrics().counter_total("puts_coalesced");
  out.verified = verify_service(svc);
  out.metrics_json = svc.metrics().to_json();
  if (opt.cache) {
    add_cache_stats(client, &out);
    out.client_metrics_json = client.metrics().to_json();
  }
  return out;
}

/// One --remote configuration: opt.threads clients (each a `connections`-wide
/// pool), closed- or open-loop, verified against the client-observed history.
/// Verification is per tenant: each tenant's clients record into that
/// tenant's own history (tenant key namespaces are disjoint, so the split
/// loses no cross-op ordering), and every tenant must pass both checkers —
/// including runs with the read cache enabled, where cache-served reads are
/// recorded with their validated tags.
ReplicaResult run_remote(const BenchOptions& opt, std::size_t value_size,
                         std::size_t connections, std::uint64_t seed) {
  struct SharedHistory {
    std::mutex mu;
    core::History history;
    std::unordered_map<std::string, ObjectId> objects;
    std::size_t errors = 0;

    ObjectId intern(const std::string& key) {
      const auto it = objects.find(key);
      if (it != objects.end()) return it->second;
      const auto obj = static_cast<ObjectId>(objects.size());
      objects.emplace(key, obj);
      return obj;
    }
    void record(OpId id, core::OpKind kind, const std::string& key,
                NodeId client, double invoked, double responded, Tag tag,
                Value value) {
      std::lock_guard<std::mutex> lk(mu);
      const std::size_t idx =
          history.on_invoke(id, kind, intern(key), client, invoked);
      history.on_response(idx, responded, tag, std::move(value));
    }
    void error() {
      std::lock_guard<std::mutex> lk(mu);
      ++errors;
    }
  };

  const harness::WorkloadModel model = make_model(opt, value_size);
  std::vector<std::unique_ptr<SharedHistory>> tenants;
  for (std::size_t t = 0; t < opt.tenants; ++t) {
    tenants.push_back(std::make_unique<SharedHistory>());
  }
  store::Histogram put_lat_ms, get_lat_ms;  // thread-safe (internal lock)
  const auto t0 = std::chrono::steady_clock::now();
  const auto now_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  store::Client::ConnectOptions copts;
  copts.connections = connections;
  copts.cache = bench_cache(opt);

  // Priming pass: the server may be long-lived, holding versions from
  // sessions this history never saw.  Writing every key once — strictly
  // before the concurrent phase — gives each a session-known baseline, so
  // every later read must return a recorded tag (freshness) and the
  // verifiers are exact despite the unknown prior state.  Keys are visited
  // in the workload's coldest-popularity-first order (not ascending index):
  // a uniform ascending walk would both ignore tenant namespaces and leave
  // the hottest keys primed *last*, right before measurement starts — a
  // warm-up bias the Zipfian workloads exist to avoid.  The primer client
  // never enables the cache; warming the measured clients' caches is the
  // measured run's own job.
  {
    Status st;
    const auto primer =
        store::Client::connect(opt.remote_host, opt.remote_port, &st);
    if (primer == nullptr) {
      std::fprintf(stderr, "remote connect failed: %s\n",
                   st.to_string().c_str());
      ReplicaResult out;
      out.ops = opt.ops;
      out.verified = false;
      return out;
    }
    Rng prng(mix_seed(seed, 0x9417));
    std::uint32_t seq = 0;
    for (const std::size_t k : model.keys_coldest_first()) {
      for (std::size_t t = 0; t < opt.tenants; ++t) {
        const std::string key = model.key_name(t, k);
        const Value value(prng.bytes(model.value_size(prng)));
        const double inv = now_s();
        store::PutResult r;
        primer->put(key, value, [&r](const store::PutResult& pr) { r = pr; });
        const double resp = now_s();
        if (r.status.ok() && !r.coalesced) {
          tenants[t]->record(make_op_id(0, ++seq), core::OpKind::Write, key,
                             0, inv, resp, r.tag, value);
        } else if (!r.status.ok()) {
          tenants[t]->error();
        }
      }
    }
  }

  std::atomic<bool> connect_failed{false};
  std::atomic<std::uint64_t> agg_hits{0}, agg_misses{0}, agg_validations{0},
      agg_invalidations{0}, agg_saved{0};
  std::mutex cm_mu;
  std::string client_metrics_json;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < opt.threads; ++t) {
    workers.emplace_back([&, t] {
      Status st;
      const auto client = store::Client::connect(opt.remote_host,
                                                 opt.remote_port, &st, copts);
      if (client == nullptr) {
        std::fprintf(stderr, "remote connect failed: %s\n",
                     st.to_string().c_str());
        connect_failed.store(true, std::memory_order_release);
        return;
      }
      Rng rng(mix_seed(seed, 0xec0 + t));
      const NodeId me = static_cast<NodeId>(t + 1);
      const std::size_t tenant = model.tenant_of_client(t);
      SharedHistory& shared = *tenants[tenant];
      std::uint32_t seq = 0;
      const std::size_t my_ops =
          opt.ops / opt.threads + (t < opt.ops % opt.threads ? 1 : 0);
      auto key_of = [&] { return model.key_name(tenant, model.key_index(rng)); };
      auto harvest = [&] {
        if (!opt.cache) return;
        const auto& m = client->metrics();
        agg_hits += m.counter_total("cache_hits");
        agg_misses += m.counter_total("cache_misses");
        agg_validations += m.counter_total("cache_validation_rounds");
        agg_invalidations += m.counter_total("cache_invalidations");
        agg_saved += m.counter_total("wire_value_bytes_saved");
        std::lock_guard<std::mutex> lk(cm_mu);
        if (client_metrics_json.empty()) {
          client_metrics_json = m.to_json();
        }
      };
      auto record_get = [&](const std::string& key, double inv, double resp,
                            const store::GetResult& r) {
        if (r.status.ok()) {
          shared.record(make_op_id(me, ++seq), core::OpKind::Read, key, me,
                        inv, resp, r.tag, r.value);
        } else if (r.status.is(StatusCode::kNotFound)) {
          // NotFound is the initial value: recording it as (t0, empty) makes
          // a stale NotFound after a completed put a checkable violation.
          shared.record(make_op_id(me, ++seq), core::OpKind::Read, key, me,
                        inv, resp, kTag0, Value{});
        } else {
          shared.error();
        }
      };
      auto record_put = [&](const std::string& key, double inv, double resp,
                            const store::PutResult& r, const Value& value) {
        if (r.status.ok()) {
          // A coalesced put was absorbed by a newer same-key write: its
          // value is never readable and its tag belongs to the survivor,
          // so it has no linearization-visible record (exactly as the
          // server-side history skips absorbed puts by design).
          if (!r.coalesced) {
            shared.record(make_op_id(me, ++seq), core::OpKind::Write, key,
                          me, inv, resp, r.tag, value);
          }
        } else {
          shared.error();
        }
      };

      if (opt.rate > 0) {
        // Open loop over the async completion-queue API: arrivals come due
        // on the offered-load clock, never gated on replies.  Latency is
        // (completion - INTENDED arrival), so queueing delay at saturation
        // is charged to the server, not hidden by a stalled submitter.
        struct Pending {
          std::string key;
          double sched = 0;
          Value value;
          bool is_put = false;
        };
        std::unordered_map<std::uint64_t, Pending> pend;
        auto& cq = client->completions();
        auto on_completion = [&](const store::Completion& c) {
          const double resp = now_s();
          const auto it = pend.find(c.handle);
          if (it == pend.end()) return;
          const Pending& p = it->second;
          const double lat = (resp - p.sched) * 1e3;
          if (p.is_put) {
            put_lat_ms.record(lat);
            record_put(p.key, p.sched, resp, c.put, p.value);
          } else {
            get_lat_ms.record(lat);
            record_get(p.key, p.sched, resp, c.get);
          }
          pend.erase(it);
        };
        const double interarrival =
            static_cast<double>(opt.threads) / opt.rate;
        double due = now_s();
        store::Completion c;
        for (std::size_t i = 0; i < my_ops; ++i) {
          due += opt.bursty ? rng.exponential(interarrival) : interarrival;
          while (now_s() < due) {
            if (cq.poll(&c)) {
              on_completion(c);
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(100));
            }
          }
          // Per-tenant admission: a tenant's client stops submitting past
          // its inflight cap and drains instead, so one hot tenant cannot
          // queue unboundedly ahead of the others.  Late arrivals are still
          // charged from their INTENDED time (the due clock keeps running).
          while (opt.tenant_inflight > 0 &&
                 pend.size() >= opt.tenant_inflight) {
            if (cq.poll(&c)) {
              on_completion(c);
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(100));
            }
          }
          const std::string key = key_of();
          if (rng.bernoulli(opt.read_fraction)) {
            pend.emplace(client->async_get(key),
                         Pending{key, due, Value{}, false});
          } else {
            Value value(rng.bytes(model.value_size(rng)));
            const auto h = client->async_put(key, value);
            pend.emplace(h, Pending{key, due, std::move(value), true});
          }
        }
        while (cq.outstanding() > 0 && cq.wait(&c, 60.0)) on_completion(c);
        harvest();
        return;
      }

      for (std::size_t i = 0; i < my_ops; ++i) {
        const double inv = now_s();
        if (rng.bernoulli(opt.read_fraction)) {
          // A quarter of reads are multi_gets (they bypass the read cache);
          // cache A/B comparisons disable the mix so both runs measure the
          // same single-get path.
          if (opt.multi_get_mix && rng.bernoulli(0.25)) {
            std::vector<std::string> keys = {key_of(), key_of()};
            const auto rs = client->multi_get_sync(keys);
            const double resp = now_s();
            get_lat_ms.record((resp - inv) * 1e3);
            for (std::size_t k = 0; k < keys.size(); ++k) {
              record_get(keys[k], inv, resp, rs[k]);
            }
          } else {
            const std::string key = key_of();
            store::GetResult r;
            client->get(key,
                        [&r](const store::GetResult& gr) { r = gr; });
            const double resp = now_s();
            get_lat_ms.record((resp - inv) * 1e3);
            record_get(key, inv, resp, r);
          }
        } else {
          const std::string key = key_of();
          const Value value(rng.bytes(model.value_size(rng)));
          store::PutResult r;
          client->put(key, value,
                      [&r](const store::PutResult& pr) { r = pr; });
          const double resp = now_s();
          put_lat_ms.record((resp - inv) * 1e3);
          record_put(key, inv, resp, r, value);
        }
      }
      harvest();
    });
  }
  for (auto& w : workers) w.join();

  ReplicaResult out;
  out.duration = 0;  // wall time is the remote metric
  out.ops = opt.ops;
  if (connect_failed.load(std::memory_order_acquire)) {
    out.verified = false;
    return out;
  }
  out.verified = true;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    SharedHistory& shared = *tenants[t];
    const std::string who =
        tenants.size() > 1 ? "tenant " + std::to_string(t) : "remote run";
    if (shared.errors > 0) {
      std::fprintf(stderr, "%s: %zu operations failed\n", who.c_str(),
                   shared.errors);
    }
    const auto atomicity = shared.history.check_atomicity(Bytes{});
    if (!atomicity.ok) {
      std::fprintf(stderr, "%s: ATOMICITY VIOLATION: %s\n", who.c_str(),
                   atomicity.violation.c_str());
    }
    const auto freshness =
        lds::harness::verify_read_freshness(shared.history);
    if (!freshness.ok) {
      std::fprintf(stderr, "%s: FRESHNESS VIOLATION: %s\n", who.c_str(),
                   freshness.violation.c_str());
    }
    out.verified = out.verified && atomicity.ok && freshness.ok &&
                   shared.errors == 0;
  }
  out.latency_json = "{\"put_ms\":" + histogram_json(put_lat_ms) +
                     ",\"get_ms\":" + histogram_json(get_lat_ms) + "}";
  out.p99_ms = std::max(put_lat_ms.percentile(0.99),
                        get_lat_ms.percentile(0.99));
  out.get_p50_ms = get_lat_ms.percentile(0.5);
  out.get_p99_ms = get_lat_ms.percentile(0.99);
  out.cache_hits = agg_hits.load();
  out.cache_misses = agg_misses.load();
  out.cache_validations = agg_validations.load();
  out.cache_invalidations = agg_invalidations.load();
  out.bytes_saved = agg_saved.load();
  out.client_metrics_json = std::move(client_metrics_json);
  return out;
}

/// --compare-cache PATH: same-seed cache-off vs cache-on A/B against a
/// running lds_served instance.  Both runs replay the identical op stream
/// (keys, mix, sizes — the cache consumes no Rng draws), so every delta is
/// attributable to the cache.  Emits one JSON document with hit rate,
/// get p50/p99 deltas, wire bytes saved, per-run verifier verdicts, and —
/// when the workload qualifies (zipf-theta >= 0.99, reads >= 90%) — the
/// pass/fail perf gate (hit rate >= 80%, p99 get improvement >= 30%,
/// bytes saved > 0).  Exit status reflects the gate.
int run_compare_cache(BenchOptions opt) {
  opt.multi_get_mix = false;  // measure the cached single-get path only
  const std::size_t value_size = opt.value_sizes.front();
  const std::size_t conns = opt.connections.front();

  BenchOptions off = opt;
  off.cache = false;
  BenchOptions on = opt;
  on.cache = true;

  std::printf("compare-cache: zipf-theta=%.2f read-fraction=%.2f keys=%zu "
              "tenants=%zu threads=%zu ops=%zu value-size=%zu ttl=%g "
              "capacity=%zu seed=%llu\n",
              opt.zipf_theta, opt.read_fraction, opt.keys, opt.tenants,
              opt.threads, opt.ops, value_size, opt.cache_ttl,
              opt.cache_capacity,
              static_cast<unsigned long long>(opt.seed));

  auto timed = [&](const BenchOptions& o, double* wall) {
    const auto t0 = std::chrono::steady_clock::now();
    ReplicaResult r = run_remote(o, value_size, conns, opt.seed);
    *wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
    return r;
  };
  double wall_off = 0, wall_on = 0;
  const ReplicaResult roff = timed(off, &wall_off);
  const ReplicaResult ron = timed(on, &wall_on);

  const std::uint64_t lookups = ron.cache_hits + ron.cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(ron.cache_hits) /
                        static_cast<double>(lookups)
                  : 0;
  auto improvement = [](double base, double now) {
    return base > 0 ? (base - now) / base : 0.0;
  };
  const double p50_improv = improvement(roff.get_p50_ms, ron.get_p50_ms);
  const double p99_improv = improvement(roff.get_p99_ms, ron.get_p99_ms);
  const bool gate_applicable =
      opt.zipf_theta >= 0.99 - 1e-9 && opt.read_fraction >= 0.9 - 1e-9;
  bool pass = roff.verified && ron.verified;
  if (gate_applicable) {
    pass = pass && hit_rate >= 0.8 && p99_improv >= 0.3 &&
           ron.bytes_saved > 0;
  }

  std::printf("\n%12s %12s %12s %12s %10s\n", "run", "get_p50_ms",
              "get_p99_ms", "wall_ops_s", "verified");
  std::printf("%12s %12.3f %12.3f %12.0f %10s\n", "cache-off",
              roff.get_p50_ms, roff.get_p99_ms,
              static_cast<double>(opt.ops) / wall_off,
              roff.verified ? "yes" : "NO");
  std::printf("%12s %12.3f %12.3f %12.0f %10s\n", "cache-on", ron.get_p50_ms,
              ron.get_p99_ms, static_cast<double>(opt.ops) / wall_on,
              ron.verified ? "yes" : "NO");
  std::printf("\ncache: %llu hits / %llu misses (hit rate %.1f%%), "
              "%llu validation rounds, %llu value bytes kept off the wire\n",
              static_cast<unsigned long long>(ron.cache_hits),
              static_cast<unsigned long long>(ron.cache_misses),
              hit_rate * 100.0,
              static_cast<unsigned long long>(ron.cache_validations),
              static_cast<unsigned long long>(ron.bytes_saved));
  std::printf("get latency: p50 %+.1f%%, p99 %+.1f%% vs cache-off\n",
              -p50_improv * 100.0, -p99_improv * 100.0);
  std::printf("gate (%s): %s\n",
              gate_applicable ? "hit>=80%, p99 cut>=30%, bytes>0, verified"
                              : "verifiers only; workload below gate "
                                "thresholds",
              pass ? "PASS" : "FAIL");

  char buf[512];
  std::string json = "{\"bench\":\"lds_store_bench_workloads\",";
  std::snprintf(buf, sizeof(buf),
                "\"workload\":{\"zipf_theta\":%.3f,\"read_fraction\":%.3f,"
                "\"keys\":%zu,\"tenants\":%zu,\"value_size\":%zu,"
                "\"value_dist\":\"%s\",\"rate\":%.1f,\"bursty\":%s,"
                "\"threads\":%zu,\"connections\":%zu,\"ops\":%zu,"
                "\"seed\":%llu},",
                opt.zipf_theta, opt.read_fraction, opt.keys, opt.tenants,
                value_size,
                make_model(opt, value_size).options().value_dist.spec()
                    .c_str(),
                opt.rate, opt.bursty ? "true" : "false", opt.threads, conns,
                opt.ops, static_cast<unsigned long long>(opt.seed));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"cache\":{\"ttl\":%g,\"capacity\":%zu},", opt.cache_ttl,
                opt.cache_capacity);
  json += buf;
  auto run_json = [&](const char* name, const ReplicaResult& r,
                      double wall) {
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"get_p50_ms\":%.4f,\"get_p99_ms\":%.4f,"
                  "\"wall_seconds\":%.3f,\"wall_ops_per_sec\":%.1f,"
                  "\"verified\":%s,\"latency\":",
                  name, r.get_p50_ms, r.get_p99_ms, wall,
                  static_cast<double>(opt.ops) / wall,
                  r.verified ? "true" : "false");
    json += buf;
    json += r.latency_json.empty() ? "{}" : r.latency_json;
    json += "}";
  };
  run_json("cache_off", roff, wall_off);
  json += ",";
  run_json("cache_on", ron, wall_on);
  std::snprintf(buf, sizeof(buf),
                ",\"cache_counters\":{\"hits\":%llu,\"misses\":%llu,"
                "\"hit_rate\":%.4f,\"validation_rounds\":%llu,"
                "\"invalidations\":%llu,\"wire_value_bytes_saved\":%llu}",
                static_cast<unsigned long long>(ron.cache_hits),
                static_cast<unsigned long long>(ron.cache_misses), hit_rate,
                static_cast<unsigned long long>(ron.cache_validations),
                static_cast<unsigned long long>(ron.cache_invalidations),
                static_cast<unsigned long long>(ron.bytes_saved));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"deltas\":{\"get_p50_improvement\":%.4f,"
                "\"get_p99_improvement\":%.4f}"
                ",\"gate\":{\"applicable\":%s,\"hit_rate_min\":0.8,"
                "\"p99_improvement_min\":0.3,\"pass\":%s}}\n",
                p50_improv, p99_improv, gate_applicable ? "true" : "false",
                pass ? "true" : "false");
  json += buf;
  if (!ron.client_metrics_json.empty()) {
    // Splice the full client registry in before the closing brace.
    json.erase(json.size() - 2);  // strip "}\n"
    json += ",\"client_metrics\":" + ron.client_metrics_json + "}\n";
  }

  std::FILE* f = std::fopen(opt.compare_cache_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n",
                 opt.compare_cache_path.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("json written to %s\n", opt.compare_cache_path.c_str());
  return pass ? 0 : 1;
}

/// Strict TCP port parse: digits only, in [min_port, 65535] — no silent
/// u16 truncation of out-of-range values.
bool parse_port(const char* s, unsigned long min_port, std::uint16_t* out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v < min_port || v > 65535) return false;
  *out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_size_list(const char* s, std::vector<std::size_t>* out) {
  out->clear();
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (token.empty()) return false;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || v == 0) return false;
      out->push_back(static_cast<std::size_t>(v));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return !out->empty();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --engine sim|parallel sim: one deterministic replica per thread;\n"
      "                        parallel: one service over --threads lanes\n"
      "  --remote HOST:PORT    drive a running lds_served instance instead\n"
      "                        (--threads clients; shards/backend come from\n"
      "                        the server)\n"
      "  --connections LIST    remote: per-client connection-pool sizes to\n"
      "                        sweep (1)\n"
      "  --rate R              remote: open-loop offered load, total ops/s\n"
      "                        over the async API (0 = closed loop)\n"
      "  --bursty              remote open loop: Poisson arrivals instead\n"
      "                        of fixed interarrival spacing\n"
      "  --require-scaling X   remote: fail unless throughput at the\n"
      "                        largest --connections value is >= X times\n"
      "                        the smallest's\n"
      "  --shards LIST         comma-separated shard counts (1,2,4,8)\n"
      "  --value-sizes LIST    comma-separated value sizes in bytes (256)\n"
      "  --threads N           service replicas on OS threads (1)\n"
      "  --ops N               client ops per replica per config (4000)\n"
      "  --keys N              distinct keys per tenant (32)\n"
      "  --clients N           closed-loop clients per shard (4)\n"
      "  --read-fraction X     fraction of ops that are gets (0.5)\n"
      "  --read-pct N          same as --read-fraction N/100\n"
      "  --zipf-theta X        key skew in [0,1): 0 uniform, 0.99 YCSB (0)\n"
      "  --value-dist SPEC     fixed:N | uniform:LO:HI |\n"
      "                        bimodal:SMALL:LARGE:PCT (fixed per\n"
      "                        --value-sizes entry)\n"
      "  --tenants N           disjoint tenant key namespaces; clients/\n"
      "                        threads round-robin over them (1)\n"
      "  --tenant-inflight N   remote open loop: per-client admission cap,\n"
      "                        outstanding ops (0 = unlimited)\n"
      "  --cache               enable the client read cache (version-\n"
      "                        validated tag-only rounds)\n"
      "  --cache-ttl X         cache: serve without validating for X s (0)\n"
      "  --cache-capacity N    cache: LRU entry bound (4096)\n"
      "  --compare-cache PATH  remote: same-seed cache off-vs-on A/B; write\n"
      "                        the combined JSON (BENCH_workloads.json) and\n"
      "                        exit with the perf-gate verdict\n"
      "  --batch-window X      put-coalescing window in sim units (0.5)\n"
      "  --exponential         exponential instead of fixed link delays\n"
      "  --json PATH           write machine-readable results\n"
      "  --seed N              master seed (1)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--engine") {
      const char* v = next();
      auto m = v ? lds::net::parse_engine_mode(v)
                 : std::optional<lds::net::EngineMode>{};
      if (!m) {
        std::fprintf(stderr, "unknown engine '%s'\n", v ? v : "");
        return 2;
      }
      opt.engine = *m;
    } else if (arg == "--remote") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) {
        const std::string hp = v;
        const auto colon = hp.rfind(':');
        ok = colon != std::string::npos && colon > 0 && colon + 1 < hp.size();
        if (ok) {
          opt.remote_host = hp.substr(0, colon);
          ok = parse_port(hp.c_str() + colon + 1, 1, &opt.remote_port);
        }
      }
    } else if (arg == "--shards") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.shards);
    } else if (arg == "--connections") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.connections);
    } else if (arg == "--rate") {
      const char* v = next();
      ok = v != nullptr && (opt.rate = std::strtod(v, nullptr)) > 0;
    } else if (arg == "--bursty") {
      opt.bursty = true;
    } else if (arg == "--require-scaling") {
      const char* v = next();
      ok = v != nullptr && (opt.require_scaling = std::strtod(v, nullptr)) > 0;
    } else if (arg == "--value-sizes") {
      const char* v = next();
      ok = v && parse_size_list(v, &opt.value_sizes);
    } else if (arg == "--threads") {
      const char* v = next();
      ok = v && (opt.threads = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--ops") {
      const char* v = next();
      ok = v && (opt.ops = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--keys") {
      const char* v = next();
      ok = v && (opt.keys = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--clients") {
      const char* v = next();
      ok = v && (opt.clients_per_shard = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--read-fraction") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.read_fraction = std::strtod(v, nullptr);
    } else if (arg == "--read-pct") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.read_fraction = std::strtod(v, nullptr) / 100.0;
    } else if (arg == "--zipf-theta") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.zipf_theta = std::strtod(v, nullptr);
    } else if (arg == "--value-dist") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) opt.value_dist = v;
    } else if (arg == "--tenants") {
      const char* v = next();
      ok = v && (opt.tenants = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--tenant-inflight") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.tenant_inflight = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache") {
      opt.cache = true;
    } else if (arg == "--cache-ttl") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.cache_ttl = std::strtod(v, nullptr);
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      ok = v && (opt.cache_capacity = std::strtoull(v, nullptr, 10)) >= 1;
    } else if (arg == "--compare-cache") {
      const char* v = next();
      ok = v != nullptr && *v != '\0';
      if (ok) opt.compare_cache_path = v;
    } else if (arg == "--batch-window") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.batch_window = std::strtod(v, nullptr);
    } else if (arg == "--exponential") {
      opt.exponential_latency = true;
    } else if (arg == "--json") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.json_path = v;
    } else if (arg == "--seed") {
      const char* v = next();
      ok = v != nullptr;
      if (ok) opt.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad or missing value for '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!(opt.zipf_theta >= 0.0 && opt.zipf_theta < 1.0)) {
    std::fprintf(stderr, "--zipf-theta must be in [0, 1)\n");
    return 2;
  }
  if (!(opt.read_fraction >= 0.0 && opt.read_fraction <= 1.0)) {
    std::fprintf(stderr, "--read-fraction must be in [0, 1]\n");
    return 2;
  }
  if (!opt.value_dist.empty() &&
      !harness::ValueSizeDist::parse(opt.value_dist).has_value()) {
    std::fprintf(stderr, "--value-dist must be fixed:N, uniform:LO:HI or "
                         "bimodal:SMALL:LARGE:PCT\n");
    return 2;
  }
  if (!opt.compare_cache_path.empty()) {
    if (opt.remote_host.empty()) {
      std::fprintf(stderr, "--compare-cache requires --remote HOST:PORT\n");
      return 2;
    }
    return run_compare_cache(opt);
  }

  const bool remote = !opt.remote_host.empty();
  const bool parallel = opt.engine == lds::net::EngineMode::Parallel;
  const char* engine_name =
      remote ? "remote" : lds::net::engine_mode_name(opt.engine);
  std::printf("lds_store_bench: engine=%s threads=%zu ops%s=%zu keys=%zu "
              "clients/shard=%zu read-fraction=%.2f batch-window=%.2f "
              "seed=%llu\n",
              engine_name, opt.threads, parallel || remote ? "" : "/replica",
              opt.ops, opt.keys, opt.clients_per_shard, opt.read_fraction,
              opt.batch_window, static_cast<unsigned long long>(opt.seed));
  if (opt.zipf_theta > 0 || opt.tenants > 1 || !opt.value_dist.empty() ||
      opt.cache) {
    std::printf("workload: zipf-theta=%g tenants=%zu value-dist=%s "
                "cache=%s ttl=%g capacity=%zu\n",
                opt.zipf_theta, opt.tenants,
                opt.value_dist.empty() ? "(fixed)" : opt.value_dist.c_str(),
                opt.cache ? "on" : "off", opt.cache_ttl, opt.cache_capacity);
  }
  if (remote) {
    std::printf("remote target: %s:%u (server chooses shards/backend; "
                "verification is client-observed%s)\n",
                opt.remote_host.c_str(), opt.remote_port,
                opt.tenants > 1 ? ", per tenant" : "");
    if (opt.rate > 0) {
      std::printf("open loop: %.0f ops/s offered%s, async completion-queue "
                  "API, latency from intended arrival\n",
                  opt.rate, opt.bursty ? ", Poisson arrivals" : "");
    }
  }
  std::printf("\n");
  std::printf("%8s %6s %12s %12s %14s %10s %10s %10s %12s %8s %9s\n",
              "shards", "conns", "value_size", "sim_dur", "ops_per_unit",
              "batches", "coalesced", "wall_s", "wall_ops_s", "p99_ms",
              "verified");

  std::string json = "{\"bench\":\"lds_store_bench\",\"configs\":[";
  bool all_verified = true;
  // Snapshot source: the largest shard count seen (not sweep order, which
  // the user may pass descending).
  std::string snapshot_metrics;
  std::size_t snapshot_shards = 0;
  bool first_cfg = true;
  // Remote mode sweeps value sizes x connections: the shard count lives
  // server-side.  Local engines ignore the connections dimension.
  const std::vector<std::size_t> shard_sweep =
      remote ? std::vector<std::size_t>{0} : opt.shards;
  const std::vector<std::size_t> conn_sweep =
      remote ? opt.connections : std::vector<std::size_t>{1};
  // value_size -> (connections -> wall ops/s), for --require-scaling.
  std::map<std::size_t, std::map<std::size_t, double>> scaling;
  for (std::size_t value_size : opt.value_sizes) {
    for (std::size_t shards : shard_sweep) {
     for (std::size_t conns : conn_sweep) {
      const auto wall_start = std::chrono::steady_clock::now();
      std::vector<ReplicaResult> results;
      if (remote) {
        results.push_back(run_remote(opt, value_size, conns, opt.seed));
      } else if (parallel) {
        results.push_back(run_parallel(opt, shards, value_size, opt.seed));
      } else {
        results.resize(opt.threads);
        std::vector<std::thread> workers;
        for (std::size_t t = 0; t < opt.threads; ++t) {
          workers.emplace_back([&, t] {
            results[t] = run_replica(
                opt, shards, value_size,
                opt.threads == 1 ? opt.seed : mix_seed(opt.seed, t));
          });
        }
        for (auto& w : workers) w.join();
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();

      double agg_tput = 0;
      double max_dur = 0;
      std::size_t total_ops = 0;
      std::uint64_t batches = 0, coalesced = 0;
      bool verified = true;
      for (const auto& r : results) {
        if (r.duration > 0) {
          agg_tput += static_cast<double>(r.ops) / r.duration;
        }
        max_dur = std::max(max_dur, r.duration);
        total_ops += r.ops;
        batches += r.batches;
        coalesced += r.coalesced;
        verified = verified && r.verified;
      }
      const double wall_ops_s = static_cast<double>(total_ops) / wall;
      const double p99_ms = results.empty() ? 0 : results[0].p99_ms;
      std::printf(
          "%8zu %6zu %12zu %12.1f %14.3f %10llu %10llu %10.2f %12.0f "
          "%8.2f %9s\n",
          shards, conns, value_size, max_dur, agg_tput,
          static_cast<unsigned long long>(batches),
          static_cast<unsigned long long>(coalesced), wall, wall_ops_s,
          p99_ms, verified ? "yes" : "NO");
      all_verified = all_verified && verified;
      if (remote) scaling[value_size][conns] = wall_ops_s;

      char buf[448];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"engine\":\"%s\",\"shards\":%zu,\"threads\":%zu,"
                    "\"connections\":%zu,\"rate\":%.1f,"
                    "\"value_size\":%zu,"
                    "\"ops\":%zu,\"metric\":\"%s\","
                    "\"value\":%.6f,\"batches\":%llu,\"coalesced\":%llu,"
                    "\"wall_seconds\":%.3f,\"wall_ops_per_sec\":%.3f,"
                    "\"verified\":%s",
                    first_cfg ? "" : ",", engine_name, shards,
                    opt.threads, conns, opt.rate, value_size, total_ops,
                    parallel || remote ? "ops_per_sec_wall"
                                       : "ops_per_sim_unit",
                    parallel || remote ? wall_ops_s : agg_tput,
                    static_cast<unsigned long long>(batches),
                    static_cast<unsigned long long>(coalesced), wall,
                    wall_ops_s, verified ? "true" : "false");
      json += buf;
      std::snprintf(buf, sizeof(buf),
                    ",\"zipf_theta\":%.3f,\"tenants\":%zu,\"cache\":%s",
                    opt.zipf_theta, opt.tenants,
                    opt.cache ? "true" : "false");
      json += buf;
      if (opt.cache) {
        std::uint64_t hits = 0, misses = 0, validations = 0, saved = 0;
        for (const auto& r : results) {
          hits += r.cache_hits;
          misses += r.cache_misses;
          validations += r.cache_validations;
          saved += r.bytes_saved;
        }
        std::snprintf(buf, sizeof(buf),
                      ",\"cache_hits\":%llu,\"cache_misses\":%llu,"
                      "\"cache_validation_rounds\":%llu,"
                      "\"wire_value_bytes_saved\":%llu",
                      static_cast<unsigned long long>(hits),
                      static_cast<unsigned long long>(misses),
                      static_cast<unsigned long long>(validations),
                      static_cast<unsigned long long>(saved));
        json += buf;
        if (!results[0].client_metrics_json.empty()) {
          json += ",\"client_metrics\":" + results[0].client_metrics_json;
        }
      }
      if (remote && !results.empty() && !results[0].latency_json.empty()) {
        json += ",\"latency\":" + results[0].latency_json;
      }
      json += "}";
      first_cfg = false;
      if (shards >= snapshot_shards) {
        snapshot_shards = shards;
        snapshot_metrics = results[0].metrics_json;
      }
     }
    }
  }
  json += "],\"metrics_snapshot\":" +
          (snapshot_metrics.empty() ? "{}" : snapshot_metrics) + "}\n";

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\njson written to %s\n", opt.json_path.c_str());
  }
  if (!all_verified) {
    std::fprintf(stderr, "VERIFICATION FAILED: a shard history violated "
                         "atomicity/freshness\n");
    return 1;
  }
  if (remote && opt.require_scaling > 0) {
    for (const auto& [vs, by_conns] : scaling) {
      if (by_conns.size() < 2) continue;
      const double lo = by_conns.begin()->second;
      const double hi = by_conns.rbegin()->second;
      const double ratio = lo > 0 ? hi / lo : 0;
      std::printf("scaling value_size=%zu: %zu conns -> %zu conns = %.2fx "
                  "(require >= %.2fx)\n",
                  vs, by_conns.begin()->first, by_conns.rbegin()->first,
                  ratio, opt.require_scaling);
      if (ratio < opt.require_scaling) {
        std::fprintf(stderr, "SCALING FAILED: %.2fx < required %.2fx\n",
                     ratio, opt.require_scaling);
        return 1;
      }
    }
  }
  return 0;
}
