#!/usr/bin/env bash
# Multi-seed stress soak: keeps launching lds_stress runs with fresh seeds
# across the configured backends until the time budget is spent.  Any
# violation aborts the soak with the failing command line (seed included) so
# the run reproduces verbatim.
#
#   scripts/stress.sh                 # ~30s soak with defaults
#   SOAK_SECONDS=300 scripts/stress.sh
#   BACKENDS="lds store" scripts/stress.sh
#   STORE_SHARDS=16 BACKENDS=store scripts/stress.sh
#   STRESS_BIN=out/lds_stress scripts/stress.sh --threads 16 --ops 8000
#
# Environment knobs:
#   STRESS_BIN    lds_stress binary (default build/lds_stress)
#   SOAK_SECONDS  time budget (default 30)
#   BACKENDS      space-separated backend list (default "lds abd cas store";
#                 "store" = the sharded StoreService with write batching and
#                 heartbeat-driven background repair)
#   STORE_SHARDS  consistent-hash shards per store service (default 8)
#   STORE_ENGINES store engine list soaked per round (default "sim parallel";
#                 parallel = one service over ParallelEngine worker lanes)
#
# Extra arguments are forwarded to every lds_stress invocation.
set -euo pipefail

STRESS_BIN=${STRESS_BIN:-build/lds_stress}
SOAK_SECONDS=${SOAK_SECONDS:-30}
BACKENDS=${BACKENDS:-"lds abd cas store"}
STORE_SHARDS=${STORE_SHARDS:-8}
STORE_ENGINES=${STORE_ENGINES:-"sim parallel"}

if [[ ! -x "$STRESS_BIN" ]]; then
  echo "error: $STRESS_BIN not found or not executable." >&2
  echo "build it first:  cmake -B build -S . && cmake --build build -j --target lds_stress" >&2
  exit 2
fi

read -r -a backends <<< "$BACKENDS"
deadline=$((SECONDS + SOAK_SECONDS))
round=0
runs=0

echo "soak: ${SOAK_SECONDS}s budget, binary=$STRESS_BIN, backends: ${backends[*]}, extra args: $*"
while ((SECONDS < deadline)); do
  round=$((round + 1))
  for backend in "${backends[@]}"; do
    ((SECONDS < deadline)) || break
    seed=$((RANDOM * 32768 + RANDOM + round))
    cmd=("$STRESS_BIN" --backend "$backend" --threads 4 --ops 2000
         --crash-rate 0.05 --seed "$seed")
    case "$backend" in
      lds)
        # Also soak the repair-churn path on alternating rounds.
        if ((round % 2 == 0)); then
          cmd+=(--repair-rate 0.5 --crash-rate 0.1)
        fi
        ;;
      store)
        # Alternate engines so every soak covers both the deterministic and
        # the parallel-lane execution paths.
        read -r -a engines <<< "$STORE_ENGINES"
        engine=${engines[$((round % ${#engines[@]}))]}
        cmd+=(--shards "$STORE_SHARDS" --ops 1000 --engine "$engine")
        ;;
    esac
    cmd+=("$@")
    if ! "${cmd[@]}" > /dev/null; then
      echo "VIOLATION — reproduce with:" >&2
      echo "  ${cmd[*]}" >&2
      exit 1
    fi
    runs=$((runs + 1))
  done
done

echo "soak passed: $runs runs across ${backends[*]} in ${SECONDS}s, 0 violations"
