#!/usr/bin/env bash
# Multi-seed stress soak: keeps launching lds_stress runs with fresh seeds
# across the configured backends until the time budget is spent.  Any
# violation aborts the soak with the failing command line (seed included) so
# the run reproduces verbatim.
#
#   scripts/stress.sh                 # ~30s soak with defaults
#   SOAK_SECONDS=300 scripts/stress.sh
#   BACKENDS="lds store" scripts/stress.sh
#   STORE_SHARDS=16 BACKENDS=store scripts/stress.sh
#   STRESS_BIN=out/lds_stress scripts/stress.sh --threads 16 --ops 8000
#
# Environment knobs:
#   STRESS_BIN    lds_stress binary (default build/lds_stress)
#   SOAK_SECONDS  time budget (default 30)
#   BACKENDS      space-separated backend list (default "lds abd cas store";
#                 "store" = the sharded StoreService with write batching and
#                 heartbeat-driven background repair)
#   STORE_SHARDS  consistent-hash shards per store service (default 8)
#   STORE_ENGINES store engine list soaked per round (default "sim parallel";
#                 parallel = one service over ParallelEngine worker lanes)
#   WORKLOAD      "uniform" (default) or "zipf": zipf soaks every backend
#                 under YCSB-skewed key popularity (--zipf-theta 0.99) and
#                 additionally turns on the client read cache, two tenants
#                 and a mixed value-size distribution for store rounds, so
#                 the verifiers gate the validated-cache fast path too
#   TRANSPORT     "inproc" (default) or "tcp": tcp adds one loopback round
#                 per soak round — lds_served on an ephemeral port driven by
#                 lds_store_bench --remote, both verified (client-observed
#                 history AND server-side histories at shutdown)
#   KILL9         "1" adds one kill-9 crash-recovery round per soak round:
#                 lds_stress --kill9 forks lds_served on a durable data_dir,
#                 SIGKILLs it mid-churn, restarts it on the same directory
#                 and re-verifies the merged client-observed history
#   RECONFIG      "1" adds one reconfiguration-churn round per soak round:
#                 lds_stress --reconfig forks a 3-process member cluster
#                 (head + two peers), moves L2 servers between processes
#                 through several epochs, SIGKILLs a peer mid-move, and
#                 verifies the merged cross-epoch history with both checkers
#   SERVED_BIN    lds_served binary (default build/lds_served)
#   STORE_BENCH_BIN  lds_store_bench binary (default build/lds_store_bench)
#
# Extra arguments are forwarded to every lds_stress invocation.
set -euo pipefail

STRESS_BIN=${STRESS_BIN:-build/lds_stress}
SOAK_SECONDS=${SOAK_SECONDS:-30}
BACKENDS=${BACKENDS:-"lds abd cas store"}
STORE_SHARDS=${STORE_SHARDS:-8}
STORE_ENGINES=${STORE_ENGINES:-"sim parallel"}
TRANSPORT=${TRANSPORT:-inproc}
WORKLOAD=${WORKLOAD:-uniform}
KILL9=${KILL9:-0}
RECONFIG=${RECONFIG:-0}
SERVED_BIN=${SERVED_BIN:-build/lds_served}
STORE_BENCH_BIN=${STORE_BENCH_BIN:-build/lds_store_bench}

if [[ ! -x "$STRESS_BIN" ]]; then
  echo "error: $STRESS_BIN not found or not executable." >&2
  echo "build it first:  cmake -B build -S . && cmake --build build -j --target lds_stress" >&2
  exit 2
fi
if [[ "$TRANSPORT" == "tcp" && ( ! -x "$SERVED_BIN" || ! -x "$STORE_BENCH_BIN" ) ]]; then
  echo "error: TRANSPORT=tcp needs $SERVED_BIN and $STORE_BENCH_BIN." >&2
  exit 2
fi
if [[ "$KILL9" == "1" && ! -x "$SERVED_BIN" ]]; then
  echo "error: KILL9=1 needs $SERVED_BIN." >&2
  exit 2
fi
if [[ "$RECONFIG" == "1" && ! -x "$SERVED_BIN" ]]; then
  echo "error: RECONFIG=1 needs $SERVED_BIN." >&2
  exit 2
fi

served_pid=""
cleanup() { [[ -n "$served_pid" ]] && kill "$served_pid" 2>/dev/null || true; }
trap cleanup EXIT

# One TCP loopback round: serve on an ephemeral port, hammer it with the
# remote bench, then SIGTERM — the server's exit code is its own shard-
# history verification verdict.
tcp_round() {
  local seed=$1 port_file
  port_file=$(mktemp)
  rm -f "$port_file"
  "$SERVED_BIN" --port 0 --port-file "$port_file" --shards "$STORE_SHARDS" \
    --threads 2 --seed "$seed" >/dev/null &
  served_pid=$!
  for _ in $(seq 100); do [[ -s "$port_file" ]] && break; sleep 0.1; done
  if [[ ! -s "$port_file" ]]; then
    echo "VIOLATION — lds_served failed to start (seed $seed)" >&2
    exit 1
  fi
  local port
  port=$(cat "$port_file")
  if ! "$STORE_BENCH_BIN" --remote "127.0.0.1:$port" --threads 4 \
      --ops 800 --keys 16 --seed "$seed" >/dev/null; then
    echo "VIOLATION — reproduce with:" >&2
    echo "  $SERVED_BIN --shards $STORE_SHARDS --seed $seed  +  $STORE_BENCH_BIN --remote ... --seed $seed" >&2
    exit 1
  fi
  kill -TERM "$served_pid"
  if ! wait "$served_pid"; then
    echo "VIOLATION — lds_served shutdown verification failed (seed $seed)" >&2
    exit 1
  fi
  served_pid=""
  rm -f "$port_file"
}

# One kill-9 crash-recovery round: SIGKILL the daemon mid-churn twice,
# restart it on the same data_dir each time, and re-verify the merged
# client-observed history plus the final server-side shutdown verification.
kill9_round() {
  local seed=$1 dir
  dir=$(mktemp -d)
  if ! "$STRESS_BIN" --kill9 --server-bin "$SERVED_BIN" --data-dir "$dir" \
      --kills 2 --ops-per-round 300 --threads 4 --shards 2 \
      --seed "$seed" > /dev/null; then
    echo "VIOLATION — reproduce with:" >&2
    echo "  $STRESS_BIN --kill9 --server-bin $SERVED_BIN --data-dir <dir>" \
         "--kills 2 --ops-per-round 300 --threads 4 --shards 2 --seed $seed" >&2
    exit 1
  fi
  rm -rf "$dir"
}

# One reconfiguration-churn round: 3-process member cluster, L2 servers
# moved between the head and a peer across several epochs, one peer
# SIGKILLed mid-move and restarted.  Both verifiers gate the merged
# cross-epoch history; the head's SIGTERM self-check and the durably
# persisted final view gate the server side.
reconfig_round() {
  local seed=$1 dir
  dir=$(mktemp -d)
  if ! "$STRESS_BIN" --reconfig --server-bin "$SERVED_BIN" --work-dir "$dir" \
      --moves 2 --ops-per-round 200 --threads 4 --seed "$seed" > /dev/null; then
    echo "VIOLATION — reproduce with:" >&2
    echo "  $STRESS_BIN --reconfig --server-bin $SERVED_BIN --work-dir <dir>" \
         "--moves 2 --ops-per-round 200 --threads 4 --seed $seed" >&2
    exit 1
  fi
  rm -rf "$dir"
}

read -r -a backends <<< "$BACKENDS"
deadline=$((SECONDS + SOAK_SECONDS))
round=0
runs=0

echo "soak: ${SOAK_SECONDS}s budget, binary=$STRESS_BIN, backends: ${backends[*]}, workload=$WORKLOAD, extra args: $*"
while ((SECONDS < deadline)); do
  round=$((round + 1))
  for backend in "${backends[@]}"; do
    ((SECONDS < deadline)) || break
    seed=$((RANDOM * 32768 + RANDOM + round))
    cmd=("$STRESS_BIN" --backend "$backend" --threads 4 --ops 2000
         --crash-rate 0.05 --seed "$seed")
    if [[ "$WORKLOAD" == "zipf" ]]; then
      cmd+=(--zipf-theta 0.99)
    fi
    case "$backend" in
      lds)
        # Also soak the repair-churn path on alternating rounds.
        if ((round % 2 == 0)); then
          cmd+=(--repair-rate 0.5 --crash-rate 0.1)
        fi
        ;;
      store)
        # Alternate engines so every soak covers both the deterministic and
        # the parallel-lane execution paths.
        read -r -a engines <<< "$STORE_ENGINES"
        engine=${engines[$((round % ${#engines[@]}))]}
        cmd+=(--shards "$STORE_SHARDS" --ops 1000 --engine "$engine")
        if [[ "$WORKLOAD" == "zipf" ]]; then
          # Skewed store rounds also exercise the validated read cache,
          # multi-tenant key namespaces and mixed value sizes under churn.
          cmd+=(--client-cache --tenants 2 --value-dist uniform:32:128)
        fi
        ;;
    esac
    cmd+=("$@")
    if ! "${cmd[@]}" > /dev/null; then
      echo "VIOLATION — reproduce with:" >&2
      echo "  ${cmd[*]}" >&2
      exit 1
    fi
    runs=$((runs + 1))
  done
  if [[ "$TRANSPORT" == "tcp" ]] && ((SECONDS < deadline)); then
    tcp_round $((RANDOM * 32768 + RANDOM + round))
    runs=$((runs + 1))
  fi
  if [[ "$KILL9" == "1" ]] && ((SECONDS < deadline)); then
    kill9_round $((RANDOM * 32768 + RANDOM + round))
    runs=$((runs + 1))
  fi
  if [[ "$RECONFIG" == "1" ]] && ((SECONDS < deadline)); then
    reconfig_round $((RANDOM * 32768 + RANDOM + round))
    runs=$((runs + 1))
  fi
done

echo "soak passed: $runs runs across ${backends[*]} (workload=$WORKLOAD transport=$TRANSPORT kill9=$KILL9 reconfig=$RECONFIG) in ${SECONDS}s, 0 violations"
