#!/usr/bin/env bash
# Workload-aware read-cache A/B over loopback TCP.
#
# Starts one lds_served and runs lds_store_bench --remote --compare-cache
# against it: the identical seeded Zipfian/read-heavy workload twice, cache
# off then cache on, same op stream byte for byte (the cache consumes no RNG
# draws).  The bench itself verifies both runs' client-observed histories
# per tenant (atomicity + freshness), computes hit rate / p99 deltas /
# bytes-on-wire saved, applies the gate (>=80% hit rate and >=30% p99 get
# improvement at theta>=0.99, >=90% reads) and writes BENCH_workloads.json.
#
#   scripts/bench_workloads.sh                      # writes BENCH_workloads.json
#   OPS=20000 ZIPF_THETA=0.9 READ_PCT=80 scripts/bench_workloads.sh
#
# Environment knobs:
#   SERVED_BIN       lds_served binary (default build/lds_served)
#   STORE_BENCH_BIN  lds_store_bench binary (default build/lds_store_bench)
#   OPS / THREADS / KEYS / SEED     workload shape (default 12000/4/64/1)
#   ZIPF_THETA / READ_PCT / TENANTS gate workload (default 0.99/95/2)
#   VALUE_DIST       value-size spec (default uniform:256:4096)
#   CACHE_TTL        client cache TTL seconds (default 0 = validate always)
#   OUT              output path (default BENCH_workloads.json)
#
# The server's SIGTERM self-verification gates the result on top of the
# bench's own per-tenant verifiers: the json only survives if every check
# passed on both the cache-off and cache-on runs.
set -euo pipefail

SERVED_BIN=${SERVED_BIN:-build/lds_served}
STORE_BENCH_BIN=${STORE_BENCH_BIN:-build/lds_store_bench}
OPS=${OPS:-12000}
THREADS=${THREADS:-4}
KEYS=${KEYS:-64}
SEED=${SEED:-1}
ZIPF_THETA=${ZIPF_THETA:-0.99}
READ_PCT=${READ_PCT:-95}
TENANTS=${TENANTS:-2}
VALUE_DIST=${VALUE_DIST:-uniform:256:4096}
CACHE_TTL=${CACHE_TTL:-0}
OUT=${OUT:-BENCH_workloads.json}

for bin in "$SERVED_BIN" "$STORE_BENCH_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable." >&2
    echo "build first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 2
  fi
done

work=$(mktemp -d)
served_pid=""
cleanup() {
  [[ -n "$served_pid" ]] && kill "$served_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

"$SERVED_BIN" --port 0 --port-file "$work/port" --shards 4 --threads 2 \
  --seed "$SEED" > "$work/served.log" &
served_pid=$!
for _ in $(seq 100); do [[ -s "$work/port" ]] && break; sleep 0.1; done
if [[ ! -s "$work/port" ]]; then
  echo "error: lds_served failed to start:" >&2
  cat "$work/served.log" >&2
  exit 1
fi
port=$(cat "$work/port")

"$STORE_BENCH_BIN" --remote "127.0.0.1:$port" \
  --threads "$THREADS" --ops "$OPS" --keys "$KEYS" --seed "$SEED" \
  --zipf-theta "$ZIPF_THETA" --read-pct "$READ_PCT" --tenants "$TENANTS" \
  --value-dist "$VALUE_DIST" --cache-ttl "$CACHE_TTL" \
  --compare-cache "$OUT"

# Verified shutdown: the server re-checks every shard history on SIGTERM and
# exits non-zero on any violation.
kill -TERM "$served_pid"
if ! wait "$served_pid"; then
  echo "error: lds_served shutdown verification failed." >&2
  exit 1
fi
served_pid=""
echo "wrote $OUT (server-side shutdown verification passed)"
