#!/usr/bin/env bash
# In-process vs multi-process quorum latency comparison.
#
# Starts one lds_served head in member mode (all 6 L1 + 8 L2 servers local,
# epoch 1) and benches it over loopback TCP; then a member peer joins and
# claims two L2 servers (epoch 2, every write/read quorum now spans two
# processes) and the identical workload is re-run against the same head.
# Both runs use lds_store_bench --remote, so the only variable is whether
# the quorum is in-process or crosses a process boundary.
#
#   scripts/bench_multiproc.sh                      # writes BENCH_multiproc.json
#   OPS=8000 VALUE_SIZE=1024 scripts/bench_multiproc.sh
#
# Environment knobs:
#   SERVED_BIN       lds_served binary (default build/lds_served)
#   STORE_BENCH_BIN  lds_store_bench binary (default build/lds_store_bench)
#   OPS / THREADS / KEYS / VALUE_SIZE / SEED   workload shape (3000/4/16/256/1)
#   OUT              output path (default BENCH_multiproc.json)
#
# The head's SIGTERM self-verification and the peer's clean exit gate the
# result: a json is only written if both phases were verified.
set -euo pipefail

SERVED_BIN=${SERVED_BIN:-build/lds_served}
STORE_BENCH_BIN=${STORE_BENCH_BIN:-build/lds_store_bench}
# Exported so the report-merging python step can record the workload shape.
export OPS=${OPS:-3000}
export THREADS=${THREADS:-4}
export KEYS=${KEYS:-16}
export VALUE_SIZE=${VALUE_SIZE:-256}
SEED=${SEED:-1}
OUT=${OUT:-BENCH_multiproc.json}

for bin in "$SERVED_BIN" "$STORE_BENCH_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable." >&2
    echo "build first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 2
  fi
done

work=$(mktemp -d)
head_pid="" peer_pid=""
cleanup() {
  for p in $peer_pid $head_pid; do kill "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

wait_file() {  # wait_file PATH TIMEOUT_DECISECONDS
  local path=$1 budget=$2
  for _ in $(seq "$budget"); do [[ -s "$path" ]] && return 0; sleep 0.1; done
  return 1
}

# ---- head: store + membership coordinator, everything local (epoch 1) ------
"$SERVED_BIN" --port 0 --port-file "$work/port" --shards 1 \
  --member-port 0 --member-port-file "$work/mport" \
  --member-dir "$work/view" --seed "$SEED" > "$work/head.log" &
head_pid=$!
wait_file "$work/port" 100 && wait_file "$work/mport" 100 || {
  echo "error: head failed to start:" >&2; cat "$work/head.log" >&2; exit 1
}
port=$(cat "$work/port")
mport=$(cat "$work/mport")

echo "phase 1/2: in-process placement (epoch 1), $OPS ops ..."
"$STORE_BENCH_BIN" --remote "127.0.0.1:$port" --threads "$THREADS" \
  --ops "$OPS" --keys "$KEYS" --value-sizes "$VALUE_SIZE" --seed "$SEED" \
  --json "$work/inproc.json" > /dev/null

# ---- peer joins, claiming two L2 servers (epoch 2) -------------------------
# Every view activation rewrites the head's VIEW file, so the epoch-2
# activation is detected by the file's checksum changing.
view_sum=$(cksum "$work/view/VIEW")
"$SERVED_BIN" --join "127.0.0.1:$mport" --node-ids 30004,30005 \
  --member-port 0 --member-port-file "$work/peer-mport" \
  --seed $((SEED + 101)) > "$work/peer.log" &
peer_pid=$!
wait_file "$work/peer-mport" 100 || {
  echo "error: peer failed to start:" >&2; cat "$work/peer.log" >&2; exit 1
}
for _ in $(seq 100); do
  [[ "$(cksum "$work/view/VIEW")" != "$view_sum" ]] && break
  sleep 0.1
done
if [[ "$(cksum "$work/view/VIEW")" == "$view_sum" ]]; then
  echo "error: join did not activate a new view within 10s." >&2
  exit 1
fi

echo "phase 2/2: cross-process placement (epoch 2), $OPS ops ..."
"$STORE_BENCH_BIN" --remote "127.0.0.1:$port" --threads "$THREADS" \
  --ops "$OPS" --keys "$KEYS" --value-sizes "$VALUE_SIZE" \
  --seed $((SEED + 1)) --json "$work/multiproc.json" > /dev/null

# ---- verified shutdown: exit codes are the verification verdicts -----------
kill -TERM "$peer_pid"
if ! wait "$peer_pid"; then echo "error: peer shutdown failed." >&2; exit 1; fi
peer_pid=""
kill -TERM "$head_pid"
if ! wait "$head_pid"; then
  echo "error: head shutdown verification failed." >&2; exit 1
fi
head_pid=""

python3 - "$work/inproc.json" "$work/multiproc.json" "$OUT" <<'PY'
import json, os, sys
inproc = json.load(open(sys.argv[1]))["configs"][0]
multi = json.load(open(sys.argv[2]))["configs"][0]

def lat(cfg):
    return {op: {k: cfg["latency"][op][k]
                 for k in ("count", "mean", "p50", "p99", "p999", "max")}
            for op in ("put_ms", "get_ms")}

out = {
    "bench": "multiproc",
    "host": {"cpus": os.cpu_count()},
    "workload": {
        "ops": int(os.environ.get("OPS", 3000)),
        "threads": int(os.environ.get("THREADS", 4)),
        "keys": int(os.environ.get("KEYS", 16)),
        "value_size": int(os.environ.get("VALUE_SIZE", 256)),
        "server": "lds_served --shards 1 --member-port 0 --member-dir ...",
        "peer": "lds_served --join ... --node-ids 30004,30005",
    },
    "in_process": {
        "placement": "epoch 1: all 6 L1 + 8 L2 servers in the head process",
        "wall_ops_per_sec": inproc["wall_ops_per_sec"],
        "latency": lat(inproc),
    },
    "multi_process": {
        "placement": "epoch 2: L2 30004/30005 hosted by a joined peer, every"
                     " quorum crosses a process boundary over loopback TCP",
        "wall_ops_per_sec": multi["wall_ops_per_sec"],
        "latency": lat(multi),
    },
    "p99_ratio": {
        op: round(multi["latency"][op]["p99"] / inproc["latency"][op]["p99"], 3)
        for op in ("put_ms", "get_ms")
    },
}
json.dump(out, open(sys.argv[3], "w"), indent=1)
print(f"{sys.argv[3]}:")
for name, blk in (("in-process ", out["in_process"]),
                  ("multi-proc ", out["multi_process"])):
    l = blk["latency"]
    print(f"  {name} {blk['wall_ops_per_sec']:9.1f} ops/s"
          f"  put p99 {l['put_ms']['p99']:7.3f} ms"
          f"  get p99 {l['get_ms']['p99']:7.3f} ms")
print(f"  p99 ratio (multi/in): put {out['p99_ratio']['put_ms']}x"
      f"  get {out['p99_ratio']['get_ms']}x")
PY
