// White-box protocol tests of the L1/L2 server automata: broadcast-primitive
// semantics, registered-reader service, garbage collection triggers, the
// put-tag proxy-commit paths, regeneration failure handling and internal-
// operation consistency (Lemma IV.4).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <ostream>

#include "common/rng.h"
#include "lds/cluster.h"
#include "lds/messages.h"

namespace lds::core {
namespace {

LdsCluster::Options base_options() {
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;  // k = 4, l1_quorum = 5
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;  // d = 4, l2_quorum = 6
  opt.writers = 2;
  opt.readers = 2;
  opt.tau1 = 1.0;
  opt.tau0 = 1.0;
  opt.tau2 = 4.0;
  return opt;
}

TEST(Protocol, BroadcastConsumedExactlyOncePerServer) {
  // Count COMMIT-TAG deliveries vs distinct broadcast consumptions: each of
  // the n1 servers broadcasts once per PUT-DATA, every server must act on
  // each instance exactly once even though relays produce duplicates.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(1);

  std::map<std::uint64_t, int> deliveries;  // bcast_id -> count
  c.net().set_delivery_observer(
      [&](NodeId, NodeId, const net::Payload& p) {
        const auto* m = dynamic_cast<const LdsMessage*>(&p);
        if (m == nullptr) return;
        if (const auto* ct = std::get_if<CommitTag>(&m->body())) {
          ++deliveries[ct->bcast_id];
        }
      });
  c.write_sync(0, 0, rng.bytes(20));
  c.settle();

  // n1 broadcast instances (one per server that received PUT-DATA).
  EXPECT_EQ(deliveries.size(), opt.cfg.n1);
  for (const auto& [id, count] : deliveries) {
    // Each instance is delivered to the f1+1 relays plus n1 forwards per
    // relay; every server sees >= 1 copy and at most (f1+1) + 1 copies.
    EXPECT_GE(count, static_cast<int>(opt.cfg.n1));
    EXPECT_LE(count,
              static_cast<int>((opt.cfg.f1 + 1) * opt.cfg.n1 + opt.cfg.f1 + 1));
  }

  // Consumption exactly once: commitCounter-driven effects fired once per
  // server; indirectly visible as every server having committed the tag.
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    EXPECT_EQ(c.l1(j).committed_tag(0), (Tag{1, 1}));
  }
}

TEST(Protocol, RegisteredReaderServedByLaterCommit) {
  // A reader that finds no value and no regenerable tag gets registered in
  // Gamma; when the concurrent write commits, the server serves the reader
  // from the broadcast-resp action (Fig. 2 line 17).
  auto opt = base_options();
  opt.tau2 = 50.0;  // L2 is very slow: regeneration cannot finish first
  LdsCluster c(opt);
  Rng rng(2);

  const Bytes v = rng.bytes(64);
  bool read_done = false;
  Tag read_tag;
  // Start the write and the read together; the read's get-data arrives
  // while the write is uncommitted, forcing registration.
  c.write_at(0.0, 0, 0, v);
  c.read_at(0.0, 0, 0);

  c.sim().run_until(20.0);  // well before any L2 round trip (2*50)
  const auto ops = c.history().completed_ops(0);
  for (const auto& op : ops) {
    if (op.kind == OpKind::Read) {
      read_done = true;
      read_tag = op.tag;
    }
  }
  EXPECT_TRUE(read_done)
      << "read should be served from L1 temporary storage without waiting "
         "for the slow L2 round trip";
  EXPECT_EQ(read_tag, (Tag{1, 1}));
  c.settle();
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(Protocol, WriterAckRequiresCommitQuorum) {
  // A server that adds (t, v) to its list must not ACK until it has seen
  // f1 + k COMMIT-TAG broadcasts (Fig. 2 line 13).  With all L1->L1 links
  // stalled... we cannot stall reliable links, but we can check the timing:
  // the earliest possible ACK is 2 tau1 + 2 tau0 after the write started
  // (get-tag round trip is 2 tau1; put-data tau1; broadcast 2 tau0; ack
  // tau1) => write duration exactly 4 tau1 + 2 tau0 under fixed delays.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(3);
  const double t0 = c.sim().now();
  c.write_sync(0, 0, rng.bytes(16));
  EXPECT_DOUBLE_EQ(c.sim().now() - t0, 4 * opt.tau1 + 2 * opt.tau0);
}

TEST(Protocol, StaleWriteTagAckedImmediately) {
  // A PUT-DATA whose tag is already below the server's committed tag is
  // ACKed without being stored (Fig. 2 lines 9-10).  Construct it by
  // letting writer 2 obtain a tag, then having writer 1 write twice before
  // writer 2's put-data lands.  Simpler deterministic variant: replay of an
  // old tag cannot resurrect old state - after two writes, no server's list
  // holds a value for tag (1, w1).
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(4);
  const Tag t1 = c.write_sync(0, 0, rng.bytes(16));
  const Tag t2 = c.write_sync(1, 0, rng.bytes(16));
  EXPECT_GT(t2, t1);
  c.settle();
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    EXPECT_FALSE(c.l1(j).has_value(0, t1));
    EXPECT_GE(c.l1(j).committed_tag(0), t2);
  }
}

TEST(Protocol, GarbageCollectionBlanksOldTagsButKeepsKeys) {
  // Fig. 2 lines 18, 27: values below tc are blanked but the tag keys stay
  // (they witness history for get-tag).
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(5);
  const Tag t1 = c.write_sync(0, 0, rng.bytes(16));
  const Tag t2 = c.write_sync(0, 0, rng.bytes(16));
  c.settle();
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    const auto tags = c.l1(j).list_tags(0);
    EXPECT_NE(std::find(tags.begin(), tags.end(), t1), tags.end());
    EXPECT_NE(std::find(tags.begin(), tags.end(), t2), tags.end());
    EXPECT_FALSE(c.l1(j).has_value(0, t1));
    EXPECT_FALSE(c.l1(j).has_value(0, t2));  // offloaded to L2 and GC'd
  }
}

TEST(Protocol, L2StoresExactlyOneTagPerObject) {
  // Fig. 3: an L2 server keeps a single (tag, element) pair and only moves
  // it forward.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(6);
  const Tag t1 = c.write_sync(0, 0, rng.bytes(40));
  c.settle();
  const Tag t2 = c.write_sync(1, 0, rng.bytes(40));
  c.settle();
  EXPECT_GT(t2, t1);
  for (std::size_t i = 0; i < opt.cfg.n2; ++i) {
    EXPECT_EQ(c.l2(i).stored_tag(0), t2);
  }
}

TEST(Protocol, InternalReadSeesCompletedInternalWrite) {
  // Lemma IV.4 at the system level: once a write settles (write-to-L2
  // completed by some server), any regeneration returns a tag >= that
  // write's tag - the read cannot travel back in time.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(7);
  const Tag t1 = c.write_sync(0, 0, rng.bytes(64));
  c.settle();
  for (int round = 0; round < 3; ++round) {
    auto [rt, rv] = c.read_sync(round % 2, 0);
    EXPECT_GE(rt, t1);
  }
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(Protocol, ReaderUnregisteredAfterPutTag) {
  // Fig. 2 line 53: the put-tag phase removes the reader's registration.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(8);
  c.write_sync(0, 0, rng.bytes(32));
  c.settle();
  c.read_sync(0, 0);
  c.settle();
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    EXPECT_EQ(c.l1(j).registered_readers(0), 0u)
        << "server " << j << " leaked a Gamma registration";
  }
}

TEST(Protocol, ReadCostExcludesMetaData) {
  // Section II-d: meta-data (tags, counters) must not pollute the
  // normalized costs; check that a read's data bytes are entirely
  // explainable by value/element/helper payloads.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(9);
  const std::size_t value_size = 3000;
  c.write_sync(0, 0, rng.bytes(value_size));
  c.settle();
  const OpId read_op = make_op_id(kReaderIdBase, 1);
  c.read_sync(0, 0);
  const auto bucket = c.net().costs().by_op(read_op);
  EXPECT_GT(bucket.meta_bytes, 0u);
  // Regeneration: n1 * n2 helpers + n1 coded elements; every byte of data
  // is a multiple of the helper/element sizes (no tag bytes leaked in).
  const std::size_t helper = c.ctx().code.helper_size(value_size);
  const std::size_t elem =
      c.ctx().code.element_size(value_size);
  EXPECT_EQ(bucket.data_bytes % helper, 0u)
      << "helper=" << helper << " elem=" << elem;
}

// ---- boundary geometries ----------------------------------------------------

// Edge values of (n1, f1, n2, f2) under the paper's constraints
// n1 = 2 f1 + k (k >= 1), n2 = 2 f2 + d (d >= k), f1 < n1/2, f2 < n2/3:
// minimal layers, k = 1 (maximal edge tolerance), f2 = 0 (d = n2, maximal
// regeneration degree), f1 = 0, and both layers at their tolerance caps.
struct Geometry {
  std::size_t n1, f1, n2, f2;
  friend std::ostream& operator<<(std::ostream& os, const Geometry& g) {
    return os << "n1=" << g.n1 << " f1=" << g.f1 << " n2=" << g.n2
              << " f2=" << g.f2;
  }
};

class ProtocolBoundary : public ::testing::TestWithParam<Geometry> {
 protected:
  LdsCluster::Options options() const {
    const Geometry& g = GetParam();
    auto opt = base_options();
    opt.cfg.n1 = g.n1;
    opt.cfg.f1 = g.f1;
    opt.cfg.n2 = g.n2;
    opt.cfg.f2 = g.f2;
    return opt;
  }
};

TEST_P(ProtocolBoundary, SequentialRoundTripsReturnLatestValue) {
  auto opt = options();
  opt.cfg.validate();  // the geometry itself must be legal
  LdsCluster c(opt);
  Rng rng(17);
  Tag last = kTag0;
  for (int i = 0; i < 3; ++i) {
    const Bytes v = rng.bytes(48 + 16 * static_cast<std::size_t>(i));
    const Tag t = c.write_sync(i % 2, 0, v);
    EXPECT_GT(t, last);
    last = t;
    auto [rt, rv] = c.read_sync(i % 2, 0);
    EXPECT_EQ(rt, t);
    EXPECT_EQ(rv, v);
  }
  c.settle();
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST_P(ProtocolBoundary, ConcurrentOpsUnderFullCrashBudgetStayAtomic) {
  auto opt = options();
  opt.latency = LdsCluster::LatencyKind::Exponential;
  opt.seed = 23;
  LdsCluster c(opt);
  Rng rng(23);

  // Two writers and two readers in closed loops, overlapping in sim time.
  std::function<void(std::size_t, int)> write_next;
  std::function<void(std::size_t, int)> read_next;
  write_next = [&](std::size_t w, int left) {
    if (left == 0) return;
    c.writer(w).write(0, rng.bytes(32), [&, w, left](Tag) {
      c.sim().after(0.5, [&, w, left] { write_next(w, left - 1); });
    });
  };
  read_next = [&](std::size_t r, int left) {
    if (left == 0) return;
    c.reader(r).read(0, [&, r, left](Tag, Bytes) {
      c.sim().after(0.5, [&, r, left] { read_next(r, left - 1); });
    });
  };
  for (std::size_t w = 0; w < opt.writers; ++w) {
    c.sim().at(rng.uniform_real(0.0, 2.0), [&, w] { write_next(w, 4); });
  }
  for (std::size_t r = 0; r < opt.readers; ++r) {
    c.sim().at(rng.uniform_real(0.0, 4.0), [&, r] { read_next(r, 4); });
  }
  // Spend the full failure budget of both layers mid-run.
  for (std::size_t i = 0; i < opt.cfg.f1; ++i) {
    c.sim().at(rng.uniform_real(0.5, 10.0), [&, i] { c.crash_l1(i); });
  }
  for (std::size_t i = 0; i < opt.cfg.f2; ++i) {
    c.sim().at(rng.uniform_real(0.5, 10.0), [&, i] { c.crash_l2(i); });
  }
  c.settle();

  EXPECT_TRUE(c.history().all_complete())
      << c.history().incomplete() << " ops incomplete";
  const auto verdict = c.history().check_atomicity({});
  EXPECT_TRUE(verdict.ok) << verdict.violation;
}

INSTANTIATE_TEST_SUITE_P(
    BoundaryGeometries, ProtocolBoundary,
    ::testing::Values(Geometry{1, 0, 1, 0},    // minimal: k = d = 1
                      Geometry{3, 1, 3, 0},    // k = 1; f2 = 0 => d = n2
                      Geometry{5, 2, 4, 0},    // max f1 for n1 = 5; d = n2
                      Geometry{4, 0, 6, 1},    // f1 = 0: k = n1 = 4, d = 4
                      Geometry{7, 3, 7, 2},    // both layers at the cap
                      Geometry{2, 0, 8, 2},    // tiny edge, wide back end
                      Geometry{21, 10, 10, 3}  // k = 1 at scale
                      ));

}  // namespace
}  // namespace lds::core
