// End-to-end LDS protocol basics on a small cluster: sequential reads and
// writes, regeneration paths, committed-tag movement, garbage collection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lds/analysis.h"
#include "lds/cluster.h"

namespace lds::core {
namespace {

LdsCluster::Options small_options() {
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;  // k = 4
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;  // d = 4
  opt.cfg.initial_value = Bytes{};
  opt.writers = 2;
  opt.readers = 2;
  opt.tau1 = 1.0;
  opt.tau0 = 0.5;
  opt.tau2 = 5.0;
  return opt;
}

TEST(LdsBasic, ReadOfFreshObjectReturnsInitialValue) {
  auto opt = small_options();
  opt.cfg.initial_value = Bytes{9, 9, 9};
  LdsCluster c(opt);
  auto [tag, value] = c.read_sync(0, 0);
  EXPECT_EQ(tag, kTag0);
  EXPECT_EQ(value, (Bytes{9, 9, 9}));
  EXPECT_TRUE(c.history().check_atomicity(opt.cfg.initial_value).ok);
}

TEST(LdsBasic, WriteThenReadRoundTrip) {
  LdsCluster c(small_options());
  Rng rng(1);
  const Bytes v = rng.bytes(100);
  const Tag wt = c.write_sync(0, 0, v);
  EXPECT_EQ(wt.z, 1u);
  EXPECT_EQ(wt.w, 1);  // writer 0 has node id 1

  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(LdsBasic, SequentialWritesMonotoneTags) {
  LdsCluster c(small_options());
  Rng rng(2);
  Tag prev = kTag0;
  for (int i = 0; i < 5; ++i) {
    const Tag t = c.write_sync(i % 2, 0, rng.bytes(50));
    EXPECT_GT(t, prev);
    prev = t;
  }
  auto [rt, rv] = c.read_sync(1, 0);
  EXPECT_EQ(rt, prev);
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(LdsBasic, ReadAfterQuiescenceRegeneratesFromL2) {
  // After the write's extended phase finishes, values are garbage-collected
  // from every L1 list (Lemma V.1); a later read must be served through
  // regenerate-from-L2 and decode via C1.
  LdsCluster c(small_options());
  Rng rng(3);
  const Bytes v = rng.bytes(200);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();  // let write-to-L2 complete and GC run everywhere

  for (std::size_t j = 0; j < c.ctx().cfg.n1; ++j) {
    EXPECT_FALSE(c.l1(j).has_value(0, wt)) << "server " << j;
    EXPECT_GE(c.l1(j).committed_tag(0), wt);
  }
  for (std::size_t i = 0; i < c.ctx().cfg.n2; ++i) {
    EXPECT_EQ(c.l2(i).stored_tag(0), wt);
  }

  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(LdsBasic, TemporaryStorageDrainsToZero) {
  // Lemma V.1 (temporary nature of L1 storage): after settle, no L1 server
  // holds any value bytes.
  LdsCluster c(small_options());
  Rng rng(4);
  for (int i = 0; i < 3; ++i) c.write_sync(0, 0, rng.bytes(64));
  c.settle();
  EXPECT_EQ(c.meter().l1_bytes(), 0u);
  EXPECT_GT(c.meter().l1_peak_bytes(), 0u);
  // Permanent storage stays: n2 elements of the last value.
  EXPECT_GT(c.meter().l2_bytes(), 0u);
}

TEST(LdsBasic, CommittedTagMonotonePerServer) {
  // Lemma IV.1 on a live run: sample tc at every event boundary.
  auto opt = small_options();
  LdsCluster c(opt);
  Rng rng(5);
  std::vector<Tag> last(opt.cfg.n1, kTag0);
  c.write_at(0.0, 0, 0, rng.bytes(32));
  c.write_at(0.5, 1, 0, rng.bytes(32));
  c.read_at(1.0, 0, 0);
  while (c.sim().step()) {
    for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
      const Tag tc = c.l1(j).committed_tag(0);
      EXPECT_GE(tc, last[j]) << "tc regressed at server " << j;
      last[j] = tc;
    }
  }
  EXPECT_TRUE(c.history().all_complete());
}

TEST(LdsBasic, ListEntriesNeverBelowCommittedTag) {
  // Lemma IV.2: any (t, v) with an actual value satisfies t >= tc.
  auto opt = small_options();
  LdsCluster c(opt);
  Rng rng(6);
  c.write_at(0.0, 0, 0, rng.bytes(40));
  c.write_at(0.7, 1, 0, rng.bytes(40));
  c.read_at(1.0, 0, 0);
  c.read_at(1.3, 1, 0);
  while (c.sim().step()) {
    for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
      const Tag tc = c.l1(j).committed_tag(0);
      for (const Tag& t : c.l1(j).list_tags(0)) {
        if (c.l1(j).has_value(0, t)) {
          EXPECT_GE(t, tc) << "server " << j;
        }
      }
    }
  }
  EXPECT_TRUE(c.history().all_complete());
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(LdsBasic, MultipleObjectsAreIndependent) {
  LdsCluster c(small_options());
  Rng rng(7);
  const Bytes a = rng.bytes(30);
  const Bytes b = rng.bytes(60);
  c.write_sync(0, /*obj=*/1, a);
  c.write_sync(1, /*obj=*/2, b);
  auto [t1, v1] = c.read_sync(0, 1);
  auto [t2, v2] = c.read_sync(1, 2);
  EXPECT_EQ(v1, a);
  EXPECT_EQ(v2, b);
  auto [t3, v3] = c.read_sync(0, /*obj=*/3);  // untouched object
  EXPECT_EQ(t3, kTag0);
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(LdsBasic, WellFormednessEnforced) {
  LdsCluster c(small_options());
  c.writer(0).write(0, Bytes{1});
  EXPECT_DEATH(c.writer(0).write(0, Bytes{2}), "well-formed");
}

TEST(LdsBasic, WriteCostMatchesLemmaV2) {
  // Single write on an idle system; normalized data bytes must match
  // n1 + n1 n2 2d/(k(2d-k+1)) up to striping/padding overhead.
  auto opt = small_options();
  LdsCluster c(opt);
  Rng rng(8);
  const std::size_t value_size = 5000;
  const Bytes v = rng.bytes(value_size);
  c.write_sync(0, 0, v);
  c.settle();  // include the deferred internal write-to-L2 traffic

  const OpId op = make_op_id(1, 1);
  const auto cost = c.net().costs().by_op(op);
  const double measured =
      static_cast<double>(cost.data_bytes) / static_cast<double>(value_size);
  const double formula = analysis::write_cost(opt.cfg.n1, opt.cfg.n2,
                                              opt.cfg.k(), opt.cfg.d());
  EXPECT_NEAR(measured, formula, 0.05 * formula)
      << "striping overhead should be within 5% at this value size";
}

}  // namespace
}  // namespace lds::core
