// The Section-VI / Section-I extensions: L2 repair, regular-consistency
// reads, and the proxy-cache mode of the edge layer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lds/analysis.h"
#include "lds/cluster.h"

namespace lds::core {
namespace {

LdsCluster::Options base_options() {
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;  // k = 4
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;  // d = 4
  opt.writers = 2;
  opt.readers = 2;
  opt.tau2 = 4.0;
  return opt;
}

// ---- L2 repair --------------------------------------------------------------

TEST(L2Repair, RepairedServerMatchesPeers) {
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(1);
  const Bytes v = rng.bytes(120);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();

  const Bytes expected = c.l2(3).stored_element(0);  // pre-crash content
  c.crash_l2(3);
  c.replace_l2(3);
  EXPECT_EQ(c.l2(3).stored_tag(0), kTag0);  // fresh replacement

  bool done = false;
  std::optional<Tag> repaired_tag;
  c.l2(3).repair_object(0, [&](std::optional<Tag> t) {
    done = true;
    repaired_tag = t;
  });
  c.settle();

  ASSERT_TRUE(done);
  ASSERT_TRUE(repaired_tag.has_value());
  EXPECT_EQ(*repaired_tag, wt);
  EXPECT_EQ(c.l2(3).stored_tag(0), wt);
  EXPECT_EQ(c.l2(3).stored_element(0), expected)
      << "exact repair: the replacement must hold byte-identical content";
}

TEST(L2Repair, RepairedServerServesSubsequentReads) {
  // The repaired coordinate must be *functionally* correct: crash f2 other
  // servers so that reads depend on the repaired one.
  auto opt = base_options();
  LdsCluster c(opt);
  Rng rng(2);
  const Bytes v = rng.bytes(200);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();

  c.crash_l2(0);
  c.replace_l2(0);
  bool done = false;
  c.l2(0).repair_object(0, [&](std::optional<Tag> t) {
    done = t.has_value();
  });
  c.settle();
  ASSERT_TRUE(done);

  // Now crash f2 = 2 *other* servers: regeneration needs d + f2 = 6 of the
  // 8 servers, so the repaired server participates in every helper quorum.
  c.crash_l2(5);
  c.crash_l2(6);
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(L2Repair, RepairRetriesThroughConcurrentWrite) {
  // Start a repair while a write's offload is still in flight; mixed tags
  // can fail a round, but the repair must converge once the write settles.
  auto opt = base_options();
  opt.tau2 = 8.0;
  LdsCluster c(opt);
  Rng rng(3);
  const Bytes v1 = rng.bytes(60);
  const Bytes v2 = rng.bytes(60);
  c.write_sync(0, 0, v1);
  c.settle();

  c.replace_l2(2);
  bool done = false;
  std::optional<Tag> tag;
  // Kick off a second write and the repair at the same time.
  c.write_at(c.sim().now() + 0.1, 1, 0, v2);
  c.l2(2).repair_object(0, [&](std::optional<Tag> t) {
    done = true;
    tag = t;
  });
  c.settle();

  ASSERT_TRUE(done);
  ASSERT_TRUE(tag.has_value());
  // The repaired tag is one of the two written tags - never older state -
  // and after quiescence the server converges on the newest write, holding
  // exactly the coded element the encoder would produce for its coordinate.
  EXPECT_GE(*tag, (Tag{1, 1}));
  EXPECT_EQ(c.l2(2).stored_tag(0), (Tag{2, 2}));
  EXPECT_EQ(c.l2(2).stored_element(0),
            c.ctx().code.encode_element(v2, c.l2(2).code_index()));
}

TEST(L2Repair, UntouchedObjectRepairsToInitialState) {
  auto opt = base_options();
  opt.cfg.initial_value = Bytes{5, 5, 5, 5};
  LdsCluster c(opt);
  c.replace_l2(1);
  bool done = false;
  c.l2(1).repair_object(42, [&](std::optional<Tag> t) {
    done = t.has_value() && *t == kTag0;
  });
  c.settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.l2(1).stored_element(42),
            c.ctx().initial_element(c.l2(1).code_index()));
}

// ---- regular consistency ------------------------------------------------------

TEST(RegularReads, RoundTripAndRegularityHolds) {
  auto opt = base_options();
  opt.read_consistency = ReadConsistency::Regular;
  LdsCluster c(opt);
  Rng rng(4);
  const Bytes v = rng.bytes(90);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_regularity({}).ok);
}

TEST(RegularReads, TwoRoundTripsCheaperThanAtomic) {
  // A regular quiescent read finishes one client round trip earlier:
  // 4 tau1 + 2 tau2 instead of 6 tau1 + 2 tau2.
  double durations[2] = {0, 0};
  int i = 0;
  for (auto consistency :
       {ReadConsistency::Atomic, ReadConsistency::Regular}) {
    auto opt = base_options();
    opt.read_consistency = consistency;
    LdsCluster c(opt);
    Rng rng(5);
    c.write_sync(0, 0, rng.bytes(50));
    c.settle();
    const double t0 = c.sim().now();
    c.read_sync(0, 0);
    durations[i++] = c.sim().now() - t0;
  }
  EXPECT_DOUBLE_EQ(durations[0] - durations[1], 2.0);  // 2 tau1 saved
}

TEST(RegularReads, NoGammaLeakWithoutPutTag) {
  // The UNREGISTER-READER message must clean up registrations that the
  // skipped put-tag phase would have removed.
  auto opt = base_options();
  opt.read_consistency = ReadConsistency::Regular;
  LdsCluster c(opt);
  Rng rng(6);
  c.write_sync(0, 0, rng.bytes(30));
  c.settle();
  c.read_sync(0, 0);  // regeneration path: the reader registers everywhere
  c.settle();
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    EXPECT_EQ(c.l1(j).registered_readers(0), 0u) << "server " << j;
  }
}

TEST(RegularReads, StressManySeedsStaysRegular) {
  for (int seed = 0; seed < 8; ++seed) {
    auto opt = base_options();
    opt.read_consistency = ReadConsistency::Regular;
    opt.latency = LdsCluster::LatencyKind::Exponential;
    opt.seed = static_cast<std::uint64_t>(seed) + 31;
    LdsCluster c(opt);
    Rng rng(static_cast<std::uint64_t>(seed));
    c.write_at(0.0, 0, 0, rng.bytes(40));
    c.write_at(0.5, 1, 0, rng.bytes(40));
    c.read_at(0.3, 0, 0);
    c.read_at(0.8, 1, 0);
    c.settle();
    EXPECT_TRUE(c.history().all_complete()) << "seed " << seed;
    const auto verdict = c.history().check_regularity({});
    EXPECT_TRUE(verdict.ok) << verdict.violation << " seed " << seed;
  }
}

// ---- proxy cache ---------------------------------------------------------------

TEST(ProxyCache, QuiescentReadServedFromEdge) {
  auto opt = base_options();
  opt.cfg.proxy_cache = true;
  LdsCluster c(opt);
  Rng rng(7);
  const Bytes v = rng.bytes(70);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();

  // The committed value stays cached in every L1 list.
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    EXPECT_TRUE(c.l1(j).has_value(0, wt)) << "server " << j;
  }

  // The read completes in 6 tau1 - no L1<->L2 round trip (2 tau2 = 8).
  const double t0 = c.sim().now();
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rv, v);
  EXPECT_DOUBLE_EQ(c.sim().now() - t0, 6.0);
}

TEST(ProxyCache, CacheFollowsLatestWrite) {
  auto opt = base_options();
  opt.cfg.proxy_cache = true;
  LdsCluster c(opt);
  Rng rng(8);
  c.write_sync(0, 0, rng.bytes(40));
  c.settle();
  const Bytes v2 = rng.bytes(40);
  const Tag t2 = c.write_sync(1, 0, v2);
  c.settle();
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, t2);
  EXPECT_EQ(rv, v2);
  // Only the newest value is cached; older ones were garbage-collected.
  for (std::size_t j = 0; j < opt.cfg.n1; ++j) {
    EXPECT_TRUE(c.l1(j).has_value(0, t2));
    EXPECT_FALSE(c.l1(j).has_value(0, Tag{1, 1}));
  }
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(ProxyCache, StorageCostIsOneValuePerServerPerObject) {
  auto opt = base_options();
  opt.cfg.proxy_cache = true;
  LdsCluster c(opt);
  Rng rng(9);
  const std::size_t value_size = 100;
  c.write_sync(0, 0, rng.bytes(value_size));
  c.write_sync(0, 1, rng.bytes(value_size));
  c.settle();
  EXPECT_EQ(c.meter().l1_bytes(), opt.cfg.n1 * 2 * value_size);
}

TEST(ProxyCache, StaysAtomicUnderConcurrency) {
  for (int seed = 0; seed < 8; ++seed) {
    auto opt = base_options();
    opt.cfg.proxy_cache = true;
    opt.latency = LdsCluster::LatencyKind::Exponential;
    opt.seed = static_cast<std::uint64_t>(seed) + 77;
    LdsCluster c(opt);
    Rng rng(static_cast<std::uint64_t>(seed) + 7);
    c.write_at(0.0, 0, 0, rng.bytes(30));
    c.write_at(0.4, 1, 0, rng.bytes(30));
    c.read_at(0.2, 0, 0);
    c.read_at(0.9, 1, 0);
    c.settle();
    EXPECT_TRUE(c.history().all_complete()) << "seed " << seed;
    const auto verdict = c.history().check_atomicity({});
    EXPECT_TRUE(verdict.ok) << verdict.violation << " seed " << seed;
  }
}

}  // namespace
}  // namespace lds::core
