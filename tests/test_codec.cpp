// The wire codec (src/net/codec.h): seeded randomized
// encode -> decode -> re-encode identity over every message type of every
// family (LDS, ABD, CAS, heartbeat, store RPC), exact meta-byte accounting,
// hostile-input robustness (truncated / oversized / bad-magic /
// unknown-version frames reject with InvalidArgument, never crash), and a
// TcpTransport loopback smoke test driving put/get/multi_get against a
// listening StoreService.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "common/rng.h"
#include "lds/heartbeat.h"
#include "lds/messages.h"
#include "net/codec.h"
#include "net/transport.h"
#include "store/client.h"
#include "store/remote.h"

namespace lds::net::codec {
namespace {

Tag random_tag(Rng& rng) {
  return Tag{rng.next_u64() >> 16,
             static_cast<NodeId>(rng.uniform_int(0, 1 << 20))};
}

OpId random_op(Rng& rng) {
  return make_op_id(static_cast<NodeId>(rng.uniform_int(1, 1 << 20)),
                    static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30)));
}

/// One message of every LDS type, payloads of `n` bytes.
std::vector<MessagePtr> sample_lds(Rng& rng, std::size_t n) {
  using namespace lds::core;
  const ObjectId obj = static_cast<ObjectId>(rng.uniform_int(0, 1 << 20));
  const OpId op = random_op(rng);
  auto mk = [&](LdsBody body) {
    return LdsMessage::make(obj, op, std::move(body));
  };
  return {
      mk(QueryTag{}),
      mk(TagResp{random_tag(rng)}),
      mk(PutData{random_tag(rng), Value(rng.bytes(n))}),
      mk(WriteAck{random_tag(rng)}),
      mk(QueryCommTag{}),
      mk(CommTagResp{random_tag(rng)}),
      mk(QueryData{random_tag(rng)}),
      mk(DataRespValue{random_tag(rng), Value(rng.bytes(n))}),
      mk(DataRespCoded{random_tag(rng),
                       static_cast<int>(rng.uniform_int(0, 64)),
                       rng.bytes(n)}),
      mk(DataRespNack{}),
      mk(PutTag{random_tag(rng)}),
      mk(PutTagAck{}),
      mk(UnregisterReader{}),
      mk(CommitTag{random_tag(rng), rng.next_u64()}),
      mk(WriteCodeElem{random_tag(rng), rng.bytes(n)}),
      mk(AckCodeElem{random_tag(rng)}),
      mk(QueryCodeElem{static_cast<int>(rng.uniform_int(0, 64))}),
      mk(SendHelperElem{random_tag(rng), rng.bytes(n)}),
  };
}

std::vector<MessagePtr> sample_abd(Rng& rng, std::size_t n) {
  using namespace lds::baselines;
  const ObjectId obj = static_cast<ObjectId>(rng.uniform_int(0, 1 << 20));
  const OpId op = random_op(rng);
  auto mk = [&](AbdBody body) {
    return AbdMessage::make(obj, op, std::move(body));
  };
  return {
      mk(AbdQuery{rng.bernoulli(0.5)}),
      mk(AbdQueryResp{random_tag(rng), Value(rng.bytes(n))}),
      mk(AbdUpdate{random_tag(rng), Value(rng.bytes(n))}),
      mk(AbdUpdateAck{random_tag(rng)}),
  };
}

std::vector<MessagePtr> sample_cas(Rng& rng, std::size_t n) {
  using namespace lds::baselines;
  const ObjectId obj = static_cast<ObjectId>(rng.uniform_int(0, 1 << 20));
  const OpId op = random_op(rng);
  auto mk = [&](CasBody body) {
    return CasMessage::make(obj, op, std::move(body));
  };
  return {
      mk(CasQuery{}),
      mk(CasQueryResp{random_tag(rng)}),
      mk(CasPreWrite{random_tag(rng), rng.bytes(n)}),
      mk(CasPreAck{random_tag(rng)}),
      mk(CasFinalize{random_tag(rng), rng.bernoulli(0.5)}),
      mk(CasFinAck{random_tag(rng), rng.bernoulli(0.5), rng.bytes(n)}),
  };
}

std::vector<MessagePtr> sample_heartbeat(Rng& rng) {
  return {std::make_shared<core::HeartbeatPing>(rng.next_u64()),
          std::make_shared<core::HeartbeatPong>(rng.next_u64())};
}

std::vector<MessagePtr> sample_store(Rng& rng, std::size_t n) {
  using namespace lds::store;
  register_store_wire();
  const OpId op = random_op(rng);
  std::string key = "key-" + std::to_string(rng.next_u64() % 1000);
  RemoteReply reply;
  reply.code = StatusCode::kAborted;
  reply.message = "expected version mismatch";
  reply.version_known = true;
  reply.tag = random_tag(rng);
  reply.coalesced = rng.bernoulli(0.5);
  reply.has_value = true;
  reply.value = Value(rng.bytes(n));
  return {
      RemoteMessage::make(op, RemotePut{key, Value(rng.bytes(n))}),
      RemoteMessage::make(op, RemoteGet{key, ReadMode::Regular}),
      RemoteMessage::make(
          op, RemotePutIf{key, Value(rng.bytes(n)), Version(random_tag(rng))}),
      RemoteMessage::make(op, RemotePutIf{key, Value(rng.bytes(n)),
                                          Version()}),  // unknown expected
      RemoteMessage::make(op, std::move(reply)),
      RemoteMessage::make(
          op, RemoteReconfig{1,
                             {0, 3, static_cast<std::uint32_t>(
                                        rng.next_u64() % 8)},
                             "127.0.0.1",
                             static_cast<std::uint16_t>(rng.next_u64())}),
      RemoteMessage::make(op, RemoteReconfig{0, {}, "", 0}),  // epoch query
  };
}

/// encode -> decode -> re-encode must be the identity on wire bytes, and
/// every size accessor must agree with the encoded frame.
void expect_roundtrip(const MessagePtr& m) {
  const Frame f = encode(*m);
  EXPECT_EQ(f.size(), encoded_size(*m)) << m->type_name();
  EXPECT_EQ(m->meta_bytes() + m->data_bytes(), encoded_size(*m))
      << m->type_name();
  const Bytes wire = f.to_bytes();
  ASSERT_GE(wire.size(), kFrameOverheadBytes);

  MessagePtr back;
  std::size_t consumed = 0;
  const Status s = decode(wire.data(), wire.size(), &back, &consumed);
  ASSERT_TRUE(s.ok()) << m->type_name() << ": " << s.to_string();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_STREQ(back->type_name(), m->type_name());
  EXPECT_EQ(back->op(), m->op());
  EXPECT_EQ(back->data_bytes(), m->data_bytes());
  EXPECT_EQ(back->meta_bytes(), m->meta_bytes());

  const Bytes rewire = encode(*back).to_bytes();
  EXPECT_EQ(wire, rewire) << m->type_name() << ": re-encode not identical";
}

std::vector<MessagePtr> all_samples(Rng& rng, std::size_t n) {
  std::vector<MessagePtr> all;
  for (auto& v : {sample_lds(rng, n), sample_abd(rng, n), sample_cas(rng, n),
                  sample_heartbeat(rng), sample_store(rng, n)}) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

TEST(Codec, RoundTripsEveryMessageTypeAcrossSeedsAndSizes) {
  // Empty payloads (the paper's v0), tiny, typical, and large.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{256}, std::size_t{65536}}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(mix_seed(seed, n));
      for (const auto& m : all_samples(rng, n)) expect_roundtrip(m);
    }
  }
}

TEST(Codec, RoundTripsMaxSizeCodedElements) {
  // A full-object coded element at the top of the realistic range.
  Rng rng(mix_seed(42, 0));
  for (const auto& m : all_samples(rng, 1u << 20)) expect_roundtrip(m);
}

TEST(Codec, ZeroCopyValueBodies) {
  // Encoding a value-bearing message must share the payload buffer, not
  // copy it: the Frame body and the message's Value are the same buffer.
  const Value v(Rng(7).bytes(4096));
  const auto msg = core::LdsMessage::make(
      3, make_op_id(1, 1), core::PutData{Tag{1, 1}, v});
  const Frame f = encode(*msg);
  EXPECT_TRUE(f.body.same_buffer(v));
  EXPECT_EQ(f.head.size() + v.size(), encoded_size(*msg));
}

TEST(Codec, FrameLengthHelper) {
  Rng rng(3);
  const Bytes wire = encode(*sample_lds(rng, 100)[2]).to_bytes();
  std::size_t total = 0;
  // Too short to know: Ok with total 0.
  ASSERT_TRUE(frame_length(wire.data(), 3, &total).ok());
  EXPECT_EQ(total, 0u);
  ASSERT_TRUE(frame_length(wire.data(), wire.size(), &total).ok());
  EXPECT_EQ(total, wire.size());
  // Hostile length prefix: rejected before any buffering could happen.
  Bytes evil = wire;
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFrameBytes + 1);
  std::memcpy(evil.data(), &huge, 4);
  EXPECT_FALSE(frame_length(evil.data(), evil.size(), &total).ok());
}

/// Every corruption must yield InvalidArgument — and, implicitly, not crash.
void expect_rejected(const Bytes& frame, const char* what) {
  MessagePtr out;
  const Status s = decode(frame.data(), frame.size(), &out);
  EXPECT_FALSE(s.ok()) << what;
  EXPECT_TRUE(s.is(StatusCode::kInvalidArgument))
      << what << ": " << s.to_string();
}

TEST(Codec, RejectsCorruptFramesInEveryFamily) {
  Rng rng(mix_seed(9, 1));
  for (const auto& m : all_samples(rng, 33)) {
    const Bytes wire = encode(*m).to_bytes();

    // Truncation at EVERY length short of the full frame.
    for (std::size_t len = 0; len < wire.size(); ++len) {
      Bytes t(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
      // Re-patch the length prefix so the truncation hits the BODY parse
      // path too, not just the have-fewer-bytes-than-declared check.
      if (len >= kLenPrefixBytes) {
        const auto n = static_cast<std::uint32_t>(len - kLenPrefixBytes);
        std::memcpy(t.data(), &n, 4);
      }
      expect_rejected(t, m->type_name());
    }

    Bytes bad = wire;  // bad magic
    bad[4] ^= 0xff;
    expect_rejected(bad, "bad magic");

    bad = wire;  // unknown wire version
    bad[6] = 99;
    expect_rejected(bad, "unknown version");

    bad = wire;  // unknown family id (an empty registry slot, then out of range)
    bad[7] = 7;
    expect_rejected(bad, "unknown family");
    bad[7] = 200;
    expect_rejected(bad, "out-of-range family");

    bad = wire;  // unknown type id within the family
    bad[8] = 250;
    expect_rejected(bad, "unknown type");

    bad = wire;  // oversized declared length
    const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFrameBytes + 1);
    std::memcpy(bad.data(), &huge, 4);
    expect_rejected(bad, "oversized frame");

    bad = wire;  // trailing garbage inside the declared frame
    bad.push_back(0xab);
    const auto n = static_cast<std::uint32_t>(bad.size() - kLenPrefixBytes);
    std::memcpy(bad.data(), &n, 4);
    expect_rejected(bad, "trailing bytes");
  }
}

TEST(Codec, RejectsInteriorLengthOverrun) {
  // A blob length field pointing past the end of its frame must not read
  // out of bounds.  DataRespCoded: [..header..][tag][i32][u32 len][element].
  Rng rng(11);
  const auto msg = core::LdsMessage::make(
      1, make_op_id(2, 3), core::DataRespCoded{Tag{5, 1}, 3, rng.bytes(64)});
  Bytes wire = encode(*msg).to_bytes();
  const std::size_t len_off = kFrameOverheadBytes + kTagWireBytes + 4;
  const std::uint32_t overrun = 1u << 30;
  std::memcpy(wire.data() + len_off, &overrun, 4);
  expect_rejected(wire, "interior length overrun");
}

TEST(Codec, RejectsHeaderPayloadOverrunAndMisplacedPayload) {
  // The header's payload-length field is what the streaming receiver trusts
  // for zero-copy recv: a value past the frame end must be rejected before
  // any buffer is sized from it, and payload bytes on a payload-free type
  // must not be silently swallowed.
  Rng rng(13);
  const auto msg = core::LdsMessage::make(
      1, make_op_id(2, 3), core::PutData{Tag{5, 1}, Value(rng.bytes(64))});
  Bytes wire = encode(*msg).to_bytes();
  const std::size_t pay_off = kLenPrefixBytes + kHeaderBytes - 4;
  std::uint32_t evil = static_cast<std::uint32_t>(wire.size());  // > frame
  std::memcpy(wire.data() + pay_off, &evil, 4);
  expect_rejected(wire, "header payload overrun");

  // frame_layout (the transport's probe) must reject it too.
  std::size_t total = 0, payload = 0;
  EXPECT_FALSE(frame_layout(wire.data(), wire.size(), &total, &payload).ok());

  // A QueryTag (no payload) whose header claims payload bytes: the bytes
  // would go unconsumed, which decode treats as hostile.
  const auto bare =
      core::LdsMessage::make(1, make_op_id(2, 3), core::QueryTag{});
  Bytes w2 = encode(*bare).to_bytes();
  w2.push_back(0xcd);
  w2.push_back(0xcd);
  const auto n = static_cast<std::uint32_t>(w2.size() - kLenPrefixBytes);
  std::memcpy(w2.data(), &n, 4);
  evil = 2;
  std::memcpy(w2.data() + pay_off, &evil, 4);
  expect_rejected(w2, "payload on payload-free type");
}

TEST(Codec, FrameLayoutSplitsPayloadExtent) {
  Rng rng(17);
  const Value v(rng.bytes(4096));
  const auto msg = core::LdsMessage::make(
      1, make_op_id(2, 3), core::PutData{Tag{5, 1}, v});
  const Bytes wire = encode(*msg).to_bytes();
  std::size_t total = 0, payload = 0;
  // Too short to know: Ok with zeros.
  ASSERT_TRUE(frame_layout(wire.data(), kFrameOverheadBytes - 1, &total,
                           &payload)
                  .ok());
  EXPECT_EQ(total, 0u);
  ASSERT_TRUE(frame_layout(wire.data(), wire.size(), &total, &payload).ok());
  EXPECT_EQ(total, wire.size());
  EXPECT_EQ(payload, v.size());

  // decode_with_payload over the head/payload split is the zero-copy mirror
  // of decode: same message, and the Value handle is shared, not copied.
  const std::size_t head_len = total - payload;
  Value pay(Bytes(wire.begin() + static_cast<std::ptrdiff_t>(head_len),
                  wire.end()));
  MessagePtr back;
  ASSERT_TRUE(
      decode_with_payload(wire.data(), head_len, pay, &back).ok());
  const auto* m = dynamic_cast<const core::LdsMessage*>(back.get());
  ASSERT_NE(m, nullptr);
  const auto* pd = std::get_if<core::PutData>(&m->body());
  ASSERT_NE(pd, nullptr);
  EXPECT_TRUE(pd->value.same_buffer(pay));
  EXPECT_EQ(static_cast<const Bytes&>(pd->value),
            static_cast<const Bytes&>(v));

  // A split that disagrees with the header is hostile.
  MessagePtr out;
  EXPECT_FALSE(
      decode_with_payload(wire.data(), head_len + 1, pay, &out).ok());
  EXPECT_FALSE(decode_with_payload(wire.data(), head_len,
                                   Value(rng.bytes(payload - 1)), &out)
                   .ok());
}

// ---- TcpTransport loopback --------------------------------------------------

TEST(TcpTransport, LoopbackStoreServiceServesPutGetMultiGet) {
  store::StoreOptions sopt;
  sopt.shards = 2;
  sopt.engine_mode = EngineMode::Parallel;
  sopt.engine_threads = 2;
  sopt.seed = 17;
  store::StoreService svc(sopt);
  ASSERT_TRUE(svc.listen(0).ok());
  ASSERT_NE(svc.listen_port(), 0);

  Status st;
  const auto client = store::Client::connect("127.0.0.1", svc.listen_port(),
                                             &st);
  ASSERT_NE(client, nullptr) << st.to_string();
  ASSERT_TRUE(client->remote());

  // put -> get round-trips the value and version across the socket.
  const Value v = Value::from_string("over the wire");
  const auto put = client->put_sync("alpha", v);
  ASSERT_TRUE(put.ok()) << put.status().to_string();
  const auto got = client->get_sync("alpha");
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(got.value().value, v);
  EXPECT_EQ(got.value().version, put.value());

  // NotFound travels as a typed status, not a crash or an empty value.
  EXPECT_TRUE(client->get_sync("never-written").status().is(
      StatusCode::kNotFound));

  // Conditional puts: create-if-absent, then a stale expected aborts with
  // the observed version.
  const auto created = client->put_if_version_sync(
      "beta", Value::from_string("b0"), Version(kTag0));
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  const auto fresh = client->put_if_version_sync(
      "beta", Value::from_string("b1"), created.value());
  ASSERT_TRUE(fresh.ok());
  const auto stale = client->put_if_version_sync(
      "beta", Value::from_string("b2"), created.value());
  EXPECT_TRUE(stale.status().is(StatusCode::kAborted));

  // multi_put + multi_get scatter-gather over the one connection.
  std::vector<store::KeyValue> entries;
  for (int i = 0; i < 8; ++i) {
    entries.push_back({"bulk-" + std::to_string(i),
                       Value::from_string("v" + std::to_string(i))});
  }
  const auto puts = client->multi_put_sync(entries);
  ASSERT_EQ(puts.size(), entries.size());
  for (const auto& r : puts) EXPECT_TRUE(r.status.ok());
  std::vector<std::string> keys;
  for (const auto& e : entries) keys.push_back(e.key);
  keys.push_back("absent");
  const auto gets = client->multi_get_sync(keys);
  ASSERT_EQ(gets.size(), keys.size());
  for (std::size_t i = 0; i + 1 < gets.size(); ++i) {
    ASSERT_TRUE(gets[i].status.ok());
    EXPECT_EQ(gets[i].value, entries[i].value);
  }
  EXPECT_TRUE(gets.back().status.is(StatusCode::kNotFound));

  // Closed client fails fast without touching the socket.
  client->close();
  EXPECT_TRUE(client->put_sync("alpha", v).status().is(
      StatusCode::kUnavailable));

  svc.stop_listening();
  svc.quiesce();
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    EXPECT_TRUE(svc.shard_history(s).check_atomicity(Bytes{}).ok);
  }
}

TEST(TcpTransport, ListenStopListenAgainAndRejectWhileListening) {
  store::StoreOptions sopt;
  sopt.shards = 1;
  sopt.engine_mode = EngineMode::Parallel;
  sopt.engine_threads = 1;
  store::StoreService svc(sopt);
  ASSERT_TRUE(svc.listen(0).ok());
  // Double listen is a Status, not an abort.
  EXPECT_TRUE(svc.listen(0).is(StatusCode::kInvalidArgument));
  svc.stop_listening();
  // Re-listen after stop gets a fresh server and a fresh port.
  ASSERT_TRUE(svc.listen(0).ok());
  ASSERT_NE(svc.listen_port(), 0);
  const auto client =
      store::Client::connect("127.0.0.1", svc.listen_port(), nullptr);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->put_sync("k", Value::from_string("v")).ok());
}

TEST(TcpTransport, OversizedRequestFailsWithInvalidArgument) {
  store::StoreOptions sopt;
  sopt.shards = 1;
  sopt.engine_mode = EngineMode::Parallel;
  sopt.engine_threads = 1;
  store::StoreService svc(sopt);
  ASSERT_TRUE(svc.listen(0).ok());
  const auto client =
      store::Client::connect("127.0.0.1", svc.listen_port(), nullptr);
  ASSERT_NE(client, nullptr);
  // A value that cannot fit one frame is the CALLER's error, reported
  // before anything reaches the wire — not a dead connection.
  const auto r =
      client->put_sync("big", Value(Bytes(kMaxFrameBytes + 1024, 0x5a)));
  EXPECT_TRUE(r.status().is(StatusCode::kInvalidArgument))
      << r.status().to_string();
  // The connection survives and keeps serving.
  EXPECT_TRUE(client->put_sync("small", Value::from_string("v")).ok());
}

TEST(TcpTransport, ListenRequiresParallelEngine) {
  store::StoreOptions sopt;
  sopt.shards = 1;  // Deterministic mode: handler thread would be unsafe
  store::StoreService svc(sopt);
  const Status st = svc.listen(0);
  EXPECT_TRUE(st.is(StatusCode::kInvalidArgument)) << st.to_string();
}

TEST(TcpTransport, ConnectFailureReportsStatus) {
  // Nothing listens here: connect must fail cleanly, not hang or crash.
  Status st;
  const auto client = store::Client::connect("127.0.0.1", 1, &st);
  EXPECT_EQ(client, nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(TcpTransport, HostileBytesDisconnectWithoutCrashing) {
  // Raw garbage at the socket level: the hostile peer is dropped on its
  // first malformed frame while well-formed peers keep being served.
  TcpTransport server;
  std::atomic<int> received{0};
  ASSERT_TRUE(server
                  .listen(0,
                          [&](NodeId, MessagePtr) {
                            received.fetch_add(1, std::memory_order_relaxed);
                          })
                  .ok());

  const auto raw_send = [&](const Bytes& bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    // The server must close on us: a blocking read observes EOF, not data.
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0);
    ::close(fd);
  };

  // Hostile length prefix (way beyond the frame cap).
  raw_send(Bytes{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4});
  // Well-formed length, garbage header.
  Bytes garbage(64, 0xaa);
  const std::uint32_t n = 60;
  std::memcpy(garbage.data(), &n, 4);
  raw_send(garbage);
  EXPECT_GE(server.decode_errors(), 2u);

  // A legitimate peer still gets through after the hostile ones.
  TcpTransport good;
  NodeId peer = kNoNode;
  ASSERT_TRUE(
      good.connect("127.0.0.1", server.port(), [](NodeId, MessagePtr) {},
                   &peer)
          .ok());
  good.deliver(0, peer,
               core::LdsMessage::make(0, make_op_id(1, 1),
                                      core::TagResp{Tag{1, 1}}),
               0);
  for (int i = 0; i < 400 && received.load(std::memory_order_relaxed) < 1;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received.load(std::memory_order_relaxed), 1);
  good.stop();
  server.stop();
}

TEST(TcpTransport, ConnectTimeoutIsBounded) {
  // A socket that never completes the handshake: listen with a full backlog
  // and never accept, so further connects stay half-open.  The old blocking
  // ::connect sat in the kernel retransmit schedule for minutes; the
  // nonblocking path must give up within connect_timeout_ms.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  // Saturate the accept queue (backlog 1, nothing ever accepts).
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpTransport::Options opt;
  opt.connect_timeout_ms = 300;
  TcpTransport t(opt);
  NodeId peer = kNoNode;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st =
      t.connect("127.0.0.1", port, [](NodeId, MessagePtr) {}, &peer);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  if (!st.ok()) {
    // The expected outcome: the overflowing SYN was dropped and the connect
    // timed out within (roughly) the configured budget.
    EXPECT_TRUE(st.is(StatusCode::kUnavailable)) << st.to_string();
    EXPECT_LT(elapsed.count(), 5000) << "timeout not honored: " << st.to_string();
  }
  // Some kernels complete loopback handshakes past the backlog; then the
  // connect legitimately succeeds, fast.  Either way it must not block for
  // the kernel's minutes-long retry schedule.
  EXPECT_LT(elapsed.count(), 5000);
  t.stop();
  for (const int fd : fillers) ::close(fd);
  ::close(lfd);
}

TEST(TcpTransport, ConnectToClosedPortFailsFast) {
  TcpTransport::Options opt;
  opt.connect_timeout_ms = 2000;
  TcpTransport t(opt);
  // Grab an ephemeral port, close it again: nothing listens there, so the
  // kernel answers the SYN with RST and connect must fail immediately (far
  // inside the timeout), with a real error, not a hang.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &alen),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(probe);

  NodeId peer = kNoNode;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st =
      t.connect("127.0.0.1", port, [](NodeId, MessagePtr) {}, &peer);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(st.ok());
  EXPECT_LT(elapsed.count(), 1000);
  t.stop();
}

TEST(TcpTransport, PollFailureFailsConnsAndStopsTransport) {
  // When poll(2) itself fails the loop can no longer move anyone's bytes.
  // The old code silently broke out of the loop, stranding every connection
  // with no disconnect callback; now each conn fails through the handler and
  // the transport marks itself stopped.
  TcpTransport server;
  ASSERT_TRUE(server.listen(0, [](NodeId, MessagePtr) {}).ok());

  TcpTransport client;
  std::atomic<int> disconnects{0};
  client.set_disconnect_handler(
      [&](NodeId) { disconnects.fetch_add(1, std::memory_order_relaxed); });
  NodeId peer = kNoNode;
  ASSERT_TRUE(
      client.connect("127.0.0.1", server.port(), [](NodeId, MessagePtr) {},
                     &peer)
          .ok());
  ASSERT_FALSE(client.stopped());

  client.inject_poll_failure_for_testing();
  for (int i = 0; i < 400 && disconnects.load(std::memory_order_relaxed) < 1;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(disconnects.load(std::memory_order_relaxed), 1);
  EXPECT_TRUE(client.stopped());

  // The dead transport refuses new work instead of queueing onto a loop
  // that no longer runs (the old behavior aborted or hung here).
  NodeId peer2 = kNoNode;
  const Status st = client.connect("127.0.0.1", server.port(),
                                   [](NodeId, MessagePtr) {}, &peer2);
  EXPECT_TRUE(st.is(StatusCode::kUnavailable)) << st.to_string();
  client.stop();
  server.stop();
}

}  // namespace
}  // namespace lds::net::codec
