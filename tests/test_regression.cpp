// Golden regression tests: exact, deterministic end-to-end numbers for one
// pinned configuration.  Any change to the protocol's message flow, cost
// accounting or scheduling shows up here first, with precise values rather
// than tolerances.  (The analytical comparisons live in the benches; these
// pin the implementation.)
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lds/cluster.h"

namespace lds::core {
namespace {

LdsCluster::Options pinned() {
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;  // k = 4, l1 quorum 5
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;  // d = 4, l2 quorum 6
  opt.writers = 1;
  opt.readers = 1;
  opt.tau1 = 1.0;
  opt.tau0 = 1.0;
  opt.tau2 = 4.0;
  opt.latency = LdsCluster::LatencyKind::Fixed;
  opt.seed = 12345;
  return opt;
}

TEST(Regression, WriteMessageCountAndTiming) {
  LdsCluster c(pinned());
  Rng rng(1);
  const double t0 = c.sim().now();
  c.write_sync(0, 0, rng.bytes(100));
  // Lemma V.4 with equality under fixed delays: 4 tau1 + 2 tau0.
  EXPECT_DOUBLE_EQ(c.sim().now() - t0, 6.0);
  c.settle();

  // Exact message census for one write on this layout:
  //   6 QUERY-TAG + 6 TAG-RESP + 6 PUT-DATA
  //   broadcasts: 6 instances x (2 relays + 2 relays x 6 forwards) = 84
  //   6 WRITE-ACK
  //   write-to-L2: 6 x 8 WRITE-CODE-ELEM + 6 x 8 ACK-CODE-ELEM = 96
  EXPECT_EQ(c.net().costs().total().messages, 6u + 6u + 6u + 84u + 6u + 96u);
}

TEST(Regression, WriteByteAccounting) {
  auto opt = pinned();
  LdsCluster c(opt);
  Rng rng(2);
  const std::size_t value_size = 100;  // +8 header = 108 -> 11 stripes of 10
  c.write_sync(0, 0, rng.bytes(value_size));
  c.settle();
  // Stripes: B = k(2d-k+1)/2 = 10 symbols; ceil(108/10) = 11 stripes.
  // Element bytes = 11 stripes * alpha(4) = 44.
  // Data bytes = 6 PUT-DATA x 100 + 6*8 WRITE-CODE-ELEM x 44 = 600 + 2112.
  EXPECT_EQ(c.net().costs().total().data_bytes, 600u + 2112u);
  // Permanent storage: 8 servers x 44 B.
  EXPECT_EQ(c.meter().l2_bytes(), 352u);
  EXPECT_EQ(c.meter().l1_bytes(), 0u);  // fully offloaded and GC'd
  EXPECT_EQ(c.meter().l1_peak_bytes(), 6u * 100u);
}

TEST(Regression, QuiescentReadMessageCountAndTiming) {
  LdsCluster c(pinned());
  Rng rng(3);
  c.write_sync(0, 0, rng.bytes(100));
  c.settle();
  c.net().costs().reset();

  const double t0 = c.sim().now();
  auto [tag, value] = c.read_sync(0, 0);
  // 2 tau1 (committed tag) + tau1 + 2 tau2 + tau1 (get-data via regen) +
  // 2 tau1 (put-tag) = 6 tau1 + 2 tau2 = 14.
  EXPECT_DOUBLE_EQ(c.sim().now() - t0, 14.0);
  c.settle();

  // 6 QUERY-COMM-TAG + 6 resp + 6 QUERY-DATA + 6x8 QUERY-CODE-ELEM +
  // 6x8 SEND-HELPER-ELEM + 6 DATA-RESP-CODED + 6 PUT-TAG + 6 PUT-TAG-ACK.
  EXPECT_EQ(c.net().costs().total().messages,
            6u + 6u + 6u + 48u + 48u + 6u + 6u + 6u);
  // Data bytes: helpers 48 x 11 (11 stripes x beta 1) + elements 6 x 44.
  EXPECT_EQ(c.net().costs().total().data_bytes, 48u * 11u + 6u * 44u);
}

TEST(Regression, TagsAndValuesExact) {
  LdsCluster c(pinned());
  Rng rng(4);
  const Bytes v1 = rng.bytes(10);
  const Bytes v2 = rng.bytes(10);
  EXPECT_EQ(c.write_sync(0, 0, v1), (Tag{1, 1}));
  EXPECT_EQ(c.write_sync(0, 0, v2), (Tag{2, 1}));
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, (Tag{2, 1}));
  EXPECT_EQ(rv, v2);
  // get-tag counts garbage-collected keys: a third write must pick z = 3
  // even after everything is offloaded and blanked.
  c.settle();
  EXPECT_EQ(c.write_sync(0, 0, v1), (Tag{3, 1}));
}

TEST(Regression, DeterministicAcrossRuns) {
  // Two identical runs produce byte-identical cost totals and timings -
  // the reproducibility contract of the simulator.
  std::uint64_t msgs[2], data[2];
  double times[2];
  for (int i = 0; i < 2; ++i) {
    LdsCluster c(pinned());
    Rng rng(5);
    c.write_sync(0, 0, rng.bytes(64));
    c.read_sync(0, 0);
    c.settle();
    msgs[i] = c.net().costs().total().messages;
    data[i] = c.net().costs().total().data_bytes;
    times[i] = c.sim().now();
  }
  EXPECT_EQ(msgs[0], msgs[1]);
  EXPECT_EQ(data[0], data[1]);
  EXPECT_DOUBLE_EQ(times[0], times[1]);
}

}  // namespace
}  // namespace lds::core
