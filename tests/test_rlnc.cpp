// RLNC functional-repair storage (the Section-VI open question): decode
// guarantees before and after chains of repairs, rank behaviour, and the
// deterministic seed contract.
#include <gtest/gtest.h>

#include <numeric>

#include "codes/rlnc.h"
#include "common/rng.h"

namespace lds::codes {
namespace {

TEST(Rlnc, FreshSystemDecodesFromEveryKSubset) {
  RlncMbrSystem sys(6, 3, 4, /*seed=*/7);
  Rng rng(1);
  const Bytes msg = rng.bytes(sys.file_size());
  sys.init_from_message(msg);
  EXPECT_TRUE(sys.all_k_subsets_decode());
}

TEST(Rlnc, DecodeMatchesMessage) {
  RlncMbrSystem sys(7, 2, 5, 3);
  Rng rng(2);
  const Bytes msg = rng.bytes(sys.file_size());
  sys.init_from_message(msg);
  const std::vector<int> nodes{1, 4};
  auto decoded = sys.decode(nodes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(Rlnc, TooFewNodesCannotDecode) {
  RlncMbrSystem sys(6, 3, 4, 5);
  Rng rng(3);
  sys.init_from_message(rng.bytes(sys.file_size()));
  const std::vector<int> too_few{0, 1};  // 2 alpha = 8 < B = 9
  EXPECT_FALSE(sys.decode(too_few).has_value());
  EXPECT_LT(sys.rank_of(too_few), sys.file_size());
}

TEST(Rlnc, SurvivesSingleFunctionalRepair) {
  RlncMbrSystem sys(6, 3, 4, 11);
  Rng rng(4);
  const Bytes msg = rng.bytes(sys.file_size());
  sys.init_from_message(msg);
  sys.repair(2, std::vector<int>{0, 1, 4, 5});
  // The repaired node's coordinates changed (functional repair), but w.h.p.
  // the system still decodes from every k-subset over GF(256).
  EXPECT_TRUE(sys.all_k_subsets_decode());
}

TEST(Rlnc, RepairChainsDegradeOnlyProbabilistically) {
  // The paper's open question, empirically: functional repair gives
  // *probabilistic* guarantees - each repair risks a rank drop w.p.
  // O(1/q) per k-subset, so over a 40-repair chain a handful of transient
  // all-subsets failures are expected (and observed), but the system must
  // remain decodable in the overwhelming majority of states.  This is the
  // quantitative contrast with the deterministic product-matrix codes,
  // which never fail (PmMbrTest.ExactRepairFromSlidingHelperWindows).
  RlncMbrSystem sys(6, 3, 4, 13);
  Rng rng(5);
  const Bytes msg = rng.bytes(sys.file_size());
  sys.init_from_message(msg);
  Rng pick(99);
  int bad_states = 0;
  for (int round = 0; round < 40; ++round) {
    const int victim = static_cast<int>(pick.uniform_int(0, 5));
    std::vector<int> helpers;
    for (int i = 0; i < 6 && helpers.size() < 4; ++i) {
      if (i != victim) helpers.push_back(i);
    }
    sys.repair(victim, helpers);
    if (!sys.all_k_subsets_decode()) ++bad_states;
  }
  EXPECT_LE(bad_states, 8) << "rank loss should be rare over GF(256)";
  // And plenty of redundancy remains: the full node set always decodes.
  std::vector<int> all{0, 1, 2, 3, 4, 5};
  auto decoded = sys.decode(all);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(Rlnc, RepairRejectsBadHelpers) {
  RlncMbrSystem sys(6, 3, 4, 17);
  Rng rng(6);
  sys.init_from_message(rng.bytes(sys.file_size()));
  EXPECT_DEATH(sys.repair(0, std::vector<int>{1, 2, 3}), "exactly d");
  EXPECT_DEATH(sys.repair(0, std::vector<int>{0, 1, 2, 3}), "bad helper");
  EXPECT_DEATH(sys.repair(0, std::vector<int>{1, 1, 2, 3}), "duplicate");
}

TEST(Rlnc, DeterministicForFixedSeed) {
  Bytes decoded[2];
  for (int i = 0; i < 2; ++i) {
    RlncMbrSystem sys(6, 3, 4, 21);
    Rng rng(7);
    const Bytes msg = rng.bytes(sys.file_size());
    sys.init_from_message(msg);
    sys.repair(1, std::vector<int>{2, 3, 4, 5});
    auto d = sys.decode(std::vector<int>{0, 1, 2});
    ASSERT_TRUE(d.has_value());
    decoded[i] = *d;
  }
  EXPECT_EQ(decoded[0], decoded[1]);
}

TEST(Rlnc, RankIsMonotoneInNodeCount) {
  RlncMbrSystem sys(8, 4, 5, 23);
  Rng rng(8);
  sys.init_from_message(rng.bytes(sys.file_size()));
  std::vector<int> nodes;
  std::size_t prev = 0;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(i);
    const std::size_t r = sys.rank_of(nodes);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_EQ(prev, sys.file_size());
}

}  // namespace
}  // namespace lds::codes
