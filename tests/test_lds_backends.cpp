// LDS end-to-end with the alternative back-ends of the ablation studies:
// the RS (fetch-k-and-decode) back-end of Remark 1 and the replicated
// back-end of Remark 2.  The client protocol is untouched - that is the
// modularity claim of the paper's introduction - so liveness and atomicity
// must hold unchanged; only the cost profile moves.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lds/analysis.h"
#include "lds/cluster.h"

namespace lds::core {
namespace {

class BackendTest : public ::testing::TestWithParam<codes::BackendKind> {
 protected:
  LdsCluster::Options options() const {
    LdsCluster::Options opt;
    opt.cfg.n1 = 6;
    opt.cfg.f1 = 1;  // k = 4
    opt.cfg.n2 = 8;
    opt.cfg.f2 = 2;  // d = 4
    opt.cfg.backend = GetParam();
    opt.cfg.initial_value = Bytes{1, 2, 3};
    opt.writers = 2;
    opt.readers = 2;
    return opt;
  }
};

TEST_P(BackendTest, WriteReadRoundTripThroughL2) {
  LdsCluster c(options());
  Rng rng(3);
  const Bytes v = rng.bytes(150);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();  // force the read to regenerate from L2
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_atomicity(options().cfg.initial_value).ok);
}

TEST_P(BackendTest, InitialValueReadableFromL2) {
  LdsCluster c(options());
  auto [rt, rv] = c.read_sync(1, 7);
  EXPECT_EQ(rt, kTag0);
  EXPECT_EQ(rv, (Bytes{1, 2, 3}));
}

TEST_P(BackendTest, SurvivesMaxCrashes) {
  LdsCluster c(options());
  Rng rng(4);
  c.crash_l1(2);
  c.crash_l2(0);
  c.crash_l2(5);
  const Bytes v = rng.bytes(90);
  const Tag wt = c.write_sync(0, 0, v);
  c.settle();
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().all_complete());
  EXPECT_TRUE(c.history().check_atomicity(options().cfg.initial_value).ok);
}

TEST_P(BackendTest, ConcurrentWritersStayAtomic) {
  LdsCluster c(options());
  Rng rng(5);
  c.write_at(0.0, 0, 0, rng.bytes(50));
  c.write_at(0.2, 1, 0, rng.bytes(50));
  c.read_at(0.9, 0, 0);
  c.read_at(1.1, 1, 0);
  c.settle();
  EXPECT_TRUE(c.history().all_complete());
  EXPECT_TRUE(c.history().check_atomicity(options().cfg.initial_value).ok);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BackendTest,
                         ::testing::Values(codes::BackendKind::PmMbr,
                                           codes::BackendKind::Rs,
                                           codes::BackendKind::Replication),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case codes::BackendKind::PmMbr: return "PmMbr";
                             case codes::BackendKind::Rs: return "Rs";
                             case codes::BackendKind::Replication:
                               return "Replication";
                           }
                           return "Unknown";
                         });

TEST(BackendCost, RsReadCostGrowsWithN1WhileMbrStaysFlat) {
  // The quantitative content of Remark 1 at test scale.
  double mbr_cost = 0, rs_cost = 0;
  for (auto kind : {codes::BackendKind::PmMbr, codes::BackendKind::Rs}) {
    LdsCluster::Options opt;
    opt.cfg = LdsConfig::symmetric(20, 2);  // k = d = 16
    opt.cfg.backend = kind;
    LdsCluster c(opt);
    Rng rng(6);
    const std::size_t value_size = 13600;  // 100 stripes of B = 136
    c.write_sync(0, 0, rng.bytes(value_size));
    c.settle();
    const OpId read_op = make_op_id(kReaderIdBase, 1);
    c.read_sync(0, 0);
    const double cost =
        static_cast<double>(c.net().costs().by_op(read_op).data_bytes) /
        static_cast<double>(value_size);
    if (kind == codes::BackendKind::PmMbr) {
      mbr_cost = cost;
    } else {
      rs_cost = cost;
    }
  }
  // MBR: ~ n1 (1 + n2/d) alpha = ~5.3; RS: >= n1 = 20.
  EXPECT_LT(mbr_cost, 7.0);
  EXPECT_GT(rs_cost, 15.0);
}

}  // namespace
}  // namespace lds::core
