// Workload-model unit tests: value-size distribution parsing/sampling, the
// YCSB Zipfian rank generator, the rank->key permutation (bijection and the
// exact coldest-first priming order), tenant key naming, option validation,
// and seed-determinism of the whole model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

#include "harness/workload.h"

namespace lds::harness {
namespace {

TEST(ValueSizeDist, ParseRoundTripsAndSamplesInRange) {
  const auto fixed = ValueSizeDist::parse("fixed:128");
  ASSERT_TRUE(fixed.has_value());
  EXPECT_EQ(fixed->spec(), "fixed:128");
  EXPECT_EQ(fixed->max_size(), 128u);
  Rng rng(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fixed->sample(rng), 128u);

  const auto uni = ValueSizeDist::parse("uniform:16:64");
  ASSERT_TRUE(uni.has_value());
  EXPECT_EQ(uni->spec(), "uniform:16:64");
  EXPECT_EQ(uni->max_size(), 64u);
  for (int i = 0; i < 256; ++i) {
    const auto s = uni->sample(rng);
    EXPECT_GE(s, 16u);
    EXPECT_LE(s, 64u);
  }

  const auto bi = ValueSizeDist::parse("bimodal:64:4096:10");
  ASSERT_TRUE(bi.has_value());
  EXPECT_EQ(bi->max_size(), 4096u);
  std::size_t large = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto s = bi->sample(rng);
    EXPECT_TRUE(s == 64u || s == 4096u);
    if (s == 4096u) ++large;
  }
  // 10% of 2000 = 200 expected; generous +-100 bounds (~7 sigma).
  EXPECT_GT(large, 100u);
  EXPECT_LT(large, 400u);
}

TEST(ValueSizeDist, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(ValueSizeDist::parse("").has_value());
  EXPECT_FALSE(ValueSizeDist::parse("fixed").has_value());
  EXPECT_FALSE(ValueSizeDist::parse("fixed:").has_value());
  EXPECT_FALSE(ValueSizeDist::parse("fixed:abc").has_value());
  EXPECT_FALSE(ValueSizeDist::parse("uniform:64:16").has_value());
  EXPECT_FALSE(ValueSizeDist::parse("bimodal:1:2:150").has_value());
  EXPECT_FALSE(ValueSizeDist::parse("gauss:3").has_value());
}

TEST(Zipfian, RanksAreSkewedTowardZeroAndInRange) {
  const ZipfianGenerator z(100, 0.99);
  Rng rng(42);
  std::vector<std::size_t> counts(100, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const auto r = z.next_rank(rng);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  // YCSB theta=0.99 over 100 keys gives rank 0 ~18% of the mass while the
  // coldest half of the ranks together draw ~14%.
  EXPECT_GT(counts[0], static_cast<std::size_t>(draws) / 10);
  std::size_t cold_half = 0;
  for (std::size_t r = 50; r < 100; ++r) cold_half += counts[r];
  EXPECT_LT(cold_half, static_cast<std::size_t>(draws) / 5);
  // Popularity is (statistically) monotone in rank.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1] + counts[2], counts[50] + counts[51]);
}

TEST(Zipfian, HigherThetaIsMoreSkewed) {
  Rng rng(7);
  const auto head_mass = [&rng](double theta) {
    const ZipfianGenerator z(64, theta);
    std::size_t head = 0;
    for (int i = 0; i < 10000; ++i) head += z.next_rank(rng) < 4 ? 1 : 0;
    return head;
  };
  const auto mild = head_mass(0.5);
  const auto hot = head_mass(0.99);
  EXPECT_GT(hot, mild);
}

TEST(WorkloadModel, PermutationIsABijectionWithExactColdestOrder) {
  WorkloadOptions opt;
  opt.keys = 57;
  opt.zipf_theta = 0.9;
  opt.seed = 1234;
  const WorkloadModel m(opt);
  const auto order = m.keys_coldest_first();
  ASSERT_EQ(order.size(), 57u);
  std::vector<bool> seen(57, false);
  for (const auto k : order) {
    ASSERT_LT(k, 57u);
    EXPECT_FALSE(seen[k]);  // bijection: no key listed twice
    seen[k] = true;
  }
  // The last key in coldest-first order is rank 0 — it must be the single
  // most frequently drawn key.
  Rng rng(7);
  std::map<std::size_t, std::size_t> counts;
  for (int i = 0; i < 20000; ++i) ++counts[m.key_index(rng)];
  std::size_t hottest = 0, best = 0;
  for (const auto& [k, n] : counts) {
    if (n > best) {
      best = n;
      hottest = k;
    }
  }
  EXPECT_EQ(hottest, order.back());
}

TEST(WorkloadModel, UniformWhenThetaZero) {
  WorkloadOptions opt;
  opt.keys = 8;
  const WorkloadModel m(opt);
  // Identity priming order and roughly even key coverage.
  const auto order = m.keys_coldest_first();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  Rng rng(3);
  std::vector<std::size_t> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[m.key_index(rng)];
  for (const auto n : counts) {
    EXPECT_GT(n, 700u);
    EXPECT_LT(n, 1300u);
  }
}

TEST(WorkloadModel, TenantNamingAndClientMapping) {
  WorkloadOptions opt;
  opt.keys = 4;
  opt.tenants = 3;
  const WorkloadModel m(opt);
  EXPECT_EQ(m.tenant_of_client(0), 0u);
  EXPECT_EQ(m.tenant_of_client(4), 1u);
  EXPECT_EQ(m.key_name(2, 1), "t2:key-1");
  // Single-tenant workloads keep the historical unprefixed names, so
  // default runs stay byte-compatible with earlier benchmarks.
  WorkloadOptions single = opt;
  single.tenants = 1;
  EXPECT_EQ(WorkloadModel(single).key_name(0, 1), "key-1");
}

TEST(WorkloadModel, ValidateRejectsOutOfRangeOptions) {
  WorkloadOptions opt;
  EXPECT_FALSE(validate_workload(opt).has_value());
  opt.keys = 0;
  EXPECT_TRUE(validate_workload(opt).has_value());
  opt.keys = 4;
  opt.zipf_theta = 1.0;  // theta must stay below 1
  EXPECT_TRUE(validate_workload(opt).has_value());
  opt.zipf_theta = 0.5;
  opt.read_fraction = 1.5;
  EXPECT_TRUE(validate_workload(opt).has_value());
  opt.read_fraction = 0.5;
  opt.tenants = 0;
  EXPECT_TRUE(validate_workload(opt).has_value());
}

TEST(WorkloadModel, SameSeedSameSequence) {
  WorkloadOptions opt;
  opt.keys = 32;
  opt.zipf_theta = 0.99;
  opt.seed = 99;
  const WorkloadModel a(opt);
  const WorkloadModel b(opt);
  Rng ra(5), rb(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.key_index(ra), b.key_index(rb));
    EXPECT_EQ(a.is_read(ra), b.is_read(rb));
    EXPECT_EQ(a.value_size(ra), b.value_size(rb));
  }
}

}  // namespace
}  // namespace lds::harness
