// Common substrate: tags, op ids, RNG, formatting, cost-tracker basics,
// plus the client-API primitives: Status/Result taxonomy and the zero-copy
// Value buffer.
#include <gtest/gtest.h>

#include "common/format.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "net/cost.h"

namespace lds {
namespace {

TEST(Tags, TotalOrderIsLexicographic) {
  // Paper, Section III: t2 > t1 iff t2.z > t1.z, or equal z and t2.w > t1.w.
  EXPECT_LT((Tag{1, 5}), (Tag{2, 1}));
  EXPECT_LT((Tag{2, 1}), (Tag{2, 5}));
  EXPECT_EQ((Tag{3, 3}), (Tag{3, 3}));
  EXPECT_GT((Tag{3, 3}), kTag0);
  // Totality on a few samples.
  const Tag a{1, 2}, b{1, 3};
  EXPECT_TRUE(a < b || b < a || a == b);
}

TEST(Tags, HashDistinguishesComponents) {
  TagHash h;
  EXPECT_NE(h(Tag{1, 2}), h(Tag{2, 1}));
  EXPECT_EQ(h(Tag{7, 7}), h(Tag{7, 7}));
}

TEST(OpIds, PackAndUnpack) {
  const OpId op = make_op_id(1234, 77);
  EXPECT_EQ(op_client(op), 1234);
  EXPECT_EQ(op_seq(op), 77u);
  EXPECT_NE(op, kNoOp);
  // Negative-looking node ids survive the round trip.
  const OpId op2 = make_op_id(40000, 1);
  EXPECT_EQ(op_client(op2), 40000);
}

TEST(Rngs, DeterministicAndRanged) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = r.uniform_real(0.5, 2.0);
    EXPECT_GE(d, 0.5);
    EXPECT_LT(d, 2.0);
    EXPECT_GT(r.exponential(1.0), 0.0);
  }
  EXPECT_EQ(r.bytes(17).size(), 17u);
}

TEST(Format, NodeNamesAndPadding) {
  EXPECT_EQ(node_name(Role::Writer, 3), "w3");
  EXPECT_EQ(node_name(Role::Reader, 7), "r7");
  EXPECT_EQ(node_name(Role::ServerL1, 4), "s1:4");
  EXPECT_EQ(node_name(Role::ServerL2, 12), "s2:12");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(Format, BytesPreview) {
  const Bytes b{0xde, 0xad, 0xbe, 0xef};
  const std::string s = bytes_preview(b);
  EXPECT_NE(s.find("deadbeef"), std::string::npos);
  EXPECT_NE(s.find("(4 B)"), std::string::npos);
  const std::string truncated = bytes_preview(Bytes(100, 0xff), 2);
  EXPECT_NE(truncated.find(".."), std::string::npos);
  EXPECT_NE(truncated.find("(100 B)"), std::string::npos);
}

TEST(Format, TagToString) {
  EXPECT_EQ((Tag{12, 3}).to_string(), "(12,3)");
}

TEST(CostTracker, ResetClearsEverything) {
  net::CostTracker t;
  t.record(net::LinkClass::ClientL1, make_op_id(1, 1), 100, 10);
  t.record(net::LinkClass::L1L2, make_op_id(1, 1), 50, 5);
  EXPECT_EQ(t.total().data_bytes, 150u);
  EXPECT_EQ(t.by_op(make_op_id(1, 1)).messages, 2u);
  t.reset();
  EXPECT_EQ(t.total().messages, 0u);
  EXPECT_EQ(t.total().data_bytes, 0u);
  EXPECT_EQ(t.by_op(make_op_id(1, 1)).messages, 0u);
  EXPECT_EQ(t.by_link(net::LinkClass::ClientL1).data_bytes, 0u);
}

TEST(CostTracker, BucketAccumulation) {
  net::CostBucket a;
  a.add(10, 1);
  a.add(20, 2);
  net::CostBucket b;
  b.add(5, 1);
  a += b;
  EXPECT_EQ(a.messages, 3u);
  EXPECT_EQ(a.data_bytes, 35u);
  EXPECT_EQ(a.meta_bytes, 4u);
}

TEST(RoleNames, AllCovered) {
  EXPECT_STREQ(role_name(Role::Writer), "writer");
  EXPECT_STREQ(role_name(Role::Reader), "reader");
  EXPECT_STREQ(role_name(Role::ServerL1), "L1");
  EXPECT_STREQ(role_name(Role::ServerL2), "L2");
  EXPECT_STREQ(role_name(Role::Other), "other");
}

// ---- Status / Result --------------------------------------------------------

TEST(Status, TaxonomyAndMessages) {
  EXPECT_TRUE(Status().ok());
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::AdmissionReject("shard 3 at limit 8");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.is(StatusCode::kAdmissionReject));
  EXPECT_EQ(s.to_string(), "AdmissionReject: shard 3 at limit 8");
  EXPECT_EQ(Status::NotFound().to_string(), "NotFound");
  // Equality is by code: messages are context, not identity.
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "Unavailable");
}

TEST(Status, ResultCarriesValueOrStatus) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(0), 7);
  Result<int> bad = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_TRUE(bad.status().is(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(bad.value_or(42), 42);
}

// ---- Version ----------------------------------------------------------------

TEST(Versions, TypedOrderingAndUnknown) {
  const Version unknown;
  EXPECT_FALSE(unknown.known());
  EXPECT_EQ(unknown.to_string(), "unknown");
  const Version a(Tag{1, 2});
  const Version b(Tag{2, 1});
  EXPECT_TRUE(a.known());
  EXPECT_LT(unknown, a);  // unknown orders below every known version
  EXPECT_LT(a, b);        // tag-major total order
  EXPECT_EQ(a, Version(Tag{1, 2}));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.tag(), (Tag{1, 2}));
}

// ---- Value (zero-copy buffers) ----------------------------------------------

TEST(Values, SharesOneBufferAcrossCopies) {
  const Value v(Bytes{1, 2, 3});
  const Value copy = v;
  EXPECT_TRUE(copy.same_buffer(v));
  EXPECT_EQ(v.use_count(), 2);
  EXPECT_EQ(copy, v);
  EXPECT_EQ(copy, (Bytes{1, 2, 3}));
  EXPECT_EQ((Bytes{1, 2, 3}), copy);
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_FALSE(copy.empty());
}

TEST(Values, EmptyHoldsNoBufferAndConvertsBothWays) {
  const Value empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.use_count(), 0);  // v0 costs no allocation
  EXPECT_EQ(empty, Value(Bytes{}));
  EXPECT_EQ(empty, Bytes{});

  // Bytes -> Value moves the vector (no byte copy); Value -> const Bytes&
  // views in place.
  Bytes payload{9, 8, 7};
  const auto* data = payload.data();
  const Value moved(std::move(payload));
  EXPECT_EQ(moved.data(), data);
  const Bytes& view = moved;
  EXPECT_EQ(view.data(), data);
  EXPECT_EQ(moved.to_bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(Value::from_string("hi").to_string(), "hi");
  // Content equality across distinct buffers still holds.
  EXPECT_EQ(moved, Value(Bytes{9, 8, 7}));
  EXPECT_FALSE(moved.same_buffer(Value(Bytes{9, 8, 7})));
}

}  // namespace
}  // namespace lds
