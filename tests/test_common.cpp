// Common substrate: tags, op ids, RNG, formatting, cost-tracker basics.
#include <gtest/gtest.h>

#include "common/format.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/cost.h"

namespace lds {
namespace {

TEST(Tags, TotalOrderIsLexicographic) {
  // Paper, Section III: t2 > t1 iff t2.z > t1.z, or equal z and t2.w > t1.w.
  EXPECT_LT((Tag{1, 5}), (Tag{2, 1}));
  EXPECT_LT((Tag{2, 1}), (Tag{2, 5}));
  EXPECT_EQ((Tag{3, 3}), (Tag{3, 3}));
  EXPECT_GT((Tag{3, 3}), kTag0);
  // Totality on a few samples.
  const Tag a{1, 2}, b{1, 3};
  EXPECT_TRUE(a < b || b < a || a == b);
}

TEST(Tags, HashDistinguishesComponents) {
  TagHash h;
  EXPECT_NE(h(Tag{1, 2}), h(Tag{2, 1}));
  EXPECT_EQ(h(Tag{7, 7}), h(Tag{7, 7}));
}

TEST(OpIds, PackAndUnpack) {
  const OpId op = make_op_id(1234, 77);
  EXPECT_EQ(op_client(op), 1234);
  EXPECT_EQ(op_seq(op), 77u);
  EXPECT_NE(op, kNoOp);
  // Negative-looking node ids survive the round trip.
  const OpId op2 = make_op_id(40000, 1);
  EXPECT_EQ(op_client(op2), 40000);
}

TEST(Rngs, DeterministicAndRanged) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = r.uniform_real(0.5, 2.0);
    EXPECT_GE(d, 0.5);
    EXPECT_LT(d, 2.0);
    EXPECT_GT(r.exponential(1.0), 0.0);
  }
  EXPECT_EQ(r.bytes(17).size(), 17u);
}

TEST(Format, NodeNamesAndPadding) {
  EXPECT_EQ(node_name(Role::Writer, 3), "w3");
  EXPECT_EQ(node_name(Role::Reader, 7), "r7");
  EXPECT_EQ(node_name(Role::ServerL1, 4), "s1:4");
  EXPECT_EQ(node_name(Role::ServerL2, 12), "s2:12");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(Format, BytesPreview) {
  const Bytes b{0xde, 0xad, 0xbe, 0xef};
  const std::string s = bytes_preview(b);
  EXPECT_NE(s.find("deadbeef"), std::string::npos);
  EXPECT_NE(s.find("(4 B)"), std::string::npos);
  const std::string truncated = bytes_preview(Bytes(100, 0xff), 2);
  EXPECT_NE(truncated.find(".."), std::string::npos);
  EXPECT_NE(truncated.find("(100 B)"), std::string::npos);
}

TEST(Format, TagToString) {
  EXPECT_EQ((Tag{12, 3}).to_string(), "(12,3)");
}

TEST(CostTracker, ResetClearsEverything) {
  net::CostTracker t;
  t.record(net::LinkClass::ClientL1, make_op_id(1, 1), 100, 10);
  t.record(net::LinkClass::L1L2, make_op_id(1, 1), 50, 5);
  EXPECT_EQ(t.total().data_bytes, 150u);
  EXPECT_EQ(t.by_op(make_op_id(1, 1)).messages, 2u);
  t.reset();
  EXPECT_EQ(t.total().messages, 0u);
  EXPECT_EQ(t.total().data_bytes, 0u);
  EXPECT_EQ(t.by_op(make_op_id(1, 1)).messages, 0u);
  EXPECT_EQ(t.by_link(net::LinkClass::ClientL1).data_bytes, 0u);
}

TEST(CostTracker, BucketAccumulation) {
  net::CostBucket a;
  a.add(10, 1);
  a.add(20, 2);
  net::CostBucket b;
  b.add(5, 1);
  a += b;
  EXPECT_EQ(a.messages, 3u);
  EXPECT_EQ(a.data_bytes, 35u);
  EXPECT_EQ(a.meta_bytes, 4u);
}

TEST(RoleNames, AllCovered) {
  EXPECT_STREQ(role_name(Role::Writer), "writer");
  EXPECT_STREQ(role_name(Role::Reader), "reader");
  EXPECT_STREQ(role_name(Role::ServerL1), "L1");
  EXPECT_STREQ(role_name(Role::ServerL2), "L2");
  EXPECT_STREQ(role_name(Role::Other), "other");
}

}  // namespace
}  // namespace lds
