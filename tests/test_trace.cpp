// Protocol trace: recording, filtering, capacity, and protocol-level
// assertions made through it (e.g. no write-to-L2 before the commit quorum).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lds/cluster.h"
#include "net/trace.h"

namespace lds::net {
namespace {

core::LdsCluster::Options small_options() {
  core::LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.writers = 1;
  opt.readers = 1;
  return opt;
}

TEST(Trace, RecordsWholeWriteConversation) {
  core::LdsCluster c(small_options());
  Trace trace(c.net());
  Rng rng(1);
  c.write_sync(0, 0, rng.bytes(40));
  c.settle();

  // One QUERY-TAG and one PUT-DATA per L1 server.
  EXPECT_EQ(trace.count("QUERY-TAG"), 6u);
  EXPECT_EQ(trace.count("TAG-RESP"), 6u);
  EXPECT_EQ(trace.count("PUT-DATA"), 6u);
  // Every L1 server offloads to every L2 server.
  EXPECT_EQ(trace.count("WRITE-CODE-ELEM"), 6u * 8u);
  EXPECT_EQ(trace.count("ACK-CODE-ELEM"), 6u * 8u);
  EXPECT_GE(trace.count("WRITE-ACK"), 5u);  // f1 + k acks suffice
}

TEST(Trace, TimeOrderAndFormatting) {
  core::LdsCluster c(small_options());
  Trace trace(c.net());
  Rng rng(2);
  c.write_sync(0, 0, rng.bytes(16));
  const auto& entries = trace.entries();
  ASSERT_FALSE(entries.empty());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].time, entries[i].time);
  }
  const std::string line = Trace::format_entry(entries.front());
  EXPECT_NE(line.find("QUERY-TAG"), std::string::npos);
  EXPECT_FALSE(trace.format().empty());
}

TEST(Trace, TypeFilter) {
  core::LdsCluster c(small_options());
  Trace trace(c.net());
  trace.set_type_filter({"PUT-DATA"});
  Rng rng(3);
  c.write_sync(0, 0, rng.bytes(16));
  c.settle();
  EXPECT_EQ(trace.count("PUT-DATA"), 6u);
  EXPECT_EQ(trace.count("QUERY-TAG"), 0u);
  EXPECT_EQ(trace.entries().size(), trace.total_recorded());
}

TEST(Trace, CapacityEvictsOldest) {
  core::LdsCluster c(small_options());
  Trace trace(c.net(), /*capacity=*/10);
  Rng rng(4);
  c.write_sync(0, 0, rng.bytes(16));
  c.settle();
  EXPECT_EQ(trace.entries().size(), 10u);
  EXPECT_GT(trace.dropped(), 0u);
  EXPECT_EQ(trace.total_recorded(), trace.entries().size() + trace.dropped());
  EXPECT_NE(trace.format().find("older entries dropped"), std::string::npos);
}

TEST(Trace, NoOffloadBeforeCommitQuorum) {
  // Protocol-level assertion through the trace: the first WRITE-CODE-ELEM
  // must appear only after f1 + k COMMIT-TAG deliveries (the offload is
  // triggered by the commit, Fig. 2 line 19).
  core::LdsCluster c(small_options());
  Trace trace(c.net());
  Rng rng(5);
  c.write_sync(0, 0, rng.bytes(16));
  c.settle();

  const auto offloads = trace.by_type("WRITE-CODE-ELEM");
  const auto commits = trace.by_type("COMMIT-TAG");
  ASSERT_FALSE(offloads.empty());
  ASSERT_FALSE(commits.empty());
  const double first_offload = offloads.front().time;
  std::size_t commits_before = 0;
  for (const auto& e : commits) {
    if (e.time <= first_offload) ++commits_before;
  }
  EXPECT_GE(commits_before, c.ctx().cfg.l1_quorum());
}

TEST(Trace, DetachStopsRecording) {
  core::LdsCluster c(small_options());
  Trace trace(c.net());
  Rng rng(6);
  c.write_sync(0, 0, rng.bytes(16));
  const std::size_t before = trace.total_recorded();
  trace.detach();
  c.write_sync(0, 0, rng.bytes(16));
  EXPECT_EQ(trace.total_recorded(), before);
}

TEST(Trace, ClearResets) {
  core::LdsCluster c(small_options());
  Trace trace(c.net());
  Rng rng(7);
  c.write_sync(0, 0, rng.bytes(16));
  trace.clear();
  EXPECT_TRUE(trace.entries().empty());
  EXPECT_EQ(trace.total_recorded(), 0u);
}

}  // namespace
}  // namespace lds::net
