// Fast deterministic smoke coverage of the src/harness stress subsystem:
// every backend passes a small concurrent run, fault/repair injection paths
// execute, runs reproduce bit-identically from the master seed, and the
// independent freshness verifier both agrees with the atomicity checker and
// actually catches planted violations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/stress.h"
#include "lds/history.h"

namespace lds::harness {
namespace {

StressOptions smoke_options(Backend b) {
  StressOptions opt;
  opt.backend = b;
  opt.threads = 4;
  opt.ops = 240;
  opt.writers = 2;
  opt.readers = 2;
  opt.objects = 3;
  opt.value_size = 48;
  opt.seed = 42;
  return opt;
}

TEST(StressSmoke, LdsCleanRunPasses) {
  const auto rep = run_stress(smoke_options(Backend::Lds));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.seed, 42u);
  EXPECT_EQ(rep.shards.size(), 4u);
  EXPECT_EQ(rep.total_writes() + rep.total_reads(), 240u);
}

TEST(StressSmoke, AbdCleanRunPasses) {
  const auto rep = run_stress(smoke_options(Backend::Abd));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.total_writes() + rep.total_reads(), 240u);
}

TEST(StressSmoke, CasCleanRunPasses) {
  const auto rep = run_stress(smoke_options(Backend::Cas));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.total_writes() + rep.total_reads(), 240u);
}

TEST(StressSmoke, CrashInjectionStaysAtomicOnAllBackends) {
  for (const Backend b : {Backend::Lds, Backend::Abd, Backend::Cas}) {
    auto opt = smoke_options(b);
    opt.crash_rate = 0.1;
    opt.seed = 7;
    const auto rep = run_stress(opt);
    EXPECT_TRUE(rep.ok()) << backend_name(b);
    EXPECT_GT(rep.total_crashes(), 0u) << backend_name(b);
  }
}

TEST(StressSmoke, RepairChurnExecutesAndStaysAtomic) {
  auto opt = smoke_options(Backend::Lds);
  opt.ops = 400;
  opt.crash_rate = 0.15;
  opt.repair_rate = 1.0;  // every injected L2 crash gets replace+regenerate
  opt.seed = 11;
  const auto rep = run_stress(opt);
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.total_crashes(), 0u);
  EXPECT_GT(rep.total_repairs(), 0u);
}

TEST(StressSmoke, StoreCleanRunPasses) {
  auto opt = smoke_options(Backend::Store);
  opt.threads = 2;
  opt.store_shards = 3;
  opt.objects = 6;
  const auto rep = run_stress(opt);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.total_writes() + rep.total_reads(), 240u);
  EXPECT_GT(rep.total_batches(), 0u);
}

TEST(StressSmoke, StoreCrashAndRepairInjectionStaysLinearizable) {
  auto opt = smoke_options(Backend::Store);
  opt.threads = 2;
  opt.store_shards = 3;
  opt.objects = 6;
  opt.ops = 400;
  opt.crash_rate = 0.15;
  opt.seed = 11;
  const auto rep = run_stress(opt);
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.total_crashes(), 0u);
  // The store backend repairs every L2 crash before quiescing.
  EXPECT_GT(rep.total_repairs(), 0u);
}

TEST(StressSmoke, StoreRunsReproduceFromMasterSeed) {
  auto opt = smoke_options(Backend::Store);
  opt.threads = 2;
  opt.store_shards = 2;
  opt.crash_rate = 0.1;
  opt.seed = 99;
  const auto a = run_stress(opt);
  const auto b = run_stress(opt);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].sim_events, b.shards[i].sim_events);
    EXPECT_EQ(a.shards[i].crashes, b.shards[i].crashes);
    EXPECT_EQ(a.shards[i].repairs, b.shards[i].repairs);
    EXPECT_EQ(a.shards[i].coalesced, b.shards[i].coalesced);
  }
}

TEST(StressSmoke, StoreValidateOptionsCatchesBadShardCounts) {
  auto opt = smoke_options(Backend::Store);
  EXPECT_EQ(validate_options(opt), std::nullopt);
  opt.store_shards = 0;
  EXPECT_TRUE(validate_options(opt).has_value());
  opt = smoke_options(Backend::Store);
  opt.max_batch = 0;
  EXPECT_TRUE(validate_options(opt).has_value());
  opt = smoke_options(Backend::Store);
  opt.f1 = opt.n1 / 2;  // store shards inherit the LDS geometry constraints
  EXPECT_TRUE(validate_options(opt).has_value());
}

TEST(StressSmoke, RunsReproduceFromMasterSeed) {
  auto opt = smoke_options(Backend::Lds);
  opt.crash_rate = 0.1;
  opt.seed = 1234;
  const auto a = run_stress(opt);
  const auto b = run_stress(opt);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].seed, b.shards[i].seed);
    EXPECT_EQ(a.shards[i].writes, b.shards[i].writes);
    EXPECT_EQ(a.shards[i].reads, b.shards[i].reads);
    EXPECT_EQ(a.shards[i].crashes, b.shards[i].crashes);
    EXPECT_EQ(a.shards[i].repairs, b.shards[i].repairs);
    EXPECT_EQ(a.shards[i].sim_events, b.shards[i].sim_events);
    EXPECT_EQ(a.shards[i].ok(), b.shards[i].ok());
  }
}

TEST(StressSmoke, ShardSeedsAreWellSeparated) {
  // mix_seed must not map adjacent (seed, stream) pairs to nearby values.
  const auto s0 = mix_seed(42, 0);
  const auto s1 = mix_seed(42, 1);
  const auto s2 = mix_seed(43, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, s2);
  EXPECT_NE(s1, s2);
}

// ---- the freshness verifier itself ------------------------------------------

TEST(FreshnessVerifier, CatchesStaleRead) {
  core::History h;
  // Write (t=1) completes at time 2; a read invoked at 5 returns tag 0.
  const auto wi = h.on_invoke(1, core::OpKind::Write, 0, 1, 0.0);
  h.on_response(wi, 2.0, Tag{1, 1}, Bytes{0xAA});
  const auto ri = h.on_invoke(2, core::OpKind::Read, 0, 2, 5.0);
  h.on_response(ri, 6.0, kTag0, Bytes{});
  EXPECT_FALSE(verify_read_freshness(h).ok);
  // The built-in atomicity checker agrees.
  EXPECT_FALSE(h.check_atomicity(Bytes{}).ok);
}

TEST(FreshnessVerifier, CatchesNonMonotoneReads) {
  core::History h;
  const auto w = h.on_invoke(1, core::OpKind::Write, 0, 1, 0.0);
  h.on_response(w, 1.0, Tag{1, 1}, Bytes{0xAA});
  // Read A sees the write; read B, invoked after A responded, sees t0.
  const auto ra = h.on_invoke(2, core::OpKind::Read, 0, 2, 2.0);
  h.on_response(ra, 3.0, Tag{1, 1}, Bytes{0xAA});
  const auto rb = h.on_invoke(3, core::OpKind::Read, 0, 3, 4.0);
  h.on_response(rb, 5.0, kTag0, Bytes{});
  EXPECT_FALSE(verify_read_freshness(h).ok);
}

TEST(FreshnessVerifier, CatchesReadFromTheFuture) {
  core::History h;
  // Read responds at 1 with tag (1,1); the only write with that tag is
  // invoked later, at time 3.
  const auto r = h.on_invoke(1, core::OpKind::Read, 0, 1, 0.0);
  h.on_response(r, 1.0, Tag{1, 1}, Bytes{0xAA});
  const auto w = h.on_invoke(2, core::OpKind::Write, 0, 2, 3.0);
  h.on_response(w, 4.0, Tag{1, 1}, Bytes{0xAA});
  EXPECT_FALSE(verify_read_freshness(h).ok);
}

TEST(FreshnessVerifier, AcceptsConcurrentReadOfInFlightWrite) {
  core::History h;
  // Write over [0, 10]; read over [2, 4] already returns the new tag.
  const auto w = h.on_invoke(1, core::OpKind::Write, 0, 1, 0.0);
  h.on_response(w, 10.0, Tag{1, 1}, Bytes{0xAA});
  const auto r = h.on_invoke(2, core::OpKind::Read, 0, 2, 2.0);
  h.on_response(r, 4.0, Tag{1, 1}, Bytes{0xAA});
  EXPECT_TRUE(verify_read_freshness(h).ok);
}

TEST(FreshnessVerifier, AcceptsEmptyAndWriteOnlyHistories) {
  core::History h;
  EXPECT_TRUE(verify_read_freshness(h).ok);
  const auto w = h.on_invoke(1, core::OpKind::Write, 0, 1, 0.0);
  h.on_response(w, 1.0, Tag{1, 1}, Bytes{0xAA});
  EXPECT_TRUE(verify_read_freshness(h).ok);
}

TEST(StressSmoke, DegenerateOptionsReportNotOk) {
  auto opt = smoke_options(Backend::Lds);
  opt.threads = 0;
  EXPECT_FALSE(run_stress(opt).ok());
}

TEST(StressSmoke, ValidateOptionsCatchesBadGeometry) {
  EXPECT_EQ(validate_options(smoke_options(Backend::Lds)), std::nullopt);
  auto opt = smoke_options(Backend::Lds);
  opt.f1 = opt.n1 / 2;  // violates f1 < n1/2
  EXPECT_TRUE(validate_options(opt).has_value());
  opt = smoke_options(Backend::Lds);
  opt.n2 = opt.n1;      // d = n2 - 2 f2 < k with default f2 = 2
  opt.f2 = 2;
  opt.n1 = 10;
  opt.f1 = 1;           // k = 8 > d
  opt.n2 = 10;
  EXPECT_TRUE(validate_options(opt).has_value());
  opt = smoke_options(Backend::Cas);
  opt.n = 4;
  opt.f = 2;            // k = 0
  EXPECT_TRUE(validate_options(opt).has_value());
  opt = smoke_options(Backend::Abd);
  opt.f = 5;
  opt.n = 9;            // f >= n/2
  EXPECT_TRUE(validate_options(opt).has_value());
  opt = smoke_options(Backend::Lds);
  opt.read_fraction = 1.5;
  EXPECT_TRUE(validate_options(opt).has_value());
}

}  // namespace
}  // namespace lds::harness
