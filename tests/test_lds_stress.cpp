// Randomized correctness stress: many seeds x configurations x crash
// patterns under heavy-tailed (exponential) latencies.  Every execution must
// (a) complete all operations of non-crashed clients - Theorem IV.8 - and
// (b) pass the atomicity checker - Theorem IV.9.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "lds/cluster.h"
#include "lds/messages.h"

namespace lds::core {
namespace {

struct StressConfig {
  std::size_t n1, f1, n2, f2;
  std::size_t writers, readers;
  std::size_t ops_per_client;
  bool crash_servers;
  std::size_t value_size;
};

class LdsStressTest
    : public ::testing::TestWithParam<std::tuple<StressConfig, int>> {};

void run_stress(const StressConfig& sc, int seed) {
  LdsCluster::Options opt;
  opt.cfg.n1 = sc.n1;
  opt.cfg.f1 = sc.f1;
  opt.cfg.n2 = sc.n2;
  opt.cfg.f2 = sc.f2;
  opt.cfg.initial_value = Bytes{0xAB};
  opt.writers = sc.writers;
  opt.readers = sc.readers;
  opt.latency = LdsCluster::LatencyKind::Exponential;
  opt.tau1 = 1.0;
  opt.tau0 = 1.0;
  opt.tau2 = 3.0;
  opt.seed = static_cast<std::uint64_t>(seed) * 977 + 13;
  LdsCluster cluster(opt);
  Rng rng(static_cast<std::uint64_t>(seed) + 5000);

  // Closed-loop clients: each issues ops back to back with random gaps.
  struct Driver {
    std::size_t remaining;
  };
  auto writers = std::make_shared<std::vector<Driver>>(
      sc.writers, Driver{sc.ops_per_client});
  auto readers = std::make_shared<std::vector<Driver>>(
      sc.readers, Driver{sc.ops_per_client});
  auto rng_ptr = std::make_shared<Rng>(rng.next_u64());

  std::function<void(std::size_t)> write_next = [&cluster, writers, rng_ptr,
                                                 sc,
                                                 &write_next](std::size_t w) {
    if ((*writers)[w].remaining == 0) return;
    --(*writers)[w].remaining;
    cluster.writer(w).write(
        0, rng_ptr->bytes(sc.value_size), [&cluster, writers, rng_ptr, sc, w,
                                           &write_next](Tag) {
          cluster.sim().after(rng_ptr->exponential(1.0) + 1e-6,
                              [w, &write_next] { write_next(w); });
        });
  };
  std::function<void(std::size_t)> read_next = [&cluster, readers, rng_ptr,
                                                &read_next](std::size_t r) {
    if ((*readers)[r].remaining == 0) return;
    --(*readers)[r].remaining;
    cluster.reader(r).read(0, [&cluster, readers, rng_ptr, r,
                               &read_next](Tag, Bytes) {
      cluster.sim().after(rng_ptr->exponential(1.0) + 1e-6,
                          [r, &read_next] { read_next(r); });
    });
  };

  for (std::size_t w = 0; w < sc.writers; ++w) {
    const double start = rng.uniform_real(0.0, 3.0);
    cluster.sim().at(start, [w, &write_next] { write_next(w); });
  }
  for (std::size_t r = 0; r < sc.readers; ++r) {
    const double start = rng.uniform_real(0.0, 6.0);
    cluster.sim().at(start, [r, &read_next] { read_next(r); });
  }

  if (sc.crash_servers) {
    // Crash exactly f1 L1 servers and f2 L2 servers at random times inside
    // the busy window; which servers crash is also randomized.
    std::vector<std::size_t> l1_idx(sc.n1);
    std::vector<std::size_t> l2_idx(sc.n2);
    for (std::size_t i = 0; i < sc.n1; ++i) l1_idx[i] = i;
    for (std::size_t i = 0; i < sc.n2; ++i) l2_idx[i] = i;
    std::shuffle(l1_idx.begin(), l1_idx.end(), rng.engine());
    std::shuffle(l2_idx.begin(), l2_idx.end(), rng.engine());
    for (std::size_t i = 0; i < sc.f1; ++i) {
      const std::size_t victim = l1_idx[i];
      cluster.sim().at(rng.uniform_real(0.5, 20.0),
                       [&cluster, victim] { cluster.crash_l1(victim); });
    }
    for (std::size_t i = 0; i < sc.f2; ++i) {
      const std::size_t victim = l2_idx[i];
      cluster.sim().at(rng.uniform_real(0.5, 20.0),
                       [&cluster, victim] { cluster.crash_l2(victim); });
    }
  }

  cluster.settle();

  EXPECT_TRUE(cluster.history().all_complete())
      << "liveness violated: " << cluster.history().incomplete()
      << " incomplete ops (seed " << seed << ")";
  const auto verdict =
      cluster.history().check_atomicity(opt.cfg.initial_value);
  EXPECT_TRUE(verdict.ok) << verdict.violation << " (seed " << seed << ")";
}

TEST_P(LdsStressTest, LivenessAndAtomicity) {
  const auto& [sc, seed] = GetParam();
  run_stress(sc, seed);
}

constexpr StressConfig kSmall{/*n1=*/5, /*f1=*/1, /*n2=*/7,  /*f2=*/2,
                              /*writers=*/2, /*readers=*/2,
                              /*ops=*/4, /*crash=*/false, /*value=*/40};
constexpr StressConfig kSmallCrash{5, 1, 7, 2, 2, 2, 4, true, 40};
constexpr StressConfig kMedium{8, 2, 9, 2, 3, 3, 3, false, 120};
constexpr StressConfig kMediumCrash{8, 2, 9, 2, 3, 3, 3, true, 120};
constexpr StressConfig kWide{11, 5, 10, 3, 2, 4, 3, true, 64};

INSTANTIATE_TEST_SUITE_P(
    Small, LdsStressTest,
    ::testing::Combine(::testing::Values(kSmall),
                       ::testing::Range(0, 20)));
INSTANTIATE_TEST_SUITE_P(
    SmallCrash, LdsStressTest,
    ::testing::Combine(::testing::Values(kSmallCrash),
                       ::testing::Range(0, 20)));
INSTANTIATE_TEST_SUITE_P(
    Medium, LdsStressTest,
    ::testing::Combine(::testing::Values(kMedium),
                       ::testing::Range(100, 114)));
INSTANTIATE_TEST_SUITE_P(
    MediumCrash, LdsStressTest,
    ::testing::Combine(::testing::Values(kMediumCrash),
                       ::testing::Range(200, 214)));
INSTANTIATE_TEST_SUITE_P(
    WideQuorumCrash, LdsStressTest,
    ::testing::Combine(::testing::Values(kWide),
                       ::testing::Range(300, 310)));

// ---- multi-object stress -------------------------------------------------------

TEST(LdsMultiObjectStress, ManyObjectsWithCrashesStayAtomic) {
  for (int seed = 0; seed < 6; ++seed) {
    LdsCluster::Options opt;
    opt.cfg.n1 = 6;
    opt.cfg.f1 = 1;
    opt.cfg.n2 = 8;
    opt.cfg.f2 = 2;
    opt.cfg.initial_value = Bytes{1};
    opt.writers = 3;
    opt.readers = 3;
    opt.latency = LdsCluster::LatencyKind::Exponential;
    opt.seed = static_cast<std::uint64_t>(seed) * 131 + 7;
    LdsCluster c(opt);
    Rng rng(static_cast<std::uint64_t>(seed) + 900);

    // Each client walks its own schedule over 5 objects; operations are
    // chained through callbacks so every client stays well-formed.  All
    // closures run inside c.settle() below, so capturing the stack-local
    // std::functions by reference is safe (the src/harness idiom) and — in
    // contrast to a shared_ptr<std::function> capturing itself — cycle-free.
    std::function<void(std::size_t, int)> chain_writes;
    chain_writes = [&c, &chain_writes](std::size_t w, int left) {
      if (left == 0) return;
      const ObjectId obj = static_cast<ObjectId>((w + left) % 5);
      c.writer(w).write(obj, Bytes{static_cast<std::uint8_t>(w * 16 + left)},
                        [&chain_writes, w, left](Tag) {
                          chain_writes(w, left - 1);
                        });
    };
    std::function<void(std::size_t, int)> chain_reads;
    chain_reads = [&c, &chain_reads](std::size_t r, int left) {
      if (left == 0) return;
      const ObjectId obj = static_cast<ObjectId>((r + left) % 5);
      c.reader(r).read(obj, [&chain_reads, r, left](Tag, Bytes) {
        chain_reads(r, left - 1);
      });
    };
    for (std::size_t w = 0; w < 3; ++w) {
      c.sim().at(rng.uniform_real(0.0, 2.0),
                 [&chain_writes, w] { chain_writes(w, 3); });
    }
    for (std::size_t r = 0; r < 3; ++r) {
      c.sim().at(rng.uniform_real(0.0, 4.0),
                 [&chain_reads, r] { chain_reads(r, 3); });
    }
    c.sim().at(rng.uniform_real(1.0, 10.0), [&c] { c.crash_l1(2); });
    c.sim().at(rng.uniform_real(1.0, 10.0), [&c] { c.crash_l2(5); });
    c.sim().at(rng.uniform_real(1.0, 10.0), [&c] { c.crash_l2(1); });
    c.settle();

    EXPECT_TRUE(c.history().all_complete()) << "seed " << seed;
    const auto verdict = c.history().check_atomicity(Bytes{1});
    EXPECT_TRUE(verdict.ok) << verdict.violation << " seed " << seed;
  }
}

// ---- adversarial crash points ------------------------------------------------

TEST(LdsAdversarial, WriterCrashMidOperationLeavesSystemUsable) {
  // The writer crashes right when its first PUT-DATA lands; its value may or
  // may not become visible, but the system must stay live and atomic.
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.writers = 2;
  opt.readers = 1;
  opt.latency = LdsCluster::LatencyKind::Uniform;
  opt.seed = 5;
  LdsCluster cluster(opt);
  Rng rng(5);

  bool crashed = false;
  cluster.net().set_delivery_observer(
      [&](NodeId from, NodeId, const net::Payload& p) {
        if (crashed) return;
        const auto* m = dynamic_cast<const LdsMessage*>(&p);
        if (m != nullptr && std::holds_alternative<PutData>(m->body())) {
          cluster.net().crash(from);  // kill the writer mid-put-data
          crashed = true;
        }
      });
  cluster.writer(0).write(0, rng.bytes(50));
  cluster.settle();
  EXPECT_TRUE(crashed);
  cluster.net().set_delivery_observer(nullptr);

  // A second writer and a reader proceed normally.
  const Tag t2 = cluster.write_sync(1, 0, rng.bytes(50));
  auto [rt, rv] = cluster.read_sync(0, 0);
  EXPECT_GE(rt, t2);
  EXPECT_TRUE(cluster.history().check_atomicity({}).ok);
}

TEST(LdsAdversarial, ServerCrashDuringWriteToL2LeavesMixedTagsReadable) {
  // Crash an L1 server right after its first WRITE-CODE-ELEM lands, so L2
  // may briefly hold mixed tags; reads must still regenerate (other L1
  // servers also offload the same tag - the n1-fold redundancy of
  // write-to-L2) and stay atomic.
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.writers = 1;
  opt.readers = 1;
  opt.seed = 11;
  LdsCluster cluster(opt);
  Rng rng(11);

  bool crashed = false;
  cluster.net().set_delivery_observer(
      [&](NodeId from, NodeId, const net::Payload& p) {
        if (crashed) return;
        const auto* m = dynamic_cast<const LdsMessage*>(&p);
        if (m != nullptr &&
            std::holds_alternative<WriteCodeElem>(m->body())) {
          cluster.net().crash(from);
          crashed = true;
        }
      });
  const Bytes v = rng.bytes(80);
  const Tag wt = cluster.write_sync(0, 0, v);
  cluster.settle();
  EXPECT_TRUE(crashed);
  cluster.net().set_delivery_observer(nullptr);

  auto [rt, rv] = cluster.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(cluster.history().all_complete());
  EXPECT_TRUE(cluster.history().check_atomicity({}).ok);
}

TEST(LdsAdversarial, PartialPutDataStillAtomic) {
  // Crash f1 L1 servers exactly when the PUT-DATA reaches them: the
  // remaining servers still assemble an f1+k commit quorum via the broadcast
  // primitive and the write completes.
  LdsCluster::Options opt;
  opt.cfg.n1 = 7;
  opt.cfg.f1 = 2;  // k = 3
  opt.cfg.n2 = 9;
  opt.cfg.f2 = 2;
  opt.writers = 1;
  opt.readers = 1;
  opt.seed = 21;
  LdsCluster cluster(opt);
  Rng rng(21);

  int crashes_left = 2;
  cluster.net().set_delivery_observer(
      [&](NodeId, NodeId to, const net::Payload& p) {
        if (crashes_left == 0) return;
        const auto* m = dynamic_cast<const LdsMessage*>(&p);
        if (m != nullptr && std::holds_alternative<PutData>(m->body())) {
          cluster.net().crash(to);  // server dies as the data arrives
          --crashes_left;
        }
      });
  const Bytes v = rng.bytes(60);
  const Tag wt = cluster.write_sync(0, 0, v);
  cluster.net().set_delivery_observer(nullptr);
  EXPECT_EQ(crashes_left, 0);

  auto [rt, rv] = cluster.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(cluster.history().check_atomicity({}).ok);
}

}  // namespace
}  // namespace lds::core
