// Shared verification helper for the store test suites: every shard history
// must be live, atomic (Theorem IV.9 conditions) and pass the independent
// freshness reference checker.
#pragma once

#include <gtest/gtest.h>

#include "harness/stress.h"
#include "store/store_service.h"

namespace lds::store {

inline void expect_all_histories_clean(StoreService& svc) {
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    const auto& h = svc.shard_history(s);
    EXPECT_TRUE(h.all_complete()) << "shard " << s;
    const auto atomic = h.check_atomicity(Bytes{});
    EXPECT_TRUE(atomic.ok) << "shard " << s << ": " << atomic.violation;
    const auto fresh = harness::verify_read_freshness(h);
    EXPECT_TRUE(fresh.ok) << "shard " << s << ": " << fresh.violation;
  }
}

}  // namespace lds::store
