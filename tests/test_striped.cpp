// Striping codec: arbitrary byte values through per-stripe codes.
#include <gtest/gtest.h>

#include "codes/factory.h"
#include "codes/pm_mbr.h"
#include "common/rng.h"

namespace lds::codes {
namespace {

StripedCode mbr(std::size_t n, std::size_t k, std::size_t d) {
  return StripedCode(std::make_shared<PmMbrCode>(n, k, d));
}

class StripedSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripedSizeTest, EncodeDecodeRoundTrip) {
  const std::size_t value_size = GetParam();
  StripedCode code = mbr(7, 3, 4);
  Rng rng(value_size + 1);
  const Bytes value = rng.bytes(value_size);
  const auto elems = code.encode_value(value);
  ASSERT_EQ(elems.size(), 7u);

  std::vector<IndexedBytes> input{{1, elems[1]}, {3, elems[3]}, {6, elems[6]}};
  auto decoded = code.decode_value(input);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StripedSizeTest,
                         ::testing::Values(0, 1, 7, 8, 9, 100, 1024, 4096));

TEST(Striped, EncodeElementMatchesEncodeValue) {
  StripedCode code = mbr(6, 2, 4);
  Rng rng(5);
  const Bytes value = rng.bytes(333);
  const auto elems = code.encode_value(value);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(code.encode_element(value, i),
              elems[static_cast<std::size_t>(i)]);
  }
}

TEST(Striped, RepairedElementDecodesWithOthers) {
  StripedCode code = mbr(7, 3, 4);
  Rng rng(6);
  const Bytes value = rng.bytes(500);
  const auto elems = code.encode_value(value);

  // Repair element 2 from helpers {3,4,5,6}.
  std::vector<IndexedBytes> helpers;
  for (int h = 3; h <= 6; ++h) {
    helpers.emplace_back(
        h, code.helper_data(h, elems[static_cast<std::size_t>(h)], 2));
  }
  auto repaired = code.repair_element(2, helpers);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, elems[2]);

  std::vector<IndexedBytes> input{{0, elems[0]}, {2, *repaired},
                                  {5, elems[5]}};
  auto decoded = code.decode_value(input);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(Striped, SizeAccountors) {
  StripedCode code = mbr(7, 3, 4);  // B = 9 symbols, alpha = 4, beta = 1
  const std::size_t value_size = 100;  // + 8B header = 108 -> 12 stripes
  EXPECT_EQ(code.stripes(value_size), 12u);
  EXPECT_EQ(code.element_size(value_size), 12u * 4u);
  EXPECT_EQ(code.helper_size(value_size), 12u);

  Rng rng(7);
  const Bytes value = rng.bytes(value_size);
  const auto elems = code.encode_value(value);
  EXPECT_EQ(elems[0].size(), code.element_size(value_size));
  EXPECT_EQ(code.helper_data(1, elems[1], 0).size(),
            code.helper_size(value_size));
}

TEST(Striped, DecodeRejectsShortInput) {
  StripedCode code = mbr(6, 3, 4);
  Rng rng(8);
  const Bytes value = rng.bytes(64);
  const auto elems = code.encode_value(value);
  std::vector<IndexedBytes> input{{0, elems[0]}, {1, elems[1]}};
  EXPECT_FALSE(code.decode_value(input).has_value());
  EXPECT_FALSE(code.decode_value({}).has_value());
}

TEST(Striped, FactoryKinds) {
  for (auto kind : {BackendKind::PmMbr, BackendKind::Rs,
                    BackendKind::Replication}) {
    StripedCode code = make_backend(kind, 8, 3, 4);
    Rng rng(static_cast<std::uint64_t>(kind) + 10);
    const Bytes value = rng.bytes(97);
    const auto elems = code.encode_value(value);
    ASSERT_EQ(elems.size(), 8u) << backend_name(kind);
    std::vector<IndexedBytes> input;
    for (std::size_t i = 0; i < code.k(); ++i) {
      input.emplace_back(static_cast<int>(i + 2), elems[i + 2]);
    }
    auto decoded = code.decode_value(input);
    ASSERT_TRUE(decoded.has_value()) << backend_name(kind);
    EXPECT_EQ(*decoded, value) << backend_name(kind);
  }
}

TEST(Striped, ReplicationElementIsValueSized) {
  StripedCode code = make_backend(BackendKind::Replication, 5, 1, 1);
  Rng rng(11);
  const Bytes value = rng.bytes(64);
  // Replication stores the (framed) value at every node: 64 + 8 header.
  EXPECT_EQ(code.element_size(value.size()), 72u);
}

}  // namespace
}  // namespace lds::codes
