// Striping codec: arbitrary byte values through per-stripe codes.
#include <gtest/gtest.h>

#include <future>

#include "codes/factory.h"
#include "codes/pm_mbr.h"
#include "codes/pm_msr.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "net/engine.h"

namespace lds::codes {
namespace {

StripedCode mbr(std::size_t n, std::size_t k, std::size_t d) {
  return StripedCode(std::make_shared<PmMbrCode>(n, k, d));
}

class StripedSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripedSizeTest, EncodeDecodeRoundTrip) {
  const std::size_t value_size = GetParam();
  StripedCode code = mbr(7, 3, 4);
  Rng rng(value_size + 1);
  const Bytes value = rng.bytes(value_size);
  const auto elems = code.encode_value(value);
  ASSERT_EQ(elems.size(), 7u);

  std::vector<IndexedBytes> input{{1, elems[1]}, {3, elems[3]}, {6, elems[6]}};
  auto decoded = code.decode_value(input);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StripedSizeTest,
                         ::testing::Values(0, 1, 7, 8, 9, 100, 1024, 4096));

TEST(Striped, EncodeElementMatchesEncodeValue) {
  StripedCode code = mbr(6, 2, 4);
  Rng rng(5);
  const Bytes value = rng.bytes(333);
  const auto elems = code.encode_value(value);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(code.encode_element(value, i),
              elems[static_cast<std::size_t>(i)]);
  }
}

TEST(Striped, RepairedElementDecodesWithOthers) {
  StripedCode code = mbr(7, 3, 4);
  Rng rng(6);
  const Bytes value = rng.bytes(500);
  const auto elems = code.encode_value(value);

  // Repair element 2 from helpers {3,4,5,6}.
  std::vector<IndexedBytes> helpers;
  for (int h = 3; h <= 6; ++h) {
    helpers.emplace_back(
        h, code.helper_data(h, elems[static_cast<std::size_t>(h)], 2));
  }
  auto repaired = code.repair_element(2, helpers);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, elems[2]);

  std::vector<IndexedBytes> input{{0, elems[0]}, {2, *repaired},
                                  {5, elems[5]}};
  auto decoded = code.decode_value(input);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(Striped, SizeAccountors) {
  StripedCode code = mbr(7, 3, 4);  // B = 9 symbols, alpha = 4, beta = 1
  const std::size_t value_size = 100;  // + 8B header = 108 -> 12 stripes
  EXPECT_EQ(code.stripes(value_size), 12u);
  EXPECT_EQ(code.element_size(value_size), 12u * 4u);
  EXPECT_EQ(code.helper_size(value_size), 12u);

  Rng rng(7);
  const Bytes value = rng.bytes(value_size);
  const auto elems = code.encode_value(value);
  EXPECT_EQ(elems[0].size(), code.element_size(value_size));
  EXPECT_EQ(code.helper_data(1, elems[1], 0).size(),
            code.helper_size(value_size));
}

TEST(Striped, DecodeRejectsShortInput) {
  StripedCode code = mbr(6, 3, 4);
  Rng rng(8);
  const Bytes value = rng.bytes(64);
  const auto elems = code.encode_value(value);
  std::vector<IndexedBytes> input{{0, elems[0]}, {1, elems[1]}};
  EXPECT_FALSE(code.decode_value(input).has_value());
  EXPECT_FALSE(code.decode_value({}).has_value());
}

TEST(Striped, FactoryKinds) {
  for (auto kind : {BackendKind::PmMbr, BackendKind::Rs,
                    BackendKind::Replication}) {
    StripedCode code = make_backend(kind, 8, 3, 4);
    Rng rng(static_cast<std::uint64_t>(kind) + 10);
    const Bytes value = rng.bytes(97);
    const auto elems = code.encode_value(value);
    ASSERT_EQ(elems.size(), 8u) << backend_name(kind);
    std::vector<IndexedBytes> input;
    for (std::size_t i = 0; i < code.k(); ++i) {
      input.emplace_back(static_cast<int>(i + 2), elems[i + 2]);
    }
    auto decoded = code.decode_value(input);
    ASSERT_TRUE(decoded.has_value()) << backend_name(kind);
    EXPECT_EQ(*decoded, value) << backend_name(kind);
  }
}

TEST(Striped, ReplicationElementIsValueSized) {
  StripedCode code = make_backend(BackendKind::Replication, 5, 1, 1);
  Rng rng(11);
  const Bytes value = rng.bytes(64);
  // Replication stores the (framed) value at every node: 64 + 8 header.
  EXPECT_EQ(code.element_size(value.size()), 72u);
}

// ---- encode path equivalence ------------------------------------------------
//
// encode_value has four ways to produce the same bytes: the reference
// stripe-by-stripe loop, the planar SIMD path, the planar path on the scalar
// kernels, and the lane-parallel fan-out.  All must be byte-identical.

TEST(StripedPaths, PlanarMatchesStripewiseAllBackends) {
  std::vector<std::pair<std::string, StripedCode>> codes;
  for (auto kind : {BackendKind::PmMbr, BackendKind::Rs,
                    BackendKind::Replication}) {
    codes.emplace_back(backend_name(kind), make_backend(kind, 8, 3, 5));
  }
  codes.emplace_back("pm_msr",
                     StripedCode(std::make_shared<PmMsrCode>(8, 3)));
  Rng rng(21);
  for (auto& [name, code] : codes) {
    for (const std::size_t size : {0u, 1u, 9u, 333u, 4096u, 70000u}) {
      const Bytes value = rng.bytes(size);
      EXPECT_EQ(code.encode_value(value), code.encode_value_stripewise(value))
          << name << " size=" << size;
    }
  }
}

TEST(StripedPaths, ScalarAndSimdKernelsProduceIdenticalElements) {
  StripedCode code = mbr(7, 3, 4);
  Rng rng(23);
  const Bytes value = rng.bytes(100000);
  const gf::Isa best = gf::active_isa();
  ASSERT_TRUE(gf::select_isa(gf::Isa::Scalar));
  const auto scalar_elems = code.encode_value(value);
  ASSERT_TRUE(gf::select_isa(best));
  const auto simd_elems = code.encode_value(value);
  EXPECT_EQ(scalar_elems, simd_elems);
  EXPECT_EQ(simd_elems, code.encode_value_stripewise(value));
}

TEST(StripedPaths, EngineOverloadSerialFallbacks) {
  StripedCode code = mbr(7, 3, 4);
  Rng rng(29);
  const Bytes small = rng.bytes(500);       // under the fan-out threshold
  const Bytes large = rng.bytes(200000);    // over it
  const auto small_ref = code.encode_value(small);
  const auto large_ref = code.encode_value(large);
  // Null engine and single-lane (Sim) engine both take the serial path.
  EXPECT_EQ(code.encode_value(small, nullptr), small_ref);
  EXPECT_EQ(code.encode_value(large, nullptr), large_ref);
  net::SimEngine sim(42);
  EXPECT_EQ(code.encode_value(large, &sim), large_ref);
}

TEST(StripedPaths, LaneParallelMatchesSerial) {
  StripedCode code = mbr(7, 3, 4);
  Rng rng(31);
  const Bytes value = rng.bytes(300000);
  const auto ref = code.encode_value_stripewise(value);

  net::ParallelEngine::Options opt;
  opt.lanes = 4;
  net::ParallelEngine engine(opt);
  engine.start();
  // From an external (non-lane) thread.
  EXPECT_EQ(code.encode_value(value, &engine), ref);
  // From inside a lane (the production call site: an L1 server offloading).
  std::promise<std::vector<Bytes>> done;
  engine.post(0, [&] { done.set_value(code.encode_value(value, &engine)); });
  EXPECT_EQ(done.get_future().get(), ref);
  engine.stop();
}

TEST(StripedPaths, ConcurrentLaneEncodesDoNotDeadlock) {
  // Two lanes encoding at once each post helpers at the other; the
  // work-helping claim loop must let both finish.
  StripedCode code = mbr(7, 3, 4);
  Rng rng(37);
  const Bytes v1 = rng.bytes(250000);
  const Bytes v2 = rng.bytes(250000);
  const auto ref1 = code.encode_value(v1);
  const auto ref2 = code.encode_value(v2);

  net::ParallelEngine::Options opt;
  opt.lanes = 2;
  net::ParallelEngine engine(opt);
  engine.start();
  std::promise<std::vector<Bytes>> p1, p2;
  engine.post(0, [&] { p1.set_value(code.encode_value(v1, &engine)); });
  engine.post(1, [&] { p2.set_value(code.encode_value(v2, &engine)); });
  EXPECT_EQ(p1.get_future().get(), ref1);
  EXPECT_EQ(p2.get_future().get(), ref2);
  engine.stop();
}

}  // namespace
}  // namespace lds::codes
