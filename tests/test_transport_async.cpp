// The epoll progress engine and the async completion-queue client path:
//
//   * FrameReassembler — chunked streams reassemble byte-exact through the
//     pooled block, large payloads take the zero-copy streaming path, pool
//     blocks recycle across connections, hostile prefixes reject.
//   * CompletionQueue pipelining — a burst of async_put/async_get submits
//     without blocking, every handle completes exactly once, outstanding()
//     drains to zero.
//   * Cancellation — close() fails every in-flight async op with
//     Unavailable; a server that never replies cannot strand the client.
//   * Deadlines — an unanswered request expires mid-flight with
//     DeadlineExceeded on the transport's timer thread.
//   * Backpressure — a tiny backlog watermark blocks deliver() against a
//     slow reader instead of growing the queue without bound, and every
//     frame still arrives.
//   * Disconnects — a dying server fails pending async ops promptly.
//   * Pool fan-out — a multi-connection client against a multi-progress-
//     thread server: concurrent async traffic, then both linearizability
//     checkers over the served histories.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness/stress.h"
#include "net/codec.h"
#include "net/reassembly.h"
#include "net/transport.h"
#include "store/client.h"
#include "store/remote.h"
#include "store/store_service.h"

namespace lds::net {
namespace {

using store::RemoteGet;
using store::RemoteMessage;
using store::RemotePut;
using store::register_store_wire;

codec::Frame store_put_frame(OpId op, const std::string& key,
                             std::size_t value_bytes, Rng& rng) {
  register_store_wire();
  return codec::encode(
      *RemoteMessage::make(op, RemotePut{key, Value(rng.bytes(value_bytes))}));
}

// ---- FrameReassembler --------------------------------------------------------

TEST(FrameReassembler, ReassemblesChunkedStreamsByteExact) {
  register_store_wire();
  Rng rng(41);
  // Frames around every interesting size: tiny, block-straddling, and well
  // past the zero-copy threshold.
  const std::size_t sizes[] = {0, 1, 64, 1000, 4096, 9000, 70000};
  std::vector<std::uint8_t> stream;
  std::size_t want = 0;
  for (const std::size_t n : sizes) {
    const codec::Frame f =
        store_put_frame(100 + want, "k" + std::to_string(n), n, rng);
    const Bytes flat = f.to_bytes();
    stream.insert(stream.end(), flat.begin(), flat.end());
    ++want;
  }
  // Feed in every chunking: 1 byte at a time, 7, 1024, and all-at-once.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1024}, stream.size()}) {
    BufferPool pool(8 << 10, 4);
    FrameReassembler::Options ropt;
    ropt.zero_copy_threshold = 4096;
    FrameReassembler rx(&pool, ropt);
    std::vector<MessagePtr> out;
    std::size_t off = 0;
    while (off < stream.size()) {
      const auto [p, cap] = rx.recv_span();
      ASSERT_GT(cap, 0u);
      const std::size_t n = std::min({chunk, cap, stream.size() - off});
      std::memcpy(p, stream.data() + off, n);
      rx.commit(n);
      off += n;
      ASSERT_TRUE(rx.drain(&out).ok());
    }
    ASSERT_EQ(out.size(), std::size_t{7}) << "chunk=" << chunk;
    EXPECT_TRUE(rx.idle());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto* m = dynamic_cast<const RemoteMessage*>(out[i].get());
      ASSERT_NE(m, nullptr);
      const auto* put = std::get_if<RemotePut>(&m->body());
      ASSERT_NE(put, nullptr);
      EXPECT_EQ(put->value.size(), sizes[i]);
      EXPECT_EQ(put->key, "k" + std::to_string(sizes[i]));
    }
    // The big payloads never touched the block (zero-copy streaming kicks
    // in whenever a >=threshold payload is not already fully buffered).
    if (chunk < 4096) {
      EXPECT_GT(rx.zero_copy_bytes(), 0u) << "chunk=" << chunk;
    }
  }
}

TEST(FrameReassembler, PoolRecyclesBlocksAcrossConnections) {
  BufferPool pool(4 << 10, 2);
  for (int round = 0; round < 5; ++round) {
    FrameReassembler rx(&pool, FrameReassembler::Options{});
    const auto [p, cap] = rx.recv_span();  // forces block acquisition
    (void)p;
    EXPECT_EQ(cap, 4u << 10);
  }
  // First reassembler allocated; the rest reused its released block.
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 4u);
}

TEST(FrameReassembler, HostileAndOversizedStreamsReject) {
  register_store_wire();
  {  // garbage magic
    FrameReassembler rx(nullptr, FrameReassembler::Options{});
    const std::uint8_t junk[] = {0, 0, 0, 60, 'X', 'X', 9, 9,
                                 9, 9, 9, 9,  9,   9,   9, 9,
                                 9, 9, 9, 9,  9,   9,   9, 9,
                                 9};
    auto [p, cap] = rx.recv_span();
    ASSERT_GE(cap, sizeof junk);
    std::memcpy(p, junk, sizeof junk);
    rx.commit(sizeof junk);
    std::vector<MessagePtr> out;
    EXPECT_FALSE(rx.drain(&out).ok());
  }
  {  // a declared length past the reassembler's cap rejects BEFORE buffering
    Rng rng(7);
    const codec::Frame f = store_put_frame(1, "k", 100000, rng);
    const Bytes flat = f.to_bytes();
    FrameReassembler::Options ropt;
    ropt.max_frame_bytes = 64 << 10;
    FrameReassembler rx(nullptr, ropt);
    auto [p, cap] = rx.recv_span();
    const std::size_t n = std::min(cap, flat.size());
    std::memcpy(p, flat.data(), n);
    rx.commit(n);
    std::vector<MessagePtr> out;
    const Status s = rx.drain(&out);
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.to_string().find("exceeds"), std::string::npos);
  }
}

// ---- transport timers --------------------------------------------------------

TEST(TcpTransport, AfterRunsOnTimerThreadAndStopsCleanly) {
  TcpTransport server;
  ASSERT_TRUE(server.listen(0, [](NodeId, MessagePtr) {}).ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(server.after(0.01, [&] { fired.fetch_add(1); }));
  ASSERT_TRUE(server.after(0.02, [&] { fired.fetch_add(1); }));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (fired.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 2);
  server.stop();
  // A stopped transport refuses new timers instead of retaining them.
  EXPECT_FALSE(server.after(0.01, [&] { fired.fetch_add(1); }));
}

// ---- backpressure ------------------------------------------------------------

TEST(TcpTransport, BacklogWatermarkBlocksInsteadOfGrowingUnbounded) {
  register_store_wire();
  // Server reads slowly: its handler sleeps, stalling its progress thread,
  // so the kernel buffers fill and the client's backlog grows.
  TcpTransport server;
  std::atomic<std::uint64_t> received{0};
  ASSERT_TRUE(server
                  .listen(0,
                          [&](NodeId, MessagePtr) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(1));
                            received.fetch_add(1);
                          })
                  .ok());

  TcpTransport::Options copt;
  copt.backlog_high_watermark = 64 << 10;  // tiny: one big frame fills it
  copt.backlog_low_watermark = 16 << 10;
  TcpTransport client(copt);
  NodeId peer = 0;
  ASSERT_TRUE(client
                  .connect("127.0.0.1", server.port(),
                           [](NodeId, MessagePtr) {}, &peer)
                  .ok());

  // Enough bytes to overflow loopback kernel buffering (tens of MB), so the
  // client's user-space backlog genuinely fills against the slow reader.
  Rng rng(3);
  const std::uint64_t kFrames = 240;
  const Value big(rng.bytes(256 << 10));
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    client.deliver(0, peer, RemoteMessage::make(i, RemotePut{"k", big}), 0);
  }
  // Every frame still arrives (blocked, never dropped) ...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.load() < kFrames &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(received.load(), kFrames);
  EXPECT_EQ(client.frames_dropped(), 0u);
  // ... and the watermark actually engaged.
  EXPECT_GT(client.backpressure_stalls(), 0u);
  // Large payloads took the zero-copy receive path on the server.
  EXPECT_GT(server.zero_copy_bytes_received(), 0u);
  client.stop();
  server.stop();
}

// ---- completion queue over a real served store -------------------------------

struct ServedStore {
  store::StoreOptions sopt;
  std::unique_ptr<store::StoreService> svc;

  explicit ServedStore(std::size_t net_threads = 1, std::size_t shards = 2) {
    sopt.shards = shards;
    sopt.engine_mode = EngineMode::Parallel;
    sopt.engine_threads = 2;
    sopt.seed = 23;
    svc = std::make_unique<store::StoreService>(sopt);
    store::StoreService::ListenOptions lo;
    lo.net_threads = net_threads;
    const Status st = svc->listen(0, lo);
    EXPECT_TRUE(st.ok()) << st.to_string();
  }
};

TEST(AsyncClient, CompletionQueuePipeliningCompletesEveryHandle) {
  ServedStore served;
  Status st;
  auto client = store::Client::connect("127.0.0.1", served.svc->listen_port(),
                                       &st);
  ASSERT_NE(client, nullptr) << st.to_string();

  // Pipeline a burst of puts to distinct keys; none of these submissions
  // blocks on a reply.  (Distinct keys: concurrent same-key puts may
  // linearize in any order, so "last submitted wins" would be unsound.)
  const int kOps = 64;
  std::set<std::uint64_t> put_handles;
  for (int i = 0; i < kOps; ++i) {
    put_handles.insert(client->async_put(
        "key-" + std::to_string(i),
        Value::from_string("v" + std::to_string(i))));
  }
  ASSERT_EQ(put_handles.size(), static_cast<std::size_t>(kOps));

  auto& cq = client->completions();
  std::set<std::uint64_t> done;
  store::Completion c;
  while (cq.outstanding() > 0) {
    ASSERT_TRUE(cq.wait(&c, 30.0));
    EXPECT_TRUE(c.put.status.ok()) << c.put.status.to_string();
    EXPECT_EQ(c.kind, store::Completion::Kind::Put);
    EXPECT_TRUE(done.insert(c.handle).second) << "duplicate completion";
  }
  EXPECT_EQ(done, put_handles);

  // Now pipelined gets: every key reads back its (unique) written value —
  // all puts completed before the first get was submitted.
  std::map<std::uint64_t, std::string> want;
  for (int i = 0; i < kOps; ++i) {
    const std::string key = "key-" + std::to_string(i);
    want[client->async_get(key)] = "v" + std::to_string(i);
  }
  while (cq.outstanding() > 0) {
    ASSERT_TRUE(cq.wait(&c, 30.0));
    ASSERT_EQ(c.kind, store::Completion::Kind::Get);
    ASSERT_TRUE(c.get.ok) << c.get.status.to_string();
    ASSERT_EQ(want.count(c.handle), 1u);
    EXPECT_EQ(c.get.value, Value::from_string(want[c.handle]));
  }
  EXPECT_FALSE(cq.poll(&c));
}

TEST(AsyncClient, CloseCancelsInFlightOpsWithUnavailable) {
  register_store_wire();
  // A server that accepts and then ignores every request: the only way an
  // async op can complete is through cancellation.
  TcpTransport silent;
  ASSERT_TRUE(silent.listen(0, [](NodeId, MessagePtr) {}).ok());

  Status st;
  auto client = store::Client::connect("127.0.0.1", silent.port(), &st);
  ASSERT_NE(client, nullptr) << st.to_string();
  auto& cq = client->completions();
  for (int i = 0; i < 8; ++i) {
    client->async_get("key-" + std::to_string(i));
  }
  EXPECT_EQ(cq.outstanding(), 8u);
  client->close();
  store::Completion c;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cq.wait(&c, 10.0)) << "completion " << i << " never arrived";
    EXPECT_TRUE(c.get.status.is(StatusCode::kUnavailable))
        << c.get.status.to_string();
  }
  EXPECT_EQ(cq.outstanding(), 0u);
  // New submissions after close fail immediately, still via the queue.
  client->async_put("k", Value::from_string("v"));
  ASSERT_TRUE(cq.wait(&c, 10.0));
  EXPECT_TRUE(c.put.status.is(StatusCode::kUnavailable));
  silent.stop();
}

TEST(AsyncClient, DeadlineExpiresMidFlight) {
  register_store_wire();
  TcpTransport silent;
  ASSERT_TRUE(silent.listen(0, [](NodeId, MessagePtr) {}).ok());

  Status st;
  auto client = store::Client::connect("127.0.0.1", silent.port(), &st);
  ASSERT_NE(client, nullptr) << st.to_string();
  store::OpOptions opts;
  opts.deadline = 0.1;  // wall-clock seconds in remote mode
  const auto t0 = std::chrono::steady_clock::now();
  client->async_get("key", opts);
  store::Completion c;
  ASSERT_TRUE(client->completions().wait(&c, 30.0));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(c.get.status.is(StatusCode::kDeadlineExceeded))
      << c.get.status.to_string();
  EXPECT_LT(waited, 10.0);  // expiry, not a hung RPC
  silent.stop();
}

TEST(AsyncClient, ServerDeathFailsPendingOpsPromptly) {
  register_store_wire();
  auto silent = std::make_unique<TcpTransport>();
  ASSERT_TRUE(silent->listen(0, [](NodeId, MessagePtr) {}).ok());

  Status st;
  auto client = store::Client::connect("127.0.0.1", silent->port(), &st);
  ASSERT_NE(client, nullptr) << st.to_string();
  for (int i = 0; i < 4; ++i) client->async_get("key");
  EXPECT_EQ(client->completions().outstanding(), 4u);
  silent->stop();  // connection drops; client sees EOF on its progress thread
  store::Completion c;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->completions().wait(&c, 10.0));
    EXPECT_TRUE(c.get.status.is(StatusCode::kUnavailable))
        << c.get.status.to_string();
  }
}

TEST(AsyncClient, PoolFanOutHistoriesPassBothVerifiers) {
  ServedStore served(/*net_threads=*/2, /*shards=*/2);
  store::Client::ConnectOptions copts;
  copts.connections = 4;
  Status st;
  auto client = store::Client::connect("127.0.0.1", served.svc->listen_port(),
                                       &st, copts);
  ASSERT_NE(client, nullptr) << st.to_string();

  // Writer+reader threads hammer a small keyspace through the async API
  // across the 4-connection pool.
  const int kThreads = 3, kOpsPerThread = 60;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(rng.uniform_int(0, 4));
        if (rng.bernoulli(0.5)) {
          const auto r = client->put_sync(
              key, Value::from_string("t" + std::to_string(t) + "-" +
                                      std::to_string(i)));
          if (!r.ok()) failures.fetch_add(1);
        } else {
          const auto r = client->get_sync(key);
          if (!r.ok() && !r.status().is(StatusCode::kNotFound)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  // Plus an async burst from this thread, drained through the queue.
  auto& cq = client->completions();
  for (int i = 0; i < 40; ++i) {
    client->async_put("k" + std::to_string(i % 5),
                      Value::from_string("async-" + std::to_string(i)));
  }
  store::Completion c;
  while (cq.outstanding() > 0) {
    ASSERT_TRUE(cq.wait(&c, 60.0));
    EXPECT_TRUE(c.put.status.ok()) << c.put.status.to_string();
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // multi_* fan out concurrently over the pool and stay correct.
  std::vector<store::KeyValue> entries;
  for (int i = 0; i < 16; ++i) {
    entries.push_back({"bulk-" + std::to_string(i),
                       Value::from_string("b" + std::to_string(i))});
  }
  const auto puts = client->multi_put_sync(entries);
  ASSERT_EQ(puts.size(), entries.size());
  for (const auto& r : puts) EXPECT_TRUE(r.status.ok());
  std::vector<std::string> keys;
  for (const auto& e : entries) keys.push_back(e.key);
  const auto gets = client->multi_get_sync(keys);
  ASSERT_EQ(gets.size(), keys.size());
  for (std::size_t i = 0; i < gets.size(); ++i) {
    ASSERT_TRUE(gets[i].status.ok()) << gets[i].status.to_string();
    EXPECT_EQ(gets[i].value, entries[i].value);
  }

  client->close();
  served.svc->stop_listening();
  served.svc->quiesce();
  for (std::size_t s = 0; s < served.svc->num_shards(); ++s) {
    const auto& h = served.svc->shard_history(s);
    EXPECT_TRUE(h.all_complete());
    EXPECT_TRUE(h.check_atomicity(Bytes{}).ok);
    EXPECT_TRUE(harness::verify_read_freshness(h).ok);
  }
}

}  // namespace
}  // namespace lds::net
