// Storage engine: CRC32C vectors, WAL framing / rotation / sync policies /
// torn-tail truncation sweep / corruption rejection / fault injection,
// checkpoint + manifest files, DurableBackend recovery edge cases, KeyLog,
// and durable-mode LdsCluster / StoreService restart-recovery end to end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lds/cluster.h"
#include "storage/backend.h"
#include "storage/checkpoint.h"
#include "storage/crc32c.h"
#include "storage/fsutil.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "store/store_service.h"
#include "store_test_util.h"

namespace lds::storage {
namespace {

namespace fs = std::filesystem;

/// A unique empty directory under the system temp dir, removed on scope
/// exit.  Every test gets its own so parallel ctest runs never collide.
struct ScopedDir {
  explicit ScopedDir(const char* tag) {
    static std::atomic<int> counter{0};
    path = (fs::temp_directory_path() /
            ("lds_storage_test_" + std::to_string(::getpid()) + "_" + tag +
             "_" + std::to_string(counter.fetch_add(1))))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

Bytes bytes_of(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return Bytes(p, p + std::strlen(s));
}

// ---- CRC32C -----------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The standard CRC-32C check value (RFC 3720 B.4) plus companions; these
  // pin the polynomial/reflection/final-xor constants of the implementation.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x22620404u);
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  const Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  Rng rng(11);
  const Bytes data = rng.bytes(1000);
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{499}, std::size_t{1000}}) {
    std::uint32_t crc = crc32c_extend(0, data.data(), split);
    crc = crc32c_extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

// ---- Wal --------------------------------------------------------------------

std::vector<Bytes> replay_all(Wal& wal, std::uint64_t floor = 0) {
  std::vector<Bytes> records;
  const Status st =
      wal.replay(floor, [&](const std::uint8_t* payload, std::size_t len) {
        records.emplace_back(payload, payload + len);
      });
  EXPECT_TRUE(st.ok()) << st.to_string();
  return records;
}

TEST(Wal, RoundTripAcrossReopen) {
  ScopedDir dir("wal_roundtrip");
  Rng rng(1);
  std::vector<Bytes> written;
  {
    auto wal = Wal::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 20; ++i) {
      written.push_back(rng.bytes(1 + static_cast<std::size_t>(i) * 7));
      ASSERT_TRUE(wal.value()->append(written.back()).ok());
    }
  }
  auto wal = Wal::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(replay_all(*wal.value()), written);
  EXPECT_EQ(wal.value()->stats().replayed_records, 20u);
}

TEST(Wal, EveryOpenStartsAFreshSegment) {
  ScopedDir dir("wal_fresh");
  for (std::uint64_t expect_seq = 1; expect_seq <= 3; ++expect_seq) {
    auto wal = Wal::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value()->current_segment(), expect_seq);
    ASSERT_TRUE(wal.value()->append(bytes_of("x")).ok());
  }
}

TEST(Wal, RotationSplitsSegmentsAndDropThroughDeletesThem) {
  ScopedDir dir("wal_rotate");
  DurabilityPolicy policy;
  policy.segment_bytes = 64;  // force rotation every few records
  auto wal = Wal::open(dir.path, policy);
  ASSERT_TRUE(wal.ok());
  std::vector<Bytes> written;
  for (int i = 0; i < 16; ++i) {
    written.push_back(Bytes(24, static_cast<std::uint8_t>(i)));
    ASSERT_TRUE(wal.value()->append(written.back()).ok());
  }
  EXPECT_GT(wal.value()->stats().rotations, 2u);
  EXPECT_EQ(replay_all(*wal.value()), written);

  // Dropping through the last sealed segment leaves only the current one.
  const std::uint64_t current = wal.value()->current_segment();
  ASSERT_TRUE(wal.value()->drop_through(current - 1).ok());
  std::size_t segment_files = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++segment_files;
  }
  EXPECT_EQ(segment_files, 1u);
}

TEST(Wal, SyncPolicyControlsFdatasyncCadence) {
  {
    ScopedDir dir("wal_sync_always");
    DurabilityPolicy policy;
    policy.sync = SyncPolicy::Always;
    auto wal = Wal::open(dir.path, policy);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(wal.value()->append(Bytes(100, 1)).ok());
    }
    EXPECT_EQ(wal.value()->stats().syncs, 8u);
  }
  {
    ScopedDir dir("wal_sync_group");
    DurabilityPolicy policy;
    policy.sync = SyncPolicy::GroupCommit;
    policy.group_commit_bytes = 4 * 108;  // 4 frames of (8 + 100) bytes
    auto wal = Wal::open(dir.path, policy);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(wal.value()->append(Bytes(100, 1)).ok());
    }
    EXPECT_EQ(wal.value()->stats().syncs, 2u);
  }
  {
    ScopedDir dir("wal_sync_never");
    DurabilityPolicy policy;
    policy.sync = SyncPolicy::Never;
    auto wal = Wal::open(dir.path, policy);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(wal.value()->append(Bytes(100, 1)).ok());
    }
    EXPECT_EQ(wal.value()->stats().syncs, 0u);
    ASSERT_TRUE(wal.value()->sync().ok());  // explicit flush
    EXPECT_EQ(wal.value()->stats().syncs, 1u);
  }
}

/// Crash-tail sweep in the test_codec style: truncate a healthy segment at
/// EVERY byte offset; replay must succeed at each, returning exactly the
/// records whose frames fit entirely below the cut.
TEST(Wal, TornTailToleratedAtEveryTruncationOffset) {
  ScopedDir dir("wal_torn_src");
  const std::vector<std::size_t> lens{1, 5, 17, 2, 40};
  std::vector<Bytes> written;
  Rng rng(2);
  {
    auto wal = Wal::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok());
    for (const std::size_t len : lens) {
      written.push_back(rng.bytes(len));
      ASSERT_TRUE(wal.value()->append(written.back()).ok());
    }
  }
  Bytes segment;
  ASSERT_TRUE(
      read_file_bytes(dir.path + "/wal-000001.log", &segment).ok());

  // Frame boundaries: records_below(cut) = frames wholly within [0, cut).
  std::vector<std::size_t> frame_end;
  std::size_t off = 0;
  for (const std::size_t len : lens) {
    off += 8 + len;
    frame_end.push_back(off);
  }
  ASSERT_EQ(off, segment.size());

  for (std::size_t cut = 0; cut <= segment.size(); ++cut) {
    ScopedDir trial("wal_torn_trial");
    {
      std::ofstream f(trial.path + "/wal-000001.log", std::ios::binary);
      f.write(reinterpret_cast<const char*>(segment.data()),
              static_cast<std::streamsize>(cut));
    }
    auto wal = Wal::open(trial.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok()) << "cut " << cut;
    std::size_t expect = 0;
    while (expect < frame_end.size() && frame_end[expect] <= cut) ++expect;
    const auto records = replay_all(*wal.value());
    ASSERT_EQ(records.size(), expect) << "cut " << cut;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(records[i], written[i]) << "cut " << cut;
    }
    const bool at_boundary =
        cut == 0 || (expect > 0 && frame_end[expect - 1] == cut);
    if (!at_boundary) {
      EXPECT_GT(wal.value()->stats().torn_tail_bytes, 0u) << "cut " << cut;
    }
  }
}

TEST(Wal, ZeroLengthFrameIsEndOfSegment) {
  // File-system pre-allocation can leave zero bytes after the real tail;
  // a zero length field must read as end-of-segment, not as a record.
  ScopedDir dir("wal_zeros");
  {
    auto wal = Wal::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->append(bytes_of("alive")).ok());
  }
  {
    std::ofstream f(dir.path + "/wal-000001.log",
                    std::ios::binary | std::ios::app);
    const char zeros[16] = {};
    f.write(zeros, sizeof(zeros));
  }
  auto wal = Wal::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(wal.ok());
  const auto records = replay_all(*wal.value());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], bytes_of("alive"));
}

TEST(Wal, CorruptCrcMidLogIsRejected) {
  ScopedDir dir("wal_corrupt");
  {
    auto wal = Wal::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->append(Bytes(32, 7)).ok());
    ASSERT_TRUE(wal.value()->append(Bytes(32, 8)).ok());
  }
  const std::string seg = dir.path + "/wal-000001.log";
  Bytes data;
  ASSERT_TRUE(read_file_bytes(seg, &data).ok());
  data[10] ^= 0xFF;  // payload byte of the FIRST record: not a torn tail
  ASSERT_TRUE(atomic_write_file(seg, data).ok());

  auto wal = Wal::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(wal.ok());
  const Status st = wal.value()->replay(0, [](const std::uint8_t*,
                                              std::size_t) {});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.to_string();
}

TEST(Wal, InjectedAppendFailurePoisons) {
  ScopedDir dir("wal_fault_append");
  auto wal = Wal::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(wal.ok());
  WalFaults faults;
  faults.fail_append_after = 1;  // fail the SECOND append from now
  wal.value()->inject_faults(faults);
  ASSERT_TRUE(wal.value()->append(bytes_of("first")).ok());
  EXPECT_EQ(wal.value()->append(bytes_of("second")).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(wal.value()->poisoned());
  // Poison is sticky: later appends fail without touching the disk.
  EXPECT_EQ(wal.value()->append(bytes_of("third")).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(wal.value()->stats().appends, 1u);
}

TEST(Wal, InjectedShortWriteLeavesTornRecord) {
  ScopedDir dir("wal_fault_short");
  {
    auto wal = Wal::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->append(bytes_of("whole")).ok());
    WalFaults faults;
    faults.short_write_next = true;
    wal.value()->inject_faults(faults);
    EXPECT_EQ(wal.value()->append(Bytes(64, 9)).code(),
              StatusCode::kUnavailable);
    EXPECT_TRUE(wal.value()->poisoned());
  }
  // The torn frame reads exactly like a crash tail: earlier records
  // survive, the torn one is discarded.
  auto wal = Wal::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(wal.ok());
  const auto records = replay_all(*wal.value());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], bytes_of("whole"));
  EXPECT_GT(wal.value()->stats().torn_tail_bytes, 0u);
}

TEST(Wal, InjectedFsyncFailurePoisons) {
  ScopedDir dir("wal_fault_fsync");
  DurabilityPolicy policy;
  policy.sync = SyncPolicy::Always;
  auto wal = Wal::open(dir.path, policy);
  ASSERT_TRUE(wal.ok());
  WalFaults faults;
  faults.fail_fsync_next = true;
  wal.value()->inject_faults(faults);
  EXPECT_EQ(wal.value()->append(bytes_of("v")).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(wal.value()->poisoned());
  EXPECT_EQ(wal.value()->sync().code(), StatusCode::kUnavailable);
}

// ---- Checkpoint -------------------------------------------------------------

TEST(Checkpoint, RoundTrip) {
  ScopedDir dir("ckpt_roundtrip");
  CheckpointData data;
  data.wal_floor = 42;
  data.entries.push_back({7, Tag{3, 1}, Bytes{1, 2, 3}});
  data.entries.push_back({9, Tag{5, 2}, Bytes{}});
  ASSERT_TRUE(write_checkpoint(dir.path, data).ok());

  auto loaded = read_checkpoint(dir.path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->wal_floor, 42u);
  ASSERT_EQ(loaded.value()->entries.size(), 2u);
  EXPECT_EQ(loaded.value()->entries[0].obj, 7u);
  EXPECT_EQ(loaded.value()->entries[0].tag, (Tag{3, 1}));
  EXPECT_EQ(loaded.value()->entries[0].element, (Bytes{1, 2, 3}));
  EXPECT_EQ(loaded.value()->entries[1].obj, 9u);
  EXPECT_TRUE(loaded.value()->entries[1].element.empty());
}

TEST(Checkpoint, AbsentIsOkAndEmpty) {
  ScopedDir dir("ckpt_absent");
  auto loaded = read_checkpoint(dir.path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_value());
}

TEST(Checkpoint, CorruptFileIsRejected) {
  ScopedDir dir("ckpt_corrupt");
  CheckpointData data;
  data.wal_floor = 1;
  data.entries.push_back({1, Tag{1, 1}, Bytes(16, 5)});
  ASSERT_TRUE(write_checkpoint(dir.path, data).ok());
  Bytes raw;
  ASSERT_TRUE(read_file_bytes(dir.path + "/CHECKPOINT", &raw).ok());
  raw[raw.size() / 2] ^= 0x55;
  ASSERT_TRUE(atomic_write_file(dir.path + "/CHECKPOINT", raw).ok());
  EXPECT_EQ(read_checkpoint(dir.path).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- Manifest ---------------------------------------------------------------

TEST(Manifest, VerifyOrWriteThenMatchingRestart) {
  ScopedDir dir("manifest_ok");
  Manifest mf;
  mf.set("format", "test-v1");
  mf.set("n2", std::uint64_t{8});
  ASSERT_TRUE(mf.verify_or_write(dir.path).ok());  // first run: writes
  ASSERT_TRUE(mf.verify_or_write(dir.path).ok());  // restart: matches

  auto loaded = Manifest::load(dir.path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->get("n2"), std::optional<std::string>("8"));
}

TEST(Manifest, AnyMismatchFailsFast) {
  ScopedDir dir("manifest_mismatch");
  Manifest mf;
  mf.set("format", "test-v1");
  mf.set("n2", std::uint64_t{8});
  ASSERT_TRUE(mf.verify_or_write(dir.path).ok());

  Manifest changed = mf;
  changed.set("n2", std::uint64_t{10});  // differing value
  const Status st = changed.verify_or_write(dir.path);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("n2"), std::string::npos) << st.to_string();

  Manifest extra = mf;
  extra.set("code", "rs");  // key absent from the stored manifest
  EXPECT_EQ(extra.verify_or_write(dir.path).code(),
            StatusCode::kInvalidArgument);

  Manifest missing;
  missing.set("format", "test-v1");  // stored has n2, we do not
  EXPECT_EQ(missing.verify_or_write(dir.path).code(),
            StatusCode::kInvalidArgument);
}

TEST(Manifest, CorruptFileIsRejected) {
  ScopedDir dir("manifest_corrupt");
  Manifest mf;
  mf.set("format", "test-v1");
  ASSERT_TRUE(mf.verify_or_write(dir.path).ok());
  Bytes raw;
  ASSERT_TRUE(read_file_bytes(dir.path + "/MANIFEST", &raw).ok());
  raw.back() ^= 0x01;  // break the trailing CRC
  ASSERT_TRUE(atomic_write_file(dir.path + "/MANIFEST", raw).ok());
  EXPECT_EQ(Manifest::load(dir.path).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- DurableBackend ---------------------------------------------------------

std::unique_ptr<DurableBackend> open_backend(const std::string& dir,
                                             DurabilityPolicy policy = {}) {
  auto be = DurableBackend::open(dir, policy);
  EXPECT_TRUE(be.ok()) << be.status().to_string();
  return std::move(be).value();
}

TEST(DurableBackend, EmptyDirRecoversNothing) {
  ScopedDir dir("be_empty");
  auto be = open_backend(dir.path);
  EXPECT_TRUE(be->recovered().empty());
  EXPECT_TRUE(be->recovered_versions().empty());
}

TEST(DurableBackend, WalOnlyRecovery) {
  ScopedDir dir("be_walonly");
  {
    auto be = open_backend(dir.path);
    ASSERT_TRUE(be->put(1, Tag{1, 1}, Bytes{10}).ok());
    ASSERT_TRUE(be->put(2, Tag{1, 1}, Bytes{20}).ok());
    ASSERT_TRUE(be->put(1, Tag{2, 1}, Bytes{11}).ok());
  }
  auto be = open_backend(dir.path);
  ASSERT_EQ(be->recovered().size(), 2u);
  EXPECT_EQ(be->recovered().at(1).tag, (Tag{2, 1}));
  EXPECT_EQ(be->recovered().at(1).element, Bytes{11});
  EXPECT_EQ(be->recovered().at(2).tag, (Tag{1, 1}));
  // Overwritten versions survive for the cluster recovery sweep.
  ASSERT_EQ(be->recovered_versions().size(), 3u);
  EXPECT_EQ(be->recovered_versions()[0].tag, (Tag{1, 1}));
  EXPECT_EQ(be->recovered_versions()[2].tag, (Tag{2, 1}));
}

TEST(DurableBackend, ReplayIsLastRecordWins) {
  // The recovery sweep may DOWNGRADE a divergent unacknowledged tag; that
  // downgrade is a later record with a smaller tag and must win replay.
  ScopedDir dir("be_lastwins");
  {
    auto be = open_backend(dir.path);
    ASSERT_TRUE(be->put(1, Tag{5, 2}, Bytes{50}).ok());
    ASSERT_TRUE(be->put(1, Tag{3, 1}, Bytes{30}).ok());
  }
  auto be = open_backend(dir.path);
  EXPECT_EQ(be->recovered().at(1).tag, (Tag{3, 1}));
  EXPECT_EQ(be->recovered().at(1).element, Bytes{30});
}

TEST(DurableBackend, ForgetTombstoneErasesAllVersions) {
  ScopedDir dir("be_forget");
  {
    auto be = open_backend(dir.path);
    ASSERT_TRUE(be->put(1, Tag{1, 1}, Bytes{1}).ok());
    ASSERT_TRUE(be->put(1, Tag{2, 1}, Bytes{2}).ok());
    ASSERT_TRUE(be->put(3, Tag{1, 1}, Bytes{3}).ok());
    ASSERT_TRUE(be->forget(1).ok());
  }
  auto be = open_backend(dir.path);
  EXPECT_EQ(be->recovered().count(1), 0u);
  EXPECT_EQ(be->recovered().count(3), 1u);
  for (const auto& v : be->recovered_versions()) EXPECT_NE(v.obj, 1u);
}

TEST(DurableBackend, CheckpointTruncatesWalAndRecoveryMerges) {
  ScopedDir dir("be_ckpt");
  std::map<ObjectId, Backend::Entry> live;
  {
    auto be = open_backend(dir.path);
    be->set_snapshot_source([&](const Backend::SnapshotSink& sink) {
      for (const auto& [obj, e] : live) sink(obj, e.tag, e.element);
    });
    for (ObjectId obj = 1; obj <= 4; ++obj) {
      live[obj] = {Tag{1, 1}, Bytes(64, static_cast<std::uint8_t>(obj))};
      ASSERT_TRUE(be->put(obj, live[obj].tag, live[obj].element).ok());
    }
    ASSERT_TRUE(be->checkpoint_now().ok());
    // Post-checkpoint tail: one more write that lives only in the WAL.
    live[9] = {Tag{2, 3}, Bytes{99}};
    ASSERT_TRUE(be->put(9, live[9].tag, live[9].element).ok());
  }
  {
    auto be = open_backend(dir.path);
    ASSERT_EQ(be->recovered().size(), 5u);
    for (const auto& [obj, e] : live) {
      EXPECT_EQ(be->recovered().at(obj).tag, e.tag) << "obj " << obj;
      EXPECT_EQ(be->recovered().at(obj).element, e.element) << "obj " << obj;
    }
    // The checkpoint subsumed the pre-checkpoint appends: only the tail
    // record replays from the log.
    EXPECT_EQ(be->wal_stats().replayed_records, 1u);
  }
}

TEST(DurableBackend, CheckpointOnlyRecovery) {
  ScopedDir dir("be_ckptonly");
  {
    auto be = open_backend(dir.path);
    be->set_snapshot_source([](const Backend::SnapshotSink& sink) {
      sink(5, Tag{4, 2}, Bytes{42});
    });
    ASSERT_TRUE(be->put(5, Tag{4, 2}, Bytes{42}).ok());
    ASSERT_TRUE(be->checkpoint_now().ok());
  }
  auto be = open_backend(dir.path);
  ASSERT_EQ(be->recovered().size(), 1u);
  EXPECT_EQ(be->recovered().at(5).tag, (Tag{4, 2}));
  EXPECT_EQ(be->wal_stats().replayed_records, 0u);
}

TEST(DurableBackend, DoubleRecoveryIsIdempotent) {
  ScopedDir dir("be_double");
  {
    auto be = open_backend(dir.path);
    ASSERT_TRUE(be->put(1, Tag{1, 1}, Bytes{7}).ok());
    ASSERT_TRUE(be->put(2, Tag{1, 2}, Bytes{8}).ok());
  }
  std::map<ObjectId, Tag> first;
  {
    auto be = open_backend(dir.path);  // recover, write nothing
    for (const auto& [obj, e] : be->recovered()) first[obj] = e.tag;
  }
  auto be = open_backend(dir.path);  // recover again
  ASSERT_EQ(be->recovered().size(), first.size());
  for (const auto& [obj, e] : be->recovered()) {
    EXPECT_EQ(e.tag, first.at(obj)) << "obj " << obj;
  }
}

TEST(DurableBackend, PoisonedAfterInjectedFailure) {
  ScopedDir dir("be_poison");
  auto be = open_backend(dir.path);
  WalFaults faults;
  faults.fail_fsync_next = true;
  be->inject_faults(faults);
  EXPECT_EQ(be->put(1, Tag{1, 1}, Bytes{1}).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(be->poisoned());
  EXPECT_EQ(be->put(2, Tag{1, 1}, Bytes{2}).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(be->forget(1).code(), StatusCode::kUnavailable);
  EXPECT_EQ(be->checkpoint_now().code(), StatusCode::kUnavailable);
}

TEST(DurableBackend, CheckpointRequiresSnapshotSource) {
  ScopedDir dir("be_nosnap");
  auto be = open_backend(dir.path);
  EXPECT_EQ(be->checkpoint_now().code(), StatusCode::kInvalidArgument);
}

// ---- KeyLog -----------------------------------------------------------------

TEST(KeyLog, RecoversKeysInInternOrder) {
  ScopedDir dir("keylog");
  {
    auto log = KeyLog::open(dir.path, DurabilityPolicy{});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->append("alpha").ok());
    ASSERT_TRUE(log.value()->append("beta").ok());
    ASSERT_TRUE(log.value()->append("gamma").ok());
  }
  auto log = KeyLog::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value()->recovered(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(KeyLog, RejectsEmptyKey) {
  ScopedDir dir("keylog_empty");
  auto log = KeyLog::open(dir.path, DurabilityPolicy{});
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value()->append("").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lds::storage

// ---- durable LdsCluster / StoreService -------------------------------------

namespace lds::core {
namespace {

LdsCluster::Options durable_options(const std::string& data_dir) {
  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;  // k = 4
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;  // d = 4
  opt.cfg.initial_value = Bytes{};
  opt.writers = 2;
  opt.readers = 2;
  opt.data_dir = data_dir;
  return opt;
}

TEST(DurableCluster, WritesSurviveRestart) {
  storage::ScopedDir dir("cluster_restart");
  Rng rng(5);
  std::map<ObjectId, std::pair<Tag, Bytes>> expect;
  {
    LdsCluster c(durable_options(dir.path));
    EXPECT_TRUE(c.recovered_objects().empty());  // fresh data_dir
    for (ObjectId obj = 0; obj < 3; ++obj) {
      const Bytes v = rng.bytes(120 + obj * 13);
      const Tag t = c.write_sync(obj % 2, obj, v);
      expect[obj] = {t, v};
    }
    c.settle();
  }
  LdsCluster c(durable_options(dir.path));
  ASSERT_EQ(c.recovered_objects().size(), 3u);
  for (const auto& [obj, tag] : c.recovered_objects()) {
    EXPECT_EQ(tag, expect.at(obj).first) << "obj " << obj;
  }
  for (const auto& [obj, tv] : expect) {
    auto [rt, rv] = c.read_sync(0, obj);
    EXPECT_EQ(rt, tv.first) << "obj " << obj;
    EXPECT_EQ(rv, tv.second) << "obj " << obj;
  }
  // New writes continue above the recovered tags.
  const Tag t = c.write_sync(0, 0, rng.bytes(64));
  EXPECT_GT(t, expect.at(0).first);
  EXPECT_TRUE(c.history().check_atomicity({}).ok);
}

TEST(DurableCluster, RecoveryIsIdempotentAcrossRestarts) {
  storage::ScopedDir dir("cluster_idempotent");
  Tag wt;
  Bytes v;
  {
    LdsCluster c(durable_options(dir.path));
    Rng rng(6);
    v = rng.bytes(200);
    wt = c.write_sync(0, 0, v);
    c.settle();
  }
  for (int restart = 0; restart < 2; ++restart) {
    LdsCluster c(durable_options(dir.path));
    ASSERT_EQ(c.recovered_objects().size(), 1u);
    EXPECT_EQ(c.recovered_objects()[0].second, wt) << "restart " << restart;
    auto [rt, rv] = c.read_sync(0, 0);
    EXPECT_EQ(rt, wt);
    EXPECT_EQ(rv, v);
  }
}

TEST(DurableCluster, DivergentUnackedTagIsDowngradedToCertifiedTag) {
  // Model a SIGKILL that left ONE server holding a newer, never-certified
  // tag: the sweep must pick the certified tag (>= k decodable copies) and
  // downgrade the divergent server, and the downgrade must stick across a
  // further restart (last-record-wins replay).
  storage::ScopedDir dir("cluster_divergent");
  Tag wt;
  Bytes v;
  {
    LdsCluster c(durable_options(dir.path));
    Rng rng(7);
    v = rng.bytes(160);
    wt = c.write_sync(0, 0, v);
    c.settle();
  }
  const Tag divergent{wt.z + 1, 2};
  {
    // Plant the divergent tag directly in server 0's backend, as an
    // interrupted write-to-L2 offload would have.
    auto be = storage::DurableBackend::open(dir.path + "/l2-0",
                                            storage::DurabilityPolicy{});
    ASSERT_TRUE(be.ok());
    const Bytes junk(be.value()->recovered().at(0).element.size(), 0xAB);
    ASSERT_TRUE(be.value()->put(0, divergent, junk).ok());
  }
  for (int restart = 0; restart < 2; ++restart) {
    LdsCluster c(durable_options(dir.path));
    ASSERT_EQ(c.recovered_objects().size(), 1u) << "restart " << restart;
    EXPECT_EQ(c.recovered_objects()[0].second, wt) << "restart " << restart;
    for (std::size_t i = 0; i < c.ctx().cfg.n2; ++i) {
      EXPECT_EQ(c.l2(i).stored_tag(0), wt) << "server " << i;
    }
    auto [rt, rv] = c.read_sync(0, 0);
    EXPECT_EQ(rt, wt);
    EXPECT_EQ(rv, v);
  }
}

TEST(DurableCluster, RecoveryThenRepairStaysVerifierClean) {
  storage::ScopedDir dir("cluster_repair");
  Tag wt;
  Bytes v;
  {
    LdsCluster c(durable_options(dir.path));
    Rng rng(8);
    v = rng.bytes(180);
    wt = c.write_sync(0, 0, v);
    c.settle();
  }
  {
    LdsCluster c(durable_options(dir.path));
    c.replace_l2(1);  // durable replace: wipes l2-1 and reopens it empty
    std::optional<Tag> repaired;
    c.l2(1).repair_object(0, [&](std::optional<Tag> t) { repaired = t; });
    c.settle();
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, wt);
    EXPECT_EQ(c.l2(1).stored_tag(0), wt);
    auto [rt, rv] = c.read_sync(0, 0);
    EXPECT_EQ(rt, wt);
    EXPECT_EQ(rv, v);
    EXPECT_TRUE(c.history().check_atomicity({}).ok);
  }
  // The repaired element was re-persisted: another restart still recovers.
  LdsCluster c(durable_options(dir.path));
  EXPECT_EQ(c.l2(1).stored_tag(0), wt);
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
}

TEST(DurableClusterDeathTest, GeometryManifestMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  storage::ScopedDir dir("cluster_manifest");
  { LdsCluster c(durable_options(dir.path)); }
  auto opt = durable_options(dir.path);
  opt.cfg.n2 = 10;  // disagrees with the persisted MANIFEST
  EXPECT_DEATH({ LdsCluster c(opt); }, "manifest mismatch");
}

}  // namespace
}  // namespace lds::core

namespace lds::store {
namespace {

StoreOptions durable_store_options(const std::string& data_dir) {
  StoreOptions opt;
  opt.shards = 2;
  opt.writers_per_shard = 2;
  opt.readers_per_shard = 2;
  opt.seed = 9;
  opt.data_dir = data_dir;
  return opt;
}

TEST(DurableStore, PutsSurviveServiceRestart) {
  storage::ScopedDir dir("store_restart");
  std::map<std::string, Bytes> expect;
  {
    StoreService svc(durable_store_options(dir.path));
    for (int i = 0; i < 6; ++i) {
      const std::string key = "key-" + std::to_string(i);
      const Bytes v(40 + i, static_cast<std::uint8_t>(i + 1));
      const auto put = svc.put_sync(key, v);
      ASSERT_TRUE(put.ok) << put.error;
      expect[key] = v;
    }
    svc.quiesce();
  }
  StoreService svc(durable_store_options(dir.path));
  for (const auto& [key, v] : expect) {
    const auto get = svc.get_sync(key);
    ASSERT_TRUE(get.ok) << key << ": " << get.error;
    EXPECT_EQ(get.value, v) << key;
  }
  // Overwrites after recovery behave normally.
  const auto put = svc.put_sync("key-0", Bytes{99});
  ASSERT_TRUE(put.ok) << put.error;
  const auto get = svc.get_sync("key-0");
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(get.value, Bytes{99});
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(DurableStoreDeathTest, ShardCountManifestMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  storage::ScopedDir dir("store_manifest");
  { StoreService svc(durable_store_options(dir.path)); }
  auto opt = durable_store_options(dir.path);
  opt.shards = 3;  // ShardRouter placement depends on this: must fail fast
  EXPECT_DEATH({ StoreService svc(opt); }, "manifest mismatch");
}

}  // namespace
}  // namespace lds::store
