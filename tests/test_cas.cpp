// CAS (Coded Atomic Storage, reference [6]) baseline: correctness,
// fault-tolerance at the (n - k) / 2 bound, cost profile, and the
// unbounded-history storage growth that motivates LDS's two-layer design.
#include <gtest/gtest.h>

#include "baselines/cas.h"
#include "common/rng.h"

namespace lds::baselines {
namespace {

CasCluster::Options small() {
  CasCluster::Options opt;
  opt.n = 9;
  opt.k = 5;  // q = 7, f = 2
  opt.initial_value = Bytes{1, 2};
  return opt;
}

TEST(Cas, QuorumArithmetic) {
  auto ctx = make_cas_context(9, 5, {});
  EXPECT_EQ(ctx->quorum(), 7u);
  EXPECT_EQ(ctx->max_failures(), 2u);
  // Any two quorums intersect in >= k servers.
  EXPECT_GE(2 * ctx->quorum(), ctx->n + ctx->k);
}

TEST(Cas, WriteReadRoundTrip) {
  CasCluster c(small());
  Rng rng(1);
  const Bytes v = rng.bytes(100);
  const Tag wt = c.write_sync(0, 0, v);
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_atomicity(Bytes{1, 2}).ok);
}

TEST(Cas, InitialRead) {
  CasCluster c(small());
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, kTag0);
  EXPECT_EQ(rv, (Bytes{1, 2}));
}

TEST(Cas, ToleratesMaxCrashes) {
  CasCluster c(small());
  Rng rng(2);
  c.crash_server(1);
  c.crash_server(6);
  const Tag wt = c.write_sync(0, 0, rng.bytes(64));
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_TRUE(c.history().all_complete());
  EXPECT_TRUE(c.history().check_atomicity(Bytes{1, 2}).ok);
}

TEST(Cas, RandomizedConcurrencyStaysAtomic) {
  for (int seed = 0; seed < 10; ++seed) {
    CasCluster::Options opt = small();
    opt.writers = 2;
    opt.readers = 2;
    opt.exponential_latency = true;
    opt.seed = static_cast<std::uint64_t>(seed) + 3;
    CasCluster c(opt);
    Rng rng(static_cast<std::uint64_t>(seed) + 50);

    for (std::size_t w = 0; w < 2; ++w) {
      c.sim().at(rng.uniform_real(0.0, 2.0), [&c, w] {
        c.writer(w).write(0, Bytes{static_cast<std::uint8_t>(w), 9},
                          [&c, w](Tag) {
                            c.writer(w).write(
                                0,
                                Bytes{static_cast<std::uint8_t>(w + 4), 8});
                          });
      });
    }
    for (std::size_t r = 0; r < 2; ++r) {
      c.sim().at(rng.uniform_real(0.0, 5.0), [&c, r] {
        c.reader(r).read(0, [&c, r](Tag, Bytes) { c.reader(r).read(0); });
      });
    }
    c.sim().run();
    EXPECT_TRUE(c.history().all_complete()) << "seed " << seed;
    const auto verdict = c.history().check_atomicity(Bytes{1, 2});
    EXPECT_TRUE(verdict.ok) << verdict.violation << " seed " << seed;
  }
}

TEST(Cas, CostProfile) {
  // Write: n elements of ~|v|/k  =>  ~ n/k |v|.  Read: finalize responses
  // return up to n elements  =>  ~ n/k |v| as well.  Both beat replication
  // but the *storage* grows with history (next test).
  CasCluster c(small());
  Rng rng(3);
  const std::size_t value_size = 10000;
  c.write_sync(0, 0, rng.bytes(value_size));
  const OpId write_op = make_op_id(1, 1);
  const OpId read_op = make_op_id(10000, 1);
  c.read_sync(0, 0);
  c.sim().run();

  const double write_cost =
      static_cast<double>(c.net().costs().by_op(write_op).data_bytes) /
      static_cast<double>(value_size);
  const double read_cost =
      static_cast<double>(c.net().costs().by_op(read_op).data_bytes) /
      static_cast<double>(value_size);
  EXPECT_NEAR(write_cost, 9.0 / 5.0, 0.05);
  EXPECT_LE(read_cost, 9.0 / 5.0 + 0.05);
}

TEST(Cas, StorageGrowsWithHistory) {
  // Plain CAS never garbage-collects pre-written versions: after m writes
  // every server holds m + 1 elements.  (This is exactly the cost LDS's
  // layered design avoids: its L2 holds one version, Lemma V.3.)
  CasCluster c(small());
  Rng rng(4);
  const std::size_t value_size = 500;
  const std::uint64_t baseline = c.storage_bytes();
  for (int m = 1; m <= 4; ++m) {
    c.write_sync(0, 0, rng.bytes(value_size));
    c.sim().run();
    EXPECT_EQ(c.server(0).versions(0), static_cast<std::size_t>(m) + 1);
  }
  EXPECT_GT(c.storage_bytes(), baseline + 4 * 9 * (value_size / 5));
}

TEST(Cas, WellFormednessEnforced) {
  CasCluster c(small());
  c.writer(0).write(0, Bytes{1});
  EXPECT_DEATH(c.writer(0).write(0, Bytes{2}), "one operation at a time");
}

}  // namespace
}  // namespace lds::baselines
