// The Section-V closed forms: spot values, asymptotic shapes and the
// cross-formula identities the paper states.
#include <gtest/gtest.h>

#include "lds/analysis.h"
#include "lds/config.h"

namespace lds::core::analysis {
namespace {

TEST(Analysis, MbrFractions) {
  // k = d = 80 (Fig. 6): beta = 2/(80 * 81), alpha = d beta = 2/81.
  EXPECT_DOUBLE_EQ(mbr_beta_frac(80, 80), 2.0 / (80.0 * 81.0));
  EXPECT_DOUBLE_EQ(mbr_alpha_frac(80, 80), 2.0 / 81.0);
  // alpha = d * beta always.
  for (std::size_t k = 1; k <= 12; ++k) {
    for (std::size_t d = k; d <= 16; ++d) {
      EXPECT_DOUBLE_EQ(mbr_alpha_frac(k, d),
                       static_cast<double>(d) * mbr_beta_frac(k, d));
    }
  }
}

TEST(Analysis, WriteCostSpotValues) {
  // Lemma V.2: n1 + n1 n2 2d/(k(2d-k+1)).
  EXPECT_DOUBLE_EQ(write_cost(6, 8, 4, 4), 6.0 + 6.0 * 8.0 * 8.0 / (4 * 5.0));
  // Theta(n1): doubling n (with the same proportions) roughly doubles cost.
  const double c1 = write_cost(50, 50, 40, 40);
  const double c2 = write_cost(100, 100, 80, 80);
  EXPECT_NEAR(c2 / c1, 2.0, 0.05);
}

TEST(Analysis, ReadCostSpotValuesAndDeltaJump) {
  const double base = read_cost(10, 10, 8, 8, false);
  EXPECT_NEAR(base, 10.0 * 2.25 * 2.0 * 8.0 / (8.0 * 9.0), 1e-12);
  EXPECT_DOUBLE_EQ(read_cost(10, 10, 8, 8, true), base + 10.0);
  // Theta(1): growing n leaves the contention-free cost bounded.
  EXPECT_LT(read_cost(200, 200, 160, 160, false), 6.0);
  EXPECT_GT(read_cost(200, 200, 160, 160, true), 200.0);
}

TEST(Analysis, StorageCostMatchesPaperExample) {
  // Fig. 6 commentary: L2 cost per object < 3 at n2 = 100, k = d = 80;
  // replication would cost 100.
  const double per_object = l2_storage_per_object(100, 80, 80);
  EXPECT_NEAR(per_object, 2.469, 0.001);
  EXPECT_LT(per_object, 3.0);
}

TEST(Analysis, MbrAtMostTwiceMsrStorage) {
  // Remark 2 for a range of (k, d).
  for (std::size_t k = 1; k <= 20; ++k) {
    for (std::size_t d = k; d <= 24; ++d) {
      const double mbr = l2_storage_per_object(30, k, d);
      const double msr = msr_storage_per_object(30, k);
      EXPECT_GE(mbr, msr);
      EXPECT_LE(mbr, 2.0 * msr + 1e-9);
    }
  }
}

TEST(Analysis, RsReadCostIsOmegaN1) {
  EXPECT_GT(rs_read_cost(100, 80, false), 100.0);
  EXPECT_GT(rs_read_cost(100, 80, true), 200.0);
}

TEST(Analysis, LatencyBounds) {
  EXPECT_DOUBLE_EQ(write_latency_bound(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(extended_write_latency_bound(1, 1, 10), 25.0);
  // At tiny tau2, the write-path term dominates the extended write.
  EXPECT_DOUBLE_EQ(extended_write_latency_bound(1, 1, 0.1), 6.0);
  EXPECT_DOUBLE_EQ(read_latency_bound(1, 1, 10), 26.0);
  // At small tau2 the two maxima cross over.
  EXPECT_DOUBLE_EQ(read_latency_bound(1, 1, 1), 9.0);
}

TEST(Analysis, Fig6Crossover) {
  // With theta = 100, mu = 10, n1 = 100: L1 bound is 250k; the L2 cost
  // passes it near N ~ 101k objects - the crossover visible in Fig. 6.
  const double l1 = l1_storage_bound(100, 100, 10);
  EXPECT_DOUBLE_EQ(l1, 250000.0);
  EXPECT_LT(l2_storage_multi(100000, 100, 80), l1 + 1e4);
  EXPECT_GT(l2_storage_multi(110000, 100, 80), l1);
}

TEST(Config, ValidationRules) {
  LdsConfig good;
  good.n1 = 6;
  good.f1 = 1;
  good.n2 = 8;
  good.f2 = 2;
  good.validate();  // no abort
  EXPECT_EQ(good.k(), 4u);
  EXPECT_EQ(good.d(), 4u);
  EXPECT_EQ(good.l1_quorum(), 5u);
  EXPECT_EQ(good.l2_quorum(), 6u);

  LdsConfig bad_f1 = good;
  bad_f1.f1 = 3;  // f1 < n1/2 fails
  EXPECT_DEATH(bad_f1.validate(), "f1 < n1/2");

  LdsConfig bad_f2 = good;
  bad_f2.f2 = 3;  // f2 < n2/3 fails (3*3 !< 8)
  EXPECT_DEATH(bad_f2.validate(), "f2 < n2/3");

  LdsConfig bad_kd = good;
  bad_kd.n1 = 10;
  bad_kd.f1 = 1;  // k = 8 > d = 4
  EXPECT_DEATH(bad_kd.validate(), "d >= k");

  LdsConfig bad_field = good;
  bad_field.n1 = 200;
  bad_field.f1 = 40;   // k = 120
  bad_field.n2 = 130;  // n = 330 > 255
  bad_field.f2 = 5;
  EXPECT_DEATH(bad_field.validate(), "GF");
}

TEST(Config, SymmetricFactory) {
  const LdsConfig cfg = LdsConfig::symmetric(100, 10);
  EXPECT_EQ(cfg.k(), 80u);
  EXPECT_EQ(cfg.d(), 80u);
  EXPECT_EQ(cfg.n(), 200u);
}

}  // namespace
}  // namespace lds::core::analysis
