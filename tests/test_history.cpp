// The atomicity checker itself: it must accept legal histories and reject
// each class of violation (so that the protocol tests' "atomic" verdicts
// mean something).
#include <gtest/gtest.h>

#include "lds/history.h"

namespace lds::core {
namespace {

const Bytes kV0{};

Bytes val(std::uint8_t b) { return Bytes{b}; }

TEST(History, SequentialWritesAndReadsAreAtomic) {
  History h;
  auto w1 = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w1, Tag{1, 1}, val(1));
  h.on_response(w1, 1.0, Tag{1, 1}, val(1));

  auto r1 = h.on_invoke(2, OpKind::Read, 0, 9, 2.0);
  h.on_response(r1, 3.0, Tag{1, 1}, val(1));

  auto w2 = h.on_invoke(3, OpKind::Write, 0, 1, 4.0);
  h.set_payload(w2, Tag{2, 1}, val(2));
  h.on_response(w2, 5.0, Tag{2, 1}, val(2));

  auto r2 = h.on_invoke(4, OpKind::Read, 0, 9, 6.0);
  h.on_response(r2, 7.0, Tag{2, 1}, val(2));

  EXPECT_TRUE(h.check_atomicity(kV0).ok);
  EXPECT_TRUE(h.all_complete());
}

TEST(History, InitialReadReturnsV0) {
  History h;
  auto r = h.on_invoke(1, OpKind::Read, 0, 9, 0.0);
  h.on_response(r, 1.0, kTag0, kV0);
  EXPECT_TRUE(h.check_atomicity(kV0).ok);
}

TEST(History, InitialReadWrongValueRejected) {
  History h;
  auto r = h.on_invoke(1, OpKind::Read, 0, 9, 0.0);
  h.on_response(r, 1.0, kTag0, val(7));
  auto res = h.check_atomicity(kV0);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("initial value"), std::string::npos);
}

TEST(History, StaleReadAfterWriteRejected) {
  History h;
  auto w = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w, Tag{1, 1}, val(1));
  h.on_response(w, 1.0, Tag{1, 1}, val(1));
  // Read invoked after the write completed but returning t0: stale.
  auto r = h.on_invoke(2, OpKind::Read, 0, 9, 2.0);
  h.on_response(r, 3.0, kTag0, kV0);
  EXPECT_FALSE(h.check_atomicity(kV0).ok);
}

TEST(History, ReadOfUnknownTagRejected) {
  History h;
  auto r = h.on_invoke(1, OpKind::Read, 0, 9, 0.0);
  h.on_response(r, 1.0, Tag{5, 3}, val(9));
  auto res = h.check_atomicity(kV0);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("no known write"), std::string::npos);
}

TEST(History, ReadOfWrongValueRejected) {
  History h;
  auto w = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w, Tag{1, 1}, val(1));
  h.on_response(w, 1.0, Tag{1, 1}, val(1));
  auto r = h.on_invoke(2, OpKind::Read, 0, 9, 2.0);
  h.on_response(r, 3.0, Tag{1, 1}, val(2));
  EXPECT_FALSE(h.check_atomicity(kV0).ok);
}

TEST(History, DuplicateWriteTagsRejected) {
  History h;
  for (int i = 0; i < 2; ++i) {
    auto w = h.on_invoke(static_cast<OpId>(i + 1), OpKind::Write, 0, 1,
                         i * 2.0);
    h.set_payload(w, Tag{1, 1}, val(1));
    h.on_response(w, i * 2.0 + 1.0, Tag{1, 1}, val(1));
  }
  auto res = h.check_atomicity(kV0);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("share tag"), std::string::npos);
}

TEST(History, WriteMustExceedPrecedingTags) {
  History h;
  auto w1 = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w1, Tag{2, 1}, val(2));
  h.on_response(w1, 1.0, Tag{2, 1}, val(2));
  // Later write with a smaller tag: real-time order violated.
  auto w2 = h.on_invoke(2, OpKind::Write, 0, 2, 2.0);
  h.set_payload(w2, Tag{1, 2}, val(1));
  h.on_response(w2, 3.0, Tag{1, 2}, val(1));
  EXPECT_FALSE(h.check_atomicity(kV0).ok);
}

TEST(History, ConcurrentOpsAreUnconstrained) {
  History h;
  // Two overlapping writes may order either way.
  auto w1 = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w1, Tag{2, 1}, val(2));
  auto w2 = h.on_invoke(2, OpKind::Write, 0, 2, 0.5);
  h.set_payload(w2, Tag{1, 2}, val(1));
  h.on_response(w1, 10.0, Tag{2, 1}, val(2));
  h.on_response(w2, 10.5, Tag{1, 2}, val(1));
  EXPECT_TRUE(h.check_atomicity(kV0).ok);
}

TEST(History, ReadMayReturnIncompleteWriteValue) {
  History h;
  // Writer crashed mid-write (no response), but its value was exposed.
  auto w = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w, Tag{1, 1}, val(1));
  auto r = h.on_invoke(2, OpKind::Read, 0, 9, 5.0);
  h.on_response(r, 6.0, Tag{1, 1}, val(1));
  EXPECT_TRUE(h.check_atomicity(kV0).ok);
  EXPECT_EQ(h.incomplete(), 1u);
  EXPECT_FALSE(h.all_complete());
}

TEST(History, ObjectsCheckedIndependently) {
  History h;
  auto w = h.on_invoke(1, OpKind::Write, /*obj=*/1, 1, 0.0);
  h.set_payload(w, Tag{1, 1}, val(1));
  h.on_response(w, 1.0, Tag{1, 1}, val(1));
  // Object 2 read at t0 is fine even though object 1 has a newer write.
  auto r = h.on_invoke(2, OpKind::Read, /*obj=*/2, 9, 2.0);
  h.on_response(r, 3.0, kTag0, kV0);
  EXPECT_TRUE(h.check_atomicity(kV0).ok);
}

TEST(History, MonotoneReadsEnforced) {
  History h;
  auto w = h.on_invoke(1, OpKind::Write, 0, 1, 0.0);
  h.set_payload(w, Tag{3, 1}, val(3));
  h.on_response(w, 1.0, Tag{3, 1}, val(3));
  auto w2 = h.on_invoke(2, OpKind::Write, 0, 1, 1.5);
  h.set_payload(w2, Tag{4, 1}, val(4));
  h.on_response(w2, 2.5, Tag{4, 1}, val(4));
  auto r1 = h.on_invoke(3, OpKind::Read, 0, 9, 3.0);
  h.on_response(r1, 4.0, Tag{4, 1}, val(4));
  // A later read regressing to tag 3 violates atomicity.
  auto r2 = h.on_invoke(4, OpKind::Read, 0, 9, 5.0);
  h.on_response(r2, 6.0, Tag{3, 1}, val(3));
  EXPECT_FALSE(h.check_atomicity(kV0).ok);
}

}  // namespace
}  // namespace lds::core
