// Automated back-end repair: failure detection soundness/completeness under
// bounded latency, end-to-end replace-and-repair of all tracked objects,
// and continued correct service afterwards.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/rng.h"
#include "lds/cluster.h"
#include "lds/repair_manager.h"

namespace lds::core {
namespace {

struct Fixture {
  explicit Fixture(double tau2 = 4.0) {
    LdsCluster::Options opt;
    opt.cfg.n1 = 6;
    opt.cfg.f1 = 1;  // k = 4
    opt.cfg.n2 = 8;
    opt.cfg.f2 = 2;  // d = 4
    opt.writers = 2;
    opt.readers = 1;
    opt.tau2 = tau2;
    cluster = std::make_unique<LdsCluster>(opt);

    RepairManager::Options mopt;
    mopt.heartbeat_period = 5.0;
    mopt.suspect_after = 2 * tau2 + 3 * mopt.heartbeat_period;
    manager = std::make_unique<RepairManager>(
        cluster->net(), cluster->ctx_ptr(), mopt,
        [this](std::size_t i) -> ServerL2& {
          cluster->replace_l2(i);
          return cluster->l2(i);
        });
  }

  std::unique_ptr<LdsCluster> cluster;
  std::unique_ptr<RepairManager> manager;
};

TEST(RepairManager, NoFalseSuspicionsWhenAllAlive) {
  Fixture f;
  f.manager->start();
  f.cluster->sim().run_until(200.0);
  EXPECT_EQ(f.manager->suspected_count(), 0u);
  EXPECT_EQ(f.manager->repairs_started(), 0u);
}

TEST(RepairManager, DetectsAndRepairsCrashedServer) {
  Fixture f;
  Rng rng(1);
  const Bytes v0 = rng.bytes(100);
  const Bytes v1 = rng.bytes(100);
  f.cluster->write_sync(0, /*obj=*/0, v0);
  f.cluster->write_sync(1, /*obj=*/1, v1);
  f.cluster->settle();
  f.manager->track_object(0);
  f.manager->track_object(1);
  f.manager->start();

  const Bytes expected0 = f.cluster->l2(4).stored_element(0);
  const Bytes expected1 = f.cluster->l2(4).stored_element(1);
  f.cluster->sim().after(10.0, [&] { f.cluster->crash_l2(4); });
  f.cluster->sim().run_until(500.0);
  f.manager->stop();
  f.cluster->settle();

  EXPECT_EQ(f.manager->repairs_started(), 2u);
  EXPECT_EQ(f.manager->repairs_completed(), 2u);
  EXPECT_EQ(f.manager->repairs_failed(), 0u);
  // The replacement converged to byte-identical (exact-repair) state and
  // heartbeat coverage resumed (no longer suspected).
  EXPECT_EQ(f.cluster->l2(4).stored_element(0), expected0);
  EXPECT_EQ(f.cluster->l2(4).stored_element(1), expected1);
  EXPECT_FALSE(f.manager->is_suspected(4));
}

TEST(RepairManager, SystemServesReadsThroughRepairCycle) {
  Fixture f;
  Rng rng(2);
  const Bytes v = rng.bytes(150);
  const Tag wt = f.cluster->write_sync(0, 0, v);
  f.cluster->settle();
  f.manager->track_object(0);
  f.manager->start();

  f.cluster->sim().after(8.0, [&] { f.cluster->crash_l2(0); });
  f.cluster->sim().run_until(400.0);
  f.manager->stop();
  f.cluster->settle();

  // Crash two more servers (f2 = 2 budget spent on *live* failures); the
  // repaired server 0 must carry helper quorums now.
  f.cluster->crash_l2(6);
  f.cluster->crash_l2(7);
  auto [rt, rv] = f.cluster->read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(f.cluster->history().check_atomicity({}).ok);
}

TEST(RepairManager, RepairConcurrentWithWritesConverges) {
  Fixture f;
  Rng rng(3);
  f.cluster->write_sync(0, 0, rng.bytes(80));
  f.cluster->settle();
  f.manager->track_object(0);
  f.manager->start();

  // Crash a server, then keep writing while detection + repair run.
  f.cluster->sim().after(6.0, [&] { f.cluster->crash_l2(3); });
  f.cluster->write_at(20.0, 0, 0, rng.bytes(80));
  f.cluster->write_at(45.0, 1, 0, rng.bytes(80));
  f.cluster->sim().run_until(600.0);
  f.manager->stop();
  f.cluster->settle();

  EXPECT_EQ(f.manager->repairs_completed(), 1u);
  // Converged: the repaired server holds the same tag as its peers.
  EXPECT_EQ(f.cluster->l2(3).stored_tag(0), f.cluster->l2(2).stored_tag(0));
  EXPECT_TRUE(f.cluster->history().all_complete());
  EXPECT_TRUE(f.cluster->history().check_atomicity({}).ok);
}

TEST(RepairManager, RepairUnderSustainedWriteLoadTracksCommittedTag) {
  // Regeneration races a closed-loop writer that keeps advancing the
  // committed tag for the whole detection + repair window.  The repaired
  // server must converge to whatever tag is current *when its repair round
  // finally wins*, not the tag at crash time.
  Fixture f;
  Rng rng(7);
  f.cluster->write_sync(0, 0, rng.bytes(60));
  f.cluster->settle();
  const Tag tag_at_crash = f.cluster->l2(5).stored_tag(0);
  f.manager->track_object(0);
  f.manager->start();

  std::map<Tag, Bytes> written;  // tag -> value, to check exact repair below
  std::function<void(int)> write_next;
  write_next = [&](int left) {
    if (left == 0) return;
    const Bytes v = rng.bytes(60);
    f.cluster->writer(0).write(0, v, [&, v, left](Tag t) {
      written[t] = v;
      f.cluster->sim().after(6.0, [&, left] { write_next(left - 1); });
    });
  };
  f.cluster->sim().after(4.0, [&] { f.cluster->crash_l2(5); });
  f.cluster->sim().after(5.0, [&] { write_next(20); });
  f.cluster->sim().run_until(900.0);
  f.manager->stop();
  f.cluster->settle();

  EXPECT_GE(f.manager->repairs_completed(), 1u);
  EXPECT_EQ(f.manager->repairs_failed(), 0u);
  // The committed tag moved well past the crash-time tag...
  const Tag final_tag = f.cluster->l2(2).stored_tag(0);
  EXPECT_GT(final_tag, tag_at_crash);
  // ...and the replacement landed on the final tag with the exact-repair
  // element: byte-identical to encoding the final value at its coordinate.
  EXPECT_EQ(f.cluster->l2(5).stored_tag(0), final_tag);
  ASSERT_TRUE(written.contains(final_tag));
  EXPECT_EQ(f.cluster->l2(5).stored_element(0),
            f.cluster->ctx().code.encode_element(written.at(final_tag),
                                                 f.cluster->l2(5).code_index()));
  EXPECT_TRUE(f.cluster->history().all_complete());
  EXPECT_TRUE(f.cluster->history().check_atomicity({}).ok);
}

TEST(RepairManager, ReadsStayAtomicWhileRepairRacesWrites) {
  // Readers run concurrently with both the writer churn and the repair; the
  // whole interleaving must stay atomic and the post-repair read must see
  // the latest completed write.
  Fixture f;
  Rng rng(8);
  f.cluster->write_sync(0, 0, rng.bytes(90));
  f.cluster->settle();
  f.manager->track_object(0);
  f.manager->start();

  std::function<void(int)> write_next;
  std::function<void(int)> read_next;
  write_next = [&](int left) {
    if (left == 0) return;
    f.cluster->writer(1).write(0, rng.bytes(90), [&, left](Tag) {
      f.cluster->sim().after(9.0, [&, left] { write_next(left - 1); });
    });
  };
  read_next = [&](int left) {
    if (left == 0) return;
    f.cluster->reader(0).read(0, [&, left](Tag, Bytes) {
      f.cluster->sim().after(7.0, [&, left] { read_next(left - 1); });
    });
  };
  f.cluster->sim().after(3.0, [&] { f.cluster->crash_l2(1); });
  f.cluster->sim().after(1.0, [&] { write_next(15); });
  f.cluster->sim().after(2.0, [&] { read_next(15); });
  f.cluster->sim().run_until(900.0);
  f.manager->stop();
  f.cluster->settle();

  EXPECT_GE(f.manager->repairs_completed(), 1u);
  // With the budget now spent on two *fresh* crashes, the repaired server
  // must carry read quorums for the final value.
  const Tag latest = f.cluster->l2(1).stored_tag(0);
  f.cluster->crash_l2(6);
  f.cluster->crash_l2(7);
  auto [rt, rv] = f.cluster->read_sync(0, 0);
  EXPECT_GE(rt, latest);
  EXPECT_TRUE(f.cluster->history().all_complete());
  EXPECT_TRUE(f.cluster->history().check_atomicity({}).ok);
}

TEST(RepairManager, MultiObjectRepairUnderLoadConvergesAllObjects) {
  // Two tracked objects, writes advancing one of them during repair: the
  // replacement regenerates both, one at the stale tag, one at a fresh tag.
  Fixture f;
  Rng rng(9);
  f.cluster->write_sync(0, 0, rng.bytes(70));
  f.cluster->write_sync(1, 1, rng.bytes(70));
  f.cluster->settle();
  f.manager->track_object(0);
  f.manager->track_object(1);
  f.manager->start();

  std::function<void(int)> write_next;
  write_next = [&](int left) {
    if (left == 0) return;
    f.cluster->writer(0).write(1, rng.bytes(70), [&, left](Tag) {
      f.cluster->sim().after(8.0, [&, left] { write_next(left - 1); });
    });
  };
  f.cluster->sim().after(5.0, [&] { f.cluster->crash_l2(2); });
  f.cluster->sim().after(6.0, [&] { write_next(12); });
  f.cluster->sim().run_until(900.0);
  f.manager->stop();
  f.cluster->settle();

  EXPECT_EQ(f.manager->repairs_started(), 2u);
  EXPECT_EQ(f.manager->repairs_completed(), 2u);
  // Both objects converged to the same tag their healthy peers hold; the
  // untouched object 0 at its pre-crash tag, object 1 at a written tag.
  for (ObjectId obj : {ObjectId{0}, ObjectId{1}}) {
    EXPECT_EQ(f.cluster->l2(2).stored_tag(obj),
              f.cluster->l2(3).stored_tag(obj))
        << "object " << obj;
  }
  EXPECT_GT(f.cluster->l2(2).stored_tag(1), f.cluster->l2(2).stored_tag(0));
  EXPECT_TRUE(f.cluster->history().check_atomicity({}).ok);
}

TEST(RepairManager, HeartbeatsAreMetaOnly) {
  Fixture f;
  f.manager->start();
  f.cluster->sim().run_until(50.0);
  // Heartbeat traffic must not pollute normalized data costs.
  EXPECT_EQ(f.cluster->net().costs().total().data_bytes, 0u);
  EXPECT_GT(f.cluster->net().costs().total().meta_bytes, 0u);
}

}  // namespace
}  // namespace lds::core
