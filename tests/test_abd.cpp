// The ABD replication baseline: correctness (it feeds the E8 comparison, so
// its numbers must come from a sound implementation) and cost sanity.
#include <gtest/gtest.h>

#include "baselines/abd.h"
#include "common/rng.h"

namespace lds::baselines {
namespace {

AbdCluster::Options small() {
  AbdCluster::Options opt;
  opt.n = 5;
  opt.f = 2;
  opt.initial_value = Bytes{7};
  return opt;
}

TEST(Abd, WriteReadRoundTrip) {
  AbdCluster c(small());
  Rng rng(1);
  const Bytes v = rng.bytes(40);
  const Tag wt = c.write_sync(0, 0, v);
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_EQ(rv, v);
  EXPECT_TRUE(c.history().check_atomicity(Bytes{7}).ok);
}

TEST(Abd, InitialRead) {
  AbdCluster c(small());
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, kTag0);
  EXPECT_EQ(rv, (Bytes{7}));
}

TEST(Abd, ToleratesMinorityCrashes) {
  AbdCluster c(small());
  Rng rng(2);
  c.crash_server(0);
  c.crash_server(3);
  const Tag wt = c.write_sync(0, 0, rng.bytes(30));
  auto [rt, rv] = c.read_sync(0, 0);
  EXPECT_EQ(rt, wt);
  EXPECT_TRUE(c.history().all_complete());
}

TEST(Abd, SequentialTagsGrow) {
  AbdCluster c(small());
  Rng rng(3);
  Tag prev = kTag0;
  for (int i = 0; i < 4; ++i) {
    const Tag t = c.write_sync(0, 0, rng.bytes(16));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Abd, RandomizedConcurrencyStaysAtomic) {
  for (int seed = 0; seed < 10; ++seed) {
    AbdCluster::Options opt = small();
    opt.writers = 2;
    opt.readers = 2;
    opt.exponential_latency = true;
    opt.seed = static_cast<std::uint64_t>(seed) + 1;
    AbdCluster c(opt);
    Rng rng(static_cast<std::uint64_t>(seed) + 100);

    for (std::size_t w = 0; w < 2; ++w) {
      const double at = rng.uniform_real(0.0, 2.0);
      c.sim().at(at, [&c, w, &rng] {
        c.writer(w).write(0, Bytes{static_cast<std::uint8_t>(w)},
                          [&c, w](Tag) {
                            c.writer(w).write(
                                0, Bytes{static_cast<std::uint8_t>(w + 10)});
                          });
      });
    }
    for (std::size_t r = 0; r < 2; ++r) {
      const double at = rng.uniform_real(0.0, 4.0);
      c.sim().at(at, [&c, r] {
        c.reader(r).read(0, [&c, r](Tag, Bytes) { c.reader(r).read(0); });
      });
    }
    c.sim().run();
    EXPECT_TRUE(c.history().all_complete()) << "seed " << seed;
    const auto verdict = c.history().check_atomicity(Bytes{7});
    EXPECT_TRUE(verdict.ok) << verdict.violation << " seed " << seed;
  }
}

TEST(Abd, CostProfile) {
  // Write ~ n |v| (update phase), read ~ 2n |v| (query responses carry the
  // value from all n, write-back to all n) - the baseline columns of E8.
  AbdCluster::Options opt = small();
  AbdCluster c(opt);
  Rng rng(4);
  const std::size_t value_size = 10000;
  c.write_sync(0, 0, rng.bytes(value_size));
  const OpId write_op = make_op_id(1, 1);
  const OpId read_op = make_op_id(10000, 1);
  c.read_sync(0, 0);
  c.sim().run();

  const double write_cost =
      static_cast<double>(c.net().costs().by_op(write_op).data_bytes) /
      static_cast<double>(value_size);
  const double read_cost =
      static_cast<double>(c.net().costs().by_op(read_op).data_bytes) /
      static_cast<double>(value_size);
  EXPECT_DOUBLE_EQ(write_cost, 5.0);
  EXPECT_DOUBLE_EQ(read_cost, 10.0);
  // Storage: n replicas.
  EXPECT_EQ(c.storage_bytes(), 5u * value_size);
}

TEST(Abd, WellFormednessEnforced) {
  AbdCluster c(small());
  c.writer(0).write(0, Bytes{1});
  EXPECT_DEATH(c.writer(0).write(0, Bytes{2}), "one operation at a time");
}

}  // namespace
}  // namespace lds::baselines
