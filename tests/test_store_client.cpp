// store::Client — the unified client API: Status taxonomy (NotFound,
// AdmissionReject, DeadlineExceeded, Aborted, Unavailable, InvalidArgument),
// per-op deadlines enforced via the engine clock under injected crashes,
// retry policies, conditional puts (put_if_version), multi_put/multi_get
// edge cases, zero-copy Value plumbing, and the Regular read mode.
#include <gtest/gtest.h>

#include <atomic>

#include <string>
#include <vector>

#include "store/client.h"
#include "store_test_util.h"

namespace lds::store {
namespace {

StoreOptions small_options(std::size_t shards) {
  StoreOptions opt;
  opt.shards = shards;
  opt.writers_per_shard = 2;
  opt.readers_per_shard = 2;
  opt.seed = 7;
  return opt;
}

// ---- Status-taxonomy round trips --------------------------------------------

TEST(StoreClient, PutGetRoundTripWithTypedVersions) {
  StoreService svc(small_options(2));
  Client client(svc);

  const auto put = client.put_sync("alpha", Bytes{1, 2, 3});
  ASSERT_TRUE(put.ok()) << put.status().to_string();
  EXPECT_TRUE(put.value().known());

  const auto get = client.get_sync("alpha");
  ASSERT_TRUE(get.ok()) << get.status().to_string();
  EXPECT_EQ(get.value().value, (Bytes{1, 2, 3}));
  EXPECT_EQ(get.value().version, put.value());
}

TEST(StoreClient, UnwrittenKeyIsNotFoundAndNeverInterned) {
  StoreService svc(small_options(2));
  Client client(svc);
  const auto get = client.get_sync("ghost");
  ASSERT_FALSE(get.ok());
  EXPECT_TRUE(get.status().is(StatusCode::kNotFound))
      << get.status().to_string();
  // Probing reads must not grow per-shard state.
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    EXPECT_EQ(svc.shard_objects(s), 0u);
  }
  EXPECT_GE(svc.metrics().counter_total("gets_not_found"), 1u);
}

TEST(StoreClient, EmptyKeyIsInvalidArgument) {
  StoreService svc(small_options(1));
  Client client(svc);
  EXPECT_TRUE(client.get_sync("").status().is(StatusCode::kInvalidArgument));
  EXPECT_TRUE(client.put_sync("", Bytes{1})
                  .status()
                  .is(StatusCode::kInvalidArgument));
}

TEST(StoreClient, ClosedClientIsUnavailable) {
  StoreService svc(small_options(1));
  Client client(svc);
  ASSERT_TRUE(client.put_sync("k", Bytes{1}).ok());
  client.close();
  EXPECT_TRUE(client.closed());
  EXPECT_TRUE(client.get_sync("k").status().is(StatusCode::kUnavailable));
  EXPECT_TRUE(
      client.put_sync("k", Bytes{2}).status().is(StatusCode::kUnavailable));
  // The service itself is unaffected: a fresh client still works.
  Client reopened(svc);
  EXPECT_TRUE(reopened.get_sync("k").ok());
}

TEST(StoreClient, OverAdmissionIsAdmissionRejectStatus) {
  auto opt = small_options(1);
  opt.batch_window = 50.0;  // keep accepted puts queued
  opt.admission_limit = 2;
  StoreService svc(opt);
  Client client(svc);

  std::vector<Status> rejected;
  std::size_t accepted = 0;
  for (int i = 0; i < 5; ++i) {
    client.put("k" + std::to_string(i), Bytes{1},
               [&](const PutResult& r) {
                 if (r.ok) {
                   ++accepted;
                 } else {
                   rejected.push_back(r.status);
                 }
               });
  }
  ASSERT_EQ(rejected.size(), 3u);  // rejections complete immediately
  for (const auto& s : rejected) {
    EXPECT_TRUE(s.is(StatusCode::kAdmissionReject)) << s.to_string();
    EXPECT_NE(s.message().find("limit"), std::string::npos);
  }
  svc.quiesce();
  EXPECT_EQ(accepted, 2u);
}

// ---- deadlines --------------------------------------------------------------

TEST(StoreClient, DeadlineExpiresUnderInjectedCrashes) {
  auto opt = small_options(1);
  opt.enable_repair = false;  // crashed servers stay down
  StoreService svc(opt);
  Client client(svc);
  ASSERT_TRUE(client.put_sync("k", Bytes{1}).ok());

  // Crash beyond the L1 budget (f1 = 1): the write quorum f1 + k = 5 of
  // n1 = 6 becomes unreachable, so ops stall forever — only the deadline
  // (an engine-clock task on the shard's lane) can complete them.
  auto* lds = svc.shard_lds(0);
  ASSERT_NE(lds, nullptr);
  lds->crash_l1(0);
  lds->crash_l1(1);

  OpOptions opts;
  opts.deadline = 25.0;
  const auto put = client.put_sync("k", Bytes{2}, opts);
  ASSERT_FALSE(put.ok());
  EXPECT_TRUE(put.status().is(StatusCode::kDeadlineExceeded))
      << put.status().to_string();

  const auto get = client.get_sync("k", opts);
  ASSERT_FALSE(get.ok());
  EXPECT_TRUE(get.status().is(StatusCode::kDeadlineExceeded));
  // The stalled ops keep the service non-idle; tear down without quiesce.
}

TEST(StoreClient, DeadlineExpiresOnParallelEngineLanes) {
  auto opt = small_options(2);
  opt.engine_mode = net::EngineMode::Parallel;
  opt.engine_threads = 2;
  opt.enable_repair = false;
  StoreService svc(opt);
  Client client(svc);
  ASSERT_TRUE(client.put_sync("k", Bytes{1}).ok());

  // Stall the key's shard the same way, via its own lane.
  const std::size_t shard = svc.router().shard_of("k");
  auto* lds = svc.shard_lds(shard);
  ASSERT_NE(lds, nullptr);
  std::atomic<bool> crashed{false};
  svc.engine().post(svc.shard_lane(shard), [&] {
    lds->crash_l1(0);
    lds->crash_l1(1);
    crashed.store(true, std::memory_order_release);
  });
  svc.engine().drain_until(
      [&] { return crashed.load(std::memory_order_acquire); });

  OpOptions opts;
  opts.deadline = 25.0;
  const auto put = client.put_sync("k", Bytes{2}, opts);
  ASSERT_FALSE(put.ok());
  EXPECT_TRUE(put.status().is(StatusCode::kDeadlineExceeded))
      << put.status().to_string();
}

TEST(StoreClient, GenerousDeadlineDoesNotFireOnHealthyOps) {
  StoreService svc(small_options(2));
  Client client(svc);
  OpOptions opts;
  opts.deadline = 10'000.0;
  ASSERT_TRUE(client.put_sync("k", Bytes{9}, opts).ok());
  const auto get = client.get_sync("k", opts);
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value().value, Bytes{9});
  svc.quiesce();  // leftover deadline timers drain as no-ops
  expect_all_histories_clean(svc);
}

// ---- retries ----------------------------------------------------------------

TEST(StoreClient, RetryPolicyRecoversFromAdmissionReject) {
  auto opt = small_options(1);
  opt.admission_limit = 1;
  opt.batch_window = 50.0;  // the first put holds its slot until the flush
  StoreService svc(opt);
  Client client(svc);

  bool first_done = false;
  client.put("hold", Bytes{1}, [&](const PutResult& r) {
    EXPECT_TRUE(r.ok);
    first_done = true;
  });

  OpOptions opts;
  opts.retry.max_attempts = 6;
  opts.retry.backoff = 30.0;
  PutResult second;
  bool second_done = false;
  client.put(
      "retry", Bytes{2},
      [&](const PutResult& r) {
        second = r;
        second_done = true;
      },
      opts);
  // Without retries this would have been rejected immediately.
  EXPECT_FALSE(second_done);

  svc.quiesce([&] { return first_done && second_done; });
  ASSERT_TRUE(second_done);
  EXPECT_TRUE(second.ok) << second.error;
  EXPECT_GE(svc.metrics().counter_total("puts_rejected"), 1u);
  expect_all_histories_clean(svc);
}

TEST(StoreClient, RetriesExhaustedSurfaceTheLastReject) {
  auto opt = small_options(1);
  opt.admission_limit = 1;
  opt.batch_window = 1e6;  // the slot never frees within the test horizon
  StoreService svc(opt);
  Client client(svc);
  client.put("hold", Bytes{1}, {});

  OpOptions opts;
  opts.retry.max_attempts = 3;
  opts.retry.backoff = 1.0;
  const auto r = client.put_sync("again", Bytes{2}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().is(StatusCode::kAdmissionReject));
  EXPECT_EQ(svc.metrics().counter_total("puts_rejected"), 3u);
}

// ---- conditional puts -------------------------------------------------------

TEST(StoreClient, PutIfVersionHappyPath) {
  StoreService svc(small_options(2));
  Client client(svc);
  const auto v1 = client.put_sync("doc", Bytes{1});
  ASSERT_TRUE(v1.ok());

  const auto v2 = client.put_if_version_sync("doc", Bytes{2}, v1.value());
  ASSERT_TRUE(v2.ok()) << v2.status().to_string();
  EXPECT_GT(v2.value(), v1.value());  // versions are totally ordered

  const auto get = client.get_sync("doc");
  EXPECT_EQ(get.value().value, Bytes{2});
  EXPECT_EQ(get.value().version, v2.value());
  svc.quiesce();
}

TEST(StoreClient, PutIfVersionMismatchAborts) {
  StoreService svc(small_options(2));
  Client client(svc);
  const auto v1 = client.put_sync("doc", Bytes{1});
  ASSERT_TRUE(client.put_if_version_sync("doc", Bytes{2}, v1.value()).ok());

  // Same expected version again: the first conditional put won; this one
  // must abort, not silently overwrite.
  const auto stale = client.put_if_version_sync("doc", Bytes{3}, v1.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().is(StatusCode::kAborted))
      << stale.status().to_string();
  EXPECT_EQ(client.get_sync("doc").value().value, Bytes{2});
  EXPECT_GE(svc.metrics().counter_total("puts_aborted"), 1u);
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(StoreClient, PutIfVersionCreatesAbsentKeyAgainstT0) {
  StoreService svc(small_options(1));
  Client client(svc);
  // A never-written key's register holds v0 at t0.
  const auto created =
      client.put_if_version_sync("fresh", Bytes{7}, Version(kTag0));
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  EXPECT_EQ(client.get_sync("fresh").value().value, Bytes{7});

  // Against any other version an absent key aborts.
  const auto wrong = client.put_if_version_sync("absent", Bytes{1},
                                                Version(Tag{5, 1}));
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().is(StatusCode::kAborted));
  EXPECT_TRUE(client.get_sync("absent").status().is(StatusCode::kNotFound));
  svc.quiesce();
}

TEST(StoreClient, ConditionalPutNeverOverwritesARacingWrite) {
  auto opt = small_options(1);
  opt.batch_window = 5.0;  // window open while the conditional put arrives
  StoreService svc(opt);
  Client client(svc);
  const auto v1 = client.put_sync("hot", Bytes{1});

  // A plain put is sitting in the batch window when the conditional put
  // verifies.  Committing against v1 would silently overwrite it (the
  // classic verify-then-write lost update), so the guard must abort the
  // conditional put — never absorb it into the window, never report Ok.
  std::vector<PutResult> results(2);
  std::size_t done = 0;
  svc.put("hot", Bytes{2}, [&](const PutResult& r) {
    results[0] = r;
    ++done;
  });
  svc.put_if("hot", Bytes{3}, v1.value(), [&](const PutResult& r) {
    results[1] = r;
    ++done;
  });
  svc.quiesce();
  ASSERT_EQ(done, 2u);
  ASSERT_TRUE(results[0].ok);
  ASSERT_FALSE(results[1].ok);
  EXPECT_TRUE(results[1].status.is(StatusCode::kAborted))
      << results[1].error;
  EXPECT_EQ(svc.metrics().counter_total("puts_coalesced"), 0u);
  // The racing write survived; the CAS retry path (re-read, new expected
  // version) then succeeds with its own tag.
  const auto after = client.get_sync("hot");
  EXPECT_EQ(after.value().value, Bytes{2});
  const auto retry =
      client.put_if_version_sync("hot", Bytes{3}, after.value().version);
  ASSERT_TRUE(retry.ok()) << retry.status().to_string();
  EXPECT_NE(retry.value().tag(), results[0].tag);
  EXPECT_EQ(client.get_sync("hot").value().value, Bytes{3});
  svc.quiesce();
  expect_all_histories_clean(svc);
}

// ---- multi-key operations ---------------------------------------------------

TEST(StoreClient, EmptyMultiGetAndMultiPutFireExactlyOnce) {
  StoreService svc(small_options(2));
  Client client(svc);
  std::size_t get_fired = 0, put_fired = 0;
  client.multi_get({}, [&](std::vector<GetResult> r) {
    EXPECT_TRUE(r.empty());
    ++get_fired;
  });
  client.multi_put({}, [&](std::vector<PutResult> r) {
    EXPECT_TRUE(r.empty());
    ++put_fired;
  });
  EXPECT_EQ(get_fired, 1u);
  EXPECT_EQ(put_fired, 1u);
  // The sync wrappers must not hang on the empty gather either (this is the
  // quiesce-hang regression the gather guard exists for).
  EXPECT_TRUE(client.multi_get_sync({}).empty());
  EXPECT_TRUE(client.multi_put_sync({}).empty());
  EXPECT_TRUE(svc.multi_get_sync({}).empty());
  EXPECT_TRUE(svc.multi_put_sync({}).empty());
  svc.quiesce();
  EXPECT_EQ(svc.outstanding(), 0u);
}

TEST(StoreClient, MultiPutThenMultiGetSpansShardsInOrder) {
  StoreService svc(small_options(4));
  Client client(svc);
  std::vector<KeyValue> entries;
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < 12; ++i) {
    keys.push_back("mp-" + std::to_string(i));
    entries.push_back({keys.back(), Bytes{static_cast<std::uint8_t>(i)}});
  }
  const auto puts = client.multi_put_sync(std::move(entries));
  ASSERT_EQ(puts.size(), 12u);
  for (const auto& r : puts) ASSERT_TRUE(r.ok) << r.error;

  const auto gets = client.multi_get_sync(keys);
  ASSERT_EQ(gets.size(), 12u);
  for (std::size_t i = 0; i < gets.size(); ++i) {
    EXPECT_TRUE(gets[i].ok);
    EXPECT_EQ(gets[i].value, Bytes{static_cast<std::uint8_t>(i)});
    EXPECT_EQ(gets[i].version.tag(), puts[i].version.tag());
  }
  std::size_t populated = 0;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    populated += svc.shard_objects(s) > 0 ? 1 : 0;
  }
  EXPECT_GT(populated, 1u);
  svc.quiesce();
  expect_all_histories_clean(svc);
}

// ---- zero-copy value plumbing -----------------------------------------------

TEST(StoreClient, PutMovesHandlesNotPayloadCopies) {
  auto opt = small_options(1);
  opt.batch_window = 2.0;
  StoreService svc(opt);
  Client client(svc);

  const Value payload(Bytes(4096, 0xab));
  ASSERT_TRUE(client.put_sync("big", payload).ok());

  // The shard history's write record references the caller's buffer — the
  // payload moved through router -> batch window -> writer -> history as a
  // refcount, never as a byte copy.
  const auto& ops = svc.shard_history(0).ops();
  bool found = false;
  for (const auto& op : ops) {
    if (op.kind == core::OpKind::Write && op.complete) {
      EXPECT_TRUE(op.value.same_buffer(payload));
      found = true;
    }
  }
  EXPECT_TRUE(found);

  const auto get = client.get_sync("big");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value().value, payload);
  svc.quiesce();
}

// ---- read modes -------------------------------------------------------------

TEST(StoreClient, RegularReadModeUsesTheProvisionedPool) {
  auto opt = small_options(1);
  opt.regular_readers_per_shard = 2;
  StoreService svc(opt);
  Client client(svc);
  ASSERT_TRUE(client.put_sync("r", Bytes{1}).ok());

  OpOptions opts;
  opts.read_mode = ReadMode::Regular;
  const auto get = client.get_sync("r", opts);
  ASSERT_TRUE(get.ok()) << get.status().to_string();
  EXPECT_EQ(get.value().value, Bytes{1});
  svc.quiesce();
  // Histories mixing regular reads are verified with the regularity checker
  // (regular reads drop the mutual-monotonicity obligation).
  const auto verdict = svc.shard_history(0).check_regularity(Bytes{});
  EXPECT_TRUE(verdict.ok) << verdict.violation;
}

TEST(StoreClient, RegularReadModeWithoutPoolIsInvalidArgument) {
  StoreService svc(small_options(1));  // no regular pool provisioned
  Client client(svc);
  ASSERT_TRUE(client.put_sync("r", Bytes{1}).ok());
  OpOptions opts;
  opts.read_mode = ReadMode::Regular;
  const auto get = client.get_sync("r", opts);
  ASSERT_FALSE(get.ok());
  EXPECT_TRUE(get.status().is(StatusCode::kInvalidArgument))
      << get.status().to_string();
}

TEST(StoreClient, TagOnlyReadReturnsCommittedTagAndNoValueBytes) {
  StoreService svc(small_options(1));
  Client client(svc);
  const auto put = client.put_sync("k", Bytes{1, 2});
  ASSERT_TRUE(put.ok());

  OpOptions opts;
  opts.read_mode = ReadMode::TagOnly;
  const auto g = client.get_sync("k", opts);
  ASSERT_TRUE(g.ok()) << g.status().to_string();
  EXPECT_EQ(g.value().version.tag(), put.value().tag());
  EXPECT_TRUE(g.value().value.empty());
  EXPECT_GE(svc.metrics().counter_total("gets_tag_only"), 1u);
  EXPECT_EQ(svc.metrics().counter_total("gets"), 0u);
  svc.quiesce();
  // Tag-only reads carry no value and are not linearization-visible: the
  // shard history holds only the put.
  expect_all_histories_clean(svc);
}

// ---- client read cache ------------------------------------------------------

CacheOptions cache_opts(std::size_t capacity = 64, double ttl = 0.0) {
  CacheOptions c;
  c.enabled = true;
  c.capacity = capacity;
  c.ttl = ttl;
  return c;
}

TEST(StoreClientCache, ValidatedHitServesCachedValueWithoutValueBytes) {
  StoreService svc(small_options(2));
  Client client(svc, cache_opts());
  ASSERT_TRUE(client.cache_enabled());
  ASSERT_TRUE(client.put_sync("k", Bytes{1, 2, 3}).ok());
  EXPECT_EQ(client.cache_size(), 1u);  // write-through populated it

  const auto g = client.get_sync("k");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().value, (Bytes{1, 2, 3}));
  // Served from cache after one tag-only validation round: no full get
  // reached the server, and the 3 value bytes never crossed the boundary.
  EXPECT_EQ(client.metrics().counter_total("cache_hits"), 1u);
  EXPECT_EQ(client.metrics().counter_total("cache_validation_rounds"), 1u);
  EXPECT_EQ(client.metrics().counter_total("wire_value_bytes_saved"), 3u);
  EXPECT_GE(svc.metrics().counter_total("gets_tag_only"), 1u);
  EXPECT_EQ(svc.metrics().counter_total("gets"), 0u);
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(StoreClientCache, StaleVersionFallsThroughToFullReadAndRefreshes) {
  StoreService svc(small_options(2));
  Client cached(svc, cache_opts());
  Client other(svc);
  ASSERT_TRUE(cached.put_sync("k", Bytes{1}).ok());
  ASSERT_TRUE(other.put_sync("k", Bytes{2}).ok());  // cached entry now stale

  const auto g = cached.get_sync("k");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().value, Bytes{2});  // never the stale cached value
  EXPECT_EQ(cached.metrics().counter_total("cache_stale_validations"), 1u);
  EXPECT_EQ(cached.metrics().counter_total("cache_hits"), 0u);

  // The fallthrough refilled the entry: the next read validates and hits.
  const auto g2 = cached.get_sync("k");
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.value().value, Bytes{2});
  EXPECT_EQ(cached.metrics().counter_total("cache_hits"), 1u);
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(StoreClientCache, LocalWritesKeepTheCacheCurrent) {
  StoreService svc(small_options(1));
  Client client(svc, cache_opts());
  ASSERT_TRUE(client.put_sync("k", Bytes{1}).ok());
  ASSERT_TRUE(client.put_sync("k", Bytes{2}).ok());

  const auto g = client.get_sync("k");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().value, Bytes{2});
  EXPECT_EQ(client.metrics().counter_total("cache_hits"), 1u);
  EXPECT_EQ(client.metrics().counter_total("cache_stale_validations"), 0u);
  svc.quiesce();
}

TEST(StoreClientCache, AbortedConditionalPutInvalidatesTheEntry) {
  StoreService svc(small_options(1));
  Client client(svc, cache_opts());
  Client other(svc);
  const auto v1 = client.put_sync("doc", Bytes{1});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(other.put_if_version_sync("doc", Bytes{2}, v1.value()).ok());

  // Our conditional put against the outdated v1 aborts; the local entry
  // (still v1) is no longer trustworthy and is dropped, not served.
  const auto stale = client.put_if_version_sync("doc", Bytes{3}, v1.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().is(StatusCode::kAborted));
  EXPECT_GE(client.metrics().counter_total("cache_invalidations"), 1u);
  EXPECT_EQ(client.cache_size(), 0u);

  const auto g = client.get_sync("doc");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().value, Bytes{2});
  EXPECT_EQ(client.metrics().counter_total("cache_misses"), 1u);
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(StoreClientCache, TtlSkipsValidationUntilExpiry) {
  StoreService svc(small_options(1));
  Client client(svc, cache_opts(64, 5.0));
  ASSERT_TRUE(client.put_sync("k", Bytes{4}).ok());

  // Within the TTL: served locally, no round trip at all.
  const auto g1 = client.get_sync("k");
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1.value().value, Bytes{4});
  EXPECT_EQ(client.metrics().counter_total("cache_ttl_hits"), 1u);
  EXPECT_EQ(client.metrics().counter_total("cache_validation_rounds"), 0u);

  // Let the simulated clock pass the expiry: the next read validates again
  // (version unchanged, so still a hit) and restamps the freshness window.
  svc.sim().after(10.0, [] {});
  svc.quiesce();
  const auto g2 = client.get_sync("k");
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(client.metrics().counter_total("cache_validation_rounds"), 1u);
  EXPECT_EQ(client.metrics().counter_total("cache_hits"), 2u);
  EXPECT_EQ(svc.metrics().counter_total("gets"), 0u);  // never a full get
  svc.quiesce();
}

TEST(StoreClientCache, CapacityEvictsLeastRecentlyUsed) {
  StoreService svc(small_options(1));
  Client client(svc, cache_opts(2));
  ASSERT_TRUE(client.put_sync("a", Bytes{1}).ok());
  ASSERT_TRUE(client.put_sync("b", Bytes{2}).ok());
  ASSERT_TRUE(client.get_sync("a").ok());           // touch: "a" is MRU
  ASSERT_TRUE(client.put_sync("c", Bytes{3}).ok());  // evicts "b"
  EXPECT_EQ(client.cache_size(), 2u);

  const auto misses = client.metrics().counter_total("cache_misses");
  ASSERT_TRUE(client.get_sync("a").ok());  // survived the eviction
  EXPECT_EQ(client.metrics().counter_total("cache_misses"), misses);
  ASSERT_TRUE(client.get_sync("b").ok());  // evicted: miss, then refill
  EXPECT_EQ(client.metrics().counter_total("cache_misses"), misses + 1);
  svc.quiesce();
}

TEST(StoreClientCache, NonAtomicReadsBypassTheCache) {
  auto opt = small_options(1);
  opt.regular_readers_per_shard = 2;
  StoreService svc(opt);
  Client client(svc, cache_opts());
  ASSERT_TRUE(client.put_sync("r", Bytes{1}).ok());

  OpOptions opts;
  opts.read_mode = ReadMode::Regular;
  const auto g = client.get_sync("r", opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(client.metrics().counter_total("cache_hits"), 0u);
  EXPECT_EQ(client.metrics().counter_total("cache_validation_rounds"), 0u);
  EXPECT_GE(svc.metrics().counter_total("gets"), 1u);
  svc.quiesce();
}

TEST(StoreClientCache, DisabledCacheIsBitIdenticalToNoCacheClient) {
  // A client constructed with cache options left disabled must drive the
  // service exactly like a client that never heard of the cache: same op
  // results, same simulated event count.
  auto run = [](bool pass_disabled_options) {
    StoreService svc(small_options(2));
    Client client = pass_disabled_options ? Client(svc, CacheOptions{})
                                          : Client(svc);
    std::vector<Tag> tags;
    for (int k = 0; k < 3; ++k) {
      EXPECT_TRUE(client.put_sync("k" + std::to_string(k), Bytes{9}).ok());
    }
    for (int i = 0; i < 8; ++i) {
      const std::string key = "k" + std::to_string(i % 3);
      if (i % 2 == 0) {
        const auto p =
            client.put_sync(key, Bytes{static_cast<std::uint8_t>(i)});
        EXPECT_TRUE(p.ok());
        tags.push_back(p.value().tag());
      } else {
        const auto g = client.get_sync(key);
        EXPECT_TRUE(g.ok());
        tags.push_back(g.value().version.tag());
      }
    }
    svc.quiesce();
    EXPECT_FALSE(client.cache_enabled());
    return std::pair{tags, svc.sim().events_executed()};
  };
  const auto base = run(false);
  const auto disabled = run(true);
  EXPECT_EQ(base.first, disabled.first);
  EXPECT_EQ(base.second, disabled.second);
}

}  // namespace
}  // namespace lds::store
