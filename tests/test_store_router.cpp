// ShardRouter: routing determinism, load spread, and the consistent-hashing
// contract — membership changes move only the displaced fraction of the key
// space, verified against the router's own exact ring-measure accounting.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "store/shard_router.h"

namespace lds::store {
namespace {

std::string key(std::size_t i) { return "user:" + std::to_string(i) + ":obj"; }

TEST(ShardRouter, RoutingIsDeterministicAcrossInstances) {
  ShardRouter a(8), b(8);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.shard_of(key(i)), b.shard_of(key(i)));
    EXPECT_EQ(a.shard_of(key(i)), a.shard_of(key(i)));
  }
}

TEST(ShardRouter, DifferentSeedsRouteDifferently) {
  ShardRouter a(8);
  ShardRouter b(8, {64, 0xdeadbeef});
  std::size_t differ = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    differ += a.shard_of(key(i)) != b.shard_of(key(i)) ? 1 : 0;
  }
  EXPECT_GT(differ, 300u);  // ~7/8 expected
}

TEST(ShardRouter, SpreadsKeysAcrossAllShards) {
  const std::size_t kShards = 8;
  ShardRouter r(kShards);
  std::map<std::size_t, std::size_t> counts;
  const std::size_t kKeys = 8000;
  for (std::size_t i = 0; i < kKeys; ++i) ++counts[r.shard_of(key(i))];
  ASSERT_EQ(counts.size(), kShards);
  for (const auto& [shard, n] : counts) {
    // With 64 vnodes the split is uneven but bounded; each shard should get
    // a sane share of an 8-way split (expected 1000 keys).
    EXPECT_GT(n, kKeys / kShards / 4) << "shard " << shard;
    EXPECT_LT(n, kKeys / kShards * 4) << "shard " << shard;
  }
}

TEST(ShardRouter, OwnershipSumsToOneAndMatchesKeyCounts) {
  ShardRouter r(4);
  const auto own = r.ownership();
  double total = 0;
  for (double o : own) total += o;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Empirical key share tracks the exact ring measure.
  std::vector<std::size_t> counts(4, 0);
  const std::size_t kKeys = 20000;
  for (std::size_t i = 0; i < kKeys; ++i) ++counts[r.shard_of(key(i))];
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]) / kKeys, own[s], 0.02)
        << "shard " << s;
  }
}

TEST(ShardRouter, AddShardMovesOnlyTheNewShardsShare) {
  ShardRouter before(8);
  ShardRouter after(8);
  const std::size_t added = after.add_shard();
  EXPECT_EQ(added, 8u);

  const double moved = ShardRouter::moved_fraction(before, after);
  // Exactly the ranges the new shard claimed moved: its ownership measure.
  EXPECT_NEAR(moved, after.ownership()[added], 1e-12);
  // ~1/9 of the space, far from the ~8/9 a mod-hash reshard would move.
  EXPECT_GT(moved, 0.02);
  EXPECT_LT(moved, 0.30);

  // Keys that moved all moved *to* the new shard.
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto b = before.shard_of(key(i));
    const auto a = after.shard_of(key(i));
    if (b != a) {
      EXPECT_EQ(a, added) << key(i);
    }
  }
}

TEST(ShardRouter, RemoveShardOnlyReassignsItsKeys) {
  ShardRouter before(8);
  ShardRouter after(8);
  after.remove_shard(3);
  EXPECT_FALSE(after.is_live(3));
  EXPECT_EQ(after.num_live(), 7u);

  const double moved = ShardRouter::moved_fraction(before, after);
  EXPECT_NEAR(moved, before.ownership()[3], 1e-12);
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto b = before.shard_of(key(i));
    const auto a = after.shard_of(key(i));
    if (b != 3) {
      EXPECT_EQ(a, b) << key(i);  // survivors keep their keys
    } else {
      EXPECT_NE(a, 3u) << key(i);  // orphans land elsewhere
    }
  }
}

TEST(ShardRouter, MovedFractionOfIdenticalRingsIsZero) {
  ShardRouter a(5), b(5);
  EXPECT_EQ(ShardRouter::moved_fraction(a, b), 0.0);
}

TEST(ShardRouter, SingleShardOwnsEverything) {
  ShardRouter r(1);
  const auto own = r.ownership();
  EXPECT_NEAR(own[0], 1.0, 1e-9);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(r.shard_of(key(i)), 0u);
}

TEST(ShardRouter, MoreVnodesSmoothTheSplit) {
  // Max/min ownership spread should shrink as vnodes grow.
  auto spread = [](std::size_t vnodes) {
    ShardRouter r(8, {vnodes, 0x1d5a2d1f00c0ffeeull});
    const auto own = r.ownership();
    double lo = 1.0, hi = 0.0;
    for (double o : own) {
      lo = std::min(lo, o);
      hi = std::max(hi, o);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(256), spread(4));
}

}  // namespace
}  // namespace lds::store
