// MetricsRegistry thread-safety: concurrent counter/histogram writers from
// many threads, and snapshot consistency (a snapshot's totals must equal the
// sum of its global + per-shard sections even while writers are running).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "store/metrics.h"

namespace lds::store {
namespace {

TEST(MetricsThreading, ConcurrentWritersSumExactly) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  MetricsRegistry reg(kShards);
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      const std::size_t shard = t % kShards;
      // Cache the references once (the realistic hot-path shape) and also
      // exercise the name-lookup path concurrently.
      Counter& fast = reg.counter("ops", shard);
      Histogram& lat = reg.histogram("latency", shard);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        fast.inc();
        lat.record(static_cast<double>(i % 97));
        reg.counter("global_ops").inc();
        if (i % 64 == 0) reg.counter("rare", shard).inc(3);
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(reg.counter_total("ops"), kThreads * kPerThread);
  EXPECT_EQ(reg.counter_total("global_ops"), kThreads * kPerThread);
  EXPECT_EQ(reg.counter_total("rare"),
            kThreads * 3 * ((kPerThread + 63) / 64));
  std::uint64_t hist_count = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    hist_count += reg.histogram("latency", s).count();
    EXPECT_EQ(reg.histogram("latency", s).min(), 0.0);
    EXPECT_EQ(reg.histogram("latency", s).max(), 96.0);
  }
  EXPECT_EQ(hist_count, kThreads * kPerThread);
}

TEST(MetricsThreading, SnapshotTotalsEqualSumOfScopesWhileWritersRun) {
  constexpr std::size_t kShards = 3;
  MetricsRegistry reg(kShards);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 6; ++t) {
    writers.emplace_back([&reg, &stop, t] {
      const std::size_t shard = t % kShards;
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        reg.counter("puts", shard).inc();
        reg.counter("puts").inc();  // global scope too
        reg.histogram("w", shard).record(static_cast<double>(i++ % 11));
      }
    });
  }

  // Snapshots taken mid-flight must be internally consistent: the totals
  // section is computed from the captured values, not re-read live.
  for (int round = 0; round < 200; ++round) {
    const auto snap = reg.snapshot();
    for (const auto& [name, total] : snap.totals) {
      std::uint64_t sum = 0;
      if (auto it = snap.global.counters.find(name);
          it != snap.global.counters.end()) {
        sum += it->second;
      }
      for (const auto& shard : snap.shards) {
        if (auto it = shard.counters.find(name); it != shard.counters.end()) {
          sum += it->second;
        }
      }
      ASSERT_EQ(total, sum) << name << " at round " << round;
    }
    // Histogram stats are captured under one lock: internally coherent.
    for (const auto& shard : snap.shards) {
      for (const auto& [name, h] : shard.histograms) {
        if (h.count == 0) continue;
        ASSERT_LE(h.min, h.mean) << name;
        ASSERT_LE(h.mean, h.max + 1e-9) << name;
      }
    }
  }
  const std::string json = reg.to_json();  // concurrent serialization
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();

  EXPECT_EQ(reg.counter_total("puts") % 2, 0u);  // global mirrors shard incs
}

}  // namespace
}  // namespace lds::store
