// Product-matrix MBR code: capacity, decode-from-any-k, exact repair from
// any d helpers, and the helper-needs-only-the-failed-index property the LDS
// algorithm depends on (paper, Section II-c).
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "codes/pm_mbr.h"
#include "common/rng.h"

namespace lds::codes {
namespace {

using Params = std::tuple<int, int, int>;  // n, k, d

class PmMbrTest : public ::testing::TestWithParam<Params> {
 protected:
  PmMbrCode make() const {
    const auto [n, k, d] = GetParam();
    return PmMbrCode(static_cast<std::size_t>(n), static_cast<std::size_t>(k),
                     static_cast<std::size_t>(d));
  }
};

TEST_P(PmMbrTest, FileSizeMatchesMbrCapacity) {
  const auto [n, k, d] = GetParam();
  PmMbrCode code = make();
  // B = sum_{i=0}^{k-1} (d - i) at beta = 1 (paper, Section II-c).
  std::size_t expect = 0;
  for (int i = 0; i < k; ++i) expect += static_cast<std::size_t>(d - i);
  EXPECT_EQ(code.file_size(), expect);
  EXPECT_EQ(code.alpha(), static_cast<std::size_t>(d));  // alpha = d beta
  EXPECT_EQ(code.beta(), 1u);
}

TEST_P(PmMbrTest, DecodeFromEveryKSubset) {
  const auto [n, k, d] = GetParam();
  PmMbrCode code = make();
  Rng rng(99);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);

  std::vector<int> subset(static_cast<std::size_t>(k));
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == k) {
      std::vector<IndexedBytes> input;
      for (int idx : subset) input.emplace_back(idx, elems[idx]);
      auto decoded = code.decode(input);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, stripe);
      return;
    }
    for (int i = start; i <= n - (k - depth); ++i) {
      subset[static_cast<std::size_t>(depth)] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

TEST_P(PmMbrTest, ExactRepairFromSlidingHelperWindows) {
  const auto [n, k, d] = GetParam();
  PmMbrCode code = make();
  Rng rng(7);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);

  for (int target = 0; target < n; ++target) {
    for (int shift = 0; shift < n; ++shift) {
      std::vector<IndexedBytes> helpers;
      for (int j = 0; helpers.size() < static_cast<std::size_t>(d); ++j) {
        const int h = (target + 1 + shift + j) % n;
        if (h == target) continue;
        helpers.emplace_back(
            h,
            code.helper_data(h, elems[static_cast<std::size_t>(h)], target));
      }
      auto repaired = code.repair(target, helpers);
      ASSERT_TRUE(repaired.has_value());
      EXPECT_EQ(*repaired, elems[static_cast<std::size_t>(target)])
          << "target=" << target << " shift=" << shift;
    }
  }
}

TEST_P(PmMbrTest, HelperDataIndependentOfOtherHelpers) {
  // The helper computes beta symbols knowing only (its element, failed
  // index).  Trivially true structurally, but assert the signature-level
  // fact the algorithm uses: the same helper output works inside *any*
  // helper set (already exercised above), and the output is deterministic.
  PmMbrCode code = make();
  Rng rng(3);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);
  const auto h1 = code.helper_data(1, elems[1], 0);
  const auto h2 = code.helper_data(1, elems[1], 0);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1.size(), code.beta());
}

TEST_P(PmMbrTest, EncodeOneMatchesEncode) {
  const auto [n, k, d] = GetParam();
  (void)k;
  (void)d;
  PmMbrCode code = make();
  Rng rng(5);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(code.encode_one(stripe, i), elems[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PmMbrTest,
    ::testing::Values(Params{5, 2, 3}, Params{6, 3, 3}, Params{7, 2, 4},
                      Params{8, 4, 5}, Params{9, 3, 6}, Params{10, 5, 5},
                      Params{12, 4, 8}));

TEST(PmMbr, RepairRejectsTooFewHelpers) {
  PmMbrCode code(7, 3, 4);
  Rng rng(1);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);
  std::vector<IndexedBytes> helpers;
  for (int h = 1; h <= 3; ++h) {
    helpers.emplace_back(h, code.helper_data(h, elems[h], 0));
  }
  EXPECT_FALSE(code.repair(0, helpers).has_value());
}

TEST(PmMbr, RepairIgnoresTargetSelfAndDuplicates) {
  PmMbrCode code(7, 3, 4);
  Rng rng(2);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);
  std::vector<IndexedBytes> helpers;
  helpers.emplace_back(0, code.helper_data(1, elems[1], 0));  // self (junk)
  for (int h = 1; h <= 4; ++h) {
    helpers.emplace_back(h, code.helper_data(h, elems[h], 0));
    helpers.emplace_back(h, code.helper_data(h, elems[h], 0));  // duplicate
  }
  // Only 4 distinct non-self helpers - exactly d; must succeed.
  auto repaired = code.repair(0, helpers);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, elems[0]);
}

TEST(PmMbr, MixedStripesDoNotDecodeToEither) {
  // Elements from two different stripes under the same indices must not
  // silently decode to either stripe (this is what tag grouping in the LDS
  // regeneration protects against).
  PmMbrCode code(6, 2, 3);
  Rng rng(8);
  const Bytes s1 = rng.bytes(code.file_size());
  const Bytes s2 = rng.bytes(code.file_size());
  const auto e1 = code.encode(s1);
  const auto e2 = code.encode(s2);
  std::vector<IndexedBytes> mixed{{0, e1[0]}, {1, e2[1]}};
  auto decoded = code.decode(mixed);
  if (decoded.has_value()) {
    EXPECT_NE(*decoded, s1);
    EXPECT_NE(*decoded, s2);
  }
}

TEST(PmMbr, KEqualsDDegenerateTBlock) {
  // k = d means the T block is empty; the message matrix is just S.
  PmMbrCode code(8, 4, 4);
  Rng rng(11);
  const Bytes stripe = rng.bytes(code.file_size());
  EXPECT_EQ(code.file_size(), 10u);  // B = k(2d-k+1)/2 = 4*5/2, all in S
  const auto elems = code.encode(stripe);
  std::vector<IndexedBytes> input{{0, elems[0]}, {3, elems[3]},
                                  {5, elems[5]}, {7, elems[7]}};
  auto decoded = code.decode(input);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, stripe);
}

TEST(PmMbr, InvalidParametersAbort) {
  EXPECT_DEATH(PmMbrCode(5, 3, 2), "k <= d");
  EXPECT_DEATH(PmMbrCode(5, 2, 5), "d <= n-1");
}

}  // namespace
}  // namespace lds::codes
