// RepairScheduler + StoreService under fault injection: crashed L2 servers
// are detected by heartbeat, rebuilt under the global concurrency budget,
// failure-budget accounting survives false suspicion, and the service stays
// linearizable per shard through crash/repair churn under load.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "store/store_service.h"
#include "store_test_util.h"

namespace lds::store {
namespace {

TEST(StoreRepair, CrashedL2ServersAreRebuiltBeforeQuiesceReturns) {
  StoreOptions opt;
  opt.shards = 2;
  opt.seed = 5;
  StoreService svc(opt);
  Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(svc.put_sync("k" + std::to_string(i), rng.bytes(48)).ok);
  }
  Rng crash_rng(2);
  std::size_t injected = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    // Exhaust each shard's full budget (f1 + f2 slots).
    while (svc.inject_crash(s, crash_rng)) ++injected;
  }
  EXPECT_EQ(injected, 2 * (1 + 2));  // default geometry: f1 = 1, f2 = 2
  svc.quiesce();

  ASSERT_NE(svc.repair(), nullptr);
  EXPECT_EQ(svc.repair()->servers_repaired(),
            svc.metrics().counter_total("crashes_l2") +
                svc.metrics().counter_total("false_suspicions"));
  EXPECT_GT(svc.repair()->servers_repaired(), 0u);
  EXPECT_EQ(svc.repair()->in_flight(), 0u);
  // Repaired slots returned to the budget: more crashes are injectable.
  EXPECT_TRUE(svc.inject_crash(0, crash_rng));
  svc.quiesce();
  // Data survives the full churn.
  EXPECT_TRUE(svc.get_sync("k3").ok);
  expect_all_histories_clean(svc);
}

TEST(StoreRepair, GlobalBudgetBoundsConcurrentRepairs) {
  StoreOptions opt;
  opt.shards = 4;
  opt.seed = 31;
  opt.repair.max_concurrent = 1;
  StoreService svc(opt);
  Rng rng(4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(svc.put_sync("b" + std::to_string(i), rng.bytes(32)).ok);
  }
  // Two L2 crashes on every shard, near-simultaneously.
  Rng crash_rng(6);
  std::size_t l2_crashes = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    for (int c = 0; c < 3; ++c) {
      if (svc.inject_crash(s, crash_rng)) ++l2_crashes;
    }
  }
  svc.quiesce();
  EXPECT_EQ(svc.repair()->peak_in_flight(), 1u);
  EXPECT_EQ(svc.repair()->servers_repaired(),
            svc.metrics().counter_total("crashes_l2") +
                svc.metrics().counter_total("false_suspicions"));
  expect_all_histories_clean(svc);
}

TEST(StoreRepair, RepairUnderLoadStaysLinearizablePerShard) {
  StoreOptions opt;
  opt.shards = 4;
  opt.exponential_latency = true;  // adversarial-ish message reordering
  opt.seed = 77;
  opt.batch_window = 0.5;
  opt.repair.suspect_after = 28.0;  // heavy-tailed pongs: rare false alarms
  StoreService svc(opt);
  Rng rng(12);

  std::size_t remaining = 300, done = 0, crashes = 0;
  std::function<void()> next = [&] {
    if (remaining == 0) return;
    --remaining;
    const std::string key = "load-" + std::to_string(rng.uniform_int(0, 7));
    auto after = [&] {
      ++done;
      // Crash dice on completion, like the stress harness.
      if (rng.bernoulli(0.08)) {
        for (std::size_t s = 0; s < 4; ++s) {
          if (svc.inject_crash(s, rng)) {
            ++crashes;
            break;
          }
        }
      }
      next();
    };
    if (rng.bernoulli(0.5)) {
      svc.get(key, [after](const GetResult& r) {
        // Gets racing the key's first put legitimately see NotFound.
        EXPECT_TRUE(r.ok || r.status.is(StatusCode::kNotFound)) << r.error;
        after();
      });
    } else {
      svc.put(key, rng.bytes(40), [after](const PutResult& r) {
        EXPECT_TRUE(r.ok);
        after();
      });
    }
  };
  for (int c = 0; c < 8; ++c) svc.sim().at(0.0, [&next] { next(); });
  svc.quiesce([&] { return remaining == 0; });

  EXPECT_EQ(done, 300u);
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(svc.outstanding(), 0u);
  // Every L2 outage healed; the budget never exceeded its cap.
  EXPECT_EQ(svc.repair()->servers_repaired(),
            svc.metrics().counter_total("crashes_l2") +
                svc.metrics().counter_total("false_suspicions"));
  EXPECT_LE(svc.repair()->peak_in_flight(), opt.repair.max_concurrent);
  EXPECT_GT(svc.repair()->object_rounds_started(), 0u);
  expect_all_histories_clean(svc);
}

TEST(StoreRepair, DisabledRepairLeavesCrashesPermanentButSafe) {
  StoreOptions opt;
  opt.shards = 2;
  opt.enable_repair = false;
  opt.seed = 8;
  StoreService svc(opt);
  EXPECT_EQ(svc.repair(), nullptr);
  Rng rng(3);
  ASSERT_TRUE(svc.put_sync("x", rng.bytes(64)).ok);
  Rng crash_rng(5);
  std::size_t injected = 0;
  while (svc.inject_crash(0, crash_rng)) ++injected;
  EXPECT_EQ(injected, 1 + 2);  // f1 + f2, then the budget refuses
  EXPECT_FALSE(svc.inject_crash(0, crash_rng));
  // Reads still complete within the tolerated failure budget.
  EXPECT_TRUE(svc.get_sync("x").ok);
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(StoreRepair, MetricsCountRepairLifecycle) {
  StoreOptions opt;
  opt.shards = 1;
  opt.seed = 15;
  StoreService svc(opt);
  Rng rng(1);
  ASSERT_TRUE(svc.put_sync("m", rng.bytes(16)).ok);
  Rng crash_rng(7);
  // Force an L2 hit: keep injecting until one lands on L2.
  while (svc.metrics().counter_total("crashes_l2") == 0) {
    ASSERT_TRUE(svc.inject_crash(0, crash_rng));
  }
  svc.quiesce();
  EXPECT_GE(svc.metrics().counter_total("repairs_started"), 1u);
  EXPECT_GE(svc.metrics().counter_total("repairs_completed"), 1u);
  const auto json = svc.metrics().to_json();
  EXPECT_NE(json.find("\"repairs_completed\""), std::string::npos);
}

}  // namespace
}  // namespace lds::store
