// Workload generator: well-formedness, determinism, rate accounting.
#include <gtest/gtest.h>

#include "lds/workload.h"

namespace lds::core {
namespace {

LdsCluster::Options cluster_options() {
  LdsCluster::Options opt;
  opt.cfg = LdsConfig::symmetric(6, 1);  // k = d = 4
  opt.writers = 3;
  opt.readers = 2;
  opt.tau2 = 3.0;
  return opt;
}

TEST(Workload, RunsToQuiescenceAndStaysAtomic) {
  LdsCluster cluster(cluster_options());
  WorkloadOptions wopt;
  wopt.num_objects = 4;
  wopt.duration = 60.0;
  wopt.writers = 3;
  wopt.readers = 2;
  wopt.value_size = 64;
  wopt.seed = 1;
  const auto stats = run_workload(cluster, wopt);

  EXPECT_GT(stats.writes_completed, 0u);
  EXPECT_GT(stats.reads_completed, 0u);
  EXPECT_TRUE(cluster.history().all_complete());
  EXPECT_TRUE(cluster.history().check_atomicity({}).ok);
  EXPECT_EQ(stats.writes_completed + stats.reads_completed,
            cluster.history().ops().size());
}

TEST(Workload, DeterministicForFixedSeed) {
  std::size_t writes[2] = {0, 0};
  double spans[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    LdsCluster cluster(cluster_options());
    WorkloadOptions wopt;
    wopt.num_objects = 3;
    wopt.duration = 40.0;
    wopt.writers = 2;
    wopt.readers = 1;
    wopt.value_size = 32;
    wopt.seed = 99;
    const auto stats = run_workload(cluster, wopt);
    writes[i] = stats.writes_completed;
    spans[i] = stats.span;
  }
  EXPECT_EQ(writes[0], writes[1]);
  EXPECT_DOUBLE_EQ(spans[0], spans[1]);
}

TEST(Workload, ThinkTimeLowersRate) {
  double rate_fast = 0, rate_slow = 0;
  for (int i = 0; i < 2; ++i) {
    LdsCluster cluster(cluster_options());
    WorkloadOptions wopt;
    wopt.num_objects = 2;
    wopt.duration = 80.0;
    wopt.writers = 2;
    wopt.readers = 0;
    wopt.value_size = 32;
    wopt.write_think_mean = (i == 0) ? 0.0 : 20.0;
    wopt.seed = 7;
    const auto stats = run_workload(cluster, wopt);
    if (i == 0) {
      rate_fast = stats.writes_per_tau1;
    } else {
      rate_slow = stats.writes_per_tau1;
    }
  }
  EXPECT_GT(rate_fast, rate_slow);
}

TEST(Workload, RespectsDurationWindow) {
  LdsCluster cluster(cluster_options());
  WorkloadOptions wopt;
  wopt.num_objects = 1;
  wopt.duration = 25.0;
  wopt.writers = 1;
  wopt.readers = 0;
  wopt.value_size = 16;
  wopt.seed = 3;
  const auto stats = run_workload(cluster, wopt);
  // No op is *invoked* after the window; with a write round trip of
  // ~6 tau1 + think ~0, completions are bounded accordingly.
  EXPECT_LE(stats.writes_completed, 25.0 / 6.0 + 2.0);
  for (const auto& rec : cluster.history().ops()) {
    EXPECT_LE(rec.invoked, 25.0 + 1e-9);
  }
}

}  // namespace
}  // namespace lds::core
