// Discrete-event simulator: ordering, determinism, run_until semantics.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "net/sim.h"

namespace lds::net {
namespace {

TEST(Sim, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Sim, FifoAmongEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Sim, EventsMayScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.after(1.0, chain);
  };
  sim.after(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Sim, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.5, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Sim, RunUntilAdvancesClockWhenDrained) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Sim, RunWithEventBudget) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.at(i, [&] { ++fired; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimDeath, PastSchedulingAborts) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_DEATH(sim.at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace lds::net
