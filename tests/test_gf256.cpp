// GF(2^8) field axioms and kernel tests.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/gf256.h"

namespace lds::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0, 0), 0);
  EXPECT_EQ(add(0x55, 0xAA), 0xFF);
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(add(static_cast<Elem>(a), static_cast<Elem>(a)), 0)
        << "characteristic 2: a + a = 0";
  }
}

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<Elem>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<Elem>(a)), a);
    EXPECT_EQ(mul(static_cast<Elem>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<Elem>(a)), 0);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(mul(static_cast<Elem>(a), static_cast<Elem>(b)),
                mul(static_cast<Elem>(b), static_cast<Elem>(a)));
    }
  }
}

TEST(Gf256, MulAssociative) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const Elem a = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem b = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem c = static_cast<Elem>(rng.uniform_int(0, 255));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, Distributive) {
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const Elem a = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem b = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem c = static_cast<Elem>(rng.uniform_int(0, 255));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const Elem e = static_cast<Elem>(a);
    EXPECT_EQ(mul(e, inv(e)), 1) << "a = " << a;
    EXPECT_EQ(inv(inv(e)), e);
  }
}

TEST(Gf256, DivisionDefinition) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 5) {
      const Elem q = div(static_cast<Elem>(a), static_cast<Elem>(b));
      EXPECT_EQ(mul(q, static_cast<Elem>(b)), a);
    }
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 11) {
    Elem acc = 1;
    for (std::uint64_t e = 0; e < 300; ++e) {
      EXPECT_EQ(pow(static_cast<Elem>(a), e), acc)
          << "a=" << a << " e=" << e;
      acc = mul(acc, static_cast<Elem>(a));
    }
  }
}

TEST(Gf256, PowZeroBase) {
  EXPECT_EQ(pow(0, 0), 1);  // convention x^0 = 1
  EXPECT_EQ(pow(0, 5), 0);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // g^i for i in [0, 255) must enumerate all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  Elem x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    EXPECT_FALSE(seen[x]) << "generator order < 255 at i=" << i;
    seen[x] = true;
    x = mul(x, generator());
  }
  EXPECT_EQ(x, 1) << "g^255 must wrap to 1";
}

TEST(Gf256, AxpyMatchesScalarLoop) {
  Rng rng(13);
  Bytes x = rng.bytes(257);
  Bytes y = rng.bytes(257);
  for (int a : {0, 1, 2, 97, 255}) {
    Bytes expect = y;
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect[i] = add(expect[i], mul(static_cast<Elem>(a), x[i]));
    }
    Bytes got = y;
    axpy(got, static_cast<Elem>(a), x);
    EXPECT_EQ(got, expect) << "a = " << a;
  }
}

TEST(Gf256, DotMatchesScalarLoop) {
  Rng rng(17);
  const Bytes a = rng.bytes(100);
  const Bytes b = rng.bytes(100);
  Elem expect = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect = add(expect, mul(a[i], b[i]));
  }
  EXPECT_EQ(dot(a, b), expect);
}

TEST(Gf256, ScaleMatchesScalarLoop) {
  Rng rng(19);
  const Bytes x = rng.bytes(64);
  for (int a : {0, 1, 3, 128, 255}) {
    Bytes expect(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect[i] = mul(static_cast<Elem>(a), x[i]);
    }
    Bytes got = x;
    scale(got, static_cast<Elem>(a));
    EXPECT_EQ(got, expect) << "a = " << a;
  }
}

TEST(Gf256, PowHugeExponentMatchesSquareAndMultiply) {
  // Regression: pow computed log[a] * e in u64, which wraps for e >= 2^56
  // and silently returned a wrong element; the exponent must be reduced mod
  // the group order first.  Square-and-multiply never forms the product, so
  // it is immune and serves as the oracle.
  const auto slow_pow = [](Elem a, std::uint64_t e) {
    Elem result = 1;
    Elem base = a;
    while (e > 0) {
      if (e & 1) result = mul(result, base);
      base = mul(base, base);
      e >>= 1;
    }
    return result;
  };
  const std::uint64_t exps[] = {0,
                                1,
                                254,
                                255,
                                256,
                                (1ull << 56) - 1,
                                1ull << 56,
                                (1ull << 56) + 123,
                                UINT64_MAX - 1,
                                UINT64_MAX};
  for (int a = 0; a < 256; a += 17) {
    for (const std::uint64_t e : exps) {
      EXPECT_EQ(pow(static_cast<Elem>(a), e),
                slow_pow(static_cast<Elem>(a), e))
          << "a=" << a << " e=" << e;
    }
  }
}

TEST(Gf256, ParseIsaNames) {
  EXPECT_EQ(parse_isa("scalar"), Isa::Scalar);
  EXPECT_EQ(parse_isa("ssse3"), Isa::Ssse3);
  EXPECT_EQ(parse_isa("avx2"), Isa::Avx2);
  EXPECT_EQ(parse_isa("neon"), Isa::Neon);
  EXPECT_FALSE(parse_isa("avx512").has_value());
  EXPECT_FALSE(parse_isa("").has_value());
  for (const Isa isa : supported_isas()) {
    EXPECT_EQ(parse_isa(isa_name(isa)), isa);
  }
}

TEST(Gf256, SelectIsaRoundTrip) {
  const Isa before = active_isa();
  EXPECT_TRUE(select_isa(Isa::Scalar));
  EXPECT_EQ(active_isa(), Isa::Scalar);
  for (const Isa isa : supported_isas()) {
    EXPECT_TRUE(select_isa(isa));
    EXPECT_EQ(active_isa(), isa);
  }
  EXPECT_TRUE(select_isa(before));
}

// Every supported ISA path must be bit-identical to a plain mul/add loop for
// every coefficient and for lengths straddling each kernel's vector widths
// and unroll boundaries (the tails are where SIMD kernels go wrong).
class GfIsaEquivalence : public ::testing::Test {
 protected:
  void TearDown() override { select_isa(best_); }
  const Isa best_ = active_isa();
  const std::vector<std::size_t> lens_{0,  1,  2,  3,    15,   16,  17, 31,
                                       32, 33, 63, 64,   65,   100, 255,
                                       4095, 4096, 4097};
};

TEST_F(GfIsaEquivalence, AxpyAllCoefficientsAllIsas) {
  Rng rng(101);
  for (const std::size_t len : lens_) {
    const Bytes x = rng.bytes(len);
    const Bytes y = rng.bytes(len);
    for (int a = 0; a < 256; ++a) {
      Bytes expect = y;
      for (std::size_t i = 0; i < len; ++i) {
        expect[i] = add(expect[i], mul(static_cast<Elem>(a), x[i]));
      }
      for (const Isa isa : supported_isas()) {
        ASSERT_TRUE(select_isa(isa));
        Bytes got = y;
        axpy(got, static_cast<Elem>(a), x);
        ASSERT_EQ(got, expect) << "isa=" << isa_name(isa) << " a=" << a
                               << " len=" << len;
      }
    }
  }
}

TEST_F(GfIsaEquivalence, MulIntoAllCoefficientsAllIsas) {
  Rng rng(103);
  for (const std::size_t len : lens_) {
    const Bytes x = rng.bytes(len);
    for (int a = 0; a < 256; ++a) {
      Bytes expect(len);
      for (std::size_t i = 0; i < len; ++i) {
        expect[i] = mul(static_cast<Elem>(a), x[i]);
      }
      for (const Isa isa : supported_isas()) {
        ASSERT_TRUE(select_isa(isa));
        Bytes got(len, 0xAB);  // poison: mul_into must overwrite every byte
        mul_into(got, static_cast<Elem>(a), x);
        ASSERT_EQ(got, expect) << "isa=" << isa_name(isa) << " a=" << a
                               << " len=" << len;
        Bytes in_place = x;  // aliasing contract: z may be exactly x
        mul_into(in_place, static_cast<Elem>(a), in_place);
        ASSERT_EQ(in_place, expect)
            << "in-place, isa=" << isa_name(isa) << " a=" << a
            << " len=" << len;
      }
    }
  }
}

TEST_F(GfIsaEquivalence, ScaleAllCoefficientsAllIsas) {
  Rng rng(107);
  const Bytes x = rng.bytes(1023);
  for (int a = 0; a < 256; ++a) {
    Bytes expect(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect[i] = mul(static_cast<Elem>(a), x[i]);
    }
    for (const Isa isa : supported_isas()) {
      ASSERT_TRUE(select_isa(isa));
      Bytes got = x;
      scale(got, static_cast<Elem>(a));
      ASSERT_EQ(got, expect) << "isa=" << isa_name(isa) << " a=" << a;
    }
  }
}

TEST_F(GfIsaEquivalence, DotAllIsas) {
  Rng rng(109);
  for (const std::size_t len : lens_) {
    const Bytes a = rng.bytes(len);
    const Bytes b = rng.bytes(len);
    Elem expect = 0;
    for (std::size_t i = 0; i < len; ++i) {
      expect = add(expect, mul(a[i], b[i]));
    }
    for (const Isa isa : supported_isas()) {
      ASSERT_TRUE(select_isa(isa));
      ASSERT_EQ(dot(a, b), expect) << "isa=" << isa_name(isa)
                                   << " len=" << len;
    }
  }
}

TEST_F(GfIsaEquivalence, FullMultiplicationTableAllIsas) {
  // The 256 x 256 multiply table via 256-long mul_into rows: every (a, b)
  // product on every ISA must equal the log/exp scalar product.
  Bytes all(256);
  for (int b = 0; b < 256; ++b) all[static_cast<std::size_t>(b)] =
      static_cast<Elem>(b);
  for (const Isa isa : supported_isas()) {
    ASSERT_TRUE(select_isa(isa));
    for (int a = 0; a < 256; ++a) {
      Bytes row(256);
      mul_into(row, static_cast<Elem>(a), all);
      for (int b = 0; b < 256; ++b) {
        ASSERT_EQ(row[static_cast<std::size_t>(b)],
                  mul(static_cast<Elem>(a), static_cast<Elem>(b)))
            << "isa=" << isa_name(isa) << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Gf256Death, InverseOfZeroAborts) {
  EXPECT_DEATH(inv(0), "inverse of zero");
}

TEST(Gf256Death, DivisionByZeroAborts) {
  EXPECT_DEATH(div(3, 0), "division by zero");
}

}  // namespace
}  // namespace lds::gf
