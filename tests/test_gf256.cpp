// GF(2^8) field axioms and kernel tests.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/gf256.h"

namespace lds::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0, 0), 0);
  EXPECT_EQ(add(0x55, 0xAA), 0xFF);
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(add(static_cast<Elem>(a), static_cast<Elem>(a)), 0)
        << "characteristic 2: a + a = 0";
  }
}

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<Elem>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<Elem>(a)), a);
    EXPECT_EQ(mul(static_cast<Elem>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<Elem>(a)), 0);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(mul(static_cast<Elem>(a), static_cast<Elem>(b)),
                mul(static_cast<Elem>(b), static_cast<Elem>(a)));
    }
  }
}

TEST(Gf256, MulAssociative) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const Elem a = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem b = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem c = static_cast<Elem>(rng.uniform_int(0, 255));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, Distributive) {
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const Elem a = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem b = static_cast<Elem>(rng.uniform_int(0, 255));
    const Elem c = static_cast<Elem>(rng.uniform_int(0, 255));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const Elem e = static_cast<Elem>(a);
    EXPECT_EQ(mul(e, inv(e)), 1) << "a = " << a;
    EXPECT_EQ(inv(inv(e)), e);
  }
}

TEST(Gf256, DivisionDefinition) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 5) {
      const Elem q = div(static_cast<Elem>(a), static_cast<Elem>(b));
      EXPECT_EQ(mul(q, static_cast<Elem>(b)), a);
    }
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 11) {
    Elem acc = 1;
    for (std::uint64_t e = 0; e < 300; ++e) {
      EXPECT_EQ(pow(static_cast<Elem>(a), e), acc)
          << "a=" << a << " e=" << e;
      acc = mul(acc, static_cast<Elem>(a));
    }
  }
}

TEST(Gf256, PowZeroBase) {
  EXPECT_EQ(pow(0, 0), 1);  // convention x^0 = 1
  EXPECT_EQ(pow(0, 5), 0);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // g^i for i in [0, 255) must enumerate all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  Elem x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    EXPECT_FALSE(seen[x]) << "generator order < 255 at i=" << i;
    seen[x] = true;
    x = mul(x, generator());
  }
  EXPECT_EQ(x, 1) << "g^255 must wrap to 1";
}

TEST(Gf256, AxpyMatchesScalarLoop) {
  Rng rng(13);
  Bytes x = rng.bytes(257);
  Bytes y = rng.bytes(257);
  for (int a : {0, 1, 2, 97, 255}) {
    Bytes expect = y;
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect[i] = add(expect[i], mul(static_cast<Elem>(a), x[i]));
    }
    Bytes got = y;
    axpy(got, static_cast<Elem>(a), x);
    EXPECT_EQ(got, expect) << "a = " << a;
  }
}

TEST(Gf256, DotMatchesScalarLoop) {
  Rng rng(17);
  const Bytes a = rng.bytes(100);
  const Bytes b = rng.bytes(100);
  Elem expect = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect = add(expect, mul(a[i], b[i]));
  }
  EXPECT_EQ(dot(a, b), expect);
}

TEST(Gf256, ScaleMatchesScalarLoop) {
  Rng rng(19);
  const Bytes x = rng.bytes(64);
  for (int a : {0, 1, 3, 128, 255}) {
    Bytes expect(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect[i] = mul(static_cast<Elem>(a), x[i]);
    }
    Bytes got = x;
    scale(got, static_cast<Elem>(a));
    EXPECT_EQ(got, expect) << "a = " << a;
  }
}

TEST(Gf256Death, InverseOfZeroAborts) {
  EXPECT_DEATH(inv(0), "inverse of zero");
}

TEST(Gf256Death, DivisionByZeroAborts) {
  EXPECT_DEATH(div(3, 0), "division by zero");
}

}  // namespace
}  // namespace lds::gf
