// Latency statistics: percentile arithmetic and whole-workload Lemma V.4
// bound checking under bounded (uniform-jitter) latencies.
#include <gtest/gtest.h>

#include "lds/analysis.h"
#include "lds/stats.h"
#include "lds/workload.h"

namespace lds::core {
namespace {

TEST(Stats, HandComputedPercentiles) {
  History h;
  // Five writes with latencies 1, 2, 3, 4, 5.
  for (int i = 0; i < 5; ++i) {
    auto idx = h.on_invoke(static_cast<OpId>(i + 1), OpKind::Write, 0, 1,
                           10.0 * i);
    h.set_payload(idx, Tag{static_cast<std::uint64_t>(i + 1), 1}, {});
    h.on_response(idx, 10.0 * i + (i + 1), Tag{static_cast<std::uint64_t>(i + 1), 1}, {});
  }
  const LatencyStats s = latency_stats(h, OpKind::Write);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.p90, 4.6, 1e-9);

  EXPECT_EQ(latency_stats(h, OpKind::Read).count, 0u);
  const std::string report = format_latency_report(h);
  EXPECT_NE(report.find("write"), std::string::npos);
  EXPECT_NE(report.find("read"), std::string::npos);
}

TEST(Stats, IgnoresIncompleteOps) {
  History h;
  h.on_invoke(1, OpKind::Read, 0, 9, 0.0);
  EXPECT_EQ(latency_stats(h, OpKind::Read).count, 0u);
}

TEST(Stats, WorkloadLatenciesRespectLemmaV4Bounds) {
  // Under *bounded* jittered latencies (uniform in (0, tau]), every
  // operation in a mixed workload must complete within the Lemma V.4
  // bounds computed at the worst-case delays.
  LdsCluster::Options opt;
  opt.cfg = LdsConfig::symmetric(8, 1);  // k = d = 6
  opt.writers = 2;
  opt.readers = 2;
  opt.tau1 = 1.0;
  opt.tau0 = 1.0;
  opt.tau2 = 6.0;
  opt.latency = LdsCluster::LatencyKind::Uniform;
  opt.seed = 3;
  LdsCluster cluster(opt);

  WorkloadOptions wopt;
  wopt.num_objects = 3;
  wopt.duration = 120.0;
  wopt.writers = 2;
  wopt.readers = 2;
  wopt.value_size = 64;
  wopt.seed = 4;
  run_workload(cluster, wopt);

  const double write_bound = analysis::write_latency_bound(1.0, 1.0);
  // Reads may be served by a *later commit* of a concurrent write rather
  // than by their own regeneration; the paper's read bound then stretches
  // by at most the extended-write duration of that write.  Use the safe
  // compound bound for workload-level checking.
  const double read_bound =
      analysis::read_latency_bound(1.0, 1.0, 6.0) +
      analysis::extended_write_latency_bound(1.0, 1.0, 6.0);

  const LatencyStats w = latency_stats(cluster.history(), OpKind::Write);
  const LatencyStats r = latency_stats(cluster.history(), OpKind::Read);
  ASSERT_GT(w.count, 0u);
  ASSERT_GT(r.count, 0u);
  EXPECT_LE(w.max, write_bound + 1e-9);
  EXPECT_LE(r.max, read_bound + 1e-9);
  EXPECT_TRUE(cluster.history().check_atomicity({}).ok);
}

}  // namespace
}  // namespace lds::core
