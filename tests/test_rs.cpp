// Reed-Solomon code: decode from every k-subset, and the RsRegenerating
// adapter (repair-by-decoding) used for the Remark 1 ablation.
#include <gtest/gtest.h>

#include "codes/rs.h"
#include "common/rng.h"

namespace lds::codes {
namespace {

class RsParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RsParamTest, DecodeFromEveryKSubset) {
  const auto [n, k] = GetParam();
  RsCode code(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
  Rng rng(42);
  const Bytes stripe = rng.bytes(static_cast<std::size_t>(k));
  const auto elems = code.encode(stripe);
  ASSERT_EQ(elems.size(), static_cast<std::size_t>(n));

  std::vector<int> subset(static_cast<std::size_t>(k));
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == k) {
      std::vector<IndexedBytes> input;
      for (int idx : subset) input.emplace_back(idx, elems[idx]);
      auto decoded = code.decode(input);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, stripe);
      return;
    }
    for (int i = start; i <= n - (k - depth); ++i) {
      subset[static_cast<std::size_t>(depth)] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, RsParamTest,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{5, 3},
                                           std::tuple{6, 4}, std::tuple{7, 3},
                                           std::tuple{8, 5}, std::tuple{9, 1}));

TEST(Rs, EncodeOneMatchesEncode) {
  RsCode code(9, 4);
  Rng rng(1);
  const Bytes stripe = rng.bytes(4);
  const auto elems = code.encode(stripe);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(code.encode_one(stripe, i), elems[static_cast<std::size_t>(i)]);
  }
}

TEST(Rs, DecodeRejectsTooFewElements) {
  RsCode code(6, 3);
  Rng rng(2);
  const Bytes stripe = rng.bytes(3);
  const auto elems = code.encode(stripe);
  std::vector<IndexedBytes> two{{0, elems[0]}, {1, elems[1]}};
  EXPECT_FALSE(code.decode(two).has_value());
}

TEST(Rs, DecodeIgnoresDuplicatesAndJunkIndices) {
  RsCode code(6, 3);
  Rng rng(3);
  const Bytes stripe = rng.bytes(3);
  const auto elems = code.encode(stripe);
  std::vector<IndexedBytes> input{
      {0, elems[0]}, {0, elems[0]},   // duplicate index
      {-1, elems[1]}, {17, elems[2]}, // out of range
      {2, elems[2]}, {4, elems[4]},
  };
  auto decoded = code.decode(input);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, stripe);
}

TEST(Rs, InvalidParametersAbort) {
  EXPECT_DEATH(RsCode(3, 4), "k <= n");
  EXPECT_DEATH(RsCode(0, 0), "1 <= k");
}

TEST(RsRegenerating, RepairEqualsOriginalElement) {
  RsRegenerating code(7, 3);
  Rng rng(4);
  const Bytes stripe = rng.bytes(3);
  const auto elems = code.encode(stripe);
  for (int target = 0; target < 7; ++target) {
    // Helpers: the k elements after the target (cyclically).
    std::vector<IndexedBytes> helpers;
    for (int j = 1; helpers.size() < code.d(); ++j) {
      const int h = (target + j) % 7;
      helpers.emplace_back(
          h, code.helper_data(h, elems[static_cast<std::size_t>(h)], target));
    }
    auto repaired = code.repair(target, helpers);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, elems[static_cast<std::size_t>(target)]);
  }
}

TEST(RsRegenerating, HelperIsFullElement) {
  // The whole point of the Remark-1 ablation: at the RS/MSR point a helper
  // ships alpha = beta symbols, i.e. repair bandwidth = k * beta = B.
  RsRegenerating code(7, 3);
  EXPECT_EQ(code.beta(), code.alpha());
  EXPECT_EQ(code.d(), code.k());
}

}  // namespace
}  // namespace lds::codes
