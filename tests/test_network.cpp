// Network substrate: reliable delivery, crash semantics, link classification,
// cost accounting at send time.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace lds::net {
namespace {

/// Minimal payload for substrate tests.
class TestPayload final : public Payload {
 public:
  TestPayload(int value, std::uint64_t data, OpId op = kNoOp)
      : value_(value), data_(data), op_(op) {}
  int value() const { return value_; }
  std::uint64_t data_bytes() const override { return data_; }
  std::uint64_t meta_bytes() const override { return 8; }
  const char* type_name() const override { return "test"; }
  OpId op() const override { return op_; }

 private:
  int value_;
  std::uint64_t data_;
  OpId op_;
};

class Recorder final : public Node {
 public:
  Recorder(Network& net, NodeId id, Role role) : Node(net, id, role) {}
  void on_message(NodeId from, const MessagePtr& msg) override {
    const auto* p = dynamic_cast<const TestPayload*>(msg.get());
    ASSERT_NE(p, nullptr);
    received.emplace_back(from, p->value());
  }
  void post(NodeId to, int value, std::uint64_t data = 0, OpId op = kNoOp) {
    send(to, std::make_shared<TestPayload>(value, data, op));
  }
  std::vector<std::pair<NodeId, int>> received;
};

struct Fixture {
  Simulator sim;
  Network net{sim, std::make_unique<FixedLatency>(1.0, 0.5, 10.0), 7};
};

TEST(Network, DeliversWithClassLatency) {
  Fixture f;
  Recorder client(f.net, 1, Role::Writer);
  Recorder l1(f.net, 2, Role::ServerL1);
  Recorder l2(f.net, 3, Role::ServerL2);

  client.post(2, 100);  // client -> L1: tau1 = 1.0
  l1.post(3, 200);      // L1 -> L2: tau2 = 10.0
  l1.post(2, 300);      // L1 -> L1 (self): tau0 = 0.5

  f.sim.run_until(0.6);
  ASSERT_EQ(l1.received.size(), 1u);  // only the tau0 message so far
  EXPECT_EQ(l1.received[0].second, 300);
  f.sim.run_until(1.1);
  ASSERT_EQ(l1.received.size(), 2u);
  f.sim.run();
  ASSERT_EQ(l2.received.size(), 1u);
  EXPECT_EQ(l2.received[0], (std::pair<NodeId, int>{2, 200}));
}

TEST(Network, CrashedDestinationDropsDelivery) {
  Fixture f;
  Recorder a(f.net, 1, Role::ServerL1);
  Recorder b(f.net, 2, Role::ServerL1);
  a.post(2, 1);
  b.crash();
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, CrashedSenderStopsSendingButInFlightDelivers) {
  // Paper model: the sender may fail after placing the message in the
  // channel; delivery depends only on the destination being alive.
  Fixture f;
  Recorder a(f.net, 1, Role::ServerL1);
  Recorder b(f.net, 2, Role::ServerL1);
  a.post(2, 1);
  a.crash();
  a.post(2, 2);  // suppressed: crashed processes take no further steps
  f.sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 1);
}

TEST(Network, UnknownDestinationIsDropped) {
  Fixture f;
  Recorder a(f.net, 1, Role::ServerL1);
  a.post(99, 1);
  f.sim.run();  // must not crash
  EXPECT_EQ(f.net.messages_sent(), 1u);
}

TEST(Network, CostAccountingAtSendTime) {
  Fixture f;
  Recorder w(f.net, 1, Role::Writer);
  Recorder s(f.net, 2, Role::ServerL1);
  Recorder t(f.net, 3, Role::ServerL2);

  const OpId op = make_op_id(1, 1);
  w.post(2, 0, 1000, op);  // client-L1
  s.post(3, 0, 500, op);   // L1-L2
  s.crash();
  // Crashed node sends nothing; no cost.
  s.post(3, 0, 999, op);
  f.sim.run();

  EXPECT_EQ(f.net.costs().total().data_bytes, 1500u);
  EXPECT_EQ(f.net.costs().by_link(LinkClass::ClientL1).data_bytes, 1000u);
  EXPECT_EQ(f.net.costs().by_link(LinkClass::L1L2).data_bytes, 500u);
  EXPECT_EQ(f.net.costs().by_op(op).data_bytes, 1500u);
  EXPECT_EQ(f.net.costs().by_op(op).messages, 2u);
  EXPECT_EQ(f.net.costs().by_op(kNoOp).messages, 0u);
}

TEST(Network, DeliveryObserverSeesMessages) {
  Fixture f;
  Recorder a(f.net, 1, Role::ServerL1);
  Recorder b(f.net, 2, Role::ServerL1);
  int observed = 0;
  f.net.set_delivery_observer(
      [&](NodeId from, NodeId to, const Payload& p) {
        ++observed;
        EXPECT_EQ(from, 1);
        EXPECT_EQ(to, 2);
        EXPECT_STREQ(p.type_name(), "test");
      });
  a.post(2, 7);
  f.sim.run();
  EXPECT_EQ(observed, 1);
  ASSERT_EQ(b.received.size(), 1u);
}

TEST(Network, ObserverCanCrashDestinationBeforeHandling) {
  Fixture f;
  Recorder a(f.net, 1, Role::ServerL1);
  Recorder b(f.net, 2, Role::ServerL1);
  f.net.set_delivery_observer(
      [&](NodeId, NodeId to, const Payload&) { f.net.crash(to); });
  a.post(2, 7);
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(b.crashed());
}

TEST(Network, EngineLaneConstructorSharesTheLaneClock) {
  SimEngine engine;
  Network net{engine, 0, std::make_unique<FixedLatency>(1.0, 0.5, 10.0), 7};
  Recorder a(net, 1, Role::Writer);
  Recorder b(net, 2, Role::ServerL1);
  a.post(2, 42);
  engine.drain();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 42);
  EXPECT_EQ(&net.sim(), &engine.lane_sim(0));
}

TEST(NetworkDeath, AttachingAnIdTwiceAborts) {
  // The id-reuse protocol (LdsCluster::replace_l2) detaches the crashed
  // instance before constructing the replacement; attaching a second live
  // node under an occupied id must abort loudly.
  Fixture f;
  Recorder a(f.net, 7, Role::ServerL2);
  EXPECT_DEATH({ Recorder dup(f.net, 7, Role::ServerL2); },
               "already attached");
}

TEST(LinkClassify, Table) {
  EXPECT_EQ(classify_link(Role::Writer, Role::ServerL1), LinkClass::ClientL1);
  EXPECT_EQ(classify_link(Role::ServerL1, Role::Reader), LinkClass::ClientL1);
  EXPECT_EQ(classify_link(Role::ServerL1, Role::ServerL1), LinkClass::L1L1);
  EXPECT_EQ(classify_link(Role::ServerL1, Role::ServerL2), LinkClass::L1L2);
  EXPECT_EQ(classify_link(Role::ServerL2, Role::ServerL1), LinkClass::L1L2);
  EXPECT_EQ(classify_link(Role::Writer, Role::Reader), LinkClass::Other);
}

}  // namespace
}  // namespace lds::net
