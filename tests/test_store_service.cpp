// StoreService: put/get/multi_get round trips, write-batching correctness
// under concurrent writers (coalesced puts complete with the surviving tag
// and the shard histories stay linearizable), admission limits, per-shard
// backend mixing, and the metrics registry (histogram math + JSON snapshot).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "store/metrics.h"
#include "store/store_service.h"
#include "store_test_util.h"

namespace lds::store {
namespace {

StoreOptions small_options(std::size_t shards) {
  StoreOptions opt;
  opt.shards = shards;
  opt.writers_per_shard = 2;
  opt.readers_per_shard = 2;
  opt.seed = 7;
  return opt;
}

TEST(StoreService, PutGetRoundTrip) {
  StoreService svc(small_options(2));
  const Bytes v{1, 2, 3, 4};
  const auto put = svc.put_sync("alpha", v);
  ASSERT_TRUE(put.ok) << put.error;
  const auto get = svc.get_sync("alpha");
  ASSERT_TRUE(get.ok) << get.error;
  EXPECT_EQ(get.value, v);
  EXPECT_EQ(get.tag, put.tag);
  EXPECT_EQ(svc.metrics().counter_total("puts"), 1u);
  EXPECT_EQ(svc.metrics().counter_total("gets"), 1u);
}

TEST(StoreService, SameKeyPutsCoalesceToOneWriteWithSurvivingTag) {
  auto opt = small_options(1);
  opt.batch_window = 5.0;  // wide window: all queued puts share one batch
  StoreService svc(opt);

  std::vector<PutResult> results(4);
  std::size_t done = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    svc.put("hot-key", Bytes{static_cast<std::uint8_t>(i)},
            [&results, &done, i](const PutResult& r) {
              results[i] = r;
              ++done;
            });
  }
  svc.quiesce();
  ASSERT_EQ(done, 4u);
  for (const auto& r : results) EXPECT_TRUE(r.ok);
  // All four completed with one tag: the single surviving cluster write.
  EXPECT_EQ(results[0].tag, results[3].tag);
  EXPECT_EQ(svc.metrics().counter_total("puts"), 4u);
  EXPECT_EQ(svc.metrics().counter_total("puts_coalesced"), 3u);
  EXPECT_EQ(svc.metrics().counter_total("batches"), 1u);

  // The last value won, and the shard history holds exactly one write.
  EXPECT_EQ(svc.get_sync("hot-key").value, Bytes{3});
  std::size_t writes = 0;
  for (const auto& op : svc.shard_history(0).ops()) {
    writes += op.kind == core::OpKind::Write ? 1 : 0;
  }
  EXPECT_EQ(writes, 1u);
  expect_all_histories_clean(svc);
}

TEST(StoreService, DistinctKeysInOneBatchAllMaterialize) {
  auto opt = small_options(1);
  opt.batch_window = 5.0;
  StoreService svc(opt);
  std::size_t done = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    svc.put("key-" + std::to_string(i), Bytes{static_cast<std::uint8_t>(i)},
            [&done](const PutResult& r) {
              EXPECT_TRUE(r.ok);
              ++done;
            });
  }
  svc.quiesce();
  EXPECT_EQ(done, 6u);
  EXPECT_EQ(svc.metrics().counter_total("puts_coalesced"), 0u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(svc.get_sync("key-" + std::to_string(i)).value,
              Bytes{static_cast<std::uint8_t>(i)});
  }
  expect_all_histories_clean(svc);
}

TEST(StoreService, BatchingUnderConcurrentWritersStaysLinearizable) {
  auto opt = small_options(2);
  opt.batch_window = 1.0;
  opt.exponential_latency = true;
  opt.seed = 21;
  StoreService svc(opt);
  Rng rng(5);

  // Closed-loop clients hammering a small keyspace so windows coalesce.
  std::size_t remaining = 200, done = 0;
  std::function<void()> next = [&] {
    if (remaining == 0) return;
    --remaining;
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 3));
    if (rng.bernoulli(0.4)) {
      svc.get(key, [&](const GetResult& r) {
        // A racing get may beat the key's first put: NotFound, not an error.
        EXPECT_TRUE(r.ok || r.status.is(StatusCode::kNotFound)) << r.error;
        ++done;
        next();
      });
    } else {
      svc.put(key, rng.bytes(32), [&](const PutResult& r) {
        EXPECT_TRUE(r.ok);
        ++done;
        next();
      });
    }
  };
  for (int c = 0; c < 6; ++c) svc.sim().at(0.0, [&next] { next(); });
  svc.quiesce([&] { return remaining == 0; });

  EXPECT_EQ(done, 200u);
  EXPECT_EQ(svc.outstanding(), 0u);
  EXPECT_GT(svc.metrics().counter_total("puts_coalesced"), 0u);
  expect_all_histories_clean(svc);
}

TEST(StoreService, AdmissionLimitRejectsExcessPuts) {
  auto opt = small_options(1);
  opt.batch_window = 50.0;  // keep everything queued
  opt.admission_limit = 4;
  StoreService svc(opt);

  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    svc.put("key-" + std::to_string(i), Bytes{1},
            [&](const PutResult& r) {
              if (r.ok) {
                ++accepted;
              } else {
                ++rejected;
              }
            });
  }
  // Rejections are immediate; accepted puts complete at quiesce.
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(svc.metrics().counter_total("puts_rejected"), 3u);
  svc.quiesce();
  EXPECT_EQ(accepted, 4u);
  expect_all_histories_clean(svc);
}

TEST(StoreService, MultiGetSpansShardsAndPreservesOrder) {
  StoreService svc(small_options(4));
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < 12; ++i) {
    keys.push_back("mg-" + std::to_string(i));
    ASSERT_TRUE(
        svc.put_sync(keys.back(), Bytes{static_cast<std::uint8_t>(i)}).ok);
  }
  const auto results = svc.multi_get_sync(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].value, Bytes{static_cast<std::uint8_t>(i)});
  }
  // The keys actually spread over multiple shards.
  std::size_t populated = 0;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    populated += svc.shard_objects(s) > 0 ? 1 : 0;
  }
  EXPECT_GT(populated, 1u);
}

TEST(StoreService, MixedBackendsPerShard) {
  auto opt = small_options(3);
  opt.shard_overrides.resize(3);
  opt.shard_overrides[0].protocol = ShardProtocol::Lds;
  opt.shard_overrides[1].protocol = ShardProtocol::Abd;
  opt.shard_overrides[2].protocol = ShardProtocol::Cas;
  StoreService svc(opt);
  EXPECT_EQ(svc.shard_protocol(0), ShardProtocol::Lds);
  EXPECT_EQ(svc.shard_protocol(1), ShardProtocol::Abd);
  EXPECT_EQ(svc.shard_protocol(2), ShardProtocol::Cas);

  Rng rng(3);
  std::map<std::string, Bytes> model;
  for (std::size_t i = 0; i < 60; ++i) {
    const std::string key = "mix-" + std::to_string(i);
    model[key] = rng.bytes(24);
    ASSERT_TRUE(svc.put_sync(key, model[key]).ok);
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ(svc.get_sync(key).value, value);
  }
  // Every protocol actually served traffic.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(svc.shard_objects(s), 0u) << "shard " << s;
  }
  svc.quiesce();
  expect_all_histories_clean(svc);
}

TEST(StoreService, LdsCodeBackendIsSelectablePerShard) {
  auto opt = small_options(2);
  opt.shard_overrides.resize(2);
  opt.shard_overrides[0].code = codes::BackendKind::Rs;
  opt.shard_overrides[1].code = codes::BackendKind::Replication;
  StoreService svc(opt);
  for (std::size_t i = 0; i < 10; ++i) {
    const std::string key = "code-" + std::to_string(i);
    const Bytes v{static_cast<std::uint8_t>(i), 9, 9};
    ASSERT_TRUE(svc.put_sync(key, v).ok);
    EXPECT_EQ(svc.get_sync(key).value, v);
  }
}

TEST(StoreService, MetricsSnapshotIsJsonWithShardScopes) {
  StoreService svc(small_options(2));
  svc.put_sync("a", Bytes{1});
  svc.get_sync("a");
  const std::string json = svc.metrics().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"puts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"put_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
}

// ---- metrics primitives -----------------------------------------------------

TEST(Metrics, HistogramQuantilesTrackUniformData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log-bucketed quantiles carry ~6% relative error.
  EXPECT_NEAR(h.percentile(0.5), 500.0, 50.0);
  EXPECT_NEAR(h.percentile(0.9), 900.0, 90.0);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(Metrics, HistogramHandlesSubUnitAndHugeValues) {
  Histogram h;
  h.record(0.001);
  h.record(0.25);
  h.record(1e12);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.percentile(0.5), 0.25, 0.05);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
}

TEST(Metrics, RegistryAggregatesAcrossShardScopes) {
  MetricsRegistry reg(3);
  reg.counter("ops").inc(5);
  reg.counter("ops", 0).inc(1);
  reg.counter("ops", 2).inc(2);
  EXPECT_EQ(reg.counter_total("ops"), 8u);
  EXPECT_EQ(reg.counter_total("absent"), 0u);
  const auto json = reg.to_json();
  EXPECT_NE(json.find("\"totals\":{\"ops\":8}"), std::string::npos);
}

}  // namespace
}  // namespace lds::store
