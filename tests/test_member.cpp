// The member subsystem (src/member): view wire/persistence round-trips with
// hostile-input sweeps, member-frame codec coverage, epoch fencing between
// two live fabrics (stale and future envelopes both dropped, with the right
// notifications), the conflicting-activation death test, and an in-binary
// integration of the whole tentpole — a StoreService whose L2 quorum spans a
// joined PeerHost over real loopback TCP, with a runtime move back home.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "lds/heartbeat.h"
#include "member/controller.h"
#include "member/fabric.h"
#include "member/peer.h"
#include "member/view.h"
#include "member/wire.h"
#include "net/codec.h"
#include "net/latency.h"
#include "storage/fsutil.h"
#include "store/store_service.h"

namespace lds::member {
namespace {

using Clock = std::chrono::steady_clock;

View sample_view() {
  View v;
  v.epoch = 3;
  v.n1 = 6;
  v.f1 = 1;
  v.n2 = 8;
  v.f2 = 2;
  v.code = codes::BackendKind::PmMbr;
  v.processes[0] = Endpoint{"127.0.0.1", 7000};
  v.processes[1] = Endpoint{"127.0.0.1", 7001};
  v.processes[2] = Endpoint{"10.1.2.3", 7002};
  v.placement[30004] = 1;
  v.placement[30005] = 1;
  v.placement[20001] = 2;
  return v;
}

// ---- View wire form ----------------------------------------------------------

TEST(MemberView, WireRoundTrip) {
  const View v = sample_view();
  const Bytes b = v.encode_bytes();
  const auto r = View::decode_bytes(b);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const View& d = r.value();
  EXPECT_EQ(d.epoch, v.epoch);
  EXPECT_TRUE(d.same_geometry(v));
  EXPECT_EQ(d.processes, v.processes);
  EXPECT_EQ(d.placement, v.placement);
  EXPECT_EQ(d.encode_bytes(), b);  // re-encode identity
  EXPECT_EQ(d.process_of(30004), 1u);
  EXPECT_EQ(d.process_of(30000), kCoordinatorProcess);  // unlisted -> 0
}

TEST(MemberView, RejectsTruncationAtEveryLength) {
  const Bytes b = sample_view().encode_bytes();
  for (std::size_t len = 0; len < b.size(); ++len) {
    Bytes t(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(len));
    const auto r = View::decode_bytes(t);
    EXPECT_FALSE(r.ok()) << "accepted truncation to " << len << " bytes";
  }
}

TEST(MemberView, RejectsUnknownVersionAndBackend) {
  Bytes b = sample_view().encode_bytes();
  Bytes bad = b;
  bad[0] = 99;  // version byte
  EXPECT_FALSE(View::decode_bytes(bad).ok());

  // Corrupt the code-backend name blob (follows ver + epoch + 4 geometry
  // words + its own length prefix): an unknown backend must reject, not
  // default.
  bad = b;
  bad[1 + 8 + 16 + 4] ^= 0xff;
  EXPECT_FALSE(View::decode_bytes(bad).ok());
}

// ---- View persistence (manifest machinery) -----------------------------------

TEST(MemberView, SaveLoadRoundTrip) {
  const std::string dir = ::testing::TempDir() + "member_view_rt";
  ASSERT_TRUE(storage::wipe_dir(dir).ok());
  const View v = sample_view();
  ASSERT_TRUE(v.save(dir).ok());
  const auto r = View::load(dir);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_TRUE(r.value().has_value());
  EXPECT_EQ(r.value()->epoch, v.epoch);
  EXPECT_TRUE(r.value()->same_geometry(v));
  EXPECT_EQ(r.value()->processes, v.processes);
  EXPECT_EQ(r.value()->placement, v.placement);

  // A newer epoch overwrites in place.
  View v2 = v;
  v2.epoch = 9;
  ASSERT_TRUE(v2.save(dir).ok());
  EXPECT_EQ(View::load(dir).value()->epoch, 9u);
}

TEST(MemberView, LoadMissingIsOkAndEmpty) {
  const std::string dir = ::testing::TempDir() + "member_view_none";
  ASSERT_TRUE(storage::wipe_dir(dir).ok());
  const auto r = View::load(dir);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
}

TEST(MemberView, LoadRejectsCorruptAndTruncatedFile) {
  const std::string dir = ::testing::TempDir() + "member_view_bad";
  ASSERT_TRUE(storage::wipe_dir(dir).ok());
  ASSERT_TRUE(sample_view().save(dir).ok());
  const std::string path = dir + "/" + kViewFileName;
  Bytes orig;
  ASSERT_TRUE(storage::read_file_bytes(path, &orig).ok());

  // Truncations: every shortened prefix must fail the manifest's guard.
  for (const double frac : {0.0, 0.25, 0.5, 0.9}) {
    const auto len = static_cast<std::size_t>(
        static_cast<double>(orig.size()) * frac);
    Bytes t(orig.begin(), orig.begin() + static_cast<std::ptrdiff_t>(len));
    ASSERT_TRUE(storage::atomic_write_file(
                    path, std::string(t.begin(), t.end())).ok());
    EXPECT_FALSE(View::load(dir).ok()) << "accepted truncation to " << len;
  }

  // Single-byte corruption anywhere must fail (CRC-guarded).
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    Bytes bad = orig;
    bad[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(bad.size()) - 1))] ^= 0x40;
    ASSERT_TRUE(storage::atomic_write_file(
                    path, std::string(bad.begin(), bad.end())).ok());
    EXPECT_FALSE(View::load(dir).ok()) << "accepted corrupt byte (iter "
                                       << i << ")";
  }
}

// ---- member frame codec ------------------------------------------------------

std::vector<net::MessagePtr> sample_member_frames() {
  register_member_wire();
  const View v = sample_view();
  return {
      MemberMessage::make(Hello{2, 5, 7002}),
      MemberMessage::make(Envelope{5, 20001, 30004}),
      MemberMessage::make(StaleEpoch{6}),
      MemberMessage::make(JoinRequest{7002, {30004, 30005}}),
      MemberMessage::make(ViewPropose{v.encode_bytes()}),
      MemberMessage::make(ViewAck{5, true}),
      MemberMessage::make(ViewAck{5, false}),
      MemberMessage::make(ViewActivate{5}),
      MemberMessage::make(ViewFetch{}),
      MemberMessage::make(SyncL2{5, 4, {0, 1, 2, 7}}),
      MemberMessage::make(SyncDone{5, 4, 3, 1}),
  };
}

TEST(MemberWire, RoundTripEveryType) {
  for (const auto& m : sample_member_frames()) {
    const Bytes wire = net::codec::encode(*m).to_bytes();
    net::MessagePtr back;
    std::size_t consumed = 0;
    const Status s =
        net::codec::decode(wire.data(), wire.size(), &back, &consumed);
    ASSERT_TRUE(s.ok()) << m->type_name() << ": " << s.to_string();
    EXPECT_EQ(consumed, wire.size());
    // Re-encode identity: the decoded message serializes byte-for-byte.
    EXPECT_EQ(net::codec::encode(*back).to_bytes(), wire) << m->type_name();
  }
}

TEST(MemberWire, RejectsTruncationAtEveryLength) {
  for (const auto& m : sample_member_frames()) {
    const Bytes wire = net::codec::encode(*m).to_bytes();
    for (std::size_t len = 0; len < wire.size(); ++len) {
      Bytes t(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
      // Re-patch the length prefix so the truncation hits the body parse.
      if (len >= net::codec::kLenPrefixBytes) {
        const auto n =
            static_cast<std::uint32_t>(len - net::codec::kLenPrefixBytes);
        std::memcpy(t.data(), &n, 4);
      }
      net::MessagePtr out;
      const Status s = net::codec::decode(t, &out);
      EXPECT_FALSE(s.ok()) << m->type_name() << " accepted truncation to "
                           << len;
      EXPECT_TRUE(s.is(StatusCode::kInvalidArgument)) << m->type_name();
    }
  }
}

// ---- epoch fencing between two live fabrics ----------------------------------

struct CaptureNode final : net::Node {
  CaptureNode(net::Network& net, NodeId id)
      : net::Node(net, id, Role::ServerL2) {}
  std::mutex mu;
  std::condition_variable cv;
  int delivered = 0;
  void on_message(NodeId, const net::MessagePtr&) override {
    std::lock_guard<std::mutex> lk(mu);
    ++delivered;
    cv.notify_all();
  }
  bool wait_delivered(int want, double timeout_s) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::duration<double>(timeout_s),
                       [&] { return delivered >= want; });
  }
};

net::ParallelEngine::Options one_lane() {
  net::ParallelEngine::Options o;
  o.lanes = 1;
  return o;
}

/// One in-process "member process": engine + network + fabric, bound.
struct FabricHost {
  net::ParallelEngine engine{one_lane()};
  net::Network net{engine, 0, std::make_unique<net::FixedLatency>(0.1, 0.1,
                                                                  0.1), 1};
  Fabric fabric;

  // Control frames surfaced to the host, by variant index.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::size_t> control;

  explicit FabricHost(ProcessId self) {
    fabric.set_self(self);
    fabric.set_control_handler(
        [this](NodeId, ProcessId, const MemberBody& body) {
          std::lock_guard<std::mutex> lk(mu);
          control.push_back(body.index());
          cv.notify_all();
        });
    fabric.bind(&net, &engine, 0);
  }
  ~FabricHost() {
    fabric.stop();
    engine.stop();
  }
  bool wait_control(std::size_t variant_index, double timeout_s) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::duration<double>(timeout_s), [&] {
      for (const auto i : control) {
        if (i == variant_index) return true;
      }
      return false;
    });
  }
};

TEST(MemberFabric, EpochFencingStaleAndFuture) {
  FabricHost a(0);
  FabricHost b(1);
  ASSERT_TRUE(a.fabric.listen(0).ok());
  ASSERT_TRUE(b.fabric.listen(0).ok());

  // Epoch-1 view: node 30001 lives on A; both processes listed.
  View v1;
  v1.epoch = 1;
  v1.n1 = 6;
  v1.f1 = 1;
  v1.n2 = 8;
  v1.f2 = 2;
  v1.processes[0] = Endpoint{"127.0.0.1", a.fabric.port()};
  v1.processes[1] = Endpoint{"127.0.0.1", b.fabric.port()};
  a.fabric.set_initial_view(v1);
  b.fabric.set_initial_view(v1);
  b.fabric.register_peer(0, Endpoint{"127.0.0.1", a.fabric.port()});

  CaptureNode sink(a.net, 30001);
  a.engine.start();
  b.engine.start();

  // Same epoch: the enveloped frame is forwarded to A's node.
  b.fabric.send_remote(20001, 30001,
                       std::make_shared<core::HeartbeatPing>(1));
  ASSERT_TRUE(sink.wait_delivered(1, 5.0));
  EXPECT_EQ(a.fabric.stats().frames_forwarded, 1u);
  EXPECT_EQ(a.fabric.stats().stale_drops, 0u);

  // A moves to epoch 2; B (still at 1) sends -> fenced as STALE at A, and
  // B is nacked with StaleEpoch (variant index 2).
  View v2 = v1;
  v2.epoch = 2;
  ASSERT_TRUE(a.fabric.propose(v2));
  a.fabric.activate(2);
  b.fabric.send_remote(20001, 30001,
                       std::make_shared<core::HeartbeatPing>(2));
  ASSERT_TRUE(b.wait_control(2, 5.0)) << "no StaleEpoch nack reached B";
  EXPECT_EQ(a.fabric.stats().stale_drops, 1u);
  EXPECT_EQ(a.fabric.stats().frames_forwarded, 1u);  // nothing new delivered

  // B leapfrogs to epoch 3; its envelope is FUTURE at A: dropped, and A's
  // host is told through the control handler (Envelope, variant index 1).
  View v3 = v1;
  v3.epoch = 3;
  ASSERT_TRUE(b.fabric.propose(v3));
  b.fabric.activate(3);
  b.fabric.send_remote(20001, 30001,
                       std::make_shared<core::HeartbeatPing>(3));
  ASSERT_TRUE(a.wait_control(1, 5.0)) << "A never learned it is behind";
  EXPECT_EQ(a.fabric.stats().future_drops, 1u);
  EXPECT_EQ(a.fabric.stats().frames_forwarded, 1u);
  EXPECT_EQ(sink.delivered, 1);

  // Propose/activate sanity: stale or geometry-changing views are refused.
  EXPECT_FALSE(a.fabric.propose(v1)) << "re-proposed an old epoch";
  View bad_geom = v1;
  bad_geom.epoch = 9;
  bad_geom.n2 = 10;
  EXPECT_FALSE(a.fabric.propose(bad_geom)) << "accepted a geometry change";
}

using MemberFabricDeathTest = ::testing::Test;

TEST(MemberFabricDeathTest, ConflictingEpochActivationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fabric f;
  View v1;
  v1.epoch = 1;
  v1.n1 = 6;
  v1.f1 = 1;
  v1.n2 = 8;
  v1.f2 = 2;
  v1.processes[0] = Endpoint{"127.0.0.1", 1};
  f.set_initial_view(v1);
  // No pending view: activating any epoch is a coordinator logic error.
  EXPECT_DEATH(f.activate(5), "conflicting epoch activation");
}

// ---- in-binary integration: one quorum spanning two "processes" --------------

TEST(MemberIntegration, StoreSpansPeerAndMovesBack) {
  Fabric fabric;
  ASSERT_TRUE(fabric.listen(0).ok());

  store::StoreOptions sopt;
  sopt.shards = 1;
  sopt.engine_mode = net::EngineMode::Parallel;
  sopt.engine_threads = 1;
  sopt.batch_window = 0.0;
  sopt.seed = 11;
  sopt.fabric = &fabric;
  store::StoreService svc(sopt);
  EXPECT_EQ(fabric.epoch(), 1u);  // all-local bootstrap view

  // Seed some state BEFORE the peer joins: the join's state-sync must
  // regenerate it onto the peer's freshly adopted (empty) L2 servers.
  for (int i = 0; i < 8; ++i) {
    const auto r = svc.put_sync("key-" + std::to_string(i % 4),
                                Value(Bytes(64, static_cast<std::uint8_t>(i))));
    ASSERT_TRUE(r.ok) << r.error;
  }

  PeerHost::Options po;
  po.join = Endpoint{"127.0.0.1", fabric.port()};
  po.claims = {30006, 30007};
  po.seed = 12;
  PeerHost peer(po);
  ASSERT_TRUE(peer.start().ok());

  const auto t0 = Clock::now();
  while (fabric.epoch() < 2 &&
         std::chrono::duration<double>(Clock::now() - t0).count() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(fabric.epoch(), 2u) << "join never activated";
  EXPECT_EQ(peer.local_l2().size(), 2u);

  // The L2 quorum now spans processes: every op crosses the loopback.
  for (int i = 0; i < 12; ++i) {
    const std::string key = "key-" + std::to_string(i % 4);
    const auto p = svc.put_sync(key, Value(Bytes(64, static_cast<std::uint8_t>(i))));
    ASSERT_TRUE(p.ok) << p.error;
    const auto g = svc.get_sync(key);
    ASSERT_TRUE(g.ok) << g.error;
  }

  // Runtime move: pull both L2 servers home (the admin path lds_stress's
  // controller drives over TCP, minus the RPC hop).
  std::promise<std::pair<Status, std::uint64_t>> moved;
  svc.admin_reconfig(1, {6, 7}, "", 0,
                     [&](Status st, std::uint64_t epoch) {
                       moved.set_value({std::move(st), epoch});
                     });
  auto fut = moved.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  const auto [mst, mepoch] = fut.get();
  ASSERT_TRUE(mst.ok()) << mst.to_string();
  EXPECT_GE(mepoch, 3u);
  EXPECT_EQ(fabric.epoch(), mepoch);

  for (int i = 0; i < 8; ++i) {
    const std::string key = "key-" + std::to_string(i % 4);
    const auto g = svc.get_sync(key);
    ASSERT_TRUE(g.ok) << g.error;
    const auto p = svc.put_sync(key, Value(Bytes(64, 0xAB)));
    ASSERT_TRUE(p.ok) << p.error;
  }

  // Epoch query through the same admin seam.
  std::promise<std::uint64_t> q;
  svc.admin_reconfig(0, {}, "", 0,
                     [&](Status st, std::uint64_t epoch) {
                       ASSERT_TRUE(st.ok());
                       q.set_value(epoch);
                     });
  EXPECT_EQ(q.get_future().get(), fabric.epoch());

  const auto& h = svc.shard_history(0);
  EXPECT_TRUE(h.all_complete());
  const auto a = h.check_atomicity(Bytes{});
  EXPECT_TRUE(a.ok) << a.violation;

  peer.stop();
}

}  // namespace
}  // namespace lds::member
