// Execution-engine layer (net/engine.h): SimEngine semantics + determinism
// guarantee (same seed => byte-identical history and cost totals), and
// ParallelEngine scheduling + store correctness under crash/repair churn.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <functional>
#include <string>

#include "harness/stress.h"
#include "lds/cluster.h"
#include "net/engine.h"
#include "store/client.h"

namespace lds {
namespace {

using net::EngineMode;
using net::ParallelEngine;
using net::SimEngine;

TEST(EngineMode, ParseAndName) {
  EXPECT_EQ(net::parse_engine_mode("sim"), EngineMode::Deterministic);
  EXPECT_EQ(net::parse_engine_mode("deterministic"),
            EngineMode::Deterministic);
  EXPECT_EQ(net::parse_engine_mode("parallel"), EngineMode::Parallel);
  EXPECT_FALSE(net::parse_engine_mode("warp").has_value());
  EXPECT_STREQ(net::engine_mode_name(EngineMode::Deterministic), "sim");
  EXPECT_STREQ(net::engine_mode_name(EngineMode::Parallel), "parallel");
}

TEST(SimEngine, PostRunsInlineAndAfterHereSchedules) {
  SimEngine e;
  EXPECT_TRUE(e.deterministic());
  EXPECT_EQ(e.lanes(), 1u);
  int ran = 0;
  e.post(0, [&] { ran = 1; });
  EXPECT_EQ(ran, 1);  // inline: the single lane is the caller
  e.after_here(2.0, [&] { ran = 2; });
  EXPECT_EQ(ran, 1);  // scheduled, not yet executed
  e.drain();
  EXPECT_EQ(ran, 2);
  EXPECT_GE(e.events_executed(), 1u);
}

TEST(SimEngine, WrapsAnExternalSimulatorUnchanged) {
  net::Simulator sim;
  sim.after(1.0, [] {});
  SimEngine e(sim);
  EXPECT_EQ(&e.lane_sim(0), &sim);  // the same time base, not a copy
  e.drain();
  EXPECT_TRUE(sim.idle());
}

TEST(SimEngine, DrainUntilStopsAtThePredicate) {
  SimEngine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    e.lane_sim(0).after(1.0 + i, [&] { ++fired; });
  }
  EXPECT_TRUE(e.drain_until([&] { return fired == 3; }));
  EXPECT_EQ(fired, 3);
  e.drain();
  EXPECT_EQ(fired, 10);
}

TEST(ParallelEngine, LaneTasksRunAndDrainBarriers) {
  ParallelEngine::Options eopt;
  eopt.lanes = 4;
  ParallelEngine e(eopt);
  ASSERT_EQ(e.lanes(), 4u);
  e.start();
  std::array<std::atomic<int>, 4> counts{};
  for (std::size_t lane = 0; lane < 4; ++lane) {
    for (int i = 0; i < 100; ++i) {
      e.post(lane, [&counts, lane] {
        counts[lane].fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  e.drain();
  for (const auto& c : counts) EXPECT_EQ(c.load(), 100);
}

TEST(ParallelEngine, AfterHereAndCrossLanePosts) {
  ParallelEngine::Options eopt;
  eopt.lanes = 2;
  ParallelEngine e(eopt);
  e.start();
  std::atomic<int> stage{0};
  e.post(0, [&] {
    // On lane 0: schedule on our own clock, then hop to lane 1.
    e.after_here(1.0, [&] {
      e.post(1, [&] { stage.fetch_add(1, std::memory_order_acq_rel); });
    });
  });
  e.drain();
  EXPECT_EQ(stage.load(), 1);
  EXPECT_GE(e.lane_sim(0).events_executed(), 1u);
}

TEST(ParallelEngine, LaneSeedsAreDistinctAndStable) {
  ParallelEngine::Options eopt;
  eopt.lanes = 4;
  eopt.seed = 99;
  ParallelEngine a(eopt);
  ParallelEngine b(eopt);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.lane_seed(i), b.lane_seed(i));  // pure function of (seed, i)
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(a.lane_seed(i), a.lane_seed(j));
    }
  }
}

// ---- determinism guarantee (SimEngine) --------------------------------------

std::string serialize(const core::History& h) {
  std::string out;
  for (const auto& op : h.ops()) {
    out += std::to_string(op.id) + '|';
    out += op.kind == core::OpKind::Write ? 'w' : 'r';
    out += '|' + std::to_string(op.obj) + '|' + std::to_string(op.client);
    out += '|' + std::to_string(op.invoked) + '|' +
           std::to_string(op.responded);
    out += '|' + std::string(op.complete ? "1" : "0");
    out += '|' + op.tag.to_string() + '|';
    for (const auto b : op.value) out += std::to_string(b) + ',';
    out += '\n';
  }
  return out;
}

struct ClusterRun {
  std::string history;
  std::uint64_t messages = 0, data_bytes = 0, meta_bytes = 0, events = 0;

  bool operator==(const ClusterRun&) const = default;
};

/// A concurrent scripted workload (overlapping writes/reads, one crash) on
/// an LdsCluster owning a SimEngine, with heavy-tailed latencies.
ClusterRun run_cluster_workload(std::uint64_t seed) {
  core::LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.writers = 2;
  opt.readers = 2;
  opt.latency = core::LdsCluster::LatencyKind::Exponential;
  opt.seed = seed;
  core::LdsCluster c(opt);
  Rng rng(mix_seed(seed, 7));
  // Closed-loop chains (clients must be well-formed: one op at a time);
  // chains from different clients overlap freely in simulated time.
  std::array<std::size_t, 2> wleft{15, 15}, rleft{15, 15};
  std::function<void(std::size_t)> wnext = [&](std::size_t w) {
    if (wleft[w] == 0) return;
    --wleft[w];
    const auto obj = static_cast<ObjectId>(rng.uniform_int(0, 2));
    c.writer(w).write(obj, rng.bytes(16), [&, w](Tag) {
      c.sim().after(rng.exponential(1.0) + 1e-6, [&, w] { wnext(w); });
    });
  };
  std::function<void(std::size_t)> rnext = [&](std::size_t r) {
    if (rleft[r] == 0) return;
    --rleft[r];
    const auto obj = static_cast<ObjectId>(rng.uniform_int(0, 2));
    c.reader(r).read(obj, [&, r](Tag, Bytes) {
      c.sim().after(rng.exponential(1.0) + 1e-6, [&, r] { rnext(r); });
    });
  };
  for (std::size_t w = 0; w < 2; ++w) {
    c.sim().at(rng.uniform_real(0.0, 3.0), [&, w] { wnext(w); });
  }
  for (std::size_t r = 0; r < 2; ++r) {
    c.sim().at(rng.uniform_real(0.0, 6.0), [&, r] { rnext(r); });
  }
  c.sim().at(10.0, [&c] { c.crash_l2(0); });
  c.settle();
  const auto& total = c.net().costs().total();
  return ClusterRun{serialize(c.history()), total.messages, total.data_bytes,
                    total.meta_bytes, c.sim().events_executed()};
}

TEST(Determinism, SameSeedIsByteIdenticalAcrossSimEngineRuns) {
  const ClusterRun a = run_cluster_workload(1234);
  const ClusterRun b = run_cluster_workload(1234);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a, b);
  // And the seed actually matters (different stream => different execution).
  const ClusterRun c = run_cluster_workload(4321);
  EXPECT_NE(a.history, c.history);
}

/// A closed-loop store workload in Deterministic mode; returns every shard
/// history plus the full metrics snapshot (latency histograms included — all
/// simulated time, so they must replay byte-identically too).
std::string run_store_workload(std::uint64_t seed) {
  store::StoreOptions sopt;
  sopt.shards = 3;
  sopt.seed = seed;
  sopt.engine_mode = EngineMode::Deterministic;
  store::StoreService svc(sopt);
  Rng rng(mix_seed(seed, 0xdead));
  std::size_t remaining = 300;
  std::function<void()> next = [&] {
    if (remaining == 0) return;
    --remaining;
    const std::string key = "key-" + std::to_string(rng.uniform_int(0, 15));
    if (rng.bernoulli(0.5)) {
      svc.get(key, [&](const store::GetResult&) { next(); });
    } else {
      svc.put(key, rng.bytes(32), [&](const store::PutResult&) { next(); });
    }
  };
  for (int c = 0; c < 8; ++c) {
    svc.sim().at(0.0, [&next] { next(); });
  }
  svc.quiesce([&] { return remaining == 0; });
  std::string out;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    out += serialize(svc.shard_history(s));
  }
  out += svc.metrics().to_json();
  return out;
}

TEST(Determinism, StoreServiceDeterministicModeIsReproducible) {
  EXPECT_EQ(run_store_workload(42), run_store_workload(42));
}

/// The unified client surface on top of the store: zero-copy Value handles,
/// tight deadlines that DO expire (racing the batch window), retry backoff
/// timers and conditional puts.  All client-side scheduling runs on the
/// engine clock, so the histories, the client-observed status sequence and
/// the metrics must replay byte-identically for one seed.
std::string run_client_workload(std::uint64_t seed) {
  store::StoreOptions sopt;
  sopt.shards = 2;
  sopt.seed = seed;
  sopt.batch_window = 4.0;     // wide window so 1.0-deadlines expire first
  sopt.admission_limit = 6;    // small enough that retries engage
  store::StoreService svc(sopt);
  store::Client client(svc);
  Rng rng(mix_seed(seed, 0xc11e));
  std::string statuses;
  std::size_t remaining = 200;
  std::function<void()> next = [&] {
    if (remaining == 0) return;
    --remaining;
    const std::string key = "key-" + std::to_string(rng.uniform_int(0, 7));
    store::OpOptions opts;
    if (rng.bernoulli(0.25)) opts.deadline = 1.0;  // expires inside the window
    opts.retry.max_attempts = 3;
    opts.retry.backoff = 2.0;
    auto record = [&statuses, &next](const Status& s) {
      statuses += status_code_name(s.code());
      statuses += ';';
      next();
    };
    if (rng.bernoulli(0.4)) {
      client.get(key,
                 [record](const store::GetResult& r) { record(r.status); },
                 opts);
    } else if (rng.bernoulli(0.15)) {
      client.put_if_version(
          key, rng.bytes(24), Version(kTag0),
          [record](const store::PutResult& r) { record(r.status); }, opts);
    } else {
      client.put(key, rng.bytes(24),
                 [record](const store::PutResult& r) { record(r.status); },
                 opts);
    }
  };
  for (int c = 0; c < 6; ++c) {
    svc.sim().at(0.0, [&next] { next(); });
  }
  svc.quiesce([&] { return remaining == 0; });
  std::string out = statuses + '\n';
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    out += serialize(svc.shard_history(s));
  }
  out += svc.metrics().to_json();
  return out;
}

TEST(Determinism, ClientDeadlinesRetriesAndValuesAreReproducible) {
  const std::string a = run_client_workload(77);
  EXPECT_EQ(a, run_client_workload(77));
  // The workload really exercised the taxonomy, not just Ok.
  EXPECT_NE(a.find("DeadlineExceeded"), std::string::npos);
  EXPECT_NE(a.find("Ok"), std::string::npos);
  EXPECT_NE(a.find("Aborted"), std::string::npos);
  EXPECT_NE(run_client_workload(78), a);
}

// ---- ParallelEngine store correctness ---------------------------------------

TEST(ParallelStore, SyncWrappersRoundTrip) {
  store::StoreOptions sopt;
  sopt.shards = 4;
  sopt.engine_mode = EngineMode::Parallel;
  sopt.engine_threads = 2;
  sopt.seed = 5;
  store::StoreService svc(sopt);
  const auto put = svc.put_sync("alpha", Bytes{1, 2, 3});
  ASSERT_TRUE(put.ok);
  const auto get = svc.get_sync("alpha");
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(get.value, (Bytes{1, 2, 3}));
  EXPECT_EQ(get.tag, put.tag);
  const auto multi = svc.multi_get_sync({"alpha", "beta"});
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_EQ(multi[0].value, (Bytes{1, 2, 3}));
  // Unwritten keys report NotFound instead of interning + reading v0.
  EXPECT_TRUE(multi[1].status.is(StatusCode::kNotFound));
  EXPECT_FALSE(multi[1].ok);
  EXPECT_EQ(svc.outstanding(), 0u);
}

TEST(ParallelStore, ChurnedRunPassesAtomicityAndFreshnessVerifiers) {
  store::StoreOptions sopt;
  sopt.shards = 4;
  sopt.engine_mode = EngineMode::Parallel;
  sopt.engine_threads = 3;  // shards > lanes: lane sharing must stay safe
  sopt.seed = 77;
  sopt.exponential_latency = true;
  sopt.repair.suspect_after =
      2 * sopt.repair.heartbeat_period + 8 * sopt.tau2;
  store::StoreService svc(sopt);

  std::atomic<int> left{300};
  std::atomic<int> crash_budget{5};
  std::function<void(int)> issue = [&](int i) {
    const std::string key = "k" + std::to_string((i * 7) % 24);
    auto next = [&, i] {
      const int l = left.fetch_sub(1, std::memory_order_acq_rel);
      if (l > 240 && crash_budget.fetch_sub(1) > 0) {
        // Crash + heartbeat-driven repair churn under load.
        svc.inject_crash_async(static_cast<std::size_t>(i) % 4,
                               1000u + static_cast<std::uint64_t>(i));
      }
    };
    if (i % 3 == 0) {
      svc.get(key, [next](const store::GetResult&) { next(); });
    } else {
      svc.put(key, Bytes{static_cast<std::uint8_t>(i)},
              [next](const store::PutResult&) { next(); });
    }
  };
  for (int i = 0; i < 300; ++i) issue(i);
  svc.quiesce([&] { return left.load(std::memory_order_acquire) <= 0; });

  EXPECT_EQ(svc.outstanding(), 0u);
  EXPECT_TRUE(svc.idle());
  ASSERT_NE(svc.repair(), nullptr);
  EXPECT_TRUE(svc.repair()->quiet());
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    const auto& h = svc.shard_history(s);
    EXPECT_TRUE(h.all_complete()) << "shard " << s;
    const auto atomicity = h.check_atomicity(Bytes{});
    EXPECT_TRUE(atomicity.ok) << "shard " << s << ": " << atomicity.violation;
    const auto freshness = harness::verify_read_freshness(h);
    EXPECT_TRUE(freshness.ok) << "shard " << s << ": " << freshness.violation;
  }
}

TEST(ParallelStore, StressHarnessParallelEngineRuns) {
  harness::StressOptions opt;
  opt.backend = harness::Backend::Store;
  opt.engine = EngineMode::Parallel;
  opt.threads = 2;
  opt.ops = 240;
  opt.store_shards = 4;
  opt.crash_rate = 0.05;
  opt.seed = 9;
  ASSERT_FALSE(harness::validate_options(opt).has_value());
  const auto report = harness::run_stress(opt);
  EXPECT_TRUE(report.ok()) << harness::format_report(opt, report);
  EXPECT_EQ(report.shards.size(), opt.store_shards);
  EXPECT_EQ(report.total_writes() + report.total_reads(), opt.ops);
}

TEST(ParallelStress, RequiresStoreBackend) {
  harness::StressOptions opt;
  opt.backend = harness::Backend::Lds;
  opt.engine = EngineMode::Parallel;
  EXPECT_TRUE(harness::validate_options(opt).has_value());
}

}  // namespace
}  // namespace lds
