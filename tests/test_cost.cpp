// CostTracker attribution and link classification (src/net/cost.h):
// unknown ops return a zero bucket, internal write-to-L2 bytes land on the
// originating write's OpId (the paper's Section II-d convention), and
// classify_link maps every (from, to) role pair to its tau class.
#include <gtest/gtest.h>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "common/rng.h"
#include "lds/cluster.h"
#include "net/codec.h"
#include "net/cost.h"
#include "net/latency.h"

namespace lds::net {
namespace {

TEST(CostTracker, UnknownOpYieldsZeroBucket) {
  CostTracker t;
  const auto bucket = t.by_op(make_op_id(7, 1));
  EXPECT_EQ(bucket.messages, 0u);
  EXPECT_EQ(bucket.data_bytes, 0u);
  EXPECT_EQ(bucket.meta_bytes, 0u);
}

TEST(CostTracker, RecordsSplitByOpAndLink) {
  CostTracker t;
  const OpId a = make_op_id(1, 1);
  const OpId b = make_op_id(2, 1);
  t.record(LinkClass::ClientL1, a, 100, 10);
  t.record(LinkClass::L1L2, a, 50, 5);
  t.record(LinkClass::ClientL1, b, 7, 1);
  t.record(LinkClass::L1L1, kNoOp, 3, 2);  // unattributed broadcast relay

  EXPECT_EQ(t.by_op(a).data_bytes, 150u);
  EXPECT_EQ(t.by_op(a).messages, 2u);
  EXPECT_EQ(t.by_op(b).data_bytes, 7u);
  // kNoOp traffic counts globally but is attributed to no operation.
  EXPECT_EQ(t.by_op(kNoOp).messages, 0u);
  EXPECT_EQ(t.total().data_bytes, 160u);
  EXPECT_EQ(t.total().meta_bytes, 18u);
  EXPECT_EQ(t.by_link(LinkClass::ClientL1).data_bytes, 107u);
  EXPECT_EQ(t.by_link(LinkClass::L1L2).data_bytes, 50u);
  EXPECT_EQ(t.by_link(LinkClass::L1L1).data_bytes, 3u);

  t.reset();
  EXPECT_EQ(t.total().messages, 0u);
  EXPECT_EQ(t.by_op(a).messages, 0u);
  EXPECT_EQ(t.by_link(LinkClass::ClientL1).messages, 0u);
}

TEST(CostTracker, WriteToL2BytesAttributeToTheOriginatingWrite) {
  // One write through a real cluster: the internal write-to-L2 messages
  // carry the client write's OpId, so its per-op bucket must cover ALL data
  // bytes of the execution — client->L1 put-data plus L1->L2 offload.
  core::LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.writers = 1;
  opt.readers = 1;
  core::LdsCluster cluster(opt);
  Rng rng(3);
  cluster.write_sync(0, 0, rng.bytes(500));
  cluster.settle();  // deferred internal write-to-L2 traffic included

  const OpId write_op = make_op_id(1, 1);
  const auto op_bucket = cluster.net().costs().by_op(write_op);
  const auto l1l2 = cluster.net().costs().by_link(LinkClass::L1L2);
  EXPECT_GT(l1l2.data_bytes, 0u);
  // The write is the only operation, so its attribution equals the total.
  EXPECT_EQ(op_bucket.data_bytes, cluster.net().costs().total().data_bytes);
  EXPECT_GE(op_bucket.data_bytes, 6 * 500u + l1l2.data_bytes);
}

TEST(CostTracker, MetaBytesAreExactEncodedFrameSizes) {
  // The cost model's headline fix: recorded meta bytes are MEASURED — for
  // every message, meta_bytes() equals the codec's encoded frame size minus
  // the data payload.  A crash-free run delivers every sent message, so the
  // delivery observer re-derives the expected totals from the actual wire
  // encodings and they must match the tracker byte for byte.
  core::LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.writers = 1;
  opt.readers = 1;
  core::LdsCluster cluster(opt);

  std::uint64_t observed_meta = 0, observed_data = 0, observed_msgs = 0;
  cluster.net().set_delivery_observer(
      [&](NodeId, NodeId, const net::Payload& p) {
        const std::uint64_t frame = codec::encoded_size(p);
        ASSERT_GT(frame, p.data_bytes());
        observed_meta += frame - p.data_bytes();
        observed_data += p.data_bytes();
        ++observed_msgs;
      });

  Rng rng(7);
  cluster.write_sync(0, 0, rng.bytes(300));
  cluster.read_sync(0, 0);
  cluster.settle();  // include the deferred write-to-L2 offload traffic

  const auto& total = cluster.net().costs().total();
  EXPECT_GT(observed_msgs, 0u);
  EXPECT_EQ(total.messages, observed_msgs);
  EXPECT_EQ(total.meta_bytes, observed_meta);
  EXPECT_EQ(total.data_bytes, observed_data);
}

TEST(CostTracker, PerTypeMetaEqualsFrameMinusBody) {
  // Spot-check the identity per message family on value-bearing types.
  const Value v(Rng(3).bytes(512));
  const auto lds = core::LdsMessage::make(
      0, make_op_id(1, 1), core::PutData{Tag{2, 1}, v});
  const auto abd = baselines::AbdMessage::make(
      0, make_op_id(2, 1), baselines::AbdUpdate{Tag{2, 1}, v});
  const auto cas = baselines::CasMessage::make(
      0, make_op_id(3, 1), baselines::CasPreWrite{Tag{2, 1}, v.to_bytes()});
  for (const auto& m : {net::MessagePtr(lds), net::MessagePtr(abd),
                        net::MessagePtr(cas)}) {
    EXPECT_EQ(m->meta_bytes(), codec::encoded_size(*m) - m->data_bytes())
        << m->type_name();
    EXPECT_EQ(m->data_bytes(), v.size()) << m->type_name();
  }
}

TEST(LinkClass, ClassifiesAllRolePairs) {
  using enum Role;
  const Role all[] = {Writer, Reader, ServerL1, ServerL2, Other};
  for (Role from : all) {
    for (Role to : all) {
      const LinkClass got = classify_link(from, to);
      const bool from_client = from == Writer || from == Reader;
      const bool to_client = to == Writer || to == Reader;
      LinkClass want = LinkClass::Other;
      if ((from_client && to == ServerL1) || (from == ServerL1 && to_client)) {
        want = LinkClass::ClientL1;
      } else if (from == ServerL1 && to == ServerL1) {
        want = LinkClass::L1L1;
      } else if ((from == ServerL1 && to == ServerL2) ||
                 (from == ServerL2 && to == ServerL1)) {
        want = LinkClass::L1L2;
      }
      EXPECT_EQ(got, want) << role_name(from) << " -> " << role_name(to);
    }
  }
  // Spot checks pinning the table (client<->L2 never happens in LDS and
  // must classify as Other, not as a tau1/tau2 link).
  EXPECT_EQ(classify_link(Writer, ServerL2), LinkClass::Other);
  EXPECT_EQ(classify_link(ServerL2, Reader), LinkClass::Other);
  EXPECT_EQ(classify_link(ServerL2, ServerL2), LinkClass::Other);
  EXPECT_EQ(classify_link(Other, ServerL2), LinkClass::Other);
  EXPECT_EQ(classify_link(Writer, Reader), LinkClass::Other);
}

}  // namespace
}  // namespace lds::net
