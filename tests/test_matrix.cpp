// Matrix algebra over GF(2^8): inversion, rank, solving, Vandermonde
// properties (the "any k rows invertible" fact every code here relies on).
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "common/rng.h"
#include "matrix/matrix.h"
#include "matrix/vandermonde.h"

namespace lds::math {
namespace {

Matrix random_matrix(Rng& rng, std::size_t r, std::size_t c) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.at(i, j) = static_cast<gf::Elem>(rng.uniform_int(0, 255));
    }
  }
  return m;
}

TEST(Matrix, IdentityMultiplication) {
  Rng rng(1);
  const Matrix a = random_matrix(rng, 7, 7);
  const Matrix i = Matrix::identity(7);
  EXPECT_EQ(a.mul(i), a);
  EXPECT_EQ(i.mul(a), a);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(2);
  const Matrix a = random_matrix(rng, 5, 9);
  EXPECT_EQ(a.transpose().transpose(), a);
}

TEST(Matrix, MulAgainstHandComputed) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  // GF(256) arithmetic: entry(0,0) = 1*5 ^ 2*7 = 5 ^ 14 = 11, etc.
  Matrix expect(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      expect.at(i, j) = gf::add(gf::mul(a.at(i, 0), b.at(0, j)),
                                gf::mul(a.at(i, 1), b.at(1, j)));
    }
  }
  EXPECT_EQ(a.mul(b), expect);
}

TEST(Matrix, InverseRoundTrip) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 3u, 8u, 17u}) {
    // Random matrices over GF(256) are invertible w.h.p.; retry until one is.
    for (int attempt = 0; attempt < 20; ++attempt) {
      const Matrix a = random_matrix(rng, n, n);
      auto inv = a.inverse();
      if (!inv) continue;
      EXPECT_EQ(a.mul(*inv), Matrix::identity(n)) << "n = " << n;
      EXPECT_EQ(inv->mul(a), Matrix::identity(n));
      break;
    }
  }
}

TEST(Matrix, SingularHasNoInverse) {
  Matrix a(3, 3);  // zero matrix
  EXPECT_FALSE(a.inverse().has_value());

  Matrix b{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}};  // row2 = 2 * row1 in GF? no -
  // in GF(2^8), 2*row1 means scaling by 2: (2,4,6); identical row content.
  EXPECT_FALSE(b.inverse().has_value());
}

TEST(Matrix, RankBasics) {
  EXPECT_EQ(Matrix::identity(5).rank(), 5u);
  EXPECT_EQ(Matrix(4, 4).rank(), 0u);
  Matrix m{{1, 2, 3}, {2, 4, 6}};  // second row = 2 * first
  EXPECT_EQ(m.rank(), 1u);
}

TEST(Matrix, RankOfProductBounded) {
  Rng rng(4);
  const Matrix a = random_matrix(rng, 6, 3);
  const Matrix b = random_matrix(rng, 3, 6);
  EXPECT_LE(a.mul(b).rank(), 3u);
}

TEST(Matrix, SolveMatchesMultiplication) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix a = random_matrix(rng, 6, 6);
    if (a.rank() < 6) continue;
    const Bytes x = rng.bytes(6);
    const auto b = a.mul_vec(x);
    auto solved = a.solve(b);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(Bytes(solved->begin(), solved->end()), x);
  }
}

TEST(Matrix, SolveMatrixMatchesMultiplication) {
  Rng rng(6);
  const Matrix a = random_matrix(rng, 5, 5);
  ASSERT_EQ(a.rank(), 5u) << "unlucky seed";
  const Matrix x = random_matrix(rng, 5, 3);
  const Matrix b = a.mul(x);
  auto solved = a.solve_matrix(b);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(*solved, x);
}

TEST(Matrix, LmulVecIsTransposeMul) {
  Rng rng(7);
  const Matrix a = random_matrix(rng, 4, 6);
  const Bytes v = rng.bytes(4);
  const auto left = a.lmul_vec(v);
  const auto via_transpose = a.transpose().mul_vec(v);
  EXPECT_EQ(left, via_transpose);
}

TEST(Matrix, SelectRowsAndSliceCols) {
  Matrix a{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}};
  const std::vector<int> rows{2, 0};
  const Matrix sel = a.select_rows(rows);
  EXPECT_EQ(sel, (Matrix{{9, 10, 11, 12}, {1, 2, 3, 4}}));
  EXPECT_EQ(a.slice_cols(1, 2), (Matrix{{2, 3}, {6, 7}, {10, 11}}));
}

TEST(Matrix, PasteBlocks) {
  Matrix m(3, 3);
  m.paste(Matrix{{1, 2}, {3, 4}}, 1, 1);
  EXPECT_EQ(m.at(1, 1), 1);
  EXPECT_EQ(m.at(2, 2), 4);
  EXPECT_EQ(m.at(0, 0), 0);
}

TEST(Matrix, IsSymmetric) {
  EXPECT_TRUE((Matrix{{1, 2}, {2, 3}}).is_symmetric());
  EXPECT_FALSE((Matrix{{1, 2}, {3, 4}}).is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

// ---- Vandermonde properties -------------------------------------------------

TEST(Vandermonde, EvalPointsDistinctNonzero) {
  const auto xs = default_eval_points(255);
  std::vector<bool> seen(256, false);
  for (auto x : xs) {
    EXPECT_NE(x, 0);
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
  }
}

TEST(Vandermonde, TooManyPointsAborts) {
  EXPECT_DEATH(default_eval_points(256), "255");
}

class VandermondeSubmatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Any m rows of an n x m Vandermonde matrix with distinct points are
// linearly independent - the foundation of every code in this library.
TEST_P(VandermondeSubmatrixTest, AllRowSubsetsInvertible) {
  const auto [n, m] = GetParam();
  const Matrix v = vandermonde(static_cast<std::size_t>(n),
                               static_cast<std::size_t>(m));
  // Enumerate all m-subsets when feasible; n and m are small by design.
  std::vector<int> subset(static_cast<std::size_t>(m));
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == m) {
      const Matrix sub = v.select_rows(subset);
      EXPECT_EQ(sub.rank(), static_cast<std::size_t>(m));
      return;
    }
    for (int i = start; i <= n - (m - depth); ++i) {
      subset[static_cast<std::size_t>(depth)] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

INSTANTIATE_TEST_SUITE_P(Small, VandermondeSubmatrixTest,
                         ::testing::Values(std::tuple{5, 2}, std::tuple{6, 3},
                                           std::tuple{7, 4}, std::tuple{8, 2},
                                           std::tuple{9, 5}));

}  // namespace
}  // namespace lds::math
