// Product-matrix MSR code (d = 2k - 2): capacity, decode-from-any-k, exact
// repair, and the MSR-point accounting used by the Remark 1/2 ablations.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "codes/pm_msr.h"
#include "common/rng.h"

namespace lds::codes {
namespace {

using Params = std::tuple<int, int>;  // n, k

class PmMsrTest : public ::testing::TestWithParam<Params> {
 protected:
  PmMsrCode make() const {
    const auto [n, k] = GetParam();
    return PmMsrCode(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
  }
};

TEST_P(PmMsrTest, MsrPointAccounting) {
  const auto [n, k] = GetParam();
  (void)n;
  PmMsrCode code = make();
  EXPECT_EQ(code.alpha(), static_cast<std::size_t>(k - 1));
  EXPECT_EQ(code.d(), static_cast<std::size_t>(2 * k - 2));
  EXPECT_EQ(code.file_size(), code.k() * code.alpha());  // B = k alpha (MSR)
}

TEST_P(PmMsrTest, DecodeFromEveryKSubset) {
  const auto [n, k] = GetParam();
  PmMsrCode code = make();
  Rng rng(21);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);

  std::vector<int> subset(static_cast<std::size_t>(k));
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == k) {
      std::vector<IndexedBytes> input;
      for (int idx : subset) input.emplace_back(idx, elems[idx]);
      auto decoded = code.decode(input);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, stripe);
      return;
    }
    for (int i = start; i <= n - (k - depth); ++i) {
      subset[static_cast<std::size_t>(depth)] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

TEST_P(PmMsrTest, ExactRepairFromSlidingHelperWindows) {
  const auto [n, k] = GetParam();
  PmMsrCode code = make();
  const int d = static_cast<int>(code.d());
  Rng rng(22);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);

  for (int target = 0; target < n; ++target) {
    for (int shift = 0; shift < n; shift += 2) {
      std::vector<IndexedBytes> helpers;
      for (int j = 0; helpers.size() < static_cast<std::size_t>(d); ++j) {
        const int h = (target + 1 + shift + j) % n;
        if (h == target) continue;
        helpers.emplace_back(
            h,
            code.helper_data(h, elems[static_cast<std::size_t>(h)], target));
      }
      auto repaired = code.repair(target, helpers);
      ASSERT_TRUE(repaired.has_value());
      EXPECT_EQ(*repaired, elems[static_cast<std::size_t>(target)])
          << "target=" << target << " shift=" << shift;
    }
  }
}

TEST_P(PmMsrTest, EncodeOneMatchesEncode) {
  const auto [n, k] = GetParam();
  (void)k;
  PmMsrCode code = make();
  Rng rng(23);
  const Bytes stripe = rng.bytes(code.file_size());
  const auto elems = code.encode(stripe);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(code.encode_one(stripe, i), elems[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PmMsrTest,
                         ::testing::Values(Params{5, 2}, Params{6, 3},
                                           Params{7, 3}, Params{8, 4},
                                           Params{10, 4}, Params{11, 5}));

TEST(PmMsr, StorageBeatsMbrPerElement) {
  // Remark 2: for the same (n, k, d), MBR stores at most twice MSR.
  // Compare normalized alpha/B: MSR = 1/k, MBR = 2d/(k(2d-k+1)).
  const std::size_t k = 4, d = 6;
  const double msr = 1.0 / static_cast<double>(k);
  const double mbr =
      2.0 * static_cast<double>(d) /
      (static_cast<double>(k) * (2.0 * static_cast<double>(d) -
                                 static_cast<double>(k) + 1.0));
  EXPECT_LT(msr, mbr);
  EXPECT_LE(mbr, 2.0 * msr);
}

TEST(PmMsr, InvalidParametersAbort) {
  EXPECT_DEATH(PmMsrCode(5, 1), "k >= 2");
  EXPECT_DEATH(PmMsrCode(4, 3), "d <= n-1");
}

}  // namespace
}  // namespace lds::codes
