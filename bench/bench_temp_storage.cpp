// E5 - Lemma V.5: temporary (L1) storage under concurrent writes.
//
// The paper bounds the worst-case L1 storage by ceil(5 + 2 mu) theta n1
// where theta is the number of concurrent extended writes per tau1.  We run
// a closed-loop write workload with a varying writer pool (which sets
// theta), measure the peak L1 bytes, and compare with the bound and with the
// permanent L2 cost.
#include <cstdio>

#include "bench_util.h"
#include "lds/workload.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "temp_storage");
  const std::size_t n = 20;
  const double mu = 5.0;
  std::printf("E5: temporary storage vs concurrency (Lemma V.5)\n");
  std::printf("regime: n1 = n2 = %zu, k = d = %zu, mu = %.0f; "
              "bytes normalized by |v|\n\n",
              n, fig6_regime(n).k(), mu);
  print_header({"writers", "theta.meas", "L1.peak", "L1.bound", "L2.final",
                "peak/bound"});

  for (std::size_t writers : {1, 2, 4, 8}) {
    LdsCluster::Options opt;
    opt.cfg = fig6_regime(n);
    opt.writers = writers;
    opt.readers = 1;
    opt.tau1 = 1.0;
    opt.tau0 = 1.0;
    opt.tau2 = mu;
    LdsCluster cluster(opt);

    core::WorkloadOptions wopt;
    wopt.num_objects = 16;
    wopt.duration = 200.0;
    wopt.write_think_mean = 0.0;  // writers saturate: theta ~ writers/latency
    wopt.writers = writers;
    wopt.readers = 0;
    wopt.value_size = fair_value_size(opt.cfg);
    wopt.seed = writers;

    const auto stats = core::run_workload(cluster, wopt);

    const double value = static_cast<double>(wopt.value_size);
    const double peak =
        static_cast<double>(cluster.meter().l1_peak_bytes()) / value;
    const double l2 = static_cast<double>(cluster.meter().l2_bytes()) / value;
    // theta: concurrent extended writes per tau1.  A saturating writer keeps
    // ~1 extended write alive for ~(5 + 2mu) tau1 out of every write round
    // trip, so theta ~ writers * (extended duration / write duration); the
    // bound uses the measured rate * extended duration.
    const double ext_bound =
        core::analysis::extended_write_latency_bound(1.0, 1.0, mu);
    const double theta = stats.writes_per_tau1 * ext_bound;
    const double bound = core::analysis::l1_storage_bound(theta, opt.cfg.n1,
                                                          mu);

    json.add("writers=" + std::to_string(writers), "l1_peak_normalized",
             peak);
    json.add("writers=" + std::to_string(writers), "l1_bound_normalized",
             bound);

    print_cell(writers);
    print_cell(theta);
    print_cell(peak);
    print_cell(bound);
    print_cell(l2);
    print_cell(peak / bound);
    std::printf("\n");
  }

  std::printf("\nexpected shape: peak L1 bytes grow with the writer pool "
              "(theta) and stay far below the ceil(5+2mu) theta n1 worst "
              "case; L2 cost is flat (16 objects x Theta(1)).\n");
  return 0;
}
