// E10 (extension) - the Section-VI open question, answered empirically:
// "it will be interesting to find out the probabilistic guarantees that can
// be obtained if we use RLNCs instead of the codes in [25]".
//
// Monte-Carlo estimate of the probability that an RLNC-coded MBR-point
// system (functional repair, GF(256)) remains fully decodable - every
// k-subset of nodes spans the message - after a chain of R random repairs.
// Each row aggregates many independent trials with different seeds.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "codes/rlnc.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "rlnc_feasibility");
  std::printf("E10 (extension): RLNC functional-repair feasibility, "
              "GF(256), MBR point\n");
  std::printf("P[every k-subset decodes after R random repairs], "
              "100 trials per row\n\n");
  print_header({"n", "k", "d", "repairs", "P(decodable)"});

  struct Config {
    std::size_t n, k, d;
  };
  const Config configs[] = {{5, 2, 3}, {6, 3, 4}, {8, 4, 5}};
  const int kTrials = 100;

  for (const auto& cfg : configs) {
    for (int repairs : {0, 4, 16, 64}) {
      int ok = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(trial) * 7919 + repairs + cfg.n;
        codes::RlncMbrSystem sys(cfg.n, cfg.k, cfg.d, seed);
        Rng rng(seed + 1);
        const Bytes msg = rng.bytes(sys.file_size());
        sys.init_from_message(msg);
        Rng pick(seed + 2);
        for (int r = 0; r < repairs; ++r) {
          const int victim =
              static_cast<int>(pick.uniform_int(0, static_cast<int>(cfg.n) - 1));
          std::vector<int> helpers;
          // Random d-subset of the other nodes.
          std::vector<int> others;
          for (int i = 0; i < static_cast<int>(cfg.n); ++i) {
            if (i != victim) others.push_back(i);
          }
          std::shuffle(others.begin(), others.end(), pick.engine());
          helpers.assign(others.begin(),
                         others.begin() + static_cast<long>(cfg.d));
          sys.repair(victim, helpers);
        }
        if (sys.all_k_subsets_decode()) ++ok;
      }
      json.add("n=" + std::to_string(cfg.n) + " k=" +
                   std::to_string(cfg.k) + " d=" + std::to_string(cfg.d) +
                   " repairs=" + std::to_string(repairs),
               "p_decodable", static_cast<double>(ok) / kTrials);

      print_cell(cfg.n);
      print_cell(cfg.k);
      print_cell(cfg.d);
      print_cell(static_cast<std::size_t>(repairs));
      print_cell(static_cast<double>(ok) / kTrials);
      std::printf("\n");
    }
  }

  std::printf("\nexpected shape: over GF(256) the failure probability per "
              "random matrix event is O(1/q) = O(2^-8); decodability stays "
              "at or very near 1.0 even after 64 functional repairs - "
              "supporting the paper's conjecture that RLNCs give near-"
              "optimal probabilistic guarantees.  The integration caveat "
              "(coordinates change, so coefficient vectors must ship with "
              "coded elements and the fixed C1 restriction no longer "
              "applies) is discussed in DESIGN.md.\n");
  return 0;
}
