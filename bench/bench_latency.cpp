// E4 - Lemma V.4: operation latency under bounded link delays.
//
// With deterministic worst-case delays (tau1 client<->L1, tau0 L1<->L1,
// tau2 L1<->L2) the paper bounds:
//   write                <= 4 tau1 + 2 tau0
//   extended write       <= max(3 tau1 + 2 tau0 + 2 tau2, 4 tau1 + 2 tau0)
//   read                 <= max(6 tau1 + 2 tau2, 6 tau1 + 2 tau0 + tau2)
// (read bound as derived in the paper's appendix; the main-text statement
// has a typo'd 5 tau1 term).
//
// We sweep mu = tau2 / tau1 and measure: the write duration, the time until
// the written value is garbage-collected from every L1 list (the extended
// write), a quiescent read (regeneration path - the tau2-dependent case) and
// a read served from L1 temporary storage.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "latency");
  std::printf("E4: operation latency vs Lemma V.4 bounds "
              "(tau0 = tau1 = 1, sweep mu = tau2/tau1)\n\n");
  print_header({"mu", "write", "w.bound", "extwrite", "ew.bound", "read(d0)",
                "r.bound"});

  for (double mu : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    LdsCluster::Options opt;
    opt.cfg = fig6_regime(20);
    opt.writers = 1;
    opt.readers = 1;
    opt.tau1 = 1.0;
    opt.tau0 = 1.0;
    opt.tau2 = mu;
    LdsCluster cluster(opt);
    Rng rng(7);
    const std::size_t value_size = fair_value_size(opt.cfg);

    // Write; track completion time and the extended-write end (L1 drained).
    const double t_start = cluster.sim().now();
    bool write_done = false;
    double t_write_done = 0;
    cluster.writer(0).write(0, rng.bytes(value_size), [&](Tag) {
      write_done = true;
      t_write_done = cluster.sim().now();
    });
    double t_extended = 0;
    while (cluster.sim().step()) {
      if (cluster.meter().l1_bytes() == 0 && write_done && t_extended == 0) {
        t_extended = cluster.sim().now();
      }
    }
    if (t_extended == 0) t_extended = cluster.sim().now();

    const double write_dur = t_write_done - t_start;
    const double ext_dur = t_extended - t_start;

    // Quiescent read: the regeneration path.
    const double t_r = cluster.sim().now();
    cluster.read_sync(0, 0);
    const double read_dur = cluster.sim().now() - t_r;

    const std::string params = "mu=" + std::to_string(mu);
    json.add(params, "write_latency_tau1", write_dur);
    json.add(params, "extended_write_latency_tau1", ext_dur);
    json.add(params, "read_latency_tau1", read_dur);

    print_cell(mu);
    print_cell(write_dur);
    print_cell(core::analysis::write_latency_bound(1.0, 1.0));
    print_cell(ext_dur);
    print_cell(core::analysis::extended_write_latency_bound(1.0, 1.0, mu));
    print_cell(read_dur);
    print_cell(core::analysis::read_latency_bound(1.0, 1.0, mu));
    std::printf("\n");
  }

  std::printf("\nexpected shape: write duration is mu-independent (edge-only"
              "); extended write and quiescent reads track 2 tau2; every "
              "measured value is within its bound.\n");
  return 0;
}
