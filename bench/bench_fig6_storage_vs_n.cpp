// E6 - Fig. 6 of the paper: L1 and L2 storage cost as a function of the
// number of objects N.
//
// Part 1 reproduces the figure exactly at the paper's parameters
// (n1 = n2 = 100, k = d = 80, tau2 = 10 tau1, theta = 100) from the
// Lemma V.5 bounds - the same closed forms the paper plotted.
// Part 2 validates the shape in simulation at laptop scale
// (n1 = n2 = 20, k = d = 16): permanent storage grows Theta(N) while the
// temporary peak is set by the write concurrency, not by N.
#include <cstdio>

#include "bench_util.h"
#include "lds/workload.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "fig6_storage_vs_n");

  // ---- Part 1: the paper's exact parameters. --------------------------------
  {
    const std::size_t n1 = 100, n2 = 100, k = 80;
    const double mu = 10.0, theta = 100.0;
    std::printf("E6 part 1: Fig. 6 reproduction (analytic), n1=n2=100, "
                "k=d=80, mu=10, theta=100\n\n");
    print_header({"N", "L1.cost", "L2.cost", "total", "L2.share"});
    for (double N : {1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6}) {
      const double l1 = core::analysis::l1_storage_bound(theta, n1, mu);
      const double l2 = core::analysis::l2_storage_multi(
          static_cast<std::size_t>(N), n2, k);
      json.add("N=" + std::to_string(static_cast<std::size_t>(N)),
               "total_storage_bound_normalized", l1 + l2);

      print_cell(N);
      print_cell(l1);
      print_cell(l2);
      print_cell(l1 + l2);
      print_cell(l2 / (l1 + l2));
      std::printf("\n");
    }
    std::printf("\nL2 storage / object = %.3f |v| "
                "(replication in L2 would cost %zu |v| per object)\n\n",
                core::analysis::l2_storage_multi(1, n2, k),
                n2);
  }

  // ---- Part 2: simulated validation at laptop scale. ------------------------
  {
    const std::size_t n = 20;
    std::printf("E6 part 2: simulated shape check, n1=n2=%zu, k=d=%zu, "
                "mu=5, 4 saturating writers\n\n",
                n, fig6_regime(n).k());
    print_header({"N", "L1.peak/|v|", "L2.final/|v|", "L2/N"});
    for (std::size_t num_objects : {4, 16, 64, 256}) {
      LdsCluster::Options opt;
      opt.cfg = fig6_regime(n);
      // Give v0 the same size as written values so that every one of the N
      // objects contributes a full-size coded footprint to L2, as in the
      // paper's model where all N unit-size objects are stored permanently.
      opt.cfg.initial_value = Bytes(fair_value_size(opt.cfg), 0x42);
      opt.writers = 4;
      opt.readers = 1;
      opt.tau2 = 5.0;
      LdsCluster cluster(opt);

      core::WorkloadOptions wopt;
      wopt.num_objects = num_objects;
      wopt.duration = 150.0;
      wopt.writers = 4;
      wopt.readers = 0;
      wopt.value_size = fair_value_size(opt.cfg);
      wopt.seed = num_objects;
      run_workload(cluster, wopt);

      // Touch every object once so its v0 (or a written value) is resident
      // in L2, as in the paper where all N objects are stored permanently.
      for (ObjectId obj = 0; obj < num_objects; ++obj) {
        cluster.read_sync(0, obj);
      }
      cluster.settle();

      const double value = static_cast<double>(wopt.value_size);
      const double l1_peak =
          static_cast<double>(cluster.meter().l1_peak_bytes()) / value;
      const double l2 =
          static_cast<double>(cluster.meter().l2_bytes()) / value;
      json.add("N=" + std::to_string(num_objects),
               "l2_per_object_normalized",
               l2 / static_cast<double>(num_objects));

      print_cell(num_objects);
      print_cell(l1_peak);
      print_cell(l2);
      print_cell(l2 / static_cast<double>(num_objects));
      std::printf("\n");
    }
    std::printf("\nexpected shape (as in Fig. 6): L2 grows linearly in N "
                "(constant L2/N ~ 2 n2/(k+1)); the L1 peak is set by write "
                "concurrency and does not scale with N.\n");
  }
  return 0;
}
