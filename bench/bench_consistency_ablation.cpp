// E11 (extension ablation) - what each design lever buys on the read path.
//
// Three configurations of the same deployment, quiescent (delta = 0) reads:
//   atomic        - the paper's LDS (three-phase read, MBR regeneration);
//   regular       - Section-VI consistency ablation: no put-tag phase;
//   proxy-cache   - Section-I cache mode: committed value kept in L1.
//
// Reported per configuration: read latency (tau1 units), read communication
// cost split into the cheap client<->L1 links vs the expensive L1<->L2
// links, and the steady-state L1 storage the configuration pays for it.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "consistency_ablation");
  const std::size_t n = 20;
  const double mu = 10.0;
  std::printf("E11 (ablation): read-path design levers, n1=n2=%zu "
              "(k=d=%zu), mu=%.0f\n\n",
              n, fig6_regime(n).k(), mu);
  print_header({"config", "latency", "cost.cl-L1", "cost.L1-L2", "L1.bytes"});

  struct Config {
    const char* name;
    bool regular;
    bool cache;
  };
  const Config configs[] = {
      {"atomic", false, false},
      {"regular", true, false},
      {"proxy-cache", false, true},
  };

  for (const auto& cfg : configs) {
    LdsCluster::Options opt;
    opt.cfg = fig6_regime(n);
    opt.cfg.proxy_cache = cfg.cache;
    opt.read_consistency = cfg.regular ? core::ReadConsistency::Regular
                                       : core::ReadConsistency::Atomic;
    opt.writers = 1;
    opt.readers = 1;
    opt.tau1 = 1.0;
    opt.tau0 = 1.0;
    opt.tau2 = mu;
    LdsCluster cluster(opt);
    Rng rng(5);
    const std::size_t value_size = fair_value_size(opt.cfg);

    cluster.write_sync(0, 0, rng.bytes(value_size));
    cluster.settle();

    const auto before_cl = cluster.net().costs().by_link(
        net::LinkClass::ClientL1);
    const auto before_l2 = cluster.net().costs().by_link(net::LinkClass::L1L2);
    const double t0 = cluster.sim().now();
    cluster.read_sync(0, 0);
    const double latency = cluster.sim().now() - t0;
    const auto after_cl = cluster.net().costs().by_link(
        net::LinkClass::ClientL1);
    const auto after_l2 = cluster.net().costs().by_link(net::LinkClass::L1L2);

    json.add(std::string("config=") + cfg.name, "read_latency_tau1",
             latency);
    json.add(std::string("config=") + cfg.name, "read_cost_l1l2_normalized",
             static_cast<double>(after_l2.data_bytes -
                                 before_l2.data_bytes) /
                 static_cast<double>(value_size));

    print_cell(cfg.name);
    print_cell(latency);
    print_cell(static_cast<double>(after_cl.data_bytes -
                                   before_cl.data_bytes) /
               static_cast<double>(value_size));
    print_cell(static_cast<double>(after_l2.data_bytes -
                                   before_l2.data_bytes) /
               static_cast<double>(value_size));
    print_cell(static_cast<double>(cluster.meter().l1_bytes()) /
               static_cast<double>(value_size));
    std::printf("\n");
  }

  std::printf("\nexpected shape: regular shaves 2 tau1 of latency off "
              "atomic at identical cost; proxy-cache eliminates the 2 tau2 "
              "round trip and all L1-L2 read traffic, but moves ~n1 |v| "
              "over client-L1 links and pays n1 |v| of edge storage per "
              "object.  The paper's default (atomic, no cache) minimizes "
              "edge storage; the levers trade it for latency.\n");
  return 0;
}
