// E3 - Lemma V.3 and Remark 2: permanent (L2) storage cost per object.
//
// MBR back-end:          2 d n2 / (k (2d - k + 1))  = Theta(1)
// MSR / RS back-end:     n2 / k                     = Theta(1), up to 2x less
// replicated back-end:   n2                         (what LDS avoids)
//
// We measure the actual bytes held by L2 servers after one write settles,
// for each back-end kind, and print them against the formulas.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "storage_cost");
  std::printf("E3: permanent storage cost per object (Lemma V.3, Remark 2)\n");
  std::printf("regime: n1 = n2 = n, k = d = 0.8 n, bytes normalized by "
              "|v|\n\n");
  print_header({"n", "backend", "formula", "measured", "ratio"});

  for (std::size_t n : {10, 20, 40, 80, 100}) {
    for (auto kind : {codes::BackendKind::PmMbr, codes::BackendKind::Rs,
                      codes::BackendKind::Replication}) {
      LdsCluster::Options opt;
      opt.cfg = fig6_regime(n);
      opt.cfg.backend = kind;
      opt.writers = 1;
      opt.readers = 1;
      LdsCluster cluster(opt);
      Rng rng(n);
      const std::size_t value_size = fair_value_size(opt.cfg);

      cluster.write_sync(0, 0, rng.bytes(value_size));
      cluster.settle();

      const double measured =
          static_cast<double>(cluster.meter().l2_bytes()) /
          static_cast<double>(value_size);
      double formula = 0;
      switch (kind) {
        case codes::BackendKind::PmMbr:
          formula = core::analysis::l2_storage_per_object(
              opt.cfg.n2, opt.cfg.k(), opt.cfg.d());
          break;
        case codes::BackendKind::Rs:
          formula = core::analysis::msr_storage_per_object(opt.cfg.n2,
                                                           opt.cfg.k());
          break;
        case codes::BackendKind::Replication:
          formula = static_cast<double>(opt.cfg.n2);
          break;
      }

      json.add("n=" + std::to_string(n) + " backend=" +
                   codes::backend_name(kind),
               "l2_storage_normalized", measured);

      print_cell(n);
      print_cell(codes::backend_name(kind));
      print_cell(formula);
      print_cell(measured);
      print_cell(measured / formula);
      std::printf("\n");
    }
  }

  std::printf("\nexpected shape: MBR ~ 2.5 |v| per object independent of n "
              "(Theta(1)); RS/MSR point is ~2x cheaper (Remark 2); "
              "replication costs n2 |v| and grows linearly.\n");
  return 0;
}
