// E1 - Lemma V.2, write cost.
//
// Regenerates the paper's write-cost claim: a write costs
//
//     n1 + n1 n2 2d / (k (2d - k + 1))  =  Theta(n1)
//
// normalized units of |v| (first term: PUT-DATA to every L1 server; second:
// every L1 server offloads n2 coded elements of alpha = 2d/(k(2d-k+1)) |v|).
// We sweep the layer size in the paper's Fig. 6 regime (k = d = 0.8 n) and
// print the measured per-operation bytes against the formula.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "write_cost");
  std::printf("E1: write communication cost (Lemma V.2)\n");
  std::printf("regime: n1 = n2 = n, f1 = f2 = n/10 (k = d = 0.8 n), "
              "cost normalized by |v|\n\n");
  print_header({"n", "k=d", "formula", "measured", "ratio", "theta(n1)=n"});

  for (std::size_t n : {10, 20, 40, 60, 80, 100}) {
    LdsCluster::Options opt;
    opt.cfg = fig6_regime(n);
    opt.writers = 1;
    opt.readers = 1;
    LdsCluster cluster(opt);
    Rng rng(n);

    const std::size_t value_size = fair_value_size(opt.cfg);
    cluster.write_sync(0, 0, rng.bytes(value_size));
    cluster.settle();  // include deferred internal write-to-L2 traffic

    const OpId op = make_op_id(1, 1);
    const double measured = normalized_op_cost(cluster, op, value_size);
    const double formula = core::analysis::write_cost(
        opt.cfg.n1, opt.cfg.n2, opt.cfg.k(), opt.cfg.d());

    json.add("n=" + std::to_string(n), "write_cost_normalized", measured);
    json.add("n=" + std::to_string(n), "write_cost_formula", formula);

    print_cell(n);
    print_cell(opt.cfg.k());
    print_cell(formula);
    print_cell(measured);
    print_cell(measured / formula);
    print_cell(static_cast<double>(n));
    std::printf("\n");
  }

  std::printf("\nexpected shape: measured/formula ~ 1 (striping overhead "
              "< ~2%%); cost grows linearly in n1.\n");
  return 0;
}
