// E9: micro-benchmarks of the coding substrate - GF kernels, Reed-Solomon,
// product-matrix MBR/MSR encode / decode / helper / repair throughput.
//
// Two modes:
//   (default)        google-benchmark over the BM_* suites below.
//   --json <path>    snapshot mode: manually timed GB/s of the GF kernels by
//                    ISA x length and of encode_value by code x size x path
//                    (stripewise-scalar baseline, planar SIMD, planar +
//                    engine lanes), written as BENCH_gf256.json rows.  This
//                    is the perf-trajectory record for the SIMD gate
//                    (ROADMAP: >= 4x encode at 4 KiB stripes vs scalar).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_util.h"
#include "codes/pm_mbr.h"
#include "codes/pm_msr.h"
#include "codes/rs.h"
#include "codes/striped.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "net/engine.h"

namespace {

using namespace lds;

void BM_GfAxpy(benchmark::State& state) {
  Rng rng(1);
  const Bytes x = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes y = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    gf::axpy(y, 0x53, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfAxpy)->Arg(1024)->Arg(64 * 1024);

void BM_GfDot(benchmark::State& state) {
  Rng rng(2);
  const Bytes a = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes b = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::dot(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfDot)->Arg(1024)->Arg(64 * 1024);

void BM_RsEncode(benchmark::State& state) {
  const std::size_t n = 14, k = 10;
  codes::StripedCode code(std::make_shared<codes::RsRegenerating>(n, k));
  Rng rng(3);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_value(value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RsEncode)->Arg(4096)->Arg(64 * 1024);

void BM_RsDecode(benchmark::State& state) {
  const std::size_t n = 14, k = 10;
  codes::StripedCode code(std::make_shared<codes::RsRegenerating>(n, k));
  Rng rng(4);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> input;
  for (std::size_t i = 0; i < k; ++i) {
    input.emplace_back(static_cast<int>(i + 3), elems[i + 3]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_value(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RsDecode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrEncode(benchmark::State& state) {
  // The paper's back-end configuration shape: k = d (symmetric layers).
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(5);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_value(value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMbrEncode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrDecode(benchmark::State& state) {
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(6);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> input;
  for (std::size_t i = 0; i < k; ++i) {
    input.emplace_back(static_cast<int>(i), elems[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_value(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMbrDecode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrHelper(benchmark::State& state) {
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(7);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes elem = code.encode_element(value, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.helper_data(12, elem, 0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elem.size()));
}
BENCHMARK(BM_PmMbrHelper)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrRepair(benchmark::State& state) {
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(8);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> helpers;
  for (std::size_t h = 1; h <= d; ++h) {
    helpers.emplace_back(static_cast<int>(h),
                         code.helper_data(static_cast<int>(h), elems[h], 0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.repair_element(0, helpers));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMbrRepair)->Arg(4096)->Arg(64 * 1024);

void BM_PmMsrEncode(benchmark::State& state) {
  const std::size_t n = 14, k = 5;  // d = 8
  codes::StripedCode code(std::make_shared<codes::PmMsrCode>(n, k));
  Rng rng(9);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_value(value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMsrEncode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMsrDecode(benchmark::State& state) {
  const std::size_t n = 14, k = 5;
  codes::StripedCode code(std::make_shared<codes::PmMsrCode>(n, k));
  Rng rng(10);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> input;
  for (std::size_t i = 0; i < k; ++i) {
    input.emplace_back(static_cast<int>(i + 1), elems[i + 1]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_value(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMsrDecode)->Arg(4096);

// ---- --json snapshot mode ---------------------------------------------------

/// Wall-clock GB/s of `op` (which processes `bytes` per call), timed over
/// enough repetitions to absorb clock granularity.
template <typename Op>
double measure_gbps(std::size_t bytes, Op&& op) {
  using clock = std::chrono::steady_clock;
  // Warm up (page in buffers, build lazy encode maps).
  op();
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    if (sec >= 0.05) {
      return static_cast<double>(bytes) * static_cast<double>(iters) / sec /
             1e9;
    }
    iters *= 4;
  }
}

int run_snapshot(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "codes_micro");
  const gf::Isa best = gf::active_isa();
  const std::size_t kKernelLens[] = {4096, 64 * 1024};

  // GF kernels by ISA and length.
  Rng rng(1);
  for (const std::size_t len : kKernelLens) {
    const Bytes x = rng.bytes(len);
    Bytes y = rng.bytes(len);
    Bytes z(len);
    double scalar_axpy = 0;
    for (const gf::Isa isa : gf::supported_isas()) {
      gf::select_isa(isa);
      const std::string p =
          std::string("isa=") + gf::isa_name(isa) + " len=" +
          std::to_string(len);
      const double axpy_gbps =
          measure_gbps(len, [&] { gf::axpy(y, 0x53, x); });
      const double mul_gbps =
          measure_gbps(len, [&] { gf::mul_into(z, 0x53, x); });
      const double dot_gbps = measure_gbps(len, [&] {
        benchmark::DoNotOptimize(gf::dot(x, z));
      });
      json.add(p, "axpy_gbps", axpy_gbps);
      json.add(p, "mul_into_gbps", mul_gbps);
      json.add(p, "dot_gbps", dot_gbps);
      std::printf("%-28s axpy %8.2f GB/s  mul_into %8.2f GB/s  dot %8.2f GB/s\n",
                  p.c_str(), axpy_gbps, mul_gbps, dot_gbps);
      if (isa == gf::Isa::Scalar) {
        scalar_axpy = axpy_gbps;
      } else if (scalar_axpy > 0) {
        json.add(p, "axpy_speedup_vs_scalar", axpy_gbps / scalar_axpy);
      }
    }
  }
  gf::select_isa(best);

  // encode_value by code x value size x path.  "stripewise_scalar" is the
  // pre-SIMD baseline (reference loop on scalar kernels); "planar" is the
  // production serial path on the best ISA; "planar_lanes" adds the engine
  // fan-out (4 lanes; wall-clock gain tracks physical cores).
  struct NamedCode {
    const char* name;
    codes::StripedCode code;
  };
  NamedCode codes[] = {
      {"rs_14_10",
       codes::StripedCode(std::make_shared<codes::RsRegenerating>(14, 10))},
      {"pm_mbr_20_8_8",
       codes::StripedCode(std::make_shared<codes::PmMbrCode>(20, 8, 8))},
      {"pm_msr_14_5",
       codes::StripedCode(std::make_shared<codes::PmMsrCode>(14, 5))},
  };
  net::ParallelEngine::Options popt;
  popt.lanes = 4;
  net::ParallelEngine engine(popt);
  engine.start();
  for (auto& nc : codes) {
    for (const std::size_t size :
         {std::size_t{4096}, std::size_t{64 * 1024}, std::size_t{1 << 20}}) {
      const Bytes value = rng.bytes(size);
      const std::string p =
          std::string("code=") + nc.name + " size=" + std::to_string(size);
      gf::select_isa(gf::Isa::Scalar);
      const double base = measure_gbps(size, [&] {
        benchmark::DoNotOptimize(nc.code.encode_value_stripewise(value));
      });
      gf::select_isa(best);
      const double planar = measure_gbps(size, [&] {
        benchmark::DoNotOptimize(nc.code.encode_value(value));
      });
      const double lanes = measure_gbps(size, [&] {
        benchmark::DoNotOptimize(nc.code.encode_value(value, &engine));
      });
      json.add(p, "encode_stripewise_scalar_gbps", base);
      json.add(p, "encode_planar_gbps", planar);
      json.add(p, "encode_planar_lanes_gbps", lanes);
      json.add(p, "encode_speedup_vs_scalar", planar / base);
      std::printf(
          "%-32s stripewise(scalar) %7.3f GB/s  planar %7.3f GB/s  "
          "+lanes %7.3f GB/s  speedup %5.1fx\n",
          p.c_str(), base, planar, lanes, planar / base);
    }
  }
  engine.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return run_snapshot(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
