// E9: micro-benchmarks of the coding substrate - GF kernels, Reed-Solomon,
// product-matrix MBR/MSR encode / decode / helper / repair throughput.
//
// These are the only google-benchmark binaries; the system benches (E1-E8)
// print paper-formula-vs-measured tables instead.
#include <benchmark/benchmark.h>

#include "codes/pm_mbr.h"
#include "codes/pm_msr.h"
#include "codes/rs.h"
#include "codes/striped.h"
#include "common/rng.h"
#include "gf/gf256.h"

namespace {

using namespace lds;

void BM_GfAxpy(benchmark::State& state) {
  Rng rng(1);
  const Bytes x = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes y = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    gf::axpy(y, 0x53, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfAxpy)->Arg(1024)->Arg(64 * 1024);

void BM_GfDot(benchmark::State& state) {
  Rng rng(2);
  const Bytes a = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes b = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::dot(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfDot)->Arg(1024)->Arg(64 * 1024);

void BM_RsEncode(benchmark::State& state) {
  const std::size_t n = 14, k = 10;
  codes::StripedCode code(std::make_shared<codes::RsRegenerating>(n, k));
  Rng rng(3);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_value(value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RsEncode)->Arg(4096)->Arg(64 * 1024);

void BM_RsDecode(benchmark::State& state) {
  const std::size_t n = 14, k = 10;
  codes::StripedCode code(std::make_shared<codes::RsRegenerating>(n, k));
  Rng rng(4);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> input;
  for (std::size_t i = 0; i < k; ++i) {
    input.emplace_back(static_cast<int>(i + 3), elems[i + 3]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_value(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RsDecode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrEncode(benchmark::State& state) {
  // The paper's back-end configuration shape: k = d (symmetric layers).
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(5);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_value(value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMbrEncode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrDecode(benchmark::State& state) {
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(6);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> input;
  for (std::size_t i = 0; i < k; ++i) {
    input.emplace_back(static_cast<int>(i), elems[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_value(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMbrDecode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrHelper(benchmark::State& state) {
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(7);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes elem = code.encode_element(value, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.helper_data(12, elem, 0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elem.size()));
}
BENCHMARK(BM_PmMbrHelper)->Arg(4096)->Arg(64 * 1024);

void BM_PmMbrRepair(benchmark::State& state) {
  const std::size_t n = 20, k = 8, d = 8;
  codes::StripedCode code(std::make_shared<codes::PmMbrCode>(n, k, d));
  Rng rng(8);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> helpers;
  for (std::size_t h = 1; h <= d; ++h) {
    helpers.emplace_back(static_cast<int>(h),
                         code.helper_data(static_cast<int>(h), elems[h], 0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.repair_element(0, helpers));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMbrRepair)->Arg(4096)->Arg(64 * 1024);

void BM_PmMsrEncode(benchmark::State& state) {
  const std::size_t n = 14, k = 5;  // d = 8
  codes::StripedCode code(std::make_shared<codes::PmMsrCode>(n, k));
  Rng rng(9);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_value(value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMsrEncode)->Arg(4096)->Arg(64 * 1024);

void BM_PmMsrDecode(benchmark::State& state) {
  const std::size_t n = 14, k = 5;
  codes::StripedCode code(std::make_shared<codes::PmMsrCode>(n, k));
  Rng rng(10);
  const Bytes value = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto elems = code.encode_value(value);
  std::vector<codes::IndexedBytes> input;
  for (std::size_t i = 0; i < k; ++i) {
    input.emplace_back(static_cast<int>(i + 1), elems[i + 1]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_value(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PmMsrDecode)->Arg(4096);

}  // namespace
