// bench_storage_engine — durability-path microbench: WAL append throughput
// under each SyncPolicy, and recovery (reopen) latency / replay throughput
// as a function of surviving object count, with and without a checkpoint.
//
//   bench_storage_engine [--json BENCH_durability.json]
//
// The recovery numbers are the cost a durable L2 server pays at restart
// BEFORE it can serve; the checkpoint rows show what the snapshot buys
// (replay work bounded by the post-checkpoint tail instead of the full
// history).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "storage/backend.h"

namespace {

using namespace lds;
namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("lds_bench_storage_" + std::to_string(::getpid()) + "_" + tag))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

constexpr std::size_t kElementBytes = 1024;

std::unique_ptr<storage::DurableBackend> must_open(
    const std::string& dir, storage::DurabilityPolicy policy) {
  auto be = storage::DurableBackend::open(dir, policy);
  if (!be.ok()) {
    std::fprintf(stderr, "bench: open %s: %s\n", dir.c_str(),
                 be.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(be).value();
}

void bench_append(bench::JsonReporter& json) {
  std::printf("WAL append path (%zu-byte elements)\n", kElementBytes);
  bench::print_header({"sync", "appends", "appends/s", "MB/s"});
  for (const storage::SyncPolicy sync :
       {storage::SyncPolicy::Always, storage::SyncPolicy::GroupCommit,
        storage::SyncPolicy::Never}) {
    // Always pays one fdatasync per append: keep the op count modest so the
    // bench stays fast on spinning metal, but identical across policies.
    const std::size_t appends = 2000;
    storage::DurabilityPolicy policy;
    policy.sync = sync;
    ScopedDir dir(std::string("append_") + storage::sync_policy_name(sync));
    auto be = must_open(dir.path, policy);
    Rng rng(1);
    const Bytes element = rng.bytes(kElementBytes);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < appends; ++i) {
      const Status st =
          be->put(static_cast<ObjectId>(i % 64),
                  Tag{i / 64 + 1, static_cast<NodeId>(1)}, element);
      if (!st.ok()) {
        std::fprintf(stderr, "bench: put: %s\n", st.to_string().c_str());
        std::exit(1);
      }
    }
    if (const Status st = be->sync(); !st.ok()) {
      std::fprintf(stderr, "bench: sync: %s\n", st.to_string().c_str());
      std::exit(1);
    }
    const double dt = seconds_since(t0);
    const double per_sec = static_cast<double>(appends) / dt;
    const double mb_per_sec =
        static_cast<double>(be->wal_stats().appended_bytes) / dt / 1e6;
    bench::print_cell(storage::sync_policy_name(sync));
    bench::print_cell(appends);
    bench::print_cell(per_sec);
    bench::print_cell(mb_per_sec);
    std::printf("\n");
    const std::string params =
        std::string("sync=") + storage::sync_policy_name(sync) +
        " element_bytes=" + std::to_string(kElementBytes);
    json.add(params, "appends_per_sec", per_sec);
    json.add(params, "append_mb_per_sec", mb_per_sec);
  }
  std::printf("\n");
}

void bench_recovery(bench::JsonReporter& json) {
  std::printf("recovery at reopen (%zu-byte elements, sync=never while "
              "populating)\n",
              kElementBytes);
  bench::print_header({"objects", "checkpoint", "recover_ms", "replay MB/s",
                       "records"});
  for (const std::size_t objects : {std::size_t{256}, std::size_t{1024},
                                    std::size_t{4096}}) {
    for (const bool checkpoint : {false, true}) {
      storage::DurabilityPolicy policy;
      policy.sync = storage::SyncPolicy::Never;  // populate fast
      ScopedDir dir("recover_" + std::to_string(objects) +
                    (checkpoint ? "_ckpt" : "_wal"));
      std::map<ObjectId, storage::Backend::Entry> live;
      {
        auto be = must_open(dir.path, policy);
        be->set_snapshot_source(
            [&](const storage::Backend::SnapshotSink& sink) {
              for (const auto& [obj, e] : live) sink(obj, e.tag, e.element);
            });
        Rng rng(2);
        // Two generations per object: recovery replays overwrites too.
        for (std::size_t gen = 1; gen <= 2; ++gen) {
          for (std::size_t o = 0; o < objects; ++o) {
            const auto obj = static_cast<ObjectId>(o);
            live[obj] = {Tag{gen, 1}, rng.bytes(kElementBytes)};
            const Status st = be->put(obj, live[obj].tag, live[obj].element);
            if (!st.ok()) {
              std::fprintf(stderr, "bench: put: %s\n",
                           st.to_string().c_str());
              std::exit(1);
            }
          }
        }
        const Status st = checkpoint ? be->checkpoint_now() : be->sync();
        if (!st.ok()) {
          std::fprintf(stderr, "bench: flush: %s\n", st.to_string().c_str());
          std::exit(1);
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto be = must_open(dir.path, policy);
      const double dt = seconds_since(t0);
      if (be->recovered().size() != objects) {
        std::fprintf(stderr, "bench: recovered %zu of %zu objects\n",
                     be->recovered().size(), objects);
        std::exit(1);
      }
      const auto records = be->wal_stats().replayed_records;
      // Bytes brought back per second, snapshot load included.
      const double recovered_bytes = static_cast<double>(
          be->wal_stats().replayed_bytes +
          (checkpoint ? objects * kElementBytes : 0));
      const double mb_per_sec = recovered_bytes / dt / 1e6;
      bench::print_cell(objects);
      bench::print_cell(checkpoint ? "yes" : "no");
      bench::print_cell(dt * 1e3);
      bench::print_cell(mb_per_sec);
      bench::print_cell(static_cast<std::size_t>(records));
      std::printf("\n");
      const std::string params =
          "objects=" + std::to_string(objects) +
          " checkpoint=" + (checkpoint ? "yes" : "no") +
          " element_bytes=" + std::to_string(kElementBytes);
      json.add(params, "recovery_ms", dt * 1e3);
      json.add(params, "replay_mb_per_sec", mb_per_sec);
      json.add(params, "replayed_records", static_cast<double>(records));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "storage_engine");
  bench_append(json);
  bench_recovery(json);
  return 0;
}
