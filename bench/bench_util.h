// Shared helpers for the system bench binaries (E1-E8): configuration
// builders matching the paper's parameter regimes, fixed-width table
// printing of formula-vs-measured rows, and the `--json <path>` reporter
// every bench binary uses to emit machine-readable results alongside its
// human table (the BENCH_*.json perf-trajectory input).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "lds/analysis.h"
#include "lds/cluster.h"

namespace lds::bench {

using core::LdsCluster;
using core::LdsConfig;

/// The paper's Fig. 6 regime scaled to n servers per layer: f1 = f2 = n/10
/// (so k = d = 0.8 n), n1 = n2 = n.  Requires n >= 10 and divisible by 10
/// for exact proportions; otherwise rounds f down (still valid).
inline LdsConfig fig6_regime(std::size_t n) {
  std::size_t f = n / 10;
  if (f == 0) f = 1;
  return LdsConfig::symmetric(n, f);
}

/// A value size that keeps striping overhead (8-byte header + padding)
/// under ~2% for the given config: ~50 stripes, capped so that the
/// byte-shuffling back-ends (replication, RS fetch-k-decode) stay fast.
inline std::size_t fair_value_size(const LdsConfig& cfg) {
  const std::size_t b = cfg.k() * (2 * cfg.d() - cfg.k() + 1) / 2;
  const std::size_t size = 50 * b;
  return size > 40000 ? 40000 : size;
}

/// Normalized data cost of one operation.
inline double normalized_op_cost(LdsCluster& cluster, OpId op,
                                 std::size_t value_size) {
  const auto bucket = cluster.net().costs().by_op(op);
  return static_cast<double>(bucket.data_bytes) /
         static_cast<double>(value_size);
}

inline void print_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(double v) { std::printf("%16.3f", v); }
inline void print_cell(std::size_t v) { std::printf("%16zu", v); }
inline void print_cell(const char* s) { std::printf("%16s", s); }

/// Machine-readable bench results.  Construct from argv (recognizes
/// `--json <path>`, ignores everything else so benches stay zero-config),
/// call add() once per measured quantity, and the destructor writes
///
///   {"bench":"<name>","results":[
///     {"name":"<name>","params":"n=10 backend=mbr",
///      "metric":"write_cost_normalized","value":12.5}, ...]}
///
/// No file is written when --json was not passed.
class JsonReporter {
 public:
  JsonReporter(int argc, char** argv, std::string bench_name)
      : name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) != "--json") continue;
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "bench: --json needs a path argument\n");
        std::exit(2);
      }
      path_ = argv[i + 1];
    }
  }

  void add(const std::string& params, const std::string& metric,
           double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    rows_.push_back("{\"name\":\"" + name_ + "\",\"params\":\"" + params +
                    "\",\"metric\":\"" + metric + "\",\"value\":" + buf +
                    "}");
  }

  ~JsonReporter() {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fputs(("{\"bench\":\"" + name_ + "\",\"results\":[").c_str(), f);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) std::fputc(',', f);
      std::fputs(rows_[i].c_str(), f);
    }
    std::fputs("]}\n", f);
    std::fclose(f);
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace lds::bench
