// Shared helpers for the system bench binaries (E1-E8): configuration
// builders matching the paper's parameter regimes and fixed-width table
// printing of formula-vs-measured rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "lds/analysis.h"
#include "lds/cluster.h"

namespace lds::bench {

using core::LdsCluster;
using core::LdsConfig;

/// The paper's Fig. 6 regime scaled to n servers per layer: f1 = f2 = n/10
/// (so k = d = 0.8 n), n1 = n2 = n.  Requires n >= 10 and divisible by 10
/// for exact proportions; otherwise rounds f down (still valid).
inline LdsConfig fig6_regime(std::size_t n) {
  std::size_t f = n / 10;
  if (f == 0) f = 1;
  return LdsConfig::symmetric(n, f);
}

/// A value size that keeps striping overhead (8-byte header + padding)
/// under ~2% for the given config: ~50 stripes, capped so that the
/// byte-shuffling back-ends (replication, RS fetch-k-decode) stay fast.
inline std::size_t fair_value_size(const LdsConfig& cfg) {
  const std::size_t b = cfg.k() * (2 * cfg.d() - cfg.k() + 1) / 2;
  const std::size_t size = 50 * b;
  return size > 40000 ? 40000 : size;
}

/// Normalized data cost of one operation.
inline double normalized_op_cost(LdsCluster& cluster, OpId op,
                                 std::size_t value_size) {
  const auto bucket = cluster.net().costs().by_op(op);
  return static_cast<double>(bucket.data_bytes) /
         static_cast<double>(value_size);
}

inline void print_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(double v) { std::printf("%16.3f", v); }
inline void print_cell(std::size_t v) { std::printf("%16zu", v); }
inline void print_cell(const char* s) { std::printf("%16s", s); }

}  // namespace lds::bench
