// bench_codec — encode/decode throughput of the wire codec (net/codec.h) by
// message type and value size.
//
// The codec sits on two hot paths: exact meta-byte accounting charges every
// simulated send one encoded_size() call, and the TCP deployment path
// encodes + decodes every frame for real.  This bench reports, per message
// type and payload size:
//
//   encode_mops   million encode() calls per second (frame build, zero-copy
//                 value bodies)
//   decode_mops   million decode() calls per second (parse + message build)
//   size_mops     million encoded_size() calls per second (the accounting
//                 path: no allocation at all)
//   encode_gbps   payload gigabytes per second through encode()
//
//   bench_codec [--json out.json]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "bench_util.h"
#include "common/rng.h"
#include "lds/messages.h"
#include "net/codec.h"
#include "store/remote.h"

namespace {

using namespace lds;
using net::MessagePtr;
using net::codec::decode;
using net::codec::encode;
using net::codec::encoded_size;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Sample {
  std::string name;
  std::size_t value_size = 0;
  MessagePtr msg;
};

std::vector<Sample> make_samples() {
  store::register_store_wire();
  Rng rng(42);
  std::vector<Sample> out;
  const OpId op = make_op_id(3, 17);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{256}, std::size_t{4096},
        std::size_t{65536}}) {
    out.push_back({"lds_put_data", n,
                   core::LdsMessage::make(
                       1, op, core::PutData{Tag{9, 2}, Value(rng.bytes(n))})});
    out.push_back(
        {"lds_data_resp_coded", n,
         core::LdsMessage::make(
             1, op, core::DataRespCoded{Tag{9, 2}, 3, rng.bytes(n)})});
    out.push_back({"abd_update", n,
                   baselines::AbdMessage::make(
                       1, op,
                       baselines::AbdUpdate{Tag{9, 2}, Value(rng.bytes(n))})});
    out.push_back({"cas_pre_write", n,
                   baselines::CasMessage::make(
                       1, op, baselines::CasPreWrite{Tag{9, 2}, rng.bytes(n)})});
    out.push_back(
        {"store_put", n,
         store::RemoteMessage::make(
             op, store::RemotePut{"key-123", Value(rng.bytes(n))})});
  }
  // Meta-only control messages (the accounting-path common case).
  out.push_back({"lds_query_tag", 0,
                 core::LdsMessage::make(1, op, core::QueryTag{})});
  out.push_back({"lds_commit_tag", 0,
                 core::LdsMessage::make(1, op, core::CommitTag{Tag{9, 2}, 7})});
  return out;
}

/// Run `fn` until ~0.1s elapsed; returns calls per second.
template <typename Fn>
double rate(Fn&& fn) {
  // Warm up + calibrate.
  std::size_t batch = 64;
  fn();
  while (true) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const double dt = now_s() - t0;
    if (dt >= 0.05) return static_cast<double>(batch) / dt;
    batch *= 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "bench_codec");
  std::printf("bench_codec: wire codec throughput by type and value size\n\n");
  std::printf("%22s %11s %12s %12s %12s %12s\n", "type", "value_size",
              "encode_mops", "decode_mops", "size_mops", "encode_gbps");

  for (const auto& s : make_samples()) {
    const Bytes wire = encode(*s.msg).to_bytes();

    const double enc = rate([&] {
      const auto f = encode(*s.msg);
      if (f.size() == 0) std::abort();  // keep the call observable
    });
    const double dec = rate([&] {
      MessagePtr out;
      if (!decode(wire.data(), wire.size(), &out).ok()) std::abort();
    });
    const double size = rate([&] {
      if (encoded_size(*s.msg) == 0) std::abort();
    });
    const double gbps = enc * static_cast<double>(s.value_size) / 1e9;

    std::printf("%22s %11zu %12.2f %12.2f %12.2f %12.3f\n", s.name.c_str(),
                s.value_size, enc / 1e6, dec / 1e6, size / 1e6, gbps);
    const std::string params =
        "type=" + s.name + " value_size=" + std::to_string(s.value_size);
    json.add(params, "encode_ops_per_sec", enc);
    json.add(params, "decode_ops_per_sec", dec);
    json.add(params, "encoded_size_ops_per_sec", size);
  }
  return 0;
}
