// bench_codec — encode/decode throughput of the wire codec (net/codec.h) by
// message type and value size.
//
// The codec sits on two hot paths: exact meta-byte accounting charges every
// simulated send one encoded_size() call, and the TCP deployment path
// encodes + decodes every frame for real.  This bench reports, per message
// type and payload size:
//
//   encode_mops   million encode() calls per second (frame build, zero-copy
//                 value bodies)
//   decode_mops   million decode() calls per second (parse + message build)
//   size_mops     million encoded_size() calls per second (the accounting
//                 path: no allocation at all)
//   encode_gbps   payload gigabytes per second through encode()
//
// A second section measures the RECEIVE path end to end: an encoded frame
// stream fed in socket-sized chunks through net::FrameReassembler (pooled
// recv blocks + zero-copy payload handoff) against a naive append-to-vector
// + erase-from-front baseline — the per-frame-allocation scheme the epoll
// transport replaced.  Reported per value size: GB/s of wire bytes, frames/s,
// and the fraction of payload bytes that skipped the staging copy entirely.
//
// A third section measures the SEND path: the scatter-gather writev of
// {frame head, zero-copy value body} spans (TcpTransport::gather_frames, the
// flush_conn fast path) against a staging-buffer baseline that memcpys every
// frame into one contiguous buffer before a single write.  The gather path
// is ASSERTED copy-free: every frame's body iovec must alias the exact bytes
// of the Value handed to the message — encode() and the gather introduce
// zero extra copies between the caller's buffer and the kernel.
//
//   bench_codec [--json out.json]
#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "bench_util.h"
#include "common/rng.h"
#include "lds/messages.h"
#include "net/codec.h"
#include "net/reassembly.h"
#include "net/transport.h"
#include "store/remote.h"

namespace {

using namespace lds;
using net::MessagePtr;
using net::codec::decode;
using net::codec::encode;
using net::codec::encoded_size;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Sample {
  std::string name;
  std::size_t value_size = 0;
  MessagePtr msg;
};

std::vector<Sample> make_samples() {
  store::register_store_wire();
  Rng rng(42);
  std::vector<Sample> out;
  const OpId op = make_op_id(3, 17);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{256}, std::size_t{4096},
        std::size_t{65536}}) {
    out.push_back({"lds_put_data", n,
                   core::LdsMessage::make(
                       1, op, core::PutData{Tag{9, 2}, Value(rng.bytes(n))})});
    out.push_back(
        {"lds_data_resp_coded", n,
         core::LdsMessage::make(
             1, op, core::DataRespCoded{Tag{9, 2}, 3, rng.bytes(n)})});
    out.push_back({"abd_update", n,
                   baselines::AbdMessage::make(
                       1, op,
                       baselines::AbdUpdate{Tag{9, 2}, Value(rng.bytes(n))})});
    out.push_back({"cas_pre_write", n,
                   baselines::CasMessage::make(
                       1, op, baselines::CasPreWrite{Tag{9, 2}, rng.bytes(n)})});
    out.push_back(
        {"store_put", n,
         store::RemoteMessage::make(
             op, store::RemotePut{"key-123", Value(rng.bytes(n))})});
  }
  // Meta-only control messages (the accounting-path common case).
  out.push_back({"lds_query_tag", 0,
                 core::LdsMessage::make(1, op, core::QueryTag{})});
  out.push_back({"lds_commit_tag", 0,
                 core::LdsMessage::make(1, op, core::CommitTag{Tag{9, 2}, 7})});
  return out;
}

/// Run `fn` until ~0.1s elapsed; returns calls per second.
template <typename Fn>
double rate(Fn&& fn) {
  // Warm up + calibrate.
  std::size_t batch = 64;
  fn();
  while (true) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const double dt = now_s() - t0;
    if (dt >= 0.05) return static_cast<double>(batch) / dt;
    batch *= 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "bench_codec");
  std::printf("bench_codec: wire codec throughput by type and value size\n\n");
  std::printf("%22s %11s %12s %12s %12s %12s\n", "type", "value_size",
              "encode_mops", "decode_mops", "size_mops", "encode_gbps");

  for (const auto& s : make_samples()) {
    const Bytes wire = encode(*s.msg).to_bytes();

    const double enc = rate([&] {
      const auto f = encode(*s.msg);
      if (f.size() == 0) std::abort();  // keep the call observable
    });
    const double dec = rate([&] {
      MessagePtr out;
      if (!decode(wire.data(), wire.size(), &out).ok()) std::abort();
    });
    const double size = rate([&] {
      if (encoded_size(*s.msg) == 0) std::abort();
    });
    const double gbps = enc * static_cast<double>(s.value_size) / 1e9;

    std::printf("%22s %11zu %12.2f %12.2f %12.2f %12.3f\n", s.name.c_str(),
                s.value_size, enc / 1e6, dec / 1e6, size / 1e6, gbps);
    const std::string params =
        "type=" + s.name + " value_size=" + std::to_string(s.value_size);
    json.add(params, "encode_ops_per_sec", enc);
    json.add(params, "decode_ops_per_sec", dec);
    json.add(params, "encoded_size_ops_per_sec", size);
  }

  // ---- receive-path reassembly: pooled/zero-copy vs naive append+erase ----
  std::printf("\nreassembly: %u-byte chunked receive of store_put frames\n\n",
              16u << 10);
  std::printf("%22s %11s %12s %12s %12s\n", "path", "value_size",
              "wire_gbps", "frames_per_s", "zero_copy");
  store::register_store_wire();
  Rng rng(7);
  const std::size_t kChunk = 16 << 10;
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{4096}, std::size_t{65536}}) {
    // A stream of 64 identical-size frames, looped over until the clock says
    // stop — the steady state a busy connection sees.
    Bytes stream;
    std::size_t frames_in_stream = 0;
    while (frames_in_stream < 64) {
      const Bytes flat =
          encode(*store::RemoteMessage::make(
                     make_op_id(1, static_cast<std::uint32_t>(
                                       frames_in_stream)),
                     store::RemotePut{"key-123", Value(rng.bytes(n))}))
              .to_bytes();
      stream.insert(stream.end(), flat.begin(), flat.end());
      ++frames_in_stream;
    }

    struct PathResult {
      double wire_gbps = 0, frames_per_s = 0, zero_copy = 0;
    };
    // (1) pooled reassembler, exactly as TcpTransport::read_conn drives it.
    const auto pooled = [&] {
      net::BufferPool pool(64 << 10, 4);
      net::FrameReassembler rx(&pool, net::FrameReassembler::Options{});
      std::vector<MessagePtr> out;
      std::size_t frames = 0, bytes = 0;
      const double t0 = now_s();
      double dt = 0;
      while ((dt = now_s() - t0) < 0.2) {
        std::size_t off = 0;
        while (off < stream.size()) {
          const auto [p, cap] = rx.recv_span();
          const std::size_t take =
              std::min({kChunk, cap, stream.size() - off});
          std::memcpy(p, stream.data() + off, take);
          rx.commit(take);
          off += take;
          out.clear();
          if (!rx.drain(&out).ok()) std::abort();
          frames += out.size();
        }
        bytes += stream.size();
      }
      PathResult r;
      r.wire_gbps = static_cast<double>(bytes) / dt / 1e9;
      r.frames_per_s = static_cast<double>(frames) / dt;
      const double payload =
          static_cast<double>(frames) * static_cast<double>(n);
      r.zero_copy =
          payload > 0 ? static_cast<double>(rx.zero_copy_bytes()) / payload
                      : 0;
      return r;
    }();
    // (2) naive: grow one vector, decode whole frames, erase from the front
    // (a fresh allocation per frame plus an O(buffered) shift per drain).
    const auto naive = [&] {
      Bytes buf;
      std::size_t frames = 0, bytes = 0;
      const double t0 = now_s();
      double dt = 0;
      while ((dt = now_s() - t0) < 0.2) {
        std::size_t off = 0;
        while (off < stream.size()) {
          const std::size_t take = std::min(kChunk, stream.size() - off);
          buf.insert(buf.end(), stream.data() + off,
                     stream.data() + off + take);
          off += take;
          std::size_t used = 0;
          while (buf.size() - used >= 4) {
            std::size_t total = 0, payload = 0;
            if (!net::codec::frame_layout(buf.data() + used,
                                          buf.size() - used, &total,
                                          &payload)
                     .ok()) {
              std::abort();
            }
            if (total == 0 || buf.size() - used < total) break;
            MessagePtr msg;
            if (!decode(buf.data() + used, total, &msg).ok()) std::abort();
            used += total;
            ++frames;
          }
          if (used > 0) buf.erase(buf.begin(), buf.begin() + used);
        }
        bytes += stream.size();
      }
      PathResult r;
      r.wire_gbps = static_cast<double>(bytes) / dt / 1e9;
      r.frames_per_s = static_cast<double>(frames) / dt;
      return r;
    }();

    for (const auto& [name, r] :
         {std::pair<const char*, PathResult>{"reassembler_pooled", pooled},
          {"naive_append_erase", naive}}) {
      std::printf("%22s %11zu %12.3f %12.0f %11.0f%%\n", name, n,
                  r.wire_gbps, r.frames_per_s, r.zero_copy * 100);
      const std::string params = "path=" + std::string(name) +
                                 " value_size=" + std::to_string(n);
      json.add(params, "wire_bytes_per_sec", r.wire_gbps * 1e9);
      json.add(params, "frames_per_sec", r.frames_per_s);
      json.add(params, "zero_copy_fraction", r.zero_copy);
    }
  }

  // ---- send-path gather: scatter-gather writev vs staging copy --------------
  std::printf("\nsend gather: %zu queued store_put frames per flush\n\n",
              std::size_t{32});
  std::printf("%22s %11s %12s %12s\n", "path", "value_size", "wire_gbps",
              "flushes_per_s");
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull < 0) {
    std::fprintf(stderr, "bench_codec: open /dev/null failed\n");
    return 1;
  }
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{4096}, std::size_t{65536}}) {
    // One connection's output queue: 32 frames, exactly as flush_conn sees
    // it.  The Values stay alive so aliasing is checkable.
    std::vector<Value> vals;
    std::deque<net::codec::Frame> q;
    for (std::size_t i = 0; i < 32; ++i) {
      vals.emplace_back(rng.bytes(n));
      q.push_back(encode(*store::RemoteMessage::make(
          make_op_id(1, static_cast<std::uint32_t>(i)),
          store::RemotePut{"key-123", vals.back()})));
    }
    std::size_t total = 0;
    for (const auto& f : q) total += f.size();

    // The zero-copy claim, asserted: each frame's body is the SAME buffer
    // as the Value the caller handed to the message (encode copies nothing),
    // and the gathered iovecs alias those buffers byte-for-byte (the gather
    // copies nothing either).  The staging baseline below is the copy this
    // path deleted.
    iovec iov[64];
    const std::size_t niov =
        net::TcpTransport::gather_frames(q, 0, iov, 64);
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].body.size() == 0) continue;
      if (q[i].body.data() != vals[i].data()) {
        std::fprintf(stderr, "bench_codec: encode copied the value body\n");
        std::abort();
      }
      bool aliased = false;
      for (std::size_t j = 0; j < niov; ++j) {
        if (iov[j].iov_base == const_cast<std::uint8_t*>(q[i].body.data()) &&
            iov[j].iov_len == q[i].body.size()) {
          aliased = true;
          break;
        }
      }
      if (!aliased) {
        std::fprintf(stderr,
                     "bench_codec: gather did not alias frame %zu's body\n",
                     i);
        std::abort();
      }
    }

    // (1) gather: two iovecs per frame, one writev, no copies.
    const double gather = rate([&] {
      iovec v[64];
      const std::size_t nv = net::TcpTransport::gather_frames(q, 0, v, 64);
      if (::writev(devnull, v, static_cast<int>(nv)) < 0) std::abort();
    });
    // (2) staging: memcpy head+body of every frame into one buffer, then a
    // single write — the classic one-copy send path.
    Bytes staging;
    staging.reserve(total);
    const double staged = rate([&] {
      staging.clear();
      for (const auto& f : q) {
        staging.insert(staging.end(), f.head.begin(), f.head.end());
        staging.insert(staging.end(), f.body.begin(), f.body.end());
      }
      if (::write(devnull, staging.data(), staging.size()) < 0) std::abort();
    });

    for (const auto& [name, flushes] :
         {std::pair<const char*, double>{"gather_writev", gather},
          {"staging_memcpy", staged}}) {
      const double gbps = flushes * static_cast<double>(total) / 1e9;
      std::printf("%22s %11zu %12.3f %12.0f\n", name, n, gbps, flushes);
      const std::string params = "path=" + std::string(name) +
                                 " value_size=" + std::to_string(n);
      json.add(params, "wire_bytes_per_sec", gbps * 1e9);
      json.add(params, "flushes_per_sec", flushes);
    }
  }
  ::close(devnull);
  return 0;
}
