// E8 - LDS vs the single-layer baselines: replication-based ABD [3] and
// erasure-coded CAS [6].  This is the comparison framing the paper's
// introduction: erasure-coded two-layer storage trades a ~constant factor in
// write cost for order-of-magnitude wins in permanent storage and in
// contention-free read cost.
//
// All three systems run on the same simulated network substrate; costs are
// normalized by |v|.  The "storage" row for CAS is measured after FOUR
// writes: plain CAS keeps every pre-written version (history grows without
// bound), while ABD and LDS keep Theta(n) and Theta(1) respectively no
// matter how many writes have happened.
#include <cstdio>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "vs_replication");
  std::printf("E8: LDS vs single-layer baselines (ABD replication, CAS "
              "erasure coding)\n");
  std::printf("regime: LDS n1 = n2 = n (k = d = 0.8 n); ABD with n replicas;"
              " CAS with n servers, k = 0.8 n; costs normalized by |v|;\n"
              "storage measured after 4 writes to the same object\n\n");
  print_header({"n", "metric", "abd", "cas", "lds", "lds/abd"});

  for (std::size_t n : {10, 20, 40, 80}) {
    Rng rng(n);
    const std::size_t value_size = fair_value_size(fig6_regime(n));
    const int kWrites = 4;

    // ---- ABD measurements. --------------------------------------------------
    baselines::AbdCluster::Options aopt;
    aopt.n = n;
    aopt.f = (n - 1) / 2;
    baselines::AbdCluster abd(aopt);
    for (int i = 0; i < kWrites; ++i) {
      abd.write_sync(0, 0, rng.bytes(value_size));
    }
    const OpId abd_write_op = make_op_id(1, 1);
    const OpId abd_read_op = make_op_id(10000, 1);
    abd.read_sync(0, 0);
    abd.sim().run();
    const double abd_write =
        static_cast<double>(abd.net().costs().by_op(abd_write_op).data_bytes) /
        static_cast<double>(value_size);
    const double abd_read =
        static_cast<double>(abd.net().costs().by_op(abd_read_op).data_bytes) /
        static_cast<double>(value_size);
    const double abd_storage = static_cast<double>(abd.storage_bytes()) /
                               static_cast<double>(value_size);

    // ---- CAS measurements. --------------------------------------------------
    baselines::CasCluster::Options copt;
    copt.n = n;
    copt.k = fig6_regime(n).k();
    baselines::CasCluster cas(copt);
    for (int i = 0; i < kWrites; ++i) {
      cas.write_sync(0, 0, rng.bytes(value_size));
    }
    const OpId cas_write_op = make_op_id(1, 1);
    const OpId cas_read_op = make_op_id(10000, 1);
    cas.read_sync(0, 0);
    cas.sim().run();
    const double cas_write =
        static_cast<double>(cas.net().costs().by_op(cas_write_op).data_bytes) /
        static_cast<double>(value_size);
    const double cas_read =
        static_cast<double>(cas.net().costs().by_op(cas_read_op).data_bytes) /
        static_cast<double>(value_size);
    const double cas_storage = static_cast<double>(cas.storage_bytes()) /
                               static_cast<double>(value_size);

    // ---- LDS measurements. --------------------------------------------------
    LdsCluster::Options lopt;
    lopt.cfg = fig6_regime(n);
    lopt.writers = 1;
    lopt.readers = 1;
    LdsCluster lds_cluster(lopt);
    for (int i = 0; i < kWrites; ++i) {
      lds_cluster.write_sync(0, 0, rng.bytes(value_size));
      lds_cluster.settle();
    }
    const OpId lds_write_op = make_op_id(1, 1);
    const OpId lds_read_op = make_op_id(core::kReaderIdBase, 1);
    lds_cluster.read_sync(0, 0);
    const double lds_write =
        normalized_op_cost(lds_cluster, lds_write_op, value_size);
    const double lds_read =
        normalized_op_cost(lds_cluster, lds_read_op, value_size);
    const double lds_storage =
        static_cast<double>(lds_cluster.meter().l2_bytes()) /
        static_cast<double>(value_size);

    const char* json_metrics[3] = {"write_cost_normalized",
                                   "read_cost_d0_normalized",
                                   "storage_after_4_writes_normalized"};
    const char* metrics[3] = {"write", "read(d0)", "storage@4w"};
    const double abd_vals[3] = {abd_write, abd_read, abd_storage};
    const double cas_vals[3] = {cas_write, cas_read, cas_storage};
    const double lds_vals[3] = {lds_write, lds_read, lds_storage};
    const double* all_vals[3] = {abd_vals, cas_vals, lds_vals};
    const char* systems[3] = {"abd", "cas", "lds"};
    for (int sys = 0; sys < 3; ++sys) {
      for (int i = 0; i < 3; ++i) {
        json.add("n=" + std::to_string(n) + " system=" + systems[sys],
                 json_metrics[i], all_vals[sys][i]);
      }
    }
    for (int i = 0; i < 3; ++i) {
      print_cell(n);
      print_cell(metrics[i]);
      print_cell(abd_vals[i]);
      print_cell(cas_vals[i]);
      print_cell(lds_vals[i]);
      print_cell(lds_vals[i] / abd_vals[i]);
      std::printf("\n");
    }
  }

  std::printf("\nexpected shape: writes - CAS cheapest (~n/k), ABD ~n, LDS "
              "~3.5n (the price of offloading); contention-free reads - LDS "
              "Theta(1) wins, CAS ~n/k, ABD ~2n; storage after 4 writes - "
              "LDS Theta(1) per object, ABD n, CAS ~(1 + writes) n/k and "
              "growing with every further write (plain CAS keeps history).\n");
  return 0;
}
