// E7 - Remark 1: why the MBR operating point matters for read cost.
//
// Same LDS deployment, two back-ends:
//   - product-matrix MBR (the paper's choice): a contention-free read costs
//     Theta(1) |v| because repair bandwidth n2 beta + alpha is ~ constant;
//   - Reed-Solomon at the MSR storage point: each of the n1 L1 servers must
//     pull k full-size elements (B symbols total) to regenerate its
//     coordinate, so the same read costs Omega(n1) |v| even with delta = 0.
//
// The crossing of these two curves as n grows is the paper's argument for
// regenerating codes over classical erasure codes in the back-end.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "mbr_vs_rs_read");
  std::printf("E7: contention-free read cost, MBR vs RS back-end "
              "(Remark 1)\n");
  std::printf("regime: n1 = n2 = n, k = d = 0.8 n; cost normalized by "
              "|v|\n\n");
  print_header({"n", "mbr.formula", "mbr.meas", "rs.formula", "rs.meas",
                "rs/mbr"});

  for (std::size_t n : {10, 20, 40, 60, 80}) {
    double measured[2] = {0, 0};
    double formula[2] = {0, 0};
    int col = 0;
    for (auto kind : {codes::BackendKind::PmMbr, codes::BackendKind::Rs}) {
      LdsCluster::Options opt;
      opt.cfg = fig6_regime(n);
      opt.cfg.backend = kind;
      opt.writers = 1;
      opt.readers = 1;
      LdsCluster cluster(opt);
      Rng rng(n);
      const std::size_t value_size = fair_value_size(opt.cfg);

      cluster.write_sync(0, 0, rng.bytes(value_size));
      cluster.settle();
      const OpId read0 = make_op_id(core::kReaderIdBase, 1);
      cluster.read_sync(0, 0);
      measured[col] = normalized_op_cost(cluster, read0, value_size);
      formula[col] =
          kind == codes::BackendKind::PmMbr
              ? core::analysis::read_cost(opt.cfg.n1, opt.cfg.n2, opt.cfg.k(),
                                          opt.cfg.d(), false)
              : core::analysis::rs_read_cost(opt.cfg.n1, opt.cfg.k(), false);
      ++col;
    }

    json.add("n=" + std::to_string(n) + " backend=mbr",
             "read_cost_d0_normalized", measured[0]);
    json.add("n=" + std::to_string(n) + " backend=rs",
             "read_cost_d0_normalized", measured[1]);

    print_cell(n);
    print_cell(formula[0]);
    print_cell(measured[0]);
    print_cell(formula[1]);
    print_cell(measured[1]);
    print_cell(measured[1] / measured[0]);
    std::printf("\n");
  }

  std::printf("\nexpected shape: the MBR column stays ~5.5 |v| for all n "
              "(Theta(1)); the RS column grows ~ n (Omega(n1)); the ratio "
              "grows linearly - who wins: MBR, by Theta(n).\n");
  return 0;
}
