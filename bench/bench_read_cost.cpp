// E2 - Lemma V.2, read cost.
//
// Regenerates the paper's read-cost claim:
//
//     n1 (1 + n2/d) 2d/(k(2d-k+1)) + n1 I(delta > 0)
//         =  Theta(1) + n1 I(delta > 0).
//
// The contention-free read (delta = 0) costs O(1) |v| because every L1
// server regenerates via the MBR repair procedure (n2 helpers of beta each)
// and ships one alpha-sized coded element; a read concurrent with a write
// (delta > 0) can additionally receive up to n1 full values from the edge
// temporary storage.  We measure both, sweeping n in the Fig. 6 regime.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::bench;

  JsonReporter json(argc, argv, "read_cost");
  std::printf("E2: read communication cost (Lemma V.2)\n");
  std::printf("regime: n1 = n2 = n, k = d = 0.8 n, cost normalized by |v|\n\n");
  print_header({"n", "d0.formula", "d0.measured", "d+.worstcase",
                "d+.measured", "n1 (ref)"});

  for (std::size_t n : {10, 20, 40, 60, 80, 100}) {
    LdsCluster::Options opt;
    opt.cfg = fig6_regime(n);
    opt.writers = 1;
    opt.readers = 1;
    opt.tau2 = 10.0;
    LdsCluster cluster(opt);
    Rng rng(n);
    const std::size_t value_size = fair_value_size(opt.cfg);

    // --- delta = 0: write, settle to quiescence, then read. ---------------
    cluster.write_sync(0, 0, rng.bytes(value_size));
    cluster.settle();
    const OpId read0 = make_op_id(core::kReaderIdBase, 1);
    cluster.read_sync(0, 0);
    const double measured0 = normalized_op_cost(cluster, read0, value_size);

    // --- delta > 0: read overlapping an in-flight write. -------------------
    cluster.write_at(cluster.sim().now() + 0.1, 0, 0, rng.bytes(value_size));
    const OpId read1 = make_op_id(core::kReaderIdBase, 2);
    cluster.read_at(cluster.sim().now() + 1.2, 0, 0);
    cluster.settle();
    const double measured1 = normalized_op_cost(cluster, read1, value_size);

    const double f0 = core::analysis::read_cost(opt.cfg.n1, opt.cfg.n2,
                                                opt.cfg.k(), opt.cfg.d(),
                                                /*delta>0=*/false);
    const double f1 = core::analysis::read_cost(opt.cfg.n1, opt.cfg.n2,
                                                opt.cfg.k(), opt.cfg.d(),
                                                /*delta>0=*/true);

    json.add("n=" + std::to_string(n), "read_cost_d0_normalized",
             measured0);
    json.add("n=" + std::to_string(n), "read_cost_concurrent_normalized",
             measured1);

    print_cell(n);
    print_cell(f0);
    print_cell(measured0);
    print_cell(f1);
    print_cell(measured1);
    print_cell(static_cast<double>(n));
    std::printf("\n");
  }

  std::printf("\nexpected shape: delta=0 cost stays Theta(1) (~5.5 |v| in "
              "this regime) while the concurrent read grows with n1; the "
              "formula column is the worst case, measured concurrent cost "
              "lies between the two.\n");
  return 0;
}
