// Edge-cache scenario (paper, Section I): during intervals of concurrent
// writes, reads are served directly from the edge layer's temporary storage;
// once the system quiesces, reads fall back to MBR regeneration from the
// back-end and the read cost drops to Theta(1) of the value size.
//
// This example runs both phases and prints the per-read normalized
// communication cost next to the Lemma V.2 predictions.
#include <cstdio>

#include "common/rng.h"
#include "lds/analysis.h"
#include "lds/cluster.h"

int main() {
  using namespace lds;
  using namespace lds::core;

  LdsCluster::Options opt;
  opt.cfg.n1 = 10;
  opt.cfg.f1 = 2;  // k = 6
  opt.cfg.n2 = 12;
  opt.cfg.f2 = 3;  // d = 6
  opt.writers = 1;
  opt.readers = 1;
  opt.tau2 = 10.0;
  LdsCluster cluster(opt);
  Rng rng(2024);

  const std::size_t value_size = 6000;
  const double n1 = static_cast<double>(opt.cfg.n1);

  std::printf("edge-cache example: n1=%zu k=%zu | n2=%zu d=%zu, |v|=%zu B\n\n",
              opt.cfg.n1, opt.cfg.k(), opt.cfg.n2, opt.cfg.d(), value_size);

  // Phase A: read concurrent with a write (delta > 0) - served from L1.
  cluster.write_at(0.0, 0, 0, rng.bytes(value_size));
  bool read_done = false;
  OpId read_op = 0;
  cluster.sim().at(1.0, [&] {
    read_op = make_op_id(kReaderIdBase, 1);
    cluster.reader(0).read(0, [&](Tag, Bytes) { read_done = true; });
  });
  cluster.settle();
  if (!read_done) {
    std::printf("unexpected: concurrent read did not complete\n");
    return 1;
  }
  const double cost_concurrent =
      static_cast<double>(cluster.net().costs().by_op(read_op).data_bytes) /
      static_cast<double>(value_size);

  // Phase B: quiescent read - regenerated from the MBR back-end.
  const OpId read_op2 = make_op_id(kReaderIdBase, 2);
  auto [tag, value] = cluster.read_sync(0, 0);
  const double cost_quiescent =
      static_cast<double>(cluster.net().costs().by_op(read_op2).data_bytes) /
      static_cast<double>(value_size);

  const double pred_concurrent = analysis::read_cost(
      opt.cfg.n1, opt.cfg.n2, opt.cfg.k(), opt.cfg.d(), /*delta>0*/ true);
  const double pred_quiescent = analysis::read_cost(
      opt.cfg.n1, opt.cfg.n2, opt.cfg.k(), opt.cfg.d(), /*delta>0*/ false);

  std::printf("read concurrent with write (delta>0): cost = %6.2f |v|   "
              "(Lemma V.2 worst case %6.2f, Theta(n1)=%g)\n",
              cost_concurrent, pred_concurrent, n1);
  std::printf("read after quiescence      (delta=0): cost = %6.2f |v|   "
              "(Lemma V.2 formula    %6.2f, Theta(1))\n",
              cost_quiescent, pred_quiescent);
  std::printf("\nthe quiescent read is %.1fx cheaper than the worst-case "
              "concurrent read\n",
              cost_concurrent / cost_quiescent);

  const auto verdict = cluster.history().check_atomicity({});
  std::printf("atomicity check: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  return verdict.ok ? 0 : 1;
}
