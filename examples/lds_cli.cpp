// lds_cli: drive an arbitrary LDS deployment from the command line.
//
//   build/examples/lds_cli [flags]
//
// Flags (all optional):
//   --n1 N --f1 F --n2 N --f2 F     layer sizes / fault tolerances
//   --writers W --readers R        client pool (default 2 / 2)
//   --objects K                    number of objects (default 4)
//   --duration T                   workload window in tau1 units (default 60)
//   --value-size B                 bytes per written value (default 256)
//   --tau0 X --tau1 X --tau2 X     link delays (default 1 / 1 / 10)
//   --latency fixed|uniform|exp    latency model (default uniform)
//   --backend mbr|rs|replication   L2 code (default mbr)
//   --regular                      regular (non-atomic) reads
//   --proxy-cache                  keep committed values cached in L1
//   --seed S                       RNG seed (default 1)
//   --trace N                      print the last N message deliveries
//
// Runs a closed-loop workload, then prints operation stats, cost breakdown,
// storage gauges and the consistency verdict.  Exit code 0 iff the run was
// live and consistent.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lds/stats.h"
#include "lds/workload.h"
#include "net/trace.h"

namespace {

using namespace lds;
using namespace lds::core;

struct CliOptions {
  LdsCluster::Options cluster;
  WorkloadOptions workload;
  std::size_t trace_tail = 0;
  bool regular = false;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "lds_cli: %s\n(see the header of examples/lds_cli.cpp "
                       "for the flag list)\n", msg.c_str());
  std::exit(2);
}

long need_num(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
  char* end = nullptr;
  const long v = std::strtol(argv[++i], &end, 10);
  if (end == nullptr || *end != '\0') {
    usage_error(std::string("bad number: ") + argv[i]);
  }
  return v;
}

double need_real(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
  char* end = nullptr;
  const double v = std::strtod(argv[++i], &end);
  if (end == nullptr || *end != '\0') {
    usage_error(std::string("bad number: ") + argv[i]);
  }
  return v;
}

const char* need_str(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
  return argv[++i];
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  opt.cluster.cfg.n1 = 6;
  opt.cluster.cfg.f1 = 1;
  opt.cluster.cfg.n2 = 8;
  opt.cluster.cfg.f2 = 2;
  opt.cluster.writers = 2;
  opt.cluster.readers = 2;
  opt.cluster.tau2 = 10.0;
  opt.cluster.latency = LdsCluster::LatencyKind::Uniform;
  opt.workload.num_objects = 4;
  opt.workload.duration = 60.0;
  opt.workload.value_size = 256;
  opt.workload.readers = 2;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--n1")) opt.cluster.cfg.n1 = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--f1")) opt.cluster.cfg.f1 = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--n2")) opt.cluster.cfg.n2 = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--f2")) opt.cluster.cfg.f2 = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--writers")) opt.cluster.writers = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--readers")) opt.cluster.readers = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--objects")) opt.workload.num_objects = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--duration")) opt.workload.duration = need_real(argc, argv, i);
    else if (!std::strcmp(a, "--value-size")) opt.workload.value_size = static_cast<std::size_t>(need_num(argc, argv, i));
    else if (!std::strcmp(a, "--tau0")) opt.cluster.tau0 = need_real(argc, argv, i);
    else if (!std::strcmp(a, "--tau1")) opt.cluster.tau1 = need_real(argc, argv, i);
    else if (!std::strcmp(a, "--tau2")) opt.cluster.tau2 = need_real(argc, argv, i);
    else if (!std::strcmp(a, "--seed")) {
      opt.cluster.seed = static_cast<std::uint64_t>(need_num(argc, argv, i));
      opt.workload.seed = opt.cluster.seed + 1;
    } else if (!std::strcmp(a, "--trace")) {
      opt.trace_tail = static_cast<std::size_t>(need_num(argc, argv, i));
    } else if (!std::strcmp(a, "--regular")) {
      opt.regular = true;
      opt.cluster.read_consistency = ReadConsistency::Regular;
    } else if (!std::strcmp(a, "--proxy-cache")) {
      opt.cluster.cfg.proxy_cache = true;
    } else if (!std::strcmp(a, "--latency")) {
      const std::string kind = need_str(argc, argv, i);
      if (kind == "fixed") opt.cluster.latency = LdsCluster::LatencyKind::Fixed;
      else if (kind == "uniform") opt.cluster.latency = LdsCluster::LatencyKind::Uniform;
      else if (kind == "exp") opt.cluster.latency = LdsCluster::LatencyKind::Exponential;
      else usage_error("unknown latency model: " + kind);
    } else if (!std::strcmp(a, "--backend")) {
      const std::string kind = need_str(argc, argv, i);
      if (kind == "mbr") opt.cluster.cfg.backend = codes::BackendKind::PmMbr;
      else if (kind == "rs") opt.cluster.cfg.backend = codes::BackendKind::Rs;
      else if (kind == "replication") opt.cluster.cfg.backend = codes::BackendKind::Replication;
      else usage_error("unknown backend: " + kind);
    } else {
      usage_error(std::string("unknown flag: ") + a);
    }
  }
  opt.workload.writers = opt.cluster.writers;
  opt.workload.readers = opt.cluster.readers;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt = parse(argc, argv);
  opt.cluster.cfg.validate();

  LdsCluster cluster(opt.cluster);
  std::unique_ptr<net::Trace> trace;
  if (opt.trace_tail > 0) {
    trace = std::make_unique<net::Trace>(cluster.net(), opt.trace_tail);
  }

  std::printf("lds_cli: n1=%zu f1=%zu (k=%zu) | n2=%zu f2=%zu (d=%zu) | "
              "backend=%s | %zu writers, %zu readers, %zu objects\n",
              opt.cluster.cfg.n1, opt.cluster.cfg.f1, opt.cluster.cfg.k(),
              opt.cluster.cfg.n2, opt.cluster.cfg.f2, opt.cluster.cfg.d(),
              codes::backend_name(opt.cluster.cfg.backend),
              opt.cluster.writers, opt.cluster.readers,
              opt.workload.num_objects);

  const auto stats = run_workload(cluster, opt.workload);

  std::printf("\noperations: %zu writes, %zu reads over %.1f tau1 "
              "(%.2f writes/tau1)\n",
              stats.writes_completed, stats.reads_completed, stats.span,
              stats.writes_per_tau1);

  std::printf("\n%s", format_latency_report(cluster.history()).c_str());

  const auto& costs = cluster.net().costs();
  std::printf("network: %llu messages, %llu data bytes, %llu meta bytes\n",
              static_cast<unsigned long long>(costs.total().messages),
              static_cast<unsigned long long>(costs.total().data_bytes),
              static_cast<unsigned long long>(costs.total().meta_bytes));
  for (int c = 0; c < net::kNumLinkClasses; ++c) {
    const auto link = static_cast<net::LinkClass>(c);
    const auto& bucket = costs.by_link(link);
    if (bucket.messages == 0) continue;
    std::printf("  %-10s %10llu msgs %14llu data B\n",
                net::link_class_name(link),
                static_cast<unsigned long long>(bucket.messages),
                static_cast<unsigned long long>(bucket.data_bytes));
  }
  std::printf("storage: L1 now=%llu peak=%llu | L2 now=%llu bytes\n",
              static_cast<unsigned long long>(cluster.meter().l1_bytes()),
              static_cast<unsigned long long>(cluster.meter().l1_peak_bytes()),
              static_cast<unsigned long long>(cluster.meter().l2_bytes()));

  if (trace != nullptr) {
    std::printf("\nlast %zu message deliveries:\n%s", trace->entries().size(),
                trace->format().c_str());
  }

  const bool live = cluster.history().all_complete();
  const auto verdict =
      opt.regular
          ? cluster.history().check_regularity(opt.cluster.cfg.initial_value)
          : cluster.history().check_atomicity(opt.cluster.cfg.initial_value);
  std::printf("\nliveness: %s | %s: %s\n", live ? "OK" : "INCOMPLETE OPS",
              opt.regular ? "regularity" : "atomicity",
              verdict.ok ? "OK" : verdict.violation.c_str());
  return (live && verdict.ok) ? 0 : 1;
}
