// Multi-object storage profile (paper, Section V-A.1) on the production
// surface: N objects behind the sharded StoreService, driven through the
// unified store::Client (multi_put waves, multi_get verification), while the
// per-shard LDS storage meters show the Theta(N) permanent vs transient
// temporary split of Lemma V.5 / Fig. 6 at laptop scale.
//
//   build/examples/multi_object_store [--engine sim|parallel]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lds/analysis.h"
#include "store/client.h"

int main(int argc, char** argv) {
  using namespace lds;

  net::EngineMode engine = net::EngineMode::Deterministic;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      const auto m = net::parse_engine_mode(argv[++i]);
      if (!m) {
        std::fprintf(stderr, "unknown engine '%s'\n", argv[i]);
        return 2;
      }
      engine = *m;
    }
  }

  store::StoreOptions sopt;
  sopt.shards = 4;
  sopt.writers_per_shard = 4;
  sopt.readers_per_shard = 2;
  sopt.backend.n1 = 10;
  sopt.backend.f1 = 2;  // k = 6
  sopt.backend.n2 = 10;
  sopt.backend.f2 = 2;  // d = 6
  sopt.tau2 = 5.0;
  sopt.engine_mode = engine;
  sopt.seed = 7;
  store::StoreService service(sopt);
  store::Client client(service);
  Rng rng(7);

  const std::size_t kObjects = 40;
  const std::size_t value_size = 600;

  std::printf("multi-object store: N=%zu objects over %zu shards "
              "(n1=%zu k=%zu per shard), engine=%s\n\n",
              kObjects, sopt.shards, sopt.backend.n1,
              sopt.backend.n1 - 2 * sopt.backend.f1,
              net::engine_mode_name(engine));

  // Meters are lane-local state, so read each shard's on its own lane (a
  // plain cross-thread read would race the lane workers under --engine
  // parallel; in sim mode the posts run inline and this is exact).
  auto l1_l2_bytes = [&](std::uint64_t* l1, std::uint64_t* l2) {
    std::atomic<std::uint64_t> a1{0}, a2{0};
    std::atomic<std::size_t> pending{0};
    for (std::size_t s = 0; s < service.num_shards(); ++s) {
      if (auto* lds = service.shard_lds(s)) {
        pending.fetch_add(1, std::memory_order_acq_rel);
        service.engine().post(service.shard_lane(s), [&, lds] {
          a1.fetch_add(lds->meter().l1_bytes(), std::memory_order_acq_rel);
          a2.fetch_add(lds->meter().l2_bytes(), std::memory_order_acq_rel);
          pending.fetch_sub(1, std::memory_order_acq_rel);
        });
      }
    }
    service.engine().drain_until(
        [&] { return pending.load(std::memory_order_acquire) == 0; });
    *l1 = a1.load(std::memory_order_acquire);
    *l2 = a2.load(std::memory_order_acquire);
  };

  // Write waves: each wave multi_puts every object, then quiesces; the edge
  // (L1) holds only in-flight values, the back-end (L2) all N permanently.
  std::printf("%6s %16s %16s\n", "wave", "L1 bytes", "L2 bytes");
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<store::KeyValue> entries;
    for (std::size_t obj = 0; obj < kObjects; ++obj) {
      entries.push_back(
          {"obj-" + std::to_string(obj), rng.bytes(value_size)});
    }
    const auto results = client.multi_put_sync(std::move(entries));
    for (const auto& r : results) {
      if (!r.ok) {
        std::printf("multi_put failed: %s\n", r.error.c_str());
        return 1;
      }
    }
    std::uint64_t l1 = 0, l2 = 0;
    l1_l2_bytes(&l1, &l2);
    std::printf("%6d %16llu %16llu\n", wave,
                static_cast<unsigned long long>(l1),
                static_cast<unsigned long long>(l2));
  }
  service.quiesce();

  // After quiescence the temporary layer drains (Lemma V.1); verify every
  // object is durable and versioned through one scatter-gather read.
  std::vector<std::string> keys;
  for (std::size_t obj = 0; obj < kObjects; ++obj) {
    keys.push_back("obj-" + std::to_string(obj));
  }
  const auto reads = client.multi_get_sync(keys);
  std::size_t durable = 0;
  for (const auto& r : reads) {
    if (r.ok && r.value.size() == value_size && r.version.known()) ++durable;
  }

  std::uint64_t l1 = 0, l2 = 0;
  l1_l2_bytes(&l1, &l2);
  std::printf("\nafter settle:\n");
  std::printf("  L1 temporary bytes : %llu (drains to 0 - Lemma V.1)\n",
              static_cast<unsigned long long>(l1));
  std::printf("  L2 permanent bytes : %llu across %zu shards\n",
              static_cast<unsigned long long>(l2), service.num_shards());
  std::printf("  durable objects    : %zu / %zu\n", durable, kObjects);
  const std::size_t k = sopt.backend.n1 - 2 * sopt.backend.f1;
  const std::size_t d = sopt.backend.n2 - 2 * sopt.backend.f2;
  std::printf("  Lemma V.3 per-object permanent cost: %.3f x |v| "
              "(replication would cost %zu x |v|)\n",
              core::analysis::l2_storage_per_object(sopt.backend.n2, k, d),
              sopt.backend.n2);
  std::printf("  batches=%llu coalesced=%llu\n",
              static_cast<unsigned long long>(
                  service.metrics().counter_total("batches")),
              static_cast<unsigned long long>(
                  service.metrics().counter_total("puts_coalesced")));

  // Per-shard histories must be live and atomic (regular reads unused here).
  bool clean = durable == kObjects && l1 == 0;
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    const auto& h = service.shard_history(s);
    const auto verdict = h.check_atomicity(Bytes{});
    if (!h.all_complete() || !verdict.ok) {
      std::printf("shard %zu violation: %s\n", s, verdict.violation.c_str());
      clean = false;
    }
  }
  std::printf("atomicity check: %s\n", clean ? "OK" : "VIOLATION");
  return clean ? 0 : 1;
}
