// Multi-object storage profile (paper, Section V-A.1): N objects served by
// one LDS deployment; the edge layer only holds the objects that are being
// written *right now*, while the back-end holds all N permanently.
//
// Prints the storage occupancy over time and the final per-object cost,
// illustrating the Theta(N) permanent vs transient temporary split of
// Lemma V.5 / Fig. 6 at laptop scale.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "lds/analysis.h"
#include "lds/cluster.h"

int main() {
  using namespace lds;
  using namespace lds::core;

  LdsCluster::Options opt;
  opt.cfg = LdsConfig::symmetric(/*n=*/10, /*f=*/2);  // k = d = 6
  opt.writers = 4;
  opt.readers = 2;
  opt.tau2 = 5.0;
  LdsCluster cluster(opt);
  Rng rng(7);

  const std::size_t kObjects = 40;
  const std::size_t value_size = 600;

  std::printf("multi-object example: N=%zu objects on n1=n2=%zu, k=d=%zu\n\n",
              kObjects, opt.cfg.n1, opt.cfg.k());

  // Touch every object once (its coded v0 materializes in L2), then run a
  // write wave: each writer cycles through a disjoint share of the objects.
  for (ObjectId obj = 0; obj < kObjects; ++obj) {
    cluster.read_sync(0, obj);
  }
  const double l2_baseline = static_cast<double>(cluster.meter().l2_bytes());

  std::printf("%10s %16s %16s\n", "time", "L1 bytes", "L2 bytes");
  double next_wave = cluster.sim().now() + 1.0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t w = 0; w < opt.writers; ++w) {
      for (ObjectId obj = static_cast<ObjectId>(w); obj < kObjects;
           obj += static_cast<ObjectId>(opt.writers)) {
        // Stagger so each writer is well-formed (sequential ops).
        next_wave += 0.1;
        const std::size_t widx = w;
        cluster.write_at(next_wave, widx, obj, rng.bytes(value_size));
        break;  // one object per writer per wave
      }
    }
    next_wave += 30.0;
    cluster.sim().run_until(next_wave);
    std::printf("%10.1f %16llu %16llu\n", cluster.sim().now(),
                static_cast<unsigned long long>(cluster.meter().l1_bytes()),
                static_cast<unsigned long long>(cluster.meter().l2_bytes()));
  }
  cluster.settle();

  std::printf("\nafter settle:\n");
  std::printf("  L1 temporary bytes : %llu (drains to 0 - Lemma V.1)\n",
              static_cast<unsigned long long>(cluster.meter().l1_bytes()));
  std::printf("  L1 peak bytes      : %llu\n",
              static_cast<unsigned long long>(cluster.meter().l1_peak_bytes()));
  std::printf("  L2 permanent bytes : %llu (baseline after v0 touch: %.0f)\n",
              static_cast<unsigned long long>(cluster.meter().l2_bytes()),
              l2_baseline);
  const double per_object = analysis::l2_storage_per_object(
      opt.cfg.n2, opt.cfg.k(), opt.cfg.d());
  std::printf("  Lemma V.3 per-object permanent cost: %.3f x |v| "
              "(replication would cost %zu x |v|)\n",
              per_object, opt.cfg.n2);

  const auto verdict = cluster.history().check_atomicity({});
  std::printf("atomicity check: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  return verdict.ok ? 0 : 1;
}
