// Quickstart: stand up a two-layer LDS deployment, write, read, and inspect
// what the algorithm did (costs, storage, atomicity verdict).
//
//   build/examples/quickstart
//
// The deployment below: n1 = 6 edge servers tolerating f1 = 1 crash
// (so k = 4), n2 = 8 back-end servers tolerating f2 = 2 crashes (so d = 4);
// the back-end stores a {(14, 4, 4), (alpha = 4, beta = 1)} product-matrix
// MBR code.
#include <cstdio>
#include <string>

#include "common/format.h"
#include "lds/analysis.h"
#include "lds/cluster.h"

int main() {
  using namespace lds;
  using namespace lds::core;

  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.cfg.initial_value = Bytes{};  // v0: the empty value
  opt.writers = 1;
  opt.readers = 1;
  opt.tau1 = 1.0;   // client <-> edge delay (time unit)
  opt.tau0 = 1.0;   // edge <-> edge
  opt.tau2 = 10.0;  // edge <-> back-end (10x slower, as in edge computing)
  LdsCluster cluster(opt);

  std::printf("LDS quickstart: n1=%zu f1=%zu (k=%zu) | n2=%zu f2=%zu (d=%zu)\n",
              opt.cfg.n1, opt.cfg.f1, opt.cfg.k(), opt.cfg.n2, opt.cfg.f2,
              opt.cfg.d());

  // 1. Write a value.
  const std::string payload = "hello, layered storage";
  const Bytes value(payload.begin(), payload.end());
  const Tag tag = cluster.write_sync(0, /*obj=*/0, value);
  std::printf("write completed: tag=%s  t=%.1f tau1\n", tag.to_string().c_str(),
              cluster.sim().now());

  // 2. Read it back immediately (may be served from edge temporary storage).
  auto [rtag, rvalue] = cluster.read_sync(0, 0);
  std::printf("read 1 returned: tag=%s value=\"%s\"\n",
              rtag.to_string().c_str(),
              std::string(rvalue.begin(), rvalue.end()).c_str());

  // 3. Let the system quiesce: the edge offloads coded elements to the
  //    back-end and garbage-collects its temporary copies (Lemma V.1).
  cluster.settle();
  std::printf("after settle: L1 temporary storage = %llu B, "
              "L2 permanent storage = %llu B\n",
              static_cast<unsigned long long>(cluster.meter().l1_bytes()),
              static_cast<unsigned long long>(cluster.meter().l2_bytes()));

  // 4. Read again: served by regeneration from the MBR-coded back-end.
  auto [rtag2, rvalue2] = cluster.read_sync(0, 0);
  std::printf("read 2 (regenerated from L2): tag=%s value=\"%s\"\n",
              rtag2.to_string().c_str(),
              std::string(rvalue2.begin(), rvalue2.end()).c_str());

  // 5. Inspect costs and check atomicity of the whole execution.
  const auto& costs = cluster.net().costs();
  std::printf("network totals: %llu messages, %llu data bytes, "
              "%llu meta bytes\n",
              static_cast<unsigned long long>(costs.total().messages),
              static_cast<unsigned long long>(costs.total().data_bytes),
              static_cast<unsigned long long>(costs.total().meta_bytes));
  std::printf("Lemma V.2 write-cost formula for this layout: %.2f x |v|\n",
              analysis::write_cost(opt.cfg.n1, opt.cfg.n2, opt.cfg.k(),
                                   opt.cfg.d()));

  const auto verdict = cluster.history().check_atomicity(opt.cfg.initial_value);
  std::printf("atomicity check: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  return verdict.ok ? 0 : 1;
}
