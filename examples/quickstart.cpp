// Quickstart: stand up a two-layer LDS deployment, write, read, and inspect
// what the algorithm did (costs, storage, atomicity verdict) — then do the
// same through the production surface, the unified store::Client.
//
//   build/examples/quickstart [--engine sim|parallel]
//
// The deployment below: n1 = 6 edge servers tolerating f1 = 1 crash
// (so k = 4), n2 = 8 back-end servers tolerating f2 = 2 crashes (so d = 4);
// the back-end stores a {(14, 4, 4), (alpha = 4, beta = 1)} product-matrix
// MBR code.  --engine selects the execution engine of the store section
// (net/engine.h): sim = deterministic, parallel = worker lanes.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/format.h"
#include "lds/analysis.h"
#include "lds/cluster.h"
#include "store/client.h"

int main(int argc, char** argv) {
  using namespace lds;
  using namespace lds::core;

  net::EngineMode engine = net::EngineMode::Deterministic;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      const auto m = net::parse_engine_mode(argv[++i]);
      if (!m) {
        std::fprintf(stderr, "unknown engine '%s'\n", argv[i]);
        return 2;
      }
      engine = *m;
    }
  }

  LdsCluster::Options opt;
  opt.cfg.n1 = 6;
  opt.cfg.f1 = 1;
  opt.cfg.n2 = 8;
  opt.cfg.f2 = 2;
  opt.cfg.initial_value = Bytes{};  // v0: the empty value
  opt.writers = 1;
  opt.readers = 1;
  opt.tau1 = 1.0;   // client <-> edge delay (time unit)
  opt.tau0 = 1.0;   // edge <-> edge
  opt.tau2 = 10.0;  // edge <-> back-end (10x slower, as in edge computing)
  LdsCluster cluster(opt);

  std::printf("LDS quickstart: n1=%zu f1=%zu (k=%zu) | n2=%zu f2=%zu (d=%zu)\n",
              opt.cfg.n1, opt.cfg.f1, opt.cfg.k(), opt.cfg.n2, opt.cfg.f2,
              opt.cfg.d());

  // 1. Write a value.  Value is an immutable ref-counted buffer: the writer
  //    fan-out to all of L1 shares ONE allocation instead of copying |v|
  //    per server.
  const Value value = Value::from_string("hello, layered storage");
  const Tag tag = cluster.write_sync(0, /*obj=*/0, value);
  std::printf("write completed: tag=%s  t=%.1f tau1\n", tag.to_string().c_str(),
              cluster.sim().now());

  // 2. Read it back immediately (may be served from edge temporary storage).
  auto [rtag, rvalue] = cluster.read_sync(0, 0);
  std::printf("read 1 returned: tag=%s value=\"%s\"\n",
              rtag.to_string().c_str(), rvalue.to_string().c_str());

  // 3. Let the system quiesce: the edge offloads coded elements to the
  //    back-end and garbage-collects its temporary copies (Lemma V.1).
  cluster.settle();
  std::printf("after settle: L1 temporary storage = %llu B, "
              "L2 permanent storage = %llu B\n",
              static_cast<unsigned long long>(cluster.meter().l1_bytes()),
              static_cast<unsigned long long>(cluster.meter().l2_bytes()));

  // 4. Read again: served by regeneration from the MBR-coded back-end.
  auto [rtag2, rvalue2] = cluster.read_sync(0, 0);
  std::printf("read 2 (regenerated from L2): tag=%s value=\"%s\"\n",
              rtag2.to_string().c_str(), rvalue2.to_string().c_str());

  // 5. Inspect costs and check atomicity of the whole execution.
  const auto& costs = cluster.net().costs();
  std::printf("network totals: %llu messages, %llu data bytes, "
              "%llu meta bytes\n",
              static_cast<unsigned long long>(costs.total().messages),
              static_cast<unsigned long long>(costs.total().data_bytes),
              static_cast<unsigned long long>(costs.total().meta_bytes));
  std::printf("Lemma V.2 write-cost formula for this layout: %.2f x |v|\n",
              analysis::write_cost(opt.cfg.n1, opt.cfg.n2, opt.cfg.k(),
                                   opt.cfg.d()));

  const auto verdict = cluster.history().check_atomicity(opt.cfg.initial_value);
  std::printf("atomicity check: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  if (!verdict.ok) return 1;

  // 6. The same storage behind the production surface: a sharded
  //    StoreService fronted by store::Client — string keys, Status errors,
  //    typed versions, conditional puts, per-op deadlines.
  std::printf("\n-- store::Client (engine=%s) --\n",
              net::engine_mode_name(engine));
  store::StoreOptions sopt;
  sopt.shards = 2;
  sopt.engine_mode = engine;
  sopt.seed = 7;
  store::StoreService service(sopt);
  store::Client client(service);

  const auto put = client.put_sync("greeting", value);
  if (!put.ok()) {
    std::printf("put failed: %s\n", put.status().to_string().c_str());
    return 1;
  }
  std::printf("put   greeting           -> version %s\n",
              put.value().to_string().c_str());

  const auto got = client.get_sync("greeting");
  std::printf("get   greeting           -> \"%s\" @ %s\n",
              got.value().value.to_string().c_str(),
              got.value().version.to_string().c_str());

  // Conditional put: commits only against the version we read.
  const auto cas_ok = client.put_if_version_sync(
      "greeting", Value::from_string("hello again"), got.value().version);
  std::printf("cas   @%s            -> %s\n",
              got.value().version.to_string().c_str(),
              cas_ok.ok() ? cas_ok.value().to_string().c_str()
                          : cas_ok.status().to_string().c_str());

  // ...and a stale retry of the same version is Aborted, not lost.
  const auto cas_stale = client.put_if_version_sync(
      "greeting", Value::from_string("lost update"), got.value().version);
  std::printf("cas   @stale version     -> %s\n",
              cas_stale.status().to_string().c_str());

  // Status taxonomy: a key never written is NotFound, not an empty value.
  const auto missing = client.get_sync("no-such-key");
  std::printf("get   no-such-key        -> %s\n",
              missing.status().to_string().c_str());

  service.quiesce();
  const bool cas_correct = cas_ok.ok() &&
                           cas_stale.status().is(StatusCode::kAborted) &&
                           missing.status().is(StatusCode::kNotFound);
  std::printf("store section: %s\n", cas_correct ? "OK" : "UNEXPECTED");
  return cas_correct ? 0 : 1;
}
