// Failure injection: crash the maximum tolerated number of servers in both
// layers (f1 < n1/2 edge, f2 < n2/3 back-end) in the middle of operations
// and show that every surviving client operation still completes and the
// execution stays atomic (Theorems IV.8 and IV.9).
#include <cstdio>

#include "common/rng.h"
#include "lds/cluster.h"

int main() {
  using namespace lds;
  using namespace lds::core;

  LdsCluster::Options opt;
  opt.cfg.n1 = 9;
  opt.cfg.f1 = 3;  // k = 3: up to 3 of 9 edge servers may crash
  opt.cfg.n2 = 10;
  opt.cfg.f2 = 3;  // d = 4: up to 3 of 10 back-end servers may crash
  opt.writers = 2;
  opt.readers = 2;
  opt.latency = LdsCluster::LatencyKind::Uniform;  // jittered delays
  opt.seed = 99;
  LdsCluster cluster(opt);
  Rng rng(99);

  std::printf("failure-injection example: n1=%zu f1=%zu | n2=%zu f2=%zu\n",
              opt.cfg.n1, opt.cfg.f1, opt.cfg.n2, opt.cfg.f2);

  // Interleave client operations...
  cluster.write_at(0.0, 0, 0, rng.bytes(300));
  cluster.write_at(0.4, 1, 0, rng.bytes(300));
  cluster.read_at(0.8, 0, 0);
  cluster.read_at(6.0, 1, 0);

  // ...and crash f1 edge servers and f2 back-end servers mid-flight.
  cluster.sim().at(0.6, [&] {
    std::printf("t=0.6: crashing L1 servers 0, 1, 2\n");
    cluster.crash_l1(0);
    cluster.crash_l1(1);
    cluster.crash_l1(2);
  });
  cluster.sim().at(5.0, [&] {
    std::printf("t=5.0: crashing L2 servers 7, 8, 9\n");
    cluster.crash_l2(7);
    cluster.crash_l2(8);
    cluster.crash_l2(9);
  });

  cluster.settle();

  // A post-crash write/read pair must also succeed.
  const Tag t = cluster.write_sync(0, 0, rng.bytes(300));
  auto [rt, rv] = cluster.read_sync(1, 0);
  std::printf("post-crash write tag=%s, read tag=%s (%zu B)\n",
              t.to_string().c_str(), rt.to_string().c_str(), rv.size());

  const std::size_t done = cluster.history().completed();
  const std::size_t total = cluster.history().ops().size();
  std::printf("client operations completed: %zu / %zu\n", done, total);

  const auto verdict = cluster.history().check_atomicity({});
  std::printf("atomicity check: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  const bool live = cluster.history().all_complete();
  std::printf("liveness check: %s\n", live ? "OK" : "INCOMPLETE OPS");
  return (verdict.ok && live) ? 0 : 1;
}
