# Empty dependencies file for test_repair_manager.
# This may be replaced when dependencies are built.
