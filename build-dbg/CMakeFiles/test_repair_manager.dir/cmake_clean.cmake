file(REMOVE_RECURSE
  "CMakeFiles/test_repair_manager.dir/tests/test_repair_manager.cpp.o"
  "CMakeFiles/test_repair_manager.dir/tests/test_repair_manager.cpp.o.d"
  "test_repair_manager"
  "test_repair_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
