file(REMOVE_RECURSE
  "CMakeFiles/test_pm_msr.dir/tests/test_pm_msr.cpp.o"
  "CMakeFiles/test_pm_msr.dir/tests/test_pm_msr.cpp.o.d"
  "test_pm_msr"
  "test_pm_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
