# Empty compiler generated dependencies file for test_pm_msr.
# This may be replaced when dependencies are built.
