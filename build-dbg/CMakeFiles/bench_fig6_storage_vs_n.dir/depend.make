# Empty dependencies file for bench_fig6_storage_vs_n.
# This may be replaced when dependencies are built.
