file(REMOVE_RECURSE
  "liblds_core.a"
)
