
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/abd.cpp" "CMakeFiles/lds_core.dir/src/baselines/abd.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/baselines/abd.cpp.o.d"
  "/root/repo/src/baselines/cas.cpp" "CMakeFiles/lds_core.dir/src/baselines/cas.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/baselines/cas.cpp.o.d"
  "/root/repo/src/codes/factory.cpp" "CMakeFiles/lds_core.dir/src/codes/factory.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/factory.cpp.o.d"
  "/root/repo/src/codes/pm_mbr.cpp" "CMakeFiles/lds_core.dir/src/codes/pm_mbr.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/pm_mbr.cpp.o.d"
  "/root/repo/src/codes/pm_msr.cpp" "CMakeFiles/lds_core.dir/src/codes/pm_msr.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/pm_msr.cpp.o.d"
  "/root/repo/src/codes/replication.cpp" "CMakeFiles/lds_core.dir/src/codes/replication.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/replication.cpp.o.d"
  "/root/repo/src/codes/rlnc.cpp" "CMakeFiles/lds_core.dir/src/codes/rlnc.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/rlnc.cpp.o.d"
  "/root/repo/src/codes/rs.cpp" "CMakeFiles/lds_core.dir/src/codes/rs.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/rs.cpp.o.d"
  "/root/repo/src/codes/striped.cpp" "CMakeFiles/lds_core.dir/src/codes/striped.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/codes/striped.cpp.o.d"
  "/root/repo/src/common/assert.cpp" "CMakeFiles/lds_core.dir/src/common/assert.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/common/assert.cpp.o.d"
  "/root/repo/src/common/format.cpp" "CMakeFiles/lds_core.dir/src/common/format.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/common/format.cpp.o.d"
  "/root/repo/src/gf/gf256.cpp" "CMakeFiles/lds_core.dir/src/gf/gf256.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/gf/gf256.cpp.o.d"
  "/root/repo/src/harness/stress.cpp" "CMakeFiles/lds_core.dir/src/harness/stress.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/harness/stress.cpp.o.d"
  "/root/repo/src/lds/analysis.cpp" "CMakeFiles/lds_core.dir/src/lds/analysis.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/analysis.cpp.o.d"
  "/root/repo/src/lds/cluster.cpp" "CMakeFiles/lds_core.dir/src/lds/cluster.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/cluster.cpp.o.d"
  "/root/repo/src/lds/config.cpp" "CMakeFiles/lds_core.dir/src/lds/config.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/config.cpp.o.d"
  "/root/repo/src/lds/context.cpp" "CMakeFiles/lds_core.dir/src/lds/context.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/context.cpp.o.d"
  "/root/repo/src/lds/history.cpp" "CMakeFiles/lds_core.dir/src/lds/history.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/history.cpp.o.d"
  "/root/repo/src/lds/reader.cpp" "CMakeFiles/lds_core.dir/src/lds/reader.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/reader.cpp.o.d"
  "/root/repo/src/lds/repair_manager.cpp" "CMakeFiles/lds_core.dir/src/lds/repair_manager.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/repair_manager.cpp.o.d"
  "/root/repo/src/lds/server_l1.cpp" "CMakeFiles/lds_core.dir/src/lds/server_l1.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/server_l1.cpp.o.d"
  "/root/repo/src/lds/server_l2.cpp" "CMakeFiles/lds_core.dir/src/lds/server_l2.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/server_l2.cpp.o.d"
  "/root/repo/src/lds/stats.cpp" "CMakeFiles/lds_core.dir/src/lds/stats.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/stats.cpp.o.d"
  "/root/repo/src/lds/workload.cpp" "CMakeFiles/lds_core.dir/src/lds/workload.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/workload.cpp.o.d"
  "/root/repo/src/lds/writer.cpp" "CMakeFiles/lds_core.dir/src/lds/writer.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/lds/writer.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "CMakeFiles/lds_core.dir/src/matrix/matrix.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/matrix/matrix.cpp.o.d"
  "/root/repo/src/matrix/vandermonde.cpp" "CMakeFiles/lds_core.dir/src/matrix/vandermonde.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/matrix/vandermonde.cpp.o.d"
  "/root/repo/src/net/cost.cpp" "CMakeFiles/lds_core.dir/src/net/cost.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/net/cost.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "CMakeFiles/lds_core.dir/src/net/latency.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/net/latency.cpp.o.d"
  "/root/repo/src/net/network.cpp" "CMakeFiles/lds_core.dir/src/net/network.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/net/network.cpp.o.d"
  "/root/repo/src/net/sim.cpp" "CMakeFiles/lds_core.dir/src/net/sim.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/net/sim.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "CMakeFiles/lds_core.dir/src/net/trace.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/net/trace.cpp.o.d"
  "/root/repo/src/store/metrics.cpp" "CMakeFiles/lds_core.dir/src/store/metrics.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/store/metrics.cpp.o.d"
  "/root/repo/src/store/repair_scheduler.cpp" "CMakeFiles/lds_core.dir/src/store/repair_scheduler.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/store/repair_scheduler.cpp.o.d"
  "/root/repo/src/store/shard_router.cpp" "CMakeFiles/lds_core.dir/src/store/shard_router.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/store/shard_router.cpp.o.d"
  "/root/repo/src/store/store_service.cpp" "CMakeFiles/lds_core.dir/src/store/store_service.cpp.o" "gcc" "CMakeFiles/lds_core.dir/src/store/store_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
