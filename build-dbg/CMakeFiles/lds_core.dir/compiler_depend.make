# Empty compiler generated dependencies file for lds_core.
# This may be replaced when dependencies are built.
