file(REMOVE_RECURSE
  "CMakeFiles/test_cas.dir/tests/test_cas.cpp.o"
  "CMakeFiles/test_cas.dir/tests/test_cas.cpp.o.d"
  "test_cas"
  "test_cas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
