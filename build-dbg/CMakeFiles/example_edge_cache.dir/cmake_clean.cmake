file(REMOVE_RECURSE
  "CMakeFiles/example_edge_cache.dir/examples/edge_cache.cpp.o"
  "CMakeFiles/example_edge_cache.dir/examples/edge_cache.cpp.o.d"
  "example_edge_cache"
  "example_edge_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_edge_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
