# Empty dependencies file for example_edge_cache.
# This may be replaced when dependencies are built.
