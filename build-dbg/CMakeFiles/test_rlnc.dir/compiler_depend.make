# Empty compiler generated dependencies file for test_rlnc.
# This may be replaced when dependencies are built.
