file(REMOVE_RECURSE
  "CMakeFiles/test_rlnc.dir/tests/test_rlnc.cpp.o"
  "CMakeFiles/test_rlnc.dir/tests/test_rlnc.cpp.o.d"
  "test_rlnc"
  "test_rlnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
