# Empty dependencies file for example_failure_injection.
# This may be replaced when dependencies are built.
