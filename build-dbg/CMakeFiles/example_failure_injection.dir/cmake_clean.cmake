file(REMOVE_RECURSE
  "CMakeFiles/example_failure_injection.dir/examples/failure_injection.cpp.o"
  "CMakeFiles/example_failure_injection.dir/examples/failure_injection.cpp.o.d"
  "example_failure_injection"
  "example_failure_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failure_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
