# Empty compiler generated dependencies file for test_lds_backends.
# This may be replaced when dependencies are built.
