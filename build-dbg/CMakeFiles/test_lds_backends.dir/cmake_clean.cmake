file(REMOVE_RECURSE
  "CMakeFiles/test_lds_backends.dir/tests/test_lds_backends.cpp.o"
  "CMakeFiles/test_lds_backends.dir/tests/test_lds_backends.cpp.o.d"
  "test_lds_backends"
  "test_lds_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lds_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
