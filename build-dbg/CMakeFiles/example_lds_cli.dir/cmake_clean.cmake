file(REMOVE_RECURSE
  "CMakeFiles/example_lds_cli.dir/examples/lds_cli.cpp.o"
  "CMakeFiles/example_lds_cli.dir/examples/lds_cli.cpp.o.d"
  "example_lds_cli"
  "example_lds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
