# Empty dependencies file for example_lds_cli.
# This may be replaced when dependencies are built.
