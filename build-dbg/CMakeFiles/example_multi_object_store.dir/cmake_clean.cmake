file(REMOVE_RECURSE
  "CMakeFiles/example_multi_object_store.dir/examples/multi_object_store.cpp.o"
  "CMakeFiles/example_multi_object_store.dir/examples/multi_object_store.cpp.o.d"
  "example_multi_object_store"
  "example_multi_object_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_object_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
