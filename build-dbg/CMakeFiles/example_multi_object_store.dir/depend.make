# Empty dependencies file for example_multi_object_store.
# This may be replaced when dependencies are built.
