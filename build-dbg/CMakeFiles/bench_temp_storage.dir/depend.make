# Empty dependencies file for bench_temp_storage.
# This may be replaced when dependencies are built.
