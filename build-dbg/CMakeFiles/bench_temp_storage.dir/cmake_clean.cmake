file(REMOVE_RECURSE
  "CMakeFiles/bench_temp_storage.dir/bench/bench_temp_storage.cpp.o"
  "CMakeFiles/bench_temp_storage.dir/bench/bench_temp_storage.cpp.o.d"
  "bench_temp_storage"
  "bench_temp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
