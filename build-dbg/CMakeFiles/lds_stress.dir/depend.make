# Empty dependencies file for lds_stress.
# This may be replaced when dependencies are built.
