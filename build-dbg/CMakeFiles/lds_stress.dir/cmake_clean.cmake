file(REMOVE_RECURSE
  "CMakeFiles/lds_stress.dir/tools/lds_stress_main.cpp.o"
  "CMakeFiles/lds_stress.dir/tools/lds_stress_main.cpp.o.d"
  "lds_stress"
  "lds_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lds_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
