file(REMOVE_RECURSE
  "CMakeFiles/test_abd.dir/tests/test_abd.cpp.o"
  "CMakeFiles/test_abd.dir/tests/test_abd.cpp.o.d"
  "test_abd"
  "test_abd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
