# Empty compiler generated dependencies file for test_abd.
# This may be replaced when dependencies are built.
