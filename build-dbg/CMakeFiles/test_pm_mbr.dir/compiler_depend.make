# Empty compiler generated dependencies file for test_pm_mbr.
# This may be replaced when dependencies are built.
