file(REMOVE_RECURSE
  "CMakeFiles/test_pm_mbr.dir/tests/test_pm_mbr.cpp.o"
  "CMakeFiles/test_pm_mbr.dir/tests/test_pm_mbr.cpp.o.d"
  "test_pm_mbr"
  "test_pm_mbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_mbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
