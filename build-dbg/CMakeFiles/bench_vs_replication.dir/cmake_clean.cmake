file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_replication.dir/bench/bench_vs_replication.cpp.o"
  "CMakeFiles/bench_vs_replication.dir/bench/bench_vs_replication.cpp.o.d"
  "bench_vs_replication"
  "bench_vs_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
