# Empty dependencies file for bench_vs_replication.
# This may be replaced when dependencies are built.
