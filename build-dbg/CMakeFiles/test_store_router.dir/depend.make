# Empty dependencies file for test_store_router.
# This may be replaced when dependencies are built.
