file(REMOVE_RECURSE
  "CMakeFiles/test_store_router.dir/tests/test_store_router.cpp.o"
  "CMakeFiles/test_store_router.dir/tests/test_store_router.cpp.o.d"
  "test_store_router"
  "test_store_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
