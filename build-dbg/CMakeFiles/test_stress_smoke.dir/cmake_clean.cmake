file(REMOVE_RECURSE
  "CMakeFiles/test_stress_smoke.dir/tests/test_stress_smoke.cpp.o"
  "CMakeFiles/test_stress_smoke.dir/tests/test_stress_smoke.cpp.o.d"
  "test_stress_smoke"
  "test_stress_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
