# Empty dependencies file for test_stress_smoke.
# This may be replaced when dependencies are built.
