# Empty compiler generated dependencies file for test_lds_basic.
# This may be replaced when dependencies are built.
