file(REMOVE_RECURSE
  "CMakeFiles/test_lds_basic.dir/tests/test_lds_basic.cpp.o"
  "CMakeFiles/test_lds_basic.dir/tests/test_lds_basic.cpp.o.d"
  "test_lds_basic"
  "test_lds_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lds_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
