# Empty compiler generated dependencies file for lds_store_bench.
# This may be replaced when dependencies are built.
