file(REMOVE_RECURSE
  "CMakeFiles/lds_store_bench.dir/tools/lds_store_bench.cpp.o"
  "CMakeFiles/lds_store_bench.dir/tools/lds_store_bench.cpp.o.d"
  "lds_store_bench"
  "lds_store_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lds_store_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
