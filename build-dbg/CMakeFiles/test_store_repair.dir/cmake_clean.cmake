file(REMOVE_RECURSE
  "CMakeFiles/test_store_repair.dir/tests/test_store_repair.cpp.o"
  "CMakeFiles/test_store_repair.dir/tests/test_store_repair.cpp.o.d"
  "test_store_repair"
  "test_store_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
