# Empty dependencies file for test_store_repair.
# This may be replaced when dependencies are built.
