file(REMOVE_RECURSE
  "CMakeFiles/bench_write_cost.dir/bench/bench_write_cost.cpp.o"
  "CMakeFiles/bench_write_cost.dir/bench/bench_write_cost.cpp.o.d"
  "bench_write_cost"
  "bench_write_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_write_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
