# Empty compiler generated dependencies file for bench_write_cost.
# This may be replaced when dependencies are built.
