# Empty dependencies file for bench_rlnc_feasibility.
# This may be replaced when dependencies are built.
