file(REMOVE_RECURSE
  "CMakeFiles/bench_rlnc_feasibility.dir/bench/bench_rlnc_feasibility.cpp.o"
  "CMakeFiles/bench_rlnc_feasibility.dir/bench/bench_rlnc_feasibility.cpp.o.d"
  "bench_rlnc_feasibility"
  "bench_rlnc_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rlnc_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
