# Empty dependencies file for bench_consistency_ablation.
# This may be replaced when dependencies are built.
