file(REMOVE_RECURSE
  "CMakeFiles/bench_consistency_ablation.dir/bench/bench_consistency_ablation.cpp.o"
  "CMakeFiles/bench_consistency_ablation.dir/bench/bench_consistency_ablation.cpp.o.d"
  "bench_consistency_ablation"
  "bench_consistency_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consistency_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
