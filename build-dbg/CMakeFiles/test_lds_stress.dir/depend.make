# Empty dependencies file for test_lds_stress.
# This may be replaced when dependencies are built.
