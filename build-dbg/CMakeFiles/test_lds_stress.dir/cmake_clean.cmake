file(REMOVE_RECURSE
  "CMakeFiles/test_lds_stress.dir/tests/test_lds_stress.cpp.o"
  "CMakeFiles/test_lds_stress.dir/tests/test_lds_stress.cpp.o.d"
  "test_lds_stress"
  "test_lds_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lds_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
