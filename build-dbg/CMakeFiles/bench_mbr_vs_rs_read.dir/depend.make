# Empty dependencies file for bench_mbr_vs_rs_read.
# This may be replaced when dependencies are built.
