file(REMOVE_RECURSE
  "CMakeFiles/bench_mbr_vs_rs_read.dir/bench/bench_mbr_vs_rs_read.cpp.o"
  "CMakeFiles/bench_mbr_vs_rs_read.dir/bench/bench_mbr_vs_rs_read.cpp.o.d"
  "bench_mbr_vs_rs_read"
  "bench_mbr_vs_rs_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mbr_vs_rs_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
