file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_cost.dir/bench/bench_storage_cost.cpp.o"
  "CMakeFiles/bench_storage_cost.dir/bench/bench_storage_cost.cpp.o.d"
  "bench_storage_cost"
  "bench_storage_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
