# Empty dependencies file for bench_storage_cost.
# This may be replaced when dependencies are built.
