file(REMOVE_RECURSE
  "CMakeFiles/bench_codes_micro.dir/bench/bench_codes_micro.cpp.o"
  "CMakeFiles/bench_codes_micro.dir/bench/bench_codes_micro.cpp.o.d"
  "bench_codes_micro"
  "bench_codes_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codes_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
