# Empty compiler generated dependencies file for bench_codes_micro.
# This may be replaced when dependencies are built.
