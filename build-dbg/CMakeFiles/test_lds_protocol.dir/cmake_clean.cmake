file(REMOVE_RECURSE
  "CMakeFiles/test_lds_protocol.dir/tests/test_lds_protocol.cpp.o"
  "CMakeFiles/test_lds_protocol.dir/tests/test_lds_protocol.cpp.o.d"
  "test_lds_protocol"
  "test_lds_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lds_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
