# Empty dependencies file for test_lds_protocol.
# This may be replaced when dependencies are built.
