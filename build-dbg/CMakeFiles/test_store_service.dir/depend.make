# Empty dependencies file for test_store_service.
# This may be replaced when dependencies are built.
