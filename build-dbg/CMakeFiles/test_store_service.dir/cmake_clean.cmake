file(REMOVE_RECURSE
  "CMakeFiles/test_store_service.dir/tests/test_store_service.cpp.o"
  "CMakeFiles/test_store_service.dir/tests/test_store_service.cpp.o.d"
  "test_store_service"
  "test_store_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
