file(REMOVE_RECURSE
  "CMakeFiles/test_striped.dir/tests/test_striped.cpp.o"
  "CMakeFiles/test_striped.dir/tests/test_striped.cpp.o.d"
  "test_striped"
  "test_striped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_striped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
