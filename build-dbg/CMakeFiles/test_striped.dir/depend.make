# Empty dependencies file for test_striped.
# This may be replaced when dependencies are built.
