#include "baselines/cas.h"

#include "codes/rs.h"
#include "common/assert.h"
#include "net/codec.h"

namespace lds::baselines {

// ---- message sizes -------------------------------------------------------------

std::uint64_t CasMessage::data_bytes() const {
  return std::visit(
      [](const auto& b) -> std::uint64_t {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, CasPreWrite>) return b.element.size();
        if constexpr (std::is_same_v<T, CasFinAck>) return b.element.size();
        return 0;
      },
      body_);
}

std::uint64_t CasMessage::meta_bytes() const {
  // Exact: the codec's encoded frame size minus the data payload.
  return net::codec::encoded_size(*this) - data_bytes();
}

const char* CasMessage::type_name() const {
  return std::visit(
      [](const auto& b) -> const char* {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, CasQuery>) return "CAS-QUERY";
        else if constexpr (std::is_same_v<T, CasQueryResp>)
          return "CAS-QUERY-RESP";
        else if constexpr (std::is_same_v<T, CasPreWrite>) return "CAS-PRE";
        else if constexpr (std::is_same_v<T, CasPreAck>) return "CAS-PRE-ACK";
        else if constexpr (std::is_same_v<T, CasFinalize>) return "CAS-FIN";
        else return "CAS-FIN-ACK";
      },
      body_);
}

std::shared_ptr<CasContext> make_cas_context(std::size_t n, std::size_t k,
                                             Bytes initial_value) {
  LDS_REQUIRE(k >= 1 && k <= n, "CAS: need 1 <= k <= n");
  auto ctx = std::make_shared<CasContext>();
  ctx->n = n;
  ctx->k = k;
  ctx->initial_value = std::move(initial_value);
  ctx->code = std::make_shared<codes::StripedCode>(
      std::make_shared<codes::RsRegenerating>(n, k));
  return ctx;
}

// ---- server ---------------------------------------------------------------------

CasServer::CasServer(net::Network& net, std::shared_ptr<const CasContext> ctx,
                     std::size_t index)
    : Node(net, ctx->server_ids.at(index), Role::ServerL1),
      ctx_(std::move(ctx)),
      index_(index) {}

CasServer::ObjectState& CasServer::object(ObjectId obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    ObjectState st;
    st.elements.emplace(kTag0, ctx_->code->encode_element(
                                   ctx_->initial_value,
                                   static_cast<int>(index_)));
    st.finalized.insert(kTag0);
    st.initialized = true;
    it = objects_.emplace(obj, std::move(st)).first;
    stored_bytes_ += it->second.elements.at(kTag0).size();
  }
  return it->second;
}

std::size_t CasServer::versions(ObjectId obj) const {
  auto it = objects_.find(obj);
  return it == objects_.end() ? 0 : it->second.elements.size();
}

Tag CasServer::max_finalized(ObjectId obj) const {
  auto it = objects_.find(obj);
  if (it == objects_.end() || it->second.finalized.empty()) return kTag0;
  return *it->second.finalized.rbegin();
}

void CasServer::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const CasMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "CasServer: non-CAS message");
  ObjectState& st = object(m->obj());

  if (std::get_if<CasQuery>(&m->body()) != nullptr) {
    const Tag fin =
        st.finalized.empty() ? kTag0 : *st.finalized.rbegin();
    send(from, CasMessage::make(m->obj(), m->op(), CasQueryResp{fin}));
    return;
  }
  if (const auto* p = std::get_if<CasPreWrite>(&m->body())) {
    auto [it, inserted] = st.elements.emplace(p->tag, p->element);
    if (inserted) stored_bytes_ += p->element.size();
    send(from, CasMessage::make(m->obj(), m->op(), CasPreAck{p->tag}));
    return;
  }
  if (const auto* f = std::get_if<CasFinalize>(&m->body())) {
    st.finalized.insert(f->tag);
    CasFinAck ack;
    ack.tag = f->tag;
    if (f->want_element) {
      if (auto it = st.elements.find(f->tag); it != st.elements.end()) {
        ack.has_element = true;
        ack.element = it->second;
      }
    }
    send(from, CasMessage::make(m->obj(), m->op(), std::move(ack)));
    return;
  }
  LDS_CHECK(false, "CasServer: unexpected message type");
}

// ---- client ---------------------------------------------------------------------

CasClient::CasClient(net::Network& net, std::shared_ptr<const CasContext> ctx,
                     NodeId id, Role role, History* history)
    : Node(net, id, role), ctx_(std::move(ctx)), history_(history) {
  for (std::size_t i = 0; i < ctx_->server_ids.size(); ++i) {
    server_index_[ctx_->server_ids[i]] = static_cast<int>(i);
  }
}

void CasClient::broadcast(const CasBody& body) {
  for (NodeId s : ctx_->server_ids) {
    send(s, CasMessage::make(obj_, op_, body));
  }
}

void CasClient::write(ObjectId obj, Value value, WriteCallback cb) {
  LDS_REQUIRE(!busy(), "CasClient: one operation at a time");
  phase_ = Phase::Query;
  is_write_ = true;
  op_ = make_op_id(id(), ++seq_);
  obj_ = obj;
  value_ = std::move(value);
  wcb_ = std::move(cb);
  max_tag_ = kTag0;
  responders_.clear();
  if (history_ != nullptr) {
    history_index_ = history_->on_invoke(op_, OpKind::Write, obj_, id(),
                                         net_.sim().now());
  }
  broadcast(CasQuery{});
}

void CasClient::read(ObjectId obj, ReadCallback cb) {
  LDS_REQUIRE(!busy(), "CasClient: one operation at a time");
  phase_ = Phase::Query;
  is_write_ = false;
  op_ = make_op_id(id(), ++seq_);
  obj_ = obj;
  rcb_ = std::move(cb);
  max_tag_ = kTag0;
  responders_.clear();
  read_elements_.clear();
  if (history_ != nullptr) {
    history_index_ =
        history_->on_invoke(op_, OpKind::Read, obj_, id(), net_.sim().now());
  }
  broadcast(CasQuery{});
}

void CasClient::enter_fin() {
  phase_ = Phase::Fin;
  responders_.clear();
  broadcast(CasFinalize{op_tag_, /*want_element=*/!is_write_});
}

void CasClient::finish() {
  phase_ = Phase::Idle;
  if (is_write_) {
    if (history_ != nullptr) {
      history_->on_response(history_index_, net_.sim().now(), op_tag_, value_);
    }
    if (wcb_) {
      auto cb = std::move(wcb_);
      wcb_ = nullptr;
      cb(op_tag_);
    }
  } else {
    auto decoded = ctx_->code->decode_value(read_elements_);
    LDS_CHECK(decoded.has_value(),
              "CasClient: quorum intersection must yield k elements");
    value_ = std::move(*decoded);
    if (history_ != nullptr) {
      history_->on_response(history_index_, net_.sim().now(), op_tag_, value_);
    }
    if (rcb_) {
      auto cb = std::move(rcb_);
      rcb_ = nullptr;
      cb(op_tag_, value_);
    }
  }
}

void CasClient::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const CasMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "CasClient: non-CAS message");
  if (m->op() != op_) return;
  const std::size_t quorum = ctx_->quorum();

  if (const auto* r = std::get_if<CasQueryResp>(&m->body())) {
    if (phase_ != Phase::Query) return;
    if (!responders_.insert(from).second) return;
    if (r->fin_tag > max_tag_) max_tag_ = r->fin_tag;
    if (responders_.size() < quorum) return;

    if (is_write_) {
      // pre-write phase: ship each server its coded element.
      phase_ = Phase::Pre;
      op_tag_ = Tag{max_tag_.z + 1, id()};
      if (history_ != nullptr) {
        history_->set_payload(history_index_, op_tag_, value_);
      }
      responders_.clear();
      for (std::size_t i = 0; i < ctx_->server_ids.size(); ++i) {
        send(ctx_->server_ids[i],
             CasMessage::make(
                 obj_, op_,
                 CasPreWrite{op_tag_, ctx_->code->encode_element(
                                          value_, static_cast<int>(i))}));
      }
    } else {
      op_tag_ = max_tag_;
      enter_fin();
    }
    return;
  }

  if (const auto* a = std::get_if<CasPreAck>(&m->body())) {
    if (phase_ != Phase::Pre || a->tag != op_tag_) return;
    if (!responders_.insert(from).second) return;
    if (responders_.size() < quorum) return;
    enter_fin();
    return;
  }

  if (const auto* f = std::get_if<CasFinAck>(&m->body())) {
    if (phase_ != Phase::Fin || f->tag != op_tag_) return;
    if (!responders_.insert(from).second) return;
    if (!is_write_ && f->has_element) {
      read_elements_.emplace_back(server_index_.at(from), f->element);
    }
    if (responders_.size() < quorum) return;
    if (!is_write_ && read_elements_.size() < ctx_->k) {
      // Fewer than k elements among the first q responses (possible only
      // when responses raced ahead of the pre-write quorum); wait for more
      // servers - at least q hold the element, so k will arrive.
      return;
    }
    finish();
    return;
  }
}

// ---- harness --------------------------------------------------------------------

CasCluster::CasCluster(Options opt) : opt_(opt) {
  auto latency =
      opt_.exponential_latency
          ? std::unique_ptr<net::LatencyModel>(
                std::make_unique<net::ExponentialLatency>(
                    opt_.tau1, opt_.tau1, opt_.tau1))
          : std::unique_ptr<net::LatencyModel>(
                std::make_unique<net::FixedLatency>(opt_.tau1, opt_.tau1,
                                                    opt_.tau1));
  if (opt_.engine != nullptr) {
    engine_ = opt_.engine;
  } else if (opt_.sim != nullptr) {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(*opt_.sim, opt_.seed);
    engine_ = owned_engine_.get();
  } else {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(opt_.seed);
    engine_ = owned_engine_.get();
  }
  sim_ = &engine_->lane_sim(opt_.lane);
  net_ = std::make_unique<net::Network>(*engine_, opt_.lane, std::move(latency),
                                        opt_.seed);

  ctx_ = make_cas_context(opt_.n, opt_.k, opt_.initial_value);
  for (std::size_t i = 0; i < opt_.n; ++i) {
    ctx_->server_ids.push_back(20000 + static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i < opt_.n; ++i) {
    servers_.push_back(std::make_unique<CasServer>(*net_, ctx_, i));
  }
  for (std::size_t w = 0; w < opt_.writers; ++w) {
    writers_.push_back(std::make_unique<CasClient>(
        *net_, ctx_, static_cast<NodeId>(1 + w), Role::Writer, &history_));
  }
  for (std::size_t r = 0; r < opt_.readers; ++r) {
    readers_.push_back(std::make_unique<CasClient>(
        *net_, ctx_, 10000 + static_cast<NodeId>(r), Role::Reader,
        &history_));
  }
}

Tag CasCluster::write_sync(std::size_t writer_idx, ObjectId obj, Value value) {
  bool done = false;
  Tag tag;
  writers_.at(writer_idx)->write(obj, std::move(value), [&](Tag t) {
    done = true;
    tag = t;
  });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "CasCluster::write_sync: drained before completion");
  return tag;
}

std::pair<Tag, Value> CasCluster::read_sync(std::size_t reader_idx,
                                            ObjectId obj) {
  bool done = false;
  Tag tag;
  Value value;
  readers_.at(reader_idx)->read(obj, [&](Tag t, Value v) {
    done = true;
    tag = t;
    value = std::move(v);
  });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "CasCluster::read_sync: drained before completion");
  return {tag, std::move(value)};
}

std::uint64_t CasCluster::storage_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->stored_bytes();
  return total;
}

}  // namespace lds::baselines
