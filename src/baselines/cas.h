// CAS - Coded Atomic Storage (Cadambe, Lynch, Medard, Musial; the paper's
// reference [6]): the single-layer erasure-coded atomic register emulation
// that LDS's related-work section positions itself against.
//
// One layer of n servers storing Reed-Solomon coded elements (alpha = B/k),
// quorums of size q = ceil((n + k) / 2) so that any two quorums intersect in
// at least k servers; tolerates f <= (n - k) / 2 crashes.
//
// Protocol (three-phase writes, two-phase-plus-finalize reads):
//   write: query   - max *finalized* tag from a quorum; t_w = (z + 1, w).
//          pre     - send (t_w, coded element c_i, 'pre') to every server;
//                    await q acks.
//          fin     - send (t_w, 'fin') to every server; await q acks.
//   read : query   - max finalized tag t_r from a quorum.
//          fin     - send (t_r, 'fin') to every server; each responds with
//                    its coded element for t_r if it holds one (else a bare
//                    ack); await q responses; quorum intersection guarantees
//                    >= k elements; decode and return.
//
// This implementation is the *plain* CAS: servers keep every pre-written
// version (the unbounded-history cost that CASGC later bounded, and that
// LDS's two-layer design eliminates by keeping exactly one version in L2).
// The storage gauge exposes that growth for the baseline benches.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "codes/striped.h"
#include "common/slice.h"
#include "lds/history.h"
#include "net/network.h"

namespace lds::baselines {

using core::History;
using core::OpKind;

// ---- wire protocol -----------------------------------------------------------

struct CasQuery {};
struct CasQueryResp {
  Tag fin_tag;
};
struct CasPreWrite {
  Tag tag;
  Bytes element;
};
struct CasPreAck {
  Tag tag;
};
struct CasFinalize {
  Tag tag;
  /// Readers ask servers to return their coded element of `tag`; writers
  /// only need the label recorded.
  bool want_element = false;
};
/// Finalize response; for readers it carries the server's coded element of
/// the finalized tag when available (has_element distinguishes an empty
/// element from "not stored").
struct CasFinAck {
  Tag tag;
  bool has_element = false;
  Bytes element;
};

/// Alternative order frozen: the wire codec (net/codec.h) uses the variant
/// index as the frame's type id.  Append, never reorder.
using CasBody = std::variant<CasQuery, CasQueryResp, CasPreWrite, CasPreAck,
                             CasFinalize, CasFinAck>;

class CasMessage final : public net::Payload {
 public:
  CasMessage(ObjectId obj, OpId op, CasBody body)
      : obj_(obj), op_(op), body_(std::move(body)) {}

  ObjectId obj() const { return obj_; }
  OpId op() const override { return op_; }
  const CasBody& body() const { return body_; }

  std::uint64_t data_bytes() const override;
  /// Exact: codec frame size minus the data payload (defined in cas.cpp).
  std::uint64_t meta_bytes() const override;
  const char* type_name() const override;

  static net::MessagePtr make(ObjectId obj, OpId op, CasBody body) {
    return std::make_shared<CasMessage>(obj, op, std::move(body));
  }

 private:
  ObjectId obj_;
  OpId op_;
  CasBody body_;
};

// ---- processes -----------------------------------------------------------------

struct CasContext {
  std::size_t n = 0;
  std::size_t k = 0;
  Bytes initial_value{};
  std::vector<NodeId> server_ids;
  std::shared_ptr<codes::StripedCode> code;  // RS, striped

  /// q = ceil((n + k) / 2): any two quorums share >= k servers.
  std::size_t quorum() const { return (n + k + 1) / 2; }
  /// Maximum crash failures: f <= (n - k) / 2.
  std::size_t max_failures() const { return (n - k) / 2; }
};

std::shared_ptr<CasContext> make_cas_context(std::size_t n, std::size_t k,
                                             Bytes initial_value);

class CasServer final : public net::Node {
 public:
  CasServer(net::Network& net, std::shared_ptr<const CasContext> ctx,
            std::size_t index);

  void on_message(NodeId from, const net::MessagePtr& msg) override;

  /// Bytes of coded elements currently held (all versions - CAS keeps
  /// history; see the header comment).
  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::size_t versions(ObjectId obj) const;
  Tag max_finalized(ObjectId obj) const;

 private:
  struct ObjectState {
    std::map<Tag, Bytes> elements;  // pre-written coded elements
    std::set<Tag> finalized;        // tags with a 'fin' label
    bool initialized = false;
  };
  ObjectState& object(ObjectId obj);

  std::shared_ptr<const CasContext> ctx_;
  std::size_t index_;
  std::unordered_map<ObjectId, ObjectState> objects_;
  std::uint64_t stored_bytes_ = 0;
};

class CasClient final : public net::Node {
 public:
  using WriteCallback = std::function<void(Tag)>;
  using ReadCallback = std::function<void(Tag, Value)>;

  CasClient(net::Network& net, std::shared_ptr<const CasContext> ctx,
            NodeId id, Role role, History* history = nullptr);

  void write(ObjectId obj, Value value, WriteCallback cb = {});
  void read(ObjectId obj, ReadCallback cb = {});
  bool busy() const { return phase_ != Phase::Idle; }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

 private:
  enum class Phase { Idle, Query, Pre, Fin };

  void broadcast(const CasBody& body);
  void enter_fin();
  void finish();

  std::shared_ptr<const CasContext> ctx_;
  History* history_;

  Phase phase_ = Phase::Idle;
  bool is_write_ = false;
  std::uint32_t seq_ = 0;
  OpId op_ = kNoOp;
  ObjectId obj_ = 0;
  Value value_;
  WriteCallback wcb_;
  ReadCallback rcb_;
  std::size_t history_index_ = 0;
  Tag max_tag_;
  Tag op_tag_;
  std::unordered_set<NodeId> responders_;
  std::vector<codes::IndexedBytes> read_elements_;
  std::unordered_map<NodeId, int> server_index_;
};

// ---- harness --------------------------------------------------------------------

class CasCluster {
 public:
  struct Options {
    std::size_t n = 9;
    std::size_t k = 5;  // f = 2
    std::size_t writers = 1;
    std::size_t readers = 1;
    Bytes initial_value{};
    double tau1 = 1.0;
    std::uint64_t seed = 1;
    bool exponential_latency = false;
    /// Execution engine + lane (see net/engine.h and
    /// LdsCluster::Options::engine); null = own a single-lane SimEngine.
    net::Engine* engine = nullptr;
    std::size_t lane = 0;
    /// Legacy shorthand for "SimEngine over an external simulator"; ignored
    /// when `engine` is set.  Must outlive the cluster.
    net::Simulator* sim = nullptr;
  };

  explicit CasCluster(Options opt);

  net::Engine& engine() { return *engine_; }
  std::size_t lane() const { return opt_.lane; }
  net::Simulator& sim() { return *sim_; }
  net::Network& net() { return *net_; }
  History& history() { return history_; }
  const CasContext& ctx() const { return *ctx_; }

  CasClient& writer(std::size_t i) { return *writers_.at(i); }
  CasClient& reader(std::size_t i) { return *readers_.at(i); }
  CasServer& server(std::size_t i) { return *servers_.at(i); }
  void crash_server(std::size_t i) { servers_.at(i)->crash(); }

  Tag write_sync(std::size_t writer_idx, ObjectId obj, Value value);
  std::pair<Tag, Value> read_sync(std::size_t reader_idx, ObjectId obj);

  std::uint64_t storage_bytes() const;

 private:
  Options opt_;
  std::unique_ptr<net::SimEngine> owned_engine_;
  net::Engine* engine_ = nullptr;
  net::Simulator* sim_ = nullptr;
  std::unique_ptr<net::Network> net_;
  std::shared_ptr<CasContext> ctx_;
  History history_;
  std::vector<std::unique_ptr<CasServer>> servers_;
  std::vector<std::unique_ptr<CasClient>> writers_;
  std::vector<std::unique_ptr<CasClient>> readers_;
};

}  // namespace lds::baselines
