#include "baselines/abd.h"

#include "common/assert.h"
#include "net/codec.h"

namespace lds::baselines {

// ---- message sizes ----------------------------------------------------------

std::uint64_t AbdMessage::data_bytes() const {
  return std::visit(
      [](const auto& b) -> std::uint64_t {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, AbdQueryResp>) return b.value.size();
        if constexpr (std::is_same_v<T, AbdUpdate>) return b.value.size();
        return 0;
      },
      body_);
}

std::uint64_t AbdMessage::meta_bytes() const {
  // Exact: the codec's encoded frame size minus the data payload.
  return net::codec::encoded_size(*this) - data_bytes();
}

const char* AbdMessage::type_name() const {
  return std::visit(
      [](const auto& b) -> const char* {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, AbdQuery>) return "ABD-QUERY";
        else if constexpr (std::is_same_v<T, AbdQueryResp>)
          return "ABD-QUERY-RESP";
        else if constexpr (std::is_same_v<T, AbdUpdate>) return "ABD-UPDATE";
        else return "ABD-UPDATE-ACK";
      },
      body_);
}

// ---- server ------------------------------------------------------------------

AbdServer::AbdServer(net::Network& net, std::shared_ptr<const AbdContext> ctx,
                     std::size_t index)
    : Node(net, ctx->server_ids.at(index), Role::ServerL1),
      ctx_(std::move(ctx)) {}

AbdServer::ObjectState& AbdServer::object(ObjectId obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    ObjectState st;
    st.tag = kTag0;
    st.value = ctx_->initial_value;
    stored_bytes_ += st.value.size();
    it = objects_.emplace(obj, std::move(st)).first;
  }
  return it->second;
}

Tag AbdServer::stored_tag(ObjectId obj) const {
  auto it = objects_.find(obj);
  return it == objects_.end() ? kTag0 : it->second.tag;
}

void AbdServer::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const AbdMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "AbdServer: non-ABD message");
  ObjectState& st = object(m->obj());

  if (const auto* q = std::get_if<AbdQuery>(&m->body())) {
    send(from, AbdMessage::make(
                   m->obj(), m->op(),
                   AbdQueryResp{st.tag, q->want_value ? st.value : Value{}}));
    return;
  }
  if (const auto* u = std::get_if<AbdUpdate>(&m->body())) {
    if (u->tag > st.tag) {
      stored_bytes_ -= st.value.size();
      st.tag = u->tag;
      st.value = u->value;
      stored_bytes_ += st.value.size();
    }
    send(from, AbdMessage::make(m->obj(), m->op(), AbdUpdateAck{u->tag}));
    return;
  }
  LDS_CHECK(false, "AbdServer: unexpected message type");
}

// ---- client ------------------------------------------------------------------

AbdClient::AbdClient(net::Network& net, std::shared_ptr<const AbdContext> ctx,
                     NodeId id, Role role, History* history)
    : Node(net, id, role), ctx_(std::move(ctx)), history_(history) {}

void AbdClient::broadcast(const AbdBody& body) {
  for (NodeId s : ctx_->server_ids) {
    send(s, AbdMessage::make(obj_, op_, body));
  }
}

void AbdClient::write(ObjectId obj, Value value, WriteCallback cb) {
  LDS_REQUIRE(!busy(), "AbdClient: one operation at a time");
  phase_ = Phase::Query;
  is_write_ = true;
  op_ = make_op_id(id(), ++seq_);
  obj_ = obj;
  value_ = std::move(value);
  wcb_ = std::move(cb);
  max_tag_ = kTag0;
  responders_.clear();
  if (history_ != nullptr) {
    history_index_ = history_->on_invoke(op_, OpKind::Write, obj_, id(),
                                         net_.sim().now());
  }
  broadcast(AbdQuery{/*want_value=*/false});
}

void AbdClient::read(ObjectId obj, ReadCallback cb) {
  LDS_REQUIRE(!busy(), "AbdClient: one operation at a time");
  phase_ = Phase::Query;
  is_write_ = false;
  op_ = make_op_id(id(), ++seq_);
  obj_ = obj;
  rcb_ = std::move(cb);
  max_tag_ = kTag0;
  max_value_ = ctx_->initial_value;
  responders_.clear();
  if (history_ != nullptr) {
    history_index_ =
        history_->on_invoke(op_, OpKind::Read, obj_, id(), net_.sim().now());
  }
  broadcast(AbdQuery{/*want_value=*/true});
}

void AbdClient::finish(Tag tag) {
  phase_ = Phase::Idle;
  if (is_write_) {
    if (history_ != nullptr) {
      history_->on_response(history_index_, net_.sim().now(), tag, value_);
    }
    if (wcb_) {
      auto cb = std::move(wcb_);
      wcb_ = nullptr;
      cb(tag);
    }
  } else {
    if (history_ != nullptr) {
      history_->on_response(history_index_, net_.sim().now(), tag, value_);
    }
    if (rcb_) {
      auto cb = std::move(rcb_);
      rcb_ = nullptr;
      cb(tag, value_);
    }
  }
}

void AbdClient::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const AbdMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "AbdClient: non-ABD message");
  if (m->op() != op_) return;
  const std::size_t quorum = ctx_->quorum();

  if (const auto* r = std::get_if<AbdQueryResp>(&m->body())) {
    if (phase_ != Phase::Query) return;
    if (!responders_.insert(from).second) return;
    if (r->tag > max_tag_) {
      max_tag_ = r->tag;
      if (!is_write_) max_value_ = r->value;
    }
    if (responders_.size() < quorum) return;

    phase_ = Phase::Update;
    responders_.clear();
    if (is_write_) {
      update_tag_ = Tag{max_tag_.z + 1, id()};
      if (history_ != nullptr) {
        history_->set_payload(history_index_, update_tag_, value_);
      }
      broadcast(AbdUpdate{update_tag_, value_});
    } else {
      update_tag_ = max_tag_;
      value_ = max_value_;
      broadcast(AbdUpdate{update_tag_, value_});
    }
    return;
  }

  if (const auto* a = std::get_if<AbdUpdateAck>(&m->body())) {
    if (phase_ != Phase::Update || a->tag != update_tag_) return;
    if (!responders_.insert(from).second) return;
    if (responders_.size() < quorum) return;
    finish(update_tag_);
    return;
  }
}

// ---- harness -----------------------------------------------------------------

AbdCluster::AbdCluster(Options opt) : opt_(opt) {
  LDS_REQUIRE(2 * opt_.f < opt_.n, "AbdCluster: need f < n/2");
  auto latency =
      opt_.exponential_latency
          ? std::unique_ptr<net::LatencyModel>(
                std::make_unique<net::ExponentialLatency>(
                    opt_.tau1, opt_.tau1, opt_.tau1))
          : std::unique_ptr<net::LatencyModel>(
                std::make_unique<net::FixedLatency>(opt_.tau1, opt_.tau1,
                                                    opt_.tau1));
  if (opt_.engine != nullptr) {
    engine_ = opt_.engine;
  } else if (opt_.sim != nullptr) {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(*opt_.sim, opt_.seed);
    engine_ = owned_engine_.get();
  } else {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(opt_.seed);
    engine_ = owned_engine_.get();
  }
  sim_ = &engine_->lane_sim(opt_.lane);
  net_ = std::make_unique<net::Network>(*engine_, opt_.lane, std::move(latency),
                                        opt_.seed);

  ctx_ = std::make_shared<AbdContext>();
  ctx_->n = opt_.n;
  ctx_->f = opt_.f;
  ctx_->initial_value = opt_.initial_value;
  for (std::size_t i = 0; i < opt_.n; ++i) {
    ctx_->server_ids.push_back(20000 + static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i < opt_.n; ++i) {
    servers_.push_back(std::make_unique<AbdServer>(*net_, ctx_, i));
  }
  for (std::size_t w = 0; w < opt_.writers; ++w) {
    writers_.push_back(std::make_unique<AbdClient>(
        *net_, ctx_, static_cast<NodeId>(1 + w), Role::Writer, &history_));
  }
  for (std::size_t r = 0; r < opt_.readers; ++r) {
    readers_.push_back(std::make_unique<AbdClient>(
        *net_, ctx_, 10000 + static_cast<NodeId>(r), Role::Reader,
        &history_));
  }
}

Tag AbdCluster::write_sync(std::size_t writer_idx, ObjectId obj, Value value) {
  bool done = false;
  Tag tag;
  writers_.at(writer_idx)->write(obj, std::move(value), [&](Tag t) {
    done = true;
    tag = t;
  });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "AbdCluster::write_sync: drained before completion");
  return tag;
}

std::pair<Tag, Value> AbdCluster::read_sync(std::size_t reader_idx,
                                            ObjectId obj) {
  bool done = false;
  Tag tag;
  Value value;
  readers_.at(reader_idx)->read(obj, [&](Tag t, Value v) {
    done = true;
    tag = t;
    value = std::move(v);
  });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "AbdCluster::read_sync: drained before completion");
  return {tag, std::move(value)};
}

std::uint64_t AbdCluster::storage_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->stored_bytes();
  return total;
}

}  // namespace lds::baselines
