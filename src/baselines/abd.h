// Multi-writer multi-reader ABD: the classic replication-based atomic
// register emulation of Attiya-Bar-Noy-Dolev (the paper's reference [3]),
// run on the same simulated network substrate as LDS.
//
// This is the single-layer replication baseline of the paper's introduction
// and of the Remark-2 comparison: write cost n, read cost 2n (query + full
// value write-back), storage cost n per object - against LDS's Theta(n1)
// writes, Theta(1) contention-free reads and Theta(1) permanent storage.
//
// Protocol (majority quorums, q = floor(n/2) + 1, tolerates f < n/2):
//   write: query all for tags, await majority, pick max t;
//          update all with ((t.z + 1, w), v), await majority ACKs.
//   read : query all for (tag, value), await majority, pick max (t, v);
//          write back (t, v) to all, await majority ACKs; return v.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/slice.h"
#include "lds/history.h"
#include "net/network.h"

namespace lds::baselines {

using core::History;
using core::OpKind;

// ---- wire protocol ----------------------------------------------------------

struct AbdQuery {
  bool want_value = false;  ///< readers need (tag, value); writers only tags
};
struct AbdQueryResp {
  Tag tag;
  Value value;  ///< empty when only the tag was requested
};
struct AbdUpdate {
  Tag tag;
  Value value;
};
struct AbdUpdateAck {
  Tag tag;
};

/// Alternative order frozen: the wire codec (net/codec.h) uses the variant
/// index as the frame's type id.  Append, never reorder.
using AbdBody = std::variant<AbdQuery, AbdQueryResp, AbdUpdate, AbdUpdateAck>;

class AbdMessage final : public net::Payload {
 public:
  AbdMessage(ObjectId obj, OpId op, AbdBody body)
      : obj_(obj), op_(op), body_(std::move(body)) {}

  ObjectId obj() const { return obj_; }
  OpId op() const override { return op_; }
  const AbdBody& body() const { return body_; }

  std::uint64_t data_bytes() const override;
  /// Exact: codec frame size minus the data payload (defined in abd.cpp).
  std::uint64_t meta_bytes() const override;
  const char* type_name() const override;

  static net::MessagePtr make(ObjectId obj, OpId op, AbdBody body) {
    return std::make_shared<AbdMessage>(obj, op, std::move(body));
  }

 private:
  ObjectId obj_;
  OpId op_;
  AbdBody body_;
};

// ---- processes --------------------------------------------------------------

struct AbdContext {
  std::size_t n = 0;
  std::size_t f = 0;
  Bytes initial_value{};
  std::vector<NodeId> server_ids;

  std::size_t quorum() const { return n / 2 + 1; }
};

class AbdServer final : public net::Node {
 public:
  AbdServer(net::Network& net, std::shared_ptr<const AbdContext> ctx,
            std::size_t index);

  void on_message(NodeId from, const net::MessagePtr& msg) override;

  Tag stored_tag(ObjectId obj) const;
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  struct ObjectState {
    Tag tag = kTag0;
    Value value;  ///< shared handle; replicas reference one buffer
  };
  ObjectState& object(ObjectId obj);

  std::shared_ptr<const AbdContext> ctx_;
  std::unordered_map<ObjectId, ObjectState> objects_;
  std::uint64_t stored_bytes_ = 0;
};

class AbdClient final : public net::Node {
 public:
  using WriteCallback = std::function<void(Tag)>;
  using ReadCallback = std::function<void(Tag, Value)>;

  AbdClient(net::Network& net, std::shared_ptr<const AbdContext> ctx,
            NodeId id, Role role, History* history = nullptr);

  void write(ObjectId obj, Value value, WriteCallback cb = {});
  void read(ObjectId obj, ReadCallback cb = {});
  bool busy() const { return phase_ != Phase::Idle; }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

 private:
  enum class Phase { Idle, Query, Update };

  void broadcast(const AbdBody& body);
  void finish(Tag tag);

  std::shared_ptr<const AbdContext> ctx_;
  History* history_;

  Phase phase_ = Phase::Idle;
  bool is_write_ = false;
  std::uint32_t seq_ = 0;
  OpId op_ = kNoOp;
  ObjectId obj_ = 0;
  Value value_;
  WriteCallback wcb_;
  ReadCallback rcb_;
  std::size_t history_index_ = 0;
  Tag max_tag_;
  Value max_value_;
  Tag update_tag_;
  std::unordered_set<NodeId> responders_;
};

// ---- harness ----------------------------------------------------------------

class AbdCluster {
 public:
  struct Options {
    std::size_t n = 5;
    std::size_t f = 2;
    std::size_t writers = 1;
    std::size_t readers = 1;
    Bytes initial_value{};
    double tau1 = 1.0;
    std::uint64_t seed = 1;
    bool exponential_latency = false;
    /// Execution engine + lane (see net/engine.h and
    /// LdsCluster::Options::engine); null = own a single-lane SimEngine.
    net::Engine* engine = nullptr;
    std::size_t lane = 0;
    /// Legacy shorthand for "SimEngine over an external simulator"; ignored
    /// when `engine` is set.  Must outlive the cluster.
    net::Simulator* sim = nullptr;
  };

  explicit AbdCluster(Options opt);

  net::Engine& engine() { return *engine_; }
  std::size_t lane() const { return opt_.lane; }
  net::Simulator& sim() { return *sim_; }
  net::Network& net() { return *net_; }
  History& history() { return history_; }
  const AbdContext& ctx() const { return *ctx_; }

  AbdClient& writer(std::size_t i) { return *writers_.at(i); }
  AbdClient& reader(std::size_t i) { return *readers_.at(i); }
  AbdServer& server(std::size_t i) { return *servers_.at(i); }

  void crash_server(std::size_t i) { servers_.at(i)->crash(); }

  Tag write_sync(std::size_t writer_idx, ObjectId obj, Value value);
  std::pair<Tag, Value> read_sync(std::size_t reader_idx, ObjectId obj);

  std::uint64_t storage_bytes() const;

 private:
  Options opt_;
  std::unique_ptr<net::SimEngine> owned_engine_;
  net::Engine* engine_ = nullptr;
  net::Simulator* sim_ = nullptr;
  std::unique_ptr<net::Network> net_;
  std::shared_ptr<AbdContext> ctx_;
  History history_;
  std::vector<std::unique_ptr<AbdServer>> servers_;
  std::vector<std::unique_ptr<AbdClient>> writers_;
  std::vector<std::unique_ptr<AbdClient>> readers_;
};

}  // namespace lds::baselines
