// AArch64 GF(2^8) vector kernels: split-nibble TBL multiply (16 B/step).
//
// NEON is architecturally baseline on AArch64, so no runtime probe is
// needed: the kernels are available whenever this TU compiles for arm64.
// On every other architecture this file provides the null stubs for the
// non-native kernel families (gf256_x86.cpp does the same for neon on x86),
// so detail::kernels_for() links everywhere.
#include "gf/gf256.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace lds::gf::detail {

namespace {

inline uint8x16_t mul16(uint8x16_t v, uint8x16_t lo, uint8x16_t hi) {
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  const uint8x16_t l = vqtbl1q_u8(lo, vandq_u8(v, mask));
  const uint8x16_t h = vqtbl1q_u8(hi, vshrq_n_u8(v, 4));
  return veorq_u8(l, h);
}

void axpy_neon(Elem* y, Elem a, const Elem* x, std::size_t len) {
  const Elem* t = tables().nib[a];
  const uint8x16_t lo = vld1q_u8(t);
  const uint8x16_t hi = vld1q_u8(t + 16);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const uint8x16_t p = mul16(vld1q_u8(x + i), lo, hi);
    vst1q_u8(y + i, veorq_u8(vld1q_u8(y + i), p));
  }
  for (; i < len; ++i) {
    y[i] ^= static_cast<Elem>(t[x[i] & 0x0f] ^ t[16 + (x[i] >> 4)]);
  }
}

void mul_into_neon(Elem* z, Elem a, const Elem* x, std::size_t len) {
  const Elem* t = tables().nib[a];
  const uint8x16_t lo = vld1q_u8(t);
  const uint8x16_t hi = vld1q_u8(t + 16);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    vst1q_u8(z + i, mul16(vld1q_u8(x + i), lo, hi));
  }
  for (; i < len; ++i) {
    z[i] = static_cast<Elem>(t[x[i] & 0x0f] ^ t[16 + (x[i] >> 4)]);
  }
}

Elem dot_neon(const Elem* a, const Elem* b, std::size_t len) {
  // Bitsliced schoolbook multiply, as in the x86 dot kernel.
  const auto& t = tables();
  Elem acc = 0;
  std::size_t i = 0;
  if (len >= 16) {
    const uint8x16_t poly = vdupq_n_u8(0x1D);
    uint8x16_t vacc = vdupq_n_u8(0);
    for (; i + 16 <= len; i += 16) {
      uint8x16_t pa = vld1q_u8(a + i);
      uint8x16_t pb = vld1q_u8(b + i);
      uint8x16_t prod = vdupq_n_u8(0);
      for (int bit = 0; bit < 8; ++bit) {
        const uint8x16_t sel = vtstq_u8(pa, vdupq_n_u8(1));
        prod = veorq_u8(prod, vandq_u8(sel, pb));
        const uint8x16_t carry = vtstq_u8(pb, vdupq_n_u8(0x80));
        pb = vshlq_n_u8(pb, 1);
        pb = veorq_u8(pb, vandq_u8(carry, poly));
        pa = vshrq_n_u8(pa, 1);
      }
      vacc = veorq_u8(vacc, prod);
    }
    Elem lanes[16];
    vst1q_u8(lanes, vacc);
    for (Elem l : lanes) acc ^= l;
  }
  for (; i < len; ++i) {
    if (a[i] != 0 && b[i] != 0) acc ^= t.exp[t.log[a[i]] + t.log[b[i]]];
  }
  return acc;
}

constexpr Kernels kNeonKernels{Isa::Neon, axpy_neon, mul_into_neon, dot_neon};

}  // namespace

const Kernels* neon_kernels() { return &kNeonKernels; }
const Kernels* ssse3_kernels() { return nullptr; }
const Kernels* avx2_kernels() { return nullptr; }

}  // namespace lds::gf::detail

#elif !defined(__x86_64__) && !defined(__i386__)

namespace lds::gf::detail {
const Kernels* neon_kernels() { return nullptr; }
const Kernels* ssse3_kernels() { return nullptr; }
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace lds::gf::detail

#endif
