// x86 GF(2^8) vector kernels: split-nibble shuffle-table multiply.
//
// Per-function target attributes let one translation unit carry both the
// SSSE3 (PSHUFB, 16 B/step) and AVX2 (VPSHUFB, 64 B/step, 2x unrolled)
// kernels without raising the global -m flags, so the binary still runs on
// machines without the extensions; detail::active_kernels() picks at
// runtime via CPUID (__builtin_cpu_supports).
//
// All kernels compute exactly  T_lo[x & 0xF] ^ T_hi[x >> 4]  from the same
// precomputed detail::Tables::nib rows the scalar fallback uses, so every
// path is bit-identical by construction; the tails shorter than one vector
// reuse the scalar loop.
#include "gf/gf256.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace lds::gf::detail {

namespace {

inline void axpy_tail(Elem* y, const Elem* t, const Elem* x, std::size_t i,
                      std::size_t len) {
  for (; i < len; ++i) {
    y[i] ^= static_cast<Elem>(t[x[i] & 0x0f] ^ t[16 + (x[i] >> 4)]);
  }
}

inline void mul_tail(Elem* z, const Elem* t, const Elem* x, std::size_t i,
                     std::size_t len) {
  for (; i < len; ++i) {
    z[i] = static_cast<Elem>(t[x[i] & 0x0f] ^ t[16 + (x[i] >> 4)]);
  }
}

// ---- SSSE3 ------------------------------------------------------------------

__attribute__((target("ssse3"))) inline __m128i
mul16(__m128i v, __m128i lo, __m128i hi, __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
  return _mm_xor_si128(l, h);
}

__attribute__((target("ssse3"))) void axpy_ssse3(Elem* y, Elem a,
                                                 const Elem* x,
                                                 std::size_t len) {
  const Elem* t = tables().nib[a];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i p = mul16(v, lo, hi, mask);
    __m128i* yp = reinterpret_cast<__m128i*>(y + i);
    _mm_storeu_si128(yp, _mm_xor_si128(_mm_loadu_si128(yp), p));
  }
  axpy_tail(y, t, x, i, len);
}

__attribute__((target("ssse3"))) void mul_into_ssse3(Elem* z, Elem a,
                                                     const Elem* x,
                                                     std::size_t len) {
  const Elem* t = tables().nib[a];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(z + i),
                     mul16(v, lo, hi, mask));
  }
  mul_tail(z, t, x, i, len);
}

__attribute__((target("ssse3"))) Elem dot_ssse3(const Elem* a, const Elem* b,
                                                std::size_t len) {
  // Unlike axpy/mul_into there is no single multiplier, so shuffle tables do
  // not apply; multiply 16 byte-pairs at once with the bitsliced schoolbook
  // instead (accumulate b·x^j for each set bit j of a, reducing by the field
  // polynomial), and XOR-fold the lanes at the end.
  const auto& t = tables();
  Elem acc = 0;
  std::size_t i = 0;
  if (len >= 16) {
    const __m128i one = _mm_set1_epi8(1);
    const __m128i top = _mm_set1_epi8(static_cast<char>(0x80));
    const __m128i poly = _mm_set1_epi8(0x1D);  // 0x11D mod x^8
    const __m128i low7 = _mm_set1_epi8(0x7f);
    __m128i vacc = _mm_setzero_si128();
    for (; i + 16 <= len; i += 16) {
      __m128i pa = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      __m128i pb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      __m128i prod = _mm_setzero_si128();
      for (int bit = 0; bit < 8; ++bit) {
        const __m128i sel = _mm_cmpeq_epi8(_mm_and_si128(pa, one), one);
        prod = _mm_xor_si128(prod, _mm_and_si128(sel, pb));
        const __m128i carry = _mm_cmpeq_epi8(_mm_and_si128(pb, top), top);
        pb = _mm_add_epi8(pb, pb);  // per-byte shift left by 1
        pb = _mm_xor_si128(pb, _mm_and_si128(carry, poly));
        pa = _mm_and_si128(_mm_srli_epi64(pa, 1), low7);
      }
      vacc = _mm_xor_si128(vacc, prod);
    }
    alignas(16) Elem lanes[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vacc);
    for (Elem l : lanes) acc ^= l;
  }
  for (; i < len; ++i) {
    if (a[i] != 0 && b[i] != 0) acc ^= t.exp[t.log[a[i]] + t.log[b[i]]];
  }
  return acc;
}

// ---- AVX2 -------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
mul32(__m256i v, __m256i lo, __m256i hi, __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
  const __m256i h =
      _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
  return _mm256_xor_si256(l, h);
}

__attribute__((target("avx2"))) void axpy_avx2(Elem* y, Elem a, const Elem* x,
                                               std::size_t len) {
  const Elem* t = tables().nib[a];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 32));
    __m256i* y0 = reinterpret_cast<__m256i*>(y + i);
    __m256i* y1 = reinterpret_cast<__m256i*>(y + i + 32);
    _mm256_storeu_si256(
        y0, _mm256_xor_si256(_mm256_loadu_si256(y0), mul32(v0, lo, hi, mask)));
    _mm256_storeu_si256(
        y1, _mm256_xor_si256(_mm256_loadu_si256(y1), mul32(v1, lo, hi, mask)));
  }
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i* yp = reinterpret_cast<__m256i*>(y + i);
    _mm256_storeu_si256(
        yp, _mm256_xor_si256(_mm256_loadu_si256(yp), mul32(v, lo, hi, mask)));
  }
  axpy_tail(y, t, x, i, len);
}

__attribute__((target("avx2"))) void mul_into_avx2(Elem* z, Elem a,
                                                   const Elem* x,
                                                   std::size_t len) {
  const Elem* t = tables().nib[a];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(z + i),
                        mul32(v, lo, hi, mask));
  }
  mul_tail(z, t, x, i, len);
}

Elem dot_avx2(const Elem* a, const Elem* b, std::size_t len) {
  return dot_ssse3(a, b, len);  // dot is not the striped hot path; reuse
}

constexpr Kernels kSsse3Kernels{Isa::Ssse3, axpy_ssse3, mul_into_ssse3,
                                dot_ssse3};
constexpr Kernels kAvx2Kernels{Isa::Avx2, axpy_avx2, mul_into_avx2, dot_avx2};

}  // namespace

const Kernels* ssse3_kernels() {
  return __builtin_cpu_supports("ssse3") ? &kSsse3Kernels : nullptr;
}

const Kernels* avx2_kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

const Kernels* neon_kernels() { return nullptr; }

}  // namespace lds::gf::detail

#endif  // x86
