// Arithmetic in GF(2^8), the symbol field of every code in this library.
//
// The paper assumes symbols are drawn from a finite field F_q (Section II-c).
// We fix q = 256 so that one symbol is one byte: values, coded elements and
// helper data are then plain byte strings, and field-size constraints
// (distinct evaluation points for the Vandermonde encoding matrices) allow
// systems with up to n1 + n2 = 255 servers, comfortably covering the paper's
// largest configuration (n1 = n2 = 100, Fig. 6).
//
// Scalar arithmetic uses the classic log/antilog tables over the AES
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), built once at static
// initialisation.
//
// The vector kernels (axpy / mul_into / dot / scale) are the hot path of
// encode, decode and repair.  They are runtime-dispatched over ISA-specific
// implementations of the split-nibble shuffle-table technique (ISA-L /
// "Screaming Fast Galois Field Arithmetic", Plank et al.):
//
//   product = T_lo[x & 0xF] ^ T_hi[x >> 4]
//
// where T_lo/T_hi are 16-entry tables of a*v and a*(v<<4).  With PSHUFB
// (SSSE3), VPSHUFB (AVX2) or TBL (NEON) this multiplies 16/32 bytes per
// instruction; the portable fallback walks the same 32-byte table one byte
// at a time (branch-free, ~2-3x the old log/exp loop).  The best ISA is
// selected once at startup via CPUID/HWCAP and can be overridden with
// LDS_GF_ISA=scalar|ssse3|avx2|neon (or per-process via select_isa, used by
// the equivalence tests).  Every path returns bit-identical results: GF
// multiplication is exact, so dispatch NEVER changes any byte of any encode,
// decode or repair output.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/assert.h"

namespace lds::gf {

using Elem = std::uint8_t;

/// Order of the multiplicative group.
inline constexpr int kGroupOrder = 255;

/// Instruction sets a kernel build may target.  Scalar is always available;
/// the rest require both compiler support (per-function target attributes)
/// and runtime CPU support.
enum class Isa : std::uint8_t { Scalar = 0, Ssse3 = 1, Avx2 = 2, Neon = 3 };

const char* isa_name(Isa isa);
std::optional<Isa> parse_isa(std::string_view name);

/// The ISA the dispatched kernels currently run on.  First use selects the
/// best supported ISA, unless the LDS_GF_ISA environment variable names a
/// supported override.
Isa active_isa();

/// All ISAs usable on this machine (always contains Isa::Scalar).
std::vector<Isa> supported_isas();

/// Re-point the dispatched kernels at `isa`.  Returns false (and changes
/// nothing) when the ISA is not supported here.  Intended for startup
/// configuration and for the SIMD-vs-scalar equivalence tests; swapping
/// while other threads run kernels is safe (atomic pointer) but the switch
/// point is then unspecified.
bool select_isa(Isa isa);

namespace detail {
struct Tables {
  Elem exp[512];   // exp[i] = g^i, doubled so exp[log a + log b] needs no mod
  std::uint16_t log[256];  // log[0] unused sentinel
  // Split-nibble product tables: nib[a][v] = a * v and nib[a][16 + v] =
  // a * (v << 4) for v in [0, 16).  One 32-byte row per multiplier is
  // exactly the pair of shuffle tables the SIMD kernels need, and the
  // scalar fallback walks the same row (8 KiB total, L1-resident).
  alignas(16) Elem nib[256][32];
  Tables();
};
const Tables& tables();

/// Raw kernel table one ISA implementation provides.  Pointers operate on
/// `len` bytes; callers guarantee a != 0 (and a != 1 where it matters).
struct Kernels {
  Isa isa;
  void (*axpy)(Elem* y, Elem a, const Elem* x, std::size_t len);
  void (*mul_into)(Elem* z, Elem a, const Elem* x, std::size_t len);
  Elem (*dot)(const Elem* a, const Elem* b, std::size_t len);
};

const Kernels* scalar_kernels();
const Kernels* ssse3_kernels();  // null when unsupported (compile or CPU)
const Kernels* avx2_kernels();   // null when unsupported
const Kernels* neon_kernels();   // null when unsupported
const Kernels& active_kernels();
}  // namespace detail

inline Elem add(Elem a, Elem b) { return a ^ b; }
inline Elem sub(Elem a, Elem b) { return a ^ b; }

inline Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + t.log[b]];
}

inline Elem inv(Elem a) {
  LDS_REQUIRE(a != 0, "gf256: inverse of zero");
  const auto& t = detail::tables();
  return t.exp[kGroupOrder - t.log[a]];
}

inline Elem div(Elem a, Elem b) {
  LDS_REQUIRE(b != 0, "gf256: division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + kGroupOrder - t.log[b]];
}

/// a^e with e >= 0 (e is reduced mod 255 for a != 0).
Elem pow(Elem a, std::uint64_t e);

/// y[i] += a * x[i].  The workhorse of matrix multiply and code kernels.
void axpy(std::span<Elem> y, Elem a, std::span<const Elem> x);

/// z[i] = a * x[i] (overwrite, no accumulate).  `z` may be exactly `x`
/// (in-place) but must not partially overlap it.
void mul_into(std::span<Elem> z, Elem a, std::span<const Elem> x);

/// Inner product sum_i a[i] * b[i].
Elem dot(std::span<const Elem> a, std::span<const Elem> b);

/// x[i] *= a.
void scale(std::span<Elem> x, Elem a);

/// The generator element used by the tables (2 for polynomial 0x11D).
Elem generator();

}  // namespace lds::gf
