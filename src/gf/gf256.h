// Arithmetic in GF(2^8), the symbol field of every code in this library.
//
// The paper assumes symbols are drawn from a finite field F_q (Section II-c).
// We fix q = 256 so that one symbol is one byte: values, coded elements and
// helper data are then plain byte strings, and field-size constraints
// (distinct evaluation points for the Vandermonde encoding matrices) allow
// systems with up to n1 + n2 = 255 servers, comfortably covering the paper's
// largest configuration (n1 = n2 = 100, Fig. 6).
//
// Implementation: the classic log/antilog tables over the AES polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), built once at static initialisation.
// Vector kernels (axpy / dot / scale) are the hot path of encode, decode and
// repair; they specialise the per-scalar multiply through the log table.
#pragma once

#include <cstdint>
#include <span>

#include "common/assert.h"

namespace lds::gf {

using Elem = std::uint8_t;

/// Order of the multiplicative group.
inline constexpr int kGroupOrder = 255;

namespace detail {
struct Tables {
  Elem exp[512];   // exp[i] = g^i, doubled so exp[log a + log b] needs no mod
  std::uint16_t log[256];  // log[0] unused sentinel
  Tables();
};
const Tables& tables();
}  // namespace detail

inline Elem add(Elem a, Elem b) { return a ^ b; }
inline Elem sub(Elem a, Elem b) { return a ^ b; }

inline Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + t.log[b]];
}

inline Elem inv(Elem a) {
  LDS_REQUIRE(a != 0, "gf256: inverse of zero");
  const auto& t = detail::tables();
  return t.exp[kGroupOrder - t.log[a]];
}

inline Elem div(Elem a, Elem b) {
  LDS_REQUIRE(b != 0, "gf256: division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + kGroupOrder - t.log[b]];
}

/// a^e with e >= 0 (e is reduced mod 255 for a != 0).
Elem pow(Elem a, std::uint64_t e);

/// y[i] += a * x[i].  The workhorse of matrix multiply and code kernels.
void axpy(std::span<Elem> y, Elem a, std::span<const Elem> x);

/// Inner product sum_i a[i] * b[i].
Elem dot(std::span<const Elem> a, std::span<const Elem> b);

/// x[i] *= a.
void scale(std::span<Elem> x, Elem a);

/// The generator element used by the tables (2 for polynomial 0x11D).
Elem generator();

}  // namespace lds::gf
