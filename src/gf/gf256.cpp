#include "gf/gf256.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lds::gf {

namespace detail {

Tables::Tables() {
  // Generator 2 (the element "x") is primitive for the polynomial
  // x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
  constexpr unsigned kPoly = 0x11D;
  unsigned x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    exp[i] = static_cast<Elem>(x);
    log[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (int i = kGroupOrder; i < 512; ++i) exp[i] = exp[i - kGroupOrder];
  log[0] = 0;  // sentinel, never read on the hot path (guarded by a==0)

  // Split-nibble product tables (see gf256.h).  mul() via log/exp is safe
  // here: exp/log are fully built above.
  for (int a = 0; a < 256; ++a) {
    for (int v = 0; v < 16; ++v) {
      const auto ae = static_cast<Elem>(a);
      nib[a][v] = [&] {
        if (a == 0 || v == 0) return Elem{0};
        return exp[log[ae] + log[v]];
      }();
      const int vh = v << 4;
      nib[a][16 + v] = (a == 0 || vh == 0)
                           ? Elem{0}
                           : exp[log[ae] + log[static_cast<Elem>(vh)]];
    }
  }
}

const Tables& tables() {
  static const Tables t;
  return t;
}

// ---- scalar kernels (portable 4-bit split-table fallback) -------------------

namespace {

void axpy_scalar(Elem* y, Elem a, const Elem* x, std::size_t len) {
  const Elem* t = tables().nib[a];
  for (std::size_t i = 0; i < len; ++i) {
    y[i] ^= static_cast<Elem>(t[x[i] & 0x0f] ^ t[16 + (x[i] >> 4)]);
  }
}

void mul_into_scalar(Elem* z, Elem a, const Elem* x, std::size_t len) {
  const Elem* t = tables().nib[a];
  for (std::size_t i = 0; i < len; ++i) {
    z[i] = static_cast<Elem>(t[x[i] & 0x0f] ^ t[16 + (x[i] >> 4)]);
  }
}

Elem dot_scalar(const Elem* a, const Elem* b, std::size_t len) {
  const auto& t = tables();
  Elem acc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (a[i] != 0 && b[i] != 0) acc ^= t.exp[t.log[a[i]] + t.log[b[i]]];
  }
  return acc;
}

constexpr Kernels kScalarKernels{Isa::Scalar, axpy_scalar, mul_into_scalar,
                                 dot_scalar};

}  // namespace

const Kernels* scalar_kernels() { return &kScalarKernels; }

// ---- dispatch ---------------------------------------------------------------

namespace {

const Kernels* kernels_for(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return scalar_kernels();
    case Isa::Ssse3: return ssse3_kernels();
    case Isa::Avx2: return avx2_kernels();
    case Isa::Neon: return neon_kernels();
  }
  return nullptr;
}

const Kernels* best_kernels() {
  for (Isa isa : {Isa::Avx2, Isa::Neon, Isa::Ssse3}) {
    if (const Kernels* k = kernels_for(isa)) return k;
  }
  return scalar_kernels();
}

std::atomic<const Kernels*> g_kernels{nullptr};
std::once_flag g_kernels_once;

void init_kernels() {
  const Kernels* chosen = best_kernels();
  if (const char* env = std::getenv("LDS_GF_ISA")) {
    if (const auto isa = parse_isa(env)) {
      if (const Kernels* k = kernels_for(*isa)) {
        chosen = k;
      } else {
        std::fprintf(stderr,
                     "lds: LDS_GF_ISA=%s not supported on this CPU; "
                     "using %s\n",
                     env, isa_name(chosen->isa));
      }
    } else {
      std::fprintf(stderr,
                   "lds: LDS_GF_ISA=%s not recognised "
                   "(scalar|ssse3|avx2|neon); using %s\n",
                   env, isa_name(chosen->isa));
    }
  }
  g_kernels.store(chosen, std::memory_order_release);
}

}  // namespace

const Kernels& active_kernels() {
  const Kernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    std::call_once(g_kernels_once, init_kernels);
    k = g_kernels.load(std::memory_order_acquire);
  }
  return *k;
}

}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Ssse3: return "ssse3";
    case Isa::Avx2: return "avx2";
    case Isa::Neon: return "neon";
  }
  return "?";
}

std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "scalar") return Isa::Scalar;
  if (name == "ssse3") return Isa::Ssse3;
  if (name == "avx2") return Isa::Avx2;
  if (name == "neon") return Isa::Neon;
  return std::nullopt;
}

Isa active_isa() { return detail::active_kernels().isa; }

std::vector<Isa> supported_isas() {
  std::vector<Isa> out{Isa::Scalar};
  for (Isa isa : {Isa::Ssse3, Isa::Avx2, Isa::Neon}) {
    if (detail::kernels_for(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

bool select_isa(Isa isa) {
  detail::active_kernels();  // ensure the env/default selection ran first
  const detail::Kernels* k = detail::kernels_for(isa);
  if (k == nullptr) return false;
  detail::g_kernels.store(k, std::memory_order_release);
  return true;
}

Elem pow(Elem a, std::uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  // Reduce the exponent mod the group order FIRST: log[a] * e wraps u64 for
  // e >= 2^56 and would silently return a wrong element.
  const std::uint64_t er = e % static_cast<std::uint64_t>(kGroupOrder);
  const std::uint64_t le = (static_cast<std::uint64_t>(t.log[a]) * er) %
                           static_cast<std::uint64_t>(kGroupOrder);
  return t.exp[le];
}

void axpy(std::span<Elem> y, Elem a, std::span<const Elem> x) {
  LDS_REQUIRE(y.size() == x.size(), "gf256::axpy: size mismatch");
  if (a == 0 || y.empty()) return;
  detail::active_kernels().axpy(y.data(), a, x.data(), y.size());
}

void mul_into(std::span<Elem> z, Elem a, std::span<const Elem> x) {
  LDS_REQUIRE(z.size() == x.size(), "gf256::mul_into: size mismatch");
  if (z.empty()) return;
  if (a == 0) {
    std::memset(z.data(), 0, z.size());
    return;
  }
  if (a == 1) {
    if (z.data() != x.data()) std::memcpy(z.data(), x.data(), z.size());
    return;
  }
  detail::active_kernels().mul_into(z.data(), a, x.data(), z.size());
}

Elem dot(std::span<const Elem> a, std::span<const Elem> b) {
  LDS_REQUIRE(a.size() == b.size(), "gf256::dot: size mismatch");
  if (a.empty()) return 0;
  return detail::active_kernels().dot(a.data(), b.data(), a.size());
}

void scale(std::span<Elem> x, Elem a) {
  if (a == 1 || x.empty()) return;
  if (a == 0) {
    std::memset(x.data(), 0, x.size());
    return;
  }
  detail::active_kernels().mul_into(x.data(), a, x.data(), x.size());
}

Elem generator() { return 2; }

}  // namespace lds::gf
