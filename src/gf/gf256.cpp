#include "gf/gf256.h"

namespace lds::gf {

namespace detail {

Tables::Tables() {
  // Generator 2 (the element "x") is primitive for the polynomial
  // x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
  constexpr unsigned kPoly = 0x11D;
  unsigned x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    exp[i] = static_cast<Elem>(x);
    log[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (int i = kGroupOrder; i < 512; ++i) exp[i] = exp[i - kGroupOrder];
  log[0] = 0;  // sentinel, never read on the hot path (guarded by a==0)
}

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace detail

Elem pow(Elem a, std::uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const std::uint64_t le = (static_cast<std::uint64_t>(t.log[a]) * e) %
                           static_cast<std::uint64_t>(kGroupOrder);
  return t.exp[le];
}

void axpy(std::span<Elem> y, Elem a, std::span<const Elem> x) {
  LDS_REQUIRE(y.size() == x.size(), "gf256::axpy: size mismatch");
  if (a == 0) return;
  const auto& t = detail::tables();
  const std::uint16_t la = t.log[a];
  for (std::size_t i = 0; i < y.size(); ++i) {
    const Elem xi = x[i];
    if (xi != 0) y[i] ^= t.exp[la + t.log[xi]];
  }
}

Elem dot(std::span<const Elem> a, std::span<const Elem> b) {
  LDS_REQUIRE(a.size() == b.size(), "gf256::dot: size mismatch");
  Elem acc = 0;
  const auto& t = detail::tables();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != 0 && b[i] != 0) acc ^= t.exp[t.log[a[i]] + t.log[b[i]]];
  }
  return acc;
}

void scale(std::span<Elem> x, Elem a) {
  if (a == 1) return;
  if (a == 0) {
    for (auto& v : x) v = 0;
    return;
  }
  const auto& t = detail::tables();
  const std::uint16_t la = t.log[a];
  for (auto& v : x) {
    if (v != 0) v = t.exp[la + t.log[v]];
  }
}

Elem generator() { return 2; }

}  // namespace lds::gf
