// Vandermonde matrix builders.
//
// Both the product-matrix codes and the Reed-Solomon baseline use
// Vandermonde encoding matrices: with distinct nonzero evaluation points
// x_1..x_n, any m rows of the n x m matrix [x_i^j] are linearly independent,
// which is exactly the "any k of Phi / any d of Psi invertible" requirement
// of Rashmi-Shah-Kumar (the paper's reference [25]).
#pragma once

#include <vector>

#include "matrix/matrix.h"

namespace lds::math {

/// The first n distinct nonzero evaluation points g^0, g^1, ... (g = field
/// generator).  Requires n <= 255.
std::vector<gf::Elem> default_eval_points(std::size_t n);

/// n x m Vandermonde matrix with row i = (1, x_i, x_i^2, ..., x_i^{m-1}).
Matrix vandermonde(std::span<const gf::Elem> xs, std::size_t m);

/// Convenience: vandermonde(default_eval_points(n), m).
Matrix vandermonde(std::size_t n, std::size_t m);

}  // namespace lds::math
