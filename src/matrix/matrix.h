// Dense matrices over GF(2^8).
//
// Everything the codes module needs: multiplication, transpose,
// Gauss-Jordan inversion, rank, linear solving, row selection.  Sizes are
// small (at most a few hundred rows) so the simple O(n^3) algorithms are
// appropriate and easy to audit against the product-matrix framework of
// Rashmi-Shah-Kumar (the paper's reference [25]).
#pragma once

#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "gf/gf256.h"

namespace lds::math {

class Matrix {
 public:
  using Elem = gf::Elem;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  /// Row-major construction from a braced list, e.g. {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<int>> init);

  static Matrix identity(std::size_t n);
  static Matrix zero(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Elem& at(std::size_t r, std::size_t c) {
    LDS_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  Elem at(std::size_t r, std::size_t c) const {
    LDS_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }

  std::span<Elem> row(std::size_t r) {
    LDS_REQUIRE(r < rows_, "Matrix::row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const Elem> row(std::size_t r) const {
    LDS_REQUIRE(r < rows_, "Matrix::row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// this * other.
  Matrix mul(const Matrix& other) const;

  /// this * v (v is a column vector of length cols()).
  std::vector<Elem> mul_vec(std::span<const Elem> v) const;

  /// v^T * this (v has length rows(); result has length cols()).
  std::vector<Elem> lmul_vec(std::span<const Elem> v) const;

  Matrix transpose() const;

  Matrix add(const Matrix& other) const;

  /// Inverse via Gauss-Jordan; nullopt if singular.  Requires square.
  std::optional<Matrix> inverse() const;

  std::size_t rank() const;

  bool is_symmetric() const;

  /// Solve this * x = b for x; nullopt if this is singular.  Requires square.
  std::optional<std::vector<Elem>> solve(std::span<const Elem> b) const;

  /// Solve this * X = B column-wise; nullopt if singular.
  std::optional<Matrix> solve_matrix(const Matrix& b) const;

  /// New matrix consisting of the given rows of this one, in order.
  Matrix select_rows(std::span<const int> rows) const;

  /// New matrix consisting of columns [c0, c0+len).
  Matrix slice_cols(std::size_t c0, std::size_t len) const;

  /// Paste `m` into this matrix with its (0,0) at (r0, c0).
  void paste(const Matrix& m, std::size_t r0, std::size_t c0);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Elem> data_;
};

}  // namespace lds::math
