#include "matrix/matrix.h"

namespace lds::math {

Matrix::Matrix(std::initializer_list<std::initializer_list<int>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.assign(rows_ * cols_, 0);
  std::size_t r = 0;
  for (const auto& row : init) {
    LDS_REQUIRE(row.size() == cols_, "Matrix: ragged initializer");
    std::size_t c = 0;
    for (int v : row) {
      LDS_REQUIRE(v >= 0 && v <= 255, "Matrix: element out of GF(256)");
      data_[r * cols_ + c] = static_cast<Elem>(v);
      ++c;
    }
    ++r;
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::mul(const Matrix& other) const {
  LDS_REQUIRE(cols_ == other.rows_, "Matrix::mul: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    auto out_row = out.row(i);
    // First nonzero term writes through mul_into (no read of the zeroed
    // destination); the rest accumulate with axpy.
    bool first = true;
    for (std::size_t j = 0; j < cols_; ++j) {
      const Elem a = at(i, j);
      if (a == 0) continue;
      if (first) {
        gf::mul_into(out_row, a, other.row(j));
        first = false;
      } else {
        gf::axpy(out_row, a, other.row(j));
      }
    }
  }
  return out;
}

std::vector<Matrix::Elem> Matrix::mul_vec(std::span<const Elem> v) const {
  LDS_REQUIRE(v.size() == cols_, "Matrix::mul_vec: dimension mismatch");
  std::vector<Elem> out(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = gf::dot(row(i), v);
  return out;
}

std::vector<Matrix::Elem> Matrix::lmul_vec(std::span<const Elem> v) const {
  LDS_REQUIRE(v.size() == rows_, "Matrix::lmul_vec: dimension mismatch");
  std::vector<Elem> out(cols_, 0);
  bool first = true;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (v[i] == 0) continue;
    if (first) {
      gf::mul_into(out, v[i], row(i));
      first = false;
    } else {
      gf::axpy(out, v[i], row(i));
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  LDS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
              "Matrix::add: dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] ^= other.data_[i];
  return out;
}

namespace {

// Gauss-Jordan elimination of [a | b] in place; returns false if a singular.
// On success a becomes the identity and b becomes a^{-1} * b0.
bool gauss_jordan(Matrix& a, Matrix& b) {
  const std::size_t n = a.rows();
  LDS_CHECK(a.cols() == n && b.rows() == n, "gauss_jordan: shape");
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(a.at(pivot, j), a.at(col, j));
      for (std::size_t j = 0; j < b.cols(); ++j)
        std::swap(b.at(pivot, j), b.at(col, j));
    }
    // Normalise pivot row.
    const gf::Elem piv_inv = gf::inv(a.at(col, col));
    gf::scale(a.row(col), piv_inv);
    gf::scale(b.row(col), piv_inv);
    // Eliminate all other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const gf::Elem factor = a.at(r, col);
      if (factor != 0) {
        gf::axpy(a.row(r), factor, a.row(col));
        gf::axpy(b.row(r), factor, b.row(col));
      }
    }
  }
  return true;
}

}  // namespace

std::optional<Matrix> Matrix::inverse() const {
  LDS_REQUIRE(rows_ == cols_, "Matrix::inverse: not square");
  Matrix a = *this;
  Matrix b = Matrix::identity(rows_);
  if (!gauss_jordan(a, b)) return std::nullopt;
  return b;
}

std::size_t Matrix::rank() const {
  Matrix a = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && a.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t j = 0; j < cols_; ++j)
        std::swap(a.at(pivot, j), a.at(rank, j));
    }
    const gf::Elem piv_inv = gf::inv(a.at(rank, col));
    gf::scale(a.row(rank), piv_inv);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const gf::Elem factor = a.at(r, col);
      if (factor != 0) gf::axpy(a.row(r), factor, a.row(rank));
    }
    ++rank;
  }
  return rank;
}

bool Matrix::is_symmetric() const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (at(i, j) != at(j, i)) return false;
  return true;
}

std::optional<std::vector<Matrix::Elem>> Matrix::solve(
    std::span<const Elem> bvec) const {
  LDS_REQUIRE(rows_ == cols_, "Matrix::solve: not square");
  LDS_REQUIRE(bvec.size() == rows_, "Matrix::solve: rhs size mismatch");
  Matrix a = *this;
  Matrix b(rows_, 1);
  for (std::size_t i = 0; i < rows_; ++i) b.at(i, 0) = bvec[i];
  if (!gauss_jordan(a, b)) return std::nullopt;
  std::vector<Elem> x(rows_);
  for (std::size_t i = 0; i < rows_; ++i) x[i] = b.at(i, 0);
  return x;
}

std::optional<Matrix> Matrix::solve_matrix(const Matrix& bmat) const {
  LDS_REQUIRE(rows_ == cols_, "Matrix::solve_matrix: not square");
  LDS_REQUIRE(bmat.rows() == rows_, "Matrix::solve_matrix: rhs rows mismatch");
  Matrix a = *this;
  Matrix b = bmat;
  if (!gauss_jordan(a, b)) return std::nullopt;
  return b;
}

Matrix Matrix::select_rows(std::span<const int> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    LDS_REQUIRE(rows[i] >= 0 && static_cast<std::size_t>(rows[i]) < rows_,
                "Matrix::select_rows: index out of range");
    auto src = row(static_cast<std::size_t>(rows[i]));
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::slice_cols(std::size_t c0, std::size_t len) const {
  LDS_REQUIRE(c0 + len <= cols_, "Matrix::slice_cols: out of range");
  Matrix out(rows_, len);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < len; ++j) out.at(i, j) = at(i, c0 + j);
  return out;
}

void Matrix::paste(const Matrix& m, std::size_t r0, std::size_t c0) {
  LDS_REQUIRE(r0 + m.rows() <= rows_ && c0 + m.cols() <= cols_,
              "Matrix::paste: out of range");
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) at(r0 + i, c0 + j) = m.at(i, j);
}

}  // namespace lds::math
