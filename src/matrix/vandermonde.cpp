#include "matrix/vandermonde.h"

namespace lds::math {

std::vector<gf::Elem> default_eval_points(std::size_t n) {
  LDS_REQUIRE(n <= 255,
              "GF(256) supports at most 255 distinct nonzero eval points");
  std::vector<gf::Elem> xs(n);
  gf::Elem x = 1;
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = x;
    x = gf::mul(x, gf::generator());
  }
  return xs;
}

Matrix vandermonde(std::span<const gf::Elem> xs, std::size_t m) {
  Matrix out(xs.size(), m);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    gf::Elem p = 1;
    for (std::size_t j = 0; j < m; ++j) {
      out.at(i, j) = p;
      p = gf::mul(p, xs[i]);
    }
  }
  return out;
}

Matrix vandermonde(std::size_t n, std::size_t m) {
  const auto xs = default_eval_points(n);
  return vandermonde(xs, m);
}

}  // namespace lds::math
