#include "store/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/assert.h"
#include "common/format.h"
#include "store/async_util.h"
#include "store/remote.h"

namespace lds::store {

namespace {

std::string deadline_msg(double deadline) {
  return "deadline " + fmt_double(deadline) + " expired";
}

}  // namespace

// ---- lifecycle / remote mode ------------------------------------------------

Client::Client(StoreService& service, CacheOptions cache) : svc_(&service) {
  if (cache.enabled && cache.capacity > 0) {
    cache_ = std::make_unique<ReadCache>(cache);
  }
}

Client::Client(std::vector<std::unique_ptr<RemoteSession>> remotes,
               CacheOptions cache)
    : remotes_(std::move(remotes)) {
  if (cache.enabled && cache.capacity > 0) {
    cache_ = std::make_unique<ReadCache>(cache);
  }
}

Client::~Client() {
  // Close before members die: cancelled async completions push into cq_,
  // which outlives the sessions only while `this` is still whole.
  close();
}

void Client::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // Dropping the pool fails every in-flight remote op with Unavailable;
  // their completions drain through cq_ / their callbacks as usual.
  for (auto& s : remotes_) s->close();
}

std::unique_ptr<Client> Client::connect(const std::string& host,
                                        std::uint16_t port, Status* status) {
  return connect(host, port, status, ConnectOptions());
}

std::unique_ptr<Client> Client::connect(const std::string& host,
                                        std::uint16_t port, Status* status,
                                        ConnectOptions copts) {
  if (copts.connections == 0) copts.connections = 1;
  std::vector<std::unique_ptr<RemoteSession>> sessions;
  sessions.reserve(copts.connections);
  for (std::size_t i = 0; i < copts.connections; ++i) {
    auto s = RemoteSession::open(host, port, status, copts.transport);
    if (s == nullptr) return nullptr;  // *status carries the reason
    sessions.push_back(std::move(s));
  }
  return std::unique_ptr<Client>(new Client(std::move(sessions), copts.cache));
}

RemoteSession& Client::pick() {
  return *remotes_[rr_.fetch_add(1, std::memory_order_relaxed) %
                   remotes_.size()];
}

PutResult Client::remote_put_op(
    OpOptions opts, const std::function<PutResult(double)>& attempt) {
  // The engine-time deadline/retry driver, transliterated to wall-clock
  // seconds: one budget across all attempts, backoff slept between them.
  const auto start = std::chrono::steady_clock::now();
  const auto remaining = [&]() -> double {
    const double used =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return opts.deadline - used;
  };
  double backoff = opts.retry.backoff;
  for (std::size_t n = 1;; ++n) {
    double budget = 0;  // 0 = unbounded
    if (opts.deadline > 0) {
      budget = remaining();
      if (budget <= 0) {
        return PutResult::failure(
            Status::DeadlineExceeded(deadline_msg(opts.deadline)));
      }
    }
    PutResult r = attempt(budget);
    if (r.ok || !opts.retry.retriable(r.status) ||
        n >= opts.retry.max_attempts) {
      return r;
    }
    // Never sleep past the deadline: the engine-time driver's timer fires
    // exactly at expiry, so the wall-clock driver caps the backoff at the
    // remaining budget (the loop top then reports DeadlineExceeded on
    // time, not a backoff late).
    double sleep_s = backoff;
    if (opts.deadline > 0) {
      const double rem = remaining();
      if (rem <= 0) {
        return PutResult::failure(
            Status::DeadlineExceeded(deadline_msg(opts.deadline)));
      }
      sleep_s = std::min(backoff, rem);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    backoff *= opts.retry.backoff_multiplier;
  }
}

/// One logical put (plain or conditional).  Everything that touches the op
/// after submission — deadline timer, retries, completion — runs on the
/// key's shard lane, so `settled` is the only cross-lane rendezvous (the
/// caller of a sync wrapper reads the result after its own synchronization).
struct Client::PutOp {
  std::atomic<bool> settled{false};
  PutCallback cb;

  /// First settle wins: returns true when this caller should complete.
  bool settle() { return !settled.exchange(true, std::memory_order_acq_rel); }
};

struct Client::GetOp {
  std::atomic<bool> settled{false};
  GetCallback cb;

  bool settle() { return !settled.exchange(true, std::memory_order_acq_rel); }
};

// ---- async remote attempt chain ---------------------------------------------

/// One async remote operation across its retries.  The request body is kept
/// for re-sending (Value copies are refcounted handles, not payload copies);
/// `done` fires exactly once with the final outcome.  Retries are scheduled
/// on the session's timer thread, so no caller thread ever sleeps.
struct Client::AsyncOp {
  RemoteSession* sess = nullptr;
  RemoteBody req;
  OpOptions opts;
  std::size_t attempt = 1;
  double backoff = 0;
  std::chrono::steady_clock::time_point start;
  std::function<void(Status, RemoteReply)> done;

  double remaining() const {
    const double used = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return opts.deadline - used;
  }
};

void Client::remote_attempt(std::shared_ptr<AsyncOp> op) {
  double budget = 0;  // 0 = unbounded
  if (op->opts.deadline > 0) {
    budget = op->remaining();
    if (budget <= 0) {
      op->done(Status::DeadlineExceeded(deadline_msg(op->opts.deadline)),
               RemoteReply{});
      return;
    }
  }
  op->sess->async_call(
      RemoteBody(op->req), budget, [this, op](Status st, RemoteReply r) {
        const bool retriable =
            st.ok() &&
            op->opts.retry.retriable(Status::FromCode(r.code, r.message)) &&
            op->attempt < op->opts.retry.max_attempts;
        if (!retriable) {
          op->done(std::move(st), std::move(r));
          return;
        }
        ++op->attempt;
        double delay = op->backoff;
        op->backoff *= op->opts.retry.backoff_multiplier;
        if (op->opts.deadline > 0) {
          const double rem = op->remaining();
          if (rem <= 0) {
            op->done(
                Status::DeadlineExceeded(deadline_msg(op->opts.deadline)),
                RemoteReply{});
            return;
          }
          // Never sleep past the deadline; the attempt after the capped
          // backoff reports DeadlineExceeded on time.
          delay = std::min(delay, rem);
        }
        if (!op->sess->after(delay, [this, op] { remote_attempt(op); })) {
          op->done(Status::Unavailable("session closed"), RemoteReply{});
        }
      });
}

// ---- async submission cores --------------------------------------------------

void Client::submit_put(const std::string& key, Value value, PutCallback cb,
                        OpOptions opts) {
  if (cache_ != nullptr) cb = wrap_put_cb(key, value, std::move(cb));
  if (closed()) {
    cb(PutResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    cb(PutResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  if (remote()) {
    auto op = std::make_shared<AsyncOp>();
    op->sess = &pick();
    op->req = RemotePut{key, std::move(value)};
    op->opts = opts;
    op->backoff = opts.retry.backoff;
    op->start = std::chrono::steady_clock::now();
    op->done = [cb = std::move(cb)](Status st, RemoteReply r) {
      cb(st.ok() ? to_put_result(r) : PutResult::failure(std::move(st)));
    };
    remote_attempt(std::move(op));
    return;
  }
  run_put_op(key, std::move(value), opts, std::move(cb),
             [this](const std::string& k, Value v,
                    StoreService::PutCallback pcb) {
               svc_->put(k, std::move(v), std::move(pcb));
             });
}

void Client::submit_put_if(const std::string& key, Value value,
                           Version expected, PutCallback cb, OpOptions opts) {
  if (cache_ != nullptr) cb = wrap_put_cb(key, value, std::move(cb));
  if (closed()) {
    cb(PutResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    cb(PutResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  if (remote()) {
    auto op = std::make_shared<AsyncOp>();
    op->sess = &pick();
    op->req = RemotePutIf{key, std::move(value), expected};
    op->opts = opts;
    op->backoff = opts.retry.backoff;
    op->start = std::chrono::steady_clock::now();
    op->done = [cb = std::move(cb)](Status st, RemoteReply r) {
      cb(st.ok() ? to_put_result(r) : PutResult::failure(std::move(st)));
    };
    remote_attempt(std::move(op));
    return;
  }
  run_put_op(key, std::move(value), opts, std::move(cb),
             [this, expected](const std::string& k, Value v,
                              StoreService::PutCallback pcb) {
               svc_->put_if(k, std::move(v), expected, std::move(pcb));
             });
}

void Client::submit_get(const std::string& key, GetCallback cb,
                        OpOptions opts) {
  if (closed()) {
    cb(GetResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    cb(GetResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  if (cache_applies(opts.read_mode)) {
    cached_get(key, std::move(cb), opts);
    return;
  }
  raw_get(key, std::move(cb), opts);
}

// ---- completion-queue API ----------------------------------------------------

std::uint64_t Client::async_put(const std::string& key, Value value,
                                PutCallback cb, OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::async_put: null callback");
  const std::uint64_t h = next_handle_.fetch_add(1, std::memory_order_relaxed);
  submit_put(key, std::move(value), std::move(cb), opts);
  return h;
}

std::uint64_t Client::async_get(const std::string& key, GetCallback cb,
                                OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::async_get: null callback");
  const std::uint64_t h = next_handle_.fetch_add(1, std::memory_order_relaxed);
  submit_get(key, std::move(cb), opts);
  return h;
}

std::uint64_t Client::async_put_if(const std::string& key, Value value,
                                   Version expected, PutCallback cb,
                                   OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::async_put_if: null callback");
  const std::uint64_t h = next_handle_.fetch_add(1, std::memory_order_relaxed);
  submit_put_if(key, std::move(value), expected, std::move(cb), opts);
  return h;
}

std::uint64_t Client::async_put(const std::string& key, Value value,
                                OpOptions opts) {
  const std::uint64_t h = next_handle_.fetch_add(1, std::memory_order_relaxed);
  cq_.start();
  submit_put(key, std::move(value),
             [this, h, key](const PutResult& r) {
               Completion c;
               c.handle = h;
               c.kind = Completion::Kind::Put;
               c.key = key;
               c.put = r;
               cq_.push(std::move(c));
             },
             opts);
  return h;
}

std::uint64_t Client::async_get(const std::string& key, OpOptions opts) {
  const std::uint64_t h = next_handle_.fetch_add(1, std::memory_order_relaxed);
  cq_.start();
  submit_get(key,
             [this, h, key](const GetResult& r) {
               Completion c;
               c.handle = h;
               c.kind = Completion::Kind::Get;
               c.key = key;
               c.get = r;
               cq_.push(std::move(c));
             },
             opts);
  return h;
}

std::uint64_t Client::async_put_if(const std::string& key, Value value,
                                   Version expected, OpOptions opts) {
  const std::uint64_t h = next_handle_.fetch_add(1, std::memory_order_relaxed);
  cq_.start();
  submit_put_if(key, std::move(value), expected,
                [this, h, key](const PutResult& r) {
                  Completion c;
                  c.handle = h;
                  c.kind = Completion::Kind::PutIf;
                  c.key = key;
                  c.put = r;
                  cq_.push(std::move(c));
                },
                opts);
  return h;
}

// ---- puts (plain and conditional share one deadline/retry driver) -----------

void Client::put(const std::string& key, Value value, PutCallback cb,
                 OpOptions opts) {
  if (cache_ != nullptr) cb = wrap_put_cb(key, value, std::move(cb));
  if (remote()) {
    PutResult r;
    if (closed()) {
      r = PutResult::failure(Status::Unavailable("client closed"));
    } else if (key.empty()) {
      r = PutResult::failure(Status::InvalidArgument("empty key"));
    } else {
      r = remote_put_op(opts, [&](double deadline_s) {
        return pick().put(key, value, deadline_s);
      });
    }
    if (cb) cb(r);
    return;
  }
  run_put_op(key, std::move(value), opts, std::move(cb),
             [this](const std::string& k, Value v,
                    StoreService::PutCallback pcb) {
               svc_->put(k, std::move(v), std::move(pcb));
             });
}

void Client::put_if_version(const std::string& key, Value value,
                            Version expected, PutCallback cb, OpOptions opts) {
  if (cache_ != nullptr) cb = wrap_put_cb(key, value, std::move(cb));
  if (remote()) {
    PutResult r;
    if (closed()) {
      r = PutResult::failure(Status::Unavailable("client closed"));
    } else if (key.empty()) {
      r = PutResult::failure(Status::InvalidArgument("empty key"));
    } else {
      r = remote_put_op(opts, [&](double deadline_s) {
        return pick().put_if(key, value, expected, deadline_s);
      });
    }
    if (cb) cb(r);
    return;
  }
  run_put_op(key, std::move(value), opts, std::move(cb),
             [this, expected](const std::string& k, Value v,
                              StoreService::PutCallback pcb) {
               svc_->put_if(k, std::move(v), expected, std::move(pcb));
             });
}

void Client::run_put_op(const std::string& key, Value value, OpOptions opts,
                        PutCallback cb, PutSubmit submit) {
  if (closed()) {
    if (cb) cb(PutResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    if (cb) cb(PutResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  auto op = std::make_shared<PutOp>();
  op->cb = std::move(cb);
  const std::size_t lane = lane_of_key(key);
  // Hop to the shard's lane first: the deadline timer must be armed with
  // after_here on the lane whose clock the operation runs against.
  svc_->engine().post(lane, [this, key, value = std::move(value), opts, op,
                             submit = std::make_shared<PutSubmit>(
                                 std::move(submit))]() mutable {
    if (opts.deadline > 0) {
      svc_->engine().after_here(opts.deadline, [op, opts] {
        if (!op->settle()) return;
        if (op->cb) {
          op->cb(PutResult::failure(
              Status::DeadlineExceeded(deadline_msg(opts.deadline))));
        }
      });
    }
    attempt_put_op(key, std::move(value), opts, std::move(op), 1,
                   opts.retry.backoff, std::move(submit));
  });
}

void Client::attempt_put_op(const std::string& key, Value value,
                            OpOptions opts, std::shared_ptr<PutOp> op,
                            std::size_t attempt, double backoff,
                            std::shared_ptr<PutSubmit> submit) {
  // The value is a shared handle, so keeping a copy for a potential retry
  // costs a refcount, not a payload copy.
  (*submit)(key, value, [this, key, value, opts, op, attempt, backoff,
                         submit](const PutResult& r) mutable {
    if (op->settled.load(std::memory_order_acquire)) return;  // deadline won
    if (!r.ok && opts.retry.retriable(r.status) &&
        attempt < opts.retry.max_attempts) {
      svc_->engine().after_here(backoff, [this, key, value = std::move(value),
                                          opts, op = std::move(op), attempt,
                                          backoff,
                                          submit = std::move(submit)]() mutable {
        if (op->settled.load(std::memory_order_acquire)) return;
        attempt_put_op(key, std::move(value), opts, std::move(op), attempt + 1,
                       backoff * opts.retry.backoff_multiplier,
                       std::move(submit));
      });
      return;
    }
    if (!op->settle()) return;
    if (op->cb) op->cb(r);
  });
}

// ---- gets -------------------------------------------------------------------

void Client::get(const std::string& key, GetCallback cb, OpOptions opts) {
  if (closed()) {
    if (cb) cb(GetResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    if (cb) cb(GetResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  if (remote()) {
    if (cache_applies(opts.read_mode)) {
      // Preserve the documented blocking contract around the async cache
      // path (TTL hits complete inline; validation/fill rounds complete on
      // transport threads).
      GetResult out;
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      cached_get(
          key,
          [&](const GetResult& r) {
            {
              std::lock_guard<std::mutex> lk(mu);
              out = r;
              done = true;
            }
            cv.notify_one();
          },
          opts);
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return done; });
      lk.unlock();
      if (cb) cb(out);
      return;
    }
    // Gets have no retriable failure; one blocking RPC under the deadline.
    const GetResult r = pick().get(key, opts.read_mode, opts.deadline);
    if (cb) cb(r);
    return;
  }
  if (cache_applies(opts.read_mode)) {
    cached_get(key, std::move(cb), opts);
    return;
  }
  local_get(key, std::move(cb), opts);
}

void Client::local_get(const std::string& key, GetCallback cb,
                       OpOptions opts) {
  auto op = std::make_shared<GetOp>();
  op->cb = std::move(cb);
  const std::size_t lane = lane_of_key(key);
  svc_->engine().post(lane, [this, key, opts, op]() mutable {
    if (opts.deadline > 0) {
      svc_->engine().after_here(opts.deadline, [op, opts] {
        if (!op->settle()) return;
        if (op->cb) {
          op->cb(GetResult::failure(
              Status::DeadlineExceeded(deadline_msg(opts.deadline))));
        }
      });
    }
    svc_->get(
        key,
        [op](const GetResult& r) {
          if (!op->settle()) return;  // deadline won; drop the late result
          if (op->cb) op->cb(r);
        },
        opts.read_mode);
  });
}

// ---- read cache -------------------------------------------------------------

void Client::raw_get(const std::string& key, GetCallback cb, OpOptions opts) {
  if (remote()) {
    // Gets have no retriable failure: one pipelined RPC under the deadline.
    pick().async_call(RemoteGet{key, opts.read_mode}, opts.deadline,
                      [cb = std::move(cb)](Status st, RemoteReply r) {
                        if (!cb) return;
                        cb(st.ok() ? to_get_result(r)
                                   : GetResult::failure(std::move(st)));
                      });
    return;
  }
  local_get(key, std::move(cb), opts);
}

double Client::cache_now() const {
  if (svc_ != nullptr && !svc_->parallel()) return svc_->sim().now();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Client::cached_get(const std::string& key, GetCallback cb,
                        OpOptions opts) {
  auto entry = cache_->lookup(key);
  if (!entry.has_value()) {
    client_metrics_.counter("cache_misses").inc();
    fill_get(key, std::move(cb), opts);
    return;
  }
  if (cache_->options().ttl > 0 && cache_now() < entry->fresh_until) {
    // Opt-in bounded staleness: serve without any round until the ttl.
    client_metrics_.counter("cache_hits").inc();
    client_metrics_.counter("cache_ttl_hits").inc();
    client_metrics_.counter("wire_value_bytes_saved").inc(entry->value.size());
    if (cb) cb(GetResult::success(entry->version.tag(),
                                  std::move(entry->value)));
    return;
  }
  // Validation round: a tag-only read through the normal get path.  The
  // returned committed tag is >= any operation that completed before the
  // round started, so tag == cached version certifies currency.
  client_metrics_.counter("cache_validation_rounds").inc();
  OpOptions vopts = opts;
  vopts.read_mode = ReadMode::TagOnly;
  raw_get(
      key,
      [this, key, opts, cb = std::move(cb),
       cached = std::move(*entry)](const GetResult& r) mutable {
        if (r.ok) {
          if (r.version == cached.version) {
            client_metrics_.counter("cache_hits").inc();
            client_metrics_.counter("wire_value_bytes_saved")
                .inc(cached.value.size());
            cache_->revalidate(key, cached.version, cache_now());
            if (cb) {
              cb(GetResult::success(cached.version.tag(),
                                    std::move(cached.value)));
            }
            return;
          }
          // Stale entry: fall through to a full get, which refreshes it.
          client_metrics_.counter("cache_misses").inc();
          client_metrics_.counter("cache_stale_validations").inc();
          fill_get(key, std::move(cb), opts);
          return;
        }
        if (r.status.is(StatusCode::kInvalidArgument)) {
          // The shard cannot serve tag-only rounds (non-LDS protocol):
          // stop consulting the cache for good and serve the plain read.
          if (cache_usable_.exchange(false, std::memory_order_acq_rel)) {
            client_metrics_.counter("cache_disabled").inc();
          }
          raw_get(key, std::move(cb), opts);
          return;
        }
        if (r.status.is(StatusCode::kNotFound) && cache_->invalidate(key)) {
          client_metrics_.counter("cache_invalidations").inc();
        }
        if (cb) cb(r);  // NotFound / DeadlineExceeded / ... propagate
      },
      vopts);
}

void Client::fill_get(const std::string& key, GetCallback cb, OpOptions opts) {
  raw_get(key,
          [this, key, cb = std::move(cb)](const GetResult& r) {
            if (r.ok) cache_->update(key, r.version, r.value, cache_now());
            if (cb) cb(r);
          },
          opts);
}

Client::PutCallback Client::wrap_put_cb(const std::string& key,
                                        const Value& value, PutCallback cb) {
  return [this, key, value, cb = std::move(cb)](const PutResult& r) {
    if (r.ok) {
      if (r.coalesced) {
        // Durable, but a newer same-key put of the same batch window won:
        // a read returns the survivor's value, not ours.  Drop the entry.
        if (cache_->invalidate(key)) {
          client_metrics_.counter("cache_invalidations").inc();
        }
      } else {
        cache_->update(key, r.version, value, cache_now());
      }
    } else if (r.status.is(StatusCode::kAborted)) {
      // A conditional put lost against observed version r.version; the
      // entry is known stale but the winner's value is unknown.
      if (cache_->invalidate(key)) {
        client_metrics_.counter("cache_invalidations").inc();
      }
    }
    if (cb) cb(r);
  };
}

// ---- multi-key scatter-gather -----------------------------------------------

void Client::multi_get(std::vector<std::string> keys, MultiGetCallback cb,
                       OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::multi_get: null callback");
  if (keys.empty()) {  // fire exactly once — an empty gather never completes
    cb({});
    return;
  }
  if (remote()) {
    // Concurrent fan-out over the connection pool: every sub-get is
    // pipelined before the first reply is awaited, so the batch costs one
    // round-trip, not keys.size() of them.  The callback still fires
    // inline on this thread (the documented remote contract).
    const std::size_t n = keys.size();
    std::vector<GetResult> results(n);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t left = n;
    for (std::size_t i = 0; i < n; ++i) {
      submit_get(
          keys[i],
          [&, i](const GetResult& r) {
            std::lock_guard<std::mutex> lk(mu);
            results[i] = r;
            if (--left == 0) cv.notify_one();
          },
          opts);
    }
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return left == 0; });
    lk.unlock();
    cb(std::move(results));
    return;
  }
  auto gather = detail::make_gather<GetResult>(keys.size(), std::move(cb));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    get(keys[i],
        [gather, i](const GetResult& r) {
          detail::gather_finish(gather, i, r);
        },
        opts);
  }
}

void Client::multi_put(std::vector<KeyValue> entries, MultiPutCallback cb,
                       OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::multi_put: null callback");
  if (entries.empty()) {
    cb({});
    return;
  }
  if (remote()) {
    const std::size_t n = entries.size();
    std::vector<PutResult> results(n);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t left = n;
    for (std::size_t i = 0; i < n; ++i) {
      submit_put(
          entries[i].key, std::move(entries[i].value),
          [&, i](const PutResult& r) {
            std::lock_guard<std::mutex> lk(mu);
            results[i] = r;
            if (--left == 0) cv.notify_one();
          },
          opts);
    }
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return left == 0; });
    lk.unlock();
    cb(std::move(results));
    return;
  }
  auto gather = detail::make_gather<PutResult>(entries.size(), std::move(cb));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    put(entries[i].key, std::move(entries[i].value),
        [gather, i](const PutResult& r) {
          detail::gather_finish(gather, i, r);
        },
        opts);
  }
}

// ---- sync wrappers ----------------------------------------------------------

using detail::run_op_sync;

Result<Version> Client::put_sync(const std::string& key, Value value,
                                 OpOptions opts) {
  if (remote()) {
    // Remote async ops block inline, so the callback has fired by return.
    PutResult rr;
    put(key, std::move(value), [&rr](const PutResult& pr) { rr = pr; }, opts);
    if (!rr.ok) return rr.status;
    return rr.version;
  }
  const PutResult r = run_op_sync<PutResult>(
      svc_->engine(), svc_->parallel(),
      "Client::put_sync: simulation drained before completion",
      [&](auto done) {
        put(key, std::move(value),
            [done = std::move(done)](const PutResult& pr) { done(pr); },
            opts);
      });
  if (!r.ok) return r.status;
  return r.version;
}

Result<VersionedValue> Client::get_sync(const std::string& key,
                                        OpOptions opts) {
  if (remote()) {
    GetResult rr;
    get(key, [&rr](const GetResult& gr) { rr = gr; }, opts);
    if (!rr.ok) return rr.status;
    return VersionedValue{rr.version, rr.value};
  }
  const GetResult r = run_op_sync<GetResult>(
      svc_->engine(), svc_->parallel(),
      "Client::get_sync: simulation drained before completion",
      [&](auto done) {
        get(key, [done = std::move(done)](const GetResult& gr) { done(gr); },
            opts);
      });
  if (!r.ok) return r.status;
  return VersionedValue{r.version, r.value};
}

Result<Version> Client::put_if_version_sync(const std::string& key,
                                            Value value, Version expected,
                                            OpOptions opts) {
  if (remote()) {
    PutResult rr;
    put_if_version(key, std::move(value), expected,
                   [&rr](const PutResult& pr) { rr = pr; }, opts);
    if (!rr.ok) return rr.status;
    return rr.version;
  }
  const PutResult r = run_op_sync<PutResult>(
      svc_->engine(), svc_->parallel(),
      "Client::put_if_version_sync: simulation drained before completion",
      [&](auto done) {
        put_if_version(
            key, std::move(value), expected,
            [done = std::move(done)](const PutResult& pr) { done(pr); }, opts);
      });
  if (!r.ok) return r.status;
  return r.version;
}

std::vector<GetResult> Client::multi_get_sync(std::vector<std::string> keys,
                                              OpOptions opts) {
  if (remote()) {
    std::vector<GetResult> rr;
    multi_get(std::move(keys), [&rr](std::vector<GetResult> v) {
      rr = std::move(v);
    }, opts);
    return rr;
  }
  return run_op_sync<std::vector<GetResult>>(
      svc_->engine(), svc_->parallel(),
      "Client::multi_get_sync: simulation drained before completion",
      [&](auto done) { multi_get(std::move(keys), std::move(done), opts); });
}

std::vector<PutResult> Client::multi_put_sync(std::vector<KeyValue> entries,
                                              OpOptions opts) {
  if (remote()) {
    std::vector<PutResult> rr;
    multi_put(std::move(entries), [&rr](std::vector<PutResult> v) {
      rr = std::move(v);
    }, opts);
    return rr;
  }
  return run_op_sync<std::vector<PutResult>>(
      svc_->engine(), svc_->parallel(),
      "Client::multi_put_sync: simulation drained before completion",
      [&](auto done) { multi_put(std::move(entries), std::move(done), opts); });
}

}  // namespace lds::store
