#include "store/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/assert.h"
#include "common/format.h"
#include "store/async_util.h"
#include "store/remote.h"

namespace lds::store {

namespace {

std::string deadline_msg(double deadline) {
  return "deadline " + fmt_double(deadline) + " expired";
}

}  // namespace

// ---- lifecycle / remote mode ------------------------------------------------

Client::Client(StoreService& service) : svc_(&service) {}

Client::Client(std::unique_ptr<RemoteSession> remote)
    : remote_(std::move(remote)) {}

Client::~Client() = default;

std::unique_ptr<Client> Client::connect(const std::string& host,
                                        std::uint16_t port, Status* status) {
  auto session = RemoteSession::open(host, port, status);
  if (session == nullptr) return nullptr;
  return std::unique_ptr<Client>(new Client(std::move(session)));
}

PutResult Client::remote_put_op(
    OpOptions opts, const std::function<PutResult(double)>& attempt) {
  // The engine-time deadline/retry driver, transliterated to wall-clock
  // seconds: one budget across all attempts, backoff slept between them.
  const auto start = std::chrono::steady_clock::now();
  const auto remaining = [&]() -> double {
    const double used =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return opts.deadline - used;
  };
  double backoff = opts.retry.backoff;
  for (std::size_t n = 1;; ++n) {
    double budget = 0;  // 0 = unbounded
    if (opts.deadline > 0) {
      budget = remaining();
      if (budget <= 0) {
        return PutResult::failure(
            Status::DeadlineExceeded(deadline_msg(opts.deadline)));
      }
    }
    PutResult r = attempt(budget);
    if (r.ok || !opts.retry.retriable(r.status) ||
        n >= opts.retry.max_attempts) {
      return r;
    }
    // Never sleep past the deadline: the engine-time driver's timer fires
    // exactly at expiry, so the wall-clock driver caps the backoff at the
    // remaining budget (the loop top then reports DeadlineExceeded on
    // time, not a backoff late).
    double sleep_s = backoff;
    if (opts.deadline > 0) {
      const double rem = remaining();
      if (rem <= 0) {
        return PutResult::failure(
            Status::DeadlineExceeded(deadline_msg(opts.deadline)));
      }
      sleep_s = std::min(backoff, rem);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    backoff *= opts.retry.backoff_multiplier;
  }
}

/// One logical put (plain or conditional).  Everything that touches the op
/// after submission — deadline timer, retries, completion — runs on the
/// key's shard lane, so `settled` is the only cross-lane rendezvous (the
/// caller of a sync wrapper reads the result after its own synchronization).
struct Client::PutOp {
  std::atomic<bool> settled{false};
  PutCallback cb;

  /// First settle wins: returns true when this caller should complete.
  bool settle() { return !settled.exchange(true, std::memory_order_acq_rel); }
};

struct Client::GetOp {
  std::atomic<bool> settled{false};
  GetCallback cb;

  bool settle() { return !settled.exchange(true, std::memory_order_acq_rel); }
};

// ---- puts (plain and conditional share one deadline/retry driver) -----------

void Client::put(const std::string& key, Value value, PutCallback cb,
                 OpOptions opts) {
  if (remote_) {
    PutResult r;
    if (closed()) {
      r = PutResult::failure(Status::Unavailable("client closed"));
    } else if (key.empty()) {
      r = PutResult::failure(Status::InvalidArgument("empty key"));
    } else {
      r = remote_put_op(opts, [&](double deadline_s) {
        return remote_->put(key, value, deadline_s);
      });
    }
    if (cb) cb(r);
    return;
  }
  run_put_op(key, std::move(value), opts, std::move(cb),
             [this](const std::string& k, Value v,
                    StoreService::PutCallback pcb) {
               svc_->put(k, std::move(v), std::move(pcb));
             });
}

void Client::put_if_version(const std::string& key, Value value,
                            Version expected, PutCallback cb, OpOptions opts) {
  if (remote_) {
    PutResult r;
    if (closed()) {
      r = PutResult::failure(Status::Unavailable("client closed"));
    } else if (key.empty()) {
      r = PutResult::failure(Status::InvalidArgument("empty key"));
    } else {
      r = remote_put_op(opts, [&](double deadline_s) {
        return remote_->put_if(key, value, expected, deadline_s);
      });
    }
    if (cb) cb(r);
    return;
  }
  run_put_op(key, std::move(value), opts, std::move(cb),
             [this, expected](const std::string& k, Value v,
                              StoreService::PutCallback pcb) {
               svc_->put_if(k, std::move(v), expected, std::move(pcb));
             });
}

void Client::run_put_op(const std::string& key, Value value, OpOptions opts,
                        PutCallback cb, PutSubmit submit) {
  if (closed()) {
    if (cb) cb(PutResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    if (cb) cb(PutResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  auto op = std::make_shared<PutOp>();
  op->cb = std::move(cb);
  const std::size_t lane = lane_of_key(key);
  // Hop to the shard's lane first: the deadline timer must be armed with
  // after_here on the lane whose clock the operation runs against.
  svc_->engine().post(lane, [this, key, value = std::move(value), opts, op,
                             submit = std::make_shared<PutSubmit>(
                                 std::move(submit))]() mutable {
    if (opts.deadline > 0) {
      svc_->engine().after_here(opts.deadline, [op, opts] {
        if (!op->settle()) return;
        if (op->cb) {
          op->cb(PutResult::failure(
              Status::DeadlineExceeded(deadline_msg(opts.deadline))));
        }
      });
    }
    attempt_put_op(key, std::move(value), opts, std::move(op), 1,
                   opts.retry.backoff, std::move(submit));
  });
}

void Client::attempt_put_op(const std::string& key, Value value,
                            OpOptions opts, std::shared_ptr<PutOp> op,
                            std::size_t attempt, double backoff,
                            std::shared_ptr<PutSubmit> submit) {
  // The value is a shared handle, so keeping a copy for a potential retry
  // costs a refcount, not a payload copy.
  (*submit)(key, value, [this, key, value, opts, op, attempt, backoff,
                         submit](const PutResult& r) mutable {
    if (op->settled.load(std::memory_order_acquire)) return;  // deadline won
    if (!r.ok && opts.retry.retriable(r.status) &&
        attempt < opts.retry.max_attempts) {
      svc_->engine().after_here(backoff, [this, key, value = std::move(value),
                                          opts, op = std::move(op), attempt,
                                          backoff,
                                          submit = std::move(submit)]() mutable {
        if (op->settled.load(std::memory_order_acquire)) return;
        attempt_put_op(key, std::move(value), opts, std::move(op), attempt + 1,
                       backoff * opts.retry.backoff_multiplier,
                       std::move(submit));
      });
      return;
    }
    if (!op->settle()) return;
    if (op->cb) op->cb(r);
  });
}

// ---- gets -------------------------------------------------------------------

void Client::get(const std::string& key, GetCallback cb, OpOptions opts) {
  if (closed()) {
    if (cb) cb(GetResult::failure(Status::Unavailable("client closed")));
    return;
  }
  if (key.empty()) {
    if (cb) cb(GetResult::failure(Status::InvalidArgument("empty key")));
    return;
  }
  if (remote_) {
    // Gets have no retriable failure; one blocking RPC under the deadline.
    const GetResult r = remote_->get(key, opts.read_mode, opts.deadline);
    if (cb) cb(r);
    return;
  }
  auto op = std::make_shared<GetOp>();
  op->cb = std::move(cb);
  const std::size_t lane = lane_of_key(key);
  svc_->engine().post(lane, [this, key, opts, op]() mutable {
    if (opts.deadline > 0) {
      svc_->engine().after_here(opts.deadline, [op, opts] {
        if (!op->settle()) return;
        if (op->cb) {
          op->cb(GetResult::failure(
              Status::DeadlineExceeded(deadline_msg(opts.deadline))));
        }
      });
    }
    svc_->get(
        key,
        [op](const GetResult& r) {
          if (!op->settle()) return;  // deadline won; drop the late result
          if (op->cb) op->cb(r);
        },
        opts.read_mode);
  });
}

// ---- multi-key scatter-gather -----------------------------------------------

void Client::multi_get(std::vector<std::string> keys, MultiGetCallback cb,
                       OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::multi_get: null callback");
  if (keys.empty()) {  // fire exactly once — an empty gather never completes
    cb({});
    return;
  }
  auto gather = detail::make_gather<GetResult>(keys.size(), std::move(cb));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    get(keys[i],
        [gather, i](const GetResult& r) {
          detail::gather_finish(gather, i, r);
        },
        opts);
  }
}

void Client::multi_put(std::vector<KeyValue> entries, MultiPutCallback cb,
                       OpOptions opts) {
  LDS_REQUIRE(cb != nullptr, "Client::multi_put: null callback");
  if (entries.empty()) {
    cb({});
    return;
  }
  auto gather = detail::make_gather<PutResult>(entries.size(), std::move(cb));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    put(entries[i].key, std::move(entries[i].value),
        [gather, i](const PutResult& r) {
          detail::gather_finish(gather, i, r);
        },
        opts);
  }
}

// ---- sync wrappers ----------------------------------------------------------

using detail::run_op_sync;

Result<Version> Client::put_sync(const std::string& key, Value value,
                                 OpOptions opts) {
  if (remote_) {
    // Remote async ops block inline, so the callback has fired by return.
    PutResult rr;
    put(key, std::move(value), [&rr](const PutResult& pr) { rr = pr; }, opts);
    if (!rr.ok) return rr.status;
    return rr.version;
  }
  const PutResult r = run_op_sync<PutResult>(
      svc_->engine(), svc_->parallel(),
      "Client::put_sync: simulation drained before completion",
      [&](auto done) {
        put(key, std::move(value),
            [done = std::move(done)](const PutResult& pr) { done(pr); },
            opts);
      });
  if (!r.ok) return r.status;
  return r.version;
}

Result<VersionedValue> Client::get_sync(const std::string& key,
                                        OpOptions opts) {
  if (remote_) {
    GetResult rr;
    get(key, [&rr](const GetResult& gr) { rr = gr; }, opts);
    if (!rr.ok) return rr.status;
    return VersionedValue{rr.version, rr.value};
  }
  const GetResult r = run_op_sync<GetResult>(
      svc_->engine(), svc_->parallel(),
      "Client::get_sync: simulation drained before completion",
      [&](auto done) {
        get(key, [done = std::move(done)](const GetResult& gr) { done(gr); },
            opts);
      });
  if (!r.ok) return r.status;
  return VersionedValue{r.version, r.value};
}

Result<Version> Client::put_if_version_sync(const std::string& key,
                                            Value value, Version expected,
                                            OpOptions opts) {
  if (remote_) {
    PutResult rr;
    put_if_version(key, std::move(value), expected,
                   [&rr](const PutResult& pr) { rr = pr; }, opts);
    if (!rr.ok) return rr.status;
    return rr.version;
  }
  const PutResult r = run_op_sync<PutResult>(
      svc_->engine(), svc_->parallel(),
      "Client::put_if_version_sync: simulation drained before completion",
      [&](auto done) {
        put_if_version(
            key, std::move(value), expected,
            [done = std::move(done)](const PutResult& pr) { done(pr); }, opts);
      });
  if (!r.ok) return r.status;
  return r.version;
}

std::vector<GetResult> Client::multi_get_sync(std::vector<std::string> keys,
                                              OpOptions opts) {
  if (remote_) {
    std::vector<GetResult> rr;
    multi_get(std::move(keys), [&rr](std::vector<GetResult> v) {
      rr = std::move(v);
    }, opts);
    return rr;
  }
  return run_op_sync<std::vector<GetResult>>(
      svc_->engine(), svc_->parallel(),
      "Client::multi_get_sync: simulation drained before completion",
      [&](auto done) { multi_get(std::move(keys), std::move(done), opts); });
}

std::vector<PutResult> Client::multi_put_sync(std::vector<KeyValue> entries,
                                              OpOptions opts) {
  if (remote_) {
    std::vector<PutResult> rr;
    multi_put(std::move(entries), [&rr](std::vector<PutResult> v) {
      rr = std::move(v);
    }, opts);
    return rr;
  }
  return run_op_sync<std::vector<PutResult>>(
      svc_->engine(), svc_->parallel(),
      "Client::multi_put_sync: simulation drained before completion",
      [&](auto done) { multi_put(std::move(entries), std::move(done), opts); });
}

}  // namespace lds::store
