// store::Client — the documented client entry point of the LDS store.
//
// A thin facade over StoreService that adds the cross-cutting per-operation
// concerns the service itself keeps out of its hot path:
//
//   * OpOptions::deadline — an engine-clock budget per logical operation.
//     The client arms a timer ON THE KEY'S SHARD LANE (Engine::after_here),
//     so expiry is lane-safe in both Deterministic and Parallel modes: the
//     timer, the completion callback and any retry all run on one lane and
//     race only through the op's settled flag.  When the timer wins, the
//     caller gets DeadlineExceeded; the underlying protocol op (if any) is
//     left to finish and its late result is dropped.
//   * OpOptions::retry — bounded retries with exponential backoff for
//     transient AdmissionReject failures, scheduled in engine time so a
//     deterministic run replays bit-identically.
//   * OpOptions::read_mode — Atomic (default) or Regular consistency
//     (Section VI extension; LDS shards with a provisioned regular pool).
//   * Typed versions — puts return the Version they committed; gets return
//     the Version they observed; put_if_version commits only against an
//     expected Version (Aborted on mismatch).
//   * Status-returning sync wrappers — Result<Version> / Result<
//     VersionedValue> in the RocksDB Status idiom (common/status.h).
//   * Read cache (opt-in, CacheOptions) — atomic-mode gets consult an LRU
//     of (key -> Version, zero-copy Value).  A hit costs one TAG-ONLY
//     validation round (ReadMode::TagOnly: the LDS committed-tag quorum
//     phase, no value bytes on the wire); version match serves the cached
//     Value, mismatch falls through to a full get and refreshes the entry.
//     The client's own puts update the entry (or invalidate it when the put
//     coalesced or a put_if_version aborted).  Hits stay linearizable:
//     the validation tag is >= any operation that completed before the
//     round began.  CacheOptions::ttl > 0 additionally serves entries with
//     NO round until the ttl expires — opt-in bounded staleness (reads may
//     lag other clients' writes by up to ttl; this client's OWN writes
//     still invalidate/update immediately), default off.  Cache counters
//     (cache_hits/misses/validation_rounds/invalidations,
//     wire_value_bytes_saved, ...) land in metrics().
//
// Remote-connect mode (Client::connect): the same API over a pool of TCP
// connections to a served StoreService (store/remote.h, tools/lds_served.cpp).
// The differences are inherent to leaving the address space:
// OpOptions::deadline and RetryPolicy backoffs are wall-clock SECONDS
// (engine time does not exist on this side of the socket), put/get/
// put_if_version callbacks are invoked inline after the blocking RPC
// completes, and nothing is deterministic.  ReadMode still applies (the
// mode rides the request).  multi_get/multi_put pipeline their
// sub-operations concurrently across the pool — a batch costs one round
// trip — and the completion-queue API below (async_put/async_get/
// async_put_if + CompletionQueue) submits without blocking at all:
// completions surface on the transport's progress threads, deadlines on
// its timer thread, retries without occupying a caller thread.
//
// Values are zero-copy handles end to end: the buffer a caller puts is the
// buffer the batch window queues, the writer fans out, and the L1 servers
// store (common/slice.h).
//
// Thread-safety follows the service: Deterministic mode is single-threaded
// with inline callbacks; Parallel mode accepts calls from any thread and
// fires callbacks on the owning shard's lane.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/transport.h"
#include "store/cache.h"
#include "store/metrics.h"
#include "store/store_service.h"

namespace lds::store {

class RemoteSession;  // store/remote.h

/// Bounded retry with exponential backoff, in engine-time units.  Only
/// transient failures retry (today: AdmissionReject); semantic outcomes
/// (NotFound, Aborted) and expired deadlines never do.
struct RetryPolicy {
  std::size_t max_attempts = 1;  ///< total attempts; 1 = no retry
  double backoff = 0.5;          ///< delay before the first retry
  double backoff_multiplier = 2.0;

  bool retriable(const Status& s) const {
    return s.is(StatusCode::kAdmissionReject);
  }
};

/// Per-operation options.  Defaults mean: no deadline, no retry, atomic
/// reads — i.e. exactly the raw StoreService behavior.
struct OpOptions {
  /// Engine-clock budget for the whole operation, retries included;
  /// 0 = unbounded.  Expiry completes the op with DeadlineExceeded.
  double deadline = 0;
  RetryPolicy retry;
  ReadMode read_mode = ReadMode::Atomic;
};

/// A get's payload with the version that produced it.
struct VersionedValue {
  Version version;
  Value value;
};

/// One finished async operation, retrieved from a CompletionQueue.  `kind`
/// selects which result field is meaningful.
struct Completion {
  enum class Kind : std::uint8_t { Put, Get, PutIf };
  std::uint64_t handle = 0;  ///< what async_put/async_get returned
  Kind kind = Kind::Put;
  std::string key;
  PutResult put;  ///< Kind::Put / Kind::PutIf
  GetResult get;  ///< Kind::Get
};

/// Where async operations complete.  Producers are the client's transport
/// progress threads; any number of consumer threads may poll/wait/drain.
/// An operation is OUTSTANDING from submission until its completion event
/// is retrieved — so `while (cq.outstanding() > 0) cq.wait(&c);` drains a
/// pipeline exactly.
class CompletionQueue {
 public:
  /// Ready events plus operations still in flight.
  std::size_t outstanding() const {
    std::lock_guard<std::mutex> lk(mu_);
    return inflight_ + ready_.size();
  }

  /// Nonblocking: pop one ready completion.  False when none is ready.
  bool poll(Completion* out) {
    std::lock_guard<std::mutex> lk(mu_);
    return pop_locked(out);
  }

  /// Block until a completion is ready and pop it.  `timeout_s` bounds the
  /// wait (0 = unbounded).  Returns false on timeout — or immediately when
  /// nothing is outstanding (a wait with no producers cannot complete).
  bool wait(Completion* out, double timeout_s = 0) {
    std::unique_lock<std::mutex> lk(mu_);
    const auto ready = [&] { return !ready_.empty() || inflight_ == 0; };
    if (timeout_s > 0) {
      if (!cv_.wait_for(lk, std::chrono::duration<double>(timeout_s), ready)) {
        return false;
      }
    } else {
      cv_.wait(lk, ready);
    }
    return pop_locked(out);
  }

  /// Nonblocking: append every ready completion to `*out`; returns how many.
  std::size_t drain(std::vector<Completion>* out) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t n = ready_.size();
    for (auto& c : ready_) out->push_back(std::move(c));
    ready_.clear();
    return n;
  }

 private:
  friend class Client;

  void start() {
    std::lock_guard<std::mutex> lk(mu_);
    ++inflight_;
  }
  void push(Completion c) {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
    ready_.push_back(std::move(c));
    cv_.notify_all();
  }
  bool pop_locked(Completion* out) {
    if (ready_.empty()) return false;
    *out = std::move(ready_.front());
    ready_.pop_front();
    return true;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> ready_;
  std::size_t inflight_ = 0;
};

class Client {
 public:
  using PutCallback = StoreService::PutCallback;
  using GetCallback = StoreService::GetCallback;
  using MultiGetCallback = StoreService::MultiGetCallback;
  using MultiPutCallback = StoreService::MultiPutCallback;

  /// The service must outlive the client.  `cache` opts into the client-
  /// side read cache (default: disabled — byte-identical to the uncached
  /// client).
  explicit Client(StoreService& service, CacheOptions cache = {});
  ~Client();

  /// Remote-connect tuning.  Defaults reproduce the classic single-
  /// connection client.
  struct ConnectOptions {
    /// TCP connections in the pool; async operations and multi_get/
    /// multi_put fan out across them round-robin.
    std::size_t connections = 1;
    /// Per-connection transport knobs (progress threads, recv pool,
    /// backlog watermarks, ... — see net::TcpTransport::Options).
    net::TcpTransport::Options transport;
    /// Client-side read cache (see the header note); default disabled.
    CacheOptions cache;
  };

  /// Remote-connect mode: a client whose operations travel over TCP to a
  /// served StoreService at host:port (see the header note for the semantic
  /// differences).  Returns nullptr on connection failure, with the reason
  /// in `*status` when non-null.
  static std::unique_ptr<Client> connect(const std::string& host,
                                         std::uint16_t port,
                                         Status* status = nullptr);
  static std::unique_ptr<Client> connect(const std::string& host,
                                         std::uint16_t port, Status* status,
                                         ConnectOptions copts);
  bool remote() const { return !remotes_.empty(); }

  // ---- async API ------------------------------------------------------------
  void put(const std::string& key, Value value, PutCallback cb,
           OpOptions opts = {});
  void get(const std::string& key, GetCallback cb, OpOptions opts = {});
  /// Conditional put: commits iff the key's current version equals
  /// `expected` (Aborted otherwise, carrying the observed version).  A
  /// never-written key matches Version(kTag0) — "create if absent".
  void put_if_version(const std::string& key, Value value, Version expected,
                      PutCallback cb, OpOptions opts = {});
  /// Scatter-gather over shards; results in input order; an empty input
  /// fires the callback once with an empty vector.  `opts` apply to each
  /// sub-operation independently.
  void multi_get(std::vector<std::string> keys, MultiGetCallback cb,
                 OpOptions opts = {});
  void multi_put(std::vector<KeyValue> entries, MultiPutCallback cb,
                 OpOptions opts = {});

  // ---- completion-queue API --------------------------------------------------
  // Submit without blocking; the result arrives in completions() (or the
  // given callback) once the operation finishes.  Remote mode: the request
  // is pipelined onto a pool connection and the submitting thread returns
  // as soon as the frame is queued (it may block only at the transport's
  // backlog watermark).  Local mode: rides the normal lane-async path.
  // OpOptions::deadline and retry apply per operation; expiry/cancellation
  // complete the op with DeadlineExceeded/Unavailable like the sync API.

  /// The queue async completions land on (when submitted without callback).
  CompletionQueue& completions() { return cq_; }

  std::uint64_t async_put(const std::string& key, Value value,
                          OpOptions opts = {});
  std::uint64_t async_get(const std::string& key, OpOptions opts = {});
  std::uint64_t async_put_if(const std::string& key, Value value,
                             Version expected, OpOptions opts = {});

  /// Callback-style variants: `cb` fires on a transport progress thread
  /// (remote) or the key's shard lane (local) instead of the queue.
  std::uint64_t async_put(const std::string& key, Value value, PutCallback cb,
                          OpOptions opts = {});
  std::uint64_t async_get(const std::string& key, GetCallback cb,
                          OpOptions opts = {});
  std::uint64_t async_put_if(const std::string& key, Value value,
                             Version expected, PutCallback cb,
                             OpOptions opts = {});

  // ---- sync wrappers (Status idiom) -----------------------------------------
  // Deterministic mode drives the simulator until the op settles; Parallel
  // mode blocks the calling thread.
  Result<Version> put_sync(const std::string& key, Value value,
                           OpOptions opts = {});
  Result<VersionedValue> get_sync(const std::string& key, OpOptions opts = {});
  Result<Version> put_if_version_sync(const std::string& key, Value value,
                                      Version expected, OpOptions opts = {});
  std::vector<GetResult> multi_get_sync(std::vector<std::string> keys,
                                        OpOptions opts = {});
  std::vector<PutResult> multi_put_sync(std::vector<KeyValue> entries,
                                        OpOptions opts = {});

  // ---- lifecycle ------------------------------------------------------------
  /// After close(), every new operation completes immediately with
  /// Unavailable.  Remote mode also drops the pool's connections, which
  /// CANCELS in-flight async operations: each pending completion is
  /// delivered with Unavailable (local in-flight operations are
  /// unaffected).  Idempotent, thread-safe.
  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Local mode only (remote clients have no in-process service).
  StoreService& service() { return *svc_; }

  // ---- read cache -----------------------------------------------------------
  /// Client-side counters: cache_hits, cache_ttl_hits, cache_misses,
  /// cache_validation_rounds, cache_stale_validations, cache_invalidations,
  /// cache_disabled, wire_value_bytes_saved.  Empty registry when the cache
  /// was never enabled.
  const MetricsRegistry& metrics() const { return client_metrics_; }
  bool cache_enabled() const { return cache_ != nullptr; }
  /// Entries currently cached (0 when disabled).
  std::size_t cache_size() const { return cache_ ? cache_->size() : 0; }
  /// Drop every cached entry (the options stay in force).
  void cache_clear() {
    if (cache_) cache_->clear();
  }

 private:
  /// Mutable per-op coordination: lives on the op's lane; `settled` is
  /// atomic only because multi-op gathers read results across lanes.
  struct PutOp;
  struct GetOp;
  /// How one attempt of a put-like op is submitted to the service (plain
  /// put, or put_if with a bound expected version).  Type-erased so the
  /// deadline/retry driver exists once.
  using PutSubmit =
      std::function<void(const std::string&, Value, StoreService::PutCallback)>;

  /// Async remote attempt chain (retry state; see client.cpp).
  struct AsyncOp;

  Client(std::vector<std::unique_ptr<RemoteSession>> remotes,
         CacheOptions cache);

  std::size_t lane_of_key(const std::string& key) const {
    return svc_->shard_lane(svc_->router().shard_of(key));
  }
  /// Round-robin over the connection pool (remote mode only).
  RemoteSession& pick();
  /// Remote path shared by put and put_if_version: wall-clock deadline +
  /// bounded-backoff retries around one blocking RPC per attempt.
  PutResult remote_put_op(OpOptions opts,
                          const std::function<PutResult(double)>& attempt);
  /// Fire one attempt of an async remote op (and its retries, scheduled on
  /// the session's timer thread).
  void remote_attempt(std::shared_ptr<AsyncOp> op);
  /// Nonblocking submission cores shared by the async_* overloads and the
  /// remote multi_* fan-out.  `cb` always fires exactly once.
  void submit_put(const std::string& key, Value value, PutCallback cb,
                  OpOptions opts);
  void submit_get(const std::string& key, GetCallback cb, OpOptions opts);
  void submit_put_if(const std::string& key, Value value, Version expected,
                     PutCallback cb, OpOptions opts);
  /// Shared driver for put and put_if_version: closed/empty-key prechecks,
  /// lane hop, deadline arming, bounded-backoff retries.
  void run_put_op(const std::string& key, Value value, OpOptions opts,
                  PutCallback cb, PutSubmit submit);
  void attempt_put_op(const std::string& key, Value value, OpOptions opts,
                      std::shared_ptr<PutOp> op, std::size_t attempt,
                      double backoff, std::shared_ptr<PutSubmit> submit);

  // ---- read-cache internals (all no-ops when cache_ is null) ----------------
  /// Whether this (already prechecked) get should consult the cache.
  bool cache_applies(ReadMode mode) const {
    return cache_ != nullptr && mode == ReadMode::Atomic &&
           cache_usable_.load(std::memory_order_acquire);
  }
  /// The uncached async get core: remote = pipelined RPC, local = lane hop
  /// + deadline + service get.  No prechecks (callers did them).
  void raw_get(const std::string& key, GetCallback cb, OpOptions opts);
  void local_get(const std::string& key, GetCallback cb, OpOptions opts);
  /// Cache-consulting async get: TTL hit / validation round / fill.
  void cached_get(const std::string& key, GetCallback cb, OpOptions opts);
  /// Full get that refreshes the cache entry on success.
  void fill_get(const std::string& key, GetCallback cb, OpOptions opts);
  /// Fold a put outcome into the cache (update on commit, invalidate on
  /// coalesce/abort) and forward to `cb`.  Identity when the cache is off.
  PutCallback wrap_put_cb(const std::string& key, const Value& value,
                          PutCallback cb);
  /// Freshness clock: engine time under the deterministic engine (so TTL
  /// tests replay bit-identically), wall clock otherwise.
  double cache_now() const;

  StoreService* svc_ = nullptr;  ///< local mode
  std::vector<std::unique_ptr<RemoteSession>> remotes_;  ///< remote pool
  std::atomic<std::size_t> rr_{0};  ///< round-robin cursor over remotes_
  CompletionQueue cq_;
  std::atomic<std::uint64_t> next_handle_{1};
  std::atomic<bool> closed_{false};
  std::unique_ptr<ReadCache> cache_;  ///< null = cache disabled
  /// Cleared permanently when the service answers a tag-only round with
  /// InvalidArgument (non-LDS shards): every later get takes the raw path.
  std::atomic<bool> cache_usable_{true};
  MetricsRegistry client_metrics_;
};

}  // namespace lds::store
