// store::Client — the documented client entry point of the LDS store.
//
// A thin facade over StoreService that adds the cross-cutting per-operation
// concerns the service itself keeps out of its hot path:
//
//   * OpOptions::deadline — an engine-clock budget per logical operation.
//     The client arms a timer ON THE KEY'S SHARD LANE (Engine::after_here),
//     so expiry is lane-safe in both Deterministic and Parallel modes: the
//     timer, the completion callback and any retry all run on one lane and
//     race only through the op's settled flag.  When the timer wins, the
//     caller gets DeadlineExceeded; the underlying protocol op (if any) is
//     left to finish and its late result is dropped.
//   * OpOptions::retry — bounded retries with exponential backoff for
//     transient AdmissionReject failures, scheduled in engine time so a
//     deterministic run replays bit-identically.
//   * OpOptions::read_mode — Atomic (default) or Regular consistency
//     (Section VI extension; LDS shards with a provisioned regular pool).
//   * Typed versions — puts return the Version they committed; gets return
//     the Version they observed; put_if_version commits only against an
//     expected Version (Aborted on mismatch).
//   * Status-returning sync wrappers — Result<Version> / Result<
//     VersionedValue> in the RocksDB Status idiom (common/status.h).
//
// Remote-connect mode (Client::connect): the same API over a TCP connection
// to a served StoreService (store/remote.h, tools/lds_served.cpp).  The
// differences are inherent to leaving the address space: OpOptions::deadline
// and RetryPolicy backoffs are wall-clock SECONDS (engine time does not
// exist on this side of the socket), async callbacks are invoked inline
// after the blocking RPC completes, multi_get/multi_put issue their
// sub-operations sequentially over the one connection, and nothing is
// deterministic.  ReadMode still applies (the mode rides the request).
//
// Values are zero-copy handles end to end: the buffer a caller puts is the
// buffer the batch window queues, the writer fans out, and the L1 servers
// store (common/slice.h).
//
// Thread-safety follows the service: Deterministic mode is single-threaded
// with inline callbacks; Parallel mode accepts calls from any thread and
// fires callbacks on the owning shard's lane.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/store_service.h"

namespace lds::store {

class RemoteSession;  // store/remote.h

/// Bounded retry with exponential backoff, in engine-time units.  Only
/// transient failures retry (today: AdmissionReject); semantic outcomes
/// (NotFound, Aborted) and expired deadlines never do.
struct RetryPolicy {
  std::size_t max_attempts = 1;  ///< total attempts; 1 = no retry
  double backoff = 0.5;          ///< delay before the first retry
  double backoff_multiplier = 2.0;

  bool retriable(const Status& s) const {
    return s.is(StatusCode::kAdmissionReject);
  }
};

/// Per-operation options.  Defaults mean: no deadline, no retry, atomic
/// reads — i.e. exactly the raw StoreService behavior.
struct OpOptions {
  /// Engine-clock budget for the whole operation, retries included;
  /// 0 = unbounded.  Expiry completes the op with DeadlineExceeded.
  double deadline = 0;
  RetryPolicy retry;
  ReadMode read_mode = ReadMode::Atomic;
};

/// A get's payload with the version that produced it.
struct VersionedValue {
  Version version;
  Value value;
};

class Client {
 public:
  using PutCallback = StoreService::PutCallback;
  using GetCallback = StoreService::GetCallback;
  using MultiGetCallback = StoreService::MultiGetCallback;
  using MultiPutCallback = StoreService::MultiPutCallback;

  /// The service must outlive the client.
  explicit Client(StoreService& service);
  ~Client();

  /// Remote-connect mode: a client whose operations travel over TCP to a
  /// served StoreService at host:port (see the header note for the semantic
  /// differences).  Returns nullptr on connection failure, with the reason
  /// in `*status` when non-null.
  static std::unique_ptr<Client> connect(const std::string& host,
                                         std::uint16_t port,
                                         Status* status = nullptr);
  bool remote() const { return remote_ != nullptr; }

  // ---- async API ------------------------------------------------------------
  void put(const std::string& key, Value value, PutCallback cb,
           OpOptions opts = {});
  void get(const std::string& key, GetCallback cb, OpOptions opts = {});
  /// Conditional put: commits iff the key's current version equals
  /// `expected` (Aborted otherwise, carrying the observed version).  A
  /// never-written key matches Version(kTag0) — "create if absent".
  void put_if_version(const std::string& key, Value value, Version expected,
                      PutCallback cb, OpOptions opts = {});
  /// Scatter-gather over shards; results in input order; an empty input
  /// fires the callback once with an empty vector.  `opts` apply to each
  /// sub-operation independently.
  void multi_get(std::vector<std::string> keys, MultiGetCallback cb,
                 OpOptions opts = {});
  void multi_put(std::vector<KeyValue> entries, MultiPutCallback cb,
                 OpOptions opts = {});

  // ---- sync wrappers (Status idiom) -----------------------------------------
  // Deterministic mode drives the simulator until the op settles; Parallel
  // mode blocks the calling thread.
  Result<Version> put_sync(const std::string& key, Value value,
                           OpOptions opts = {});
  Result<VersionedValue> get_sync(const std::string& key, OpOptions opts = {});
  Result<Version> put_if_version_sync(const std::string& key, Value value,
                                      Version expected, OpOptions opts = {});
  std::vector<GetResult> multi_get_sync(std::vector<std::string> keys,
                                        OpOptions opts = {});
  std::vector<PutResult> multi_put_sync(std::vector<KeyValue> entries,
                                        OpOptions opts = {});

  // ---- lifecycle ------------------------------------------------------------
  /// After close(), every operation completes immediately with Unavailable.
  /// In-flight operations are unaffected.  Idempotent, thread-safe.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Local mode only (remote clients have no in-process service).
  StoreService& service() { return *svc_; }

 private:
  /// Mutable per-op coordination: lives on the op's lane; `settled` is
  /// atomic only because multi-op gathers read results across lanes.
  struct PutOp;
  struct GetOp;
  /// How one attempt of a put-like op is submitted to the service (plain
  /// put, or put_if with a bound expected version).  Type-erased so the
  /// deadline/retry driver exists once.
  using PutSubmit =
      std::function<void(const std::string&, Value, StoreService::PutCallback)>;

  explicit Client(std::unique_ptr<RemoteSession> remote);

  std::size_t lane_of_key(const std::string& key) const {
    return svc_->shard_lane(svc_->router().shard_of(key));
  }
  /// Remote path shared by put and put_if_version: wall-clock deadline +
  /// bounded-backoff retries around one blocking RPC per attempt.
  PutResult remote_put_op(OpOptions opts,
                          const std::function<PutResult(double)>& attempt);
  /// Shared driver for put and put_if_version: closed/empty-key prechecks,
  /// lane hop, deadline arming, bounded-backoff retries.
  void run_put_op(const std::string& key, Value value, OpOptions opts,
                  PutCallback cb, PutSubmit submit);
  void attempt_put_op(const std::string& key, Value value, OpOptions opts,
                      std::shared_ptr<PutOp> op, std::size_t attempt,
                      double backoff, std::shared_ptr<PutSubmit> submit);

  StoreService* svc_ = nullptr;            ///< local mode
  std::unique_ptr<RemoteSession> remote_;  ///< remote mode
  std::atomic<bool> closed_{false};
};

}  // namespace lds::store
