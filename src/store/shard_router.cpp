#include "store/shard_router.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace lds::store {

ShardRouter::ShardRouter(std::size_t num_shards, Options opt) : opt_(opt) {
  LDS_REQUIRE(opt_.vnodes >= 1, "ShardRouter: vnodes must be >= 1");
  live_.assign(num_shards, true);
  live_count_ = num_shards;
  rebuild();
}

std::uint64_t ShardRouter::hash_key(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // Finalize: FNV alone is weak in the high bits the ring compares first.
  return mix_seed(h, 0);
}

void ShardRouter::rebuild() {
  ring_.clear();
  ring_.reserve(live_count_ * opt_.vnodes);
  for (std::size_t s = 0; s < live_.size(); ++s) {
    if (!live_[s]) continue;
    const std::uint64_t shard_seed = mix_seed(opt_.seed, s);
    for (std::size_t r = 0; r < opt_.vnodes; ++r) {
      ring_.push_back({mix_seed(shard_seed, r),
                       static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::size_t ShardRouter::shard_of_hash(std::uint64_t h) const {
  LDS_REQUIRE(!ring_.empty(), "ShardRouter: no live shards");
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->shard;
}

void ShardRouter::assign_lanes(std::size_t num_lanes) {
  LDS_REQUIRE(num_lanes >= 1, "ShardRouter: need at least one lane");
  num_lanes_ = num_lanes;
}

std::size_t ShardRouter::lane_of(std::size_t shard) const {
  LDS_REQUIRE(shard < live_.size(), "ShardRouter: unknown shard");
  return shard % num_lanes_;
}

std::size_t ShardRouter::add_shard() {
  live_.push_back(true);
  ++live_count_;
  rebuild();
  return live_.size() - 1;
}

void ShardRouter::remove_shard(std::size_t shard) {
  LDS_REQUIRE(shard < live_.size() && live_[shard],
              "ShardRouter: removing unknown or dead shard");
  LDS_REQUIRE(live_count_ > 1, "ShardRouter: cannot remove the last shard");
  live_[shard] = false;
  --live_count_;
  rebuild();
}

bool ShardRouter::is_live(std::size_t shard) const {
  return shard < live_.size() && live_[shard];
}

namespace {

/// Right-open sweep over the union of both rings' boundary points: the owner
/// of every h in (b_j, b_{j+1}] is the owner of b_{j+1}, and the wrap
/// segment (b_last, b_0] belongs to b_0's owner.  Visits each segment with
/// its exact width in units of 2^-64.
template <typename Fn>
void sweep_segments(const std::vector<std::uint64_t>& bounds, Fn&& fn) {
  const double unit = std::ldexp(1.0, -64);
  for (std::size_t j = 0; j < bounds.size(); ++j) {
    const std::uint64_t hi = bounds[j];
    const std::uint64_t lo = bounds[j == 0 ? bounds.size() - 1 : j - 1];
    // Width of (lo, hi] on the wrapping ring; a single boundary owns it all.
    const std::uint64_t width = hi - lo;  // mod 2^64 wraps correctly
    const double frac = bounds.size() == 1
                            ? 1.0
                            : static_cast<double>(width) * unit;
    fn(hi, frac);
  }
}

}  // namespace

double ShardRouter::moved_fraction(const ShardRouter& a, const ShardRouter& b) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(a.ring_.size() + b.ring_.size());
  for (const auto& p : a.ring_) bounds.push_back(p.hash);
  for (const auto& p : b.ring_) bounds.push_back(p.hash);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  double moved = 0.0;
  sweep_segments(bounds, [&](std::uint64_t h, double frac) {
    if (a.shard_of_hash(h) != b.shard_of_hash(h)) moved += frac;
  });
  return moved;
}

std::vector<double> ShardRouter::ownership() const {
  std::vector<double> own(live_.size(), 0.0);
  std::vector<std::uint64_t> bounds;
  bounds.reserve(ring_.size());
  for (const auto& p : ring_) bounds.push_back(p.hash);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  sweep_segments(bounds, [&](std::uint64_t h, double frac) {
    own[shard_of_hash(h)] += frac;
  });
  return own;
}

}  // namespace lds::store
