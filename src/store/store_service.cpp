#include "store/store_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "lds/cluster.h"
#include "member/coordinator.h"
#include "member/fabric.h"
#include "storage/manifest.h"
#include "store/async_util.h"
#include "store/remote.h"

namespace lds::store {

const char* protocol_name(ShardProtocol p) {
  switch (p) {
    case ShardProtocol::Lds: return "lds";
    case ShardProtocol::Abd: return "abd";
    case ShardProtocol::Cas: return "cas";
  }
  return "?";
}

storage::Manifest StoreService::storage_manifest(const StoreOptions& opt) {
  // Routing is a pure function of (shards, vnodes): a restart with a
  // different split would silently look for keys on the wrong shard, so
  // pin both and fail fast on mismatch.  Geometry and code are pinned per
  // shard by each LdsCluster's own manifest in `shard-<s>/`.
  storage::Manifest mf;
  mf.set("format", "lds-store-v1");
  mf.set("shards", static_cast<std::uint64_t>(opt.shards));
  mf.set("vnodes", static_cast<std::uint64_t>(opt.vnodes));
  return mf;
}

StoreService::StoreService(StoreOptions opt)
    : opt_(std::move(opt)),
      parallel_(opt_.engine_mode == net::EngineMode::Parallel),
      metrics_(opt_.shards),
      router_(opt_.shards, ShardRouter::Options{opt_.vnodes,
                                                mix_seed(opt_.seed, 0)}) {
  LDS_REQUIRE(opt_.shards >= 1, "StoreService: need at least one shard");
  LDS_REQUIRE(opt_.writers_per_shard >= 1 && opt_.readers_per_shard >= 1,
              "StoreService: need writers and readers");
  LDS_REQUIRE(opt_.batch_window >= 0, "StoreService: negative batch window");
  LDS_REQUIRE(opt_.max_batch >= 1, "StoreService: max_batch must be >= 1");

  const bool durable = !opt_.data_dir.empty();
  if (durable) {
    auto st = storage_manifest(opt_).verify_or_write(opt_.data_dir);
    LDS_REQUIRE(st.ok(),
                ("StoreService: " + std::string(st.message())).c_str());
  }

  member::Fabric* fabric = opt_.fabric;
  if (fabric != nullptr) {
    LDS_REQUIRE(parallel_,
                "StoreService: membership fabric requires EngineMode::Parallel");
    LDS_REQUIRE(opt_.shards == 1,
                "StoreService: membership fabric requires exactly one shard");
    LDS_REQUIRE(!durable,
                "StoreService: membership fabric is RAM-only (no data_dir)");
    LDS_REQUIRE(fabric->listening(),
                "StoreService: fabric must be listening before construction");
    // Epoch-1 bootstrap: everything local.  A restarting daemon installs its
    // own successor view (persisted epoch + 1) before constructing the
    // service, in which case the fabric's epoch is already non-zero.
    if (fabric->epoch() == 0) {
      const ShardBackend& spec =
          opt_.shard_overrides.empty() ? opt_.backend : opt_.shard_overrides[0];
      LDS_REQUIRE(spec.protocol == ShardProtocol::Lds,
                  "StoreService: membership fabric requires an LDS shard");
      member::View v;
      v.epoch = 1;
      v.n1 = static_cast<std::uint32_t>(spec.n1);
      v.f1 = static_cast<std::uint32_t>(spec.f1);
      v.n2 = static_cast<std::uint32_t>(spec.n2);
      v.f2 = static_cast<std::uint32_t>(spec.f2);
      v.code = spec.code;
      v.processes[member::kCoordinatorProcess] =
          member::Endpoint{"127.0.0.1", fabric->port()};
      fabric->set_initial_view(std::move(v));
    }
  }

  if (parallel_) {
    net::ParallelEngine::Options eopt;
    const unsigned hw = std::thread::hardware_concurrency();
    eopt.lanes = opt_.engine_threads != 0
                     ? opt_.engine_threads
                     : std::min(opt_.shards,
                                static_cast<std::size_t>(hw == 0 ? 1 : hw));
    eopt.seed = opt_.seed;
    engine_ = std::make_unique<net::ParallelEngine>(eopt);
  } else {
    engine_ = std::make_unique<net::SimEngine>(opt_.seed);
  }
  router_.assign_lanes(engine_->lanes());

  bool any_lds = false;
  for (std::size_t s = 0; s < opt_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->spec = s < opt_.shard_overrides.size() ? opt_.shard_overrides[s]
                                               : opt_.backend;
    sh->lane = router_.lane_of(s);
    sh->sim = &engine_->lane_sim(sh->lane);
    LDS_REQUIRE(!durable || sh->spec.protocol == ShardProtocol::Lds,
                "StoreService: data_dir requires every shard to be LDS");
    LDS_REQUIRE(fabric == nullptr || sh->spec.protocol == ShardProtocol::Lds,
                "StoreService: membership fabric requires an LDS shard");
    const std::uint64_t shard_seed = mix_seed(opt_.seed, s + 1);
    switch (sh->spec.protocol) {
      case ShardProtocol::Lds: {
        any_lds = true;
        core::LdsCluster::Options copt;
        copt.cfg.n1 = sh->spec.n1;
        copt.cfg.f1 = sh->spec.f1;
        copt.cfg.n2 = sh->spec.n2;
        copt.cfg.f2 = sh->spec.f2;
        copt.cfg.backend = sh->spec.code;
        copt.writers = opt_.writers_per_shard;
        copt.readers = opt_.readers_per_shard;
        copt.regular_readers = opt_.regular_readers_per_shard;
        copt.latency = opt_.exponential_latency
                           ? core::LdsCluster::LatencyKind::Exponential
                           : core::LdsCluster::LatencyKind::Fixed;
        copt.tau1 = opt_.tau1;
        copt.tau0 = opt_.tau0;
        copt.tau2 = opt_.tau2;
        copt.seed = shard_seed;
        copt.engine = engine_.get();
        copt.lane = sh->lane;
        if (durable) {
          copt.data_dir = opt_.data_dir + "/shard-" + std::to_string(s);
          copt.durability = opt_.durability;
        }
        if (fabric != nullptr) {
          copt.transport_factory = [fabric](net::Network& n) {
            return std::unique_ptr<net::Transport>(
                std::make_unique<member::RemoteTransport>(*fabric, n));
          };
          const member::View v = fabric->view();
          for (std::size_t j = 0; j < sh->spec.n1; ++j) {
            const NodeId id = core::kL1IdBase + static_cast<NodeId>(j);
            if (v.process_of(id) != fabric->self()) copt.remote_l1.insert(j);
          }
          for (std::size_t i = 0; i < sh->spec.n2; ++i) {
            const NodeId id = core::kL2IdBase + static_cast<NodeId>(i);
            if (v.process_of(id) != fabric->self()) copt.remote_l2.insert(i);
          }
        }
        sh->lds = std::make_unique<core::LdsCluster>(copt);
        if (durable) {
          auto kl = storage::KeyLog::open(copt.data_dir + "/keys",
                                          opt_.durability);
          LDS_REQUIRE(kl.ok(), ("StoreService: open keylog for shard " +
                                std::to_string(s) + ": " +
                                kl.status().message())
                                   .c_str());
          sh->keylog = std::move(kl).value();
          // Replay reproduces the exact intern order of every previous
          // incarnation: the i-th surviving record IS ObjectId i.
          for (const std::string& key : sh->keylog->recovered()) {
            sh->objects.emplace(key, static_cast<ObjectId>(sh->objects.size()));
          }
        }
        sh->l1_down.assign(sh->spec.n1, false);
        sh->l2_down.assign(sh->spec.n2, false);
        break;
      }
      case ShardProtocol::Abd: {
        baselines::AbdCluster::Options copt;
        copt.n = sh->spec.n;
        copt.f = sh->spec.f;
        copt.writers = opt_.writers_per_shard;
        copt.readers = opt_.readers_per_shard;
        copt.tau1 = opt_.tau1;
        copt.seed = shard_seed;
        copt.exponential_latency = opt_.exponential_latency;
        copt.engine = engine_.get();
        copt.lane = sh->lane;
        sh->abd = std::make_unique<baselines::AbdCluster>(copt);
        sh->srv_down.assign(sh->spec.n, false);
        break;
      }
      case ShardProtocol::Cas: {
        baselines::CasCluster::Options copt;
        copt.n = sh->spec.n;
        copt.k = sh->spec.n - 2 * sh->spec.f;
        copt.writers = opt_.writers_per_shard;
        copt.readers = opt_.readers_per_shard;
        copt.tau1 = opt_.tau1;
        copt.seed = shard_seed;
        copt.exponential_latency = opt_.exponential_latency;
        copt.engine = engine_.get();
        copt.lane = sh->lane;
        sh->cas = std::make_unique<baselines::CasCluster>(copt);
        sh->srv_down.assign(sh->spec.n, false);
        break;
      }
    }
    for (std::size_t w = 0; w < opt_.writers_per_shard; ++w) {
      sh->free_writers.push_back(w);
    }
    for (std::size_t r = 0; r < opt_.readers_per_shard; ++r) {
      sh->free_readers.push_back(r);
    }
    if (sh->spec.protocol == ShardProtocol::Lds) {
      for (std::size_t r = 0; r < opt_.regular_readers_per_shard; ++r) {
        sh->free_regular_readers.push_back(r);
      }
    }
    shards_.push_back(std::move(sh));
  }

  // Under a membership fabric the reconfiguration state-sync path owns L2
  // regeneration; the heartbeat-driven scheduler would race view surgery
  // (its "crashed" verdict cannot tell a moved server from a dead one).
  if (opt_.enable_repair && any_lds && fabric == nullptr) {
    RepairScheduler::Options ropt = opt_.repair;
    // Per-lane budgets keep repair admission engine-local: one lane's
    // backlog never delays another lane's regeneration.
    if (parallel_) {
      ropt.budget_scope = RepairScheduler::BudgetScope::PerLane;
    }
    repair_ = std::make_unique<RepairScheduler>(ropt, &metrics_);
    repair_->set_post([this](std::size_t shard, std::function<void()> fn) {
      engine_->post(shards_.at(shard)->lane, std::move(fn));
    });
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard* sh = shards_[s].get();
      if (sh->spec.protocol != ShardProtocol::Lds) continue;
      // f2 = 0 means no crash budget at all: nothing can ever be injected,
      // and a (heavy-tail) false suspicion could never claim a slot, so a
      // manager would only risk deferring forever.  Leave it unmanaged.
      if (sh->spec.f2 == 0) continue;
      repair_->attach_shard(
          s, *sh->lds,
          /*may_replace=*/
          [sh](std::size_t i) {
            // A victim we crashed already holds a budget slot; a false
            // suspicion may only proceed while the budget has room for the
            // healthy server's data to go briefly missing.
            return sh->l2_down[i] ||
                   sh->l2_down_count.load(std::memory_order_acquire) <
                       sh->spec.f2;
          },
          /*on_replaced=*/
          [this, s, sh](std::size_t i) {
            if (!sh->l2_down[i]) {
              sh->l2_down[i] = true;
              sh->l2_down_count.fetch_add(1, std::memory_order_acq_rel);
              metrics_.counter("false_suspicions", s).inc();
            }
          },
          /*on_repaired=*/
          [sh](std::size_t i) {
            sh->l2_down[i] = false;
            sh->l2_down_count.fetch_sub(1, std::memory_order_acq_rel);
          },
          /*lane=*/sh->lane);
    }
    // Recovered objects never pass through intern(), so register them with
    // the repair scheduler here (a post-restart L2 crash must regenerate
    // them like any other object).
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard* sh = shards_[s].get();
      if (sh->keylog == nullptr || !repair_->has_shard(s)) continue;
      for (std::size_t o = 0; o < sh->objects.size(); ++o) {
        repair_->track_object(s, static_cast<ObjectId>(o));
      }
    }
    // Workers are not running yet, so arming the heartbeat timers via the
    // post hook lands them in the lanes' inboxes / queues race-free.
    repair_->start();
  }

  if (fabric != nullptr) {
    Shard* sh = shards_[0].get();
    fabric->bind(&sh->lds->net(), engine_.get(), sh->lane);
    fabric->set_view_change_hook(
        [this](const member::View& prev, const member::View& next) {
          apply_member_view(prev, next);
        });
    member::Coordinator::Hooks hooks;
    hooks.pause = [this] { pause_dispatch(); };
    hooks.drain = [this](double t) { return drain_dispatched(t); };
    hooks.resume = [this] { resume_dispatch(); };
    hooks.objects = [this] { return member_objects(); };
    hooks.repair_local =
        [this](std::size_t i,
               std::function<void(std::uint32_t, std::uint32_t)> done) {
          member_repair_local(i, std::move(done));
        };
    coordinator_ =
        std::make_unique<member::Coordinator>(*fabric, std::move(hooks));
  }

  engine_->start();  // no-op in Deterministic mode
}

StoreService::~StoreService() {
  // Remote serving stops first (no new requests enter), then the engine
  // joins its lane workers.  In-flight completion callbacks that still try
  // to reply find the transport's connections gone and drop harmlessly —
  // the RemoteServer object itself outlives the drain (member destruction
  // order), so no callback dangles.
  stop_listening();
  if (opt_.fabric != nullptr) {
    // Member teardown order: the fabric's transport joins its progress
    // threads first (no more control frames or lane posts from the wire),
    // then the coordinator's worker — only then may the engine stop.
    opt_.fabric->stop();
    coordinator_.reset();
  }
  engine_->stop();  // join lane workers before shard state is destroyed
}

Status StoreService::listen(std::uint16_t port) {
  return listen(port, ListenOptions());
}

Status StoreService::listen(std::uint16_t port, ListenOptions lo) {
  if (remote_ != nullptr && remote_->listening()) {
    return Status::InvalidArgument("already listening on port " +
                                   std::to_string(remote_->port()));
  }
  // A stopped transport cannot restart, so listen-after-stop_listening gets
  // a fresh server.  The old one is RETIRED, not destroyed: reply callbacks
  // of requests still completing inside the service captured it, and they
  // must find a live object (whose stopped transport then drops the reply).
  // Retirees are freed in ~StoreService after the engine drains.
  if (remote_ != nullptr && remote_->stopped()) {
    retired_remotes_.push_back(std::move(remote_));
  }
  if (remote_ == nullptr) {
    net::TcpTransport::Options topt;
    topt.progress_threads = lo.net_threads == 0 ? 1 : lo.net_threads;
    remote_ = std::make_unique<RemoteServer>(*this, topt);
  }
  return remote_->listen(port);
}

std::uint16_t StoreService::listen_port() const {
  return remote_ == nullptr ? 0 : remote_->port();
}

void StoreService::stop_listening() {
  if (remote_ != nullptr) remote_->stop();
}

const core::History& StoreService::shard_history(std::size_t s) const {
  const Shard& sh = *shards_.at(s);
  switch (sh.spec.protocol) {
    case ShardProtocol::Lds: return sh.lds->history();
    case ShardProtocol::Abd: return sh.abd->history();
    case ShardProtocol::Cas: return sh.cas->history();
  }
  LDS_REQUIRE(false, "unreachable");
  return sh.lds->history();
}

Result<ObjectId> StoreService::intern(Shard& sh, std::size_t shard_idx,
                                      const std::string& key) {
  auto it = sh.objects.find(key);
  if (it != sh.objects.end()) return it->second;
  // Persist-before-publish: the binding must survive before any write under
  // this id can (the record's ordinal is the id — losing it would renumber
  // every later object on the next restart).
  if (sh.keylog != nullptr) {
    if (auto st = sh.keylog->append(key); !st.ok()) {
      return Status::Unavailable("shard " + std::to_string(shard_idx) +
                                 " keylog: " + st.message());
    }
  }
  const auto obj = static_cast<ObjectId>(sh.objects.size());
  sh.objects.emplace(key, obj);
  metrics_.counter("objects_created", shard_idx).inc();
  if (repair_ && sh.spec.protocol == ShardProtocol::Lds &&
      repair_->has_shard(shard_idx)) {
    repair_->track_object(shard_idx, obj);
  }
  return obj;
}

// ---- puts (batched) ---------------------------------------------------------

void StoreService::put(const std::string& key, Value value, PutCallback cb) {
  const std::size_t s = router_.shard_of(key);
  Shard& sh = *shards_[s];
  // Admission + liveness accounting happen on the submitting thread, so a
  // quiescence poll can never observe "idle" while an accepted op is still
  // sitting in an engine inbox.  Reserve-then-verify keeps the limit exact
  // under concurrent submitters (a plain check-then-add could overshoot).
  if (sh.puts_in_flight.fetch_add(1, std::memory_order_acq_rel) >=
      opt_.admission_limit) {
    sh.puts_in_flight.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.counter("puts_rejected", s).inc();
    if (cb) {
      cb(PutResult::failure(Status::AdmissionReject(
          "shard " + std::to_string(s) + " at limit " +
          std::to_string(opt_.admission_limit))));
    }
    return;
  }
  metrics_.counter("puts", s).inc();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!parallel_) {
    // Straight through: SimEngine::post would only call the task inline, so
    // skip the std::function wrapping and key copy on the hot path.
    enqueue_put(s, key, std::move(value), std::move(cb));
    return;
  }
  engine_->hold(sh.lane);
  engine_->post(sh.lane, [this, s, key, value = std::move(value),
                          cb = std::move(cb)]() mutable {
    enqueue_put(s, key, std::move(value), std::move(cb));
  });
}

void StoreService::enqueue_put(std::size_t shard_idx, const std::string& key,
                               Value value, PutCallback cb) {
  Shard& sh = *shards_[shard_idx];
  auto interned = intern(sh, shard_idx, key);
  if (!interned.ok()) {
    metrics_.counter("puts_unavailable", shard_idx).inc();
    finish_put(shard_idx, cb, PutResult::failure(interned.status()));
    return;
  }
  const ObjectId obj = interned.value();

  // Coalesce with a queued same-key put of the open window: the newer value
  // wins and the absorbed put completes alongside it with the same tag.
  auto slot = std::find_if(sh.window.begin(), sh.window.end(),
                           [obj](const PendingPut& p) { return p.obj == obj; });
  if (slot != sh.window.end()) {
    slot->value = std::move(value);
    slot->cbs.push_back(std::move(cb));
    slot->submitted.push_back(sh.sim->now());
    metrics_.counter("puts_coalesced", shard_idx).inc();
  } else {
    PendingPut p;
    p.obj = obj;
    p.value = std::move(value);
    p.cbs.push_back(std::move(cb));
    p.submitted.push_back(sh.sim->now());
    sh.window.push_back(std::move(p));
    ++sh.writes_in_flight[obj];  // one per cluster write, not per client put
  }
  ++sh.window_puts;

  if (sh.window_puts >= opt_.max_batch || opt_.batch_window <= 0) {
    flush_window(shard_idx);
  } else if (!sh.window_open) {
    sh.window_open = true;
    sh.sim->after(opt_.batch_window,
                  [this, shard_idx, epoch = sh.window_epoch] {
                    if (shards_[shard_idx]->window_epoch == epoch) {
                      flush_window(shard_idx);
                    }
                  });
  }
}

void StoreService::flush_window(std::size_t shard_idx) {
  Shard& sh = *shards_[shard_idx];
  sh.window_open = false;
  ++sh.window_epoch;
  if (sh.window.empty()) return;
  metrics_.counter("batches", shard_idx).inc();
  metrics_.histogram("batch_size", shard_idx)
      .record(static_cast<double>(sh.window_puts));
  for (auto& p : sh.window) sh.put_queue.push_back(std::move(p));
  sh.window.clear();
  sh.window_puts = 0;
  pump_puts(shard_idx);
}

void StoreService::pump_puts(std::size_t shard_idx) {
  if (dispatch_paused_.load(std::memory_order_acquire)) return;
  Shard& sh = *shards_[shard_idx];
  while (!sh.put_queue.empty() && !sh.free_writers.empty()) {
    PendingPut p = std::move(sh.put_queue.front());
    sh.put_queue.pop_front();
    const std::size_t w = sh.free_writers.back();
    sh.free_writers.pop_back();
    dispatch_put(shard_idx, w, std::move(p));
  }
}

void StoreService::dispatch_put(std::size_t shard_idx, std::size_t writer,
                                PendingPut p) {
  Shard& sh = *shards_[shard_idx];
  Value value = std::move(p.value);
  auto done = [this, shard_idx, writer, obj = p.obj, cbs = std::move(p.cbs),
               submitted = std::move(p.submitted)](Tag tag) {
    Shard& done_sh = *shards_[shard_idx];
    auto& latency = metrics_.histogram("put_latency", shard_idx);
    const PutResult result = PutResult::success(tag);
    // Conditional-put guards: the committed tag becomes visible to later
    // verifications even when their read raced this write's completion.
    --done_sh.writes_in_flight[obj];
    Tag& committed = done_sh.last_committed[obj];
    if (tag > committed) committed = tag;
    // Gauges drop before the callbacks run: a callback may wake a sync
    // waiter (or poll outstanding()) and must see itself completed.
    done_sh.puts_in_flight.fetch_sub(cbs.size(), std::memory_order_acq_rel);
    outstanding_.fetch_sub(cbs.size(), std::memory_order_acq_rel);
    for (std::size_t i = 0; i < cbs.size(); ++i) {
      latency.record(done_sh.sim->now() - submitted[i]);
      if (cbs[i]) {
        // Coalescing keeps the LAST submitted value (newest wins), so every
        // earlier callback belongs to an absorbed put.
        PutResult r = result;
        r.coalesced = i + 1 < cbs.size();
        cbs[i](r);
      }
    }
    for (std::size_t i = 0; i < cbs.size(); ++i) {
      engine_->release(done_sh.lane);
    }
    done_sh.free_writers.push_back(writer);
    pump_puts(shard_idx);
  };
  cluster_write(sh, writer, p.obj, std::move(value), std::move(done));
}

// ---- gets -------------------------------------------------------------------

void StoreService::get(const std::string& key, GetCallback cb, ReadMode mode) {
  const std::size_t s = router_.shard_of(key);
  Shard& sh = *shards_[s];
  // Regular reads need an LDS shard with a provisioned pool; the shard spec
  // is immutable, so this check is safe from any submitting thread.
  if (mode == ReadMode::Regular &&
      (sh.spec.protocol != ShardProtocol::Lds ||
       opt_.regular_readers_per_shard == 0)) {
    metrics_.counter("gets_invalid", s).inc();
    if (cb) {
      cb(GetResult::failure(Status::InvalidArgument(
          "regular reads not provisioned on shard " + std::to_string(s))));
    }
    return;
  }
  // Tag-only validation rounds are an LDS protocol feature (the committed-tag
  // quorum phase); other shard protocols have no equivalent, so the client
  // learns to stop trying via InvalidArgument.
  if (mode == ReadMode::TagOnly && sh.spec.protocol != ShardProtocol::Lds) {
    metrics_.counter("gets_invalid", s).inc();
    if (cb) {
      cb(GetResult::failure(Status::InvalidArgument(
          "tag-only reads require an LDS shard (shard " + std::to_string(s) +
          ")")));
    }
    return;
  }
  metrics_.counter(mode == ReadMode::TagOnly ? "gets_tag_only" : "gets", s)
      .inc();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!parallel_) {
    enqueue_get(s, key, std::move(cb), mode);
    return;
  }
  engine_->hold(sh.lane);
  engine_->post(sh.lane, [this, s, key, cb = std::move(cb), mode]() mutable {
    enqueue_get(s, key, std::move(cb), mode);
  });
}

void StoreService::enqueue_get(std::size_t shard_idx, const std::string& key,
                               GetCallback cb, ReadMode mode) {
  Shard& sh = *shards_[shard_idx];
  const auto it = sh.objects.find(key);
  if (it == sh.objects.end()) {
    // Never written on this shard: NotFound without interning (probing reads
    // must not grow per-shard state) and without a cluster round trip.
    metrics_.counter("gets_not_found", shard_idx).inc();
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);  // before cb
    if (cb) {
      cb(GetResult::failure(Status::NotFound(
          "key never written on shard " + std::to_string(shard_idx))));
    }
    engine_->release(sh.lane);  // no-op under the deterministic engine
    return;
  }
  PendingGet g;
  g.obj = it->second;
  g.cb = std::move(cb);
  g.submitted = sh.sim->now();
  g.mode = mode;
  (mode == ReadMode::Regular ? sh.regular_get_queue : sh.get_queue)
      .push_back(std::move(g));
  pump_gets(shard_idx);
}

void StoreService::pump_gets(std::size_t shard_idx) {
  if (dispatch_paused_.load(std::memory_order_acquire)) return;
  Shard& sh = *shards_[shard_idx];
  while (!sh.get_queue.empty() && !sh.free_readers.empty()) {
    PendingGet g = std::move(sh.get_queue.front());
    sh.get_queue.pop_front();
    const std::size_t r = sh.free_readers.back();
    sh.free_readers.pop_back();
    dispatch_get(shard_idx, r, std::move(g));
  }
  while (!sh.regular_get_queue.empty() && !sh.free_regular_readers.empty()) {
    PendingGet g = std::move(sh.regular_get_queue.front());
    sh.regular_get_queue.pop_front();
    const std::size_t r = sh.free_regular_readers.back();
    sh.free_regular_readers.pop_back();
    dispatch_get(shard_idx, r, std::move(g));
  }
}

void StoreService::dispatch_get(std::size_t shard_idx, std::size_t reader,
                                PendingGet g) {
  Shard& sh = *shards_[shard_idx];
  const ObjectId obj = g.obj;
  const ReadMode mode = g.mode;
  const bool internal = g.internal;
  auto done = [this, shard_idx, reader, mode, internal, cb = std::move(g.cb),
               submitted = g.submitted](Tag tag, Value value) {
    Shard& done_sh = *shards_[shard_idx];
    if (!internal) {
      metrics_
          .histogram(
              mode == ReadMode::TagOnly ? "validate_latency" : "get_latency",
              shard_idx)
          .record(done_sh.sim->now() - submitted);
      // Gauge drops before the callback runs, as in dispatch_put.
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (cb) cb(GetResult::success(tag, std::move(value)));
    if (!internal) engine_->release(done_sh.lane);
    (mode == ReadMode::Regular ? done_sh.free_regular_readers
                               : done_sh.free_readers)
        .push_back(reader);
    pump_gets(shard_idx);
  };
  cluster_read(sh, reader, obj, std::move(done), mode);
}

// ---- conditional puts -------------------------------------------------------

void StoreService::put_if(const std::string& key, Value value,
                          Version expected, PutCallback cb) {
  const std::size_t s = router_.shard_of(key);
  Shard& sh = *shards_[s];
  if (sh.puts_in_flight.fetch_add(1, std::memory_order_acq_rel) >=
      opt_.admission_limit) {
    sh.puts_in_flight.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.counter("puts_rejected", s).inc();
    if (cb) {
      cb(PutResult::failure(Status::AdmissionReject(
          "shard " + std::to_string(s) + " at limit " +
          std::to_string(opt_.admission_limit))));
    }
    return;
  }
  metrics_.counter("puts_conditional", s).inc();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!parallel_) {
    enqueue_put_if(s, key, std::move(value), expected, std::move(cb));
    return;
  }
  engine_->hold(sh.lane);
  engine_->post(sh.lane, [this, s, key, value = std::move(value), expected,
                          cb = std::move(cb)]() mutable {
    enqueue_put_if(s, key, std::move(value), expected, std::move(cb));
  });
}

void StoreService::finish_put(std::size_t shard_idx, const PutCallback& cb,
                              const PutResult& r) {
  Shard& sh = *shards_[shard_idx];
  sh.puts_in_flight.fetch_sub(1, std::memory_order_acq_rel);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  if (cb) cb(r);
  engine_->release(sh.lane);
}

void StoreService::enqueue_put_if(std::size_t shard_idx,
                                  const std::string& key, Value value,
                                  Version expected, PutCallback cb) {
  Shard& sh = *shards_[shard_idx];
  const auto it = sh.objects.find(key);

  // Queue the (now verified) write directly: conditional puts bypass the
  // coalescing window so they are never absorbed and always return their
  // own tag.
  auto commit = [this, shard_idx](Value v, ObjectId obj, PutCallback pcb) {
    Shard& csh = *shards_[shard_idx];
    PendingPut p;
    p.obj = obj;
    p.value = std::move(v);
    p.cbs.push_back(std::move(pcb));
    p.submitted.push_back(csh.sim->now());
    csh.put_queue.push_back(std::move(p));
    ++csh.writes_in_flight[obj];  // later put_ifs must see this write
    pump_puts(shard_idx);
  };

  if (it == sh.objects.end()) {
    // A never-written key's register holds v0 at t0, so it verifies against
    // Version(kTag0).  (No real write ever carries t0: writers always bump
    // z, so this cannot collide with a committed version.)
    if (expected == Version(kTag0)) {
      auto interned = intern(sh, shard_idx, key);
      if (!interned.ok()) {
        metrics_.counter("puts_unavailable", shard_idx).inc();
        finish_put(shard_idx, cb, PutResult::failure(interned.status()));
        return;
      }
      commit(std::move(value), interned.value(), std::move(cb));
    } else {
      metrics_.counter("puts_aborted", shard_idx).inc();
      finish_put(shard_idx, cb,
                 PutResult::failure(Status::Aborted(
                     "expected version " + expected.to_string() +
                     ", key never written")));
    }
    return;
  }

  // Verification read through the shard's reader pool.  `internal` keeps the
  // put_if's own outstanding/admission slots in place until the final
  // verdict (the read is still a genuine protocol read and is recorded in
  // the shard history).
  PendingGet g;
  g.obj = it->second;
  g.submitted = sh.sim->now();
  g.mode = ReadMode::Atomic;
  g.internal = true;
  g.cb = [this, shard_idx, expected, value = std::move(value),
          cb = std::move(cb), commit,
          obj = it->second](const GetResult& r) mutable {
    Shard& vsh = *shards_[shard_idx];
    // Closing the verify-then-write window: a same-key write that is still
    // in flight — or that committed while the verification read was in
    // progress (the read only guarantees freshness against writes completed
    // before its invocation) — may not be reflected in r.tag, and blindly
    // committing would silently overwrite it.  Such writes force a
    // (possibly spurious) abort; anything arriving after this point is
    // concurrent with the conditional write, so either linearization is
    // valid and no lost update is possible.
    const auto in_flight = vsh.writes_in_flight.find(obj);
    const auto committed = vsh.last_committed.find(obj);
    const bool racing =
        (in_flight != vsh.writes_in_flight.end() && in_flight->second > 0) ||
        (committed != vsh.last_committed.end() &&
         committed->second > expected.tag());
    if (racing || Version(r.tag) != expected) {
      metrics_.counter("puts_aborted", shard_idx).inc();
      const Tag observed =
          committed != vsh.last_committed.end() && committed->second > r.tag
              ? committed->second
              : r.tag;
      PutResult abort = PutResult::failure(Status::Aborted(
          racing ? "concurrent write on the key (re-read and retry)"
                 : "expected version " + expected.to_string() +
                       ", observed " + Version(observed).to_string()));
      abort.tag = observed;  // surface the observed version for retry loops
      abort.version = Version(observed);
      finish_put(shard_idx, cb, abort);
      return;
    }
    commit(std::move(value), obj, std::move(cb));
  };
  sh.get_queue.push_back(std::move(g));
  pump_gets(shard_idx);
}

void StoreService::multi_get(std::vector<std::string> keys,
                             MultiGetCallback cb) {
  LDS_REQUIRE(cb != nullptr, "multi_get: null callback");
  metrics_.counter("multi_gets").inc();
  // An empty key vector must still fire exactly once: a gather that never
  // sees a sub-op completion would otherwise leave the caller (and any sync
  // wrapper spinning on it) hung forever.
  if (keys.empty()) {
    cb({});
    return;
  }
  auto gather = detail::make_gather<GetResult>(keys.size(), std::move(cb));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    get(keys[i], [gather, i](const GetResult& r) {
      detail::gather_finish(gather, i, r);
    });
  }
}

void StoreService::multi_put(std::vector<KeyValue> entries,
                             MultiPutCallback cb) {
  LDS_REQUIRE(cb != nullptr, "multi_put: null callback");
  metrics_.counter("multi_puts").inc();
  if (entries.empty()) {  // fire exactly once, as in multi_get
    cb({});
    return;
  }
  auto gather = detail::make_gather<PutResult>(entries.size(), std::move(cb));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    put(entries[i].key, std::move(entries[i].value),
        [gather, i](const PutResult& r) {
          detail::gather_finish(gather, i, r);
        });
  }
}

// ---- cluster dispatch -------------------------------------------------------

void StoreService::cluster_write(Shard& sh, std::size_t writer, ObjectId obj,
                                 Value value, std::function<void(Tag)> done) {
  switch (sh.spec.protocol) {
    case ShardProtocol::Lds:
      sh.lds->writer(writer).write(obj, std::move(value), std::move(done));
      return;
    case ShardProtocol::Abd:
      sh.abd->writer(writer).write(obj, std::move(value), std::move(done));
      return;
    case ShardProtocol::Cas:
      sh.cas->writer(writer).write(obj, std::move(value), std::move(done));
      return;
  }
}

void StoreService::cluster_read(Shard& sh, std::size_t reader, ObjectId obj,
                                std::function<void(Tag, Value)> done,
                                ReadMode mode) {
  switch (sh.spec.protocol) {
    case ShardProtocol::Lds:
      if (mode == ReadMode::TagOnly) {
        sh.lds->reader(reader).read_tag(obj, std::move(done));
        return;
      }
      (mode == ReadMode::Regular ? sh.lds->regular_reader(reader)
                                 : sh.lds->reader(reader))
          .read(obj, std::move(done));
      return;
    case ShardProtocol::Abd:
      sh.abd->reader(reader).read(obj, std::move(done));
      return;
    case ShardProtocol::Cas:
      sh.cas->reader(reader).read(obj, std::move(done));
      return;
  }
}

// ---- sync wrappers ----------------------------------------------------------

using detail::run_op_sync;

PutResult StoreService::put_sync(const std::string& key, Value value) {
  return run_op_sync<PutResult>(
      *engine_, parallel_, "put_sync: simulation drained before completion",
      [&](auto done) {
        put(key, std::move(value),
            [done = std::move(done)](const PutResult& r) { done(r); });
      });
}

GetResult StoreService::get_sync(const std::string& key, ReadMode mode) {
  return run_op_sync<GetResult>(
      *engine_, parallel_, "get_sync: simulation drained before completion",
      [&](auto done) {
        get(key, [done = std::move(done)](const GetResult& r) { done(r); },
            mode);
      });
}

PutResult StoreService::put_if_sync(const std::string& key, Value value,
                                    Version expected) {
  return run_op_sync<PutResult>(
      *engine_, parallel_,
      "put_if_sync: simulation drained before completion", [&](auto done) {
        put_if(key, std::move(value), expected,
               [done = std::move(done)](const PutResult& r) { done(r); });
      });
}

std::vector<GetResult> StoreService::multi_get_sync(
    std::vector<std::string> keys) {
  return run_op_sync<std::vector<GetResult>>(
      *engine_, parallel_,
      "multi_get_sync: simulation drained before completion",
      [&](auto done) { multi_get(std::move(keys), std::move(done)); });
}

std::vector<PutResult> StoreService::multi_put_sync(
    std::vector<KeyValue> entries) {
  return run_op_sync<std::vector<PutResult>>(
      *engine_, parallel_,
      "multi_put_sync: simulation drained before completion",
      [&](auto done) { multi_put(std::move(entries), std::move(done)); });
}

// ---- crash injection & quiescence -------------------------------------------

namespace {
std::size_t pick_healthy(const std::vector<bool>& down, Rng& rng) {
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < down.size(); ++i) {
    if (!down[i]) healthy.push_back(i);
  }
  LDS_REQUIRE(!healthy.empty(), "pick_healthy: no healthy server");
  return healthy[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(healthy.size()) - 1))];
}
}  // namespace

bool StoreService::inject_crash_on_lane(std::size_t shard, Rng& rng) {
  Shard& sh = *shards_.at(shard);
  if (sh.spec.protocol != ShardProtocol::Lds) {
    if (sh.srv_down_count.load(std::memory_order_acquire) >= sh.spec.f) {
      return false;
    }
    const std::size_t victim = pick_healthy(sh.srv_down, rng);
    sh.srv_down[victim] = true;
    sh.srv_down_count.fetch_add(1, std::memory_order_acq_rel);
    metrics_.counter("crashes", shard).inc();
    if (sh.spec.protocol == ShardProtocol::Abd) {
      sh.abd->crash_server(victim);
    } else {
      sh.cas->crash_server(victim);
    }
    return true;
  }

  const bool can_l1 =
      sh.l1_down_count.load(std::memory_order_acquire) < sh.spec.f1;
  const bool can_l2 =
      sh.l2_down_count.load(std::memory_order_acquire) < sh.spec.f2;
  if (!can_l1 && !can_l2) return false;
  const bool hit_l2 = can_l2 && (!can_l1 || rng.bernoulli(0.5));
  if (hit_l2) {
    const std::size_t victim = pick_healthy(sh.l2_down, rng);
    sh.l2_down[victim] = true;
    sh.l2_down_count.fetch_add(1, std::memory_order_acq_rel);
    metrics_.counter("crashes_l2", shard).inc();
    sh.lds->crash_l2(victim);
  } else {
    const std::size_t victim = pick_healthy(sh.l1_down, rng);
    sh.l1_down[victim] = true;
    sh.l1_down_count.fetch_add(1, std::memory_order_acq_rel);
    metrics_.counter("crashes_l1", shard).inc();
    sh.lds->crash_l1(victim);
  }
  return true;
}

bool StoreService::inject_crash(std::size_t shard, Rng& rng) {
  if (!parallel_) return inject_crash_on_lane(shard, rng);
  // Hop to the shard's lane and wait for the verdict.  The calling thread
  // blocks, so handing it our Rng reference is race-free.
  return run_op_sync<bool>(
      *engine_, /*parallel=*/true, "inject_crash: cannot stall",
      [&](auto done) {
        engine_->post(shards_.at(shard)->lane, [&, done = std::move(done)] {
          done(inject_crash_on_lane(shard, rng));
        });
      });
}

void StoreService::inject_crash_async(std::size_t shard, std::uint64_t seed,
                                      std::function<void(bool)> done) {
  pending_injections_.fetch_add(1, std::memory_order_acq_rel);
  engine_->post(shards_.at(shard)->lane,
                [this, shard, seed, done = std::move(done)] {
                  Rng rng(seed);
                  const bool r = inject_crash_on_lane(shard, rng);
                  pending_injections_.fetch_sub(1, std::memory_order_acq_rel);
                  if (done) done(r);
                });
}

bool StoreService::idle() const {
  if (outstanding_.load(std::memory_order_acquire) != 0) return false;
  if (pending_injections_.load(std::memory_order_acquire) != 0) return false;
  if (repair_ != nullptr) {
    if (!repair_->quiet()) return false;
    // Every injected (or falsely suspected) L2 outage must have healed.
    for (const auto& sh : shards_) {
      if (sh->spec.protocol == ShardProtocol::Lds &&
          sh->l2_down_count.load(std::memory_order_acquire) > 0) {
        return false;
      }
    }
  }
  return true;
}

void StoreService::quiesce(const std::function<bool()>& drained) {
  // Re-arm the heartbeat loops: a previous quiesce stopped them, and crashes
  // injected since then still need detection (start() is idempotent).
  if (repair_ != nullptr) repair_->start();
  auto settled = [&] { return idle() && (!drained || drained()); };
  if (!parallel_) {
    // Safety valve: a healthy service reaches idle() in well under this many
    // events; hitting the cap means a liveness bug, so abort loudly.
    std::size_t guard = 100'000'000;
    net::Simulator& sim = engine_->lane_sim(0);
    while (!settled() && guard > 0 && sim.step()) {
      --guard;
    }
    LDS_REQUIRE(settled(), "StoreService::quiesce: stalled with work pending");
    if (repair_ != nullptr) repair_->stop();
    while (sim.step()) {
    }
    return;
  }
  const bool ok = engine_->drain_until(settled);
  LDS_REQUIRE(ok && settled(),
              "StoreService::quiesce: stalled with work pending");
  if (repair_ != nullptr) repair_->stop();  // posted to each shard's lane
  engine_->drain();
}

// ---- membership (Options::fabric) --------------------------------------------

void StoreService::admin_reconfig(
    std::uint8_t op, std::vector<std::uint32_t> l2_indices, std::string host,
    std::uint16_t port, std::function<void(Status, std::uint64_t)> done) {
  if (coordinator_ == nullptr) {
    if (done) {
      done(Status::InvalidArgument("service has no membership fabric"), 0);
    }
    return;
  }
  if (op == 0) {
    if (done) done(Status::Ok(), opt_.fabric->epoch());
    return;
  }
  if (op == 1) {
    coordinator_->move_l2(std::move(l2_indices), std::move(host), port,
                          [done = std::move(done)](Status st,
                                                   std::uint64_t epoch) {
                            if (done) done(std::move(st), epoch);
                          });
    return;
  }
  if (done) {
    done(Status::InvalidArgument("unknown reconfig op " + std::to_string(op)),
         0);
  }
}

void StoreService::pause_dispatch() {
  dispatch_paused_.store(true, std::memory_order_release);
}

void StoreService::resume_dispatch() {
  dispatch_paused_.store(false, std::memory_order_release);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    engine_->post(shards_[s]->lane, [this, s] {
      pump_puts(s);
      pump_gets(s);
    });
  }
}

bool StoreService::drain_dispatched(double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    bool idle = true;
    for (std::size_t s = 0; s < shards_.size() && idle; ++s) {
      Shard* sh = shards_[s].get();
      auto done = std::make_shared<std::promise<bool>>();
      auto fut = done->get_future();
      engine_->post(sh->lane, [this, sh, done] {
        const std::size_t regular =
            sh->spec.protocol == ShardProtocol::Lds
                ? opt_.regular_readers_per_shard
                : 0;
        done->set_value(sh->free_writers.size() == opt_.writers_per_shard &&
                        sh->free_readers.size() == opt_.readers_per_shard &&
                        sh->free_regular_readers.size() == regular);
      });
      if (fut.wait_for(std::chrono::seconds(5)) !=
          std::future_status::ready) {
        return false;
      }
      if (!fut.get()) idle = false;
    }
    if (idle) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void StoreService::apply_member_view(const member::View&,
                                     const member::View& next) {
  // Placement surgery, on shard 0's lane (the fabric's view-change hook).
  // Adopted L2s come up EMPTY; the coordinator's state-sync step repairs
  // them right after dispatch resumes.
  Shard& sh = *shards_[0];
  core::LdsCluster& c = *sh.lds;
  const member::ProcessId self = opt_.fabric->self();
  for (std::size_t j = 0; j < sh.spec.n1; ++j) {
    const NodeId id = core::kL1IdBase + static_cast<NodeId>(j);
    const bool mine = next.process_of(id) == self;
    if (mine && !c.l1_local(j)) {
      c.adopt_l1(j);
    } else if (!mine && c.l1_local(j)) {
      c.release_l1(j);
    }
  }
  for (std::size_t i = 0; i < sh.spec.n2; ++i) {
    const NodeId id = core::kL2IdBase + static_cast<NodeId>(i);
    const bool mine = next.process_of(id) == self;
    if (mine && !c.l2_local(i)) {
      c.adopt_l2(i);
    } else if (!mine && c.l2_local(i)) {
      c.release_l2(i);
    }
  }
}

std::vector<ObjectId> StoreService::member_objects() {
  Shard* sh = shards_[0].get();
  auto done = std::make_shared<std::promise<std::vector<ObjectId>>>();
  auto fut = done->get_future();
  engine_->post(sh->lane, [sh, done] {
    std::vector<ObjectId> out;
    out.reserve(sh->objects.size());
    for (const auto& [key, obj] : sh->objects) out.push_back(obj);
    done->set_value(std::move(out));
  });
  if (fut.wait_for(std::chrono::seconds(5)) != std::future_status::ready) {
    return {};
  }
  return fut.get();
}

void StoreService::member_repair_local(
    std::size_t l2_index,
    std::function<void(std::uint32_t, std::uint32_t)> done) {
  Shard* sh = shards_[0].get();
  engine_->post(sh->lane, [this, sh, l2_index, done = std::move(done)]() mutable {
    auto objects = std::make_shared<std::vector<ObjectId>>();
    objects->reserve(sh->objects.size());
    for (const auto& [key, obj] : sh->objects) objects->push_back(obj);
    member_repair_step(l2_index, std::move(objects), 0, 0, 0, std::move(done));
  });
}

void StoreService::member_repair_step(
    std::size_t l2_index, std::shared_ptr<std::vector<ObjectId>> objects,
    std::size_t next, std::uint32_t repaired, std::uint32_t failed,
    std::function<void(std::uint32_t, std::uint32_t)> done) {
  Shard* sh = shards_[0].get();
  if (next >= objects->size() || !sh->lds->l2_local(l2_index)) {
    if (done) done(repaired, failed);
    return;
  }
  sh->lds->l2(l2_index).repair_object(
      (*objects)[next],
      [this, l2_index, objects, next, repaired, failed,
       done = std::move(done)](std::optional<Tag> tag) mutable {
        member_repair_step(l2_index, objects, next + 1,
                           repaired + (tag.has_value() ? 1 : 0),
                           failed + (tag.has_value() ? 0 : 1),
                           std::move(done));
      });
}

}  // namespace lds::store
