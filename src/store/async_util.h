// Internal async plumbing shared by StoreService and store::Client:
//
//   * run_op_sync — the one sync-wait cell behind every *_sync wrapper.
//     Deterministic mode spins the lane-0 simulator (timers and callbacks
//     fire as events); Parallel mode blocks the calling thread until a lane
//     completes the op.  notify happens under the lock so the waiter cannot
//     destroy the cell while the signaling lane still touches it.
//   * Gather — the scatter-gather block behind every multi-key op.
//     Sub-ops settle on their own lanes; the atomic counter makes the last
//     completion (wherever it runs) fire the callback exactly once.
//
// Not part of the public API; include from store/*.cpp only.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "net/engine.h"

namespace lds::store::detail {

template <typename R, typename Invoke>
R run_op_sync(net::Engine& engine, bool parallel, const char* what,
              Invoke&& invoke) {
  R out{};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  invoke([&](R r) {
    std::lock_guard<std::mutex> lk(mu);
    out = std::move(r);
    done = true;
    cv.notify_one();
  });
  if (!parallel) {
    net::Simulator& sim = engine.lane_sim(0);
    while (!done && sim.step()) {
    }
    LDS_REQUIRE(done, what);
  } else {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
  }
  return out;
}

template <typename ResultT, typename CallbackT>
struct Gather {
  std::vector<ResultT> results;
  std::atomic<std::size_t> remaining{0};
  CallbackT cb;
};

template <typename ResultT, typename CallbackT>
std::shared_ptr<Gather<ResultT, CallbackT>> make_gather(std::size_t n,
                                                        CallbackT cb) {
  auto g = std::make_shared<Gather<ResultT, CallbackT>>();
  g->results.resize(n);
  g->remaining.store(n, std::memory_order_release);
  g->cb = std::move(cb);
  return g;
}

/// Record sub-op i's result; the last one fires the gathered callback.
template <typename GatherT, typename ResultT>
void gather_finish(const std::shared_ptr<GatherT>& g, std::size_t i,
                   const ResultT& r) {
  g->results[i] = r;
  if (g->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g->cb(std::move(g->results));
  }
}

}  // namespace lds::store::detail
