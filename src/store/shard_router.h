// Consistent-hash shard routing for the multi-object store.
//
// Keys are hashed onto a 64-bit ring; each live shard owns `vnodes` points
// on the ring, and a key belongs to the shard of the first point at or after
// its hash (wrapping).  Virtual nodes smooth the load split, and ring
// membership changes (add_shard / remove_shard) move only the key ranges
// adjacent to the affected points — about 1/S of the space — instead of
// rehashing everything, which is the property a rebalancing store needs.
// moved_fraction() computes that displacement *exactly* by sweeping the
// merged ring, so tests and capacity planning don't rely on sampling.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace lds::store {

class ShardRouter {
 public:
  struct Options {
    /// Ring points per shard.  More vnodes = smoother split, bigger ring.
    std::size_t vnodes = 64;
    /// Seed for the ring-point hashes (shared by replicas of a deployment;
    /// two routers agree on routing iff seeds and membership agree).
    std::uint64_t seed = 0x1d5a2d1f00c0ffeeull;
  };

  explicit ShardRouter(std::size_t num_shards)
      : ShardRouter(num_shards, Options{}) {}
  ShardRouter(std::size_t num_shards, Options opt);

  /// Shard owning `key`.  Requires at least one live shard.
  std::size_t shard_of(std::string_view key) const {
    return shard_of_hash(hash_key(key));
  }
  std::size_t shard_of_hash(std::uint64_t h) const;

  /// FNV-1a 64-bit over the key bytes.
  static std::uint64_t hash_key(std::string_view key);

  /// Add a new shard to the ring; returns its id (ids are dense and stable:
  /// a removed shard's id is never reused).
  std::size_t add_shard();
  /// Take a shard out of the ring; its key ranges fall to the successors.
  void remove_shard(std::size_t shard);
  bool is_live(std::size_t shard) const;

  std::size_t num_live() const { return live_count_; }
  /// Total shard ids ever created (live or removed).
  std::size_t num_ids() const { return live_.size(); }

  /// Map shard ids onto execution-engine lanes (see net/engine.h): shard s
  /// runs on lane s % num_lanes, so shards spread evenly and a
  /// Deterministic deployment (1 lane) puts everything on lane 0.  The
  /// mapping is fixed at assignment; re-assigning with a different lane
  /// count is allowed only while no engine is running on the old mapping.
  void assign_lanes(std::size_t num_lanes);
  std::size_t num_lanes() const { return num_lanes_; }
  std::size_t lane_of(std::size_t shard) const;

  /// Exact fraction of the 2^64 hash space whose owning shard differs
  /// between two rings (rebalance displacement).  Rings should share vnode
  /// and seed options for the number to be meaningful.
  static double moved_fraction(const ShardRouter& a, const ShardRouter& b);

  /// Exact fraction of the hash space each shard id owns (by ring measure);
  /// removed shards own 0.
  std::vector<double> ownership() const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  void rebuild();

  Options opt_;
  std::vector<bool> live_;
  std::size_t live_count_ = 0;
  std::size_t num_lanes_ = 1;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace lds::store
