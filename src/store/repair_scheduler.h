// Background repair scheduling across the shards of a store service.
//
// Each LDS shard gets its own core::RepairManager (heartbeat failure
// detection + replace-and-regenerate orchestration, riding the shard's own
// simulated network).  The scheduler adds the cross-shard policy a
// deployment needs: a global budget of concurrently running server repairs
// (regeneration reads d helper elements, so unbounded repair concurrency
// would starve foreground traffic), per-shard veto hooks so the service's
// failure-budget accounting stays sound even under false suspicion, and
// aggregate introspection/metrics for the harness and benches.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "lds/cluster.h"
#include "lds/repair_manager.h"
#include "store/metrics.h"

namespace lds::store {

class RepairScheduler {
 public:
  struct Options {
    /// Global cap on servers being repaired at once, across all shards.
    std::size_t max_concurrent = 2;
    double heartbeat_period = 2.0;
    double suspect_after = 9.0;
    /// Re-ask interval while the global budget (or a shard veto) defers a
    /// repair, and backoff for object rounds that raced writes.
    double budget_retry = 2.0;
    double object_retry = 5.0;
    NodeId manager_id = 40000;
  };

  explicit RepairScheduler(Options opt, MetricsRegistry* metrics = nullptr)
      : opt_(opt), metrics_(metrics) {}

  /// Attach one LDS shard.  `may_replace(l2)` is the service's veto — e.g.
  /// "replacing this healthy-looking server would overdraw f2" on a false
  /// suspicion; `on_replaced(l2)` fires when the fresh (empty) replacement
  /// is installed; `on_repaired(l2)` when it holds every object again.
  /// All three may be null.
  void attach_shard(std::size_t shard, core::LdsCluster& cluster,
                    std::function<bool(std::size_t)> may_replace = {},
                    std::function<void(std::size_t)> on_replaced = {},
                    std::function<void(std::size_t)> on_repaired = {});

  /// Register an object for repair coverage on its shard.
  void track_object(std::size_t shard, ObjectId obj);

  void start();
  void stop();

  std::size_t in_flight() const { return in_flight_; }
  std::size_t peak_in_flight() const { return peak_in_flight_; }
  /// Servers fully restored (every tracked object regenerated).
  std::size_t servers_repaired() const { return servers_repaired_; }
  /// Object-repair rounds attempted / failed-and-retried, across shards.
  std::size_t object_rounds_started() const;
  std::size_t object_rounds_failed() const;
  /// Servers currently suspected (crashed, under repair, or queued for the
  /// budget) across shards.
  std::size_t suspected() const;
  /// True when no repair work is pending anywhere.
  bool quiet() const { return suspected() == 0 && in_flight_ == 0; }

  core::RepairManager& manager(std::size_t shard) {
    return *managers_.at(shard);
  }
  bool has_shard(std::size_t shard) const {
    return managers_.contains(shard);
  }

 private:
  Options opt_;
  MetricsRegistry* metrics_;
  std::map<std::size_t, std::unique_ptr<core::RepairManager>> managers_;
  std::size_t in_flight_ = 0;
  std::size_t peak_in_flight_ = 0;
  std::size_t servers_repaired_ = 0;
};

}  // namespace lds::store
