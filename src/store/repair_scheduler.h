// Background repair scheduling across the shards of a store service.
//
// Each LDS shard gets its own core::RepairManager (heartbeat failure
// detection + replace-and-regenerate orchestration, riding the shard's own
// simulated network).  The scheduler adds the cross-shard policy a
// deployment needs: a budget of concurrently running server repairs
// (regeneration reads d helper elements, so unbounded repair concurrency
// would starve foreground traffic), per-shard veto hooks so the service's
// failure-budget accounting stays sound even under false suspicion, and
// aggregate introspection/metrics for the harness and benches.
//
// Thread-safety: the budget and aggregate counters are mutex-guarded and the
// per-manager introspection it sums is atomic, because under a
// ParallelEngine each manager runs on its shard's lane.  The budget can be
// scoped globally (Deterministic mode: one simulator, one budget — the
// pre-engine behavior, bit-identical) or per lane (Parallel mode: each
// engine lane gets its own max_concurrent, so repair admission never makes
// one lane wait on another's backlog).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "lds/cluster.h"
#include "lds/repair_manager.h"
#include "store/metrics.h"

namespace lds::store {

class RepairScheduler {
 public:
  /// What the max_concurrent budget applies to.
  enum class BudgetScope { Global, PerLane };

  struct Options {
    /// Cap on servers being repaired at once, per budget scope.
    std::size_t max_concurrent = 2;
    BudgetScope budget_scope = BudgetScope::Global;
    double heartbeat_period = 2.0;
    double suspect_after = 9.0;
    /// Re-ask interval while the budget (or a shard veto) defers a
    /// repair, and backoff for object rounds that raced writes.
    double budget_retry = 2.0;
    double object_retry = 5.0;
    NodeId manager_id = 40000;
  };

  explicit RepairScheduler(Options opt, MetricsRegistry* metrics = nullptr)
      : opt_(opt), metrics_(metrics) {}

  /// Route a shard's manager start/stop onto its execution lane (required
  /// under a ParallelEngine, where arming a heartbeat timer touches the
  /// lane's simulator).  Default: run inline.
  using Post = std::function<void(std::size_t shard, std::function<void()>)>;
  void set_post(Post post) { post_ = std::move(post); }

  /// Attach one LDS shard running on engine lane `lane`.  `may_replace(l2)`
  /// is the service's veto — e.g. "replacing this healthy-looking server
  /// would overdraw f2" on a false suspicion; `on_replaced(l2)` fires when
  /// the fresh (empty) replacement is installed; `on_repaired(l2)` when it
  /// holds every object again.  All three may be null and are invoked on the
  /// shard's lane.
  void attach_shard(std::size_t shard, core::LdsCluster& cluster,
                    std::function<bool(std::size_t)> may_replace = {},
                    std::function<void(std::size_t)> on_replaced = {},
                    std::function<void(std::size_t)> on_repaired = {},
                    std::size_t lane = 0);

  /// Register an object for repair coverage on its shard.  Must run on the
  /// shard's lane (or before the engine starts).
  void track_object(std::size_t shard, ObjectId obj);

  void start();
  void stop();

  std::size_t in_flight() const;
  std::size_t peak_in_flight() const;
  /// Servers fully restored (every tracked object regenerated).
  std::size_t servers_repaired() const {
    return servers_repaired_.load(std::memory_order_relaxed);
  }
  /// Object-repair rounds attempted / failed-and-retried, across shards.
  std::size_t object_rounds_started() const;
  std::size_t object_rounds_failed() const;
  /// Servers currently suspected (crashed, under repair, or queued for the
  /// budget) across shards.
  std::size_t suspected() const;
  /// True when no repair work is pending anywhere.  Safe to poll from a
  /// driving thread while lanes run.
  bool quiet() const { return suspected() == 0 && in_flight() == 0; }

  core::RepairManager& manager(std::size_t shard) {
    return *managers_.at(shard);
  }
  bool has_shard(std::size_t shard) const {
    return managers_.contains(shard);
  }

 private:
  Options opt_;
  MetricsRegistry* metrics_;
  Post post_;
  std::map<std::size_t, std::unique_ptr<core::RepairManager>> managers_;
  std::map<std::size_t, std::size_t> lane_of_shard_;
  mutable std::mutex mu_;  ///< guards the budget accounting below
  std::map<std::size_t, std::size_t> in_flight_by_lane_;
  std::size_t in_flight_total_ = 0;
  std::size_t peak_in_flight_ = 0;
  std::atomic<std::size_t> servers_repaired_{0};
};

}  // namespace lds::store
