#include "store/remote.h"

#include <chrono>

#include "common/assert.h"

namespace lds::store {

namespace {

using net::codec::Family;
using net::codec::FamilyCodec;
using net::codec::kFrameOverheadBytes;
using net::codec::kTagWireBytes;
using net::codec::overloaded;
using net::codec::Reader;
using net::codec::WireInfo;
using net::codec::Writer;

Status truncated(const std::string& what) {
  return net::codec::truncated_frame(what);
}

/// Wire layouts (after the generic header, whose payload-length field names
/// the trailing value extent):
///   0 RemotePut    key-blob | value payload
///   1 RemoteGet    u8 mode | key-blob
///   2 RemotePutIf  u8 expected_known | tag | key-blob | value payload
///   3 RemoteReply  u8 code | msg-blob | u8 version_known | tag |
///                  u8 coalesced | u8 has_value | value payload
///   4 RemoteReconfig u8 op | u16 port | host-blob | u32 count |
///                  count x u32 l2-index
class StoreCodec final : public FamilyCodec {
 public:
  const char* name() const override { return "store"; }

  bool encode_body(const net::Payload& msg, Writer& w,
                   WireInfo* info) const override {
    const auto* m = dynamic_cast<const RemoteMessage*>(&msg);
    if (m == nullptr) return false;
    info->type = static_cast<std::uint8_t>(m->body().index());
    info->op = m->op();
    std::visit(
        overloaded{
            [&](const RemotePut& b) {
              w.blob(b.key);
              info->has_body = true;
              info->body = b.value;
            },
            [&](const RemoteGet& b) {
              w.u8(static_cast<std::uint8_t>(b.mode));
              w.blob(b.key);
            },
            [&](const RemotePutIf& b) {
              w.u8(b.expected.known() ? 1 : 0);
              w.tag(b.expected.tag());
              w.blob(b.key);
              info->has_body = true;
              info->body = b.value;
            },
            [&](const RemoteReply& b) {
              w.u8(static_cast<std::uint8_t>(b.code));
              w.blob(b.message);
              w.u8(b.version_known ? 1 : 0);
              w.tag(b.tag);
              w.u8(b.coalesced ? 1 : 0);
              w.u8(b.has_value ? 1 : 0);
              info->has_body = true;
              info->body = b.value;
            },
            [&](const RemoteReconfig& b) {
              w.u8(b.op);
              w.u16(b.port);
              w.blob(b.host);
              w.u32(static_cast<std::uint32_t>(b.l2_indices.size()));
              for (const std::uint32_t i : b.l2_indices) w.u32(i);
            },
        },
        m->body());
    return true;
  }

  bool size_of(const net::Payload& msg, std::uint64_t* size) const override {
    const auto* m = dynamic_cast<const RemoteMessage*>(&msg);
    if (m == nullptr) return false;
    constexpr std::uint64_t kBase = kFrameOverheadBytes;
    constexpr std::uint64_t kTag = kTagWireBytes;
    *size = std::visit(
        overloaded{
            [](const RemotePut& b) -> std::uint64_t {
              return kBase + 4 + b.key.size() + b.value.size();
            },
            [](const RemoteGet& b) -> std::uint64_t {
              return kBase + 1 + 4 + b.key.size();
            },
            [](const RemotePutIf& b) -> std::uint64_t {
              return kBase + 1 + kTag + 4 + b.key.size() + b.value.size();
            },
            [](const RemoteReply& b) -> std::uint64_t {
              return kBase + 1 + 4 + b.message.size() + 1 + kTag + 1 + 1 +
                     b.value.size();
            },
            [](const RemoteReconfig& b) -> std::uint64_t {
              return kBase + 1 + 2 + 4 + b.host.size() + 4 +
                     4 * b.l2_indices.size();
            },
        },
        m->body());
    return true;
  }

  Status decode_body(std::uint8_t type, ObjectId obj, OpId op, Reader& r,
                     net::MessagePtr* out) const override {
    (void)obj;
    RemoteBody body;
    switch (type) {
      case 0: {
        RemotePut b;
        if (!r.blob(&b.key)) return truncated("RemotePut.key");
        if (!r.value(&b.value)) return truncated("RemotePut.value");
        body = std::move(b);
        break;
      }
      case 1: {
        RemoteGet b;
        std::uint8_t mode = 0;
        if (!r.u8(&mode)) return truncated("RemoteGet.mode");
        if (mode > static_cast<std::uint8_t>(ReadMode::TagOnly)) {
          return Status::InvalidArgument("unknown read mode " +
                                         std::to_string(mode));
        }
        b.mode = static_cast<ReadMode>(mode);
        if (!r.blob(&b.key)) return truncated("RemoteGet.key");
        body = std::move(b);
        break;
      }
      case 2: {
        RemotePutIf b;
        std::uint8_t known = 0;
        Tag expected;
        if (!r.u8(&known) || !r.tag(&expected)) {
          return truncated("RemotePutIf.expected");
        }
        b.expected = known != 0 ? Version(expected) : Version();
        if (!r.blob(&b.key)) return truncated("RemotePutIf.key");
        if (!r.value(&b.value)) return truncated("RemotePutIf.value");
        body = std::move(b);
        break;
      }
      case 3: {
        RemoteReply b;
        std::uint8_t code = 0, known = 0, coalesced = 0, has = 0;
        if (!r.u8(&code)) return truncated("RemoteReply.code");
        if (code > static_cast<std::uint8_t>(StatusCode::kInvalidArgument)) {
          return Status::InvalidArgument("unknown status code " +
                                         std::to_string(code));
        }
        b.code = static_cast<StatusCode>(code);
        if (!r.blob(&b.message)) return truncated("RemoteReply.message");
        if (!r.u8(&known) || !r.tag(&b.tag) || !r.u8(&coalesced) ||
            !r.u8(&has)) {
          return truncated("RemoteReply.version");
        }
        b.version_known = known != 0;
        b.coalesced = coalesced != 0;
        b.has_value = has != 0;
        if (!r.value(&b.value)) return truncated("RemoteReply.value");
        body = std::move(b);
        break;
      }
      case 4: {
        RemoteReconfig b;
        std::uint32_t count = 0;
        if (!r.u8(&b.op) || !r.u16(&b.port) || !r.blob(&b.host) ||
            !r.u32(&count)) {
          return truncated("RemoteReconfig");
        }
        if (count > r.remaining() / 4) return truncated("RemoteReconfig.l2");
        b.l2_indices.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          std::uint32_t idx = 0;
          if (!r.u32(&idx)) return truncated("RemoteReconfig.l2");
          b.l2_indices.push_back(idx);
        }
        body = std::move(b);
        break;
      }
      default:
        return Status::InvalidArgument("unknown store type id " +
                                       std::to_string(type));
    }
    *out = RemoteMessage::make(op, std::move(body));
    return Status::Ok();
  }
};

RemoteReply reply_of_put(const PutResult& pr) {
  RemoteReply r;
  r.code = pr.status.code();
  r.message = pr.status.message();
  r.version_known = pr.version.known();
  r.tag = pr.tag;
  r.coalesced = pr.coalesced;
  return r;
}

RemoteReply reply_of_get(const GetResult& gr) {
  RemoteReply r;
  r.code = gr.status.code();
  r.message = gr.status.message();
  r.version_known = gr.version.known();
  r.tag = gr.tag;
  r.has_value = gr.status.ok();
  r.value = gr.value;
  return r;
}

}  // namespace

// ---- reply conversions -------------------------------------------------------

PutResult to_put_result(const RemoteReply& r) {
  if (r.code == StatusCode::kOk) {
    PutResult p = PutResult::success(r.tag);
    p.coalesced = r.coalesced;
    return p;
  }
  PutResult p = PutResult::failure(Status::FromCode(r.code, r.message));
  if (r.version_known) {  // Aborted surfaces the observed version
    p.tag = r.tag;
    p.version = Version(r.tag);
  }
  return p;
}

GetResult to_get_result(const RemoteReply& r) {
  if (r.code == StatusCode::kOk) return GetResult::success(r.tag, r.value);
  return GetResult::failure(Status::FromCode(r.code, r.message));
}

// ---- RemoteMessage -----------------------------------------------------------

std::uint64_t RemoteMessage::data_bytes() const {
  return std::visit(
      [](const auto& b) -> std::uint64_t {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, RemoteGet> ||
                      std::is_same_v<T, RemoteReconfig>) {
          return 0;
        } else {
          return b.value.size();
        }
      },
      body_);
}

std::uint64_t RemoteMessage::meta_bytes() const {
  return net::codec::encoded_size(*this) - data_bytes();
}

const char* RemoteMessage::type_name() const {
  return std::visit(
      [](const auto& b) -> const char* {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, RemotePut>) return "STORE-PUT";
        else if constexpr (std::is_same_v<T, RemoteGet>) return "STORE-GET";
        else if constexpr (std::is_same_v<T, RemotePutIf>)
          return "STORE-PUT-IF";
        else if constexpr (std::is_same_v<T, RemoteReconfig>)
          return "STORE-RECONFIG";
        else return "STORE-REPLY";
      },
      body_);
}

void register_store_wire() {
  static const StoreCodec codec;
  static const bool once = [] {
    net::codec::register_family(Family::Store, &codec);
    return true;
  }();
  (void)once;
}

// ---- RemoteServer ------------------------------------------------------------

RemoteServer::RemoteServer(StoreService& svc, net::TcpTransport::Options topt)
    : svc_(svc), transport_(topt) {
  register_store_wire();
}

RemoteServer::~RemoteServer() { stop(); }

Status RemoteServer::listen(std::uint16_t port) {
  if (!svc_.parallel()) {
    // The handler submits from the transport's loop thread; only the
    // Parallel engine's client API is thread-safe.
    return Status::InvalidArgument(
        "RemoteServer::listen requires EngineMode::Parallel");
  }
  return transport_.listen(
      port, [this](NodeId peer, net::MessagePtr msg) { on_message(peer, msg); });
}

void RemoteServer::reply(NodeId peer, OpId id, RemoteReply r) {
  transport_.deliver(0, peer, RemoteMessage::make(id, std::move(r)), 0);
}

void RemoteServer::on_message(NodeId peer, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const RemoteMessage*>(msg.get());
  if (m == nullptr) return;  // foreign family on a store port: ignore
  const OpId id = m->op();
  std::visit(
      overloaded{
          [&](const RemotePut& b) {
            if (b.key.empty()) {
              reply(peer, id,
                    reply_of_put(PutResult::failure(
                        Status::InvalidArgument("empty key"))));
              return;
            }
            svc_.put(b.key, b.value, [this, peer, id](const PutResult& pr) {
              reply(peer, id, reply_of_put(pr));
            });
          },
          [&](const RemoteGet& b) {
            if (b.key.empty()) {
              reply(peer, id,
                    reply_of_get(GetResult::failure(
                        Status::InvalidArgument("empty key"))));
              return;
            }
            svc_.get(
                b.key,
                [this, peer, id](const GetResult& gr) {
                  reply(peer, id, reply_of_get(gr));
                },
                b.mode);
          },
          [&](const RemotePutIf& b) {
            if (b.key.empty()) {
              reply(peer, id,
                    reply_of_put(PutResult::failure(
                        Status::InvalidArgument("empty key"))));
              return;
            }
            svc_.put_if(b.key, b.value, b.expected,
                        [this, peer, id](const PutResult& pr) {
                          reply(peer, id, reply_of_put(pr));
                        });
          },
          [&](const RemoteReply&) {
            // A reply sent *to* the server is a protocol violation; ignoring
            // it is safer than trusting a hostile peer with more state.
          },
          [&](const RemoteReconfig& b) {
            svc_.admin_reconfig(
                b.op, b.l2_indices, b.host, b.port,
                [this, peer, id](Status st, std::uint64_t epoch) {
                  RemoteReply r;
                  r.code = st.code();
                  r.message = std::string(st.message());
                  r.version_known = true;
                  r.tag = Tag{epoch, 0};
                  reply(peer, id, std::move(r));
                });
          },
      },
      m->body());
}

// ---- RemoteSession -----------------------------------------------------------

std::unique_ptr<RemoteSession> RemoteSession::open(
    const std::string& host, std::uint16_t port, Status* status,
    net::TcpTransport::Options topt) {
  register_store_wire();
  // No make_unique: the constructor is private.
  std::unique_ptr<RemoteSession> s(new RemoteSession(topt));
  RemoteSession* raw = s.get();
  s->transport_.set_disconnect_handler(
      [raw](NodeId) { raw->fail_all(Status::Unavailable("connection lost")); });
  const Status st = s->transport_.connect(
      host, port,
      [raw](NodeId peer, net::MessagePtr msg) { raw->on_message(peer, msg); },
      &s->server_);
  if (!st.ok()) {
    if (status != nullptr) *status = st;
    return nullptr;
  }
  if (status != nullptr) *status = Status::Ok();
  return s;
}

RemoteSession::~RemoteSession() { close(); }

void RemoteSession::close() {
  // Stop first: joins the progress threads, so no reply/timer/disconnect
  // callback can race the sweep below.  Whatever is still pending after the
  // join lost its chance at a reply.
  transport_.stop();
  fail_all(Status::Unavailable("session closed"));
}

bool RemoteSession::connected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !disconnected_;
}

std::size_t RemoteSession::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

void RemoteSession::fail_all(const Status& why) {
  std::vector<ReplyCallback> victims;
  {
    std::lock_guard<std::mutex> lk(mu_);
    disconnected_ = true;
    victims.reserve(pending_.size());
    for (auto& [id, cb] : pending_) victims.push_back(std::move(cb));
    pending_.clear();
  }
  for (auto& cb : victims) cb(why, RemoteReply{});
}

void RemoteSession::on_message(NodeId peer, const net::MessagePtr& msg) {
  (void)peer;
  const auto* m = dynamic_cast<const RemoteMessage*>(msg.get());
  if (m == nullptr) return;
  const auto* reply = std::get_if<RemoteReply>(&m->body());
  if (reply == nullptr) return;  // requests don't flow server -> client
  ReplyCallback cb;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = pending_.find(m->op());
    if (it == pending_.end()) return;  // deadline already gave up on this id
    cb = std::move(it->second);
    pending_.erase(it);
  }
  cb(Status::Ok(), *reply);  // unlocked: the callback may issue new calls
}

void RemoteSession::async_call(RemoteBody req, double deadline_s,
                               ReplyCallback cb) {
  LDS_REQUIRE(cb != nullptr, "RemoteSession::async_call: null callback");
  OpId id = 0;  // next_id_ starts at 1: 0 still means "disconnected"
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!disconnected_) id = next_id_++;
  }
  if (id == 0) {
    cb(Status::Unavailable("connection lost"), RemoteReply{});
    return;
  }
  auto msg = RemoteMessage::make(id, std::move(req));
  // A request that cannot fit one frame would be dropped by the transport
  // (and treated as hostile by the server); fail it as a caller error.
  const std::uint64_t frame = net::codec::encoded_size(*msg);
  if (frame > net::codec::kMaxFrameBytes) {
    cb(Status::InvalidArgument("request of " + std::to_string(frame) +
                               " bytes exceeds the frame limit of " +
                               std::to_string(net::codec::kMaxFrameBytes)),
       RemoteReply{});
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (disconnected_) {
      lk.unlock();  // never invoke a callback under mu_
      cb(Status::Unavailable("connection lost"), RemoteReply{});
      return;
    }
    pending_.emplace(id, std::move(cb));
  }
  if (deadline_s > 0) {
    // The expiry races the reply for the pending entry; the loser finds
    // the map empty and walks away.  A false return (session closing) is
    // fine: close()'s fail_all sweeps the entry instead.
    transport_.after(deadline_s, [this, id, deadline_s] {
      ReplyCallback late;
      {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = pending_.find(id);
        if (it == pending_.end()) return;  // reply won the race
        late = std::move(it->second);
        pending_.erase(it);
      }
      late(Status::DeadlineExceeded("deadline " + std::to_string(deadline_s) +
                                    "s expired"),
           RemoteReply{});
    });
  }
  // May block at the transport's backlog watermark; the deadline timer
  // above still fires on schedule while we wait.
  transport_.deliver(0, server_, std::move(msg), 0);
}

Status RemoteSession::call(RemoteBody req, double deadline_s,
                           RemoteReply* out) {
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status st = Status::Ok();
    RemoteReply reply;
  };
  auto cell = std::make_shared<Cell>();
  async_call(std::move(req), deadline_s,
             [cell](Status st, RemoteReply reply) {
               std::lock_guard<std::mutex> lk(cell->mu);
               cell->st = std::move(st);
               cell->reply = std::move(reply);
               cell->done = true;
               cell->cv.notify_one();
             });
  std::unique_lock<std::mutex> lk(cell->mu);
  cell->cv.wait(lk, [&] { return cell->done; });
  if (!cell->st.ok()) return std::move(cell->st);
  *out = std::move(cell->reply);
  return Status::Ok();
}

PutResult RemoteSession::put(const std::string& key, Value value,
                             double deadline_s) {
  RemoteReply reply;
  if (Status s = call(RemotePut{key, std::move(value)}, deadline_s, &reply);
      !s.ok()) {
    return PutResult::failure(std::move(s));
  }
  return to_put_result(reply);
}

GetResult RemoteSession::get(const std::string& key, ReadMode mode,
                             double deadline_s) {
  RemoteReply reply;
  if (Status s = call(RemoteGet{key, mode}, deadline_s, &reply); !s.ok()) {
    return GetResult::failure(std::move(s));
  }
  return to_get_result(reply);
}

PutResult RemoteSession::put_if(const std::string& key, Value value,
                                Version expected, double deadline_s) {
  RemoteReply reply;
  if (Status s = call(RemotePutIf{key, std::move(value), expected}, deadline_s,
                      &reply);
      !s.ok()) {
    return PutResult::failure(std::move(s));
  }
  return to_put_result(reply);
}

}  // namespace lds::store
