#include "store/cache.h"

namespace lds::store {

std::optional<ReadCache::Entry> ReadCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
  return it->second->entry;
}

void ReadCache::update(const std::string& key, Version version, Value value,
                       double now) {
  const double fresh_until = opt_.ttl > 0.0 ? now + opt_.ttl : 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = it->second->entry;
    if (version < e.version) return;  // a newer fill already landed
    e.version = version;
    e.value = std::move(value);
    e.fresh_until = fresh_until;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, Entry{version, std::move(value), fresh_until}});
  index_.emplace(key, lru_.begin());
  if (index_.size() > opt_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void ReadCache::revalidate(const std::string& key, Version version,
                           double now) {
  if (opt_.ttl <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->entry.version != version) return;
  it->second->entry.fresh_until = now + opt_.ttl;
}

bool ReadCache::invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void ReadCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

std::size_t ReadCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace lds::store
