// Client-side read cache: key -> (Version, zero-copy Value) with LRU
// eviction and an optional per-entry TTL.
//
// The cache itself is a passive map; the consistency story lives in
// store::Client.  A cached entry is served only after a TAG-ONLY VALIDATION
// ROUND (ReadMode::TagOnly — the LDS get-committed-tag quorum phase without
// the data phase) confirms the entry's Version is still the committed tag,
// so hits stay linearizable while moving zero value bytes.  With ttl > 0
// the client may additionally serve an entry with NO round at all until
// `fresh_until` — an opt-in, bounded-staleness mode (reads can lag
// concurrent writes by up to ttl engine-seconds; default off).
//
// Values are ref-counted (common/slice.h): caching one is a handle copy,
// never a payload copy.
//
// Thread-safe: the remote client validates/fills from transport callback
// threads while the owner issues new ops.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/slice.h"
#include "common/types.h"

namespace lds::store {

struct CacheOptions {
  bool enabled = false;      ///< master switch; default-off keeps PR 9 paths
  std::size_t capacity = 4096;  ///< max entries before LRU eviction
  /// Entry freshness window in seconds (engine clock for local clients,
  /// wall clock for remote ones).  0 = every hit pays a validation round.
  double ttl = 0.0;
};

class ReadCache {
 public:
  explicit ReadCache(CacheOptions opt) : opt_(opt) {}

  struct Entry {
    Version version;
    Value value;
    double fresh_until = 0.0;  ///< ttl deadline; meaningful only when ttl > 0
  };

  /// Copy of the entry (handles, not payload) or nullopt; touches LRU.
  std::optional<Entry> lookup(const std::string& key);

  /// Insert or refresh.  A stale racer never downgrades a newer cached
  /// version (versions are totally ordered).
  void update(const std::string& key, Version version, Value value,
              double now);

  /// A validation round confirmed `version` is still committed: restamp the
  /// freshness window without touching the value.
  void revalidate(const std::string& key, Version version, double now);

  /// Drop the entry; returns whether one existed (for metrics).
  bool invalidate(const std::string& key);

  void clear();
  std::size_t size() const;
  const CacheOptions& options() const { return opt_; }

 private:
  struct Node {
    std::string key;
    Entry entry;
  };
  using List = std::list<Node>;

  mutable std::mutex mu_;
  CacheOptions opt_;
  List lru_;  ///< front = most recently used
  std::unordered_map<std::string, List::iterator> index_;
};

}  // namespace lds::store
