// Metrics for the multi-shard store service: named counters and HDR-style
// latency histograms, kept per shard plus a global (unsharded) scope, with a
// JSON snapshot for machine-readable bench/CI output.
//
// The design follows the metrics registries of production stores (RocksDB's
// Statistics, HdrHistogram): a histogram stores counts in logarithmic major
// buckets subdivided linearly, so it covers many orders of magnitude with
// bounded memory and ~6% relative quantile error, and recording is O(1).
//
// Thread-safety: full.  Counters are sharded by scope and atomic (relaxed
// increments, no cross-counter ordering); histograms are mutex-guarded; each
// scope (global, per shard) has its own lock for name lookups, so the lanes
// of a ParallelEngine — which touch disjoint shard scopes — never contend.
// snapshot() reads every scope once and computes the totals from the very
// values it returns, so a snapshot's totals always equal the sum of its
// global + per-shard sections, even while writers are running.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lds::store {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log-bucketed histogram of non-negative doubles (sim-time latencies,
/// batch sizes).  Values are quantized to 1/1024 units; each power-of-two
/// range is split into 16 linear sub-buckets.
class Histogram {
 public:
  /// Everything a reader wants, captured under one lock.
  struct Stats {
    std::uint64_t count = 0;
    double min = 0, max = 0, mean = 0;
    double p50 = 0, p90 = 0, p99 = 0;
  };

  void record(double v);

  std::uint64_t count() const;
  double min() const;
  double max() const;
  double mean() const;
  /// Approximate quantile (p in [0, 1]) from bucket midpoints; exact min/max
  /// are returned for p = 0 / p = 1.
  double percentile(double p) const;
  Stats stats() const;

 private:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per power of two
  static constexpr std::size_t kBuckets = (64 - kSubBits) << kSubBits;

  static std::size_t bucket_index(std::uint64_t u);
  static double bucket_value(std::size_t idx);
  double percentile_locked(double p) const;  // caller holds mu_

  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;  // sized lazily on first record
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counters and histograms addressed by name, in one global scope plus one
/// scope per shard.  Snapshots are deterministic (names sorted) and include
/// a "totals" section summing every counter name across all scopes.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t num_shards = 0);

  Counter& counter(const std::string& name) {
    return scoped_counter(global_, name);
  }
  Counter& counter(const std::string& name, std::size_t shard) {
    return scoped_counter(*shards_.at(shard), name);
  }
  Histogram& histogram(const std::string& name) {
    return scoped_histogram(global_, name);
  }
  Histogram& histogram(const std::string& name, std::size_t shard) {
    return scoped_histogram(*shards_.at(shard), name);
  }

  std::size_t num_shards() const { return shards_.size(); }

  /// Global value + sum over all shards for one counter name (0 if absent).
  std::uint64_t counter_total(const std::string& name) const;

  /// One consistent read of the whole registry.  `totals` is computed from
  /// the returned counter values, so totals[name] == counters[name] +
  /// sum(shards[s].counters[name]) holds exactly in every snapshot.
  struct Snapshot {
    struct Scope {
      std::map<std::string, std::uint64_t> counters;
      std::map<std::string, Histogram::Stats> histograms;
    };
    std::map<std::string, std::uint64_t> totals;
    Scope global;
    std::vector<Scope> shards;
  };
  Snapshot snapshot() const;

  /// snapshot() as one JSON object:
  ///   {"totals":{...}, "counters":{...},
  ///    "histograms":{name:{count,min,mean,p50,p90,p99,max}},
  ///    "shards":[{"counters":{...},"histograms":{...}}, ...]}
  std::string to_json() const;

 private:
  /// One lock per scope guards the map *shape* (lazy name interning and
  /// iteration); the values themselves are individually thread-safe, and
  /// std::map nodes are stable, so returned references stay valid.
  struct Scope {
    mutable std::mutex mu;
    std::map<std::string, Counter> counters;
    std::map<std::string, Histogram> histograms;
  };

  static Counter& scoped_counter(Scope& s, const std::string& name);
  static Histogram& scoped_histogram(Scope& s, const std::string& name);
  static void snapshot_scope(const Scope& s, Snapshot::Scope* out);

  Scope global_;
  std::vector<std::unique_ptr<Scope>> shards_;
};

}  // namespace lds::store
