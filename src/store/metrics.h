// Metrics for the multi-shard store service: named counters and HDR-style
// latency histograms, kept per shard plus a global (unsharded) scope, with a
// JSON snapshot for machine-readable bench/CI output.
//
// The design follows the metrics registries of production stores (RocksDB's
// Statistics, HdrHistogram): a histogram stores counts in logarithmic major
// buckets subdivided linearly, so it covers many orders of magnitude with
// bounded memory and ~6% relative quantile error, and recording is O(1).
//
// Thread-safety: none.  A registry belongs to one StoreService instance,
// which is single-threaded by design (the harness runs one service per OS
// thread); see store_service.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lds::store {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Log-bucketed histogram of non-negative doubles (sim-time latencies,
/// batch sizes).  Values are quantized to 1/1024 units; each power-of-two
/// range is split into 16 linear sub-buckets.
class Histogram {
 public:
  void record(double v);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Approximate quantile (p in [0, 1]) from bucket midpoints; exact min/max
  /// are returned for p = 0 / p = 1.
  double percentile(double p) const;

 private:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per power of two
  static constexpr std::size_t kBuckets = (64 - kSubBits) << kSubBits;

  static std::size_t bucket_index(std::uint64_t u);
  static double bucket_value(std::size_t idx);

  std::vector<std::uint64_t> buckets_;  // sized lazily on first record
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counters and histograms addressed by name, in one global scope plus one
/// scope per shard.  Snapshots are deterministic (names sorted) and include
/// a "totals" section summing every counter name across all scopes.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t num_shards = 0)
      : shard_counters_(num_shards), shard_histograms_(num_shards) {}

  Counter& counter(const std::string& name) { return counters_[name]; }
  Counter& counter(const std::string& name, std::size_t shard) {
    return shard_counters_.at(shard)[name];
  }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  Histogram& histogram(const std::string& name, std::size_t shard) {
    return shard_histograms_.at(shard)[name];
  }

  std::size_t num_shards() const { return shard_counters_.size(); }

  /// Global value + sum over all shards for one counter name (0 if absent).
  std::uint64_t counter_total(const std::string& name) const;

  /// Snapshot as one JSON object:
  ///   {"totals":{...}, "counters":{...},
  ///    "histograms":{name:{count,min,mean,p50,p90,p99,max}},
  ///    "shards":[{"counters":{...},"histograms":{...}}, ...]}
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::vector<std::map<std::string, Counter>> shard_counters_;
  std::vector<std::map<std::string, Histogram>> shard_histograms_;
};

}  // namespace lds::store
