// The store RPC family: serve a StoreService to remote store::Clients.
//
// Four wire messages (codec Family::Store, net/codec.h) carry the client API
// over a TcpTransport (net/transport.h):
//
//   RemotePut      { key, value }               -> RemoteReply
//   RemoteGet      { key, read mode }           -> RemoteReply (value; mode
//                    TagOnly = cache validation round: the reply carries the
//                    committed tag and a ZERO-length value payload)
//   RemotePutIf    { key, value, expected }     -> RemoteReply
//   RemoteReply    { status code+message, version, optional value }
//   RemoteReconfig { op, l2 indices, endpoint } -> RemoteReply (tag.z=epoch)
//
// Every request carries a per-connection request id in the frame's OpId
// field; the reply echoes it, so one connection multiplexes any number of
// concurrent callers (RemoteSession below blocks each caller on its own id).
//
// Threading: RemoteServer's handler runs on the transport's event-loop
// thread and submits straight into StoreService's thread-safe client API —
// which is why serving requires EngineMode::Parallel.  Completion callbacks
// fire on shard lanes and push the reply frame back through the transport's
// thread-safe deliver().
//
// Determinism: none — this is the real-deployment path (see the scope note
// in net/transport.h).  Correctness of a served run is established by the
// linearizability checkers over the server-side histories (lds_served
// verifies them at shutdown) and client-observed histories (lds_store_bench
// --remote).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <variant>

#include "net/codec.h"
#include "net/transport.h"
#include "store/store_service.h"

namespace lds::store {

// ---- wire messages -----------------------------------------------------------

struct RemotePut {
  std::string key;
  Value value;
};
struct RemoteGet {
  std::string key;
  ReadMode mode = ReadMode::Atomic;
};
struct RemotePutIf {
  std::string key;
  Value value;
  Version expected;
};
/// One reply shape serves every request kind.  `version_known`/`tag` carry
/// the committed/observed Version (including the observed version an
/// Aborted conditional put reports); `has_value` marks a get's payload.
struct RemoteReply {
  StatusCode code = StatusCode::kOk;
  std::string message;  ///< Status context (empty when ok)
  bool version_known = false;
  Tag tag;
  bool coalesced = false;  ///< puts: absorbed by a newer same-key write
  bool has_value = false;
  Value value;
};

/// Admin: drive the service's membership coordinator (member/coordinator.h).
/// op 0 queries the active epoch; op 1 moves L2 servers `l2_indices` to the
/// member process listening at host:port (empty host = back to the head
/// process).  The reply's `tag.z` carries the resulting epoch.  Services
/// without a fabric answer InvalidArgument.
struct RemoteReconfig {
  std::uint8_t op = 0;
  std::vector<std::uint32_t> l2_indices;
  std::string host;
  std::uint16_t port = 0;
};

/// Alternative order frozen: the wire codec uses the variant index as the
/// frame's type id.  Append, never reorder.
using RemoteBody =
    std::variant<RemotePut, RemoteGet, RemotePutIf, RemoteReply, RemoteReconfig>;

class RemoteMessage final : public net::Payload {
 public:
  RemoteMessage(OpId request_id, RemoteBody body)
      : request_(request_id), body_(std::move(body)) {}

  /// The per-connection request id (rides the frame's OpId field).
  OpId op() const override { return request_; }
  const RemoteBody& body() const { return body_; }

  std::uint64_t data_bytes() const override;
  std::uint64_t meta_bytes() const override;  ///< exact, via the codec
  const char* type_name() const override;

  static net::MessagePtr make(OpId request_id, RemoteBody body) {
    return std::make_shared<RemoteMessage>(request_id, std::move(body));
  }

 private:
  OpId request_;
  RemoteBody body_;
};

/// Register Family::Store with the codec.  Idempotent, thread-safe; called
/// by RemoteServer/RemoteSession construction (and by anything that feeds
/// RemoteMessages to a transport directly, e.g. bench_codec).
void register_store_wire();

/// Convert a RemoteReply into the client-visible result types (used by the
/// session's blocking wrappers and Client's async completion path).
PutResult to_put_result(const RemoteReply& r);
GetResult to_get_result(const RemoteReply& r);

// ---- server ------------------------------------------------------------------

/// Accepts remote store clients and bridges them onto a StoreService.
/// Usually owned via StoreService::listen(); standalone construction is for
/// tests.  The service must be in Parallel mode and must outlive the server.
class RemoteServer {
 public:
  explicit RemoteServer(StoreService& svc,
                        net::TcpTransport::Options topt = {});
  ~RemoteServer();

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start serving.
  Status listen(std::uint16_t port);
  std::uint16_t port() const { return transport_.port(); }
  /// Actively accepting (a successful listen() not yet stopped).
  bool listening() const { return port() != 0 && !transport_.stopped(); }
  /// True after stop(): the transport cannot restart — StoreService::listen
  /// recreates the server instead.
  bool stopped() const { return transport_.stopped(); }
  /// Stop accepting and drop every connection (in-flight operations still
  /// complete inside the service; their replies are dropped).
  void stop() { transport_.stop(); }

  std::uint64_t frames_received() const { return transport_.frames_received(); }
  std::uint64_t frames_sent() const { return transport_.frames_sent(); }

 private:
  void on_message(NodeId peer, const net::MessagePtr& msg);
  void reply(NodeId peer, OpId id, RemoteReply r);

  StoreService& svc_;
  net::TcpTransport transport_;
};

// ---- client session ----------------------------------------------------------

/// One TCP connection to a RemoteServer, shared by any number of caller
/// threads: requests are pipelined under per-connection ids.  The session is
/// ASYNC-FIRST — async_call() sends a request and later invokes a callback
/// with the reply (on the transport's progress thread), a deadline expiry
/// (transport timer thread), or a disconnect failure.  Exactly one of those
/// wins per request: whichever fires first pops the pending entry.  The
/// blocking put/get/put_if are thin cell-and-wait wrappers over async_call.
/// Deadlines are wall-clock seconds — engine time does not exist on this
/// side of the socket.
class RemoteSession {
 public:
  /// Reply delivery: Ok + the reply, or the failure (DeadlineExceeded /
  /// Unavailable / InvalidArgument) with a default reply.  Runs on a
  /// transport progress thread — never block in it on another RPC's
  /// completion; chaining a NEW async_call from inside is fine.
  using ReplyCallback = std::function<void(Status, RemoteReply)>;

  static std::unique_ptr<RemoteSession> open(
      const std::string& host, std::uint16_t port, Status* status = nullptr,
      net::TcpTransport::Options topt = {});
  ~RemoteSession();

  /// Send one request; `cb` fires exactly once with the outcome.  Failures
  /// detected before the wire (oversized frame, already disconnected)
  /// invoke `cb` synchronously on the caller's thread.
  void async_call(RemoteBody req, double deadline_s, ReplyCallback cb);

  PutResult put(const std::string& key, Value value, double deadline_s = 0);
  GetResult get(const std::string& key, ReadMode mode = ReadMode::Atomic,
                double deadline_s = 0);
  PutResult put_if(const std::string& key, Value value, Version expected,
                   double deadline_s = 0);

  bool connected() const;
  /// Drop the connection and fail every in-flight request with Unavailable
  /// (callbacks run on the calling thread).  Idempotent; the dtor calls it.
  void close();

  /// Requests sent whose outcome callback has not fired yet.
  std::size_t inflight() const;
  /// Transport stats (zero-copy bytes, backpressure stalls, ...).
  const net::TcpTransport& transport() const { return transport_; }
  /// Run `fn` on the transport timer thread after `delay_s` seconds; false
  /// once the session is closed.  Retry/backoff timers live here.
  bool after(double delay_s, std::function<void()> fn) {
    return transport_.after(delay_s, std::move(fn));
  }

 private:
  explicit RemoteSession(net::TcpTransport::Options topt)
      : transport_(topt) {}

  /// Send one request and block for its reply (or deadline/disconnect).
  Status call(RemoteBody req, double deadline_s, RemoteReply* out);
  void on_message(NodeId peer, const net::MessagePtr& msg);
  /// Pop every pending request and fail it with `why` (unlocked callbacks).
  void fail_all(const Status& why);

  net::TcpTransport transport_;
  NodeId server_ = kNoNode;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<OpId, ReplyCallback> pending_;
  bool disconnected_ = false;
};

}  // namespace lds::store
