#include "store/repair_scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace lds::store {

void RepairScheduler::attach_shard(std::size_t shard,
                                   core::LdsCluster& cluster,
                                   std::function<bool(std::size_t)> may_replace,
                                   std::function<void(std::size_t)> on_replaced,
                                   std::function<void(std::size_t)> on_repaired,
                                   std::size_t lane) {
  LDS_REQUIRE(!managers_.contains(shard),
              "RepairScheduler: shard already attached");
  lane_of_shard_[shard] = lane;
  const std::size_t budget_key =
      opt_.budget_scope == BudgetScope::PerLane ? lane : 0;
  core::RepairManager::Options mopt;
  mopt.heartbeat_period = opt_.heartbeat_period;
  mopt.suspect_after = opt_.suspect_after;
  mopt.node_id = opt_.manager_id;  // ids are per-network; shards don't clash
  mopt.budget_retry = opt_.budget_retry;
  mopt.object_retry = opt_.object_retry;
  mopt.acquire_slot = [this, shard, budget_key,
                       may_replace = std::move(may_replace)](std::size_t i) {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_by_lane_[budget_key] >= opt_.max_concurrent) return false;
    if (may_replace && !may_replace(i)) return false;
    ++in_flight_by_lane_[budget_key];
    ++in_flight_total_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_total_);
    if (metrics_) metrics_->counter("repairs_started", shard).inc();
    return true;
  };
  mopt.release_slot = [this, budget_key](std::size_t) {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_by_lane_[budget_key];
    --in_flight_total_;
  };
  mopt.on_server_repaired = [this, shard,
                             on_repaired =
                                 std::move(on_repaired)](std::size_t i) {
    servers_repaired_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->counter("repairs_completed", shard).inc();
    if (on_repaired) on_repaired(i);
  };
  auto manager = std::make_unique<core::RepairManager>(
      cluster.net(), cluster.ctx_ptr(), mopt,
      [&cluster, on_replaced = std::move(on_replaced)](std::size_t i)
          -> core::ServerL2& {
        core::ServerL2& fresh = cluster.replace_l2(i);
        if (on_replaced) on_replaced(i);
        return fresh;
      });
  managers_.emplace(shard, std::move(manager));
}

void RepairScheduler::track_object(std::size_t shard, ObjectId obj) {
  managers_.at(shard)->track_object(obj);
}

void RepairScheduler::start() {
  for (auto& [shard, m] : managers_) {
    core::RepairManager* mgr = m.get();
    if (post_) {
      post_(shard, [mgr] { mgr->start(); });
    } else {
      mgr->start();
    }
  }
}

void RepairScheduler::stop() {
  for (auto& [shard, m] : managers_) {
    core::RepairManager* mgr = m.get();
    if (post_) {
      post_(shard, [mgr] { mgr->stop(); });
    } else {
      mgr->stop();
    }
  }
}

std::size_t RepairScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_total_;
}

std::size_t RepairScheduler::peak_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_flight_;
}

std::size_t RepairScheduler::object_rounds_started() const {
  std::size_t n = 0;
  for (const auto& [shard, m] : managers_) n += m->repairs_started();
  return n;
}

std::size_t RepairScheduler::object_rounds_failed() const {
  std::size_t n = 0;
  for (const auto& [shard, m] : managers_) n += m->repairs_failed();
  return n;
}

std::size_t RepairScheduler::suspected() const {
  std::size_t n = 0;
  for (const auto& [shard, m] : managers_) n += m->suspected_count();
  return n;
}

}  // namespace lds::store
