#include "store/repair_scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace lds::store {

void RepairScheduler::attach_shard(std::size_t shard,
                                   core::LdsCluster& cluster,
                                   std::function<bool(std::size_t)> may_replace,
                                   std::function<void(std::size_t)> on_replaced,
                                   std::function<void(std::size_t)> on_repaired) {
  LDS_REQUIRE(!managers_.contains(shard),
              "RepairScheduler: shard already attached");
  core::RepairManager::Options mopt;
  mopt.heartbeat_period = opt_.heartbeat_period;
  mopt.suspect_after = opt_.suspect_after;
  mopt.node_id = opt_.manager_id;  // ids are per-network; shards don't clash
  mopt.budget_retry = opt_.budget_retry;
  mopt.object_retry = opt_.object_retry;
  mopt.acquire_slot = [this, shard,
                       may_replace = std::move(may_replace)](std::size_t i) {
    if (in_flight_ >= opt_.max_concurrent) return false;
    if (may_replace && !may_replace(i)) return false;
    ++in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    if (metrics_) metrics_->counter("repairs_started", shard).inc();
    return true;
  };
  mopt.release_slot = [this](std::size_t) { --in_flight_; };
  mopt.on_server_repaired = [this, shard,
                             on_repaired =
                                 std::move(on_repaired)](std::size_t i) {
    ++servers_repaired_;
    if (metrics_) metrics_->counter("repairs_completed", shard).inc();
    if (on_repaired) on_repaired(i);
  };
  auto manager = std::make_unique<core::RepairManager>(
      cluster.net(), cluster.ctx_ptr(), mopt,
      [&cluster, on_replaced = std::move(on_replaced)](std::size_t i)
          -> core::ServerL2& {
        cluster.replace_l2(i);
        if (on_replaced) on_replaced(i);
        return cluster.l2(i);
      });
  managers_.emplace(shard, std::move(manager));
}

void RepairScheduler::track_object(std::size_t shard, ObjectId obj) {
  managers_.at(shard)->track_object(obj);
}

void RepairScheduler::start() {
  for (auto& [shard, m] : managers_) m->start();
}

void RepairScheduler::stop() {
  for (auto& [shard, m] : managers_) m->stop();
}

std::size_t RepairScheduler::object_rounds_started() const {
  std::size_t n = 0;
  for (const auto& [shard, m] : managers_) n += m->repairs_started();
  return n;
}

std::size_t RepairScheduler::object_rounds_failed() const {
  std::size_t n = 0;
  for (const auto& [shard, m] : managers_) n += m->repairs_failed();
  return n;
}

std::size_t RepairScheduler::suspected() const {
  std::size_t n = 0;
  for (const auto& [shard, m] : managers_) n += m->suspected_count();
  return n;
}

}  // namespace lds::store
