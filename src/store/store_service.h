// StoreService: a multi-object, multi-shard store fronting many independent
// cluster instances behind one client API.
//
// Layering (ROADMAP north star "sharding, batching, async, caching"):
//
//   put/get/multi_get (string keys, async callbacks or sync wrappers)
//        │
//   ShardRouter ── consistent-hash ring: key -> shard
//        │
//   per-shard write batching ── queued puts to the same shard coalesce into
//        │                      one dispatch window; same-key puts collapse
//        │                      to the last value (absorbed puts complete
//        │                      with the surviving write's tag), bounded by
//        │                      an admission limit
//   shard backends ── each shard owns its own LdsCluster (L2 code via
//        │            codes::factory) or an ABD / CAS baseline cluster, all
//        │            sharing ONE discrete-event Simulator so batching
//        │            windows, repair budgets and latencies live in a single
//        │            simulated time base
//   RepairScheduler ── background heartbeat detection + regeneration of
//                      crashed L2 servers under a global concurrency budget
//
// MetricsRegistry threads through every path (router, batching, repair);
// snapshot with metrics().to_json().
//
// Concurrency model: one StoreService is single-threaded (like one shard of
// the stress harness); scale-out across OS threads uses one service instance
// per thread.  Within a service, operations overlap freely in *simulated*
// time.  Correctness is checked per shard against the recorded cluster
// History with the existing atomicity/freshness verifiers: coalescing is
// linearizable because an absorbed put orders immediately before the
// surviving same-key write and no read ever observes its value.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "codes/factory.h"
#include "common/rng.h"
#include "lds/cluster.h"
#include "store/metrics.h"
#include "store/repair_scheduler.h"
#include "store/shard_router.h"

namespace lds::store {

enum class ShardProtocol { Lds, Abd, Cas };

const char* protocol_name(ShardProtocol p);

/// Per-shard backend choice: protocol, L2 erasure code (LDS only, built via
/// codes::factory inside LdsConfig), and geometry.
struct ShardBackend {
  ShardProtocol protocol = ShardProtocol::Lds;
  codes::BackendKind code = codes::BackendKind::PmMbr;
  std::size_t n1 = 6, f1 = 1, n2 = 8, f2 = 2;  ///< LDS geometry
  std::size_t n = 9, f = 2;                    ///< ABD / CAS geometry
};

struct StoreOptions {
  std::size_t shards = 4;
  /// Client pool per shard: writers bound batch-dispatch concurrency,
  /// readers bound concurrent gets.
  std::size_t writers_per_shard = 4;
  std::size_t readers_per_shard = 4;
  /// Backend for every shard, unless overridden per shard index.
  ShardBackend backend;
  std::vector<ShardBackend> shard_overrides;
  /// Put coalescing window in simulated time; 0 dispatches immediately.
  double batch_window = 0.5;
  /// Flush an open window early once this many puts are queued.
  std::size_t max_batch = 32;
  /// Admission limit: reject puts while a shard has this many in flight.
  std::size_t admission_limit = 1024;
  std::size_t vnodes = 64;
  bool exponential_latency = false;
  double tau1 = 1.0, tau0 = 1.0, tau2 = 3.0;
  std::uint64_t seed = 1;
  /// Background repair (LDS shards): heartbeat detection + regeneration.
  bool enable_repair = true;
  RepairScheduler::Options repair;
};

struct PutResult {
  bool ok = false;
  Tag tag;
  std::string error;  ///< empty when ok
};

struct GetResult {
  bool ok = false;
  Tag tag;
  Bytes value;
  std::string error;
};

class StoreService {
 public:
  using PutCallback = std::function<void(const PutResult&)>;
  using GetCallback = std::function<void(const GetResult&)>;
  using MultiGetCallback = std::function<void(std::vector<GetResult>)>;

  explicit StoreService(StoreOptions opt);
  ~StoreService();

  // ---- async client API -----------------------------------------------------
  /// Queue a put; the callback fires (in simulated time) when the write —
  /// possibly coalesced with later same-key puts of the same batch — is
  /// durable, or immediately with ok=false when admission-rejected.
  void put(const std::string& key, Bytes value, PutCallback cb = {});
  void get(const std::string& key, GetCallback cb = {});
  /// Fan out one get per key (keys may span shards); the callback fires
  /// when all have completed, results in key order.
  void multi_get(std::vector<std::string> keys, MultiGetCallback cb);

  // ---- sync wrappers (drive the simulator until completion) -----------------
  PutResult put_sync(const std::string& key, Bytes value);
  GetResult get_sync(const std::string& key);
  std::vector<GetResult> multi_get_sync(std::vector<std::string> keys);

  // ---- operations & introspection -------------------------------------------
  net::Simulator& sim() { return sim_; }
  /// Const: the service's shard set is fixed at construction, so letting
  /// callers mutate ring membership would desync routing from shards_.
  const ShardRouter& router() const { return router_; }
  MetricsRegistry& metrics() { return metrics_; }
  RepairScheduler* repair() { return repair_.get(); }
  const StoreOptions& options() const { return opt_; }
  std::size_t num_shards() const { return shards_.size(); }
  ShardProtocol shard_protocol(std::size_t s) const {
    return shards_.at(s)->spec.protocol;
  }
  /// The shard's recorded operation history (for the linearizability
  /// checkers); absorbed puts never reach it by design.
  const core::History& shard_history(std::size_t s) const;
  /// Keys currently interned on one shard.
  std::size_t shard_objects(std::size_t s) const {
    return shards_.at(s)->objects.size();
  }
  /// Client ops accepted but not yet called back.
  std::size_t outstanding() const { return outstanding_; }

  /// Inject one server crash on `shard` within its failure budget (L1/L2
  /// for LDS, servers for ABD/CAS).  Crashed LDS L2 servers are detected
  /// and rebuilt by the repair scheduler when enabled, returning their
  /// budget slot.  Returns false when the budget is exhausted.
  bool inject_crash(std::size_t shard, Rng& rng);

  /// True when no client op is in flight and (with repair enabled) every
  /// injected L2 crash has been repaired.
  bool idle() const;
  /// Drive the simulator until idle() — and, when given, until the caller's
  /// `drained` predicate also holds (a closed-loop driver passes "no more
  /// ops queued", since outstanding() is momentarily zero between its ops) —
  /// then stop heartbeats and drain the remaining events.  Aborts if the
  /// simulation stalls with work still pending.
  void quiesce(const std::function<bool()>& drained = {});

 private:
  struct PendingPut {
    ObjectId obj = 0;
    Bytes value;
    std::vector<PutCallback> cbs;           ///< surviving + absorbed puts
    std::vector<net::SimTime> submitted;    ///< one per callback
  };
  struct PendingGet {
    ObjectId obj = 0;
    GetCallback cb;
    net::SimTime submitted = 0;
  };

  struct Shard {
    ShardBackend spec;
    std::unique_ptr<core::LdsCluster> lds;
    std::unique_ptr<baselines::AbdCluster> abd;
    std::unique_ptr<baselines::CasCluster> cas;
    std::unordered_map<std::string, ObjectId> objects;
    // Batching state.
    std::vector<PendingPut> window;  ///< open batch (coalesced as it fills)
    std::size_t window_puts = 0;     ///< puts in the window incl. absorbed
    bool window_open = false;
    /// Bumped on every flush so a stale timer (its window already flushed
    /// early by max_batch) cannot flush the next window prematurely.
    std::uint64_t window_epoch = 0;
    std::deque<PendingPut> put_queue;  ///< flushed, awaiting a writer
    std::deque<PendingGet> get_queue;
    std::vector<std::size_t> free_writers;
    std::vector<std::size_t> free_readers;
    std::size_t puts_in_flight = 0;  ///< admission accounting
    // Failure budgets.
    std::vector<bool> l1_down, l2_down, srv_down;
    std::size_t l1_down_count = 0, l2_down_count = 0, srv_down_count = 0;
  };

  ObjectId intern(Shard& sh, std::size_t shard_idx, const std::string& key);
  void open_window(std::size_t shard_idx);
  void flush_window(std::size_t shard_idx);
  void pump_puts(std::size_t shard_idx);
  void pump_gets(std::size_t shard_idx);
  void dispatch_put(std::size_t shard_idx, std::size_t writer, PendingPut p);
  void dispatch_get(std::size_t shard_idx, std::size_t reader, PendingGet g);
  void cluster_write(Shard& sh, std::size_t writer, ObjectId obj, Bytes value,
                     std::function<void(Tag)> done);
  void cluster_read(Shard& sh, std::size_t reader, ObjectId obj,
                    std::function<void(Tag, Bytes)> done);

  StoreOptions opt_;
  net::Simulator sim_;
  MetricsRegistry metrics_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<RepairScheduler> repair_;
  std::size_t outstanding_ = 0;
};

}  // namespace lds::store
