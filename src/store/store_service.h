// StoreService: a multi-object, multi-shard store fronting many independent
// cluster instances behind one client API.
//
// Layering (ROADMAP north star "sharding, batching, async, caching"):
//
//   put/get/multi_get (string keys, async callbacks or sync wrappers)
//        │
//   ShardRouter ── consistent-hash ring: key -> shard; shard -> engine lane
//        │
//   per-shard write batching ── queued puts to the same shard coalesce into
//        │                      one dispatch window; same-key puts collapse
//        │                      to the last value (absorbed puts complete
//        │                      with the surviving write's tag), bounded by
//        │                      an admission limit
//   shard backends ── each shard owns its own LdsCluster (L2 code via
//        │            codes::factory) or an ABD / CAS baseline cluster,
//        │            scheduled onto ONE lane of the service's execution
//        │            engine (net/engine.h)
//   RepairScheduler ── background heartbeat detection + regeneration of
//                      crashed L2 servers under a concurrent-repair budget
//
// MetricsRegistry threads through every path (router, batching, repair);
// snapshot with metrics().to_json().
//
// Execution model (Options::engine_mode):
//
//   * Deterministic — every shard on one SimEngine lane; operations overlap
//     in *simulated* time, runs are bit-reproducible for a fixed seed, and
//     scale-out across OS threads uses one service instance per thread (the
//     pre-engine behavior, unchanged).
//   * Parallel — a ParallelEngine with one worker event loop per shard
//     group; client calls are thread-safe, callbacks fire on the owning
//     shard's lane, and throughput scales with lanes.  Runs are not
//     reproducible (OS scheduling interleaves lanes); correctness is
//     checked per shard against the recorded History with the existing
//     atomicity/freshness verifiers — each shard's history uses its own
//     lane's monotonic clock, which is exactly the per-domain premise those
//     checkers already have.
//
// Coalescing stays linearizable in both modes because an absorbed put
// orders immediately before the surviving same-key write and no read ever
// observes its value.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "codes/factory.h"
#include "common/rng.h"
#include "lds/cluster.h"
#include "net/engine.h"
#include "store/metrics.h"
#include "store/repair_scheduler.h"
#include "store/shard_router.h"

namespace lds::store {

enum class ShardProtocol { Lds, Abd, Cas };

const char* protocol_name(ShardProtocol p);

/// Per-shard backend choice: protocol, L2 erasure code (LDS only, built via
/// codes::factory inside LdsConfig), and geometry.
struct ShardBackend {
  ShardProtocol protocol = ShardProtocol::Lds;
  codes::BackendKind code = codes::BackendKind::PmMbr;
  std::size_t n1 = 6, f1 = 1, n2 = 8, f2 = 2;  ///< LDS geometry
  std::size_t n = 9, f = 2;                    ///< ABD / CAS geometry
};

struct StoreOptions {
  std::size_t shards = 4;
  /// Client pool per shard: writers bound batch-dispatch concurrency,
  /// readers bound concurrent gets.
  std::size_t writers_per_shard = 4;
  std::size_t readers_per_shard = 4;
  /// Backend for every shard, unless overridden per shard index.
  ShardBackend backend;
  std::vector<ShardBackend> shard_overrides;
  /// Put coalescing window in simulated time; 0 dispatches immediately.
  double batch_window = 0.5;
  /// Flush an open window early once this many puts are queued.
  std::size_t max_batch = 32;
  /// Admission limit: reject puts while a shard has this many in flight.
  std::size_t admission_limit = 1024;
  std::size_t vnodes = 64;
  bool exponential_latency = false;
  double tau1 = 1.0, tau0 = 1.0, tau2 = 3.0;
  std::uint64_t seed = 1;
  /// Execution engine (see net/engine.h): Deterministic = one simulated
  /// time base, bit-reproducible; Parallel = one worker event loop per
  /// shard group, wall-clock scale-out.
  net::EngineMode engine_mode = net::EngineMode::Deterministic;
  /// Parallel lanes; 0 = min(shards, hardware threads).
  std::size_t engine_threads = 0;
  /// Background repair (LDS shards): heartbeat detection + regeneration.
  /// In Parallel mode the scheduler's budget is scoped per lane.
  bool enable_repair = true;
  RepairScheduler::Options repair;
};

struct PutResult {
  bool ok = false;
  Tag tag;
  std::string error;  ///< empty when ok
};

struct GetResult {
  bool ok = false;
  Tag tag;
  Bytes value;
  std::string error;
};

class StoreService {
 public:
  using PutCallback = std::function<void(const PutResult&)>;
  using GetCallback = std::function<void(const GetResult&)>;
  using MultiGetCallback = std::function<void(std::vector<GetResult>)>;

  explicit StoreService(StoreOptions opt);
  ~StoreService();

  // ---- async client API -----------------------------------------------------
  // Deterministic mode: call from the owning thread; callbacks fire inline
  // while the simulator runs.  Parallel mode: thread-safe; callbacks fire on
  // the destination shard's engine lane.
  /// Queue a put; the callback fires when the write — possibly coalesced
  /// with later same-key puts of the same batch — is durable, or
  /// immediately with ok=false when admission-rejected.
  void put(const std::string& key, Bytes value, PutCallback cb = {});
  void get(const std::string& key, GetCallback cb = {});
  /// Fan out one get per key (keys may span shards); the callback fires
  /// when all have completed, results in key order.
  void multi_get(std::vector<std::string> keys, MultiGetCallback cb);

  // ---- sync wrappers --------------------------------------------------------
  // Deterministic: drive the simulator until completion.  Parallel: block
  // the calling thread until the lanes complete the operation.
  PutResult put_sync(const std::string& key, Bytes value);
  GetResult get_sync(const std::string& key);
  std::vector<GetResult> multi_get_sync(std::vector<std::string> keys);

  // ---- operations & introspection -------------------------------------------
  net::Engine& engine() { return *engine_; }
  bool parallel() const { return parallel_; }
  /// Lane-0 simulator (Deterministic mode's single time base).  Under a
  /// parallel engine, prefer engine().lane_sim(shard_lane(s)) and the lane
  /// discipline documented in net/engine.h.
  net::Simulator& sim() { return engine_->lane_sim(0); }
  std::size_t shard_lane(std::size_t s) const { return shards_.at(s)->lane; }
  /// Const: the service's shard set is fixed at construction, so letting
  /// callers mutate ring membership would desync routing from shards_.
  const ShardRouter& router() const { return router_; }
  MetricsRegistry& metrics() { return metrics_; }
  RepairScheduler* repair() { return repair_.get(); }
  const StoreOptions& options() const { return opt_; }
  std::size_t num_shards() const { return shards_.size(); }
  ShardProtocol shard_protocol(std::size_t s) const {
    return shards_.at(s)->spec.protocol;
  }
  /// The shard's recorded operation history (for the linearizability
  /// checkers); absorbed puts never reach it by design.  Stable only while
  /// the shard's lane is quiescent (e.g. after quiesce()).
  const core::History& shard_history(std::size_t s) const;
  /// Keys currently interned on one shard (quiescent lanes only).
  std::size_t shard_objects(std::size_t s) const {
    return shards_.at(s)->objects.size();
  }
  /// Client ops accepted but not yet called back.
  std::size_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// Inject one server crash on `shard` within its failure budget (L1/L2
  /// for LDS, servers for ABD/CAS).  Crashed LDS L2 servers are detected
  /// and rebuilt by the repair scheduler when enabled, returning their
  /// budget slot.  Returns false when the budget is exhausted.  In Parallel
  /// mode this blocks on the shard's lane; never call it from a callback
  /// (use inject_crash_async there).
  bool inject_crash(std::size_t shard, Rng& rng);
  /// Fire-and-forget variant safe from any thread or lane: runs the
  /// injection on the shard's lane with a derived Rng(seed); `done` (may be
  /// null) fires on that lane with the budget verdict.
  void inject_crash_async(std::size_t shard, std::uint64_t seed,
                          std::function<void(bool)> done = {});

  /// True when no client op or queued injection is in flight and (with
  /// repair enabled) every injected L2 crash has been repaired.  Safe to
  /// poll from the driving thread in Parallel mode.
  bool idle() const;
  /// Run the engine until idle() — and, when given, until the caller's
  /// `drained` predicate also holds (a closed-loop driver passes "no more
  /// ops queued", since outstanding() is momentarily zero between its ops) —
  /// then stop heartbeats and drain the remaining events.  Aborts if the
  /// execution stalls with work still pending.  In Parallel mode `drained`
  /// is polled from this thread and must read only thread-safe state.
  void quiesce(const std::function<bool()>& drained = {});

 private:
  struct PendingPut {
    ObjectId obj = 0;
    Bytes value;
    std::vector<PutCallback> cbs;           ///< surviving + absorbed puts
    std::vector<net::SimTime> submitted;    ///< one per callback
  };
  struct PendingGet {
    ObjectId obj = 0;
    GetCallback cb;
    net::SimTime submitted = 0;
  };

  struct Shard {
    ShardBackend spec;
    std::size_t lane = 0;               ///< engine lane this shard runs on
    net::Simulator* sim = nullptr;      ///< == engine->lane_sim(lane)
    std::unique_ptr<core::LdsCluster> lds;
    std::unique_ptr<baselines::AbdCluster> abd;
    std::unique_ptr<baselines::CasCluster> cas;
    std::unordered_map<std::string, ObjectId> objects;
    // Batching state (lane-local).
    std::vector<PendingPut> window;  ///< open batch (coalesced as it fills)
    std::size_t window_puts = 0;     ///< puts in the window incl. absorbed
    bool window_open = false;
    /// Bumped on every flush so a stale timer (its window already flushed
    /// early by max_batch) cannot flush the next window prematurely.
    std::uint64_t window_epoch = 0;
    std::deque<PendingPut> put_queue;  ///< flushed, awaiting a writer
    std::deque<PendingGet> get_queue;
    std::vector<std::size_t> free_writers;
    std::vector<std::size_t> free_readers;
    /// Admission accounting; atomic because admission happens on the
    /// submitting thread while completion happens on the lane.
    std::atomic<std::size_t> puts_in_flight{0};
    // Failure budgets: vectors are lane-local, counts are atomic so the
    // idle() poll can read them cross-thread.
    std::vector<bool> l1_down, l2_down, srv_down;
    std::atomic<std::size_t> l1_down_count{0}, l2_down_count{0},
        srv_down_count{0};
  };

  ObjectId intern(Shard& sh, std::size_t shard_idx, const std::string& key);
  void enqueue_put(std::size_t shard_idx, const std::string& key, Bytes value,
                   PutCallback cb);
  void enqueue_get(std::size_t shard_idx, const std::string& key,
                   GetCallback cb);
  void flush_window(std::size_t shard_idx);
  void pump_puts(std::size_t shard_idx);
  void pump_gets(std::size_t shard_idx);
  void dispatch_put(std::size_t shard_idx, std::size_t writer, PendingPut p);
  void dispatch_get(std::size_t shard_idx, std::size_t reader, PendingGet g);
  void cluster_write(Shard& sh, std::size_t writer, ObjectId obj, Bytes value,
                     std::function<void(Tag)> done);
  void cluster_read(Shard& sh, std::size_t reader, ObjectId obj,
                    std::function<void(Tag, Bytes)> done);
  bool inject_crash_on_lane(std::size_t shard, Rng& rng);

  StoreOptions opt_;
  bool parallel_ = false;
  std::unique_ptr<net::Engine> engine_;
  MetricsRegistry metrics_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<RepairScheduler> repair_;
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::size_t> pending_injections_{0};
};

}  // namespace lds::store
