// StoreService: a multi-object, multi-shard store fronting many independent
// cluster instances behind one client API.
//
// Layering (ROADMAP north star "sharding, batching, async, caching"):
//
//   store::Client (store/client.h) — deadlines, retries, Status sync API
//        │
//   put/get/put_if/multi_get/multi_put (string keys, async callbacks or
//        │                              sync wrappers; Status + Version
//        │                              results, zero-copy Value payloads)
//        │
//   ShardRouter ── consistent-hash ring: key -> shard; shard -> engine lane
//        │
//   per-shard write batching ── queued puts to the same shard coalesce into
//        │                      one dispatch window; same-key puts collapse
//        │                      to the last value (absorbed puts complete
//        │                      with the surviving write's tag), bounded by
//        │                      an admission limit
//   shard backends ── each shard owns its own LdsCluster (L2 code via
//        │            codes::factory) or an ABD / CAS baseline cluster,
//        │            scheduled onto ONE lane of the service's execution
//        │            engine (net/engine.h)
//   RepairScheduler ── background heartbeat detection + regeneration of
//                      crashed L2 servers under a concurrent-repair budget
//
// MetricsRegistry threads through every path (router, batching, repair);
// snapshot with metrics().to_json().
//
// Execution model (Options::engine_mode):
//
//   * Deterministic — every shard on one SimEngine lane; operations overlap
//     in *simulated* time, runs are bit-reproducible for a fixed seed, and
//     scale-out across OS threads uses one service instance per thread (the
//     pre-engine behavior, unchanged).
//   * Parallel — a ParallelEngine with one worker event loop per shard
//     group; client calls are thread-safe, callbacks fire on the owning
//     shard's lane, and throughput scales with lanes.  Runs are not
//     reproducible (OS scheduling interleaves lanes); correctness is
//     checked per shard against the recorded History with the existing
//     atomicity/freshness verifiers — each shard's history uses its own
//     lane's monotonic clock, which is exactly the per-domain premise those
//     checkers already have.
//
// Coalescing stays linearizable in both modes because an absorbed put
// orders immediately before the surviving same-key write and no read ever
// observes its value.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "codes/factory.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "lds/cluster.h"
#include "net/engine.h"
#include "storage/manifest.h"
#include "store/metrics.h"
#include "store/repair_scheduler.h"
#include "store/shard_router.h"

namespace lds::member {
class Coordinator;  // member/coordinator.h: the head's view-change driver
class Fabric;       // member/fabric.h: per-process membership runtime
struct View;        // member/view.h: epoch + node->process placement
}  // namespace lds::member

namespace lds::store {

class RemoteServer;  // store/remote.h: serves remote store::Clients over TCP

enum class ShardProtocol { Lds, Abd, Cas };

const char* protocol_name(ShardProtocol p);

/// Per-shard backend choice: protocol, L2 erasure code (LDS only, built via
/// codes::factory inside LdsConfig), and geometry.
struct ShardBackend {
  ShardProtocol protocol = ShardProtocol::Lds;
  codes::BackendKind code = codes::BackendKind::PmMbr;
  std::size_t n1 = 6, f1 = 1, n2 = 8, f2 = 2;  ///< LDS geometry
  std::size_t n = 9, f = 2;                    ///< ABD / CAS geometry
};

struct StoreOptions {
  std::size_t shards = 4;
  /// Client pool per shard: writers bound batch-dispatch concurrency,
  /// readers bound concurrent gets.
  std::size_t writers_per_shard = 4;
  std::size_t readers_per_shard = 4;
  /// Backend for every shard, unless overridden per shard index.
  ShardBackend backend;
  std::vector<ShardBackend> shard_overrides;
  /// Put coalescing window in simulated time; 0 dispatches immediately.
  double batch_window = 0.5;
  /// Flush an open window early once this many puts are queued.
  std::size_t max_batch = 32;
  /// Admission limit: reject puts while a shard has this many in flight.
  std::size_t admission_limit = 1024;
  std::size_t vnodes = 64;
  bool exponential_latency = false;
  double tau1 = 1.0, tau0 = 1.0, tau2 = 3.0;
  std::uint64_t seed = 1;
  /// Execution engine (see net/engine.h): Deterministic = one simulated
  /// time base, bit-reproducible; Parallel = one worker event loop per
  /// shard group, wall-clock scale-out.
  net::EngineMode engine_mode = net::EngineMode::Deterministic;
  /// Parallel lanes; 0 = min(shards, hardware threads).
  std::size_t engine_threads = 0;
  /// Regular-consistency readers per LDS shard (ReadMode::Regular pool);
  /// 0 = regular reads are not provisioned and return InvalidArgument.
  std::size_t regular_readers_per_shard = 0;
  /// Background repair (LDS shards): heartbeat detection + regeneration.
  /// In Parallel mode the scheduler's budget is scoped per lane.
  bool enable_repair = true;
  RepairScheduler::Options repair;
  /// Durable mode: when non-empty, every shard persists under
  /// `<data_dir>/shard-<s>` — its LdsCluster opens per-L2 WAL+checkpoint
  /// backends and recovers on construction, and the shard's key→ObjectId
  /// intern table is persisted in an always-synced KeyLog (record ordinal =
  /// ObjectId), so keys keep their objects across restarts.  A top-level
  /// MANIFEST pins shards/vnodes (routing stability); a mismatched restart
  /// aborts rather than scatter keys.  Requires every shard to be LDS.
  std::string data_dir;
  storage::DurabilityPolicy durability;
  /// Multi-process membership (member subsystem): a LISTENING Fabric whose
  /// view may place this service's L1/L2 servers in other processes.  The
  /// service installs the fabric's RemoteTransport on its shard cluster,
  /// applies view changes (placement surgery on the shard lane) and owns a
  /// member::Coordinator driving joins and moves.  Requires Parallel mode,
  /// exactly one LDS shard, no data_dir (remote placement is RAM-only for
  /// now); the repair scheduler is disabled (reconfiguration state-sync
  /// replaces it).  The fabric must outlive the service; the service's
  /// destructor stops it.
  member::Fabric* fabric = nullptr;
};

/// Per-read consistency choice.  Atomic is the paper's LDS (linearizable);
/// Regular skips the put-tag write-back (Section VI extension, LDS shards
/// only) — one round trip fewer, but reads are no longer mutually monotone,
/// so histories containing regular reads must be verified with
/// History::check_regularity, not check_atomicity.  TagOnly (LDS shards
/// only) runs just the get-committed-tag quorum phase and returns the
/// committed tag with an EMPTY value: the client read cache's validation
/// round.  The returned tag is >= the tag of any operation that completed
/// before the round started, so "cached version == returned tag" certifies
/// the cached value is still current.
enum class ReadMode : std::uint8_t { Atomic, Regular, TagOnly };

/// Outcome of a put.  `status` is authoritative (see common/status.h for the
/// taxonomy); `ok`/`error` are derived at construction so seed-era call
/// sites (`r.ok`, `r.error`) keep compiling during the migration, and `tag`
/// is the raw token behind the typed `version`.
struct PutResult {
  Status status;
  Tag tag;
  Version version;
  /// True when this put was absorbed by a newer same-key put of the same
  /// batch window: the write is durable, but `version` is the SURVIVOR's —
  /// a read of the key returns the survivor's value, not this one.  The
  /// remote bench uses this to record only linearization-visible writes.
  bool coalesced = false;
  bool ok = false;        ///< derived: status.ok()
  std::string error;      ///< derived: status.to_string() when !ok

  PutResult() = default;
  static PutResult success(Tag t) {
    PutResult r;
    r.tag = t;
    r.version = Version(t);
    r.ok = true;
    return r;
  }
  static PutResult failure(Status s) {
    PutResult r;
    r.error = s.to_string();
    r.status = std::move(s);
    return r;
  }
};

/// Outcome of a get.  The value is a shared handle onto the buffer the
/// protocol delivered — no copy between the cluster callback and the caller.
struct GetResult {
  Status status;
  Tag tag;
  Version version;
  Value value;
  bool ok = false;
  std::string error;

  GetResult() = default;
  static GetResult success(Tag t, Value v) {
    GetResult r;
    r.tag = t;
    r.version = Version(t);
    r.value = std::move(v);
    r.ok = true;
    return r;
  }
  static GetResult failure(Status s) {
    GetResult r;
    r.error = s.to_string();
    r.status = std::move(s);
    return r;
  }
};

/// One entry of a multi_put.
struct KeyValue {
  std::string key;
  Value value;
};

class StoreService {
 public:
  using PutCallback = std::function<void(const PutResult&)>;
  using GetCallback = std::function<void(const GetResult&)>;
  using MultiGetCallback = std::function<void(std::vector<GetResult>)>;
  using MultiPutCallback = std::function<void(std::vector<PutResult>)>;

  explicit StoreService(StoreOptions opt);
  ~StoreService();

  /// The top-level storage manifest a durable service pins at
  /// `opt.data_dir/MANIFEST`.  Exposed so a daemon can pre-check an
  /// existing data_dir (verify_or_write) and turn a mismatch into a clean
  /// InvalidArgument exit instead of the constructor's abort.
  static storage::Manifest storage_manifest(const StoreOptions& opt);

  // ---- async client API -----------------------------------------------------
  // Deterministic mode: call from the owning thread; callbacks fire inline
  // while the simulator runs.  Parallel mode: thread-safe; callbacks fire on
  // the destination shard's engine lane.  store::Client (store/client.h) is
  // the documented entry point layered on these: it adds per-op deadlines,
  // retry policies and Status-returning sync wrappers.
  /// Queue a put; the callback fires with the new Version when the write —
  /// possibly coalesced with later same-key puts of the same batch — is
  /// durable, or immediately with AdmissionReject when over the limit.
  void put(const std::string& key, Value value, PutCallback cb = {});
  /// Read a key.  Keys never written on their shard complete immediately
  /// with NotFound (and are NOT interned, so probing reads cannot grow
  /// per-shard state).  ReadMode::Regular requires an LDS shard and
  /// regular_readers_per_shard > 0, else InvalidArgument.
  /// ReadMode::TagOnly requires an LDS shard; it completes with the
  /// committed tag and an empty Value (the cache validation round).
  void get(const std::string& key, GetCallback cb = {},
           ReadMode mode = ReadMode::Atomic);
  /// Conditional put: commits iff the key's current version equals
  /// `expected` (optimistic concurrency — tags strictly increase, so there
  /// is no ABA).  Mismatch completes with Aborted carrying the observed
  /// version; like any CAS it may also abort *spuriously* when a same-key
  /// write is in flight or committed during the verification read (the
  /// guard that prevents a verified-stale commit from silently overwriting
  /// an intervening write) — callers treat Aborted as "re-read and retry".
  /// A never-written key verifies against Version(kTag0).  Bypasses the
  /// coalescing window: a conditional put is never absorbed and always
  /// gets its own tag.
  void put_if(const std::string& key, Value value, Version expected,
              PutCallback cb = {});
  /// Fan out one get per key (keys may span shards); the callback fires
  /// when all have completed, results in key order.  An empty key vector
  /// still fires the callback exactly once, with an empty result.
  void multi_get(std::vector<std::string> keys, MultiGetCallback cb);
  /// Scatter-gather puts, results in entry order; empty input fires once.
  void multi_put(std::vector<KeyValue> entries, MultiPutCallback cb);

  // ---- sync wrappers --------------------------------------------------------
  // Deterministic: drive the simulator until completion.  Parallel: block
  // the calling thread until the lanes complete the operation.
  PutResult put_sync(const std::string& key, Value value);
  GetResult get_sync(const std::string& key,
                     ReadMode mode = ReadMode::Atomic);
  PutResult put_if_sync(const std::string& key, Value value,
                        Version expected);
  std::vector<GetResult> multi_get_sync(std::vector<std::string> keys);
  std::vector<PutResult> multi_put_sync(std::vector<KeyValue> entries);

  // ---- remote serving --------------------------------------------------------
  /// Serve remote store::Clients (store/remote.h) on 127.0.0.1:`port`
  /// (0 = ephemeral; read back with listen_port()).  Requires
  /// EngineMode::Parallel — the request handler submits from the transport's
  /// event-loop thread, which only the parallel client API tolerates —
  /// else InvalidArgument.  InvalidArgument while already listening;
  /// listen() after stop_listening() starts a fresh server.  Not
  /// deterministic (see net/transport.h).
  ///
  /// ListenOptions tunes the serving transport without dragging
  /// net/transport.h into this header; net_threads maps to
  /// TcpTransport::Options::progress_threads (connections shard across
  /// them round-robin).
  struct ListenOptions {
    std::size_t net_threads = 1;
  };
  Status listen(std::uint16_t port);
  Status listen(std::uint16_t port, ListenOptions lo);
  /// The bound port after a successful listen(); 0 when not listening.
  std::uint16_t listen_port() const;
  /// Drop every remote connection and stop accepting; in-flight operations
  /// complete inside the service, their replies are dropped.  Idempotent.
  void stop_listening();

  // ---- operations & introspection -------------------------------------------
  net::Engine& engine() { return *engine_; }
  bool parallel() const { return parallel_; }
  /// Lane-0 simulator (Deterministic mode's single time base).  Under a
  /// parallel engine, prefer engine().lane_sim(shard_lane(s)) and the lane
  /// discipline documented in net/engine.h.
  net::Simulator& sim() { return engine_->lane_sim(0); }
  std::size_t shard_lane(std::size_t s) const { return shards_.at(s)->lane; }
  /// Const: the service's shard set is fixed at construction, so letting
  /// callers mutate ring membership would desync routing from shards_.
  const ShardRouter& router() const { return router_; }
  MetricsRegistry& metrics() { return metrics_; }
  RepairScheduler* repair() { return repair_.get(); }
  const StoreOptions& options() const { return opt_; }
  std::size_t num_shards() const { return shards_.size(); }
  ShardProtocol shard_protocol(std::size_t s) const {
    return shards_.at(s)->spec.protocol;
  }
  /// The shard's LDS cluster (nullptr for ABD/CAS shards).  Quiescent-lane
  /// introspection only (storage meters, cost accounting, direct crash
  /// injection in tests).
  core::LdsCluster* shard_lds(std::size_t s) { return shards_.at(s)->lds.get(); }
  /// The shard's recorded operation history (for the linearizability
  /// checkers); absorbed puts never reach it by design.  Stable only while
  /// the shard's lane is quiescent (e.g. after quiesce()).
  const core::History& shard_history(std::size_t s) const;
  /// Keys currently interned on one shard (quiescent lanes only).
  std::size_t shard_objects(std::size_t s) const {
    return shards_.at(s)->objects.size();
  }
  /// Client ops accepted but not yet called back.
  std::size_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// Inject one server crash on `shard` within its failure budget (L1/L2
  /// for LDS, servers for ABD/CAS).  Crashed LDS L2 servers are detected
  /// and rebuilt by the repair scheduler when enabled, returning their
  /// budget slot.  Returns false when the budget is exhausted.  In Parallel
  /// mode this blocks on the shard's lane; never call it from a callback
  /// (use inject_crash_async there).
  bool inject_crash(std::size_t shard, Rng& rng);
  /// Fire-and-forget variant safe from any thread or lane: runs the
  /// injection on the shard's lane with a derived Rng(seed); `done` (may be
  /// null) fires on that lane with the budget verdict.
  void inject_crash_async(std::size_t shard, std::uint64_t seed,
                          std::function<void(bool)> done = {});

  // ---- membership (Options::fabric) ------------------------------------------
  /// The coordinator driving joins/moves; null without a fabric.
  member::Coordinator* coordinator() { return coordinator_.get(); }
  /// Admin entry point behind RemoteReconfig (store/remote.h): op 0 reports
  /// the epoch, op 1 moves `l2_indices` to the member process at host:port
  /// (empty host = back here).  `done(status, epoch)` fires on the
  /// coordinator's worker thread once state-sync completed.
  void admin_reconfig(std::uint8_t op, std::vector<std::uint32_t> l2_indices,
                      std::string host, std::uint16_t port,
                      std::function<void(Status, std::uint64_t)> done);
  /// View-change quiesce seams (the coordinator's hooks; public for tests).
  /// pause stops handing queued ops to cluster clients — accepted ops keep
  /// queueing; drain waits until every DISPATCHED op completed (all client
  /// pools idle); resume re-opens dispatch and pumps the queues.
  void pause_dispatch();
  bool drain_dispatched(double timeout_s);
  void resume_dispatch();

  /// True when no client op or queued injection is in flight and (with
  /// repair enabled) every injected L2 crash has been repaired.  Safe to
  /// poll from the driving thread in Parallel mode.
  bool idle() const;
  /// Run the engine until idle() — and, when given, until the caller's
  /// `drained` predicate also holds (a closed-loop driver passes "no more
  /// ops queued", since outstanding() is momentarily zero between its ops) —
  /// then stop heartbeats and drain the remaining events.  Aborts if the
  /// execution stalls with work still pending.  In Parallel mode `drained`
  /// is polled from this thread and must read only thread-safe state.
  void quiesce(const std::function<bool()>& drained = {});

 private:
  struct PendingPut {
    ObjectId obj = 0;
    Value value;                            ///< shared handle, never copied
    std::vector<PutCallback> cbs;           ///< surviving + absorbed puts
    std::vector<net::SimTime> submitted;    ///< one per callback
  };
  struct PendingGet {
    ObjectId obj = 0;
    GetCallback cb;
    net::SimTime submitted = 0;
    ReadMode mode = ReadMode::Atomic;
    /// put_if verification read: the op's outstanding/admission slots and
    /// engine hold belong to the enclosing conditional put, so completion
    /// must not touch them (the final verdict does).
    bool internal = false;
  };

  struct Shard {
    ShardBackend spec;
    std::size_t lane = 0;               ///< engine lane this shard runs on
    net::Simulator* sim = nullptr;      ///< == engine->lane_sim(lane)
    std::unique_ptr<core::LdsCluster> lds;
    std::unique_ptr<baselines::AbdCluster> abd;
    std::unique_ptr<baselines::CasCluster> cas;
    /// Durable mode: persisted key→ObjectId bindings (null in RAM mode).
    std::unique_ptr<storage::KeyLog> keylog;
    std::unordered_map<std::string, ObjectId> objects;
    /// Conditional-put guards (lane-local): cluster writes currently in the
    /// window / queue / dispatched per object, and the newest tag a
    /// completed put committed.  put_if aborts when either shows a write
    /// the verification read may not have observed.
    std::unordered_map<ObjectId, std::size_t> writes_in_flight;
    std::unordered_map<ObjectId, Tag> last_committed;
    // Batching state (lane-local).
    std::vector<PendingPut> window;  ///< open batch (coalesced as it fills)
    std::size_t window_puts = 0;     ///< puts in the window incl. absorbed
    bool window_open = false;
    /// Bumped on every flush so a stale timer (its window already flushed
    /// early by max_batch) cannot flush the next window prematurely.
    std::uint64_t window_epoch = 0;
    std::deque<PendingPut> put_queue;  ///< flushed, awaiting a writer
    std::deque<PendingGet> get_queue;
    /// ReadMode::Regular runs on its own reader pool + queue so a burst of
    /// regular reads never starves atomic ones (and vice versa).
    std::deque<PendingGet> regular_get_queue;
    std::vector<std::size_t> free_writers;
    std::vector<std::size_t> free_readers;
    std::vector<std::size_t> free_regular_readers;
    /// Admission accounting; atomic because admission happens on the
    /// submitting thread while completion happens on the lane.
    std::atomic<std::size_t> puts_in_flight{0};
    // Failure budgets: vectors are lane-local, counts are atomic so the
    // idle() poll can read them cross-thread.
    std::vector<bool> l1_down, l2_down, srv_down;
    std::atomic<std::size_t> l1_down_count{0}, l2_down_count{0},
        srv_down_count{0};
  };

  /// Bind `key` to a shard-local ObjectId, persisting the binding first in
  /// durable mode.  Unavailable when the keylog cannot persist it (poisoned
  /// disk): a put that cannot durably name its object must not proceed.
  Result<ObjectId> intern(Shard& sh, std::size_t shard_idx,
                          const std::string& key);
  void enqueue_put(std::size_t shard_idx, const std::string& key, Value value,
                   PutCallback cb);
  void enqueue_get(std::size_t shard_idx, const std::string& key,
                   GetCallback cb, ReadMode mode);
  void enqueue_put_if(std::size_t shard_idx, const std::string& key,
                      Value value, Version expected, PutCallback cb);
  void flush_window(std::size_t shard_idx);
  void pump_puts(std::size_t shard_idx);
  void pump_gets(std::size_t shard_idx);
  void dispatch_put(std::size_t shard_idx, std::size_t writer, PendingPut p);
  void dispatch_get(std::size_t shard_idx, std::size_t reader, PendingGet g);
  void cluster_write(Shard& sh, std::size_t writer, ObjectId obj, Value value,
                     std::function<void(Tag)> done);
  void cluster_read(Shard& sh, std::size_t reader, ObjectId obj,
                    std::function<void(Tag, Value)> done, ReadMode mode);
  /// Release one admission slot + the outstanding gauge and complete `cb`
  /// with `r` (gauges drop before the callback, as in dispatch_put).
  void finish_put(std::size_t shard_idx, const PutCallback& cb,
                  const PutResult& r);
  bool inject_crash_on_lane(std::size_t shard, Rng& rng);
  /// Membership plumbing (Options::fabric; all act on shard 0).
  void apply_member_view(const member::View& prev, const member::View& next);
  std::vector<ObjectId> member_objects();
  void member_repair_local(std::size_t l2_index,
                           std::function<void(std::uint32_t, std::uint32_t)>
                               done);
  void member_repair_step(std::size_t l2_index,
                          std::shared_ptr<std::vector<ObjectId>> objects,
                          std::size_t next, std::uint32_t repaired,
                          std::uint32_t failed,
                          std::function<void(std::uint32_t, std::uint32_t)>
                              done);

  StoreOptions opt_;
  bool parallel_ = false;
  std::unique_ptr<net::Engine> engine_;
  MetricsRegistry metrics_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<RepairScheduler> repair_;
  std::unique_ptr<RemoteServer> remote_;
  /// Stopped servers kept alive until the engine drains: reply callbacks of
  /// requests still completing in the service reference them (see listen()).
  std::vector<std::unique_ptr<RemoteServer>> retired_remotes_;
  std::unique_ptr<member::Coordinator> coordinator_;
  /// View-change quiesce: pump_puts/pump_gets stop dispatching while set
  /// (checked on the shard lanes; accepted ops keep queueing).
  std::atomic<bool> dispatch_paused_{false};
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::size_t> pending_injections_{0};
};

}  // namespace lds::store
