#include "store/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace lds::store {

// ---- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t u) {
  // u >= 1.  Values below 2^kSubBits index their own bucket exactly; larger
  // values share a major bucket per power of two, subdivided by the top
  // kSubBits mantissa bits (the HdrHistogram layout).
  const int e = std::bit_width(u) - 1;  // floor(log2 u)
  if (e < kSubBits) return static_cast<std::size_t>(u);
  const std::uint64_t sub = (u >> (e - kSubBits)) & ((1u << kSubBits) - 1);
  return (static_cast<std::size_t>(e - kSubBits + 1) << kSubBits) |
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_value(std::size_t idx) {
  // Midpoint of the quantized range the bucket covers, de-quantized.
  if (idx < (1u << kSubBits)) return static_cast<double>(idx) / 1024.0;
  const int e = static_cast<int>(idx >> kSubBits) + kSubBits - 1;
  const std::uint64_t sub = idx & ((1u << kSubBits) - 1);
  const std::uint64_t lo = (std::uint64_t{1} << e) |
                           (sub << (e - kSubBits));
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return (static_cast<double>(lo) + static_cast<double>(width) / 2.0) / 1024.0;
}

void Histogram::record(double v) {
  if (!(v >= 0.0)) v = 0.0;  // clamp negatives and NaN
  if (count_ == 0) {
    min_ = max_ = v;
    buckets_.assign(kBuckets, 0);
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const double scaled = v * 1024.0;
  const std::uint64_t u =
      scaled >= 9.0e18 ? std::uint64_t{9'000'000'000'000'000'000}
                       : static_cast<std::uint64_t>(scaled) + 1;
  ++buckets_[bucket_index(u)];
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(bucket_value(i), min(), max());
    }
  }
  return max();
}

// ---- MetricsRegistry --------------------------------------------------------

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  if (auto it = counters_.find(name); it != counters_.end()) {
    total += it->second.value();
  }
  for (const auto& shard : shard_counters_) {
    if (auto it = shard.find(name); it != shard.end()) {
      total += it->second.value();
    }
  }
  return total;
}

namespace {

void append_num(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_counters(std::string& out,
                     const std::map<std::string, Counter>& counters) {
  out += '{';
  bool first = true;
  for (const auto& [name, c] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(c.value());
  }
  out += '}';
}

void append_histograms(std::string& out,
                       const std::map<std::string, Histogram>& histograms) {
  out += '{';
  bool first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(h.count());
    out += ",\"min\":";
    append_num(out, h.min());
    out += ",\"mean\":";
    append_num(out, h.mean());
    out += ",\"p50\":";
    append_num(out, h.percentile(0.50));
    out += ",\"p90\":";
    append_num(out, h.percentile(0.90));
    out += ",\"p99\":";
    append_num(out, h.percentile(0.99));
    out += ",\"max\":";
    append_num(out, h.max());
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  // Collect the union of counter names for the totals section.
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [name, c] : counters_) totals[name] += c.value();
  for (const auto& shard : shard_counters_) {
    for (const auto& [name, c] : shard) totals[name] += c.value();
  }

  std::string out = "{\"totals\":{";
  bool first = true;
  for (const auto& [name, v] : totals) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(v);
  }
  out += "},\"counters\":";
  append_counters(out, counters_);
  out += ",\"histograms\":";
  append_histograms(out, histograms_);
  out += ",\"shards\":[";
  for (std::size_t s = 0; s < shard_counters_.size(); ++s) {
    if (s > 0) out += ',';
    out += "{\"counters\":";
    append_counters(out, shard_counters_[s]);
    out += ",\"histograms\":";
    append_histograms(out, shard_histograms_[s]);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace lds::store
