#include "store/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace lds::store {

// ---- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t u) {
  // u >= 1.  Values below 2^kSubBits index their own bucket exactly; larger
  // values share a major bucket per power of two, subdivided by the top
  // kSubBits mantissa bits (the HdrHistogram layout).
  const int e = std::bit_width(u) - 1;  // floor(log2 u)
  if (e < kSubBits) return static_cast<std::size_t>(u);
  const std::uint64_t sub = (u >> (e - kSubBits)) & ((1u << kSubBits) - 1);
  return (static_cast<std::size_t>(e - kSubBits + 1) << kSubBits) |
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_value(std::size_t idx) {
  // Midpoint of the quantized range the bucket covers, de-quantized.
  if (idx < (1u << kSubBits)) return static_cast<double>(idx) / 1024.0;
  const int e = static_cast<int>(idx >> kSubBits) + kSubBits - 1;
  const std::uint64_t sub = idx & ((1u << kSubBits) - 1);
  const std::uint64_t lo = (std::uint64_t{1} << e) |
                           (sub << (e - kSubBits));
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return (static_cast<double>(lo) + static_cast<double>(width) / 2.0) / 1024.0;
}

void Histogram::record(double v) {
  if (!(v >= 0.0)) v = 0.0;  // clamp negatives and NaN
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
    buckets_.assign(kBuckets, 0);
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const double scaled = v * 1024.0;
  const std::uint64_t u =
      scaled >= 9.0e18 ? std::uint64_t{9'000'000'000'000'000'000}
                       : static_cast<std::uint64_t>(scaled) + 1;
  ++buckets_[bucket_index(u)];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile_locked(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(bucket_value(i), min_, max_);
    }
  }
  return max_;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return percentile_locked(p);
}

Histogram::Stats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.count = count_;
  if (count_ == 0) return out;
  out.min = min_;
  out.max = max_;
  out.mean = sum_ / static_cast<double>(count_);
  out.p50 = percentile_locked(0.50);
  out.p90 = percentile_locked(0.90);
  out.p99 = percentile_locked(0.99);
  return out;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t num_shards) {
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Scope>());
  }
}

Counter& MetricsRegistry::scoped_counter(Scope& s, const std::string& name) {
  std::lock_guard<std::mutex> lock(s.mu);
  return s.counters[name];
}

Histogram& MetricsRegistry::scoped_histogram(Scope& s,
                                             const std::string& name) {
  std::lock_guard<std::mutex> lock(s.mu);
  return s.histograms[name];
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(global_.mu);
    if (auto it = global_.counters.find(name); it != global_.counters.end()) {
      total += it->second.value();
    }
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (auto it = shard->counters.find(name); it != shard->counters.end()) {
      total += it->second.value();
    }
  }
  return total;
}

void MetricsRegistry::snapshot_scope(const Scope& s, Snapshot::Scope* out) {
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& [name, c] : s.counters) out->counters[name] = c.value();
  for (const auto& [name, h] : s.histograms) {
    out->histograms[name] = h.stats();
  }
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snapshot_scope(global_, &snap.global);
  snap.shards.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    snapshot_scope(*shards_[s], &snap.shards[s]);
  }
  // Totals from the captured values — never re-read live counters here, or
  // a concurrent writer could make the totals disagree with the sections.
  for (const auto& [name, v] : snap.global.counters) snap.totals[name] += v;
  for (const auto& shard : snap.shards) {
    for (const auto& [name, v] : shard.counters) snap.totals[name] += v;
  }
  return snap;
}

namespace {

void append_num(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_counters(std::string& out,
                     const std::map<std::string, std::uint64_t>& counters) {
  out += '{';
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(v);
  }
  out += '}';
}

void append_histograms(
    std::string& out,
    const std::map<std::string, Histogram::Stats>& histograms) {
  out += '{';
  bool first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(h.count);
    out += ",\"min\":";
    append_num(out, h.min);
    out += ",\"mean\":";
    append_num(out, h.mean);
    out += ",\"p50\":";
    append_num(out, h.p50);
    out += ",\"p90\":";
    append_num(out, h.p90);
    out += ",\"p99\":";
    append_num(out, h.p99);
    out += ",\"max\":";
    append_num(out, h.max);
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"totals\":";
  append_counters(out, snap.totals);
  out += ",\"counters\":";
  append_counters(out, snap.global.counters);
  out += ",\"histograms\":";
  append_histograms(out, snap.global.histograms);
  out += ",\"shards\":[";
  for (std::size_t s = 0; s < snap.shards.size(); ++s) {
    if (s > 0) out += ',';
    out += "{\"counters\":";
    append_counters(out, snap.shards[s].counters);
    out += ",\"histograms\":";
    append_histograms(out, snap.shards[s].histograms);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace lds::store
