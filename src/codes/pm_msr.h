// Product-matrix minimum-storage-regenerating (MSR) code, d = 2k - 2.
//
// Companion construction from Rashmi-Shah-Kumar (the paper's reference [25]),
// used here only for the MBR-vs-MSR ablations of Remarks 1 and 2: at the MSR
// point alpha = B/k is minimal but repair bandwidth is larger, so the LDS
// read cost cannot drop to Theta(1).
//
// Parameters (per stripe): alpha = k - 1, beta = 1, d = 2k - 2 = 2 alpha,
// B = k alpha = alpha (alpha + 1).
//
// Construction.  M = [S1; S2] stacks two alpha x alpha symmetric matrices
// holding the B message symbols.  Psi = [Phi  Lambda Phi] where Phi is an
// n x alpha Vandermonde block on points x_i and Lambda = diag(x_i^alpha);
// then row i of Psi is the plain Vandermonde row (1, x_i, ..., x_i^{d-1}), so
// any d rows are invertible.  Node i stores
//     element_i = psi_i^t M = phi_i^t S1 + lambda_i phi_i^t S2.
//
// Repair of node f: helper j sends <element_j, phi_f> (depends only on f's
// index).  From d helpers, Psi_rep (M phi_f) = h yields S1 phi_f and
// S2 phi_f; by symmetry element_f = (S1 phi_f)^t + lambda_f (S2 phi_f)^t.
//
// Decoding from any k elements: with P = Y Phi_DC^t, entry (i, j) equals
// A_ij + lambda_i B_ij where A = Phi S1 Phi^t and B = Phi S2 Phi^t restricted
// to the k chosen rows; A and B are symmetric, so the off-diagonal pairs
// (P_ij, P_ji) separate A_ij and B_ij because the lambdas are distinct.  Each
// row of off-diagonal values then yields S2 phi_i (resp. S1 phi_i) through an
// (alpha x alpha) Vandermonde solve, and alpha such rows give S2 (resp. S1).
//
// Field constraint: the lambdas must be distinct, i.e. the map x -> x^alpha
// must be injective on the chosen points; with generator powers this holds
// iff n <= 255 / gcd(alpha, 255).  The constructor enforces it.
#pragma once

#include <vector>

#include "codes/erasure_code.h"
#include "matrix/matrix.h"

namespace lds::codes {

class PmMsrCode final : public RegeneratingCode {
 public:
  /// Requires k >= 2, d = 2k - 2, d <= n - 1, n <= 255, and distinct lambdas
  /// (see the field constraint above).
  PmMsrCode(std::size_t n, std::size_t k);

  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t d() const override { return 2 * k_ - 2; }
  std::size_t alpha() const override { return k_ - 1; }
  std::size_t beta() const override { return 1; }
  std::size_t file_size() const override { return k_ * (k_ - 1); }

  std::vector<Bytes> encode(std::span<const std::uint8_t> stripe)
      const override;
  Bytes encode_one(std::span<const std::uint8_t> stripe,
                   int index) const override;
  std::optional<Bytes> decode(
      std::span<const IndexedBytes> elements) const override;

  Bytes helper_data(int helper_index,
                    std::span<const std::uint8_t> helper_element,
                    int target_index) const override;
  std::optional<Bytes> repair(
      int target_index, std::span<const IndexedBytes> helpers) const override;

 private:
  /// Split one stripe into the two symmetric message matrices S1, S2.
  void message_matrices(std::span<const std::uint8_t> stripe,
                        math::Matrix& s1, math::Matrix& s2) const;

  std::size_t n_;
  std::size_t k_;
  math::Matrix phi_;                  // n x alpha Vandermonde block
  math::Matrix psi_;                  // n x d = [Phi | Lambda Phi]
  std::vector<gf::Elem> lambda_;      // lambda_i = x_i^alpha, all distinct
};

}  // namespace lds::codes
