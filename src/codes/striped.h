// Striping codec: lifts a per-stripe (B-symbol) code to arbitrary byte values.
//
// The paper treats the object value v as a single file of B symbols; real
// values are arbitrary byte strings, so we prepend an 8-byte little-endian
// length header, zero-pad to a multiple of B, and run the code independently
// per stripe.  A node's coded element for a value is the concatenation of its
// per-stripe elements (stripe-major), and likewise for helper data; all sizes
// are therefore value-size * alpha/B and value-size * beta/B up to padding,
// matching the normalized cost accounting of Section II-d.
//
// Encode hot path.  Every wrapped code is a fixed linear map per stripe
// (element i, symbol t  =  <E[i*alpha+t], stripe>), so encode_value does NOT
// loop stripe-by-stripe through tiny dot products.  Instead it probes the
// code once with the B basis stripes to recover the (n*alpha) x B encode map
// E, then processes stripes in cache-sized chunks in *plane-major* form:
// gather input plane j (symbol j of every stripe in the chunk, contiguous),
// accumulate output planes with long gf::mul_into / gf::axpy calls (the
// runtime-dispatched SIMD kernels), and scatter back to the stripe-major
// element layout.  The probe is validated against the wrapped code on a test
// stripe at build time; a code that is not a fixed linear map (none today)
// silently keeps the reference stripe-by-stripe path.
//
// Large encodes additionally fan out across the lanes of a net::Engine
// (encode_value(value, engine)): stripe chunks go into a shared claim
// counter, every other lane is posted a helper task, and the calling lane
// helps until all chunks are done.  Helpers never block, so the fan-out
// cannot deadlock even when every lane encodes concurrently.  The output is
// byte-identical on every path - scalar or SIMD, serial or lane-parallel,
// Sim or Parallel engine - because chunk boundaries only partition pure,
// exact GF arithmetic.
#pragma once

#include <memory>
#include <mutex>

#include "codes/erasure_code.h"

namespace lds::net {
class Engine;
}

namespace lds::codes {

class StripedCode {
 public:
  explicit StripedCode(std::shared_ptr<const RegeneratingCode> code);

  const RegeneratingCode& code() const { return *code_; }

  std::size_t n() const { return code_->n(); }
  std::size_t k() const { return code_->k(); }
  std::size_t d() const { return code_->d(); }

  /// Number of stripes used for a value of `value_size` bytes.
  std::size_t stripes(std::size_t value_size) const;
  /// Bytes stored per element for a value of `value_size` bytes.
  std::size_t element_size(std::size_t value_size) const;
  /// Bytes of helper data per helper for a value of `value_size` bytes.
  std::size_t helper_size(std::size_t value_size) const;

  /// Encode a full value into all n elements (planar SIMD path when the
  /// wrapped code is linear, reference path otherwise).
  std::vector<Bytes> encode_value(const Bytes& value) const;

  /// Encode a full value, fanning stripe chunks out across `engine`'s lanes
  /// when the value is large enough to pay for the hop (null engine or a
  /// single-lane engine = the serial path).  Byte-identical to every other
  /// path; deterministic engines see no scheduled events (the fan-out is
  /// pure compute, invisible to virtual time).
  std::vector<Bytes> encode_value(const Bytes& value,
                                  net::Engine* engine) const;

  /// Reference stripe-by-stripe encode through the wrapped code.  Kept
  /// callable for the equivalence tests and as the baseline leg of
  /// bench_codes_micro; encode_value must match it byte for byte.
  std::vector<Bytes> encode_value_stripewise(const Bytes& value) const;

  /// Encode only element `index`.
  Bytes encode_element(const Bytes& value, int index) const;

  /// Decode the original value from >= k elements with distinct indices.
  /// All elements must have equal length (same stripe count).
  std::optional<Bytes> decode_value(
      std::span<const IndexedBytes> elements) const;

  /// Helper data for repairing `target_index`, computed from one element.
  Bytes helper_data(int helper_index, const Bytes& element,
                    int target_index) const;

  /// Repair a full element from exactly d helper payloads.
  std::optional<Bytes> repair_element(
      int target_index, std::span<const IndexedBytes> helpers) const;

 private:
  /// Per-stripe encode map E and its validity (see file comment).  Shared
  /// across copies of this StripedCode (the map is a pure function of the
  /// wrapped code, which is shared too) and built once, thread-safely.
  struct PlanarMap {
    std::once_flag once;
    bool ok = false;
    std::vector<Bytes> rows;  ///< (n * alpha) rows of B coefficients
  };

  Bytes frame(const Bytes& value) const;  // header + pad to stripe multiple

  /// The probed encode map, or null when the wrapped code failed the
  /// linearity self-check (=> stripe-by-stripe fallback).
  const PlanarMap* planar_map() const;

  /// Encode stripes [s0, s1) of `framed` into the matching slices of `out`
  /// through the planar map (rows `row0 <= i*alpha+t < row1` only, so
  /// encode_element can reuse it).  Pure compute; thread-safe for disjoint
  /// stripe ranges.
  void encode_stripe_range(const PlanarMap& map, const std::uint8_t* framed,
                           std::size_t s0, std::size_t s1, std::size_t row0,
                           std::size_t row1,
                           std::span<Bytes> out) const;

  std::vector<Bytes> encode_value_planar(const PlanarMap& map,
                                         const Bytes& framed) const;
  std::vector<Bytes> encode_value_lanes(const PlanarMap& map,
                                        const Bytes& framed,
                                        net::Engine& engine) const;

  std::shared_ptr<const RegeneratingCode> code_;
  mutable std::shared_ptr<PlanarMap> planar_;
};

}  // namespace lds::codes
