// Striping codec: lifts a per-stripe (B-symbol) code to arbitrary byte values.
//
// The paper treats the object value v as a single file of B symbols; real
// values are arbitrary byte strings, so we prepend an 8-byte little-endian
// length header, zero-pad to a multiple of B, and run the code independently
// per stripe.  A node's coded element for a value is the concatenation of its
// per-stripe elements (stripe-major), and likewise for helper data; all sizes
// are therefore value-size * alpha/B and value-size * beta/B up to padding,
// matching the normalized cost accounting of Section II-d.
#pragma once

#include <memory>

#include "codes/erasure_code.h"

namespace lds::codes {

class StripedCode {
 public:
  explicit StripedCode(std::shared_ptr<const RegeneratingCode> code);

  const RegeneratingCode& code() const { return *code_; }

  std::size_t n() const { return code_->n(); }
  std::size_t k() const { return code_->k(); }
  std::size_t d() const { return code_->d(); }

  /// Number of stripes used for a value of `value_size` bytes.
  std::size_t stripes(std::size_t value_size) const;
  /// Bytes stored per element for a value of `value_size` bytes.
  std::size_t element_size(std::size_t value_size) const;
  /// Bytes of helper data per helper for a value of `value_size` bytes.
  std::size_t helper_size(std::size_t value_size) const;

  /// Encode a full value into all n elements.
  std::vector<Bytes> encode_value(const Bytes& value) const;

  /// Encode only element `index`.
  Bytes encode_element(const Bytes& value, int index) const;

  /// Decode the original value from >= k elements with distinct indices.
  /// All elements must have equal length (same stripe count).
  std::optional<Bytes> decode_value(
      std::span<const IndexedBytes> elements) const;

  /// Helper data for repairing `target_index`, computed from one element.
  Bytes helper_data(int helper_index, const Bytes& element,
                    int target_index) const;

  /// Repair a full element from exactly d helper payloads.
  std::optional<Bytes> repair_element(
      int target_index, std::span<const IndexedBytes> helpers) const;

 private:
  Bytes frame(const Bytes& value) const;  // header + pad to stripe multiple

  std::shared_ptr<const RegeneratingCode> code_;
};

}  // namespace lds::codes
