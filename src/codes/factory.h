// Back-end code selection for the LDS cluster and the ablation benches.
#pragma once

#include <memory>
#include <string>

#include "codes/striped.h"

namespace lds::codes {

enum class BackendKind {
  PmMbr,        ///< the paper's choice: product-matrix MBR, beta = 1
  Rs,           ///< Remark 1 ablation: RS / MSR-storage-point, fetch-k-decode
  Replication,  ///< Remark 2 ablation: n full copies
};

const char* backend_name(BackendKind kind);

/// Build a striped regenerating backend over n elements.
/// k and d are the code parameters of the LDS deployment (ignored where the
/// kind does not use them: replication ignores both, RS ignores d).
StripedCode make_backend(BackendKind kind, std::size_t n, std::size_t k,
                         std::size_t d);

}  // namespace lds::codes
