// Random Linear Network Coding (RLNC) regenerating storage - the paper's
// Section-VI open question, explored empirically.
//
// The paper (Section VI / reference [16]) asks: "it is also of interest to
// study feasibility of other codes from the class of regenerating codes
// (like RLNCs) in the back-end layer ... it will be interesting to find out
// the probabilistic guarantees that can be obtained if we use RLNCs instead
// of the codes in [25]."
//
// This module models an RLNC-coded storage system at the MBR point
// (alpha = d beta symbols per node, file size B = k(2d-k+1)/2 at beta = 1)
// with *functional* repair: a replacement node stores d fresh random
// combinations of the helpers' stored symbols, not the coordinates it held
// before.  Consequences explored by the tests and `bench_rlnc_feasibility`:
//
//  * decoding any k nodes succeeds iff their stacked k*alpha x B
//    coefficient matrix has rank B - a probabilistic guarantee that decays
//    (slowly, over GF(256)) as repairs accumulate;
//  * helpers need NO index information at all (they send random
//    combinations), which is weaker than the paper's helper-needs-only-
//    failed-index requirement - but the repaired node's coordinates change,
//    so the LDS reader-side decode through the fixed restriction C1 no
//    longer applies: coefficients must travel with the data.  This is
//    exactly the integration obstacle the paper's question hints at; see
//    DESIGN.md.
//
// The class tracks coefficients explicitly so ranks and decode success are
// exact, not sampled.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "matrix/matrix.h"

namespace lds::codes {

class RlncMbrSystem {
 public:
  /// MBR-point parameters: 1 <= k <= d <= n - 1.  `seed` drives every
  /// random coefficient choice (repairs are reproducible).
  RlncMbrSystem(std::size_t n, std::size_t k, std::size_t d,
                std::uint64_t seed = 1);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }
  std::size_t d() const { return d_; }
  std::size_t alpha() const { return d_; }
  std::size_t file_size() const { return k_ * (2 * d_ - k_ + 1) / 2; }

  /// (Re-)initialize every node with alpha fresh random combinations of the
  /// B-symbol message.
  void init_from_message(std::span<const std::uint8_t> message);

  /// Functional repair of `node` from `helpers` (exactly d distinct ids,
  /// none equal to node): each helper ships beta = 1 fresh random
  /// combination of its alpha stored symbols; the replacement node stores
  /// random re-combinations bringing it back to alpha symbols.
  void repair(int node, std::span<const int> helpers);

  /// Rank of the stacked coefficient matrix of the given nodes (<= B).
  std::size_t rank_of(std::span<const int> nodes) const;

  /// Decode the message from the given nodes; nullopt if their combined
  /// coefficients do not span the message space.
  std::optional<Bytes> decode(std::span<const int> nodes) const;

  /// True iff *every* k-subset of nodes decodes.  Exponential in n choose
  /// k; intended for small n in tests and the feasibility bench.
  bool all_k_subsets_decode() const;

 private:
  struct NodeState {
    math::Matrix coeffs;  // alpha x B
    Bytes symbols;        // alpha payload symbols
  };

  std::vector<std::uint8_t> random_vector(std::size_t len);

  std::size_t n_;
  std::size_t k_;
  std::size_t d_;
  Rng rng_;
  Bytes message_;  // retained for test oracles
  std::vector<NodeState> nodes_;
};

}  // namespace lds::codes
