// Product-matrix minimum-bandwidth-regenerating (MBR) code.
//
// This is the construction of Rashmi, Shah and Kumar (IEEE Trans. IT 2011),
// the paper's reference [25] and the code the LDS algorithm stores in L2.
// Parameters {(n, k, d), (alpha = d, beta = 1)} per stripe, with file size
//
//     B = sum_{i=0}^{k-1} (d - i) = k(2d - k + 1) / 2   symbols/stripe.
//
// Construction.  The B message symbols fill a d x d symmetric matrix
//
//     M = [ S   T ]      S: k x k symmetric,
//         [ T^t 0 ]      T: k x (d-k),
//
// and node i in [0, n) stores  psi_i^t M  (alpha = d symbols), where psi_i is
// row i of an n x d Vandermonde matrix Psi (so any d rows of Psi and any k
// rows of its first-k-column block Phi are invertible).
//
// Exact repair of node f: helper j sends the single symbol
// h_j = psi_j^t M psi_f = <element_j, psi_f>, which depends only on j's
// element and f's index - the property the LDS algorithm requires (an L1
// server takes the first d of the f2+d helper responses, whichever they are).
// From d helpers, Psi_rep (M psi_f) = h gives M psi_f, and by symmetry
// element_f = psi_f^t M = (M psi_f)^t.
//
// Decoding from any k elements {psi_i^t M}: writing psi_i^t = [phi_i^t
// delta_i^t], the last d-k columns give Phi_DC T, so T = Phi_DC^{-1} (.);
// subtracting Delta_DC T^t from the first k columns gives Phi_DC S, so
// S = Phi_DC^{-1} (.).
#pragma once

#include <map>
#include <vector>

#include "codes/erasure_code.h"
#include "matrix/matrix.h"

namespace lds::codes {

class PmMbrCode final : public RegeneratingCode {
 public:
  /// Requires 1 <= k <= d <= n - 1 and n <= 255.
  PmMbrCode(std::size_t n, std::size_t k, std::size_t d);

  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t d() const override { return d_; }
  std::size_t alpha() const override { return d_; }
  std::size_t beta() const override { return 1; }
  std::size_t file_size() const override { return k_ * (2 * d_ - k_ + 1) / 2; }

  std::vector<Bytes> encode(std::span<const std::uint8_t> stripe)
      const override;
  Bytes encode_one(std::span<const std::uint8_t> stripe,
                   int index) const override;
  std::optional<Bytes> decode(
      std::span<const IndexedBytes> elements) const override;

  Bytes helper_data(int helper_index,
                    std::span<const std::uint8_t> helper_element,
                    int target_index) const override;
  std::optional<Bytes> repair(
      int target_index, std::span<const IndexedBytes> helpers) const override;

 private:
  /// Build the d x d symmetric message matrix from one stripe.
  math::Matrix message_matrix(std::span<const std::uint8_t> stripe) const;
  /// Inverse of message_matrix: read S and T back into stripe order.
  Bytes stripe_from_message(const math::Matrix& s, const math::Matrix& t)
      const;

  /// Memoized inverse of select_rows(psi or phi block): repair and decode
  /// solve against the same submatrix for every stripe of a value, so the
  /// Gauss-Jordan work is paid once per index set, not once per stripe.
  const math::Matrix& cached_inverse(const std::vector<int>& rows,
                                     bool phi_block) const;

  std::size_t n_;
  std::size_t k_;
  std::size_t d_;
  math::Matrix psi_;  // n x d Vandermonde
  mutable std::map<std::pair<std::vector<int>, bool>, math::Matrix>
      inverse_cache_;
};

}  // namespace lds::codes
