// Reed-Solomon code (Vandermonde generator, non-systematic).
//
// The baseline erasure code of the paper's related work (reference [26] and
// the single-layer systems [1], [6], [11], [17]).  Per stripe: B = k symbols,
// alpha = 1 symbol per element, decode from any k of n elements.  This code
// sits at the MSR storage point (alpha = B/k) with trivial repair-by-decoding,
// which is exactly the comparison point of Remark 1 (read cost Omega(n1)).
#pragma once

#include <map>
#include <vector>

#include "codes/erasure_code.h"
#include "matrix/matrix.h"

namespace lds::codes {

class RsCode final : public ErasureCode {
 public:
  /// Requires 1 <= k <= n <= 255.
  RsCode(std::size_t n, std::size_t k);

  std::size_t n() const override { return n_; }
  std::size_t k() const override { return k_; }
  std::size_t alpha() const override { return 1; }
  std::size_t file_size() const override { return k_; }

  std::vector<Bytes> encode(std::span<const std::uint8_t> stripe)
      const override;
  Bytes encode_one(std::span<const std::uint8_t> stripe,
                   int index) const override;
  std::optional<Bytes> decode(
      std::span<const IndexedBytes> elements) const override;

 private:
  /// Memoized inverse of the k x k generator submatrix for an index set;
  /// decoding a striped value solves against the same submatrix for every
  /// stripe, so the Gauss-Jordan work is paid once.
  const math::Matrix& cached_inverse(const std::vector<int>& rows) const;

  std::size_t n_;
  std::size_t k_;
  math::Matrix gen_;  // n x k Vandermonde generator
  mutable std::map<std::vector<int>, math::Matrix> inverse_cache_;
};

/// Adapter presenting RsCode as a RegeneratingCode with d = k and
/// beta = alpha: a helper ships its whole element and repair decodes the
/// stripe then re-encodes the target.  Used as the "RS back-end" ablation of
/// Remark 1: repair bandwidth per stripe is k symbols = B, so a read that has
/// to reach L2 costs Theta(n1) instead of LDS/MBR's Theta(1).
class RsRegenerating final : public RegeneratingCode {
 public:
  RsRegenerating(std::size_t n, std::size_t k) : rs_(n, k) {}

  std::size_t n() const override { return rs_.n(); }
  std::size_t k() const override { return rs_.k(); }
  std::size_t alpha() const override { return rs_.alpha(); }
  std::size_t file_size() const override { return rs_.file_size(); }
  std::size_t d() const override { return rs_.k(); }
  std::size_t beta() const override { return rs_.alpha(); }

  std::vector<Bytes> encode(std::span<const std::uint8_t> stripe)
      const override {
    return rs_.encode(stripe);
  }
  Bytes encode_one(std::span<const std::uint8_t> stripe,
                   int index) const override {
    return rs_.encode_one(stripe, index);
  }
  std::optional<Bytes> decode(
      std::span<const IndexedBytes> elements) const override {
    return rs_.decode(elements);
  }

  Bytes helper_data(int helper_index,
                    std::span<const std::uint8_t> helper_element,
                    int target_index) const override;
  std::optional<Bytes> repair(
      int target_index, std::span<const IndexedBytes> helpers) const override;

 private:
  RsCode rs_;
};

}  // namespace lds::codes
