#include "codes/striped.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "common/assert.h"
#include "gf/gf256.h"
#include "net/engine.h"

namespace lds::codes {

namespace {
constexpr std::size_t kHeader = 8;

// Chunking for the planar encode: each chunk covers kChunkInputBytes of the
// framed input, so the gathered planes plus one output plane stay cache
// resident while the (n*alpha) x B map sweeps over them.
constexpr std::size_t kChunkInputBytes = 16 * 1024;
// Smaller chunks for the lane fan-out so even the threshold-sized encode
// splits into enough pieces to occupy several lanes.
constexpr std::size_t kLaneChunkInputBytes = 8 * 1024;
// Below this framed size the fan-out hop costs more than the arithmetic.
constexpr std::size_t kMinLaneInputBytes = 48 * 1024;

std::uint64_t read_len(const Bytes& framed) {
  std::uint64_t len = 0;
  for (std::size_t i = 0; i < kHeader; ++i) {
    len |= static_cast<std::uint64_t>(framed[i]) << (8 * i);
  }
  return len;
}
}  // namespace

StripedCode::StripedCode(std::shared_ptr<const RegeneratingCode> code)
    : code_(std::move(code)), planar_(std::make_shared<PlanarMap>()) {
  LDS_REQUIRE(code_ != nullptr, "StripedCode: null code");
}

Bytes StripedCode::frame(const Bytes& value) const {
  const std::size_t b = code_->file_size();
  Bytes framed(kHeader);
  const std::uint64_t len = value.size();
  for (std::size_t i = 0; i < kHeader; ++i) {
    framed[i] = static_cast<std::uint8_t>((len >> (8 * i)) & 0xff);
  }
  framed.insert(framed.end(), value.begin(), value.end());
  const std::size_t rem = framed.size() % b;
  if (rem != 0) framed.resize(framed.size() + (b - rem), 0);
  return framed;
}

std::size_t StripedCode::stripes(std::size_t value_size) const {
  const std::size_t b = code_->file_size();
  return (value_size + kHeader + b - 1) / b;
}

std::size_t StripedCode::element_size(std::size_t value_size) const {
  return stripes(value_size) * code_->alpha();
}

std::size_t StripedCode::helper_size(std::size_t value_size) const {
  return stripes(value_size) * code_->beta();
}

const StripedCode::PlanarMap* StripedCode::planar_map() const {
  PlanarMap& m = *planar_;
  std::call_once(m.once, [&] {
    const std::size_t b = code_->file_size();
    const std::size_t a = code_->alpha();
    const std::size_t n = code_->n();

    // encode(0) must be 0 for a linear map; a code with a constant offset
    // would make the basis probe meaningless.
    Bytes stripe(b, 0);
    auto zero = code_->encode(stripe);
    for (const auto& e : zero) {
      for (std::uint8_t v : e) {
        if (v != 0) return;  // not linear: keep the stripewise path
      }
    }

    // Probe the code with each basis stripe e_j; column j of the map is the
    // resulting coded symbols.
    std::vector<Bytes> rows(n * a, Bytes(b, 0));
    for (std::size_t j = 0; j < b; ++j) {
      stripe[j] = 1;
      auto elems = code_->encode(stripe);
      stripe[j] = 0;
      LDS_CHECK(elems.size() == n, "StripedCode: encode element count");
      for (std::size_t i = 0; i < n; ++i) {
        LDS_CHECK(elems[i].size() == a, "StripedCode: element stripe size");
        for (std::size_t t = 0; t < a; ++t) {
          rows[i * a + t][j] = elems[i][t];
        }
      }
    }

    // Self-check on a dense non-basis stripe: if the code were affine in some
    // hidden way (or randomized), the map reproduction would not match and we
    // keep the reference path.
    for (std::size_t j = 0; j < b; ++j) {
      stripe[j] = static_cast<std::uint8_t>((j * 37 + 11) & 0xff);
      if (stripe[j] == 0) stripe[j] = 1;
    }
    auto probe = code_->encode(stripe);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t t = 0; t < a; ++t) {
        if (gf::dot(rows[i * a + t], stripe) != probe[i][t]) return;
      }
    }

    m.rows = std::move(rows);
    m.ok = true;
  });
  return m.ok ? &m : nullptr;
}

void StripedCode::encode_stripe_range(const PlanarMap& map,
                                      const std::uint8_t* framed,
                                      std::size_t s0, std::size_t s1,
                                      std::size_t row0, std::size_t row1,
                                      std::span<Bytes> out) const {
  const std::size_t b = code_->file_size();
  const std::size_t a = code_->alpha();
  const std::size_t mm = s1 - s0;
  if (mm == 0) return;

  // Gather input planes: plane j = symbol j of every stripe in the range,
  // contiguous so the map sweep below runs long SIMD kernels over it.
  Bytes planes(b * mm);
  for (std::size_t s = 0; s < mm; ++s) {
    const std::uint8_t* src = framed + (s0 + s) * b;
    for (std::size_t j = 0; j < b; ++j) planes[j * mm + s] = src[j];
  }

  Bytes q(mm);
  for (std::size_t r = row0; r < row1; ++r) {
    const Bytes& coeff = map.rows[r];
    // q = sum_j coeff[j] * plane_j, with the first nonzero term a mul_into so
    // q needs no zero-fill pass.
    bool first = true;
    for (std::size_t j = 0; j < b; ++j) {
      if (coeff[j] == 0) continue;
      if (first) {
        gf::mul_into(q, coeff[j], {planes.data() + j * mm, mm});
        first = false;
      } else {
        gf::axpy(q, coeff[j], {planes.data() + j * mm, mm});
      }
    }
    if (first) std::memset(q.data(), 0, mm);

    // Scatter plane r back into the stripe-major element layout.
    const std::size_t i = r / a;
    const std::size_t t = r % a;
    std::uint8_t* dst = out[i].data() + s0 * a + t;
    for (std::size_t s = 0; s < mm; ++s) dst[s * a] = q[s];
  }
}

std::vector<Bytes> StripedCode::encode_value_planar(const PlanarMap& map,
                                                    const Bytes& framed) const {
  const std::size_t b = code_->file_size();
  const std::size_t a = code_->alpha();
  const std::size_t m = framed.size() / b;
  std::vector<Bytes> out(code_->n());
  for (auto& e : out) e.resize(m * a);

  const std::size_t chunk = std::max<std::size_t>(1, kChunkInputBytes / b);
  for (std::size_t s0 = 0; s0 < m; s0 += chunk) {
    const std::size_t s1 = std::min(m, s0 + chunk);
    encode_stripe_range(map, framed.data(), s0, s1, 0, map.rows.size(), out);
  }
  return out;
}

std::vector<Bytes> StripedCode::encode_value_lanes(const PlanarMap& map,
                                                   const Bytes& framed,
                                                   net::Engine& engine) const {
  const std::size_t b = code_->file_size();
  const std::size_t a = code_->alpha();
  const std::size_t m = framed.size() / b;
  std::vector<Bytes> out(code_->n());
  for (auto& e : out) e.resize(m * a);

  const std::size_t chunk = std::max<std::size_t>(1, kLaneChunkInputBytes / b);
  const std::size_t total = (m + chunk - 1) / chunk;

  // Work-helping fan-out: chunks sit behind an atomic claim counter; helper
  // tasks posted to the other lanes and the calling thread all pull from it
  // until it runs dry.  Helpers never wait on anything, so two lanes encoding
  // concurrently (each with helpers queued on the other) cannot deadlock; the
  // caller blocks only on in-flight pure-compute chunks.
  struct Job {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto job = std::make_shared<Job>();
  // Keep the map alive independently of *this: a helper can still be between
  // its last chunk and its return after the caller has moved on.
  auto hold_map = planar_;

  const std::size_t rows = map.rows.size();
  auto run_chunks = [this, job, hold_map, &map, &framed, &out, m, chunk, rows,
                     total] {
    for (;;) {
      const std::size_t c =
          job->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) break;
      const std::size_t s0 = c * chunk;
      const std::size_t s1 = std::min(m, s0 + chunk);
      encode_stripe_range(map, framed.data(), s0, s1, 0, rows, out);
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lk(job->mu);
        job->cv.notify_all();
      }
    }
  };

  const auto self = engine.current_lane();
  std::size_t posted = 0;
  for (std::size_t lane = 0; lane < engine.lanes() && posted + 1 < total;
       ++lane) {
    if (self && *self == lane) continue;  // this thread helps directly below
    engine.post(lane, run_chunks);
    ++posted;
  }

  run_chunks();
  std::unique_lock<std::mutex> lk(job->mu);
  job->cv.wait(lk, [&] {
    return job->done.load(std::memory_order_acquire) == total;
  });
  return out;
}

std::vector<Bytes> StripedCode::encode_value(const Bytes& value) const {
  const PlanarMap* map = planar_map();
  if (map == nullptr) return encode_value_stripewise(value);
  return encode_value_planar(*map, frame(value));
}

std::vector<Bytes> StripedCode::encode_value(const Bytes& value,
                                             net::Engine* engine) const {
  const PlanarMap* map = planar_map();
  if (map == nullptr) return encode_value_stripewise(value);
  Bytes framed = frame(value);
  if (engine == nullptr || engine->lanes() <= 1 ||
      framed.size() < kMinLaneInputBytes) {
    return encode_value_planar(*map, framed);
  }
  return encode_value_lanes(*map, framed, *engine);
}

std::vector<Bytes> StripedCode::encode_value_stripewise(
    const Bytes& value) const {
  const Bytes framed = frame(value);
  const std::size_t b = code_->file_size();
  const std::size_t m = framed.size() / b;
  const std::size_t a = code_->alpha();
  std::vector<Bytes> out(code_->n());
  for (auto& e : out) e.resize(m * a);
  for (std::size_t s = 0; s < m; ++s) {
    auto elems = code_->encode({framed.data() + s * b, b});
    for (std::size_t i = 0; i < elems.size(); ++i) {
      LDS_CHECK(elems[i].size() == a, "StripedCode: element stripe size");
      std::memcpy(out[i].data() + s * a, elems[i].data(), a);
    }
  }
  return out;
}

Bytes StripedCode::encode_element(const Bytes& value, int index) const {
  const std::size_t b = code_->file_size();
  const std::size_t a = code_->alpha();
  const PlanarMap* map = planar_map();
  if (map != nullptr) {
    const Bytes framed = frame(value);
    const std::size_t m = framed.size() / b;
    // Reuse the planar sweep restricted to this element's alpha rows; `out`
    // only needs slot `index` populated.
    std::vector<Bytes> out(code_->n());
    out[static_cast<std::size_t>(index)].resize(m * a);
    const std::size_t row0 = static_cast<std::size_t>(index) * a;
    const std::size_t chunk = std::max<std::size_t>(1, kChunkInputBytes / b);
    for (std::size_t s0 = 0; s0 < m; s0 += chunk) {
      const std::size_t s1 = std::min(m, s0 + chunk);
      encode_stripe_range(*map, framed.data(), s0, s1, row0, row0 + a, out);
    }
    return std::move(out[static_cast<std::size_t>(index)]);
  }

  const Bytes framed = frame(value);
  const std::size_t m = framed.size() / b;
  Bytes out(m * a);
  for (std::size_t s = 0; s < m; ++s) {
    const Bytes e = code_->encode_one({framed.data() + s * b, b}, index);
    LDS_CHECK(e.size() == a, "StripedCode: element stripe size");
    std::memcpy(out.data() + s * a, e.data(), a);
  }
  return out;
}

std::optional<Bytes> StripedCode::decode_value(
    std::span<const IndexedBytes> elements) const {
  if (elements.empty()) return std::nullopt;
  const std::size_t a = code_->alpha();
  const std::size_t elem_len = elements.front().second.size();
  if (elem_len == 0 || elem_len % a != 0) return std::nullopt;
  const std::size_t m = elem_len / a;
  const std::size_t b = code_->file_size();

  Bytes framed(m * b);
  std::vector<IndexedBytes> per_stripe;
  for (std::size_t s = 0; s < m; ++s) {
    per_stripe.clear();
    for (const auto& [i, payload] : elements) {
      if (payload.size() != elem_len) continue;  // inconsistent stripe count
      per_stripe.emplace_back(
          i, Bytes(payload.begin() + static_cast<long>(s * a),
                   payload.begin() + static_cast<long>((s + 1) * a)));
    }
    auto stripe = code_->decode(per_stripe);
    if (!stripe) return std::nullopt;
    LDS_CHECK(stripe->size() == b, "StripedCode: decoded stripe size");
    std::memcpy(framed.data() + s * b, stripe->data(), b);
  }

  if (framed.size() < kHeader) return std::nullopt;
  const std::uint64_t len = read_len(framed);
  if (len > framed.size() - kHeader) return std::nullopt;
  return Bytes(framed.begin() + kHeader,
               framed.begin() + kHeader + static_cast<long>(len));
}

Bytes StripedCode::helper_data(int helper_index, const Bytes& element,
                               int target_index) const {
  const std::size_t a = code_->alpha();
  LDS_REQUIRE(!element.empty() && element.size() % a == 0,
              "StripedCode::helper_data: bad element length");
  const std::size_t m = element.size() / a;
  const std::size_t be = code_->beta();
  Bytes out(m * be);
  for (std::size_t s = 0; s < m; ++s) {
    const Bytes h = code_->helper_data(
        helper_index, {element.data() + s * a, a}, target_index);
    LDS_CHECK(h.size() == be, "StripedCode: helper stripe size");
    std::memcpy(out.data() + s * be, h.data(), be);
  }
  return out;
}

std::optional<Bytes> StripedCode::repair_element(
    int target_index, std::span<const IndexedBytes> helpers) const {
  if (helpers.empty()) return std::nullopt;
  const std::size_t be = code_->beta();
  const std::size_t h_len = helpers.front().second.size();
  if (h_len == 0 || h_len % be != 0) return std::nullopt;
  const std::size_t m = h_len / be;
  const std::size_t a = code_->alpha();

  Bytes out(m * a);
  std::vector<IndexedBytes> per_stripe;
  for (std::size_t s = 0; s < m; ++s) {
    per_stripe.clear();
    for (const auto& [i, payload] : helpers) {
      if (payload.size() != h_len) continue;
      per_stripe.emplace_back(
          i, Bytes(payload.begin() + static_cast<long>(s * be),
                   payload.begin() + static_cast<long>((s + 1) * be)));
    }
    auto elem = code_->repair(target_index, per_stripe);
    if (!elem) return std::nullopt;
    LDS_CHECK(elem->size() == a, "StripedCode: repaired stripe size");
    std::memcpy(out.data() + s * a, elem->data(), a);
  }
  return out;
}

}  // namespace lds::codes
