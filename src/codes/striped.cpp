#include "codes/striped.h"

#include <cstring>

#include "common/assert.h"

namespace lds::codes {

namespace {
constexpr std::size_t kHeader = 8;

std::uint64_t read_len(const Bytes& framed) {
  std::uint64_t len = 0;
  for (std::size_t i = 0; i < kHeader; ++i) {
    len |= static_cast<std::uint64_t>(framed[i]) << (8 * i);
  }
  return len;
}
}  // namespace

StripedCode::StripedCode(std::shared_ptr<const RegeneratingCode> code)
    : code_(std::move(code)) {
  LDS_REQUIRE(code_ != nullptr, "StripedCode: null code");
}

Bytes StripedCode::frame(const Bytes& value) const {
  const std::size_t b = code_->file_size();
  Bytes framed(kHeader);
  const std::uint64_t len = value.size();
  for (std::size_t i = 0; i < kHeader; ++i) {
    framed[i] = static_cast<std::uint8_t>((len >> (8 * i)) & 0xff);
  }
  framed.insert(framed.end(), value.begin(), value.end());
  const std::size_t rem = framed.size() % b;
  if (rem != 0) framed.resize(framed.size() + (b - rem), 0);
  return framed;
}

std::size_t StripedCode::stripes(std::size_t value_size) const {
  const std::size_t b = code_->file_size();
  return (value_size + kHeader + b - 1) / b;
}

std::size_t StripedCode::element_size(std::size_t value_size) const {
  return stripes(value_size) * code_->alpha();
}

std::size_t StripedCode::helper_size(std::size_t value_size) const {
  return stripes(value_size) * code_->beta();
}

std::vector<Bytes> StripedCode::encode_value(const Bytes& value) const {
  const Bytes framed = frame(value);
  const std::size_t b = code_->file_size();
  const std::size_t m = framed.size() / b;
  const std::size_t a = code_->alpha();
  std::vector<Bytes> out(code_->n());
  for (auto& e : out) e.resize(m * a);
  for (std::size_t s = 0; s < m; ++s) {
    auto elems = code_->encode({framed.data() + s * b, b});
    for (std::size_t i = 0; i < elems.size(); ++i) {
      LDS_CHECK(elems[i].size() == a, "StripedCode: element stripe size");
      std::memcpy(out[i].data() + s * a, elems[i].data(), a);
    }
  }
  return out;
}

Bytes StripedCode::encode_element(const Bytes& value, int index) const {
  const Bytes framed = frame(value);
  const std::size_t b = code_->file_size();
  const std::size_t m = framed.size() / b;
  const std::size_t a = code_->alpha();
  Bytes out(m * a);
  for (std::size_t s = 0; s < m; ++s) {
    const Bytes e = code_->encode_one({framed.data() + s * b, b}, index);
    LDS_CHECK(e.size() == a, "StripedCode: element stripe size");
    std::memcpy(out.data() + s * a, e.data(), a);
  }
  return out;
}

std::optional<Bytes> StripedCode::decode_value(
    std::span<const IndexedBytes> elements) const {
  if (elements.empty()) return std::nullopt;
  const std::size_t a = code_->alpha();
  const std::size_t elem_len = elements.front().second.size();
  if (elem_len == 0 || elem_len % a != 0) return std::nullopt;
  const std::size_t m = elem_len / a;
  const std::size_t b = code_->file_size();

  Bytes framed(m * b);
  std::vector<IndexedBytes> per_stripe;
  for (std::size_t s = 0; s < m; ++s) {
    per_stripe.clear();
    for (const auto& [i, payload] : elements) {
      if (payload.size() != elem_len) continue;  // inconsistent stripe count
      per_stripe.emplace_back(
          i, Bytes(payload.begin() + static_cast<long>(s * a),
                   payload.begin() + static_cast<long>((s + 1) * a)));
    }
    auto stripe = code_->decode(per_stripe);
    if (!stripe) return std::nullopt;
    LDS_CHECK(stripe->size() == b, "StripedCode: decoded stripe size");
    std::memcpy(framed.data() + s * b, stripe->data(), b);
  }

  if (framed.size() < kHeader) return std::nullopt;
  const std::uint64_t len = read_len(framed);
  if (len > framed.size() - kHeader) return std::nullopt;
  return Bytes(framed.begin() + kHeader,
               framed.begin() + kHeader + static_cast<long>(len));
}

Bytes StripedCode::helper_data(int helper_index, const Bytes& element,
                               int target_index) const {
  const std::size_t a = code_->alpha();
  LDS_REQUIRE(!element.empty() && element.size() % a == 0,
              "StripedCode::helper_data: bad element length");
  const std::size_t m = element.size() / a;
  const std::size_t be = code_->beta();
  Bytes out(m * be);
  for (std::size_t s = 0; s < m; ++s) {
    const Bytes h = code_->helper_data(
        helper_index, {element.data() + s * a, a}, target_index);
    LDS_CHECK(h.size() == be, "StripedCode: helper stripe size");
    std::memcpy(out.data() + s * be, h.data(), be);
  }
  return out;
}

std::optional<Bytes> StripedCode::repair_element(
    int target_index, std::span<const IndexedBytes> helpers) const {
  if (helpers.empty()) return std::nullopt;
  const std::size_t be = code_->beta();
  const std::size_t h_len = helpers.front().second.size();
  if (h_len == 0 || h_len % be != 0) return std::nullopt;
  const std::size_t m = h_len / be;
  const std::size_t a = code_->alpha();

  Bytes out(m * a);
  std::vector<IndexedBytes> per_stripe;
  for (std::size_t s = 0; s < m; ++s) {
    per_stripe.clear();
    for (const auto& [i, payload] : helpers) {
      if (payload.size() != h_len) continue;
      per_stripe.emplace_back(
          i, Bytes(payload.begin() + static_cast<long>(s * be),
                   payload.begin() + static_cast<long>((s + 1) * be)));
    }
    auto elem = code_->repair(target_index, per_stripe);
    if (!elem) return std::nullopt;
    LDS_CHECK(elem->size() == a, "StripedCode: repaired stripe size");
    std::memcpy(out.data() + s * a, elem->data(), a);
  }
  return out;
}

}  // namespace lds::codes
