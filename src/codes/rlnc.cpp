#include "codes/rlnc.h"

#include <algorithm>
#include <functional>

#include "common/assert.h"

namespace lds::codes {

RlncMbrSystem::RlncMbrSystem(std::size_t n, std::size_t k, std::size_t d,
                             std::uint64_t seed)
    : n_(n), k_(k), d_(d), rng_(seed) {
  LDS_REQUIRE(k >= 1 && k <= d && d <= n - 1,
              "RlncMbrSystem: need 1 <= k <= d <= n-1");
  nodes_.resize(n_);
}

std::vector<std::uint8_t> RlncMbrSystem::random_vector(std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (auto& x : v) x = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  return v;
}

void RlncMbrSystem::init_from_message(
    std::span<const std::uint8_t> message) {
  LDS_REQUIRE(message.size() == file_size(),
              "RlncMbrSystem: message must be B symbols");
  message_.assign(message.begin(), message.end());
  const std::size_t b = file_size();
  for (auto& node : nodes_) {
    node.coeffs = math::Matrix(alpha(), b);
    node.symbols.assign(alpha(), 0);
    for (std::size_t r = 0; r < alpha(); ++r) {
      const auto coeff = random_vector(b);
      std::copy(coeff.begin(), coeff.end(), node.coeffs.row(r).begin());
      node.symbols[r] = gf::dot(coeff, message);
    }
  }
}

void RlncMbrSystem::repair(int node, std::span<const int> helpers) {
  LDS_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < n_,
              "RlncMbrSystem::repair: node out of range");
  LDS_REQUIRE(helpers.size() == d_,
              "RlncMbrSystem::repair: need exactly d helpers");
  const std::size_t b = file_size();

  // Each helper sends beta = 1 fresh random combination of its alpha stored
  // symbols: coefficients over the message space follow by linearity.
  math::Matrix recv_coeffs(d_, b);
  Bytes recv_symbols(d_, 0);
  for (std::size_t h = 0; h < d_; ++h) {
    const int hid = helpers[h];
    LDS_REQUIRE(hid >= 0 && static_cast<std::size_t>(hid) < n_ &&
                    hid != node,
                "RlncMbrSystem::repair: bad helper id");
    for (std::size_t j = h + 1; j < helpers.size(); ++j) {
      LDS_REQUIRE(helpers[j] != hid,
                  "RlncMbrSystem::repair: duplicate helper");
    }
    const NodeState& helper = nodes_[static_cast<std::size_t>(hid)];
    LDS_CHECK(helper.coeffs.rows() == alpha(),
              "RlncMbrSystem: helper not initialized");
    const auto mix = random_vector(alpha());
    // Coefficient row: mix^T * helper.coeffs; payload: <mix, symbols>.
    const auto row = helper.coeffs.lmul_vec(mix);
    std::copy(row.begin(), row.end(), recv_coeffs.row(h).begin());
    recv_symbols[h] = gf::dot(mix, helper.symbols);
  }

  // The replacement re-combines the d received packets into alpha = d
  // stored symbols (fresh random mixing keeps stored state homogeneous).
  NodeState& target = nodes_[static_cast<std::size_t>(node)];
  target.coeffs = math::Matrix(alpha(), b);
  target.symbols.assign(alpha(), 0);
  for (std::size_t r = 0; r < alpha(); ++r) {
    const auto mix = random_vector(d_);
    const auto row = recv_coeffs.lmul_vec(mix);
    std::copy(row.begin(), row.end(), target.coeffs.row(r).begin());
    target.symbols[r] = gf::dot(mix, recv_symbols);
  }
}

std::size_t RlncMbrSystem::rank_of(std::span<const int> nodes) const {
  const std::size_t b = file_size();
  math::Matrix stacked(nodes.size() * alpha(), b);
  std::size_t r = 0;
  for (int id : nodes) {
    LDS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < n_,
                "RlncMbrSystem::rank_of: node out of range");
    const NodeState& st = nodes_[static_cast<std::size_t>(id)];
    LDS_CHECK(st.coeffs.rows() == alpha(), "RlncMbrSystem: uninitialized");
    for (std::size_t i = 0; i < alpha(); ++i) {
      auto dst = stacked.row(r++);
      auto src = st.coeffs.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return stacked.rank();
}

std::optional<Bytes> RlncMbrSystem::decode(
    std::span<const int> nodes) const {
  const std::size_t b = file_size();
  const std::size_t rows = nodes.size() * alpha();
  if (rows < b) return std::nullopt;

  // Stack coefficients and payloads, then Gauss-Jordan the augmented
  // system; success iff rank reaches B.
  math::Matrix a(rows, b);
  Bytes y(rows, 0);
  std::size_t r = 0;
  for (int id : nodes) {
    const NodeState& st = nodes_[static_cast<std::size_t>(id)];
    for (std::size_t i = 0; i < alpha(); ++i) {
      auto src = st.coeffs.row(i);
      std::copy(src.begin(), src.end(), a.row(r).begin());
      y[r] = st.symbols[i];
      ++r;
    }
  }

  // Forward elimination with partial pivoting over the rectangular system.
  std::size_t rank = 0;
  for (std::size_t col = 0; col < b && rank < rows; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows && a.at(pivot, col) == 0) ++pivot;
    if (pivot == rows) return std::nullopt;  // rank deficiency
    if (pivot != rank) {
      for (std::size_t j = 0; j < b; ++j) {
        std::swap(a.at(pivot, j), a.at(rank, j));
      }
      std::swap(y[pivot], y[rank]);
    }
    const gf::Elem inv = gf::inv(a.at(rank, col));
    gf::scale(a.row(rank), inv);
    y[rank] = gf::mul(y[rank], inv);
    for (std::size_t rr = 0; rr < rows; ++rr) {
      if (rr == rank) continue;
      const gf::Elem f = a.at(rr, col);
      if (f != 0) {
        gf::axpy(a.row(rr), f, a.row(rank));
        y[rr] = gf::add(y[rr], gf::mul(f, y[rank]));
      }
    }
    ++rank;
  }
  if (rank < b) return std::nullopt;

  Bytes message(b, 0);
  // After full reduction, row i of the eliminated system corresponds to
  // unit vector e_{col(i)}; because we eliminated columns in order, row i
  // solves symbol i.
  for (std::size_t i = 0; i < b; ++i) message[i] = y[i];
  return message;
}

bool RlncMbrSystem::all_k_subsets_decode() const {
  std::vector<int> subset(k_);
  bool ok = true;
  std::function<void(std::size_t, std::size_t)> rec =
      [&](std::size_t start, std::size_t depth) {
        if (!ok) return;
        if (depth == k_) {
          auto decoded = decode(subset);
          if (!decoded || *decoded != message_) ok = false;
          return;
        }
        for (std::size_t i = start; i <= n_ - (k_ - depth); ++i) {
          subset[depth] = static_cast<int>(i);
          rec(i + 1, depth + 1);
        }
      };
  rec(0, 0);
  return ok;
}

}  // namespace lds::codes
