#include "codes/pm_msr.h"

#include <algorithm>
#include <numeric>

#include "matrix/vandermonde.h"

namespace lds::codes {

PmMsrCode::PmMsrCode(std::size_t n, std::size_t k) : n_(n), k_(k) {
  LDS_REQUIRE(k >= 2, "PmMsrCode: need k >= 2");
  const std::size_t d = 2 * k - 2;
  const std::size_t a = k - 1;
  LDS_REQUIRE(d <= n - 1 && n <= 255, "PmMsrCode: need d <= n-1, n <= 255");

  const auto xs = math::default_eval_points(n);
  phi_ = math::vandermonde(xs, a);
  psi_ = math::vandermonde(xs, d);
  lambda_.resize(n);
  for (std::size_t i = 0; i < n; ++i) lambda_[i] = gf::pow(xs[i], a);

  // Distinct-lambda constraint (needed by decode).
  std::vector<gf::Elem> sorted = lambda_;
  std::sort(sorted.begin(), sorted.end());
  LDS_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "PmMsrCode: lambda_i = x_i^alpha not distinct; "
              "need n <= 255/gcd(k-1, 255)");
}

void PmMsrCode::message_matrices(std::span<const std::uint8_t> stripe,
                                 math::Matrix& s1, math::Matrix& s2) const {
  LDS_REQUIRE(stripe.size() == file_size(),
              "PmMsrCode: stripe must be B symbols");
  const std::size_t a = alpha();
  s1 = math::Matrix(a, a);
  s2 = math::Matrix(a, a);
  std::size_t pos = 0;
  for (math::Matrix* s : {&s1, &s2}) {
    for (std::size_t i = 0; i < a; ++i) {
      for (std::size_t j = i; j < a; ++j) {
        s->at(i, j) = stripe[pos];
        s->at(j, i) = stripe[pos];
        ++pos;
      }
    }
  }
  LDS_CHECK(pos == file_size(), "PmMsrCode: message fill mismatch");
}

std::vector<Bytes> PmMsrCode::encode(
    std::span<const std::uint8_t> stripe) const {
  math::Matrix s1, s2;
  message_matrices(stripe, s1, s2);
  const math::Matrix y1 = phi_.mul(s1);  // n x alpha
  const math::Matrix y2 = phi_.mul(s2);
  std::vector<Bytes> out(n_);
  const std::size_t a = alpha();
  for (std::size_t i = 0; i < n_; ++i) {
    out[i].resize(a);
    for (std::size_t c = 0; c < a; ++c) {
      out[i][c] = gf::add(y1.at(i, c), gf::mul(lambda_[i], y2.at(i, c)));
    }
  }
  return out;
}

Bytes PmMsrCode::encode_one(std::span<const std::uint8_t> stripe,
                            int index) const {
  LDS_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < n_,
              "PmMsrCode::encode_one: index out of range");
  math::Matrix s1, s2;
  message_matrices(stripe, s1, s2);
  const auto i = static_cast<std::size_t>(index);
  const auto v1 = s1.mul_vec(phi_.row(i));  // S1 phi_i = (phi_i^t S1)^t
  const auto v2 = s2.mul_vec(phi_.row(i));
  Bytes out(alpha());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = gf::add(v1[c], gf::mul(lambda_[i], v2[c]));
  }
  return out;
}

std::optional<Bytes> PmMsrCode::decode(
    std::span<const IndexedBytes> elements) const {
  const std::size_t a = alpha();
  std::vector<int> idx;
  math::Matrix y(k_, a);
  for (const auto& [i, payload] : elements) {
    if (i < 0 || static_cast<std::size_t>(i) >= n_) continue;
    if (payload.size() != a) continue;
    if (std::find(idx.begin(), idx.end(), i) != idx.end()) continue;
    std::copy(payload.begin(), payload.end(), y.row(idx.size()).begin());
    idx.push_back(i);
    if (idx.size() == k_) break;
  }
  if (idx.size() < k_) return std::nullopt;

  const math::Matrix phi_dc = phi_.select_rows(idx);  // k x alpha
  // P = Y Phi_DC^t; P_ij = A_ij + lambda_i B_ij with A, B symmetric.
  const math::Matrix p = y.mul(phi_dc.transpose());  // k x k

  // Separate the off-diagonal entries of A and B.
  math::Matrix amat(k_, k_), bmat(k_, k_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = i + 1; j < k_; ++j) {
      const gf::Elem li = lambda_[static_cast<std::size_t>(idx[i])];
      const gf::Elem lj = lambda_[static_cast<std::size_t>(idx[j])];
      LDS_CHECK(li != lj, "PmMsrCode: duplicate lambda in decode");
      const gf::Elem b = gf::div(gf::add(p.at(i, j), p.at(j, i)),
                                 gf::add(li, lj));
      const gf::Elem av = gf::add(p.at(i, j), gf::mul(li, b));
      bmat.at(i, j) = b;
      bmat.at(j, i) = b;
      amat.at(i, j) = av;
      amat.at(j, i) = av;
    }
  }

  // Recover S from its Gram-like off-diagonal samples: for each of the first
  // alpha chosen nodes i, {S phi_i} solves Phi_others v = (s_ij)_{j != i};
  // stacking alpha such v as columns gives S Phi_sub^t.
  auto recover = [&](const math::Matrix& gram) -> std::optional<math::Matrix> {
    math::Matrix v_cols(a, a);  // column c = S phi_{idx[c]}
    for (std::size_t c = 0; c < a; ++c) {
      std::vector<int> others;
      std::vector<std::uint8_t> rhs;
      for (std::size_t j = 0; j < k_; ++j) {
        if (j == c) continue;
        others.push_back(idx[j]);
        rhs.push_back(gram.at(c, j));
        if (others.size() == a) break;
      }
      const math::Matrix phi_others = phi_.select_rows(others);  // a x a
      auto v = phi_others.solve(rhs);
      if (!v) return std::nullopt;
      for (std::size_t r = 0; r < a; ++r) v_cols.at(r, c) = (*v)[r];
    }
    // S Phi_sub^t = V  =>  (Phi_sub S)^t = V  =>  S = Phi_sub^{-1} V^t.
    std::vector<int> sub(idx.begin(), idx.begin() + static_cast<long>(a));
    const math::Matrix phi_sub = phi_.select_rows(sub);
    return phi_sub.solve_matrix(v_cols.transpose());
  };

  auto s2 = recover(bmat);
  auto s1 = recover(amat);
  if (!s1 || !s2) return std::nullopt;

  Bytes stripe;
  stripe.reserve(file_size());
  for (const math::Matrix* s : {&*s1, &*s2}) {
    for (std::size_t i = 0; i < a; ++i)
      for (std::size_t j = i; j < a; ++j) stripe.push_back(s->at(i, j));
  }
  return stripe;
}

Bytes PmMsrCode::helper_data(int helper_index,
                             std::span<const std::uint8_t> helper_element,
                             int target_index) const {
  LDS_REQUIRE(helper_index >= 0 && static_cast<std::size_t>(helper_index) < n_,
              "PmMsrCode::helper_data: helper index");
  LDS_REQUIRE(target_index >= 0 && static_cast<std::size_t>(target_index) < n_,
              "PmMsrCode::helper_data: target index");
  LDS_REQUIRE(helper_element.size() == alpha(),
              "PmMsrCode::helper_data: element size");
  return Bytes{gf::dot(helper_element,
                       phi_.row(static_cast<std::size_t>(target_index)))};
}

std::optional<Bytes> PmMsrCode::repair(
    int target_index, std::span<const IndexedBytes> helpers) const {
  LDS_REQUIRE(target_index >= 0 && static_cast<std::size_t>(target_index) < n_,
              "PmMsrCode::repair: target index");
  const std::size_t dd = d();
  std::vector<int> idx;
  std::vector<std::uint8_t> h;
  for (const auto& [i, payload] : helpers) {
    if (i < 0 || static_cast<std::size_t>(i) >= n_ || i == target_index)
      continue;
    if (payload.size() != beta()) continue;
    if (std::find(idx.begin(), idx.end(), i) != idx.end()) continue;
    idx.push_back(i);
    h.push_back(payload[0]);
    if (idx.size() == dd) break;
  }
  if (idx.size() < dd) return std::nullopt;

  // Psi_rep (M phi_f) = h  =>  M phi_f = [S1 phi_f; S2 phi_f].
  const math::Matrix psi_rep = psi_.select_rows(idx);
  auto x = psi_rep.solve(h);
  if (!x) return std::nullopt;
  const std::size_t a = alpha();
  const auto f = static_cast<std::size_t>(target_index);
  Bytes out(a);
  for (std::size_t c = 0; c < a; ++c) {
    out[c] = gf::add((*x)[c], gf::mul(lambda_[f], (*x)[a + c]));
  }
  return out;
}

}  // namespace lds::codes
