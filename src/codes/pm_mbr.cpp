#include "codes/pm_mbr.h"

#include <algorithm>

#include "matrix/vandermonde.h"

namespace lds::codes {

PmMbrCode::PmMbrCode(std::size_t n, std::size_t k, std::size_t d)
    : n_(n), k_(k), d_(d), psi_(math::vandermonde(n, d)) {
  LDS_REQUIRE(k >= 1 && k <= d && d <= n - 1 && n <= 255,
              "PmMbrCode: need 1 <= k <= d <= n-1, n <= 255");
}

math::Matrix PmMbrCode::message_matrix(
    std::span<const std::uint8_t> stripe) const {
  LDS_REQUIRE(stripe.size() == file_size(),
              "PmMbrCode: stripe must be B symbols");
  math::Matrix m(d_, d_);
  std::size_t pos = 0;
  // S: k x k symmetric, filled on the upper triangle (incl. diagonal).
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = i; j < k_; ++j) {
      m.at(i, j) = stripe[pos];
      m.at(j, i) = stripe[pos];
      ++pos;
    }
  }
  // T: k x (d-k), mirrored into the lower-left block as T^t.
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = k_; j < d_; ++j) {
      m.at(i, j) = stripe[pos];
      m.at(j, i) = stripe[pos];
      ++pos;
    }
  }
  LDS_CHECK(pos == file_size(), "PmMbrCode: message fill mismatch");
  return m;
}

Bytes PmMbrCode::stripe_from_message(const math::Matrix& s,
                                     const math::Matrix& t) const {
  Bytes stripe;
  stripe.reserve(file_size());
  for (std::size_t i = 0; i < k_; ++i)
    for (std::size_t j = i; j < k_; ++j) stripe.push_back(s.at(i, j));
  for (std::size_t i = 0; i < k_; ++i)
    for (std::size_t j = 0; j < d_ - k_; ++j) stripe.push_back(t.at(i, j));
  LDS_CHECK(stripe.size() == file_size(), "PmMbrCode: stripe rebuild size");
  return stripe;
}

std::vector<Bytes> PmMbrCode::encode(
    std::span<const std::uint8_t> stripe) const {
  const math::Matrix m = message_matrix(stripe);
  const math::Matrix coded = psi_.mul(m);  // n x d; row i = psi_i^t M
  std::vector<Bytes> out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    auto r = coded.row(i);
    out[i].assign(r.begin(), r.end());
  }
  return out;
}

Bytes PmMbrCode::encode_one(std::span<const std::uint8_t> stripe,
                            int index) const {
  LDS_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < n_,
              "PmMbrCode::encode_one: index out of range");
  const math::Matrix m = message_matrix(stripe);
  // psi_i^t M = (M psi_i)^t since M is symmetric.
  auto v = m.mul_vec(psi_.row(static_cast<std::size_t>(index)));
  return Bytes(v.begin(), v.end());
}

const math::Matrix& PmMbrCode::cached_inverse(const std::vector<int>& rows,
                                              bool phi_block) const {
  const auto key = std::make_pair(rows, phi_block);
  auto it = inverse_cache_.find(key);
  if (it != inverse_cache_.end()) return it->second;
  if (inverse_cache_.size() > 64) inverse_cache_.clear();
  const math::Matrix sub = phi_block
                               ? psi_.select_rows(rows).slice_cols(0, k_)
                               : psi_.select_rows(rows);
  auto inv = sub.inverse();
  LDS_CHECK(inv.has_value(), "PmMbrCode: Vandermonde submatrix singular");
  return inverse_cache_.emplace(key, std::move(*inv)).first->second;
}

std::optional<Bytes> PmMbrCode::decode(
    std::span<const IndexedBytes> elements) const {
  // First k distinct valid elements.
  std::vector<int> idx;
  math::Matrix y(k_, d_);
  for (const auto& [i, payload] : elements) {
    if (i < 0 || static_cast<std::size_t>(i) >= n_) continue;
    if (payload.size() != alpha()) continue;
    if (std::find(idx.begin(), idx.end(), i) != idx.end()) continue;
    std::copy(payload.begin(), payload.end(), y.row(idx.size()).begin());
    idx.push_back(i);
    if (idx.size() == k_) break;
  }
  if (idx.size() < k_) return std::nullopt;

  const math::Matrix psi_dc = psi_.select_rows(idx);       // k x d
  const math::Matrix delta_dc = psi_dc.slice_cols(k_, d_ - k_);  // k x (d-k)
  const math::Matrix& phi_inv = cached_inverse(idx, /*phi_block=*/true);

  // T from the trailing d-k columns: Y2 = Phi_DC T.
  const math::Matrix y2 = y.slice_cols(k_, d_ - k_);
  const math::Matrix t = phi_inv.mul(y2);

  // S from the leading k columns: Y1 = Phi_DC S + Delta_DC T^t.
  const math::Matrix y1 = y.slice_cols(0, k_);
  const math::Matrix rhs = y1.add(delta_dc.mul(t.transpose()));
  const math::Matrix s = phi_inv.mul(rhs);

  return stripe_from_message(s, t);
}

Bytes PmMbrCode::helper_data(int helper_index,
                             std::span<const std::uint8_t> helper_element,
                             int target_index) const {
  LDS_REQUIRE(helper_index >= 0 &&
                  static_cast<std::size_t>(helper_index) < n_,
              "PmMbrCode::helper_data: helper index");
  LDS_REQUIRE(target_index >= 0 &&
                  static_cast<std::size_t>(target_index) < n_,
              "PmMbrCode::helper_data: target index");
  LDS_REQUIRE(helper_element.size() == alpha(),
              "PmMbrCode::helper_data: element size");
  // h = <psi_j^t M, psi_f>; needs only the target's index.  One symbol.
  return Bytes{gf::dot(helper_element,
                       psi_.row(static_cast<std::size_t>(target_index)))};
}

std::optional<Bytes> PmMbrCode::repair(
    int target_index, std::span<const IndexedBytes> helpers) const {
  LDS_REQUIRE(target_index >= 0 && static_cast<std::size_t>(target_index) < n_,
              "PmMbrCode::repair: target index");
  // First d distinct valid helpers (excluding the target itself).
  std::vector<int> idx;
  std::vector<std::uint8_t> h;
  for (const auto& [i, payload] : helpers) {
    if (i < 0 || static_cast<std::size_t>(i) >= n_ || i == target_index)
      continue;
    if (payload.size() != beta()) continue;
    if (std::find(idx.begin(), idx.end(), i) != idx.end()) continue;
    idx.push_back(i);
    h.push_back(payload[0]);
    if (idx.size() == d_) break;
  }
  if (idx.size() < d_) return std::nullopt;

  // Psi_rep (M psi_f) = h  =>  M psi_f; element_f = (M psi_f)^t by symmetry.
  const math::Matrix& psi_rep_inv = cached_inverse(idx, /*phi_block=*/false);
  auto x = psi_rep_inv.mul_vec(h);
  return Bytes(x.begin(), x.end());
}

}  // namespace lds::codes
