#include "codes/replication.h"

#include "common/assert.h"

namespace lds::codes {

ReplicationCode::ReplicationCode(std::size_t n) : n_(n) {
  LDS_REQUIRE(n >= 1, "ReplicationCode: need n >= 1");
}

std::vector<Bytes> ReplicationCode::encode(
    std::span<const std::uint8_t> stripe) const {
  LDS_REQUIRE(stripe.size() == 1, "ReplicationCode: stripe is one symbol");
  return std::vector<Bytes>(n_, Bytes{stripe[0]});
}

Bytes ReplicationCode::encode_one(std::span<const std::uint8_t> stripe,
                                  int index) const {
  LDS_REQUIRE(stripe.size() == 1, "ReplicationCode: stripe is one symbol");
  LDS_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < n_,
              "ReplicationCode::encode_one: index out of range");
  return Bytes{stripe[0]};
}

std::optional<Bytes> ReplicationCode::decode(
    std::span<const IndexedBytes> elements) const {
  for (const auto& [i, payload] : elements) {
    if (i >= 0 && static_cast<std::size_t>(i) < n_ && payload.size() == 1) {
      return payload;
    }
  }
  return std::nullopt;
}

Bytes ReplicationCode::helper_data(
    int helper_index, std::span<const std::uint8_t> helper_element,
    int target_index) const {
  LDS_REQUIRE(helper_index >= 0 && static_cast<std::size_t>(helper_index) < n_,
              "ReplicationCode::helper_data: helper index");
  LDS_REQUIRE(target_index >= 0 && static_cast<std::size_t>(target_index) < n_,
              "ReplicationCode::helper_data: target index");
  return Bytes(helper_element.begin(), helper_element.end());
}

std::optional<Bytes> ReplicationCode::repair(
    int target_index, std::span<const IndexedBytes> helpers) const {
  LDS_REQUIRE(target_index >= 0 && static_cast<std::size_t>(target_index) < n_,
              "ReplicationCode::repair: target index");
  for (const auto& [i, payload] : helpers) {
    if (i >= 0 && static_cast<std::size_t>(i) < n_ && i != target_index &&
        payload.size() == 1) {
      return payload;
    }
  }
  return std::nullopt;
}

}  // namespace lds::codes
